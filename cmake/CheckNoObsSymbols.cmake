# Symbol-table check behind the Observability feature's zero-overhead
# claim. Run as a ctest:
#
#   cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoObsSymbols.cmake
#
# Greps `nm` output of BINARY for the mangled fame::obs namespace prefix
# ("4fame3obs" — every symbol defined in the namespace carries it). This
# covers the whole subsystem by construction, including the v2 surfaces
# (Trace span recording / DumpJson, the serializer's Prometheus and
# percentile helpers, BlackBox and the flight-recorder free functions):
# they all live in fame::obs, so a new class cannot silently escape the
# guard without also leaving the namespace.
# EXPECT=absent fails on any hit: a product built with FAME_OBS_DISABLE
# must contain no observability code at all. EXPECT=present is the positive
# control on the obs-enabled twin of the same product, proving the probe
# methodology actually sees the symbols it claims to rule out.
if(NOT DEFINED BINARY OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "usage: cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoObsSymbols.cmake")
endif()

find_program(NM_TOOL NAMES nm llvm-nm)
if(NOT NM_TOOL)
  message(FATAL_ERROR "nm not found; cannot check ${BINARY}")
endif()

execute_process(
  COMMAND ${NM_TOOL} --defined-only ${BINARY}
  OUTPUT_VARIABLE SYMBOLS
  RESULT_VARIABLE RC
  ERROR_VARIABLE NM_ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${NM_ERR}")
endif()

string(REGEX MATCHALL "[^\n]*4fame3obs[^\n]*" OBS_SYMBOLS "${SYMBOLS}")
list(LENGTH OBS_SYMBOLS HITS)

if(EXPECT STREQUAL "absent")
  if(HITS GREATER 0)
    list(SUBLIST OBS_SYMBOLS 0 10 SAMPLE)
    string(JOIN "\n  " SAMPLE_TEXT ${SAMPLE})
    message(FATAL_ERROR
      "${BINARY} was built with observability disabled but defines ${HITS} "
      "fame::obs symbol(s):\n  ${SAMPLE_TEXT}")
  endif()
  message(STATUS "${BINARY}: no fame::obs symbols (as required)")
elseif(EXPECT STREQUAL "present")
  if(HITS EQUAL 0)
    message(FATAL_ERROR
      "${BINARY} should carry fame::obs symbols (positive control for the "
      "absence test) but nm found none — the check would be vacuous")
  endif()
  message(STATUS "${BINARY}: ${HITS} fame::obs symbols (positive control ok)")
else()
  message(FATAL_ERROR "EXPECT must be 'absent' or 'present', got '${EXPECT}'")
endif()

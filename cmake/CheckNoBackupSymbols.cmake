# Symbol-table check behind the Backup feature's zero-cost claim. Run as a
# ctest:
#
#   cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoBackupSymbols.cmake
#
# Greps `nm` output of BINARY for the mangled namespaces that hold the
# segmented-WAL store ("4fame2tx3seg" = fame::tx::seg) and the hot-backup /
# restore engine ("4fame4core6backup" = fame::core::backup). EXPECT=absent
# fails on any hit: a product that does not select Backup must link none of
# the machinery — its WAL path stays the legacy single file, byte for byte.
# EXPECT=present is the positive control on the Backup-enabled twin of the
# same product, proving the probe methodology actually sees the symbols it
# claims to rule out.
if(NOT DEFINED BINARY OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "usage: cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoBackupSymbols.cmake")
endif()

find_program(NM_TOOL NAMES nm llvm-nm)
if(NOT NM_TOOL)
  message(FATAL_ERROR "nm not found; cannot check ${BINARY}")
endif()

execute_process(
  COMMAND ${NM_TOOL} --defined-only ${BINARY}
  OUTPUT_VARIABLE SYMBOLS
  RESULT_VARIABLE RC
  ERROR_VARIABLE NM_ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${NM_ERR}")
endif()

string(REGEX MATCHALL "[^\n]*(4fame2tx3seg|4fame4core6backup)[^\n]*"
       BACKUP_SYMBOLS "${SYMBOLS}")
list(LENGTH BACKUP_SYMBOLS HITS)

if(EXPECT STREQUAL "absent")
  if(HITS GREATER 0)
    list(SUBLIST BACKUP_SYMBOLS 0 10 SAMPLE)
    string(JOIN "\n  " SAMPLE_TEXT ${SAMPLE})
    message(FATAL_ERROR
      "${BINARY} does not select the Backup feature but defines ${HITS} "
      "segment/backup symbol(s):\n  ${SAMPLE_TEXT}")
  endif()
  message(STATUS "${BINARY}: no segment/backup symbols (as required)")
elseif(EXPECT STREQUAL "present")
  if(HITS EQUAL 0)
    message(FATAL_ERROR
      "${BINARY} should carry fame::tx::seg / fame::core::backup symbols "
      "(positive control for the absence test) but nm found none — the "
      "check would be vacuous")
  endif()
  message(STATUS "${BINARY}: ${HITS} segment/backup symbols (positive control ok)")
else()
  message(FATAL_ERROR "EXPECT must be 'absent' or 'present', got '${EXPECT}'")
endif()

# Symbol-table check behind the Mvcc feature's zero-cost claim. Run as a
# ctest:
#
#   cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoMvccSymbols.cmake
#
# Greps `nm` output of BINARY for the mangled MVCC namespace
# ("4fame2tx4mvcc" = fame::tx::mvcc), which holds the version-chain codec,
# the commit-timestamp oracle, and the snapshot registry. EXPECT=absent
# fails on any hit: a product that does not select Transaction ▸ Mvcc must
# link none of the versioning machinery — its record path stays the
# unversioned one. EXPECT=present is the positive control on the
# Mvcc-enabled twin of the same product, proving the probe methodology
# actually sees the symbols it claims to rule out.
if(NOT DEFINED BINARY OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "usage: cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoMvccSymbols.cmake")
endif()

find_program(NM_TOOL NAMES nm llvm-nm)
if(NOT NM_TOOL)
  message(FATAL_ERROR "nm not found; cannot check ${BINARY}")
endif()

execute_process(
  COMMAND ${NM_TOOL} --defined-only ${BINARY}
  OUTPUT_VARIABLE SYMBOLS
  RESULT_VARIABLE RC
  ERROR_VARIABLE NM_ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${NM_ERR}")
endif()

string(REGEX MATCHALL "[^\n]*4fame2tx4mvcc[^\n]*" MVCC_SYMBOLS "${SYMBOLS}")
list(LENGTH MVCC_SYMBOLS HITS)

if(EXPECT STREQUAL "absent")
  if(HITS GREATER 0)
    list(SUBLIST MVCC_SYMBOLS 0 10 SAMPLE)
    string(JOIN "\n  " SAMPLE_TEXT ${SAMPLE})
    message(FATAL_ERROR
      "${BINARY} does not select the Mvcc feature but defines "
      "${HITS} MVCC symbol(s):\n  ${SAMPLE_TEXT}")
  endif()
  message(STATUS "${BINARY}: no MVCC symbols (as required)")
elseif(EXPECT STREQUAL "present")
  if(HITS EQUAL 0)
    message(FATAL_ERROR
      "${BINARY} should carry fame::tx::mvcc symbols (positive control for "
      "the absence test) but nm found none — the check would be vacuous")
  endif()
  message(STATUS "${BINARY}: ${HITS} MVCC symbols (positive control ok)")
else()
  message(FATAL_ERROR "EXPECT must be 'absent' or 'present', got '${EXPECT}'")
endif()

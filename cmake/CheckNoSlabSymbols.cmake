# Symbol-table check behind the slab memory path's zero-overhead claims.
# Run as a ctest:
#
#   cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoSlabSymbols.cmake
#
# Greps `nm` output of BINARY for the mangled fame::osal::slab namespace
# prefix ("4fame4osal4slab"). EXPECT=absent fails on any hit: a product
# built with FAME_SLAB_DISABLE must contain no slab-allocator code at all.
# EXPECT=present is the positive control on the slab-enabled twin, and
# additionally asserts the single-threaded product links no
# SlabMultiThreaded policy instantiation — the ST pool must compile down to
# plain pointer bumps with the whole remote-free/atomic machinery absent.
if(NOT DEFINED BINARY OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "usage: cmake -DBINARY=<file> -DEXPECT=absent|present -P CheckNoSlabSymbols.cmake")
endif()

find_program(NM_TOOL NAMES nm llvm-nm)
if(NOT NM_TOOL)
  message(FATAL_ERROR "nm not found; cannot check ${BINARY}")
endif()

execute_process(
  COMMAND ${NM_TOOL} --defined-only ${BINARY}
  OUTPUT_VARIABLE SYMBOLS
  RESULT_VARIABLE RC
  ERROR_VARIABLE NM_ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "nm failed on ${BINARY}: ${NM_ERR}")
endif()

string(REGEX MATCHALL "[^\n]*4fame4osal4slab[^\n]*" SLAB_SYMBOLS "${SYMBOLS}")
list(LENGTH SLAB_SYMBOLS HITS)

string(REGEX MATCHALL "[^\n]*SlabMultiThreaded[^\n]*" MT_SYMBOLS "${SYMBOLS}")
list(LENGTH MT_SYMBOLS MT_HITS)

if(EXPECT STREQUAL "absent")
  if(HITS GREATER 0)
    list(SUBLIST SLAB_SYMBOLS 0 10 SAMPLE)
    string(JOIN "\n  " SAMPLE_TEXT ${SAMPLE})
    message(FATAL_ERROR
      "${BINARY} was built with the slab feature disabled but defines "
      "${HITS} fame::osal::slab symbol(s):\n  ${SAMPLE_TEXT}")
  endif()
  message(STATUS "${BINARY}: no fame::osal::slab symbols (as required)")
elseif(EXPECT STREQUAL "present")
  if(HITS EQUAL 0)
    message(FATAL_ERROR
      "${BINARY} should carry fame::osal::slab symbols (positive control "
      "for the absence test) but nm found none — the check would be vacuous")
  endif()
  if(MT_HITS GREATER 0)
    list(SUBLIST MT_SYMBOLS 0 10 SAMPLE)
    string(JOIN "\n  " SAMPLE_TEXT ${SAMPLE})
    message(FATAL_ERROR
      "${BINARY} is a single-threaded product but links ${MT_HITS} "
      "SlabMultiThreaded symbol(s) — the MT policy leaked in:\n  "
      "${SAMPLE_TEXT}")
  endif()
  message(STATUS
    "${BINARY}: ${HITS} fame::osal::slab symbols, zero SlabMultiThreaded "
    "(positive control ok)")
else()
  message(FATAL_ERROR "EXPECT must be 'absent' or 'present', got '${EXPECT}'")
endif()

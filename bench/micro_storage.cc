// Micro-benchmarks (google-benchmark) for the storage substrate: slotted
// page operations and buffer-manager behaviour under the replacement
// alternatives (LRU vs LFU vs Clock) at varying skew.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "osal/allocator.h"
#include "osal/env.h"
#include "storage/buffer.h"
#include "storage/pagefile.h"

namespace fame::storage {
namespace {

void BM_PageInsert(benchmark::State& state) {
  std::string buf(4096, 0);
  Page page(buf.data(), buf.size());
  std::string rec(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    page.Init(PageType::kHeap);
    while (page.Insert(rec).ok()) {
    }
  }
  state.SetLabel(std::to_string(state.range(0)) + "B records");
}
BENCHMARK(BM_PageInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_PageChecksum(benchmark::State& state) {
  std::string buf(4096, 0);
  Page page(buf.data(), buf.size());
  page.Init(PageType::kHeap);
  while (page.Insert("some record data").ok()) {
  }
  for (auto _ : state) {
    page.SealChecksum();
    benchmark::DoNotOptimize(page.VerifyChecksum());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_PageChecksum);

/// Buffer pool of 64 frames over 512 pages, point fetches with Zipf-ish
/// skew; reports the hit rate per policy.
void BM_BufferFetchSkewed(benchmark::State& state) {
  const char* policies[] = {"lru", "lfu", "clock"};
  const char* policy = policies[state.range(0)];
  auto env = osal::NewMemEnv(0);
  osal::DynamicAllocator alloc;
  auto file = PageFile::Open(env.get(), "db", PageFileOptions{});
  if (!file.ok()) {
    state.SkipWithError("page file open failed");
    return;
  }
  auto bm = BufferManager::Create(file->get(), 64, &alloc,
                                  MakeReplacementPolicy(policy));
  if (!bm.ok()) {
    state.SkipWithError("buffer manager create failed");
    return;
  }
  std::vector<PageId> pages;
  for (int i = 0; i < 512; ++i) {
    auto guard = (*bm)->New(PageType::kHeap);
    if (!guard.ok()) {
      state.SkipWithError("page alloc failed");
      return;
    }
    pages.push_back(guard->id());
  }
  Random rng(99);
  (*bm)->ResetStats();
  for (auto _ : state) {
    auto guard = (*bm)->Fetch(pages[rng.Skewed(pages.size())]);
    benchmark::DoNotOptimize(guard);
  }
  state.SetLabel(std::string(policy) + " hit-rate=" +
                 std::to_string((*bm)->stats().HitRate()));
}
BENCHMARK(BM_BufferFetchSkewed)->Arg(0)->Arg(1)->Arg(2);

void BM_StaticPoolVsMalloc(benchmark::State& state) {
  bool use_pool = state.range(0) == 1;
  osal::StaticPoolAllocator pool(1 << 20);
  osal::DynamicAllocator heap;
  osal::Allocator* alloc =
      use_pool ? static_cast<osal::Allocator*>(&pool) : &heap;
  for (auto _ : state) {
    void* a = alloc->Allocate(256);
    void* b = alloc->Allocate(1024);
    alloc->Deallocate(a, 256);
    alloc->Deallocate(b, 1024);
  }
  state.SetLabel(use_pool ? "static pool" : "heap");
}
BENCHMARK(BM_StaticPoolVsMalloc)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fame::storage

BENCHMARK_MAIN();

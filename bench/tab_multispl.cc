// Future-work reproduction (paper conclusion): "extend SPL composition and
// optimization to cover multiple SPLs (e.g., including the operating
// system and client applications) to optimize the software of an embedded
// system as a whole."
//
// This table compares, under one whole-device ROM budget:
//   separate — optimize the OS SPL and the DBMS SPL independently, each
//              granted half the budget (the state of practice the paper
//              criticizes), then check the combined system;
//   joint    — one greedy derivation over the composed system model with
//              cross-SPL constraints.
// Joint optimization can shift budget between the SPLs and respects
// cross-SPL constraints by construction.
#include <cstdio>

#include "featuremodel/fame_model.h"
#include "featuremodel/multispl.h"
#include "featuremodel/parser.h"
#include "nfp/optimizer.h"

using namespace fame;
using namespace fame::nfp;

namespace {

constexpr const char kOsDsl[] = R"fm(
feature EmbeddedOS {
  mandatory Scheduler abstract alternative {
    mandatory Cooperative
    mandatory Preemptive
  }
  optional Heap-Allocator
  optional File-System
  optional Network
  optional Power-Mgmt
}
constraints {
  Network requires Preemptive;
}
)fm";

const std::map<std::string, double>& CostKb() {
  static const std::map<std::string, double> costs = {
      // OS SPL
      {"Preemptive", 6},      {"Heap-Allocator", 6}, {"File-System", 14},
      {"Network", 20},        {"Power-Mgmt", 4},
      // DBMS SPL (FAME model names)
      {"Put", 2},             {"Remove", 3},         {"Update", 3},
      {"BTree-Update", 2},    {"BTree-Remove", 4},   {"B+-Tree", 18},
      {"List", 6},            {"Transaction", 34},   {"Locking", 8},
      {"WAL-Redo", 6},        {"Force-Commit", 2},   {"API", 9},
      {"SQL-Engine", 28},     {"Optimizer", 7},      {"String-Types", 3},
      {"Blob-Types", 3},
  };
  return costs;
}

double SizeOf(const std::vector<std::string>& features, double base,
              const std::string& strip_prefix) {
  double kb = base;
  for (const std::string& raw : features) {
    std::string f = raw;
    if (!strip_prefix.empty() && f.rfind(strip_prefix, 0) == 0) {
      f = f.substr(strip_prefix.size());
    }
    auto it = CostKb().find(f);
    if (it != CostKb().end()) kb += it->second;
  }
  return kb;
}

/// Builds a sampled feedback repository for `model`, attributing costs by
/// the table above (base = fixed kernel/runtime size).
FeedbackRepository BuildRepo(const fm::FeatureModel& model, double base,
                             const std::string& strip_prefix, size_t stride) {
  FeedbackRepository repo;
  auto variants = model.EnumerateVariants(400'000);
  if (!variants.ok()) return repo;
  size_t i = 0;
  for (const auto& v : *variants) {
    if (++i % stride != 0) continue;
    MeasuredProduct mp;
    mp.features = v.SelectedNames();
    mp.values[NfpKind::kBinarySize] = SizeOf(mp.features, base, strip_prefix);
    repo.Add(std::move(mp));
  }
  return repo;
}

const std::map<std::string, double>& Utility() {
  static const std::map<std::string, double> u = {
      {"os.Network", 6},     {"os.Power-Mgmt", 3},
      {"dbms.Transaction", 10}, {"dbms.SQL-Engine", 8},
      {"dbms.Update", 4},    {"dbms.Remove", 4},  {"dbms.API", 5}};
  return u;
}

}  // namespace

int main() {
  auto os_or = fm::ParseModel(kOsDsl);
  if (!os_or.ok()) {
    std::fprintf(stderr, "os model: %s\n", os_or.status().ToString().c_str());
    return 1;
  }
  auto os = std::move(*os_or);
  auto dbms = fm::BuildFameDbmsModel();

  fm::MultiSplComposer composer("device");
  if (!composer.AddSpl("os", *os).ok() ||
      !composer.AddSpl("dbms", *dbms).ok() ||
      !composer.AddRequires("dbms.Dynamic", "os.Heap-Allocator").ok() ||
      !composer.AddRequires("dbms.Linux", "os.File-System").ok()) {
    return 1;
  }
  auto composite_or = composer.Compose();
  if (!composite_or.ok()) {
    std::fprintf(stderr, "compose: %s\n",
                 composite_or.status().ToString().c_str());
    return 1;
  }
  auto& composite = *composite_or;

  // Repositories: per-SPL for "separate", whole-system for "joint".
  FeedbackRepository os_repo = BuildRepo(*os, 20, "", 2);
  FeedbackRepository dbms_repo = BuildRepo(*dbms, 40, "", 23);
  FeedbackRepository joint_repo = BuildRepo(*composite, 60, "", 113);
  // Cost attribution in the joint repo needs prefix stripping.
  {
    FeedbackRepository fixed;
    for (const MeasuredProduct& p : joint_repo.products()) {
      MeasuredProduct mp = p;
      double kb = 60;
      for (const std::string& raw : p.features) {
        std::string f = raw;
        size_t dot = f.find('.');
        if (dot != std::string::npos) f = f.substr(dot + 1);
        auto it = CostKb().find(f);
        if (it != CostKb().end()) kb += it->second;
      }
      mp.values[NfpKind::kBinarySize] = kb;
      fixed.Add(std::move(mp));
    }
    joint_repo = std::move(fixed);
  }

  std::printf("whole-system (multi-SPL) vs per-SPL optimization\n");
  std::printf("(OS repo %zu, DBMS repo %zu, joint repo %zu products)\n\n",
              os_repo.size(), dbms_repo.size(), joint_repo.size());
  std::printf("%-10s %18s %18s\n", "ROM [KB]", "separate (50/50)", "joint");

  int pass = 0, fail = 0;
  bool joint_never_worse = true;
  for (double budget : {90, 110, 130, 150, 180}) {
    // ---- separate: each SPL gets half the budget ----
    double separate_utility = -1;
    {
      DerivationRequest os_req;
      os_req.partial = fm::Configuration(os.get());
      os_req.constraints = {{NfpKind::kBinarySize, budget / 2}};
      for (const auto& [f, u] : Utility()) {
        if (f.rfind("os.", 0) == 0) os_req.utility[f.substr(3)] = u;
      }
      DerivationRequest db_req;
      db_req.partial = fm::Configuration(dbms.get());
      db_req.constraints = {{NfpKind::kBinarySize, budget / 2}};
      for (const auto& [f, u] : Utility()) {
        if (f.rfind("dbms.", 0) == 0) db_req.utility[f.substr(5)] = u;
      }
      auto os_est = FitEstimators(os_repo, os_req.constraints);
      auto db_est = FitEstimators(dbms_repo, db_req.constraints);
      if (os_est.ok() && db_est.ok()) {
        auto os_res = GreedyDerive(*os, os_req, *os_est);
        auto db_res = GreedyDerive(*dbms, db_req, *db_est);
        if (os_res.ok() && db_res.ok()) {
          separate_utility = os_res->utility + db_res->utility;
        }
      }
    }
    // ---- joint: one derivation over the composite ----
    double joint_utility = -1;
    {
      DerivationRequest req;
      req.partial = fm::Configuration(composite.get());
      req.constraints = {{NfpKind::kBinarySize, budget}};
      req.utility = Utility();
      auto est = FitEstimators(joint_repo, req.constraints);
      if (est.ok()) {
        auto res = GreedyDerive(*composite, req, *est);
        if (res.ok()) joint_utility = res->utility;
      }
    }
    auto cell = [](double u) {
      static char buf[2][32];
      static int w = 0;
      w ^= 1;
      if (u < 0) {
        std::snprintf(buf[w], sizeof(buf[w]), "%18s", "infeasible");
      } else {
        std::snprintf(buf[w], sizeof(buf[w]), "%18.1f", u);
      }
      return buf[w];
    };
    std::printf("%-10.0f %s %s\n", budget, cell(separate_utility),
                cell(joint_utility));
    if (joint_utility < separate_utility) joint_never_worse = false;
  }

  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(joint_never_worse,
        "whole-system optimization never loses to fixed 50/50 budgeting");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

// Micro-benchmarks (google-benchmark) for the index alternatives: B+-tree
// vs List vs Hash point operations at different dataset sizes — the
// quantitative basis for the paper's future-work idea of statically
// selecting the optimal index from the application's data profile.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "index/keys.h"
#include "index/list_index.h"
#include "osal/allocator.h"
#include "osal/env.h"

namespace fame::index {
namespace {

struct Fixture {
  std::unique_ptr<osal::Env> env = osal::NewMemEnv(0);
  osal::DynamicAllocator alloc;
  std::unique_ptr<storage::PageFile> file;
  std::unique_ptr<storage::BufferManager> buffers;

  Fixture() {
    auto pf = storage::PageFile::Open(env.get(), "db",
                                      storage::PageFileOptions{});
    file = std::move(*pf);
    auto bm = storage::BufferManager::Create(
        file.get(), 256, &alloc, storage::MakeReplacementPolicy("lru"));
    buffers = std::move(*bm);
  }
};

template <typename OpenFn>
void RunLookupBench(benchmark::State& state, OpenFn open) {
  Fixture fx;
  auto idx = open(fx.buffers.get());
  if (!idx.ok()) {
    state.SkipWithError("index open failed");
    return;
  }
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    if (!(*idx)->Insert(EncodeU64Key(i), i).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  Random rng(5);
  uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*idx)->Lookup(EncodeU64Key(rng.Uniform(n)), &v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_BtreeLookup(benchmark::State& state) {
  RunLookupBench(state, [](storage::BufferManager* bm) {
    return BPlusTree::Open(bm, "t");
  });
}
BENCHMARK(BM_BtreeLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ListLookup(benchmark::State& state) {
  RunLookupBench(state, [](storage::BufferManager* bm) {
    return ListIndex::Open(bm, "l");
  });
}
// The List alternative is only viable for tiny datasets — exactly the
// paper's point about choosing the index per use case.
BENCHMARK(BM_ListLookup)->Arg(100)->Arg(1000);

void BM_HashLookup(benchmark::State& state) {
  RunLookupBench(state, [](storage::BufferManager* bm) {
    return HashIndex::Open(bm, "h", 256);
  });
}
BENCHMARK(BM_HashLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BtreeInsert(benchmark::State& state) {
  Fixture fx;
  auto idx = BPlusTree::Open(fx.buffers.get(), "t");
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*idx)->Insert(EncodeU64Key(i), i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeRangeScan100(benchmark::State& state) {
  Fixture fx;
  auto idx = BPlusTree::Open(fx.buffers.get(), "t");
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)(*idx)->Insert(EncodeU64Key(i), i);
  }
  Random rng(6);
  for (auto _ : state) {
    uint64_t start = rng.Uniform(9900);
    uint64_t count = 0;
    (void)(*idx)->RangeScan(EncodeU64Key(start), EncodeU64Key(start + 100),
                            [&count](const Slice&, uint64_t) {
                              ++count;
                              return true;
                            });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BtreeRangeScan100);

// Cursor pipeline benchmarks (BENCH_cursor.json in CI): the pull-based
// access path that replaced per-layer visitor plumbing. CursorRangeScan is
// the apples-to-apples companion of BM_BtreeRangeScan100 — the visitor
// entry point is now an adapter over this cursor, so the two must stay
// within noise of each other. CursorLimitK demonstrates O(k) early
// termination: pulling k rows costs one descent plus k leaf steps, so
// time/iteration should grow ∝ k, not with the 10k dataset.
void BM_BtreeCursorRangeScan100(benchmark::State& state) {
  Fixture fx;
  auto idx = BPlusTree::Open(fx.buffers.get(), "t");
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)(*idx)->Insert(EncodeU64Key(i), i);
  }
  auto cur = (*idx)->NewCursor();
  Random rng(6);
  for (auto _ : state) {
    uint64_t start = rng.Uniform(9900);
    std::string hi = EncodeU64Key(start + 100);
    uint64_t count = 0;
    for ((*cur)->Seek(EncodeU64Key(start)); (*cur)->Valid(); (*cur)->Next()) {
      if ((*cur)->key().compare(Slice(hi)) >= 0) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BtreeCursorRangeScan100);

void BM_BtreeCursorLimitK(benchmark::State& state) {
  Fixture fx;
  auto idx = BPlusTree::Open(fx.buffers.get(), "t");
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)(*idx)->Insert(EncodeU64Key(i), i);
  }
  auto cur = (*idx)->NewCursor();
  const uint64_t k = static_cast<uint64_t>(state.range(0));
  Random rng(7);
  for (auto _ : state) {
    uint64_t start = rng.Uniform(10000 - k);
    uint64_t pulled = 0;
    for ((*cur)->Seek(EncodeU64Key(start));
         (*cur)->Valid() && pulled < k; (*cur)->Next()) {
      ++pulled;
    }
    benchmark::DoNotOptimize(pulled);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}
BENCHMARK(BM_BtreeCursorLimitK)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_BtreeCursorReverseScan100(benchmark::State& state) {
  Fixture fx;
  auto idx = BPlusTree::Open(fx.buffers.get(), "t");
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)(*idx)->Insert(EncodeU64Key(i), i);
  }
  auto cur = (*idx)->NewCursor();
  Random rng(8);
  for (auto _ : state) {
    uint64_t start = 100 + rng.Uniform(9900);
    uint64_t count = 0;
    for ((*cur)->Seek(EncodeU64Key(start));
         (*cur)->Valid() && count < 100; (*cur)->Prev()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BtreeCursorReverseScan100);

}  // namespace
}  // namespace fame::index

BENCHMARK_MAIN();

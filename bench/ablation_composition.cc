// §2.1 ablation (composition mechanism): the paper argues component-based
// composition "introduce[s] a communication overhead that degrades
// performance", which is why FAME-DBMS uses static (FOP) composition. This
// bench runs the identical feature selection twice:
//   static  — core::SensorLogger-style StaticEngine (mixin/template,
//             statically bound calls)
//   dynamic — core::Database facade (components behind virtual interfaces,
//             wired from the feature model at runtime)
// and reports point-query throughput for both.
#include <cstdio>

#include "common/random.h"
#include "core/database.h"
#include "core/static_engine.h"
#include "index/keys.h"

using namespace fame;
using namespace fame::core;

namespace {

constexpr uint64_t kKeys = 20'000;
constexpr uint64_t kQueries = 1'500'000;

struct BenchCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = false;
  static constexpr bool kUpdate = false;
  static constexpr bool kTransactions = false;
  static constexpr bool kForceCommit = false;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 256;
  static constexpr size_t kStaticPoolBytes = 0;
};

template <typename PutFn, typename GetFn>
double RunWorkload(osal::Env* env, PutFn put, GetFn get) {
  Random rng(7);
  for (uint64_t i = 0; i < kKeys; ++i) {
    Status s = put(index::EncodeU64Key(i), "value-" + std::to_string(i));
    if (!s.ok()) {
      std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  std::string v;
  uint64_t start = env->NowNanos();
  for (uint64_t q = 0; q < kQueries; ++q) {
    Status s = get(index::EncodeU64Key(rng.Skewed(kKeys)), &v);
    if (!s.ok()) {
      std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  uint64_t ns = env->NowNanos() - start;
  return static_cast<double>(kQueries) * 1000.0 / static_cast<double>(ns);
}

}  // namespace

int main() {
  std::printf("composition-mechanism ablation: static (FOP mixin) vs "
              "dynamic (runtime components)\nworkload: %llu skewed point "
              "queries over %llu keys, same feature selection\n\n",
              static_cast<unsigned long long>(kQueries),
              static_cast<unsigned long long>(kKeys));

  auto env1 = osal::NewMemEnv(0);
  StaticEngine<BenchCfg> static_engine;
  if (!static_engine.Open(env1.get(), "s").ok()) return 1;
  double static_mops = RunWorkload(
      env1.get(),
      [&](const Slice& k, const Slice& v) { return static_engine.Put(k, v); },
      [&](const Slice& k, std::string* v) { return static_engine.Get(k, v); });

  auto env2 = osal::NewMemEnv(0);
  DbOptions opts;
  opts.features = {"Linux", "Dynamic", "LRU", "B+-Tree"};
  opts.env = env2.get();
  opts.path = "d";
  opts.buffer_frames = BenchCfg::kBufferFrames;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  double dynamic_mops = RunWorkload(
      env2.get(),
      [&](const Slice& k, const Slice& v) { return (*db)->Put(k, v); },
      [&](const Slice& k, std::string* v) { return (*db)->Get(k, v); });

  double overhead = (static_mops / dynamic_mops - 1.0) * 100.0;
  std::printf("%-32s %10s\n", "composition", "Mio. q/s");
  std::printf("%-32s %10.2f\n", "static (FOP mixin layers)", static_mops);
  std::printf("%-32s %10.2f\n", "dynamic (virtual components)", dynamic_mops);
  std::printf("\nstatic composition advantage: %+.1f%%\n", overhead);

  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(static_mops >= dynamic_mops * 0.97,
        "static composition is not slower than component composition");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

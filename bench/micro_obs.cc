// Micro-benchmarks for the Observability v2 surfaces added with span
// tracing, EXPLAIN/PROFILE, and the flight recorder:
//
//   - trace record cost, disabled (the always-paid gate) and enabled
//     (the per-event seqlock publish), plus the BeginSpan/EndSpan pair
//   - Collect() and DumpJson() over a full ring (the `fame trace` path)
//   - percentile interpolation over a populated base-4 histogram (the
//     `fame stats` / PROFILE tail-latency lines)
//   - one flight-recorder dump through the CRC seal (mem env, no disk)
//   - a SQL point SELECT with and without PROFILE bracketing, so the
//     instrumentation overhead of the per-operator table is a number
//
// Run with --benchmark_out=BENCH_obsv2.json --benchmark_out_format=json to
// emit the evaluation artifact (the CI bench-smoke step does this).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/sql.h"
#include "obs/obs.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/serialize.h"
#include "obs/trace.h"
#include "osal/env.h"

namespace fame::obs {
namespace {

#if FAME_OBS_TRACING_ENABLED

// The cost every non-traced build pays per instrumentation point: one
// relaxed load and a not-taken branch.
void BM_TraceRecordDisabled(benchmark::State& state) {
  Trace::Enable(false);
  for (auto _ : state) {
    Trace::Record(SpanKind::kPageRead, TraceOp::kNone, 7, 4096);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordDisabled);

// One point event into the per-thread ring: seqlock odd, seven word
// stores, seqlock even, head bump.
void BM_TraceRecordEnabled(benchmark::State& state) {
  Trace::Enable(true);
  Trace::Reset();
  for (auto _ : state) {
    Trace::Record(SpanKind::kPageRead, TraceOp::kNone, 7, 4096);
  }
  state.SetItemsProcessed(state.iterations());
  Trace::Enable(false);
  Trace::Reset();
}
BENCHMARK(BM_TraceRecordEnabled);

// Full span bracket: id allocation, stack push, kOpBegin, kOpEnd, pop.
void BM_TraceSpanPair(benchmark::State& state) {
  Trace::Enable(true);
  Trace::Reset();
  for (auto _ : state) {
    ScopedOpSpan span(TraceOp::kGet);
    benchmark::DoNotOptimize(span.context().span_id);
  }
  state.SetItemsProcessed(state.iterations());
  Trace::Enable(false);
  Trace::Reset();
}
BENCHMARK(BM_TraceSpanPair);

// Merging a wrapped ring: the read-side cost `fame trace` pays.
void BM_TraceCollect(benchmark::State& state) {
  Trace::Enable(true);
  Trace::Reset();
  for (size_t i = 0; i < 2 * Trace::kRingSlots; ++i) {
    Trace::Record(SpanKind::kPageWrite, TraceOp::kNone, i, i);
  }
  size_t events = 0;
  for (auto _ : state) {
    auto collected = Trace::Collect(0);
    events = collected.size();
    benchmark::DoNotOptimize(collected.data());
  }
  state.counters["events"] = static_cast<double>(events);
  Trace::Enable(false);
  Trace::Reset();
}
BENCHMARK(BM_TraceCollect);

// Chrome trace-event export of a full ring of spans and flow links.
void BM_TraceDumpJson(benchmark::State& state) {
  Trace::Enable(true);
  Trace::Reset();
  for (size_t i = 0; i < Trace::kRingSlots / 4; ++i) {
    ScopedOpSpan span(TraceOp::kGet);
    Trace::Record(SpanKind::kPageRead, TraceOp::kNone, i, 512);
    uint64_t batch = Trace::NewId();
    Trace::RecordWithSpanId(SpanKind::kWalSync, TraceOp::kCommit, batch, 1);
    Trace::Record(SpanKind::kWalJoin, TraceOp::kCommit, batch, 1);
  }
  size_t bytes = 0;
  for (auto _ : state) {
    std::string json = Trace::DumpJson(0);
    bytes = json.size();
    benchmark::DoNotOptimize(json.data());
  }
  state.counters["json_bytes"] = static_cast<double>(bytes);
  Trace::Enable(false);
  Trace::Reset();
}
BENCHMARK(BM_TraceDumpJson);

#endif  // FAME_OBS_TRACING_ENABLED

#if FAME_OBS_ENABLED

// The p50/p95/p99 interpolation shared by `fame stats` and PROFILE.
void BM_HistogramPercentile(benchmark::State& state) {
  HistogramSnapshot h;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    h.counts[b] = 1 + (b * 37) % 101;
    h.count += h.counts[b];
    h.sum += h.counts[b] * (uint64_t{1} << (2 * b));
  }
  for (auto _ : state) {
    uint64_t p50 = HistogramPercentile(h, 0.50);
    uint64_t p95 = HistogramPercentile(h, 0.95);
    uint64_t p99 = HistogramPercentile(h, 0.99);
    benchmark::DoNotOptimize(p50 + p95 + p99);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_HistogramPercentile);

// One flight-recorder dump: render, CRC-seal, tmp-write, rename. The mem
// env keeps this a pure CPU + copy measurement.
void BM_BlackBoxPersist(benchmark::State& state) {
  auto env = osal::NewMemEnv(4 << 20);
  BlackBox box;
  for (int i = 0; i < 8; ++i) {
    box.NoteStatus("bench op " + std::to_string(i), "IO error: bench");
  }
  std::string metrics(1024, 'm');
  for (auto _ : state) {
    Status s = box.Persist(env.get(), "bench_db", "bench trigger",
                           "B+-Tree,Linux", metrics);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlackBoxPersist);

core::DbOptions BenchSqlOptions(osal::Env* env) {
  core::DbOptions opts;
  opts.features = {"Linux",        "B+-Tree",   "SQL-Engine",
                   "Optimizer",    "Update",    "BTree-Update",
                   "Remove",       "BTree-Remove", "Int-Types",
                   "String-Types", "Observability"};
  opts.env = env;
  opts.path = "obs_bench_db";
  opts.page_size = 4096;
  opts.buffer_frames = 64;
  return opts;
}

// A point SELECT with and without the PROFILE bracket, against the same
// warm table: the delta is the cost of snapshotting the registry twice
// and rendering the per-operator table.
void RunSqlBench(benchmark::State& state, bool profile) {
  auto env = osal::NewMemEnv(16 << 20);
  auto db_or = core::Database::Open(BenchSqlOptions(env.get()));
  if (!db_or.ok()) {
    state.SkipWithError(db_or.status().ToString().c_str());
    return;
  }
  core::Database* db = db_or->get();
  auto seed = db->sql()->Execute("CREATE TABLE t (k INT, v TEXT)");
  if (!seed.ok()) {
    state.SkipWithError(seed.status().ToString().c_str());
    return;
  }
  for (int i = 0; i < 64; ++i) {
    auto ins = db->sql()->Execute("INSERT INTO t VALUES (" +
                                  std::to_string(i) + ", 'row')");
    if (!ins.ok()) {
      state.SkipWithError(ins.status().ToString().c_str());
      return;
    }
  }
  const std::string stmt = profile ? "PROFILE SELECT * FROM t WHERE k = 17"
                                   : "SELECT * FROM t WHERE k = 17";
  for (auto _ : state) {
    auto rs = db->sql()->Execute(stmt);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rs->rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SqlPointSelect(benchmark::State& state) { RunSqlBench(state, false); }
BENCHMARK(BM_SqlPointSelect);

void BM_SqlPointProfile(benchmark::State& state) { RunSqlBench(state, true); }
BENCHMARK(BM_SqlPointProfile);

#endif  // FAME_OBS_ENABLED

}  // namespace
}  // namespace fame::obs

BENCHMARK_MAIN();

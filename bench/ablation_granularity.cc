// §2.3 ablation (decomposition granularity): "the granularity is the key
// for a trade-off between complexity and variability". This table compares
// three granularities of the same FAME-DBMS prototype — coarse (only
// top-level options), the paper's mixed granularity (the shipped Figure 2
// model), and a uniformly fine decomposition — by feature count
// (complexity proxy) and variant count (variability).
#include <cstdio>

#include "featuremodel/fame_model.h"
#include "featuremodel/parser.h"

using namespace fame;

namespace {

constexpr const char kCoarseDsl[] = R"fm(
feature FAME-DBMS-coarse {
  mandatory Storage
  optional Transaction
  optional API
  optional SQL-Engine
}
constraints { SQL-Engine requires API; }
)fm";

// Uniformly fine: every concern of the mixed model decomposed further
// (buffer-manager internals, per-operation transaction hooks, SQL clauses).
constexpr const char kFineDsl[] = R"fm(
feature FAME-DBMS-fine {
  mandatory OS-Abstraction abstract alternative {
    mandatory Linux
    mandatory Win32
    mandatory NutOS
  }
  mandatory Buffer-Manager abstract {
    mandatory Replacement abstract alternative {
      mandatory LRU
      mandatory LFU
      mandatory Clock
    }
    mandatory Memory-Alloc abstract alternative {
      mandatory Dynamic
      mandatory Static
    }
    optional Prefetching
    optional Dirty-Tracking
    optional Pin-Counting
  }
  mandatory Storage abstract {
    mandatory Index abstract alternative {
      mandatory B+-Tree {
        mandatory BTree-Search
        optional BTree-Update
        optional BTree-Remove
        optional BTree-Bulk
        optional BTree-Prefix
      }
      mandatory List
    }
    mandatory Data-Types abstract or {
      mandatory Int-Types
      mandatory String-Types
      mandatory Blob-Types
    }
    optional Checksums
    optional Free-Space-Mgmt
  }
  mandatory Access abstract {
    mandatory Get
    mandatory Put
    optional Remove
    optional Update
  }
  optional Transaction {
    mandatory Commit-Protocol abstract alternative {
      mandatory WAL-Redo
      mandatory Force-Commit
    }
    optional Locking {
      optional Deadlock-Detection
    }
    optional Group-Commit
  }
  optional API
  optional SQL-Engine {
    optional Order-By
    optional Limit-Clause
    optional Update-Stmt
  }
  optional Optimizer
}
constraints {
  Optimizer requires SQL-Engine;
  SQL-Engine requires API;
  SQL-Engine requires B+-Tree;
  NutOS requires Static;
}
)fm";

void Report(const char* name, const fm::FeatureModel& m) {
  auto count = m.CountVariants(50'000'000);
  std::printf("%-28s %10zu %10zu %14s\n", name, m.size() - 1,
              m.DecisionFeatures().size(),
              count.ok() ? std::to_string(*count).c_str() : ">5e7");
}

}  // namespace

int main() {
  auto coarse = fm::ParseModel(kCoarseDsl);
  auto mixed = fm::BuildFameDbmsModel();
  auto fine = fm::ParseModel(kFineDsl);
  if (!coarse.ok() || !fine.ok()) {
    std::fprintf(stderr, "parse failed: %s / %s\n",
                 coarse.status().ToString().c_str(),
                 fine.status().ToString().c_str());
    return 1;
  }

  std::printf("decomposition-granularity ablation (paper section 2.3)\n\n");
  std::printf("%-28s %10s %10s %14s\n", "granularity", "features",
              "decisions", "variants");
  Report("coarse (components)", **coarse);
  Report("mixed (paper, Figure 2)", *mixed);
  Report("fine (uniform)", **fine);

  auto c1 = (*coarse)->CountVariants();
  auto c2 = mixed->CountVariants();
  auto c3 = (*fine)->CountVariants(50'000'000);
  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(c1.ok() && c2.ok() && *c1 < *c2,
        "mixed granularity offers more variability than coarse");
  // The uniformly fine model's space exceeds the 5e7 search-step cap —
  // the explosion itself is the result (and the paper's argument for
  // *mixed* granularity: all that variability must be configured).
  check((c3.ok() && *c2 < *c3) || !c3.ok(),
        "fine granularity explodes the variant space beyond mixed");
  check((*fine)->size() > mixed->size() &&
            mixed->size() > (*coarse)->size(),
        "variability is bought with model complexity (feature count)");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

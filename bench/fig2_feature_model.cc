// Figure 2 reproduction: the FAME-DBMS prototype feature diagram, printed
// from the canonical model, plus the configuration-space statistics that
// motivate automated product derivation (section 3: "the product derivation
// process is getting complex if there is a large number of features").
#include <cstdio>

#include "featuremodel/fame_model.h"

using namespace fame;

int main() {
  auto model = fm::BuildFameDbmsModel();

  std::printf("Figure 2 — FAME-DBMS prototype feature diagram\n");
  std::printf("(x alternative member, o or member, ! mandatory, ? optional)\n\n");
  std::printf("%s\n", model->ToTreeString().c_str());

  auto count = model->CountVariants();
  if (!count.ok()) {
    std::printf("variant counting failed: %s\n",
                count.status().ToString().c_str());
    return 1;
  }
  size_t abstract = 0;
  for (fm::FeatureId id = 0; id < model->size(); ++id) {
    if (model->feature(id).abstract_feature) ++abstract;
  }

  std::printf("configuration-space statistics:\n");
  std::printf("  features total           %zu\n", model->size());
  std::printf("  aggregating (abstract)   %zu\n", abstract);
  std::printf("  decision features        %zu\n",
              model->DecisionFeatures().size());
  std::printf("  cross-tree constraints   %zu\n",
              model->constraints().size());
  std::printf("  valid variants           %llu\n",
              static_cast<unsigned long long>(*count));

  // Per-subtree variability: how many variants each top-level feature
  // contributes when the rest of the model is left free.
  std::printf("\nforced-feature probe (variants remaining when selecting one feature):\n");
  for (const char* f : {"Transaction", "SQL-Engine", "NutOS", "List"}) {
    fm::Configuration c(model.get());
    if (!c.SelectByName(f).ok() || !model->Propagate(&c).ok()) continue;
    // Count by enumeration filtered on the propagated partial.
    auto variants = model->EnumerateVariants(1'000'000);
    if (!variants.ok()) continue;
    uint64_t n = 0;
    auto fid = model->Find(f);
    for (const auto& v : *variants) {
      if (v.IsSelected(*fid)) ++n;
    }
    std::printf("  %-12s -> %llu variants\n", f,
                static_cast<unsigned long long>(n));
  }

  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(*count > 1000,
        "configuration space is large enough to need tool support");
  check(model->DecisionFeatures().size() >= 15,
        "fine-grained decomposition: >= 15 decision features");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

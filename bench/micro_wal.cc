// Micro-benchmarks for the segmented WAL: the log-maintenance stall a
// checkpoint imposes on the commit path, legacy single-file truncation vs
// segmented retention (rename/recycle whole segments) vs segmented
// retention with Pitr archiving (recycled bytes are copied aside first).
//
// Run with --benchmark_out=BENCH_wal.json --benchmark_out_format=json to
// emit the evaluation artifact (the CI bench-smoke step does this). Each
// benchmark reports stall_p99_us — the 99th-percentile latency of the
// maintenance call itself across all timed checkpoints — next to the mean
// google-benchmark prints.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "osal/env.h"
#include "tx/wal.h"

namespace fame::tx {
namespace {

constexpr uint64_t kSegmentBytes = 16 * 1024;
constexpr int kRecordsPerCheckpoint = 256;  // ~4 segments of traffic

/// Appends one batch of committed-transaction traffic (untimed).
bool AppendBatch(LogManager* log, uint64_t* txid) {
  for (int i = 0; i < kRecordsPerCheckpoint; ++i) {
    LogRecord rec = LogRecord::Put(
        (*txid)++, "bench", "key" + std::to_string(i % 64),
        std::string(48, 'v'));
    if (!log->Append(rec).ok()) return false;
  }
  return log->Flush().ok();
}

double P99(std::vector<double>* samples) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() * 99 / 100];
}

/// Runs the append/maintain loop over `log`, timing only the maintenance
/// call — Truncate() on a legacy log, AdvanceRetention(durable) on a
/// segmented one.
void RunStallLoop(benchmark::State& state, osal::Env* env, LogManager* log,
                  bool segmented) {
  uint64_t txid = 1;
  std::vector<double> stalls_us;
  for (auto _ : state) {
    state.PauseTiming();
    if (!AppendBatch(log, &txid)) {
      state.SkipWithError("append failed");
      break;
    }
    state.ResumeTiming();
    // Sample tightly around the maintenance call itself so the p99 does
    // not fold in google-benchmark's Pause/Resume bookkeeping.
    uint64_t start = env->NowNanos();
    Status s = segmented ? log->AdvanceRetention(log->durable_size())
                         : log->Truncate();
    uint64_t stall_ns = env->NowNanos() - start;
    state.PauseTiming();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    stalls_us.push_back(static_cast<double>(stall_ns) / 1e3);
    state.ResumeTiming();
  }
  state.counters["stall_p99_us"] = P99(&stalls_us);
  state.SetItemsProcessed(state.iterations() * kRecordsPerCheckpoint);
}

/// A real file under /tmp: truncation, rename, and unlink costs are what
/// distinguish the maintenance strategies; a memory env would flatten them.
std::string BenchPath(const char* name) {
  return std::string("/tmp/fame_bench_wal_") + name;
}

void Cleanup(osal::Env* env, const std::string& path) {
  std::vector<std::string> files;
  if (env->ListFiles(path, &files).ok()) {
    for (const std::string& f : files) env->DeleteFile(f);
  }
}

void BM_CheckpointStallLegacy(benchmark::State& state) {
  osal::Env* env = osal::GetPosixEnv();
  std::string path = BenchPath("legacy");
  Cleanup(env, path);
  auto log = LogManager::Open(env, path);
  if (!log.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  RunStallLoop(state, env, log->get(), /*segmented=*/false);
  log->reset();
  Cleanup(env, path);
}
BENCHMARK(BM_CheckpointStallLegacy)->UseRealTime();

void BM_CheckpointStallSegmented(benchmark::State& state) {
  osal::Env* env = osal::GetPosixEnv();
  std::string path = BenchPath("seg");
  Cleanup(env, path);
  WalOptions wal;
  wal.segment_bytes = kSegmentBytes;
  auto log = LogManager::OpenSegmented(env, path, wal);
  if (!log.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  RunStallLoop(state, env, log->get(), /*segmented=*/true);
  state.counters["segments_recycled"] =
      static_cast<double>((*log)->segment_stats().recycled);
  log->reset();
  Cleanup(env, path);
}
BENCHMARK(BM_CheckpointStallSegmented)->UseRealTime();

void BM_CheckpointStallSegmentedArchiving(benchmark::State& state) {
  osal::Env* env = osal::GetPosixEnv();
  std::string path = BenchPath("arc");
  Cleanup(env, path);
  WalOptions wal;
  wal.segment_bytes = kSegmentBytes;
  wal.archive = true;
  auto log = LogManager::OpenSegmented(env, path, wal);
  if (!log.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  RunStallLoop(state, env, log->get(), /*segmented=*/true);
  state.counters["segments_archived"] =
      static_cast<double>((*log)->segment_stats().archived);
  log->reset();
  Cleanup(env, path);
}
BENCHMARK(BM_CheckpointStallSegmentedArchiving)->UseRealTime();

}  // namespace
}  // namespace fame::tx

BENCHMARK_MAIN();

// Micro-benchmarks for the Transaction ▸ Mvcc feature: snapshot-isolation
// commit throughput against the plain 2PL baseline (disjoint writers,
// where first-committer-wins never fires), conflict-rate cost when every
// writer hammers one small key range, snapshot scans staying off the
// writer's path, and version-chain read cost as history deepens (the knob
// watermark GC exists to bound).
//
// Run with --benchmark_out=BENCH_mvcc.json --benchmark_out_format=json to
// emit the evaluation artifact (the CI bench-smoke step does this).
// Thread counts above the machine's core count still run; scalability
// numbers are only meaningful with real cores.
#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "core/static_engine.h"
#include "core/products.h"
#include "osal/env.h"

namespace fame::core {
namespace {

// Concurrent transactional product WITH Mvcc: writers stamp version
// chains, readers pin snapshots.
struct MvccCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kConcurrency = true;
  static constexpr bool kMvcc = true;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 256;
  static constexpr size_t kStaticPoolBytes = 0;
};

// The same product WITHOUT Mvcc — the pre-MVCC plain-bytes record path,
// serving as the baseline the versioned codec is measured against.
struct PlainCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kConcurrency = true;
  static constexpr bool kMvcc = false;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 256;
  static constexpr size_t kStaticPoolBytes = 0;
};

// Shared state for multi-threaded benchmarks: google-benchmark runs the
// benchmark body once per thread, so the first thread in constructs the
// fixture and the last thread out tears it down (mutex + refcount).
template <typename Cfg>
struct EngineFixture {
  static std::mutex mu;
  static EngineFixture* instance;
  static int refs;

  std::unique_ptr<osal::Env> env;
  StaticEngine<Cfg> db;
  bool ok = false;

  static EngineFixture* Acquire() {
    std::lock_guard<std::mutex> l(mu);
    if (refs++ == 0) {
      auto* f = new EngineFixture();
      f->env = osal::NewMemEnv(0);
      f->ok = f->db.Open(f->env.get(), "bench").ok();
      instance = f;
    }
    return instance;
  }

  static void Release(benchmark::State& state) {
    std::lock_guard<std::mutex> l(mu);
    if (--refs == 0) {
      // Only the last thread out sets the counters; the default flags sum
      // counters across threads, so the value survives unscaled.
      if constexpr (Cfg::kMvcc) {
        if (instance->ok) {
          auto s = instance->db.mvcc_stats();
          state.counters["conflicts"] = static_cast<double>(s.conflicts);
          state.counters["commit_clock"] = static_cast<double>(s.clock);
        }
      }
      delete instance;
      instance = nullptr;
    }
  }
};

template <typename Cfg>
std::mutex EngineFixture<Cfg>::mu;
template <typename Cfg>
EngineFixture<Cfg>* EngineFixture<Cfg>::instance = nullptr;
template <typename Cfg>
int EngineFixture<Cfg>::refs = 0;

template <typename Cfg>
bool CommitOne(StaticEngine<Cfg>* db, const std::string& key,
               const std::string& value, Status* out) {
  auto txn = db->Begin();
  if (!txn.ok()) {
    *out = txn.status();
    return false;
  }
  Status s = (*txn)->Put("core", key, value);
  if (!s.ok()) {
    db->Abort(*txn);
    *out = s;
    return false;
  }
  *out = db->Commit(*txn);
  return out->ok();
}

/// Recovers a writer from a version chain that outgrew its page. With the
/// box oversubscribed, a thread descheduled inside Begin..Commit pins the
/// watermark while the others stack thousands of versions on the hot keys;
/// once the chain record exceeds the page the write is refused
/// (InvalidArgument). By the time a bench thread observes that refusal the
/// pinning transaction is gone, so one GC sweep prunes the chain back and
/// the workload continues — the app-visible maintenance story, counted as
/// gc_backoffs rather than hidden. Any other failure stays fatal.
template <typename Cfg>
bool GcBackoff(StaticEngine<Cfg>* db, const Status& s, uint64_t* backoffs) {
  if (!s.IsInvalidArgument()) return false;
  ++*backoffs;
  return db->MvccGc().ok();
}

/// Disjoint writers: each thread commits to its own key space, so the
/// first-committer-wins table never refuses anyone. MVCC writers skip 2PL
/// entirely — this is the path the oracle's single commit-time table
/// touch is built for. Compare against BM_PlainCommitDisjoint: the delta
/// is the version-chain encode plus the oracle, the scaling shape is the
/// absence of lock-manager funneling.
void BM_MvccCommitDisjoint(benchmark::State& state) {
  auto* f = EngineFixture<MvccCfg>::Acquire();
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    EngineFixture<MvccCfg>::Release(state);
    return;
  }
  const std::string prefix = "t" + std::to_string(state.thread_index()) + "_";
  uint64_t i = 0;
  uint64_t gc_backoffs = 0;
  for (auto _ : state) {
    Status s;
    // 64 keys per thread: chains deepen, as a steady-state store's would.
    if (!CommitOne(&f->db, prefix + std::to_string(i++ % 64), "value", &s) &&
        !GcBackoff(&f->db, s, &gc_backoffs)) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["gc_backoffs"] = static_cast<double>(gc_backoffs);
  EngineFixture<MvccCfg>::Release(state);
}
BENCHMARK(BM_MvccCommitDisjoint)->ThreadRange(1, 8)->UseRealTime();

/// The pre-MVCC baseline: identical workload, plain record path, commits
/// serialized by 2PL.
void BM_PlainCommitDisjoint(benchmark::State& state) {
  auto* f = EngineFixture<PlainCfg>::Acquire();
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    EngineFixture<PlainCfg>::Release(state);
    return;
  }
  const std::string prefix = "t" + std::to_string(state.thread_index()) + "_";
  uint64_t i = 0;
  for (auto _ : state) {
    Status s;
    if (!CommitOne(&f->db, prefix + std::to_string(i++ % 64), "value", &s)) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  EngineFixture<PlainCfg>::Release(state);
}
BENCHMARK(BM_PlainCommitDisjoint)->ThreadRange(1, 8)->UseRealTime();

/// Conflicting writers: every thread hammers the same 8 keys, so
/// first-committer-wins refuses most concurrent commits (Busy). A refusal
/// is counted work — the app-visible cost of optimistic writes under
/// contention is exactly this retry rate, surfaced by the conflicts
/// counter against items_processed.
void BM_MvccCommitConflicting(benchmark::State& state) {
  auto* f = EngineFixture<MvccCfg>::Acquire();
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    EngineFixture<MvccCfg>::Release(state);
    return;
  }
  Random rng(13 + static_cast<uint64_t>(state.thread_index()));
  uint64_t committed = 0;
  uint64_t gc_backoffs = 0;
  for (auto _ : state) {
    Status s;
    if (CommitOne(&f->db, "hot" + std::to_string(rng.Uniform(8)), "v", &s)) {
      ++committed;
    } else if (!s.IsBusy() &&  // Busy IS the measured outcome
               !GcBackoff(&f->db, s, &gc_backoffs)) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["gc_backoffs"] = static_cast<double>(gc_backoffs);
  EngineFixture<MvccCfg>::Release(state);
}
BENCHMARK(BM_MvccCommitConflicting)->ThreadRange(2, 8)->UseRealTime();

/// Snapshot scans under a writer: thread 0 commits continuously, the
/// other threads open a snapshot cursor and scan it end to end. Readers
/// never block the writer and never see a torn generation — the bench
/// asserts the frozen count, so a visibility bug fails loudly here too.
void BM_MvccSnapshotScanUnderWriter(benchmark::State& state) {
  auto* f = EngineFixture<MvccCfg>::Acquire();
  constexpr int kKeys = 64;
  {
    std::lock_guard<std::mutex> l(EngineFixture<MvccCfg>::mu);
    if (f->ok && f->db.mvcc_stats().clock == 0) {
      for (int i = 0; i < kKeys && f->ok; ++i) {
        Status s;
        f->ok = CommitOne(&f->db, "s" + std::to_string(i), "seed", &s);
      }
    }
  }
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    EngineFixture<MvccCfg>::Release(state);
    return;
  }
  if (state.thread_index() == 0) {
    // The writer: overwrite the scanned range for as long as the readers
    // measure. Its items are commits, summed into the same benchmark.
    uint64_t gen = 0;
    for (auto _ : state) {
      Status s;
      if (!CommitOne(&f->db, "s" + std::to_string(gen % kKeys),
                     "g" + std::to_string(gen), &s)) {
        state.SkipWithError(s.ToString().c_str());
        break;
      }
      ++gen;
    }
    state.SetItemsProcessed(state.iterations());
  } else {
    for (auto _ : state) {
      auto cur = f->db.NewSnapshotCursor();
      if (!cur.ok()) {
        state.SkipWithError("cursor open failed");
        break;
      }
      int seen = 0;
      for (cur->SeekToFirst(); cur->Valid(); cur->Next()) {
        benchmark::DoNotOptimize(cur->value().data());
        ++seen;
      }
      if (seen != kKeys) {
        state.SkipWithError("snapshot scan saw a torn view");
        break;
      }
    }
    state.SetItemsProcessed(state.iterations() * kKeys);
  }
  EngineFixture<MvccCfg>::Release(state);
}
BENCHMARK(BM_MvccSnapshotScanUnderWriter)->ThreadRange(2, 8)->UseRealTime();

/// Read cost as the version chain deepens: one key, Arg committed
/// generations, no GC. The visible version for the current read ts is the
/// head, so point reads stay O(1)-ish; the sweep exists for snapshots
/// that reach past it and for space. After measuring, a GC run prunes the
/// chain back and the counter records what it reclaimed.
void BM_MvccGetDeepChain(benchmark::State& state) {
  auto env = osal::NewMemEnv(0);
  StaticEngine<MvccCfg> db;
  if (!db.Open(env.get(), "chain").ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const int depth = static_cast<int>(state.range(0));
  for (int g = 0; g < depth; ++g) {
    Status s;
    if (!CommitOne(&db, "deep", "g" + std::to_string(g), &s)) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  std::string value;
  for (auto _ : state) {
    Status s = db.Get("deep", &value);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(value.data());
  }
  state.SetItemsProcessed(state.iterations());
  auto pruned = db.MvccGc();
  state.counters["gc_pruned"] =
      pruned.ok() ? static_cast<double>(*pruned) : -1.0;
}
BENCHMARK(BM_MvccGetDeepChain)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace fame::core

BENCHMARK_MAIN();

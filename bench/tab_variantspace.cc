// §2.2 reproduction (customizability claims): the refactored Berkeley DB
// exposed 24 optional features, "far more variants specifically tailored to
// a use case" than the handful of preprocessor options before. This table
// models both states — the original coarse configuration options vs the
// FameBDB feature-oriented decomposition — and counts their variant spaces.
#include <cstdio>

#include "featuremodel/parser.h"

using namespace fame;

namespace {

// Berkeley DB before refactoring: a few independent compile-time switches.
constexpr const char kCoarseDsl[] = R"fm(
feature BerkeleyDB-C {
  optional Crypto
  optional Hash
  optional Queue
  optional Replication
  optional Statistics
  optional Transactions
}
)fm";

// FameBDB after feature-oriented refactoring: the same system decomposed
// into 24 optional features (coarse features split into their concerns).
constexpr const char kFineDsl[] = R"fm(
feature FameBDB {
  mandatory Storage abstract {
    mandatory BTree {
      optional BTree-Delete
      optional BTree-Bulk
      optional Prefix-Compression
    }
    optional Hash {
      optional Ext-Buckets
    }
    optional Queue {
      optional Recno-Access
    }
    optional Overflow-Records
  }
  optional Transactions {
    optional Group-Commit
    optional Checkpointing
    optional Savepoints
  }
  optional Locking {
    optional Deadlock-Detect
  }
  optional Logging {
    optional Log-Compression
  }
  optional Crypto {
    optional Key-Rotation
  }
  optional Replication {
    optional Elections
    optional Bulk-Transfer
  }
  optional Statistics
  optional Cursors {
    optional Reverse-Scan
  }
}
constraints {
  Transactions requires Logging;
  Transactions requires Locking;
  Group-Commit requires Checkpointing;
  Elections requires Bulk-Transfer;
}
)fm";

uint64_t CountOptional(const fm::FeatureModel& m) {
  uint64_t n = 0;
  for (fm::FeatureId id = 1; id < m.size(); ++id) {
    const fm::Feature& f = m.feature(id);
    if (m.feature(f.parent).group == fm::GroupKind::kAnd && f.optional) ++n;
  }
  return n;
}

}  // namespace

int main() {
  auto coarse = fm::ParseModel(kCoarseDsl);
  auto fine = fm::ParseModel(kFineDsl);
  if (!coarse.ok() || !fine.ok()) {
    std::fprintf(stderr, "model parse failed\n");
    return 1;
  }
  auto coarse_count = (*coarse)->CountVariants();
  auto fine_count = (*fine)->CountVariants();
  if (!coarse_count.ok() || !fine_count.ok()) {
    std::fprintf(stderr, "counting failed\n");
    return 1;
  }

  std::printf("configuration-space growth from feature-oriented "
              "refactoring (paper section 2.2)\n\n");
  std::printf("%-28s %10s %10s %12s\n", "model", "features", "optional",
              "variants");
  std::printf("%-28s %10zu %10llu %12llu\n", "Berkeley DB (preprocessor)",
              (*coarse)->size() - 1,
              static_cast<unsigned long long>(CountOptional(**coarse)),
              static_cast<unsigned long long>(*coarse_count));
  std::printf("%-28s %10zu %10llu %12llu\n", "FameBDB (feature-oriented)",
              (*fine)->size() - 1,
              static_cast<unsigned long long>(CountOptional(**fine)),
              static_cast<unsigned long long>(*fine_count));

  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(CountOptional(**fine) == 24,
        "refactoring exposes 24 optional features (paper: 24)");
  check(*fine_count > *coarse_count * 100,
        "feature-oriented decomposition multiplies the variant space");
  check(*coarse_count == 64, "preprocessor options give 2^6 variants");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

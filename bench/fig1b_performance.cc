// Figure 1b reproduction: throughput (Mio. queries/s) of the FameBDB
// configuration matrix. Each variant binary runs the shared read-mostly
// workload (10k keys loaded, skewed point queries) in its own process;
// this harness collects the numbers.
//
// Expected shape (paper §2.2): the C -> FeatureC++ transformation preserves
// performance (series roughly equal per configuration), and the minimal
// variants are at least as fast as the complete one. Configuration 8 is
// omitted, exactly as in the paper: it uses a different index structure and
// is not comparable to configurations 1-7.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

namespace {

/// Runs `cmd`, returning the mops= value it prints, or -1.
double RunVariantBench(const std::string& binary, uint64_t queries) {
  std::string cmd = binary + " --bench " + std::to_string(queries);
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  char line[256];
  double mops = -1;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    if (std::sscanf(line, "mops=%lf", &mops) == 1) break;
  }
  ::pclose(pipe);
  return mops;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = FAME_VARIANT_DIR;
  uint64_t queries = 400'000;
  if (argc >= 2) queries = std::strtoull(argv[1], nullptr, 10);

  struct Config {
    int number;
    const char* c_name;
    const char* fop_name;
  };
  const Config configs[] = {
      {1, "bdb_c_1", "bdb_fop_1"}, {2, "bdb_c_2", "bdb_fop_2"},
      {3, "bdb_c_3", "bdb_fop_3"}, {4, "bdb_c_4", "bdb_fop_4"},
      {5, "bdb_c_5", "bdb_fop_5"}, {6, "bdb_c_6", nullptr},
      {7, nullptr, "bdb_fop_7"},
  };

  std::printf(
      "Figure 1b — point-query throughput [Mio. queries/s], %llu queries "
      "per run\n",
      static_cast<unsigned long long>(queries));
  std::printf("%-3s  %10s  %12s\n", "cfg", "C", "FeatureC++");
  std::map<int, double> c_mops, fop_mops;
  for (const Config& cfg : configs) {
    double c = cfg.c_name ? RunVariantBench(dir + "/" + cfg.c_name, queries)
                          : -1;
    double f = cfg.fop_name
                   ? RunVariantBench(dir + "/" + cfg.fop_name, queries)
                   : -1;
    if (c >= 0) c_mops[cfg.number] = c;
    if (f >= 0) fop_mops[cfg.number] = f;
    char cb[32], fb[32];
    if (c >= 0) {
      std::snprintf(cb, sizeof(cb), "%10.2f", c);
    } else {
      std::snprintf(cb, sizeof(cb), "%10s", "-");
    }
    if (f >= 0) {
      std::snprintf(fb, sizeof(fb), "%12.2f", f);
    } else {
      std::snprintf(fb, sizeof(fb), "%12s", "-");
    }
    std::printf("%-3d  %s  %s\n", cfg.number, cb, fb);
  }

  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks (paper section 2.2):\n");
  // (1) FOP maintains the original performance: per-config deviation
  // within measurement noise (35% tolerance for an in-process micro run).
  bool preserved = true;
  for (int n = 1; n <= 5; ++n) {
    if (c_mops.count(n) && fop_mops.count(n)) {
      double ratio = fop_mops[n] / c_mops[n];
      if (ratio < 0.65) preserved = false;
    }
  }
  check(preserved,
        "C -> FeatureC++ maintains performance (configs 1-5, >=0.65x)");
  // (2) the minimal variants are at least as fast as the complete one.
  check(fop_mops[7] >= fop_mops[1] * 0.95,
        "minimal FOP variant at least as fast as complete (cfg 7 >= cfg 1)");
  check(c_mops[6] >= c_mops[1] * 0.95,
        "minimal C variant at least as fast as complete (cfg 6 >= cfg 1)");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

// Figure 3 + §3.1 reproduction: the automated feature-detection tool run
// over a corpus of client applications. Prints the feature/application
// need matrix and the derivability statistic the paper reports:
// "15 of 18 examined Berkeley DB features can be derived automatically from
//  the application's source code; only 3 of 18 were generally not
//  derivable, because they are not involved in any infrastructure API
//  usage within any application."
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/detector.h"

using namespace fame;
using namespace fame::analysis;

namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read fixture %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main() {
  const std::string dir = FAME_FIXTURE_DIR;
  const std::vector<std::string> apps = {
      "calendar",  "sensor_logger", "message_queue",
      "secure_vault", "fleet_sync", "inventory"};

  FeatureDetector detector = BuildFameBdbDetector();

  // Analyze every application.
  std::map<std::string, std::vector<DetectionResult>> per_app;
  for (const std::string& app : apps) {
    ApplicationModel model = ApplicationModel::Build(
        {ReadFileOrDie(dir + "/" + app + ".cpp")});
    per_app[app] = detector.Detect(model);
  }

  // Matrix: rows = features, columns = applications.
  std::printf("Figure 3 — automated detection of needed features\n\n");
  std::printf("%-15s", "feature");
  for (const std::string& app : apps) {
    std::printf(" %-9.9s", app.c_str());
  }
  std::printf(" derivable\n");
  size_t n_features = per_app[apps[0]].size();
  size_t needed_cells = 0;
  for (size_t f = 0; f < n_features; ++f) {
    const DetectionResult& first = per_app[apps[0]][f];
    std::printf("%-15s", first.feature.c_str());
    for (const std::string& app : apps) {
      const DetectionResult& r = per_app[app][f];
      std::printf(" %-9s", !r.derivable ? "?" : (r.needed ? "NEEDED" : "-"));
      if (r.needed) ++needed_cells;
    }
    std::printf(" %s\n", first.derivable ? "yes" : "NO (manual)");
  }

  std::printf("\nderivability statistic (paper section 3.1):\n");
  std::printf("  examined features:   %zu\n", detector.registered());
  std::printf("  derivable from API:  %zu\n", detector.derivable());
  std::printf("  not derivable:       %zu\n",
              detector.registered() - detector.derivable());

  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(detector.registered() == 18, "18 features examined (paper: 18)");
  check(detector.derivable() == 15, "15 features derivable (paper: 15)");
  check(detector.registered() - detector.derivable() == 3,
        "3 features not derivable (paper: 3)");
  // The paper's flagship example: TRANSACTION need detected from the flag
  // combination used to open the environment.
  bool calendar_txn = false;
  for (const auto& r : per_app["calendar"]) {
    if (r.feature == "TRANSACTIONS" && r.needed) calendar_txn = true;
  }
  check(calendar_txn,
        "TRANSACTIONS detected from DB_INIT_TXN open flags (calendar app)");
  // Different applications need different features (the motivation for
  // tailoring in the first place).
  bool sensor_less = false;
  size_t sensor_needed = 0, calendar_needed = 0;
  for (const auto& r : per_app["sensor_logger"]) {
    if (r.needed) ++sensor_needed;
  }
  for (const auto& r : per_app["calendar"]) {
    if (r.needed) ++calendar_needed;
  }
  sensor_less = sensor_needed < calendar_needed;
  check(sensor_less, "the sensor app needs fewer features than the calendar");
  check(needed_cells > 0, "detection matrix is not empty");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

// Micro-benchmarks for WAL-shipping replication: the cost of one shipping
// round (leader reads live segments, chunks them over the transport, the
// follower stages and acks), the follower's apply sweep (engine reopen —
// recovery replay is the apply — plus the integrity scrub), and a full
// snapshot bootstrap of a fresh follower from a checkpointed leader.
//
// Run with --benchmark_out=BENCH_repl.json --benchmark_out_format=json to
// emit the evaluation artifact (the CI bench-smoke step does this).
// bytes_per_second on the ship benchmark is the replication link's
// effective throughput with a zero-latency in-process transport — the
// protocol/staging overhead floor.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "osal/env.h"
#include "repl/follower.h"
#include "repl/leader.h"
#include "repl/repl.h"

namespace fame::repl {
namespace {

core::DbOptions NodeOptions(osal::Env* env, const std::string& path) {
  core::DbOptions opts;
  opts.features = {"Linux", "B+-Tree", "Transaction", "Update",
                   "BTree-Update"};
  AddReplicationFeatures(&opts.features);
  opts.path = path;
  opts.env = env;
  opts.wal_segment_bytes = 16 * 1024;
  return opts;
}

/// One leader/follower pair over the in-process transport.
struct Rig {
  std::unique_ptr<osal::Env> env;
  std::unique_ptr<core::Database> db;
  std::unique_ptr<Follower> follower;
  std::unique_ptr<InProcessTransport> link;
  std::unique_ptr<Leader> leader;

  bool Init() {
    env = osal::NewMemEnv(0);
    auto db_or = core::Database::Open(NodeOptions(env.get(), "leader"));
    if (!db_or.ok()) return false;
    db = std::move(db_or).value();
    if (!db->StartLeader(1).ok()) return false;
    Follower::Options fopts;
    fopts.base = NodeOptions(env.get(), "replica");
    auto f_or = Follower::Attach(env.get(), "replica", fopts);
    if (!f_or.ok()) return false;
    follower = std::move(f_or).value();
    link = std::make_unique<InProcessTransport>(follower.get());
    auto src = db->ReplicationSource();
    if (!src.ok()) return false;
    leader = std::make_unique<Leader>(*src, 1, link.get());
    return true;
  }

  bool CommitBatch(int records, int value_bytes) {
    const std::string value(value_bytes, 'v');
    for (int i = 0; i < records; ++i) {
      auto txn = db->Begin();
      if (!txn.ok()) return false;
      if (!(*txn)->Put("core", "key" + std::to_string(i % 64), value).ok()) {
        return false;
      }
      if (!db->Commit(*txn).ok()) return false;
    }
    return true;
  }
};

/// One shipping round per iteration: a fresh batch of committed bytes is
/// produced untimed, then SyncOnce moves it to the follower's staging.
void BM_ReplShipRound(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  Rig rig;
  if (!rig.Init()) {
    state.SkipWithError("rig init failed");
    return;
  }
  int64_t shipped = 0;
  for (auto _ : state) {
    state.PauseTiming();
    uint64_t before = rig.leader->acked_end();
    if (!rig.CommitBatch(records, 48)) {
      state.SkipWithError("commit failed");
      break;
    }
    state.ResumeTiming();
    if (!rig.leader->SyncOnce().ok() || rig.leader->lag_bytes() != 0) {
      state.SkipWithError("ship failed");
      break;
    }
    shipped += static_cast<int64_t>(rig.leader->acked_end() - before);
  }
  state.SetBytesProcessed(shipped);
}
BENCHMARK(BM_ReplShipRound)->Arg(64)->Arg(512);

/// One apply sweep per iteration: the staged batch is replayed by the
/// engine-reopen path and scrubbed.
void BM_ReplFollowerSweep(benchmark::State& state) {
  Rig rig;
  if (!rig.Init()) {
    state.SkipWithError("rig init failed");
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    if (!rig.CommitBatch(64, 48) || !rig.leader->SyncOnce().ok()) {
      state.SkipWithError("ship failed");
      break;
    }
    state.ResumeTiming();
    if (!rig.follower->Sweep().ok()) {
      state.SkipWithError("sweep failed");
      break;
    }
  }
}
BENCHMARK(BM_ReplFollowerSweep);

/// Full bootstrap per iteration: a fresh follower is baselined from a
/// checkpointed leader (snapshot pages + tail splice) until lag is zero.
void BM_ReplBootstrap(benchmark::State& state) {
  auto env = osal::NewMemEnv(0);
  auto db_or = core::Database::Open(NodeOptions(env.get(), "leader"));
  if (!db_or.ok() || !(*db_or)->StartLeader(1).ok()) {
    state.SkipWithError("leader init failed");
    return;
  }
  std::unique_ptr<core::Database> db = std::move(db_or).value();
  const std::string value(128, 'v');
  for (int i = 0; i < 512; ++i) {
    auto txn = db->Begin();
    if (!txn.ok()) break;
    (void)(*txn)->Put("core", "key" + std::to_string(i), value);
    (void)db->Commit(*txn);
  }
  if (!db->Checkpoint().ok()) {
    state.SkipWithError("checkpoint failed");
    return;
  }
  auto src = db->ReplicationSource();
  if (!src.ok()) {
    state.SkipWithError("source failed");
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    // Scrap the previous replica so every iteration bootstraps from nil.
    std::vector<std::string> stale;
    (void)env->ListFiles("replica", &stale);
    for (const std::string& f : stale) (void)env->DeleteFile(f);
    Follower::Options fopts;
    fopts.base = NodeOptions(env.get(), "replica");
    auto f_or = Follower::Attach(env.get(), "replica", fopts);
    if (!f_or.ok()) {
      state.SkipWithError("attach failed");
      break;
    }
    InProcessTransport link(f_or->get());
    Leader leader(*src, 1, &link);
    state.ResumeTiming();
    bool ok = false;
    for (int round = 0; round < 8; ++round) {
      if (!leader.SyncOnce().ok()) break;
      if (leader.lag_bytes() == 0) {
        ok = true;
        break;
      }
    }
    if (!ok || !f_or->get()->Sweep().ok()) {
      state.SkipWithError("bootstrap failed");
      break;
    }
  }
}
BENCHMARK(BM_ReplBootstrap);

}  // namespace
}  // namespace fame::repl

BENCHMARK_MAIN();

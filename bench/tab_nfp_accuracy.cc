// §3.2 reproduction (Feedback Approach accuracy): measured products — the
// really-compiled variant binaries with their feature selections — feed the
// feedback repository; leave-one-out evaluation compares the estimators'
// predicted binary size against the true linker output for the held-out
// product. The paper "has shown the feasibility of the idea for simple
// NFPs like code size"; this table quantifies it, including the gain of the
// similarity correction over the plain per-feature (additive) model.
#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "nfp/estimator.h"

using namespace fame;
using namespace fame::nfp;

namespace {

double SizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<double>(st.st_size);
}

struct Product {
  const char* binary;
  std::vector<std::string> features;
};

}  // namespace

int main() {
  const std::string dir = FAME_VARIANT_DIR;
  // Feature selections of the variant matrix. "cstyle" models the
  // composition mechanism itself (preprocessor builds carry dispatch glue
  // the FOP builds lack).
  const std::vector<Product> products = {
      {"bdb_c_1", {"cstyle", "btree", "hash", "queue", "crypto", "rep", "tx", "stats"}},
      {"bdb_c_2", {"cstyle", "btree", "hash", "queue", "rep", "tx", "stats"}},
      {"bdb_c_3", {"cstyle", "btree", "queue", "crypto", "rep", "tx", "stats"}},
      {"bdb_c_4", {"cstyle", "btree", "hash", "queue", "crypto", "tx", "stats"}},
      {"bdb_c_5", {"cstyle", "btree", "hash", "crypto", "rep", "tx", "stats"}},
      {"bdb_c_6", {"cstyle", "btree"}},
      {"bdb_fop_1", {"btree", "hash", "queue", "crypto", "rep", "tx", "stats"}},
      {"bdb_fop_2", {"btree", "hash", "queue", "rep", "tx", "stats"}},
      {"bdb_fop_3", {"btree", "queue", "crypto", "rep", "tx", "stats"}},
      {"bdb_fop_4", {"btree", "hash", "queue", "crypto", "tx", "stats"}},
      {"bdb_fop_5", {"btree", "hash", "crypto", "rep", "tx", "stats"}},
      {"bdb_fop_7", {"btree"}},
      {"bdb_fop_8", {"list"}},
  };

  // Measure ground truth.
  std::vector<double> truth;
  for (const Product& p : products) {
    double bytes = SizeBytes(dir + "/" + p.binary);
    if (bytes < 0) {
      std::fprintf(stderr, "missing variant binary %s\n", p.binary);
      return 1;
    }
    truth.push_back(bytes);
  }

  std::printf(
      "NFP estimation accuracy (leave-one-out over %zu measured products, "
      "binary size)\n\n",
      products.size());
  std::printf("%-10s %10s %12s %8s %12s %8s\n", "product", "actual[KB]",
              "additive[KB]", "err%", "similar.[KB]", "err%");

  double add_err_sum = 0, sim_err_sum = 0;
  for (size_t hold = 0; hold < products.size(); ++hold) {
    FeedbackRepository repo;
    for (size_t i = 0; i < products.size(); ++i) {
      if (i == hold) continue;
      MeasuredProduct mp;
      mp.features = products[i].features;
      mp.values[NfpKind::kBinarySize] = truth[i];
      repo.Add(std::move(mp));
    }
    auto additive = AdditiveEstimator::Fit(repo, NfpKind::kBinarySize);
    auto similar = SimilarityEstimator::Fit(repo, NfpKind::kBinarySize, 3);
    if (!additive.ok() || !similar.ok()) {
      std::fprintf(stderr, "estimator fit failed\n");
      return 1;
    }
    double add_est = additive->Estimate(products[hold].features);
    double sim_est = similar->Estimate(products[hold].features);
    double add_err = 100.0 * std::fabs(add_est - truth[hold]) / truth[hold];
    double sim_err = 100.0 * std::fabs(sim_est - truth[hold]) / truth[hold];
    add_err_sum += add_err;
    sim_err_sum += sim_err;
    std::printf("%-10s %10.1f %12.1f %7.1f%% %12.1f %7.1f%%\n",
                products[hold].binary, truth[hold] / 1024,
                add_est / 1024, add_err, sim_est / 1024, sim_err);
  }
  double add_mape = add_err_sum / static_cast<double>(products.size());
  double sim_mape = sim_err_sum / static_cast<double>(products.size());
  std::printf("\nmean absolute percentage error: additive %.1f%%, "
              "similarity-corrected %.1f%%\n",
              add_mape, sim_mape);

  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(add_mape < 15.0,
        "per-feature size attribution predicts unseen products (<15% MAPE)");
  check(sim_mape < 15.0, "similarity-corrected estimate is usable (<15% MAPE)");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

// Micro-benchmarks for the Concurrency feature: sharded buffer pool
// scalability (read-hot, mixed read/write) and WAL group commit
// (fsyncs amortized across concurrent committers).
//
// Run with --benchmark_out=BENCH_concurrency.json --benchmark_out_format=json
// to emit the evaluation artifact (the CI bench-smoke step does this).
// Thread counts above the machine's core count still run; scalability
// numbers are only meaningful with real cores.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "osal/allocator.h"
#include "osal/env.h"
#include "osal/slab_alloc_mt.h"
#include "storage/buffer_concurrent.h"
#include "storage/pagefile.h"
#include "tx/txmgr.h"

namespace fame::storage {
namespace {

// Shared state for multi-threaded benchmarks: google-benchmark runs the
// benchmark body once per thread, so the first thread in constructs the
// fixture and the last thread out tears it down (mutex + refcount).
struct PoolFixture {
  std::unique_ptr<osal::Env> env;
  // Sharded slab pool: frame memory comes from the same allocator the
  // concurrent engine products compose, so pool scaling includes it.
  osal::slab::ConcurrentSlabPool alloc;
  std::unique_ptr<PageFile> file;
  std::unique_ptr<ConcurrentBufferManager> bm;
  std::vector<PageId> pages;
  bool ok = false;
};

std::mutex g_fixture_mu;
PoolFixture* g_pool = nullptr;
int g_pool_refs = 0;

PoolFixture* AcquirePool(size_t frames, size_t npages) {
  std::lock_guard<std::mutex> l(g_fixture_mu);
  if (g_pool_refs++ == 0) {
    auto* f = new PoolFixture();
    f->env = osal::NewMemEnv(0);
    auto file = PageFile::Open(f->env.get(), "db", PageFileOptions{});
    if (file.ok()) {
      f->file = std::move(*file);
      auto bm = ConcurrentBufferManager::Create(f->file.get(), frames,
                                                &f->alloc,
                                                MakeReplacementPolicy("lru"));
      if (bm.ok()) {
        f->bm = std::move(*bm);
        f->ok = true;
        for (size_t i = 0; i < npages && f->ok; ++i) {
          auto guard = f->bm->New(PageType::kHeap);
          if (guard.ok()) {
            f->pages.push_back(guard->id());
          } else {
            f->ok = false;
          }
        }
      }
    }
    g_pool = f;
  }
  return g_pool;
}

void ReleasePool(benchmark::State& state) {
  std::lock_guard<std::mutex> l(g_fixture_mu);
  if (--g_pool_refs == 0) {
    // Only the last thread out sets the counter; with the default flags
    // google-benchmark sums counters across threads, so the value survives
    // unscaled (the other threads contribute zero).
    if (g_pool->bm != nullptr) {
      state.counters["hit_rate"] = g_pool->bm->stats().HitRate();
    }
    delete g_pool;
    g_pool = nullptr;
  }
}

/// Read-hot: the working set fits in the pool, every Fetch is a hit. This
/// is the path the sharded page table + atomic pins are built for: the
/// shard lock is taken shared, the pin is a fetch_add.
void BM_ConcurrentReadHot(benchmark::State& state) {
  PoolFixture* f = AcquirePool(/*frames=*/256, /*npages=*/128);
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    ReleasePool(state);
    return;
  }
  Random rng(41 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    auto guard = f->bm->Fetch(f->pages[rng.Uniform(f->pages.size())]);
    if (!guard.ok()) {
      state.SkipWithError("fetch failed");
      break;
    }
    benchmark::DoNotOptimize(guard->page().raw()[0]);
  }
  state.SetItemsProcessed(state.iterations());
  ReleasePool(state);
}
BENCHMARK(BM_ConcurrentReadHot)->ThreadRange(1, 16)->UseRealTime();

/// Mixed 90/10 read/write over a working set 4x the pool: exercises
/// eviction (exclusive shard lock + write-back under the file lock)
/// alongside shared-path hits, with skewed access so shards contend.
void BM_ConcurrentMixed(benchmark::State& state) {
  PoolFixture* f = AcquirePool(/*frames=*/128, /*npages=*/512);
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    ReleasePool(state);
    return;
  }
  Random rng(97 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    auto guard = f->bm->Fetch(f->pages[rng.Skewed(f->pages.size())]);
    if (!guard.ok()) {
      state.SkipWithError("fetch failed");
      break;
    }
    if (rng.OneIn(10)) {
      // Scribble in the free gap of the (empty) page, clear of the header
      // and slot directory; write-back re-seals the checksum.
      guard->page().raw()[guard->page().page_size() - 1] =
          static_cast<char>(rng.Next());
      guard->MarkDirty();
    } else {
      benchmark::DoNotOptimize(guard->page().raw()[0]);
    }
  }
  state.SetItemsProcessed(state.iterations());
  ReleasePool(state);
}
BENCHMARK(BM_ConcurrentMixed)->ThreadRange(1, 16)->UseRealTime();

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

/// Engine stub: committed writes land in a map (the tx layer serializes
/// applies, so no locking here).
class MapTarget : public tx::ApplyTarget {
 public:
  Status ApplyPut(const std::string& store, const Slice& key,
                  const Slice& value) override {
    data_[store + "/" + key.ToString()] = value.ToString();
    return Status::OK();
  }
  Status ApplyDelete(const std::string& store, const Slice& key) override {
    data_.erase(store + "/" + key.ToString());
    return Status::OK();
  }
  Status ReadCommitted(const std::string& store, const Slice& key,
                       std::string* value) override {
    auto it = data_.find(store + "/" + key.ToString());
    if (it == data_.end()) return Status::NotFound("no key");
    *value = it->second;
    return Status::OK();
  }
  Status CheckpointEngine() override { return Status::OK(); }

 private:
  std::map<std::string, std::string> data_;
};

struct TxFixture {
  osal::Env* env = nullptr;  // posix: real fsync is what makes batching real
  std::string log_path;
  MapTarget target;
  std::unique_ptr<tx::TransactionManager> mgr;
  bool ok = false;
};

TxFixture* g_tx = nullptr;
int g_tx_refs = 0;

/// Uses the posix env (a real WAL file under /tmp): with an in-memory env
/// fsync returns instantly and committers never overlap, so group commit
/// has nothing to batch. A real fsync blocks the epoch leader long enough
/// for followers to enqueue — that is the effect being measured.
TxFixture* AcquireTx(bool group_commit) {
  std::lock_guard<std::mutex> l(g_fixture_mu);
  if (g_tx_refs++ == 0) {
    auto* f = new TxFixture();
    f->env = osal::GetPosixEnv();
    f->log_path = "/tmp/fame_bench_group_commit.wal";
    f->env->DeleteFile(f->log_path);  // stale runs
    auto mgr =
        tx::TransactionManager::Open(f->env, f->log_path, &f->target,
                                     tx::CommitProtocol::kWalRedo,
                                     group_commit);
    if (mgr.ok()) {
      f->mgr = std::move(*mgr);
      f->ok = true;
    }
    g_tx = f;
  }
  return g_tx;
}

void ReleaseTx(benchmark::State& state) {
  std::lock_guard<std::mutex> l(g_fixture_mu);
  if (--g_tx_refs == 0) {
    if (g_tx->mgr != nullptr) {
      tx::WalStats w = g_tx->mgr->wal_stats();
      uint64_t commits = g_tx->mgr->committed();
      state.counters["fsyncs_per_commit"] =
          commits == 0 ? 0.0
                       : static_cast<double>(w.syncs) /
                             static_cast<double>(commits);
      state.counters["group_batches"] =
          static_cast<double>(w.group_batches);
    }
    std::string path = g_tx->log_path;
    osal::Env* env = g_tx->env;
    delete g_tx;
    g_tx = nullptr;
    env->DeleteFile(path);
  }
}

/// Commit-heavy: every thread runs begin -> one put -> commit in a loop on
/// its own key space (no lock conflicts). With group commit, concurrent
/// committers share one fsync per epoch, so fsyncs_per_commit drops below
/// 1 as threads are added; single-threaded it stays at ~1.
void BM_GroupCommit(benchmark::State& state) {
  TxFixture* f = AcquireTx(/*group_commit=*/true);
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    ReleaseTx(state);
    return;
  }
  const std::string key_prefix =
      "k" + std::to_string(state.thread_index()) + "_";
  uint64_t i = 0;
  for (auto _ : state) {
    auto txn = f->mgr->Begin();
    if (!txn.ok()) {
      state.SkipWithError("begin failed");
      break;
    }
    std::string key = key_prefix + std::to_string(i++);
    if (!(*txn)->Put("bench", key, "value").ok() ||
        !f->mgr->Commit(*txn).ok()) {
      state.SkipWithError("commit failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  ReleaseTx(state);
}
BENCHMARK(BM_GroupCommit)->ThreadRange(1, 16)->UseRealTime();

/// Baseline: the historical single-threaded commit path (group commit
/// off, one fsync per commit by construction).
void BM_SingleThreadCommit(benchmark::State& state) {
  TxFixture* f = AcquireTx(/*group_commit=*/false);
  if (!f->ok) {
    state.SkipWithError("fixture setup failed");
    ReleaseTx(state);
    return;
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto txn = f->mgr->Begin();
    if (!txn.ok()) {
      state.SkipWithError("begin failed");
      break;
    }
    std::string key = "k" + std::to_string(i++);
    if (!(*txn)->Put("bench", key, "value").ok() ||
        !f->mgr->Commit(*txn).ok()) {
      state.SkipWithError("commit failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  ReleaseTx(state);
}
BENCHMARK(BM_SingleThreadCommit);

}  // namespace
}  // namespace fame::storage

BENCHMARK_MAIN();

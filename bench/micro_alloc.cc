// Micro-benchmarks for the Memory-Alloc axis: single-threaded churn across
// the allocator products (Dynamic, StaticPool, StaticSlab, ST SlabPool),
// the sharded ConcurrentSlabPool under thread scaling, the cross-thread
// free storm that exercises the MPSC remote-free stacks, and cursor churn
// through the thread-local pooled operator new.
//
// Run with --benchmark_out=BENCH_alloc.json --benchmark_out_format=json
// to emit the evaluation artifact (the CI bench-smoke step does this).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/database.h"
#include "osal/allocator.h"
#include "osal/env.h"
#include "osal/slab_alloc.h"
#include "osal/slab_alloc_mt.h"

namespace fame::osal {
namespace {

using slab::ConcurrentSlabPool;
using slab::SlabPool;
using slab::StaticSlabAllocator;

// Request sizes follow the engine's own mix: index nodes and cursors are
// small-class, page frames are the large path. The live window keeps ~64
// blocks outstanding so freelists actually recycle instead of pure bump.
constexpr size_t kSizes[] = {16, 24, 64, 100, 256, 512, 1024};
constexpr size_t kNumSizes = sizeof(kSizes) / sizeof(kSizes[0]);
constexpr size_t kWindow = 64;

/// Steady-state alloc/free churn: each iteration allocates one block and
/// frees the one it displaces from the ring, so the allocator sees its
/// freelist reuse path, not just the initial carve.
void AllocChurn(benchmark::State& state, Allocator* a) {
  void* ring[kWindow] = {};
  size_t ring_size[kWindow] = {};
  size_t i = 0;
  for (auto _ : state) {
    size_t slot = i % kWindow;
    if (ring[slot] != nullptr) a->Deallocate(ring[slot], ring_size[slot]);
    size_t n = kSizes[i % kNumSizes];
    void* p = a->Allocate(n);
    if (p == nullptr) {
      state.SkipWithError("allocator exhausted");
      break;
    }
    std::memset(p, 0x5a, 1);  // touch the block, defeat dead-alloc elision
    ring[slot] = p;
    ring_size[slot] = n;
    ++i;
  }
  for (size_t s = 0; s < kWindow; ++s) {
    if (ring[s] != nullptr) a->Deallocate(ring[s], ring_size[s]);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["peak_bytes"] = static_cast<double>(a->stats().peak_bytes);
}

void BM_AllocChurnDynamic(benchmark::State& state) {
  DynamicAllocator a;
  AllocChurn(state, &a);
}
BENCHMARK(BM_AllocChurnDynamic);

void BM_AllocChurnStaticPool(benchmark::State& state) {
  StaticPoolAllocator a(1 << 20);
  AllocChurn(state, &a);
}
BENCHMARK(BM_AllocChurnStaticPool);

void BM_AllocChurnStaticSlab(benchmark::State& state) {
  StaticSlabAllocator a(1 << 20);
  AllocChurn(state, &a);
}
BENCHMARK(BM_AllocChurnStaticSlab);

void BM_AllocChurnSlabPoolST(benchmark::State& state) {
  SlabPool a;
  AllocChurn(state, &a);
}
BENCHMARK(BM_AllocChurnSlabPoolST);

// ---------------------------------------------------------------------------
// Multi-threaded: sharded pool scaling and the remote-free path
// ---------------------------------------------------------------------------

std::mutex g_mu;
ConcurrentSlabPool* g_pool = nullptr;
int g_pool_refs = 0;

ConcurrentSlabPool* AcquirePool() {
  std::lock_guard<std::mutex> l(g_mu);
  if (g_pool_refs++ == 0) g_pool = new ConcurrentSlabPool();
  return g_pool;
}

void ReleasePool(benchmark::State& state) {
  std::lock_guard<std::mutex> l(g_mu);
  if (--g_pool_refs == 0) {
    g_pool->DrainRemote();
    // Last thread out sets the counters; the others contribute zero, and
    // google-benchmark sums across threads, so the values survive unscaled.
    AllocStats st = g_pool->stats();
    state.counters["remote_frees"] = static_cast<double>(st.remote_frees);
    state.counters["leaked_bytes"] = static_cast<double>(st.live_bytes);
    delete g_pool;
    g_pool = nullptr;
  }
}

/// Same-thread churn on the shared pool: each thread lands on its own
/// shard (thread-id hash), so this measures the sharded fast path — the
/// per-shard lock is uncontended and no remote stacks are touched.
void BM_SlabPoolMTChurn(benchmark::State& state) {
  ConcurrentSlabPool* pool = AcquirePool();
  void* ring[kWindow] = {};
  size_t ring_size[kWindow] = {};
  size_t i = 0;
  for (auto _ : state) {
    size_t slot = i % kWindow;
    if (ring[slot] != nullptr) pool->Deallocate(ring[slot], ring_size[slot]);
    size_t n = kSizes[i % kNumSizes];
    void* p = pool->Allocate(n);
    std::memset(p, 0x5a, 1);
    ring[slot] = p;
    ring_size[slot] = n;
    ++i;
  }
  for (size_t s = 0; s < kWindow; ++s) {
    if (ring[s] != nullptr) pool->Deallocate(ring[s], ring_size[s]);
  }
  state.SetItemsProcessed(state.iterations());
  ReleasePool(state);
}
BENCHMARK(BM_SlabPoolMTChurn)->ThreadRange(1, 16)->UseRealTime();

// One published slot per benchmark thread: thread t publishes its own
// fresh blocks into slot[t] and steals-and-frees from slot[t+1], so the
// steals are frees of another thread's blocks — they land on the owning
// shard's MPSC remote stack instead of its freelist.
std::atomic<void*> g_slots[64];

void BM_SlabPoolCrossThreadFree(benchmark::State& state) {
  ConcurrentSlabPool* pool = AcquirePool();
  const int threads = state.threads();
  const int tid = state.thread_index();
  const int next = (tid + 1) % threads;
  if (tid == 0) {
    for (int t = 0; t < threads; ++t)
      g_slots[t].store(nullptr, std::memory_order_relaxed);
  }
  for (auto _ : state) {
    void* p = pool->Allocate(64);
    std::memset(p, 0x5a, 1);
    void* prev = g_slots[tid].exchange(p, std::memory_order_acq_rel);
    if (prev != nullptr) pool->Deallocate(prev, 64);  // neighbor lagged
    void* other = g_slots[next].exchange(nullptr, std::memory_order_acq_rel);
    if (other != nullptr) pool->Deallocate(other, 64);  // remote free
  }
  // Settle my slot so leaked_bytes reports genuine leaks only.
  void* mine = g_slots[tid].exchange(nullptr, std::memory_order_acq_rel);
  if (mine != nullptr) pool->Deallocate(mine, 64);
  state.SetItemsProcessed(state.iterations());
  ReleasePool(state);
}
BENCHMARK(BM_SlabPoolCrossThreadFree)->ThreadRange(2, 16)->UseRealTime();

// ---------------------------------------------------------------------------
// Cursor churn: the pooled operator new on the engine hot path
// ---------------------------------------------------------------------------

/// Open/seek/step/close on a preloaded engine. Every NewCursor heap-
/// allocates an index::Cursor; with FAME_SLAB_ENABLED those come from the
/// thread-local pooled cache, so steady-state churn never reaches malloc.
void BM_CursorChurn(benchmark::State& state) {
  auto env = osal::NewMemEnv(0);
  core::DbOptions opts;
  opts.env = env.get();
  opts.path = "bench.db";
  auto db_or = core::Database::Open(opts);
  if (!db_or.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto db = std::move(*db_or);
  for (int i = 0; i < 512; ++i) {
    std::string key = "key" + std::to_string(1000 + i);
    if (!db->Put(key, "value-payload-0123456789").ok()) {
      state.SkipWithError("preload failed");
      return;
    }
  }
  for (auto _ : state) {
    auto c = db->NewCursor();
    if (!c.ok()) {
      state.SkipWithError("cursor failed");
      break;
    }
    c->SeekToFirst();
    for (int i = 0; i < 8 && c->Valid(); ++i) {
      benchmark::DoNotOptimize(c->value().size());
      c->Next();
    }
  }
  state.SetItemsProcessed(state.iterations());
#if FAME_SLAB_ENABLED
  state.counters["pool_hits"] =
      static_cast<double>(slab::PooledThreadStats().hits);
#endif
}
BENCHMARK(BM_CursorChurn);

}  // namespace
}  // namespace fame::osal

BENCHMARK_MAIN();

// §3.2 reproduction (greedy CSP): the paper copes with the NP-complete
// optimal-configuration problem using a greedy algorithm. This table sweeps
// ROM budgets over the FAME-DBMS model and compares the greedy derivation
// against the exhaustive optimum: achieved utility, budget adherence, and
// search effort (candidates evaluated).
#include <cstdio>

#include "featuremodel/fame_model.h"
#include "nfp/optimizer.h"

using namespace fame;
using namespace fame::nfp;

namespace {

/// Synthetic but structured repository: per-feature ROM costs in KB,
/// loosely shaped like the measured variant matrix (minimal product ~40 KB,
/// transactions are the most expensive feature).
FeedbackRepository BuildRepo(const fm::FeatureModel& model) {
  const std::map<std::string, double> cost_kb = {
      {"Put", 2},        {"Remove", 3},      {"Update", 3},
      {"BTree-Update", 2}, {"BTree-Remove", 4}, {"B+-Tree", 18},
      {"List", 6},       {"Transaction", 34}, {"Locking", 8},
      {"WAL-Redo", 6},   {"Force-Commit", 2}, {"API", 9},
      {"SQL-Engine", 28}, {"Optimizer", 7},   {"LFU", 2},
      {"Clock", 2},      {"String-Types", 3}, {"Blob-Types", 3},
  };
  FeedbackRepository repo;
  auto variants = model.EnumerateVariants(100'000);
  if (!variants.ok()) return repo;
  // Measure a sample of variants (a realistically partial repository).
  size_t i = 0;
  for (const auto& v : *variants) {
    if (++i % 23 != 0) continue;
    MeasuredProduct mp;
    mp.features = v.SelectedNames();
    double kb = 40;
    for (const std::string& f : mp.features) {
      auto it = cost_kb.find(f);
      if (it != cost_kb.end()) kb += it->second;
    }
    mp.values[NfpKind::kBinarySize] = kb;
    repo.Add(std::move(mp));
  }
  return repo;
}

}  // namespace

int main() {
  auto model = fm::BuildFameDbmsModel();
  FeedbackRepository repo = BuildRepo(*model);
  std::printf("greedy vs exhaustive product derivation on the FAME-DBMS "
              "model\n(%zu measured products in the feedback repository)\n\n",
              repo.size());

  DerivationRequest base;
  base.utility = {{"Transaction", 10}, {"SQL-Engine", 8}, {"Optimizer", 3},
                  {"Update", 4},       {"Remove", 4},     {"API", 5},
                  {"Locking", 2},      {"String-Types", 2}};

  std::printf("%-12s %14s %14s %8s %12s %12s\n", "ROM budget", "greedy util",
              "optimal util", "ratio", "greedy evals", "exact evals");

  int pass = 0, fail = 0;
  bool all_within_budget = true, never_beats = true, cheaper_search = true;
  double worst_ratio = 1.0, ratio_sum = 0;
  int ratio_count = 0;
  for (double budget_kb : {45, 60, 75, 90, 110, 130, 160}) {
    DerivationRequest req = base;
    req.partial = fm::Configuration(model.get());
    req.constraints = {{NfpKind::kBinarySize, budget_kb}};
    auto est = FitEstimators(repo, req.constraints);
    if (!est.ok()) {
      std::fprintf(stderr, "fit failed: %s\n",
                   est.status().ToString().c_str());
      return 1;
    }
    auto greedy = GreedyDerive(*model, req, *est);
    auto exact = ExhaustiveDerive(*model, req, *est);
    if (!greedy.ok() || !exact.ok()) {
      std::printf("%-12.0f %14s %14s\n", budget_kb, "infeasible",
                  "infeasible");
      continue;
    }
    double ratio = exact->utility > 0 ? greedy->utility / exact->utility : 1;
    worst_ratio = std::min(worst_ratio, ratio);
    ratio_sum += ratio;
    ++ratio_count;
    std::printf("%-12.0f %14.1f %14.1f %7.0f%% %12llu %12llu\n", budget_kb,
                greedy->utility, exact->utility, ratio * 100,
                static_cast<unsigned long long>(greedy->evaluated),
                static_cast<unsigned long long>(exact->evaluated));
    if (greedy->estimates.at(NfpKind::kBinarySize) > budget_kb + 0.5) {
      all_within_budget = false;
    }
    if (greedy->utility > exact->utility + 1e-9) never_beats = false;
    if (greedy->evaluated > exact->evaluated) cheaper_search = false;
  }

  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks:\n");
  check(all_within_budget, "greedy never exceeds the resource constraint");
  check(never_beats, "greedy utility <= exhaustive optimum (sanity)");
  double mean_ratio = ratio_count > 0 ? ratio_sum / ratio_count : 0;
  std::printf("  (mean greedy/optimal ratio %.0f%%, worst %.0f%% — greedy "
              "cannot swap\n   alternative-group defaults, which bites at "
              "the tightest budgets)\n",
              mean_ratio * 100, worst_ratio * 100);
  check(mean_ratio >= 0.70,
        "greedy achieves >= 70% of the optimum on average over the sweep");
  check(cheaper_search, "greedy evaluates fewer candidates than exhaustive");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

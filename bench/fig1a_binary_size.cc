// Figure 1a reproduction: binary size of the FameBDB configuration matrix,
// C (preprocessor) series vs FOP (FeatureC++-style) series. Sizes come from
// the actually-linked, stripped variant executables in build/variants/.
//
// Expected shape (paper §2.2): (i) FOP never larger than C per
// configuration, (ii) stripping features shrinks the binary, (iii) the
// minimal FOP variants (7, 8) are the smallest.
#include <sys/stat.h>

#include <cstdio>
#include <map>
#include <string>

namespace {

double SizeKb(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<double>(st.st_size) / 1024.0;
}

}  // namespace

int main() {
  const std::string dir = FAME_VARIANT_DIR;
  struct Config {
    int number;
    const char* label;
    const char* c_name;    // nullptr = no C build of this configuration
    const char* fop_name;  // nullptr = no FOP build
  };
  const Config configs[] = {
      {1, "complete configuration", "bdb_c_1", "bdb_fop_1"},
      {2, "without feature Crypto", "bdb_c_2", "bdb_fop_2"},
      {3, "without feature Hash", "bdb_c_3", "bdb_fop_3"},
      {4, "without feature Replication", "bdb_c_4", "bdb_fop_4"},
      {5, "without feature Queue", "bdb_c_5", "bdb_fop_5"},
      {6, "minimal C version (B-tree)", "bdb_c_6", nullptr},
      {7, "minimal FOP version (B-tree)", nullptr, "bdb_fop_7"},
      {8, "minimal FOP version (List)", nullptr, "bdb_fop_8"},
  };

  std::printf("Figure 1a — binary size of FameBDB variants [KB]\n");
  std::printf("%-3s  %-32s  %10s  %12s\n", "cfg", "configuration", "C",
              "FeatureC++");
  std::map<int, double> c_size, fop_size;
  for (const Config& cfg : configs) {
    double c = cfg.c_name ? SizeKb(dir + "/" + cfg.c_name) : -1;
    double f = cfg.fop_name ? SizeKb(dir + "/" + cfg.fop_name) : -1;
    if (c >= 0) c_size[cfg.number] = c;
    if (f >= 0) fop_size[cfg.number] = f;
    auto cell = [](double v) {
      static char buf[2][32];
      static int which = 0;
      which ^= 1;
      if (v < 0) {
        std::snprintf(buf[which], sizeof(buf[which]), "%10s", "-");
      } else {
        std::snprintf(buf[which], sizeof(buf[which]), "%10.1f", v);
      }
      return buf[which];
    };
    std::printf("%-3d  %-32s  %10s  %12s\n", cfg.number, cfg.label,
                cell(c), cell(f));
  }

  // ---- shape checks against the paper's claims ----
  int pass = 0, fail = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    (ok ? pass : fail)++;
  };
  std::printf("\nshape checks (paper section 2.2):\n");
  bool fop_never_larger = true;
  for (int n = 1; n <= 5; ++n) {
    if (fop_size.count(n) && c_size.count(n) &&
        fop_size[n] > c_size[n] * 1.02) {
      fop_never_larger = false;
    }
  }
  check(fop_never_larger,
        "C -> FeatureC++ does not increase binary size (configs 1-5)");
  check(c_size[6] < c_size[1],
        "stripping features shrinks the C binary (cfg 6 < cfg 1)");
  bool stripped_shrink = c_size[2] < c_size[1] && c_size[3] < c_size[1] &&
                         c_size[4] < c_size[1] && c_size[5] < c_size[1];
  check(stripped_shrink,
        "every removed feature reduces size (configs 2-5 < config 1)");
  check(fop_size[7] < c_size[6],
        "minimal FOP variant beats the minimal C variant (cfg 7 < cfg 6)");
  check(fop_size[8] < fop_size[7],
        "the List-index variant is the smallest (cfg 8 < cfg 7)");
  std::printf("\n%d checks passed, %d failed\n", pass, fail);
  return fail == 0 ? 0 : 1;
}

// Personal calendar application (the paper's running example): stores
// appointments in a transactional B-tree database.
#include <bdb/c_style.h>
#include <string>

static FameBdbC* OpenCalendarDb(osal::Env* env) {
  int env_flags = DB_CREATE | DB_INIT_TXN | DB_INIT_LOG;
  DbEnv dbenv;
  dbenv.open("/data/calendar", env_flags);
  Db db;
  db.open("appointments", DB_BTREE);
  return 0;
}

int AddAppointment(FameBdbC& db, const std::string& when,
                   const std::string& what) {
  auto txn = db.txn_begin();
  db.txn_put(txn, when, what);
  db.txn_commit(txn);
  return 0;
}

void ListWeek(FameBdbC& db) {
  db.range_scan("2026-07-06", "2026-07-13",
                [](const Slice& k, const Slice& v) { return true; });
}

void RemoveAppointment(FameBdbC& db, const std::string& when) {
  db.del(when);
}

int main() {
  osal::Env* env = 0;
  FameBdbC* db = OpenCalendarDb(env);
  AddAppointment(*db, "2026-07-08", "EDBT submission");
  ListWeek(*db);
  RemoveAppointment(*db, "2026-07-08");
  return 0;
}

// Store-and-forward message broker for a sensor network: queue access
// method plus operational statistics.
#include <bdb/c_style.h>

void Pump(Db& db) {
  std::string msg;
  while (db.dequeue(&msg) == 0) {
    // forward(msg)
  }
  db.stat_print();
}

int main() {
  Db db;
  db.open("outbox", DB_QUEUE);
  db.enqueue("hello");
  db.enqueue("world");
  Pump(db);
  return 0;
}

// Credential store on a handheld device: encrypted values, periodic
// checkpoints, explicit update of existing entries.
#include <bdb/c_style.h>

int main() {
  int flags = DB_CREATE | DB_ENCRYPT;
  DbEnv env;
  env.set_encrypt("passphrase");
  env.open("/secure/vault", flags);
  Db db;
  db.open("secrets", DB_BTREE);
  db.put("wifi", "old-password");
  db.update("wifi", "new-password");
  db.checkpoint();
  return 0;
}

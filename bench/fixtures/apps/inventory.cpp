// Warehouse hand scanner: hash-indexed part lookups, cursor reports,
// cache tuned for the device's small RAM.
#include <bdb/c_style.h>

void Report(Db& db) {
  db.cursor([](const Slice& k, const Slice& v) { return true; });
}

int main() {
  Db db;
  db.set_cachesize(64 * 1024);
  db.open("parts", DB_HASH);
  db.put("part-4711", "M4 screw");
  std::string v;
  db.get("part-4711", &v);
  db.del("part-0000");
  Report(db);
  return 0;
}

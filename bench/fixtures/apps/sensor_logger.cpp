// Deeply embedded sensor firmware: append readings, read them back.
// Needs almost nothing from the database.
#include <bdb/c_style.h>

int main() {
  Db db;
  db.open("readings", DB_BTREE);
  db.put("t-000", "21.5");
  db.put("t-001", "21.7");
  std::string v;
  db.get("t-000", &v);
  return 0;
}

// Vehicle fleet head unit: replicates configuration data to backup ECUs
// and verifies database integrity after power loss.
#include <bdb/c_style.h>

int main() {
  int flags = DB_CREATE | DB_INIT_REP;
  DbEnv env;
  env.open("/ecu/config", flags);
  env.rep_start();
  Db db;
  db.open("config", DB_BTREE);
  db.put("tirepressure.threshold", "2.3");
  db.verify();
  return 0;
}

#!/usr/bin/env python3
"""Compare benchmark runs of the obs-off and obs-on builds.

Usage:
    compare_obs.py OFF.json ON.json [--out BENCH_obs.json] [--threshold 1.02]

Both inputs are Google Benchmark JSON (--benchmark_out_format=json) from the
same benchmark binary built twice: once with -DFAME_OBSERVABILITY=OFF and
once with the default ON. Benchmarks are matched by name; for each pair the
ratio off/on of real_time is computed (ratio < 1 means the off build is
faster, as expected when instrumentation compiles out).

The guard is the zero-overhead claim in the direction that can actually
break: a build with observability *disabled* must not run slower than the
instrumented build beyond noise. Exits nonzero when the geomean ratio
exceeds the threshold (default 1.02 = 2%).

The merged report (per-benchmark ratios + geomean + verdict) is written to
--out for the CI artifact.
"""

import argparse
import json
import math
import sys


def load_times(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = float(b["real_time"])
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("off_json", help="benchmark JSON from the obs-off build")
    ap.add_argument("on_json", help="benchmark JSON from the obs-on build")
    ap.add_argument("--out", default="BENCH_obs.json")
    ap.add_argument("--threshold", type=float, default=1.02,
                    help="max allowed geomean of off/on real_time ratios")
    args = ap.parse_args()

    off = load_times(args.off_json)
    on = load_times(args.on_json)
    common = sorted(set(off) & set(on))
    if not common:
        print("compare_obs: no common benchmarks between inputs",
              file=sys.stderr)
        return 2

    rows = []
    log_sum = 0.0
    for name in common:
        ratio = off[name] / on[name] if on[name] > 0 else float("inf")
        log_sum += math.log(ratio)
        rows.append({"name": name, "off_ns": off[name], "on_ns": on[name],
                     "off_over_on": round(ratio, 4)})
    geomean = math.exp(log_sum / len(common))
    ok = geomean <= args.threshold

    report = {
        "benchmarks": rows,
        "geomean_off_over_on": round(geomean, 4),
        "threshold": args.threshold,
        "ok": ok,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for r in rows:
        print(f"{r['name']}: off/on = {r['off_over_on']:.4f}")
    print(f"geomean off/on = {geomean:.4f} (threshold {args.threshold})")
    if not ok:
        print("FAIL: the observability-disabled build is slower than the "
              "instrumented build beyond noise — gating overhead leaked into "
              "the off configuration", file=sys.stderr)
        return 1
    print("OK: obs-off build within noise of obs-on")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Order-preserving key encodings ("Data Types" feature): the indexes compare
// keys bytewise, so typed values must be serialized such that bytewise order
// equals value order.
#ifndef FAME_INDEX_KEYS_H_
#define FAME_INDEX_KEYS_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace fame::index {

/// Unsigned integers: big-endian.
inline std::string EncodeU32Key(uint32_t v) {
  std::string s(4, '\0');
  for (int i = 3; i >= 0; --i) {
    s[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return s;
}

inline std::string EncodeU64Key(uint64_t v) {
  std::string s(8, '\0');
  for (int i = 7; i >= 0; --i) {
    s[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return s;
}

/// Signed integers: flip the sign bit, then big-endian, so negative values
/// sort before positive ones.
inline std::string EncodeI64Key(int64_t v) {
  return EncodeU64Key(static_cast<uint64_t>(v) ^ (1ull << 63));
}

inline std::string EncodeI32Key(int32_t v) {
  return EncodeU32Key(static_cast<uint32_t>(v) ^ (1u << 31));
}

inline uint64_t DecodeU64Key(const Slice& s) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < s.size(); ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

inline uint32_t DecodeU32Key(const Slice& s) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4 && i < s.size(); ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

inline int64_t DecodeI64Key(const Slice& s) {
  return static_cast<int64_t>(DecodeU64Key(s) ^ (1ull << 63));
}

inline int32_t DecodeI32Key(const Slice& s) {
  return static_cast<int32_t>(DecodeU32Key(s) ^ (1u << 31));
}

/// Strings are already bytewise-ordered; provided for symmetry.
inline std::string EncodeStringKey(const Slice& s) { return s.ToString(); }

}  // namespace fame::index

#endif  // FAME_INDEX_KEYS_H_

// Common index abstractions (the "Index" feature group of Figure 2:
// B+-Tree | List, extended with Hash and Queue access methods for the
// Berkeley-DB-substitute product line).
//
// Indexes map byte-string keys to 64-bit payloads (typically a packed
// storage::Rid). Key ordering is plain bytewise comparison; the data-type
// layer produces order-preserving encodings (see keys.h).
#ifndef FAME_INDEX_INDEX_H_
#define FAME_INDEX_INDEX_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "index/cursor.h"

namespace fame::index {

/// Minimal key-to-u64 map interface shared by all access methods. Virtual
/// dispatch is only paid by the *dynamic* (component-composed) products;
/// statically composed products use the concrete classes directly.
class KeyValueIndex {
 public:
  virtual ~KeyValueIndex() = default;

  /// Inserts or overwrites `key`.
  virtual Status Insert(const Slice& key, uint64_t value) = 0;
  /// Point lookup; NotFound if absent.
  virtual Status Lookup(const Slice& key, uint64_t* value) = 0;
  /// Removes `key`; NotFound if absent.
  virtual Status Remove(const Slice& key) = 0;
  /// Opens a pull-based cursor (the one traversal primitive; see cursor.h).
  /// Mutating the index invalidates open cursors.
  virtual StatusOr<std::unique_ptr<Cursor>> NewCursor() = 0;
  /// Visits all entries (ordered for ordered indexes). Implemented once
  /// over NewCursor(); access methods contain no visitor traversal logic.
  virtual Status Scan(const ScanVisitor& visit);
  /// Live entry count.
  virtual StatusOr<uint64_t> Count() = 0;
  /// Stable feature name: "btree", "list", "hash", "queue".
  virtual const char* name() const = 0;
  /// True when Scan/RangeScan return keys in byte order.
  virtual bool ordered() const = 0;
};

/// Ordered index with range scans (B+-tree; List satisfies it by scanning).
class OrderedIndex : public KeyValueIndex {
 public:
  /// Visits entries with lo <= key < hi (empty hi = unbounded). Emission is
  /// sorted only when ordered() — the List alternative filters a storage-
  /// order walk. Implemented once over NewCursor().
  virtual Status RangeScan(const Slice& lo, const Slice& hi,
                           const ScanVisitor& visit);
};

}  // namespace fame::index

#endif  // FAME_INDEX_INDEX_H_

// Leaf-resident B+-tree cursor: descends once per Seek*, then iterates
// inside the pinned leaf and hops the sibling chain — no per-call
// re-descent, one page pinned at a time (the embedded memory budget).
//
// Templated on the buffer-pool threading policy so read-only cursors can
// run over BasicBufferManager<MultiThreaded> (the Concurrency feature);
// BPlusTree itself hands out the SingleThreaded instantiation.
//
// Reverse iteration (the ReverseScan feature) walks the leaf backwards;
// crossing a leaf boundary re-descends for the last key below the current
// leaf's fence — there is no back-link on the chain (and adding one would
// double the pointer maintenance every split/merge pays), so Prev() is
// O(log n) per leaf boundary and O(1) within a leaf.
#ifndef FAME_INDEX_BTREE_CURSOR_H_
#define FAME_INDEX_BTREE_CURSOR_H_

#include <string>

#include "index/btree_node.h"
#include "index/cursor.h"
#include "storage/buffer.h"

namespace fame::index {

template <typename Threading>
class BasicBtreeCursor final : public Cursor {
 public:
  using Buffers = storage::BasicBufferManager<Threading>;
  using Guard = storage::BasicPageGuard<Threading>;

  /// Iterates the tree rooted at `root` (as persisted under "btree:<name>").
  /// The tree must not be mutated while the cursor is open.
  BasicBtreeCursor(Buffers* buffers, storage::PageId root)
      : buffers_(buffers),
        root_(root),
        page_size_(buffers->file()->page_size()) {}

  /// Live-root variant: every descent (Seek*/Prev's re-descend) re-reads
  /// `*root`, so the cursor keeps landing on the current structure after a
  /// root split — provided the caller serializes descents against
  /// mutations (the MVCC physical latch does; single-threaded engines
  /// trivially do). BPlusTree::NewCursor hands out this form pointed at
  /// its own root field.
  BasicBtreeCursor(Buffers* buffers, const storage::PageId* root)
      : buffers_(buffers),
        root_(*root),
        root_src_(root),
        page_size_(buffers->file()->page_size()) {}

  void SeekToFirst() override { Seek(Slice()); }

  void Seek(const Slice& target) override {
    Reset();
    storage::PageId page = RootNow();
    while (true) {
      auto guard_or = buffers_->Fetch(page);
      if (!Check(guard_or.status())) return;
      Pin(std::move(guard_or).value());
      BtreeNode node = View();
      if (node.is_leaf()) break;
      page = target.empty() ? node.ChildAt(0) : node.ChildFor(target);
    }
    bool equal = false;
    idx_ = target.empty() ? 0 : View().LowerBound(target, &equal);
    SkipEmptyForward();
  }

  // Equivalent to guard_.valid() && status_.ok(): every error path and
  // clean end goes through Unpin(), so the frame pointer alone decides.
  bool Valid() const override { return frame_ != nullptr; }

  void Next() override {
    ++idx_;
    SkipEmptyForward();
  }

  Slice key() const override { return View().KeyAt(idx_); }
  uint64_t value() const override { return View().PayloadAt(idx_); }
  const Status& status() const override { return status_; }

  // ---- ReverseScan feature ----
  bool SupportsReverse() const override { return true; }

  /// Batch form of the step API for the visitor adapters: drives `visit`
  /// over [lo, hi) with leaf-local loop state (index, node view, count) in
  /// locals instead of members, which the opaque visit call would otherwise
  /// force to memory every entry. Traversal itself is the same Seek /
  /// SkipEmptyForward code the step API uses.
  Status DriveRange(const Slice& lo, const Slice& hi,
                    const ScanVisitor& visit) {
    if (lo.empty()) {
      SeekToFirst();
    } else {
      Seek(lo);
    }
    while (frame_ != nullptr) {
      BtreeNode node = View();
      const uint16_t n = count_;
      for (uint16_t i = idx_; i < n; ++i) {
        Slice k = node.KeyAt(i);
        if (!hi.empty() && k.compare(hi) >= 0) {
          Unpin();
          return status_;
        }
        if (!visit(k, node.PayloadAt(i))) {
          Unpin();
          return status_;
        }
      }
      idx_ = n;
      SkipEmptyForward();
    }
    return status_;
  }

  void SeekToLast() override {
    Reset();
    storage::PageId page = RootNow();
    while (true) {
      auto guard_or = buffers_->Fetch(page);
      if (!Check(guard_or.status())) return;
      Pin(std::move(guard_or).value());
      BtreeNode node = View();
      if (node.is_leaf()) break;
      page = node.ChildAt(node.count());  // rightmost child
    }
    if (count_ == 0) {  // empty tree (root leaf)
      Invalidate();
      return;
    }
    idx_ = static_cast<uint16_t>(count_ - 1);
  }

  void Prev() override {
    if (idx_ > 0) {
      --idx_;
      return;
    }
    // At the leaf's first entry: the predecessor is the last key below this
    // leaf's fence. No back-link on the chain, so re-descend for it.
    std::string bound = View().KeyAt(0).ToString();
    Unpin();
    if (!FindLastBelow(RootNow(), Slice(bound))) Invalidate();
  }

 protected:
  void Invalidate() override { Unpin(); }

 private:
  /// The frame pointer and page size are cached so the hot per-entry calls
  /// (key/value/Next) build node views without chasing guard_ → frame →
  /// file → page_size on every step.
  BtreeNode View() const { return BtreeNode(frame_, page_size_); }

  storage::PageId RootNow() const {
    return root_src_ != nullptr ? *root_src_ : root_;
  }

  void Pin(Guard guard) {
    guard_ = std::move(guard);
    frame_ = guard_.page().raw();
    count_ = View().count();
  }

  void Unpin() {
    guard_ = Guard();
    frame_ = nullptr;
    count_ = 0;
  }

  void Reset() {
    Unpin();
    status_ = Status::OK();
    idx_ = 0;
  }

  /// Records a fetch failure and invalidates; returns s.ok().
  bool Check(const Status& s) {
    if (s.ok()) return true;
    status_ = s;
    Invalidate();
    return false;
  }

  /// Hops the sibling chain while idx_ is past the current leaf's entries.
  /// (Non-root leaves are never left empty — an empty leaf always merges —
  /// so this loops more than once only on a damaged chain.)
  void SkipEmptyForward() {
    while (frame_ != nullptr && idx_ >= count_) {
      storage::PageId next = View().link();
      Unpin();
      if (next == storage::kInvalidPageId) return;  // clean end
      auto guard_or = buffers_->Fetch(next);
      if (!Check(guard_or.status())) return;
      Pin(std::move(guard_or).value());
      idx_ = 0;
    }
  }

  /// Positions at the last key < bound in the subtree at `page`; descends
  /// right-to-left over the candidate children (only the first candidate
  /// can miss, and only at the leaf boundary, so this stays O(log n)).
  bool FindLastBelow(storage::PageId page, const Slice& bound) {
    auto guard_or = buffers_->Fetch(page);
    if (!Check(guard_or.status())) return false;
    Guard guard = std::move(guard_or).value();
    BtreeNode node(guard.page().raw(), page_size_);
    bool equal = false;
    uint16_t i = node.LowerBound(bound, &equal);
    if (node.is_leaf()) {
      if (i == 0) return false;  // every key here is >= bound
      Pin(std::move(guard));
      idx_ = static_cast<uint16_t>(i - 1);
      return true;
    }
    for (int j = i; j >= 0; --j) {
      if (FindLastBelow(node.ChildAt(static_cast<uint16_t>(j)), bound)) {
        return true;
      }
      if (!status_.ok()) return false;
    }
    return false;
  }

  Buffers* buffers_;
  storage::PageId root_;
  const storage::PageId* root_src_ = nullptr;  // live root, when provided
  uint32_t page_size_;       // cached from the page file (immutable)
  Guard guard_;              // pinned current leaf; invalid = unpositioned
  char* frame_ = nullptr;    // guard_'s frame data, cached for View()
  uint16_t count_ = 0;       // entry count of the pinned leaf
  uint16_t idx_ = 0;         // entry within the leaf
  Status status_;
};

using BtreeCursor = BasicBtreeCursor<storage::SingleThreaded>;

}  // namespace fame::index

#endif  // FAME_INDEX_BTREE_CURSOR_H_

// HashIndex: static-bucket hash access method with per-bucket overflow
// chains (the HASH access method of the Berkeley-DB-substitute product
// line). O(1) expected point operations, no order.
//
// Layout: `bucket_count` bucket head pages are allocated at creation; their
// ids are stored in a bucket directory page persisted as the index root.
// Each bucket is a chain of slotted pages holding
// [u16 klen][key][u64 payload] entries.
#ifndef FAME_INDEX_HASH_INDEX_H_
#define FAME_INDEX_HASH_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "storage/buffer.h"

namespace fame::index {

class HashIndex final : public KeyValueIndex {
 public:
  /// Opens the hash index `name`, creating it with `bucket_count` buckets
  /// (power of two, <= page_size/4 entries in the directory page) on first
  /// use. The bucket count of an existing index is read from storage and
  /// `bucket_count` is ignored.
  static StatusOr<std::unique_ptr<HashIndex>> Open(
      storage::BufferManager* buffers, const std::string& name,
      uint32_t bucket_count = 64);

  Status Insert(const Slice& key, uint64_t value) override;
  Status Lookup(const Slice& key, uint64_t* value) override;
  Status Remove(const Slice& key) override;
  /// Bucket-by-bucket chain cursor; Seek filters (no order).
  StatusOr<std::unique_ptr<Cursor>> NewCursor() override;
  StatusOr<uint64_t> Count() override;
  const char* name() const override { return "hash"; }
  bool ordered() const override { return false; }

  uint32_t bucket_count() const { return static_cast<uint32_t>(buckets_.size()); }
  /// Average chain length (pages per bucket); load-factor probe for tests.
  StatusOr<double> AverageChainLength();

 private:
  HashIndex(storage::BufferManager* buffers, std::string name)
      : buffers_(buffers), name_(std::move(name)) {}

  uint32_t BucketFor(const Slice& key) const;
  static uint64_t HashBytes(const Slice& key);

  storage::BufferManager* buffers_;
  std::string name_;
  storage::PageId directory_ = storage::kInvalidPageId;
  std::vector<storage::PageId> buckets_;
};

}  // namespace fame::index

#endif  // FAME_INDEX_HASH_INDEX_H_

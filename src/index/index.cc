#include "index/index.h"

namespace fame::index {

Status KeyValueIndex::Scan(const ScanVisitor& visit) {
  FAME_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> c, NewCursor());
  return CursorScan(c.get(), Slice(), Slice(), ordered(), visit);
}

Status OrderedIndex::RangeScan(const Slice& lo, const Slice& hi,
                               const ScanVisitor& visit) {
  FAME_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> c, NewCursor());
  return CursorScan(c.get(), lo, hi, ordered(), visit);
}

}  // namespace fame::index

// Disk-based B+-tree over the buffer manager: the "B+-Tree" index
// alternative of the FAME-DBMS feature diagram. Supports point lookups,
// upsert, deletion with borrow/merge rebalancing, and ordered range scans
// via the leaf sibling chain.
//
// Keys are variable-length byte strings compared bytewise; payloads are
// 64-bit values (typically packed Rids). Keys must be unique (the engine
// layers enforce this; Insert is an upsert).
#ifndef FAME_INDEX_BPLUS_TREE_H_
#define FAME_INDEX_BPLUS_TREE_H_

#include <memory>
#include <string>

#include "index/btree_node.h"
#include "index/index.h"
#include "obs/obs.h"
#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#endif
#include "storage/buffer.h"

namespace fame::index {

class BPlusTree final : public OrderedIndex {
 public:
  /// Opens (creating on first use) the tree named `name` in the page file
  /// behind `buffers`.
  static StatusOr<std::unique_ptr<BPlusTree>> Open(storage::BufferManager* buffers,
                                                   const std::string& name);

  Status Insert(const Slice& key, uint64_t value) override;
  Status Lookup(const Slice& key, uint64_t* value) override;
  Status Remove(const Slice& key) override;
  /// Leaf-resident cursor (BtreeCursor): one descent per Seek, sibling-chain
  /// hops after that. Supports reverse iteration (the ReverseScan feature).
  StatusOr<std::unique_ptr<Cursor>> NewCursor() override;
  /// Visitor adapters driving a stack-allocated concrete cursor, so the
  /// per-entry calls devirtualize (no heap cursor, no vtable per step).
  Status Scan(const ScanVisitor& visit) override;
  Status RangeScan(const Slice& lo, const Slice& hi,
                   const ScanVisitor& visit) override;
  StatusOr<uint64_t> Count() override;
  const char* name() const override { return "btree"; }
  bool ordered() const override { return true; }

  /// Current root page, for cursors over other pool instantiations of the
  /// same file (e.g. BasicBtreeCursor<MultiThreaded>) and for tests.
  storage::PageId root() const { return root_; }

  /// Height of the tree (1 = root is a leaf). For tests and stats.
  StatusOr<uint32_t> Height();

  /// Checks structural invariants: page type tags, key order within nodes,
  /// separator correctness, uniform leaf depth, occupancy bounds, and
  /// sibling-link consistency (the leaf chain must equal the in-order leaf
  /// sequence and terminate). Used by property tests and VerifyIntegrity.
  Status CheckInvariants();

  /// Maximum key length this tree accepts (a node must hold >= 4 entries).
  size_t MaxKeySize() const;

#if FAME_OBS_ENABLED
  /// [feature Observability] Structural counters: completed splits and
  /// merges, and root-to-leaf descents (one per Lookup/Insert/Remove).
  /// SharedCells: concurrent products read the tree from several threads.
  const obs::BasicBtreeMetrics<obs::SharedCells>& metrics() const {
    return metrics_;
  }
#endif

  /// [extension] Bulk-loads `entries` (strictly ascending keys, unique)
  /// into an *empty* tree by packing leaves bottom-up to `fill` (0.5–1.0,
  /// default 0.9) and building the inner levels from the leaf fence keys —
  /// O(n) instead of n inserts, and the resulting leaves are packed instead
  /// of half-full. InvalidArgument if the tree is not empty or the input is
  /// not strictly ascending.
  Status BulkLoad(
      const std::vector<std::pair<std::string, uint64_t>>& entries,
      double fill = 0.9);

 private:
  BPlusTree(storage::BufferManager* buffers, std::string name)
      : buffers_(buffers), name_(std::move(name)) {}

  /// Splits the (full) child at logical position `pos` of `parent`,
  /// inserting the separator into `parent` (which must have room — the
  /// preemptive descent guarantees it). Fails only before any mutation.
  Status SplitChild(BtreeNode* parent, storage::PageGuard* parent_guard,
                    uint16_t pos);
  Status RemoveRec(storage::PageId page, const Slice& key, bool* underflow);
  /// Rebalances the child at logical position `pos` of inner node `parent`.
  Status RebalanceChild(BtreeNode* parent, storage::PageGuard* parent_guard,
                        uint16_t pos);

  Status PersistRoot();
  size_t NodeCapacity() const {
    return buffers_->file()->page_size() - BtreeNode::kHeaderSize;
  }
  size_t UnderflowThreshold() const { return NodeCapacity() / 4; }

  Status CheckNodeInvariants(storage::PageId page, const Slice& lo,
                             const Slice& hi, uint32_t depth,
                             uint32_t* leaf_depth,
                             std::vector<storage::PageId>* leaves);

  storage::BufferManager* buffers_;
  std::string name_;
  storage::PageId root_ = storage::kInvalidPageId;
#if FAME_OBS_ENABLED
  mutable obs::BasicBtreeMetrics<obs::SharedCells> metrics_;
#endif
};

}  // namespace fame::index

#endif  // FAME_INDEX_BPLUS_TREE_H_

// Pull-based cursor: the open/next/close operator interface every access
// method implements (the iterator shape code-generating engines compile
// into tight loops). One cursor protocol replaces the push-style
// ScanVisitor plumbing that used to be re-implemented per layer; the
// visitor entry points survive as thin adapters (CursorScan).
//
// Protocol:
//   - A fresh cursor is not positioned; call SeekToFirst()/Seek()/
//     SeekToLast() before anything else.
//   - Valid() gates key()/value()/Next()/Prev(). An exhausted or errored
//     cursor is !Valid(); consult status() to tell the two apart (OK =
//     clean end, anything else = the first IO/corruption error, sticky).
//   - key() Slices point into the access method's pinned page frame (or a
//     cursor-owned buffer) and are stable only until the next cursor call.
//   - Ordered access methods (B+-tree, Queue) position Seek(t) at the
//     smallest key >= t and iterate in byte order. Unordered ones (List,
//     Hash) iterate in storage order and treat Seek(t) as a *filter*:
//     every emitted key is >= t, with no ordering among them.
//   - Mutating the underlying index invalidates every open cursor on it;
//     the only legal operations afterwards are re-Seek*() and status().
//     (See DESIGN.md §11 for why embedded-scale FAME-DBMS pins exactly one
//     leaf instead of versioning pages.)
//   - Reverse iteration (SeekToLast/Prev) is the optional ReverseScan
//     feature; only cursors with SupportsReverse() implement it, others
//     simply become !Valid().
#ifndef FAME_INDEX_CURSOR_H_
#define FAME_INDEX_CURSOR_H_

#include <functional>

#include "common/slice.h"
#include "common/status.h"
#include "osal/slab_alloc.h"

namespace fame::index {

using ScanVisitor = std::function<bool(const Slice& key, uint64_t value)>;

class Cursor {
 public:
  virtual ~Cursor() = default;

#if FAME_SLAB_ENABLED
  // Cursors are the per-op hot objects: every Scan/RangeScan/SQL query
  // heap-allocated one before the slab memory path. These class-level
  // operators route every concrete cursor type through the thread-local
  // object pool (osal/slab_alloc.h) — same-thread churn is a freelist
  // pop/push with zero atomics; cross-thread or post-teardown frees fall
  // back to the heap. Compiled out (plain new/delete) when the feature is
  // deselected, which the alloc nm probe enforces.
  static void* operator new(size_t n) { return osal::slab::PooledNew(n); }
  static void operator delete(void* p, size_t n) noexcept {
    osal::slab::PooledDelete(p, n);
  }
  static void operator delete(void* p) noexcept {
    osal::slab::PooledDelete(p);
  }
#endif

  /// Positions at the first entry in iteration order (!Valid() when empty).
  virtual void SeekToFirst() = 0;
  /// Ordered: positions at the smallest key >= target. Unordered: restarts
  /// iteration emitting only keys >= target (storage order).
  virtual void Seek(const Slice& target) = 0;
  /// True when positioned on an entry.
  virtual bool Valid() const = 0;
  /// Advances to the next entry. Requires Valid().
  virtual void Next() = 0;

  /// Key at the current position. Requires Valid().
  virtual Slice key() const = 0;
  /// 64-bit payload (typically a packed storage::Rid). Requires Valid().
  virtual uint64_t value() const = 0;

  /// OK, or the first IO/corruption error that stopped iteration (sticky
  /// until the next Seek*()).
  virtual const Status& status() const = 0;

  // ---- ReverseScan feature (optional) ----
  /// True when SeekToLast()/Prev() are implemented.
  virtual bool SupportsReverse() const { return false; }
  /// Positions at the last entry; default: unsupported, becomes !Valid().
  virtual void SeekToLast() { Invalidate(); }
  /// Steps to the previous entry; default: unsupported, becomes !Valid().
  virtual void Prev() { Invalidate(); }

 protected:
  /// Hook for the default reverse ops: leave the cursor unpositioned.
  virtual void Invalidate() = 0;
};

/// Drives `c` over [lo, hi) calling `visit` — the one adapter behind every
/// legacy ScanVisitor entry point. Empty lo/hi mean unbounded. `ordered`
/// must match the access method: when true an entry >= hi terminates the
/// walk, when false it is filtered and iteration continues (unordered
/// emission can interleave in- and out-of-range keys). Returns the
/// cursor's final status.
Status CursorScan(Cursor* c, const Slice& lo, const Slice& hi, bool ordered,
                  const ScanVisitor& visit);

/// The CursorScan loop templated on the concrete cursor type: access
/// methods drive their own `final` cursor class through this so the
/// compiler devirtualizes and inlines the per-entry calls — the visitor
/// entry points then cost the same as the hand-rolled leaf walks they
/// replaced. CursorScan(Cursor*, ...) is this instantiated at the base.
template <typename C>
Status DriveCursor(C& c, const Slice& lo, const Slice& hi, bool ordered,
                   const ScanVisitor& visit) {
  if (lo.empty()) {
    c.SeekToFirst();
  } else {
    c.Seek(lo);
  }
  for (; c.Valid(); c.Next()) {
    Slice key = c.key();  // one directory decode per entry, not two
    if (!hi.empty() && key.compare(hi) >= 0) {
      if (ordered) break;  // everything after is >= hi too
      continue;            // unordered: filter and keep going
    }
    if (!visit(key, c.value())) break;
  }
  return c.status();
}

}  // namespace fame::index

#endif  // FAME_INDEX_CURSOR_H_

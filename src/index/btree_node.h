// B+-tree node layout over a page frame.
//
// Node layout (reuses the generic page header offsets so checksumming and
// typing are uniform):
//   [0]   u8   page type (kBTreeLeaf / kBTreeInner)
//   [2]   u16  entry count
//   [4]   u16  free-space offset (record area grows up from kHeaderSize)
//   [6]   u16  dead bytes (reclaimable by compaction)
//   [8]   u32  leaf: right-sibling page id / inner: leftmost child page id
//   [16]  u64  page LSN
//   [24]  u32  masked CRC
//   [32..]     entries: [u16 klen][key bytes][u64 payload]
//   [end down] directory: u16 entry offsets, *sorted by key*
//
// An inner node with N directory entries has N+1 children: the leftmost
// child in the header, and one child per entry (its payload), covering keys
// >= that entry's key.
#ifndef FAME_INDEX_BTREE_NODE_H_
#define FAME_INDEX_BTREE_NODE_H_

#include <cstdint>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace fame::index {

/// Mutable view over one B+-tree node frame.
class BtreeNode {
 public:
  static constexpr size_t kHeaderSize = storage::Page::kHeaderSize;
  static constexpr size_t kDirEntrySize = 2;

  BtreeNode(char* data, size_t page_size) : data_(data), size_(page_size) {}

  void Init(bool leaf) {
    std::memset(data_, 0, size_);
    data_[0] = static_cast<char>(leaf ? storage::PageType::kBTreeLeaf
                                      : storage::PageType::kBTreeInner);
    set_count(0);
    set_free_off(kHeaderSize);
    set_dead_bytes(0);
    set_link(storage::kInvalidPageId);
  }

  bool is_leaf() const {
    return data_[0] == static_cast<char>(storage::PageType::kBTreeLeaf);
  }

  uint16_t count() const { return DecodeFixed16(data_ + 2); }

  /// Leaf: right sibling. Inner: leftmost child.
  storage::PageId link() const { return DecodeFixed32(data_ + 8); }
  void set_link(storage::PageId id) { EncodeFixed32(data_ + 8, id); }

  Slice KeyAt(uint16_t idx) const {
    const char* rec = data_ + dir_off(idx);
    uint16_t klen = DecodeFixed16(rec);
    return Slice(rec + 2, klen);
  }

  uint64_t PayloadAt(uint16_t idx) const {
    const char* rec = data_ + dir_off(idx);
    uint16_t klen = DecodeFixed16(rec);
    return DecodeFixed64(rec + 2 + klen);
  }

  void SetPayloadAt(uint16_t idx, uint64_t payload) {
    char* rec = data_ + dir_off(idx);
    uint16_t klen = DecodeFixed16(rec);
    EncodeFixed64(rec + 2 + klen, payload);
  }

  /// First index whose key is >= `key` (count() if none). `*equal` reports
  /// an exact match at the returned index.
  uint16_t LowerBound(const Slice& key, bool* equal) const;

  /// Child page covering `key` in an inner node.
  storage::PageId ChildFor(const Slice& key) const;
  /// Child pointer at logical child position `pos` in [0, count()]:
  /// pos 0 = leftmost link, pos i>0 = payload of entry i-1.
  storage::PageId ChildAt(uint16_t pos) const {
    return pos == 0 ? link() : static_cast<storage::PageId>(PayloadAt(pos - 1));
  }

  /// Bytes one entry occupies (record + directory slot).
  static size_t EntrySize(size_t key_len) {
    return 2 + key_len + 8 + kDirEntrySize;
  }

  /// True if an entry with `key_len`-byte key fits (possibly after
  /// compaction).
  bool HasRoomFor(size_t key_len) const {
    return FreeBytes() + dead_bytes() >= EntrySize(key_len);
  }

  /// Inserts (key, payload) at sorted position `idx` (from LowerBound).
  /// Caller guarantees HasRoomFor. Compacts internally when the contiguous
  /// gap is too small.
  void InsertAt(uint16_t idx, const Slice& key, uint64_t payload);

  /// Removes the entry at `idx`.
  void RemoveAt(uint16_t idx);

  /// Bytes of payload data currently live (excludes header/directory).
  size_t UsedBytes() const;

  /// Contiguous free gap minus nothing (dead bytes are extra potential).
  size_t FreeBytes() const {
    return (size_ - kDirEntrySize * count()) - free_off();
  }

  uint16_t dead_bytes() const { return DecodeFixed16(data_ + 6); }

  /// Moves entries [from, count) of this node to the *empty* node `dst`
  /// (same page size). Used by splits.
  void MoveTail(BtreeNode* dst, uint16_t from);

  /// Appends all entries of `src` (whose keys all sort after ours) to this
  /// node. Used by merges. Caller guarantees room.
  void AppendAll(const BtreeNode& src);

  char* raw() { return data_; }
  size_t page_size() const { return size_; }

 private:
  void set_count(uint16_t n) { EncodeFixed16(data_ + 2, n); }
  uint16_t free_off() const { return DecodeFixed16(data_ + 4); }
  void set_free_off(uint16_t v) { EncodeFixed16(data_ + 4, v); }
  void set_dead_bytes(uint16_t v) { EncodeFixed16(data_ + 6, v); }

  uint16_t dir_off(uint16_t idx) const {
    return DecodeFixed16(data_ + size_ - kDirEntrySize * (idx + 1));
  }
  void set_dir_off(uint16_t idx, uint16_t off) {
    EncodeFixed16(data_ + size_ - kDirEntrySize * (idx + 1), off);
  }

  /// Rewrites the record area densely, preserving directory order.
  void Compact();

  char* data_;
  size_t size_;
};

}  // namespace fame::index

#endif  // FAME_INDEX_BTREE_NODE_H_

#include "index/queue_am.h"

#include "common/coding.h"
#include "index/keys.h"

namespace fame::index {

using storage::Page;
using storage::PageGuard;
using storage::PageId;
using storage::PageType;
using storage::kInvalidPageId;

// In-page layout: [Page header | u64 base recno | cells...], each cell is
// [u8 live flag][record_size bytes].
namespace {
constexpr size_t kBaseOff = Page::kHeaderSize;
constexpr size_t kCellsOff = kBaseOff + 8;
}  // namespace

uint32_t QueueAM::CellsPerPage() const {
  return static_cast<uint32_t>(
      (buffers_->file()->page_size() - kCellsOff) / (1 + record_size_));
}

StatusOr<std::unique_ptr<QueueAM>> QueueAM::Open(
    storage::BufferManager* buffers, const std::string& name,
    uint32_t record_size) {
  if (record_size == 0 ||
      record_size + 1 + kCellsOff > buffers->file()->page_size()) {
    return Status::InvalidArgument("queue record size does not fit a page");
  }
  std::unique_ptr<QueueAM> q(new QueueAM(buffers, name));
  auto meta_or = buffers->file()->GetRootAux("queue:" + name + ":m");
  if (meta_or.ok()) {
    q->record_size_ = static_cast<uint32_t>(meta_or.value());
    if (q->record_size_ != record_size) {
      return Status::InvalidArgument("queue record size mismatch");
    }
    FAME_ASSIGN_OR_RETURN(q->head_page_,
                          buffers->file()->GetRoot("queue:" + name + ":h"));
    FAME_ASSIGN_OR_RETURN(q->head_,
                          buffers->file()->GetRootAux("queue:" + name + ":h"));
    FAME_ASSIGN_OR_RETURN(q->tail_page_,
                          buffers->file()->GetRoot("queue:" + name + ":t"));
    FAME_ASSIGN_OR_RETURN(q->tail_,
                          buffers->file()->GetRootAux("queue:" + name + ":t"));
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers->Fetch(q->head_page_));
    q->head_page_base_ = DecodeFixed64(guard.page().raw() + kBaseOff);
    return q;
  }
  q->record_size_ = record_size;
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers->New(PageType::kQueueData));
  EncodeFixed64(guard.page().raw() + kBaseOff, 0);
  guard.MarkDirty();
  q->head_page_ = q->tail_page_ = guard.id();
  q->head_page_base_ = 0;
  guard.Release();
  FAME_RETURN_IF_ERROR(q->PersistState());
  return q;
}

Status QueueAM::PersistState() {
  auto* file = buffers_->file();
  FAME_RETURN_IF_ERROR(
      file->SetRoot("queue:" + name_ + ":m", kInvalidPageId, record_size_));
  FAME_RETURN_IF_ERROR(file->SetRoot("queue:" + name_ + ":h", head_page_, head_));
  return file->SetRoot("queue:" + name_ + ":t", tail_page_, tail_);
}

StatusOr<uint64_t> QueueAM::Enqueue(const Slice& record) {
  if (record.size() != record_size_) {
    return Status::InvalidArgument("record must be exactly the queue's size");
  }
  uint32_t cells = CellsPerPage();
  uint64_t recno = tail_;
  FAME_ASSIGN_OR_RETURN(PageGuard tail_guard, buffers_->Fetch(tail_page_));
  uint64_t tail_base = DecodeFixed64(tail_guard.page().raw() + kBaseOff);
  uint32_t cell = static_cast<uint32_t>(recno - tail_base);
  if (cell >= cells) {
    // Tail page full: chain a fresh page.
    FAME_ASSIGN_OR_RETURN(PageGuard fresh, buffers_->New(PageType::kQueueData));
    EncodeFixed64(fresh.page().raw() + kBaseOff, recno);
    fresh.MarkDirty();
    tail_guard.page().set_next_page(fresh.id());
    tail_guard.MarkDirty();
    tail_page_ = fresh.id();
    tail_guard = std::move(fresh);
    tail_base = recno;
    cell = 0;
  }
  char* cell_ptr =
      tail_guard.page().raw() + kCellsOff + cell * (1ull + record_size_);
  cell_ptr[0] = 1;  // live
  std::memcpy(cell_ptr + 1, record.data(), record_size_);
  tail_guard.MarkDirty();
  ++tail_;
  return PersistState().ok() ? StatusOr<uint64_t>(recno)
                             : StatusOr<uint64_t>(Status::IOError(
                                   "failed to persist queue state"));
}

Status QueueAM::Dequeue(std::string* out) {
  if (head_ == tail_) return Status::NotFound("queue empty");
  uint32_t cells = CellsPerPage();
  uint32_t cell = static_cast<uint32_t>(head_ - head_page_base_);
  {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(head_page_));
    char* cell_ptr =
        guard.page().raw() + kCellsOff + cell * (1ull + record_size_);
    if (cell_ptr[0] != 1) return Status::Corruption("dequeue of dead cell");
    out->assign(cell_ptr + 1, record_size_);
    cell_ptr[0] = 0;
    guard.MarkDirty();
    ++head_;
    // Free the head page once fully consumed (and not also the tail page).
    if (head_ - head_page_base_ >= cells && head_page_ != tail_page_) {
      PageId old = head_page_;
      head_page_ = guard.page().next_page();
      guard.Release();
      FAME_ASSIGN_OR_RETURN(PageGuard next_guard, buffers_->Fetch(head_page_));
      head_page_base_ = DecodeFixed64(next_guard.page().raw() + kBaseOff);
      next_guard.Release();
      FAME_RETURN_IF_ERROR(buffers_->Free(old));
    }
  }
  return PersistState();
}

StatusOr<storage::PageId> QueueAM::PageFor(uint64_t recno) {
  uint32_t cells = CellsPerPage();
  PageId id = head_page_;
  uint64_t base = head_page_base_;
  while (id != kInvalidPageId) {
    if (recno >= base && recno < base + cells) return id;
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    id = guard.page().next_page();
    base += cells;
  }
  return Status::NotFound("record number beyond queue pages");
}

namespace {

/// Cursor over [head, tail): key = EncodeU64Key(recno) (byte order equals
/// recno order), value = recno. Dead cells inside the window are skipped.
class QueueCursor final : public Cursor {
 public:
  QueueCursor(QueueAM* q) : q_(q) {}

  void SeekToFirst() override { Position(q_->head_recno(), /*forward=*/true); }

  void Seek(const Slice& target) override {
    // First recno whose 8-byte big-endian key is >= target: pad short
    // targets with zeros (the smallest extension); a target longer than 8
    // bytes sorts strictly after its 8-byte prefix.
    char padded[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(padded, target.data(), target.size() < 8 ? target.size() : 8);
    uint64_t recno = DecodeU64Key(Slice(padded, 8));
    if (target.size() > 8) ++recno;
    if (recno < q_->head_recno()) recno = q_->head_recno();
    Position(recno, /*forward=*/true);
  }

  bool Valid() const override { return positioned_; }

  void Next() override {
    positioned_ = false;
    if (recno_ + 1 < q_->tail_recno()) Position(recno_ + 1, /*forward=*/true);
  }

  Slice key() const override { return Slice(key_buf_); }
  uint64_t value() const override { return recno_; }
  const Status& status() const override { return status_; }

  bool SupportsReverse() const override { return true; }
  void SeekToLast() override {
    positioned_ = false;
    status_ = Status::OK();
    if (q_->tail_recno() > q_->head_recno()) {
      Position(q_->tail_recno() - 1, /*forward=*/false);
    }
  }
  void Prev() override {
    positioned_ = false;
    if (recno_ > q_->head_recno()) Position(recno_ - 1, /*forward=*/false);
  }

 protected:
  void Invalidate() override { positioned_ = false; }

 private:
  /// Positions at the nearest live recno at-or-beyond `recno` in the given
  /// direction (probing liveness via Get, which also validates bounds).
  void Position(uint64_t recno, bool forward) {
    positioned_ = false;
    status_ = Status::OK();
    std::string record;
    while (recno < q_->tail_recno() && recno >= q_->head_recno()) {
      Status s = q_->Get(recno, &record);
      if (s.ok()) {
        recno_ = recno;
        key_buf_ = EncodeU64Key(recno);
        positioned_ = true;
        return;
      }
      if (!s.IsNotFound()) {  // IO/corruption error, not a dead cell
        status_ = s;
        return;
      }
      if (!forward && recno == 0) return;
      recno = forward ? recno + 1 : recno - 1;
    }
  }

  QueueAM* q_;
  uint64_t recno_ = 0;
  std::string key_buf_;
  bool positioned_ = false;
  Status status_;
};

}  // namespace

StatusOr<std::unique_ptr<Cursor>> QueueAM::NewCursor() {
  return std::unique_ptr<Cursor>(new QueueCursor(this));
}

Status QueueAM::Get(uint64_t recno, std::string* out) {
  if (recno < head_ || recno >= tail_) {
    return Status::NotFound("record not live");
  }
  FAME_ASSIGN_OR_RETURN(PageId id, PageFor(recno));
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
  uint64_t base = DecodeFixed64(guard.page().raw() + kBaseOff);
  uint32_t cell = static_cast<uint32_t>(recno - base);
  const char* cell_ptr =
      guard.page().raw() + kCellsOff + cell * (1ull + record_size_);
  if (cell_ptr[0] != 1) return Status::NotFound("record not live");
  out->assign(cell_ptr + 1, record_size_);
  return Status::OK();
}

}  // namespace fame::index

// ListIndex: the "List" index alternative of Figure 2 — an unordered chain
// of pages scanned linearly. It is the smallest-footprint index (no node
// logic, no rebalancing) and the right choice for tiny datasets on deeply
// embedded devices; lookups are O(n).
#ifndef FAME_INDEX_LIST_INDEX_H_
#define FAME_INDEX_LIST_INDEX_H_

#include <memory>
#include <string>

#include "index/index.h"
#include "storage/buffer.h"

namespace fame::index {

class ListIndex final : public OrderedIndex {
 public:
  static StatusOr<std::unique_ptr<ListIndex>> Open(
      storage::BufferManager* buffers, const std::string& name);

  Status Insert(const Slice& key, uint64_t value) override;
  Status Lookup(const Slice& key, uint64_t* value) override;
  Status Remove(const Slice& key) override;
  /// Storage-order chain cursor; Seek filters (ordered() is false — callers
  /// needing sorted emission must sort or pick the B+-tree feature).
  StatusOr<std::unique_ptr<Cursor>> NewCursor() override;
  StatusOr<uint64_t> Count() override;
  const char* name() const override { return "list"; }
  bool ordered() const override { return false; }

 private:
  ListIndex(storage::BufferManager* buffers, std::string name)
      : buffers_(buffers), name_(std::move(name)) {}

  struct Location {
    storage::PageId page = storage::kInvalidPageId;
    uint16_t slot = 0;
    bool found = false;
  };
  /// Finds the page/slot holding `key`.
  StatusOr<Location> Find(const Slice& key);

  static std::string EncodeEntry(const Slice& key, uint64_t value);
  static bool DecodeEntry(const Slice& rec, Slice* key, uint64_t* value);

  storage::BufferManager* buffers_;
  std::string name_;
  storage::PageId head_ = storage::kInvalidPageId;
};

}  // namespace fame::index

#endif  // FAME_INDEX_LIST_INDEX_H_

#include "index/chain_cursor.h"

#include "common/coding.h"

namespace fame::index {

using storage::PageGuard;
using storage::PageId;
using storage::kInvalidPageId;

namespace {

bool DecodeEntry(const Slice& rec, Slice* key, uint64_t* value) {
  if (rec.size() < 10) return false;
  uint16_t klen = DecodeFixed16(rec.data());
  if (rec.size() != static_cast<size_t>(2 + klen + 8)) return false;
  *key = Slice(rec.data() + 2, klen);
  *value = DecodeFixed64(rec.data() + 2 + klen);
  return true;
}

}  // namespace

void SlottedChainCursor::SeekToFirst() { Seek(Slice()); }

void SlottedChainCursor::Seek(const Slice& target) {
  lo_ = target.ToString();
  chain_ = 0;
  guard_ = PageGuard();
  slot_ = 0;
  positioned_ = false;
  status_ = Status::OK();
  Locate();
}

void SlottedChainCursor::Next() {
  positioned_ = false;
  ++slot_;
  Locate();
}

void SlottedChainCursor::Locate() {
  while (true) {
    if (!guard_.valid()) {
      // Start (or continue into) the next chain.
      if (chain_ >= heads_.size()) return;  // exhausted, clean end
      auto guard_or = buffers_->Fetch(heads_[chain_]);
      if (!guard_or.ok()) {
        status_ = guard_or.status();
        return;
      }
      guard_ = std::move(guard_or).value();
      slot_ = 0;
    }
    storage::Page page = guard_.page();
    for (; slot_ < page.slot_count(); ++slot_) {
      auto rec_or = page.Get(slot_);
      if (!rec_or.ok()) {
        if (rec_or.status().IsNotFound()) continue;  // dead slot
        status_ = rec_or.status();
        guard_ = PageGuard();
        return;
      }
      Slice k;
      uint64_t v;
      if (!DecodeEntry(rec_or.value(), &k, &v)) {
        status_ = Status::Corruption(std::string("bad ") + what_ + " entry");
        guard_ = PageGuard();
        return;
      }
      if (!lo_.empty() && k.compare(Slice(lo_)) < 0) continue;
      key_ = k;
      value_ = v;
      positioned_ = true;
      return;
    }
    // Page exhausted: hop to the next page of the chain, or the next chain.
    PageId next = page.next_page();
    guard_ = PageGuard();
    slot_ = 0;
    if (next != kInvalidPageId) {
      auto guard_or = buffers_->Fetch(next);
      if (!guard_or.ok()) {
        status_ = guard_or.status();
        return;
      }
      guard_ = std::move(guard_or).value();
    } else {
      ++chain_;
    }
  }
}

}  // namespace fame::index

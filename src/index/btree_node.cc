#include "index/btree_node.h"

#include <cstring>
#include <vector>

namespace fame::index {

uint16_t BtreeNode::LowerBound(const Slice& key, bool* equal) const {
  uint16_t lo = 0, hi = count();
  *equal = false;
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    int c = KeyAt(mid).compare(key);
    if (c < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      if (c == 0) *equal = true;
      hi = mid;
    }
  }
  return lo;
}

storage::PageId BtreeNode::ChildFor(const Slice& key) const {
  bool equal = false;
  uint16_t idx = LowerBound(key, &equal);
  // Entry i covers keys >= key[i]; on equality descend into that entry's
  // child, otherwise into the child left of idx.
  if (equal) return static_cast<storage::PageId>(PayloadAt(idx));
  return ChildAt(idx);
}

void BtreeNode::InsertAt(uint16_t idx, const Slice& key, uint64_t payload) {
  size_t rec_size = 2 + key.size() + 8;
  size_t gap = (size_ - kDirEntrySize * count()) - free_off();
  if (gap < rec_size + kDirEntrySize) {
    Compact();
  }
  uint16_t off = free_off();
  EncodeFixed16(data_ + off, static_cast<uint16_t>(key.size()));
  std::memcpy(data_ + off + 2, key.data(), key.size());
  EncodeFixed64(data_ + off + 2 + key.size(), payload);
  set_free_off(static_cast<uint16_t>(off + rec_size));

  // Shift directory entries [idx, count) down by one slot. The directory
  // grows downward, so entry i lives at size_ - 2*(i+1); shifting means
  // moving the block [size - 2*count, size - 2*idx) left by 2 bytes.
  uint16_t n = count();
  char* dir_begin = data_ + size_ - kDirEntrySize * n;
  size_t move = kDirEntrySize * (n - idx);
  if (move > 0) {
    std::memmove(dir_begin - kDirEntrySize, dir_begin, move);
  }
  set_dir_off(idx, off);
  set_count(static_cast<uint16_t>(n + 1));
}

void BtreeNode::RemoveAt(uint16_t idx) {
  uint16_t n = count();
  const char* rec = data_ + dir_off(idx);
  uint16_t klen = DecodeFixed16(rec);
  set_dead_bytes(static_cast<uint16_t>(dead_bytes() + 2 + klen + 8));
  // Shift directory entries (idx, count) up by one slot: move the block
  // [size - 2*count, size - 2*(idx+1)) right by 2 bytes.
  char* dir_begin = data_ + size_ - kDirEntrySize * n;
  size_t move = kDirEntrySize * (n - idx - 1);
  if (move > 0) {
    std::memmove(dir_begin + kDirEntrySize, dir_begin, move);
  }
  set_count(static_cast<uint16_t>(n - 1));
}

size_t BtreeNode::UsedBytes() const {
  size_t used = 0;
  for (uint16_t i = 0; i < count(); ++i) {
    used += EntrySize(KeyAt(i).size());
  }
  return used;
}

void BtreeNode::Compact() {
  uint16_t n = count();
  std::vector<std::pair<uint16_t, std::string>> entries;  // (offset order kept via dir)
  entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    const char* rec = data_ + dir_off(i);
    uint16_t klen = DecodeFixed16(rec);
    entries.emplace_back(i, std::string(rec, 2 + klen + 8));
  }
  uint16_t write = kHeaderSize;
  for (auto& [idx, bytes] : entries) {
    std::memcpy(data_ + write, bytes.data(), bytes.size());
    set_dir_off(idx, write);
    write = static_cast<uint16_t>(write + bytes.size());
  }
  set_free_off(write);
  set_dead_bytes(0);
}

void BtreeNode::MoveTail(BtreeNode* dst, uint16_t from) {
  uint16_t n = count();
  for (uint16_t i = from; i < n; ++i) {
    dst->InsertAt(static_cast<uint16_t>(i - from), KeyAt(i), PayloadAt(i));
  }
  // Drop the moved tail from this node (directory shrink + dead bytes).
  for (uint16_t i = n; i > from; --i) {
    RemoveAt(static_cast<uint16_t>(i - 1));
  }
  Compact();
}

void BtreeNode::AppendAll(const BtreeNode& src) {
  uint16_t base = count();
  for (uint16_t i = 0; i < src.count(); ++i) {
    InsertAt(static_cast<uint16_t>(base + i), src.KeyAt(i), src.PayloadAt(i));
  }
}

}  // namespace fame::index

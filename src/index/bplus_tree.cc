#include "index/bplus_tree.h"

#include <vector>

#include "index/btree_cursor.h"

namespace fame::index {

using storage::BufferManager;
using storage::PageGuard;
using storage::PageId;
using storage::PageType;
using storage::kInvalidPageId;

StatusOr<std::unique_ptr<BPlusTree>> BPlusTree::Open(BufferManager* buffers,
                                                     const std::string& name) {
  std::unique_ptr<BPlusTree> tree(new BPlusTree(buffers, name));
  auto root_or = buffers->file()->GetRoot("btree:" + name);
  if (root_or.ok()) {
    tree->root_ = root_or.value();
  } else {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers->New(PageType::kBTreeLeaf));
    BtreeNode node(guard.page().raw(), buffers->file()->page_size());
    node.Init(/*leaf=*/true);
    guard.MarkDirty();
    tree->root_ = guard.id();
    guard.Release();
    FAME_RETURN_IF_ERROR(tree->PersistRoot());
  }
  return tree;
}

Status BPlusTree::PersistRoot() {
  return buffers_->file()->SetRoot("btree:" + name_, root_);
}

size_t BPlusTree::MaxKeySize() const {
  // A node must be able to hold at least 4 entries so splits always make
  // progress.
  return NodeCapacity() / 4 - (2 + 8 + BtreeNode::kDirEntrySize);
}

Status BPlusTree::Lookup(const Slice& key, uint64_t* value) {
  FAME_OBS(metrics_.descents.Add(1);)
  PageId page = root_;
  while (true) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    if (node.is_leaf()) {
      bool equal = false;
      uint16_t idx = node.LowerBound(key, &equal);
      if (!equal) return Status::NotFound("key absent");
      *value = node.PayloadAt(idx);
      return Status::OK();
    }
    page = node.ChildFor(key);
  }
}

Status BPlusTree::Insert(const Slice& key, uint64_t value) {
  if (key.size() > MaxKeySize()) {
    return Status::InvalidArgument("key too large for page size");
  }
  FAME_OBS(metrics_.descents.Add(1);)
  // Preemptive (top-down) splitting: every full node on the descent path is
  // split while we still hold its parent, which is guaranteed to have room.
  // The only fallible step of a split is allocating the right page, and it
  // happens before any mutation — so an out-of-storage failure (routine on
  // the deeply embedded targets) can never orphan half the tree.
  const size_t worst = MaxKeySize();
  {
    FAME_ASSIGN_OR_RETURN(PageGuard root_guard, buffers_->Fetch(root_));
    BtreeNode root_node(root_guard.page().raw(), buffers_->file()->page_size());
    if (!root_node.HasRoomFor(worst)) {
      // Grow the tree first: new empty root above the old one, then split
      // the old root as its child 0.
      FAME_ASSIGN_OR_RETURN(PageGuard new_root_guard,
                            buffers_->New(PageType::kBTreeInner));
      BtreeNode new_root(new_root_guard.page().raw(),
                         buffers_->file()->page_size());
      new_root.Init(/*leaf=*/false);
      new_root.set_link(root_);
      new_root_guard.MarkDirty();
      Status s = SplitChild(&new_root, &new_root_guard, 0);
      if (!s.ok()) {
        // Nothing below was touched; discard the unused root page.
        PageId unused = new_root_guard.id();
        root_guard.Release();
        new_root_guard.Release();
        (void)buffers_->Free(unused);
        return s;
      }
      root_ = new_root_guard.id();
      root_guard.Release();
      new_root_guard.Release();
      FAME_RETURN_IF_ERROR(PersistRoot());
    }
  }

  PageId page = root_;
  while (true) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    if (node.is_leaf()) {
      bool equal = false;
      uint16_t idx = node.LowerBound(key, &equal);
      if (equal) {  // upsert
        node.SetPayloadAt(idx, value);
      } else {
        node.InsertAt(idx, key, value);  // room guaranteed by pre-splitting
      }
      guard.MarkDirty();
      return Status::OK();
    }
    bool eq = false;
    uint16_t idx = node.LowerBound(key, &eq);
    uint16_t pos = eq ? static_cast<uint16_t>(idx + 1) : idx;
    {
      FAME_ASSIGN_OR_RETURN(PageGuard child_guard,
                            buffers_->Fetch(node.ChildAt(pos)));
      BtreeNode child(child_guard.page().raw(),
                      buffers_->file()->page_size());
      if (!child.HasRoomFor(worst)) {
        child_guard.Release();
        FAME_RETURN_IF_ERROR(SplitChild(&node, &guard, pos));
        guard.MarkDirty();
        // Re-route: the key may now belong to the new right sibling.
        bool eq2 = false;
        idx = node.LowerBound(key, &eq2);
        pos = eq2 ? static_cast<uint16_t>(idx + 1) : idx;
      }
    }
    page = node.ChildAt(pos);
  }
}

Status BPlusTree::SplitChild(BtreeNode* parent, PageGuard* parent_guard,
                             uint16_t pos) {
  const size_t page_size = buffers_->file()->page_size();
  FAME_ASSIGN_OR_RETURN(PageGuard child_guard,
                        buffers_->Fetch(parent->ChildAt(pos)));
  BtreeNode child(child_guard.page().raw(), page_size);

  // The only fallible step — before any mutation.
  FAME_ASSIGN_OR_RETURN(
      PageGuard right_guard,
      buffers_->New(child.is_leaf() ? PageType::kBTreeLeaf
                                    : PageType::kBTreeInner));
  BtreeNode right(right_guard.page().raw(), page_size);
  right.Init(child.is_leaf());

  // Split point: byte midpoint.
  size_t total = child.UsedBytes();
  size_t acc = 0;
  uint16_t mid = 0;
  while (mid + 1 < child.count() && acc < total / 2) {
    acc += BtreeNode::EntrySize(child.KeyAt(mid).size());
    ++mid;
  }
  if (mid == 0) mid = 1;

  std::string sep;
  if (child.is_leaf()) {
    child.MoveTail(&right, mid);
    right.set_link(child.link());
    child.set_link(right_guard.id());
    sep = right.KeyAt(0).ToString();
  } else {
    // The middle key moves up; its payload becomes the right node's
    // leftmost child.
    sep = child.KeyAt(mid).ToString();
    right.set_link(static_cast<PageId>(child.PayloadAt(mid)));
    child.MoveTail(&right, static_cast<uint16_t>(mid + 1));
    child.RemoveAt(mid);
  }
  bool eq = false;
  uint16_t at = parent->LowerBound(Slice(sep), &eq);
  parent->InsertAt(at, Slice(sep), right_guard.id());

  child_guard.MarkDirty();
  right_guard.MarkDirty();
  parent_guard->MarkDirty();
  FAME_OBS(metrics_.splits.Add(1);)
  return Status::OK();
}

Status BPlusTree::Remove(const Slice& key) {
  FAME_OBS(metrics_.descents.Add(1);)
  bool underflow = false;
  FAME_RETURN_IF_ERROR(RemoveRec(root_, key, &underflow));
  // Shrink the root if it became an empty inner node.
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(root_));
  BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
  if (!node.is_leaf() && node.count() == 0) {
    PageId old_root = root_;
    root_ = node.link();
    guard.Release();
    FAME_RETURN_IF_ERROR(buffers_->Free(old_root));
    FAME_RETURN_IF_ERROR(PersistRoot());
  }
  return Status::OK();
}

Status BPlusTree::RemoveRec(PageId page, const Slice& key, bool* underflow) {
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
  BtreeNode node(guard.page().raw(), buffers_->file()->page_size());

  if (node.is_leaf()) {
    bool equal = false;
    uint16_t idx = node.LowerBound(key, &equal);
    if (!equal) return Status::NotFound("key absent");
    node.RemoveAt(idx);
    guard.MarkDirty();
    *underflow = node.UsedBytes() < UnderflowThreshold();
    return Status::OK();
  }

  bool eq = false;
  uint16_t idx = node.LowerBound(key, &eq);
  uint16_t pos = eq ? static_cast<uint16_t>(idx + 1) : idx;  // child position
  PageId child = node.ChildAt(pos);

  bool child_underflow = false;
  FAME_RETURN_IF_ERROR(RemoveRec(child, key, &child_underflow));
  if (child_underflow) {
    FAME_RETURN_IF_ERROR(RebalanceChild(&node, &guard, pos));
  }
  *underflow = node.UsedBytes() < UnderflowThreshold();
  return Status::OK();
}

Status BPlusTree::RebalanceChild(BtreeNode* parent, PageGuard* parent_guard,
                                 uint16_t pos) {
  const size_t page_size = buffers_->file()->page_size();
  FAME_ASSIGN_OR_RETURN(PageGuard child_guard,
                        buffers_->Fetch(parent->ChildAt(pos)));
  BtreeNode child(child_guard.page().raw(), page_size);

  // -------- try borrowing from the right sibling --------
  if (pos < parent->count()) {
    FAME_ASSIGN_OR_RETURN(PageGuard right_guard,
                          buffers_->Fetch(parent->ChildAt(pos + 1)));
    BtreeNode right(right_guard.page().raw(), page_size);
    uint16_t sep_idx = pos;  // parent entry separating child | right

    if (right.count() > 1 &&
        right.UsedBytes() > UnderflowThreshold() + BtreeNode::EntrySize(16)) {
      if (child.is_leaf()) {
        Slice k = right.KeyAt(0);
        uint64_t v = right.PayloadAt(0);
        if (child.HasRoomFor(k.size())) {
          child.InsertAt(child.count(), k, v);
          right.RemoveAt(0);
          std::string new_sep = right.KeyAt(0).ToString();
          uint64_t right_ptr = parent->PayloadAt(sep_idx);
          parent->RemoveAt(sep_idx);
          bool eq2 = false;
          uint16_t at = parent->LowerBound(Slice(new_sep), &eq2);
          parent->InsertAt(at, Slice(new_sep), right_ptr);
          child_guard.MarkDirty();
          right_guard.MarkDirty();
          parent_guard->MarkDirty();
          return Status::OK();
        }
      } else {
        // Rotate through the parent: child gains (sep, right.leftmost).
        std::string sep = parent->KeyAt(sep_idx).ToString();
        if (child.HasRoomFor(sep.size())) {
          child.InsertAt(child.count(), Slice(sep), right.link());
          std::string new_sep = right.KeyAt(0).ToString();
          right.set_link(static_cast<PageId>(right.PayloadAt(0)));
          right.RemoveAt(0);
          uint64_t right_ptr = parent->PayloadAt(sep_idx);
          parent->RemoveAt(sep_idx);
          bool eq2 = false;
          uint16_t at = parent->LowerBound(Slice(new_sep), &eq2);
          parent->InsertAt(at, Slice(new_sep), right_ptr);
          child_guard.MarkDirty();
          right_guard.MarkDirty();
          parent_guard->MarkDirty();
          return Status::OK();
        }
      }
    }

    // -------- try merging child <- right --------
    size_t sep_cost = child.is_leaf()
                          ? 0
                          : BtreeNode::EntrySize(parent->KeyAt(sep_idx).size());
    if (child.UsedBytes() + right.UsedBytes() + sep_cost <= NodeCapacity()) {
      if (child.is_leaf()) {
        child.AppendAll(right);
        child.set_link(right.link());
      } else {
        child.InsertAt(child.count(), parent->KeyAt(sep_idx), right.link());
        child.AppendAll(right);
      }
      PageId right_id = right_guard.id();
      parent->RemoveAt(sep_idx);
      child_guard.MarkDirty();
      parent_guard->MarkDirty();
      right_guard.Release();
      FAME_RETURN_IF_ERROR(buffers_->Free(right_id));
      FAME_OBS(metrics_.merges.Add(1);)
      return Status::OK();
    }
  }

  // -------- try borrowing from the left sibling --------
  if (pos > 0) {
    FAME_ASSIGN_OR_RETURN(PageGuard left_guard,
                          buffers_->Fetch(parent->ChildAt(pos - 1)));
    BtreeNode left(left_guard.page().raw(), page_size);
    uint16_t sep_idx = static_cast<uint16_t>(pos - 1);

    if (left.count() > 1 &&
        left.UsedBytes() > UnderflowThreshold() + BtreeNode::EntrySize(16)) {
      uint16_t last = static_cast<uint16_t>(left.count() - 1);
      if (child.is_leaf()) {
        Slice k = left.KeyAt(last);
        uint64_t v = left.PayloadAt(last);
        if (child.HasRoomFor(k.size())) {
          child.InsertAt(0, k, v);
          std::string new_sep = k.ToString();
          left.RemoveAt(last);
          uint64_t child_ptr = parent->PayloadAt(sep_idx);
          parent->RemoveAt(sep_idx);
          bool eq2 = false;
          uint16_t at = parent->LowerBound(Slice(new_sep), &eq2);
          parent->InsertAt(at, Slice(new_sep), child_ptr);
          child_guard.MarkDirty();
          left_guard.MarkDirty();
          parent_guard->MarkDirty();
          return Status::OK();
        }
      } else {
        std::string sep = parent->KeyAt(sep_idx).ToString();
        if (child.HasRoomFor(sep.size())) {
          // Child's old leftmost becomes the payload of the rotated-in key.
          child.InsertAt(0, Slice(sep), child.link());
          child.set_link(static_cast<PageId>(left.PayloadAt(last)));
          std::string new_sep = left.KeyAt(last).ToString();
          left.RemoveAt(last);
          uint64_t child_ptr = parent->PayloadAt(sep_idx);
          parent->RemoveAt(sep_idx);
          bool eq2 = false;
          uint16_t at = parent->LowerBound(Slice(new_sep), &eq2);
          parent->InsertAt(at, Slice(new_sep), child_ptr);
          child_guard.MarkDirty();
          left_guard.MarkDirty();
          parent_guard->MarkDirty();
          return Status::OK();
        }
      }
    }

    // -------- try merging left <- child --------
    size_t sep_cost = child.is_leaf()
                          ? 0
                          : BtreeNode::EntrySize(parent->KeyAt(sep_idx).size());
    if (left.UsedBytes() + child.UsedBytes() + sep_cost <= NodeCapacity()) {
      if (child.is_leaf()) {
        left.AppendAll(child);
        left.set_link(child.link());
      } else {
        left.InsertAt(left.count(), parent->KeyAt(sep_idx), child.link());
        left.AppendAll(child);
      }
      PageId child_id = child_guard.id();
      parent->RemoveAt(sep_idx);
      left_guard.MarkDirty();
      parent_guard->MarkDirty();
      child_guard.Release();
      FAME_RETURN_IF_ERROR(buffers_->Free(child_id));
      FAME_OBS(metrics_.merges.Add(1);)
      return Status::OK();
    }
  }

  // Neither borrow nor merge possible (can happen with large variable-size
  // keys); leave the node underfull — correctness is unaffected.
  return Status::OK();
}

Status BPlusTree::BulkLoad(
    const std::vector<std::pair<std::string, uint64_t>>& entries,
    double fill) {
  if (fill < 0.5 || fill > 1.0) {
    return Status::InvalidArgument("fill must be in [0.5, 1.0]");
  }
  {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(root_));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    if (!node.is_leaf() || node.count() != 0) {
      return Status::InvalidArgument("bulk load requires an empty tree");
    }
  }
  if (entries.empty()) return Status::OK();
  const size_t budget = static_cast<size_t>(
      static_cast<double>(NodeCapacity()) * fill);

  // ---- pass 1: pack the leaf level ----
  struct Fence {
    std::string key;      // first key of the node
    PageId page;
  };
  std::vector<Fence> level;
  {
    PageGuard guard;                 // current leaf being filled
    size_t used = 0;
    std::string last_key;
    bool have_last = false;
    for (const auto& [key, value] : entries) {
      if (key.size() > MaxKeySize()) {
        return Status::InvalidArgument("key too large for page size");
      }
      if (have_last && Slice(last_key).compare(Slice(key)) >= 0) {
        return Status::InvalidArgument(
            "bulk input must be strictly ascending");
      }
      last_key = key;
      have_last = true;
      size_t need = BtreeNode::EntrySize(key.size());
      if (!guard.valid() || used + need > budget) {
        FAME_ASSIGN_OR_RETURN(PageGuard fresh,
                              buffers_->New(PageType::kBTreeLeaf));
        BtreeNode fresh_node(fresh.page().raw(),
                             buffers_->file()->page_size());
        fresh_node.Init(/*leaf=*/true);
        fresh.MarkDirty();
        if (guard.valid()) {
          BtreeNode full(guard.page().raw(), buffers_->file()->page_size());
          full.set_link(fresh.id());
        }
        guard = std::move(fresh);
        used = 0;
        level.push_back(Fence{key, guard.id()});
      }
      BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
      node.InsertAt(node.count(), key, value);
      guard.MarkDirty();
      used += need;
    }
  }

  // ---- passes 2..h: build inner levels until one node remains ----
  while (level.size() > 1) {
    std::vector<Fence> upper;
    PageGuard guard;
    size_t used = 0;
    for (size_t i = 0; i < level.size(); ++i) {
      size_t need = BtreeNode::EntrySize(level[i].key.size());
      if (!guard.valid() || used + need > budget) {
        FAME_ASSIGN_OR_RETURN(PageGuard fresh,
                              buffers_->New(PageType::kBTreeInner));
        BtreeNode fresh_node(fresh.page().raw(),
                             buffers_->file()->page_size());
        fresh_node.Init(/*leaf=*/false);
        fresh_node.set_link(level[i].page);  // leftmost child
        fresh.MarkDirty();
        guard = std::move(fresh);
        used = 0;
        upper.push_back(Fence{level[i].key, guard.id()});
        continue;  // the leftmost child carries no separator entry
      }
      BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
      node.InsertAt(node.count(), Slice(level[i].key), level[i].page);
      guard.MarkDirty();
      used += need;
    }
    level = std::move(upper);
  }

  // Swap the new tree in; the old empty root goes to the free list.
  PageId old_root = root_;
  root_ = level[0].page;
  FAME_RETURN_IF_ERROR(PersistRoot());
  return buffers_->Free(old_root);
}

StatusOr<std::unique_ptr<Cursor>> BPlusTree::NewCursor() {
  return std::unique_ptr<Cursor>(new BtreeCursor(buffers_, &root_));
}

Status BPlusTree::Scan(const ScanVisitor& visit) {
  return RangeScan(Slice(), Slice(), visit);
}

Status BPlusTree::RangeScan(const Slice& lo, const Slice& hi,
                            const ScanVisitor& visit) {
  BtreeCursor c(buffers_, root_);
  return c.DriveRange(lo, hi, visit);
}

StatusOr<uint64_t> BPlusTree::Count() {
  // Walk the leaf sibling chain summing per-leaf entry counts — no key
  // visits, no per-entry directory decoding.
  PageId page = root_;
  while (true) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    if (node.is_leaf()) break;
    page = node.ChildAt(0);
  }
  uint64_t n = 0;
  while (page != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    n += node.count();
    page = node.link();
  }
  return n;
}

StatusOr<uint32_t> BPlusTree::Height() {
  uint32_t h = 1;
  PageId page = root_;
  while (true) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    if (node.is_leaf()) return h;
    page = node.ChildAt(0);
    ++h;
  }
}

Status BPlusTree::CheckInvariants() {
  uint32_t leaf_depth = 0;
  std::vector<PageId> leaves;
  FAME_RETURN_IF_ERROR(
      CheckNodeInvariants(root_, Slice(), Slice(), 1, &leaf_depth, &leaves));
  // Sibling-link consistency: the chain from the leftmost leaf must visit
  // exactly the in-order leaf sequence and then terminate. A wrong link
  // would silently skip or repeat keys in every range scan.
  PageId chain = leaves.empty() ? storage::kInvalidPageId : leaves.front();
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (chain != leaves[i]) {
      return Status::Corruption(
          "leaf sibling chain diverges from tree order at page " +
          std::to_string(chain));
    }
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(chain));
    BtreeNode node(guard.page().raw(), buffers_->file()->page_size());
    chain = node.link();
  }
  if (chain != storage::kInvalidPageId) {
    return Status::Corruption("leaf sibling chain does not terminate (page " +
                              std::to_string(chain) + " past the last leaf)");
  }
  return Status::OK();
}

Status BPlusTree::CheckNodeInvariants(PageId page, const Slice& lo,
                                      const Slice& hi, uint32_t depth,
                                      uint32_t* leaf_depth,
                                      std::vector<PageId>* leaves) {
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(page));
  const size_t page_size = buffers_->file()->page_size();
  BtreeNode node(guard.page().raw(), page_size);

  // The node must actually be a B+-tree page: a heap or free page wired in
  // here means a cross-linked structure.
  storage::PageType tag = guard.page().type();
  if (tag != storage::PageType::kBTreeLeaf &&
      tag != storage::PageType::kBTreeInner) {
    return Status::Corruption("page " + std::to_string(page) +
                              " in the tree has non-btree type tag " +
                              std::to_string(static_cast<unsigned>(tag)));
  }
  // Occupancy bounds: directory and record area must fit the page. (Nodes
  // may be legally underfull — rebalancing leaves a node underfull when
  // neither borrow nor merge is possible — so there is no lower bound.)
  if (BtreeNode::kHeaderSize + BtreeNode::kDirEntrySize * node.count() >
      page_size) {
    return Status::Corruption("node directory overflows page " +
                              std::to_string(page));
  }
  if (node.UsedBytes() + BtreeNode::kDirEntrySize * node.count() >
      page_size - BtreeNode::kHeaderSize) {
    return Status::Corruption("node entries overflow page " +
                              std::to_string(page));
  }

  // Keys strictly ascending and within (lo, hi].
  for (uint16_t i = 0; i < node.count(); ++i) {
    Slice k = node.KeyAt(i);
    if (i > 0 && node.KeyAt(i - 1).compare(k) >= 0) {
      return Status::Corruption("keys not strictly ascending");
    }
    if (!lo.empty() && k.compare(lo) < 0) {
      return Status::Corruption("key below subtree lower bound");
    }
    if (!hi.empty() && k.compare(hi) >= 0) {
      return Status::Corruption("key above subtree upper bound");
    }
  }
  if (node.is_leaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    leaves->push_back(page);
    return Status::OK();
  }
  // Recurse into children with tightened bounds.
  for (uint16_t pos = 0; pos <= node.count(); ++pos) {
    Slice child_lo = pos == 0 ? lo : node.KeyAt(pos - 1);
    Slice child_hi = pos == node.count() ? hi : node.KeyAt(pos);
    std::string lo_copy = child_lo.ToString();
    std::string hi_copy = child_hi.ToString();
    FAME_RETURN_IF_ERROR(CheckNodeInvariants(node.ChildAt(pos),
                                             Slice(lo_copy), Slice(hi_copy),
                                             depth + 1, leaf_depth, leaves));
  }
  return Status::OK();
}

}  // namespace fame::index

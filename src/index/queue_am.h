// QueueAM: record-number-based queue access method (the QUEUE feature of the
// Berkeley-DB-substitute product line). Fixed-length records, strictly FIFO:
// Enqueue appends at the tail record number, Dequeue consumes from the head.
// Random access by record number is supported while the record is live.
//
// Pages hold `cells_per_page` fixed-size cells; each page stores the record
// number of its first cell, so recno -> (page, cell) needs only arithmetic
// plus a chain hop. Head/tail record numbers persist in the root aux word.
#ifndef FAME_INDEX_QUEUE_AM_H_
#define FAME_INDEX_QUEUE_AM_H_

#include <memory>
#include <string>

#include "index/cursor.h"
#include "storage/buffer.h"

namespace fame::index {

class QueueAM {
 public:
  /// Opens the queue `name`, creating it with fixed `record_size` payloads.
  /// The record size of an existing queue is read from storage; a mismatch
  /// with `record_size` is InvalidArgument.
  static StatusOr<std::unique_ptr<QueueAM>> Open(
      storage::BufferManager* buffers, const std::string& name,
      uint32_t record_size);

  /// Appends a record (must be exactly record_size bytes); returns its
  /// record number.
  StatusOr<uint64_t> Enqueue(const Slice& record);

  /// Removes the head record, copying it into `out`; NotFound when empty.
  Status Dequeue(std::string* out);

  /// Reads record `recno` if still live.
  Status Get(uint64_t recno, std::string* out);

  /// Cursor over the live records in recno order: key() is the
  /// order-preserving EncodeU64Key(recno), value() the recno itself (fetch
  /// payload bytes via Get). Supports reverse iteration. The snapshot of
  /// [head, tail) is taken at Seek time; mutation invalidates the cursor.
  StatusOr<std::unique_ptr<Cursor>> NewCursor();

  /// Live record count.
  uint64_t Size() const { return tail_ - head_; }
  uint64_t head_recno() const { return head_; }
  uint64_t tail_recno() const { return tail_; }
  uint32_t record_size() const { return record_size_; }

 private:
  QueueAM(storage::BufferManager* buffers, std::string name)
      : buffers_(buffers), name_(std::move(name)) {}

  uint32_t CellsPerPage() const;
  Status PersistState();
  /// Page containing `recno`, walking the chain from head_page_.
  StatusOr<storage::PageId> PageFor(uint64_t recno);

  storage::BufferManager* buffers_;
  std::string name_;
  uint32_t record_size_ = 0;
  uint64_t head_ = 0;                     // next recno to dequeue
  uint64_t tail_ = 0;                     // next recno to enqueue
  storage::PageId head_page_ = storage::kInvalidPageId;
  storage::PageId tail_page_ = storage::kInvalidPageId;
  uint64_t head_page_base_ = 0;           // recno of head page's first cell
};

}  // namespace fame::index

#endif  // FAME_INDEX_QUEUE_AM_H_

#include "index/cursor.h"

namespace fame::index {

Status CursorScan(Cursor* c, const Slice& lo, const Slice& hi, bool ordered,
                  const ScanVisitor& visit) {
  return DriveCursor(*c, lo, hi, ordered, visit);
}

}  // namespace fame::index

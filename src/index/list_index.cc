#include "index/list_index.h"

#include "common/coding.h"
#include "index/chain_cursor.h"

namespace fame::index {

using storage::PageGuard;
using storage::PageId;
using storage::PageType;
using storage::kInvalidPageId;

StatusOr<std::unique_ptr<ListIndex>> ListIndex::Open(
    storage::BufferManager* buffers, const std::string& name) {
  std::unique_ptr<ListIndex> idx(new ListIndex(buffers, name));
  auto root_or = buffers->file()->GetRoot("list:" + name);
  if (root_or.ok()) {
    idx->head_ = root_or.value();
  } else {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers->New(PageType::kListData));
    idx->head_ = guard.id();
    guard.MarkDirty();
    guard.Release();
    FAME_RETURN_IF_ERROR(buffers->file()->SetRoot("list:" + name, idx->head_));
  }
  return idx;
}

std::string ListIndex::EncodeEntry(const Slice& key, uint64_t value) {
  std::string rec;
  PutFixed16(&rec, static_cast<uint16_t>(key.size()));
  rec.append(key.data(), key.size());
  PutFixed64(&rec, value);
  return rec;
}

bool ListIndex::DecodeEntry(const Slice& rec, Slice* key, uint64_t* value) {
  if (rec.size() < 10) return false;
  uint16_t klen = DecodeFixed16(rec.data());
  if (rec.size() != static_cast<size_t>(2 + klen + 8)) return false;
  *key = Slice(rec.data() + 2, klen);
  *value = DecodeFixed64(rec.data() + 2 + klen);
  return true;
}

StatusOr<ListIndex::Location> ListIndex::Find(const Slice& key) {
  PageId id = head_;
  while (id != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    storage::Page page = guard.page();
    for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
      auto rec_or = page.Get(slot);
      if (!rec_or.ok()) continue;
      Slice k;
      uint64_t v;
      if (DecodeEntry(rec_or.value(), &k, &v) && k == key) {
        return Location{id, slot, true};
      }
    }
    id = page.next_page();
  }
  return Location{};
}

Status ListIndex::Insert(const Slice& key, uint64_t value) {
  FAME_ASSIGN_OR_RETURN(Location loc, Find(key));
  std::string rec = EncodeEntry(key, value);
  if (loc.found) {  // upsert in place (same record size: only payload varies)
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(loc.page));
    FAME_RETURN_IF_ERROR(guard.page().Update(loc.slot, Slice(rec)));
    guard.MarkDirty();
    return Status::OK();
  }
  // Append to the first page with room, extending the chain when full.
  PageId id = head_;
  PageId last = kInvalidPageId;
  while (id != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    storage::Page page = guard.page();
    auto slot_or = page.Insert(Slice(rec));
    if (slot_or.ok()) {
      guard.MarkDirty();
      return Status::OK();
    }
    if (slot_or.status().code() != StatusCode::kResourceExhausted) {
      return slot_or.status();
    }
    last = id;
    id = page.next_page();
  }
  FAME_ASSIGN_OR_RETURN(PageGuard fresh, buffers_->New(PageType::kListData));
  PageId fresh_id = fresh.id();
  auto slot_or = fresh.page().Insert(Slice(rec));
  FAME_RETURN_IF_ERROR(slot_or.status());
  fresh.MarkDirty();
  fresh.Release();
  FAME_ASSIGN_OR_RETURN(PageGuard tail, buffers_->Fetch(last));
  tail.page().set_next_page(fresh_id);
  tail.MarkDirty();
  return Status::OK();
}

Status ListIndex::Lookup(const Slice& key, uint64_t* value) {
  FAME_ASSIGN_OR_RETURN(Location loc, Find(key));
  if (!loc.found) return Status::NotFound("key absent");
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(loc.page));
  auto rec_or = guard.page().Get(loc.slot);
  FAME_RETURN_IF_ERROR(rec_or.status());
  Slice k;
  if (!DecodeEntry(rec_or.value(), &k, value)) {
    return Status::Corruption("bad list entry");
  }
  return Status::OK();
}

Status ListIndex::Remove(const Slice& key) {
  FAME_ASSIGN_OR_RETURN(Location loc, Find(key));
  if (!loc.found) return Status::NotFound("key absent");
  FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(loc.page));
  FAME_RETURN_IF_ERROR(guard.page().Delete(loc.slot));
  guard.MarkDirty();
  return Status::OK();
}

StatusOr<std::unique_ptr<Cursor>> ListIndex::NewCursor() {
  return std::unique_ptr<Cursor>(
      new SlottedChainCursor(buffers_, {head_}, "list"));
}

StatusOr<uint64_t> ListIndex::Count() {
  uint64_t n = 0;
  FAME_RETURN_IF_ERROR(Scan([&n](const Slice&, uint64_t) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace fame::index

#include "index/hash_index.h"

#include "common/coding.h"
#include "index/chain_cursor.h"

namespace fame::index {

using storage::PageGuard;
using storage::PageId;
using storage::PageType;
using storage::kInvalidPageId;

namespace {

std::string EncodeEntry(const Slice& key, uint64_t value) {
  std::string rec;
  PutFixed16(&rec, static_cast<uint16_t>(key.size()));
  rec.append(key.data(), key.size());
  PutFixed64(&rec, value);
  return rec;
}

bool DecodeEntry(const Slice& rec, Slice* key, uint64_t* value) {
  if (rec.size() < 10) return false;
  uint16_t klen = DecodeFixed16(rec.data());
  if (rec.size() != static_cast<size_t>(2 + klen + 8)) return false;
  *key = Slice(rec.data() + 2, klen);
  *value = DecodeFixed64(rec.data() + 2 + klen);
  return true;
}

}  // namespace

uint64_t HashIndex::HashBytes(const Slice& key) {
  // FNV-1a 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint32_t HashIndex::BucketFor(const Slice& key) const {
  return static_cast<uint32_t>(HashBytes(key) & (buckets_.size() - 1));
}

StatusOr<std::unique_ptr<HashIndex>> HashIndex::Open(
    storage::BufferManager* buffers, const std::string& name,
    uint32_t bucket_count) {
  std::unique_ptr<HashIndex> idx(new HashIndex(buffers, name));
  auto root_or = buffers->file()->GetRoot("hash:" + name);
  if (root_or.ok()) {
    idx->directory_ = root_or.value();
    FAME_ASSIGN_OR_RETURN(PageGuard dir, buffers->Fetch(idx->directory_));
    auto rec_or = dir.page().Get(0);
    FAME_RETURN_IF_ERROR(rec_or.status());
    Slice rec = rec_or.value();
    if (rec.size() < 4) return Status::Corruption("bad hash directory");
    uint32_t n = DecodeFixed32(rec.data());
    if (rec.size() != 4 + 4ull * n) return Status::Corruption("bad hash directory");
    idx->buckets_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      idx->buckets_[i] = DecodeFixed32(rec.data() + 4 + 4ull * i);
    }
    return idx;
  }

  if (bucket_count == 0 || (bucket_count & (bucket_count - 1)) != 0) {
    return Status::InvalidArgument("bucket_count must be a power of two");
  }
  // Directory record must fit on one page.
  size_t dir_bytes = 4 + 4ull * bucket_count;
  if (dir_bytes + storage::Page::kHeaderSize + storage::Page::kSlotSize >
      buffers->file()->page_size()) {
    return Status::InvalidArgument("bucket_count too large for page size");
  }
  idx->buckets_.resize(bucket_count);
  for (uint32_t i = 0; i < bucket_count; ++i) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers->New(PageType::kHashBucket));
    idx->buckets_[i] = guard.id();
    guard.MarkDirty();
  }
  std::string rec;
  PutFixed32(&rec, bucket_count);
  for (PageId id : idx->buckets_) PutFixed32(&rec, id);
  FAME_ASSIGN_OR_RETURN(PageGuard dir, buffers->New(PageType::kMeta));
  idx->directory_ = dir.id();
  auto slot_or = dir.page().Insert(Slice(rec));
  FAME_RETURN_IF_ERROR(slot_or.status());
  dir.MarkDirty();
  dir.Release();
  FAME_RETURN_IF_ERROR(
      buffers->file()->SetRoot("hash:" + name, idx->directory_));
  return idx;
}

Status HashIndex::Insert(const Slice& key, uint64_t value) {
  std::string rec = EncodeEntry(key, value);
  PageId id = buckets_[BucketFor(key)];
  PageId last = kInvalidPageId;
  // Pass 1: look for the key (upsert) while remembering the chain tail.
  while (id != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    storage::Page page = guard.page();
    for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
      auto rec_or = page.Get(slot);
      if (!rec_or.ok()) continue;
      Slice k;
      uint64_t v;
      if (DecodeEntry(rec_or.value(), &k, &v) && k == key) {
        FAME_RETURN_IF_ERROR(page.Update(slot, Slice(rec)));
        guard.MarkDirty();
        return Status::OK();
      }
    }
    last = id;
    id = page.next_page();
  }
  // Pass 2: insert into the first chain page with room.
  id = buckets_[BucketFor(key)];
  while (id != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    storage::Page page = guard.page();
    auto slot_or = page.Insert(Slice(rec));
    if (slot_or.ok()) {
      guard.MarkDirty();
      return Status::OK();
    }
    if (slot_or.status().code() != StatusCode::kResourceExhausted) {
      return slot_or.status();
    }
    id = page.next_page();
  }
  // Chain full: extend it.
  FAME_ASSIGN_OR_RETURN(PageGuard fresh, buffers_->New(PageType::kHashBucket));
  PageId fresh_id = fresh.id();
  auto slot_or = fresh.page().Insert(Slice(rec));
  FAME_RETURN_IF_ERROR(slot_or.status());
  fresh.MarkDirty();
  fresh.Release();
  FAME_ASSIGN_OR_RETURN(PageGuard tail, buffers_->Fetch(last));
  tail.page().set_next_page(fresh_id);
  tail.MarkDirty();
  return Status::OK();
}

Status HashIndex::Lookup(const Slice& key, uint64_t* value) {
  PageId id = buckets_[BucketFor(key)];
  while (id != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    storage::Page page = guard.page();
    for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
      auto rec_or = page.Get(slot);
      if (!rec_or.ok()) continue;
      Slice k;
      if (DecodeEntry(rec_or.value(), &k, value) && k == key) {
        return Status::OK();
      }
    }
    id = page.next_page();
  }
  return Status::NotFound("key absent");
}

Status HashIndex::Remove(const Slice& key) {
  PageId id = buckets_[BucketFor(key)];
  while (id != kInvalidPageId) {
    FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
    storage::Page page = guard.page();
    for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
      auto rec_or = page.Get(slot);
      if (!rec_or.ok()) continue;
      Slice k;
      uint64_t v;
      if (DecodeEntry(rec_or.value(), &k, &v) && k == key) {
        FAME_RETURN_IF_ERROR(page.Delete(slot));
        guard.MarkDirty();
        return Status::OK();
      }
    }
    id = page.next_page();
  }
  return Status::NotFound("key absent");
}

StatusOr<std::unique_ptr<Cursor>> HashIndex::NewCursor() {
  return std::unique_ptr<Cursor>(
      new SlottedChainCursor(buffers_, buckets_, "hash"));
}

StatusOr<uint64_t> HashIndex::Count() {
  uint64_t n = 0;
  FAME_RETURN_IF_ERROR(Scan([&n](const Slice&, uint64_t) {
    ++n;
    return true;
  }));
  return n;
}

StatusOr<double> HashIndex::AverageChainLength() {
  uint64_t pages = 0;
  for (PageId bucket : buckets_) {
    PageId id = bucket;
    while (id != kInvalidPageId) {
      ++pages;
      FAME_ASSIGN_OR_RETURN(PageGuard guard, buffers_->Fetch(id));
      id = guard.page().next_page();
    }
  }
  return static_cast<double>(pages) / static_cast<double>(buckets_.size());
}

}  // namespace fame::index

// SlottedChainCursor: pull-based iteration over chains of slotted pages
// holding [u16 klen][key][u64 payload] entries — the storage shape shared
// by ListIndex (one chain) and HashIndex (one chain per bucket). Emission
// is storage order, so Seek(t) filters (every emitted key >= t) rather
// than positions; see cursor.h.
#ifndef FAME_INDEX_CHAIN_CURSOR_H_
#define FAME_INDEX_CHAIN_CURSOR_H_

#include <string>
#include <vector>

#include "index/cursor.h"
#include "storage/buffer.h"

namespace fame::index {

class SlottedChainCursor final : public Cursor {
 public:
  /// Iterates the chains starting at `heads` in order, one pinned page at a
  /// time. `what` names the owning access method in corruption messages.
  SlottedChainCursor(storage::BufferManager* buffers,
                     std::vector<storage::PageId> heads, const char* what)
      : buffers_(buffers), heads_(std::move(heads)), what_(what) {}

  void SeekToFirst() override;
  void Seek(const Slice& target) override;
  bool Valid() const override { return positioned_; }
  void Next() override;
  Slice key() const override { return key_; }
  uint64_t value() const override { return value_; }
  const Status& status() const override { return status_; }

 protected:
  void Invalidate() override { positioned_ = false; }

 private:
  /// Advances from the current (chain, page, slot) position to the next
  /// live entry with key >= lo_, hopping pages and chains as needed.
  void Locate();

  storage::BufferManager* buffers_;
  std::vector<storage::PageId> heads_;
  const char* what_;

  std::string lo_;                 // Seek filter ("" = none)
  size_t chain_ = 0;               // index into heads_
  storage::PageGuard guard_;       // pinned current page
  uint16_t slot_ = 0;
  Slice key_;                      // into the pinned frame
  uint64_t value_ = 0;
  bool positioned_ = false;
  Status status_;
};

}  // namespace fame::index

#endif  // FAME_INDEX_CHAIN_CURSOR_H_

// EngineCore: the one implementation of the engine-level access path —
// heap-record encoding, index maintenance on Put/Remove, and the
// heap-joining cursor — shared by both composition styles. Database
// instantiates it over the virtual index::KeyValueIndex (component
// composition, §2.1); StaticEngine<Cfg> instantiates it over the concrete
// index type of the product (FeatureC++-style, §2.3), so every call
// devirtualizes. Neither engine carries its own Get/Scan/RangeScan
// traversal logic anymore; feature gating, latching and tx plumbing stay
// in the owners.
//
// Record format in the heap: [varint32 klen][key][value]. The key is
// embedded so a record is self-identifying — Get cross-checks it against
// the index to catch a stale or cross-linked rid as Corruption instead of
// returning another key's value.
#ifndef FAME_CORE_ENGINE_CORE_H_
#define FAME_CORE_ENGINE_CORE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/coding.h"
#include "index/cursor.h"
#include "storage/record.h"

namespace fame::core {

/// Engine-level visitor: (key, value bytes) -> keep-going.
using KvVisitor = std::function<bool(const Slice& key, const Slice& value)>;

/// Pull-based cursor over engine records: iterates the index cursor and
/// joins each entry's Rid through the RecordManager *lazily* — value() does
/// the heap fetch on first use per position, so key-only consumers (LIMIT
/// probes, prefix checks, COUNT) never touch the heap.
///
/// Same protocol as index::Cursor (Seek*/Valid/Next/key/status, reverse
/// ops when the access method supports them); value() is the engine-level
/// difference: it returns the record bytes and, on a heap IO/decode
/// failure, records the error in status() and invalidates the cursor so
/// consumer loops terminate.
class EngineCursor {
 public:
  EngineCursor(std::unique_ptr<index::Cursor> base,
               storage::RecordManager* heap)
      : base_(std::move(base)), heap_(heap) {}

  void SeekToFirst() {
    Reset();
    base_->SeekToFirst();
  }
  void Seek(const Slice& target) {
    Reset();
    base_->Seek(target);
  }
  bool Valid() const { return status_.ok() && base_->Valid(); }
  void Next() {
    loaded_ = false;
    base_->Next();
  }

  /// Key at the current position (stable until the next cursor call).
  Slice key() const { return base_->key(); }

  /// Record value, joined through the heap on first call per position.
  /// On failure returns empty, sets status() and invalidates the cursor.
  Slice value() {
    if (!loaded_ && !Load()) return Slice();
    return value_;
  }

  /// OK, or the first error from either the index walk or the heap join.
  const Status& status() const {
    return status_.ok() ? base_->status() : status_;
  }

  // ---- ReverseScan feature (availability follows the access method) ----
  bool SupportsReverse() const { return base_->SupportsReverse(); }
  void SeekToLast() {
    Reset();
    base_->SeekToLast();
  }
  void Prev() {
    loaded_ = false;
    base_->Prev();
  }

 private:
  void Reset() {
    loaded_ = false;
    status_ = Status::OK();
  }

  bool Load() {
    storage::Rid rid = storage::Rid::Unpack(base_->value());
    Status s = heap_->Get(rid, &record_);
    if (s.ok()) {
      Slice in(record_);
      uint32_t klen = 0;
      if (!GetVarint32(&in, &klen) || in.size() < klen) {
        s = Status::Corruption("bad core record");
      } else if (Slice(in.data(), klen) != base_->key()) {
        s = Status::Corruption("index points at the wrong record");
      } else {
        value_ = Slice(in.data() + klen, in.size() - klen);
        loaded_ = true;
        return true;
      }
    }
    status_ = s;
    return false;
  }

  std::unique_ptr<index::Cursor> base_;
  storage::RecordManager* heap_;
  std::string record_;     // owned copy of the current heap record
  Slice value_;            // value bytes within record_
  bool loaded_ = false;
  Status status_;
};

template <typename IndexT>
class EngineCore {
 public:
  /// Binds the composed components (non-owning); call after the storage
  /// stack is (re)opened.
  void Bind(storage::RecordManager* heap, IndexT* index) {
    heap_ = heap;
    index_ = index;
  }

  IndexT* index() { return index_; }

  static std::string EncodeRecord(const Slice& key, const Slice& value) {
    std::string rec;
    PutVarint32(&rec, static_cast<uint32_t>(key.size()));
    rec.append(key.data(), key.size());
    rec.append(value.data(), value.size());
    return rec;
  }

  static Status DecodeRecord(const Slice& rec, const Slice& expect_key,
                             std::string* value) {
    Slice in = rec;
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad core record");
    }
    if (Slice(in.data(), klen) != expect_key) {
      return Status::Corruption("index points at the wrong record");
    }
    value->assign(in.data() + klen, in.size() - klen);
    return Status::OK();
  }

  Status Get(const Slice& key, std::string* value) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    std::string rec;
    FAME_RETURN_IF_ERROR(heap_->Get(storage::Rid::Unpack(packed), &rec));
    return DecodeRecord(rec, key, value);
  }

  /// Upsert: in-place heap update when the key exists (re-indexing only if
  /// the record moved), insert + index otherwise.
  Status Put(const Slice& key, const Slice& value) {
    uint64_t packed = 0;
    Status found = index_->Lookup(key, &packed);
    std::string rec = EncodeRecord(key, value);
    if (found.ok()) {
      storage::Rid rid = storage::Rid::Unpack(packed);
      storage::Rid updated = rid;
      FAME_RETURN_IF_ERROR(heap_->Update(&updated, rec));
      if (!(updated == rid)) {
        FAME_RETURN_IF_ERROR(index_->Insert(key, updated.Pack()));
      }
      return Status::OK();
    }
    if (!found.IsNotFound()) return found;
    auto rid_or = heap_->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    return index_->Insert(key, rid_or.value().Pack());
  }

  Status Remove(const Slice& key) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    FAME_RETURN_IF_ERROR(heap_->Delete(storage::Rid::Unpack(packed)));
    return index_->Remove(key);
  }

  /// Opens a heap-joining cursor (index iteration order).
  StatusOr<EngineCursor> NewCursor() {
    FAME_ASSIGN_OR_RETURN(std::unique_ptr<index::Cursor> c,
                          index_->NewCursor());
    return EngineCursor(std::move(c), heap_);
  }

  /// Visitor adapters over the cursor — the legacy entry points.
  Status Scan(const KvVisitor& fn) {
    return ScanRange(Slice(), Slice(), /*ordered=*/true, fn);
  }

  /// lo <= key < hi. `ordered` must match the access method: when false,
  /// out-of-range keys are filtered instead of terminating the walk.
  Status RangeScan(const Slice& lo, const Slice& hi, bool ordered,
                   const KvVisitor& fn) {
    return ScanRange(lo, hi, ordered, fn);
  }

  /// All records whose key starts with `prefix`: a bounded range on an
  /// ordered index, a filtered full scan otherwise.
  Status ScanPrefix(const Slice& prefix, bool ordered, const KvVisitor& fn) {
    if (!ordered) {
      return ScanRange(Slice(), Slice(), false, [&](const Slice& k,
                                                    const Slice& v) {
        return k.starts_with(prefix) ? fn(k, v) : true;
      });
    }
    std::string hi = PrefixUpperBound(prefix);
    return ScanRange(prefix, Slice(hi), true, fn);
  }

  /// Descending over [lo, hi) — the ReverseScan feature. The caller gates
  /// on feature selection; the access method must support reverse.
  Status ReverseScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    FAME_ASSIGN_OR_RETURN(EngineCursor c, NewCursor());
    if (!c.SupportsReverse()) {
      return Status::NotSupported("access method has no reverse iteration");
    }
    if (hi.empty()) {
      c.SeekToLast();
    } else {
      // Predecessor of hi: the entry before the first key >= hi (the last
      // entry overall when every key is < hi).
      c.Seek(hi);
      if (c.Valid()) {
        c.Prev();
      } else if (c.status().ok()) {
        c.SeekToLast();
      }
    }
    for (; c.Valid(); c.Prev()) {
      if (!lo.empty() && c.key().compare(lo) < 0) break;
      Slice v = c.value();
      if (!c.Valid()) break;  // heap join failed; status() has the error
      if (!fn(c.key(), v)) break;
    }
    return c.status();
  }

 private:
  /// Smallest key greater than every key with `prefix` ("" = unbounded,
  /// for an all-0xff prefix).
  static std::string PrefixUpperBound(const Slice& prefix) {
    std::string hi = prefix.ToString();
    while (!hi.empty()) {
      if (static_cast<unsigned char>(hi.back()) != 0xff) {
        hi.back() = static_cast<char>(hi.back() + 1);
        return hi;
      }
      hi.pop_back();
    }
    return hi;
  }

  Status ScanRange(const Slice& lo, const Slice& hi, bool ordered,
                   const KvVisitor& fn) {
    FAME_ASSIGN_OR_RETURN(EngineCursor c, NewCursor());
    if (lo.empty()) {
      c.SeekToFirst();
    } else {
      c.Seek(lo);
    }
    for (; c.Valid(); c.Next()) {
      if (!hi.empty() && c.key().compare(hi) >= 0) {
        if (ordered) break;
        continue;
      }
      Slice v = c.value();
      if (!c.Valid()) break;  // heap join failed; status() has the error
      if (!fn(c.key(), v)) break;
    }
    return c.status();
  }

  storage::RecordManager* heap_ = nullptr;
  IndexT* index_ = nullptr;
};

}  // namespace fame::core

#endif  // FAME_CORE_ENGINE_CORE_H_

// EngineCore: the one implementation of the engine-level access path —
// heap-record encoding, index maintenance on Put/Remove, and the
// heap-joining cursor — shared by both composition styles. Database
// instantiates it over the virtual index::KeyValueIndex (component
// composition, §2.1); StaticEngine<Cfg> instantiates it over the concrete
// index type of the product (FeatureC++-style, §2.3), so every call
// devirtualizes. Neither engine carries its own Get/Scan/RangeScan
// traversal logic anymore; feature gating, latching and tx plumbing stay
// in the owners.
//
// Record format in the heap: [varint32 klen][key][value]. The key is
// embedded so a record is self-identifying — Get cross-checks it against
// the index to catch a stale or cross-linked rid as Corruption instead of
// returning another key's value.
#ifndef FAME_CORE_ENGINE_CORE_H_
#define FAME_CORE_ENGINE_CORE_H_

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/coding.h"
#include "index/cursor.h"
#include "obs/obs.h"
#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#endif
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif
#include "storage/record.h"

namespace fame::core {

/// Engine-level visitor: (key, value bytes) -> keep-going.
using KvVisitor = std::function<bool(const Slice& key, const Slice& value)>;

/// Records at most this big are staged in fixed buffers on the hot paths
/// (Put's stack frame, the cursor's inline record); bigger ones spill to a
/// heap string. Sized past any embedded product's page payload so the
/// spill path is effectively cold.
inline constexpr size_t kInlineRecordBytes = 512;

/// Pull-based cursor over engine records: iterates the index cursor and
/// joins each entry's Rid through the RecordManager *lazily* — value() does
/// the heap fetch on first use per position, so key-only consumers (LIMIT
/// probes, prefix checks, COUNT) never touch the heap.
///
/// Same protocol as index::Cursor (Seek*/Valid/Next/key/status, reverse
/// ops when the access method supports them); value() is the engine-level
/// difference: it returns the record bytes and, on a heap IO/decode
/// failure, records the error in status() and invalidates the cursor so
/// consumer loops terminate.
class EngineCursor {
 public:
  EngineCursor(std::unique_ptr<index::Cursor> base,
               storage::RecordManager* heap)
      : base_(std::move(base)), heap_(heap) {}

  // Movable, not copyable. The moved-from cursor is left invalid and
  // flushes nothing; the target re-loads its value lazily (value_ points
  // into record_, which SSO may relocate on move).
  EngineCursor(EngineCursor&& o) noexcept
      : base_(std::move(o.base_)),
        heap_(o.heap_),
        record_(std::move(o.record_)),
        status_(std::move(o.status_)) {
    FAME_OBS(TakeMetrics(o);)
  }
  EngineCursor& operator=(EngineCursor&& o) noexcept {
    if (this != &o) {
      FAME_OBS(FlushMetrics(/*closing=*/true);)
      base_ = std::move(o.base_);
      heap_ = o.heap_;
      record_ = std::move(o.record_);
      loaded_ = false;
      status_ = std::move(o.status_);
      FAME_OBS(TakeMetrics(o);)
    }
    return *this;
  }
  ~EngineCursor() { FAME_OBS(FlushMetrics(/*closing=*/true);) }

#if FAME_OBS_ENABLED
  /// [feature Observability] Wires the flush target for this cursor's
  /// counters. Counters accumulate in plain locals (a cursor has one
  /// owner, so this is race-free even in concurrent products) and flush
  /// on every Seek and on destruction.
  void set_sink(obs::CursorSink sink) {
    sink_ = sink;
    if (sink_.track_open != nullptr) sink_.track_open(sink_.ctx, true);
  }
#endif

  void SeekToFirst() {
    Reset();
    FAME_OBS(++seeks_;)
    base_->SeekToFirst();
  }
  void Seek(const Slice& target) {
    Reset();
    FAME_OBS(++seeks_;)
    base_->Seek(target);
  }
  bool Valid() const { return status_.ok() && base_->Valid(); }
  void Next() {
    loaded_ = false;
    FAME_OBS(++scanned_;)
    base_->Next();
  }

  /// Key at the current position (stable until the next cursor call).
  Slice key() const { return base_->key(); }

  /// Record value, joined through the heap on first call per position.
  /// On failure returns empty, sets status() and invalidates the cursor.
  Slice value() {
    if (!loaded_ && !Load()) return Slice();
    return value_;
  }

  /// OK, or the first error from either the index walk or the heap join.
  const Status& status() const {
    return status_.ok() ? base_->status() : status_;
  }

  // ---- ReverseScan feature (availability follows the access method) ----
  bool SupportsReverse() const { return base_->SupportsReverse(); }
  void SeekToLast() {
    Reset();
    FAME_OBS(++seeks_;)
    base_->SeekToLast();
  }
  void Prev() {
    loaded_ = false;
    FAME_OBS(++scanned_;)
    base_->Prev();
  }

 private:
  void Reset() {
    FAME_OBS(FlushMetrics(/*closing=*/false);)
    loaded_ = false;
    status_ = Status::OK();
  }

  bool Load() {
    storage::Rid rid = storage::Rid::Unpack(base_->value());
    // Inline-first heap join: the typical embedded record lands in the
    // fixed buffer so per-row loads never touch the heap; oversize records
    // spill to the owned string.
    size_t len = 0;
    Status s = heap_->Get(rid, inline_rec_, sizeof(inline_rec_), &len);
    Slice rec(inline_rec_, len);
    if (s.ok() && len > sizeof(inline_rec_)) {
      s = heap_->Get(rid, &record_);
      rec = Slice(record_);
    }
    if (s.ok()) {
      Slice in = rec;
      uint32_t klen = 0;
      if (!GetVarint32(&in, &klen) || in.size() < klen) {
        s = Status::Corruption("bad core record");
      } else if (Slice(in.data(), klen) != base_->key()) {
        s = Status::Corruption("index points at the wrong record");
      } else {
        value_ = Slice(in.data() + klen, in.size() - klen);
        loaded_ = true;
        FAME_OBS(++returned_;)
        return true;
      }
    }
    // A mid-scan heap-join failure invalidates the cursor; tag it in the
    // trace so a truncated scan is attributable to the exact position.
    FAME_OBS_TRACE(obs::Trace::Record(obs::SpanKind::kCursor,
                                      obs::TraceOp::kScan, scanned_,
                                      returned_, /*error=*/true);)
    status_ = s;
    return false;
  }

#if FAME_OBS_ENABLED
  /// Adds the accumulated counters to the sink and zeroes them; `closing`
  /// also drops the open-cursor gauge and detaches the sink.
  void FlushMetrics(bool closing) {
    if (sink_.flush != nullptr && (seeks_ | scanned_ | returned_) != 0) {
      sink_.flush(sink_.ctx, seeks_, scanned_, returned_);
    }
    seeks_ = scanned_ = returned_ = 0;
    if (closing && sink_.track_open != nullptr) {
      sink_.track_open(sink_.ctx, false);
      sink_ = obs::CursorSink{};
    }
  }

  /// Move helper: steal the source's counters and sink, detaching them
  /// from the source so its destructor flushes nothing.
  void TakeMetrics(EngineCursor& o) {
    sink_ = o.sink_;
    seeks_ = o.seeks_;
    scanned_ = o.scanned_;
    returned_ = o.returned_;
    o.sink_ = obs::CursorSink{};
    o.seeks_ = o.scanned_ = o.returned_ = 0;
  }
#endif

  std::unique_ptr<index::Cursor> base_;
  storage::RecordManager* heap_;
  char inline_rec_[kInlineRecordBytes];  // common case: record lives here
  std::string record_;     // spill for records bigger than the inline buf
  Slice value_;            // value bytes within inline_rec_ or record_
  bool loaded_ = false;
  Status status_;
#if FAME_OBS_ENABLED
  obs::CursorSink sink_;
  uint64_t seeks_ = 0;
  uint64_t scanned_ = 0;
  uint64_t returned_ = 0;
#endif
};

template <typename IndexT>
class EngineCore {
 public:
  /// Binds the composed components (non-owning); call after the storage
  /// stack is (re)opened.
  void Bind(storage::RecordManager* heap, IndexT* index) {
    heap_ = heap;
    index_ = index;
  }

  IndexT* index() { return index_; }

#if FAME_OBS_ENABLED
  /// [feature Observability] Sink wired into every cursor this core opens
  /// (the owner engine points it at its registry's cursor metrics).
  void SetCursorSink(obs::CursorSink sink) { cursor_sink_ = sink; }
#endif

  static std::string EncodeRecord(const Slice& key, const Slice& value) {
    std::string rec;
    PutVarint32(&rec, static_cast<uint32_t>(key.size()));
    rec.append(key.data(), key.size());
    rec.append(value.data(), value.size());
    return rec;
  }

  /// Encodes into `buf` when the record fits (the common case on embedded
  /// products — Put stays heap-free), else into `*spill`.
  static Slice EncodeRecordInto(const Slice& key, const Slice& value,
                                char* buf, size_t cap, std::string* spill) {
    const size_t worst = 5 + key.size() + value.size();  // varint32 <= 5
    if (worst > cap) {
      *spill = EncodeRecord(key, value);
      return Slice(*spill);
    }
    char* p = EncodeVarint32(buf, static_cast<uint32_t>(key.size()));
    std::memcpy(p, key.data(), key.size());
    p += key.size();
    std::memcpy(p, value.data(), value.size());
    p += value.size();
    return Slice(buf, static_cast<size_t>(p - buf));
  }

  static Status DecodeRecord(const Slice& rec, const Slice& expect_key,
                             std::string* value) {
    Slice in = rec;
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad core record");
    }
    if (Slice(in.data(), klen) != expect_key) {
      return Status::Corruption("index points at the wrong record");
    }
    value->assign(in.data() + klen, in.size() - klen);
    return Status::OK();
  }

  Status Get(const Slice& key, std::string* value) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    // Fetch the whole record into the caller's string and strip the key
    // prefix in place: no temporary, and a reused `value` keeps its
    // capacity — steady-state gets never touch the heap.
    FAME_RETURN_IF_ERROR(heap_->Get(storage::Rid::Unpack(packed), value));
    Slice in(*value);
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad core record");
    }
    if (Slice(in.data(), klen) != key) {
      return Status::Corruption("index points at the wrong record");
    }
    value->erase(0, value->size() - (in.size() - klen));
    return Status::OK();
  }

  /// Upsert: in-place heap update when the key exists (re-indexing only if
  /// the record moved), insert + index otherwise.
  Status Put(const Slice& key, const Slice& value) {
    uint64_t packed = 0;
    Status found = index_->Lookup(key, &packed);
    char inline_rec[kInlineRecordBytes];
    std::string spill;
    Slice rec =
        EncodeRecordInto(key, value, inline_rec, sizeof(inline_rec), &spill);
    if (found.ok()) {
      storage::Rid rid = storage::Rid::Unpack(packed);
      storage::Rid updated = rid;
      FAME_RETURN_IF_ERROR(heap_->Update(&updated, rec));
      if (!(updated == rid)) {
        FAME_RETURN_IF_ERROR(index_->Insert(key, updated.Pack()));
      }
      return Status::OK();
    }
    if (!found.IsNotFound()) return found;
    auto rid_or = heap_->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    return index_->Insert(key, rid_or.value().Pack());
  }

  Status Remove(const Slice& key) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    FAME_RETURN_IF_ERROR(heap_->Delete(storage::Rid::Unpack(packed)));
    return index_->Remove(key);
  }

  /// Opens a heap-joining cursor (index iteration order).
  StatusOr<EngineCursor> NewCursor() {
    FAME_ASSIGN_OR_RETURN(std::unique_ptr<index::Cursor> c,
                          index_->NewCursor());
    EngineCursor cur(std::move(c), heap_);
    FAME_OBS(cur.set_sink(cursor_sink_);)
    return cur;
  }

  /// Visitor adapters over the cursor — the legacy entry points.
  Status Scan(const KvVisitor& fn) {
    return ScanRange(Slice(), Slice(), /*ordered=*/true, fn);
  }

  /// lo <= key < hi. `ordered` must match the access method: when false,
  /// out-of-range keys are filtered instead of terminating the walk.
  Status RangeScan(const Slice& lo, const Slice& hi, bool ordered,
                   const KvVisitor& fn) {
    return ScanRange(lo, hi, ordered, fn);
  }

  /// All records whose key starts with `prefix`: a bounded range on an
  /// ordered index, a filtered full scan otherwise.
  Status ScanPrefix(const Slice& prefix, bool ordered, const KvVisitor& fn) {
    if (!ordered) {
      return ScanRange(Slice(), Slice(), false, [&](const Slice& k,
                                                    const Slice& v) {
        return k.starts_with(prefix) ? fn(k, v) : true;
      });
    }
    std::string hi = PrefixUpperBound(prefix);
    return ScanRange(prefix, Slice(hi), true, fn);
  }

  /// Descending over [lo, hi) — the ReverseScan feature. The caller gates
  /// on feature selection; the access method must support reverse.
  Status ReverseScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    FAME_ASSIGN_OR_RETURN(EngineCursor c, NewCursor());
    if (!c.SupportsReverse()) {
      return Status::NotSupported("access method has no reverse iteration");
    }
    if (hi.empty()) {
      c.SeekToLast();
    } else {
      // Predecessor of hi: the entry before the first key >= hi (the last
      // entry overall when every key is < hi).
      c.Seek(hi);
      if (c.Valid()) {
        c.Prev();
      } else if (c.status().ok()) {
        c.SeekToLast();
      }
    }
    for (; c.Valid(); c.Prev()) {
      if (!lo.empty() && c.key().compare(lo) < 0) break;
      Slice v = c.value();
      if (!c.Valid()) break;  // heap join failed; status() has the error
      if (!fn(c.key(), v)) break;
    }
    return c.status();
  }

 private:
  /// Smallest key greater than every key with `prefix` ("" = unbounded,
  /// for an all-0xff prefix).
  static std::string PrefixUpperBound(const Slice& prefix) {
    std::string hi = prefix.ToString();
    while (!hi.empty()) {
      if (static_cast<unsigned char>(hi.back()) != 0xff) {
        hi.back() = static_cast<char>(hi.back() + 1);
        return hi;
      }
      hi.pop_back();
    }
    return hi;
  }

  Status ScanRange(const Slice& lo, const Slice& hi, bool ordered,
                   const KvVisitor& fn) {
    FAME_ASSIGN_OR_RETURN(EngineCursor c, NewCursor());
    if (lo.empty()) {
      c.SeekToFirst();
    } else {
      c.Seek(lo);
    }
    for (; c.Valid(); c.Next()) {
      if (!hi.empty() && c.key().compare(hi) >= 0) {
        if (ordered) break;
        continue;
      }
      Slice v = c.value();
      if (!c.Valid()) break;  // heap join failed; status() has the error
      if (!fn(c.key(), v)) break;
    }
    return c.status();
  }

  storage::RecordManager* heap_ = nullptr;
  IndexT* index_ = nullptr;
#if FAME_OBS_ENABLED
  obs::CursorSink cursor_sink_;
#endif
};

}  // namespace fame::core

#endif  // FAME_CORE_ENGINE_CORE_H_

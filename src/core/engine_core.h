// EngineCore: the one implementation of the engine-level access path —
// heap-record encoding, index maintenance on Put/Remove, and the
// heap-joining cursor — shared by both composition styles. Database
// instantiates it over the virtual index::KeyValueIndex (component
// composition, §2.1); StaticEngine<Cfg> instantiates it over the concrete
// index type of the product (FeatureC++-style, §2.3), so every call
// devirtualizes. Neither engine carries its own Get/Scan/RangeScan
// traversal logic anymore; feature gating, latching and tx plumbing stay
// in the owners.
//
// Record format in the heap: [varint32 klen][key][value]. The key is
// embedded so a record is self-identifying — Get cross-checks it against
// the index to catch a stale or cross-linked rid as Corruption instead of
// returning another key's value.
#ifndef FAME_CORE_ENGINE_CORE_H_
#define FAME_CORE_ENGINE_CORE_H_

#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "index/cursor.h"
#include "obs/obs.h"
#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#endif
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif
#include "storage/record.h"
#include "tx/mvcc.h"

namespace fame::core {

/// Engine-level visitor: (key, value bytes) -> keep-going.
using KvVisitor = std::function<bool(const Slice& key, const Slice& value)>;

/// Records at most this big are staged in fixed buffers on the hot paths
/// (Put's stack frame, the cursor's inline record); bigger ones spill to a
/// heap string. Sized past any embedded product's page payload so the
/// spill path is effectively cold.
inline constexpr size_t kInlineRecordBytes = 512;

/// The index probe and the heap fetch are not one atomic step: in a
/// concurrent product a writer can relocate a record between them (a
/// version chain outgrowing its slot moves to a new page and re-points
/// the index entry), so the just-read rid may address a freed or reused
/// slot. Readers re-descend to the same key for a fresh rid and retry —
/// bounded, so genuine corruption (a stale rid in a quiesced database)
/// still surfaces after this many refreshes.
inline constexpr int kStaleJoinRetries = 8;

/// Pull-based cursor over engine records: iterates the index cursor and
/// joins each entry's Rid through the RecordManager *lazily* — value() does
/// the heap fetch on first use per position, so key-only consumers (LIMIT
/// probes, prefix checks, COUNT) never touch the heap.
///
/// Same protocol as index::Cursor (Seek*/Valid/Next/key/status, reverse
/// ops when the access method supports them); value() is the engine-level
/// difference: it returns the record bytes and, on a heap IO/decode
/// failure, records the error in status() and invalidates the cursor so
/// consumer loops terminate.
class EngineCursor {
 public:
  EngineCursor(std::unique_ptr<index::Cursor> base,
               storage::RecordManager* heap)
      : base_(std::move(base)), heap_(heap) {}

  // Movable, not copyable. The moved-from cursor is left invalid and
  // flushes nothing; the target re-loads its value lazily (value_ points
  // into record_, which SSO may relocate on move).
  EngineCursor(EngineCursor&& o) noexcept
      : base_(std::move(o.base_)),
        heap_(o.heap_),
        record_(std::move(o.record_)),
        status_(std::move(o.status_)) {
    FAME_OBS(TakeMetrics(o);)
  }
  EngineCursor& operator=(EngineCursor&& o) noexcept {
    if (this != &o) {
      FAME_OBS(FlushMetrics(/*closing=*/true);)
      base_ = std::move(o.base_);
      heap_ = o.heap_;
      record_ = std::move(o.record_);
      loaded_ = false;
      status_ = std::move(o.status_);
      FAME_OBS(TakeMetrics(o);)
    }
    return *this;
  }
  ~EngineCursor() { FAME_OBS(FlushMetrics(/*closing=*/true);) }

#if FAME_OBS_ENABLED
  /// [feature Observability] Wires the flush target for this cursor's
  /// counters. Counters accumulate in plain locals (a cursor has one
  /// owner, so this is race-free even in concurrent products) and flush
  /// on every Seek and on destruction.
  void set_sink(obs::CursorSink sink) {
    sink_ = sink;
    if (sink_.track_open != nullptr) sink_.track_open(sink_.ctx, true);
  }
#endif

  void SeekToFirst() {
    Reset();
    FAME_OBS(++seeks_;)
    base_->SeekToFirst();
  }
  void Seek(const Slice& target) {
    Reset();
    FAME_OBS(++seeks_;)
    base_->Seek(target);
  }
  bool Valid() const { return status_.ok() && base_->Valid(); }
  void Next() {
    loaded_ = false;
    FAME_OBS(++scanned_;)
    base_->Next();
  }

  /// Key at the current position (stable until the next cursor call).
  Slice key() const { return base_->key(); }

  /// Record value, joined through the heap on first call per position.
  /// On failure returns empty, sets status() and invalidates the cursor.
  Slice value() {
    if (!loaded_ && !Load()) return Slice();
    return value_;
  }

  /// OK, or the first error from either the index walk or the heap join.
  const Status& status() const {
    return status_.ok() ? base_->status() : status_;
  }

  // ---- ReverseScan feature (availability follows the access method) ----
  bool SupportsReverse() const { return base_->SupportsReverse(); }
  void SeekToLast() {
    Reset();
    FAME_OBS(++seeks_;)
    base_->SeekToLast();
  }
  void Prev() {
    loaded_ = false;
    FAME_OBS(++scanned_;)
    base_->Prev();
  }

 private:
  void Reset() {
    FAME_OBS(FlushMetrics(/*closing=*/false);)
    loaded_ = false;
    status_ = Status::OK();
  }

  bool Load() {
    Status s = TryLoad();
    // A failed join usually means the rid went stale under a concurrent
    // writer (kStaleJoinRetries): re-descend to the same key — the index
    // cursor's Seek re-reads the leaf, picking up the relocated rid — and
    // retry. A key that vanished outright (pruned by a concurrent GC
    // sweep; it had no visible version) ends the retries: Seek lands past
    // it and the error surfaces to the consumer as before.
    for (int attempt = 0; !s.ok() && attempt < kStaleJoinRetries; ++attempt) {
      std::string k(base_->key().data(), base_->key().size());
      base_->Seek(Slice(k));
      if (!base_->Valid() || base_->key() != Slice(k)) break;
      s = TryLoad();
    }
    if (s.ok()) return true;
    // A mid-scan heap-join failure invalidates the cursor; tag it in the
    // trace so a truncated scan is attributable to the exact position.
    FAME_OBS_TRACE(obs::Trace::Record(obs::SpanKind::kCursor,
                                      obs::TraceOp::kScan, scanned_,
                                      returned_, /*error=*/true);)
    status_ = std::move(s);
    return false;
  }

  /// One join attempt at the current position; OK caches the value.
  Status TryLoad() {
    storage::Rid rid = storage::Rid::Unpack(base_->value());
    // Inline-first heap join: the typical embedded record lands in the
    // fixed buffer so per-row loads never touch the heap; oversize records
    // spill to the owned string.
    size_t len = 0;
    Status s = heap_->Get(rid, inline_rec_, sizeof(inline_rec_), &len);
    Slice rec(inline_rec_, len);
    if (s.ok() && len > sizeof(inline_rec_)) {
      s = heap_->Get(rid, &record_);
      rec = Slice(record_);
    }
    FAME_RETURN_IF_ERROR(s);
    Slice in = rec;
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad core record");
    }
    if (Slice(in.data(), klen) != base_->key()) {
      return Status::Corruption("index points at the wrong record");
    }
    value_ = Slice(in.data() + klen, in.size() - klen);
    loaded_ = true;
    FAME_OBS(++returned_;)
    return Status::OK();
  }

#if FAME_OBS_ENABLED
  /// Adds the accumulated counters to the sink and zeroes them; `closing`
  /// also drops the open-cursor gauge and detaches the sink.
  void FlushMetrics(bool closing) {
    if (sink_.flush != nullptr && (seeks_ | scanned_ | returned_) != 0) {
      sink_.flush(sink_.ctx, seeks_, scanned_, returned_);
    }
    seeks_ = scanned_ = returned_ = 0;
    if (closing && sink_.track_open != nullptr) {
      sink_.track_open(sink_.ctx, false);
      sink_ = obs::CursorSink{};
    }
  }

  /// Move helper: steal the source's counters and sink, detaching them
  /// from the source so its destructor flushes nothing.
  void TakeMetrics(EngineCursor& o) {
    sink_ = o.sink_;
    seeks_ = o.seeks_;
    scanned_ = o.scanned_;
    returned_ = o.returned_;
    o.sink_ = obs::CursorSink{};
    o.seeks_ = o.scanned_ = o.returned_ = 0;
  }
#endif

  std::unique_ptr<index::Cursor> base_;
  storage::RecordManager* heap_;
  char inline_rec_[kInlineRecordBytes];  // common case: record lives here
  std::string record_;     // spill for records bigger than the inline buf
  Slice value_;            // value bytes within inline_rec_ or record_
  bool loaded_ = false;
  Status status_;
#if FAME_OBS_ENABLED
  obs::CursorSink sink_;
  uint64_t seeks_ = 0;
  uint64_t scanned_ = 0;
  uint64_t returned_ = 0;
#endif
};

/// [feature Mvcc] Heap-joining cursor frozen at one snapshot timestamp:
/// wraps an EngineCursor whose joined values are version chains and
/// resolves each position through tx::mvcc::VisibleAt, skipping keys with
/// no visible version (never written before the snapshot, or deleted by a
/// tombstone the snapshot can see). Concurrent writers that commit after
/// this cursor's ts only *prepend* chain entries, so every position keeps
/// resolving to exactly the version the snapshot saw — that is the
/// snapshot-stability guarantee the cursor conformance suite checks.
///
/// Concurrency model (the `latch` argument): MVCC readers take no table
/// locks, so writers stay free to commit during a scan — but a commit can
/// physically move bytes (heap-page compaction, record relocation, B+-tree
/// splits up to a root change), and the engine composes the footprint-free
/// SingleThreaded buffer pool whose frame pin counts are plain integers,
/// so even two *readers* must not touch the pool concurrently. Each cursor
/// *step* therefore runs under MvccManager::PhysLatch() held exclusive
/// (appliers hold it exclusive per mutation too), and Next()/Prev()
/// re-descend from the last returned key instead of trusting the base
/// cursor's pinned-leaf position, which a split may have restructured
/// between steps. The latch spans one step, never the whole scan: a
/// reader never blocks on a writer *transaction* (there are no row locks
/// and commits hold the latch only per physical mutation), it only queues
/// behind one descent + heap join. Without a latch (single-threaded
/// engines) the cheap pinned-leaf stepping is kept as-is.
///
/// All members are inline and only emitted when odr-used, so products
/// without the Mvcc sub-feature never reference the mvcc codec objects.
class SnapshotCursor {
 public:
  /// `mgr` (optional) is the oracle the snapshot was registered with via
  /// BeginSnapshot(): the cursor owns that registration and releases it on
  /// destruction. Without the pin, a concurrent write's inline prune
  /// (prune_below = Watermark()) could drop the very versions this cursor
  /// still resolves — the watermark must not advance past ts_ while the
  /// cursor lives. `latch` (optional, defaults to `mgr`) supplies the
  /// physical latch only — pass it alone for scans whose snapshot is
  /// pinned by the caller (the engine visitor adapters do).
  SnapshotCursor(EngineCursor base, uint64_t ts,
                 tx::mvcc::MvccManager* mgr = nullptr,
                 tx::mvcc::MvccManager* latch = nullptr)
      : base_(std::move(base)),
        ts_(ts),
        mgr_(mgr),
        latch_(latch != nullptr ? latch : mgr) {}
  ~SnapshotCursor() {
    if (mgr_ != nullptr) mgr_->ReleaseSnapshot(ts_);
  }
  SnapshotCursor(SnapshotCursor&& o) noexcept
      : base_(std::move(o.base_)),
        ts_(o.ts_),
        value_(o.value_),
        status_(std::move(o.status_)),
        pos_(std::move(o.pos_)),
        has_pos_(o.has_pos_),
        mgr_(o.mgr_),
        latch_(o.latch_) {
    o.mgr_ = nullptr;
  }
  SnapshotCursor& operator=(SnapshotCursor&& o) noexcept {
    if (this != &o) {
      if (mgr_ != nullptr) mgr_->ReleaseSnapshot(ts_);
      base_ = std::move(o.base_);
      ts_ = o.ts_;
      value_ = o.value_;
      status_ = std::move(o.status_);
      pos_ = std::move(o.pos_);
      has_pos_ = o.has_pos_;
      mgr_ = o.mgr_;
      latch_ = o.latch_;
      o.mgr_ = nullptr;
    }
    return *this;
  }
  SnapshotCursor(const SnapshotCursor&) = delete;
  SnapshotCursor& operator=(const SnapshotCursor&) = delete;

  void SeekToFirst() {
    auto step = LockStep();
    base_.SeekToFirst();
    Settle(/*forward=*/true);
  }
  void Seek(const Slice& target) {
    auto step = LockStep();
    base_.Seek(target);
    Settle(/*forward=*/true);
  }
  bool Valid() const { return status_.ok() && base_.Valid(); }
  void Next() {
    auto step = LockStep();
    if (latch_ != nullptr && has_pos_) {
      // Fresh descent to the last settled key: the base cursor's pinned
      // leaf may have been split or compacted since the previous step, so
      // its cached position (leaf frame, entry index, entry count) cannot
      // be trusted across the latch gap. Seek lands at the smallest key
      // >= pos_ on the *current* structure; stepping past pos_ itself
      // (when still present) yields the successor.
      base_.Seek(Slice(pos_));
      if (base_.Valid() && base_.key() == Slice(pos_)) base_.Next();
    } else {
      base_.Next();
    }
    Settle(/*forward=*/true);
  }
  /// The settled key. Returned from the cursor-owned copy captured under
  /// the step latch — the base cursor's key() Slice points into a pinned
  /// page frame that a concurrent writer may rewrite between steps.
  Slice key() const { return Slice(pos_); }
  /// Visible version's value bytes (stable until the next cursor call;
  /// the EngineCursor owns a copy of the record, so concurrent page
  /// motion cannot touch it).
  Slice value() const { return value_; }
  const Status& status() const {
    return status_.ok() ? base_.status() : status_;
  }

  bool SupportsReverse() const { return base_.SupportsReverse(); }
  void SeekToLast() {
    auto step = LockStep();
    base_.SeekToLast();
    Settle(/*forward=*/false);
  }
  void Prev() {
    auto step = LockStep();
    if (latch_ != nullptr && has_pos_) {
      // Predecessor via fresh descent: land at the smallest key >= pos_,
      // then one step back. When every key is now < pos_ the predecessor
      // is the last key overall.
      base_.Seek(Slice(pos_));
      if (base_.Valid()) {
        base_.Prev();
      } else if (base_.status().ok()) {
        base_.SeekToLast();
      }
    } else {
      base_.Prev();
    }
    Settle(/*forward=*/false);
  }

  uint64_t snapshot_ts() const { return ts_; }

 private:
  /// Physical latch for one step (no-op without a latch manager). Held
  /// exclusive, not shared: the underlying SingleThreaded buffer pool
  /// keeps pin counts as plain integers, so concurrent reader steps would
  /// race on them even though neither moves bytes.
  std::unique_lock<std::shared_mutex> LockStep() {
    return latch_ != nullptr
               ? std::unique_lock<std::shared_mutex>(latch_->PhysLatch())
               : std::unique_lock<std::shared_mutex>();
  }

  /// Advances past positions with no version visible at ts_; stops on the
  /// first visible one (caching its value and key) or on chain corruption.
  void Settle(bool forward) {
    while (base_.Valid()) {
      Slice chain = base_.value();
      if (!base_.Valid()) return;  // heap join failed; base status has it
      tx::mvcc::Version v;
      Status s = tx::mvcc::VisibleAt(chain, ts_, &v);
      if (s.ok()) {
        value_ = v.value;
        pos_.assign(base_.key().data(), base_.key().size());
        has_pos_ = true;
        return;
      }
      if (!s.IsNotFound()) {
        status_ = s;
        return;
      }
      if (forward) {
        base_.Next();
      } else {
        base_.Prev();
      }
    }
  }

  EngineCursor base_;
  uint64_t ts_;
  Slice value_;       // within base_'s record buffer (cursor-owned copy)
  Status status_;
  std::string pos_;   // settled key; re-descent anchor and key() storage
  bool has_pos_ = false;
  tx::mvcc::MvccManager* mgr_ = nullptr;    // released on destruction
  tx::mvcc::MvccManager* latch_ = nullptr;  // physical latch only
};

template <typename IndexT>
class EngineCore {
 public:
  /// Binds the composed components (non-owning); call after the storage
  /// stack is (re)opened.
  void Bind(storage::RecordManager* heap, IndexT* index) {
    heap_ = heap;
    index_ = index;
  }

  IndexT* index() { return index_; }

#if FAME_OBS_ENABLED
  /// [feature Observability] Sink wired into every cursor this core opens
  /// (the owner engine points it at its registry's cursor metrics).
  void SetCursorSink(obs::CursorSink sink) { cursor_sink_ = sink; }
#endif

  static std::string EncodeRecord(const Slice& key, const Slice& value) {
    std::string rec;
    PutVarint32(&rec, static_cast<uint32_t>(key.size()));
    rec.append(key.data(), key.size());
    rec.append(value.data(), value.size());
    return rec;
  }

  /// Encodes into `buf` when the record fits (the common case on embedded
  /// products — Put stays heap-free), else into `*spill`.
  static Slice EncodeRecordInto(const Slice& key, const Slice& value,
                                char* buf, size_t cap, std::string* spill) {
    const size_t worst = 5 + key.size() + value.size();  // varint32 <= 5
    if (worst > cap) {
      *spill = EncodeRecord(key, value);
      return Slice(*spill);
    }
    char* p = EncodeVarint32(buf, static_cast<uint32_t>(key.size()));
    std::memcpy(p, key.data(), key.size());
    p += key.size();
    std::memcpy(p, value.data(), value.size());
    p += value.size();
    return Slice(buf, static_cast<size_t>(p - buf));
  }

  static Status DecodeRecord(const Slice& rec, const Slice& expect_key,
                             std::string* value) {
    Slice in = rec;
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad core record");
    }
    if (Slice(in.data(), klen) != expect_key) {
      return Status::Corruption("index points at the wrong record");
    }
    value->assign(in.data() + klen, in.size() - klen);
    return Status::OK();
  }

  Status Get(const Slice& key, std::string* value) {
    // Bounded refresh on a stale rid (kStaleJoinRetries): a concurrent
    // writer may relocate the record between the index probe and the heap
    // fetch; a fresh probe reads the re-pointed entry. Lookup's NotFound
    // is authoritative (the key is absent) and never retried.
    Status s;
    for (int attempt = 0; attempt <= kStaleJoinRetries; ++attempt) {
      uint64_t packed = 0;
      FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
      // Fetch the whole record into the caller's string and strip the key
      // prefix in place: no temporary, and a reused `value` keeps its
      // capacity — steady-state gets never touch the heap.
      s = heap_->Get(storage::Rid::Unpack(packed), value);
      if (!s.ok()) continue;
      Slice in(*value);
      uint32_t klen = 0;
      if (!GetVarint32(&in, &klen) || in.size() < klen) {
        s = Status::Corruption("bad core record");
        continue;
      }
      if (Slice(in.data(), klen) != key) {
        s = Status::Corruption("index points at the wrong record");
        continue;
      }
      value->erase(0, value->size() - (in.size() - klen));
      return Status::OK();
    }
    return s;
  }

  /// Upsert: in-place heap update when the key exists (re-indexing only if
  /// the record moved), insert + index otherwise.
  Status Put(const Slice& key, const Slice& value) {
    uint64_t packed = 0;
    Status found = index_->Lookup(key, &packed);
    char inline_rec[kInlineRecordBytes];
    std::string spill;
    Slice rec =
        EncodeRecordInto(key, value, inline_rec, sizeof(inline_rec), &spill);
    if (found.ok()) {
      return UpdateRecord(key, storage::Rid::Unpack(packed), rec);
    }
    if (!found.IsNotFound()) return found;
    auto rid_or = heap_->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    return index_->Insert(key, rid_or.value().Pack());
  }

  /// Rewrites an indexed record. In place when it still fits its page;
  /// otherwise in publish-then-retire order — insert the new copy,
  /// re-point the index entry at it, only then free the old slot — so a
  /// lock-free reader (MVCC snapshot scans, concurrent gets) that already
  /// read the old rid always finds a live record there: either copy is a
  /// consistent state, never a freed slot. (Update's delete-then-reinsert
  /// would leave the published rid dangling for the whole window until
  /// the index re-point, which spans a scheduling quantum in the worst
  /// case — far longer than any bounded reader retry.)
  Status UpdateRecord(const Slice& key, storage::Rid rid, const Slice& rec) {
    Status s = heap_->UpdateInPlace(rid, rec);
    if (s.code() != StatusCode::kResourceExhausted) return s;
    auto moved_or = heap_->Insert(rec);
    FAME_RETURN_IF_ERROR(moved_or.status());
    FAME_RETURN_IF_ERROR(index_->Insert(key, moved_or.value().Pack()));
    return heap_->Delete(rid);
  }

  Status Remove(const Slice& key) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    FAME_RETURN_IF_ERROR(heap_->Delete(storage::Rid::Unpack(packed)));
    return index_->Remove(key);
  }

  /// Opens a heap-joining cursor (index iteration order).
  StatusOr<EngineCursor> NewCursor() {
    FAME_ASSIGN_OR_RETURN(std::unique_ptr<index::Cursor> c,
                          index_->NewCursor());
    EngineCursor cur(std::move(c), heap_);
    FAME_OBS(cur.set_sink(cursor_sink_);)
    return cur;
  }

  /// Visitor adapters over the cursor — the legacy entry points.
  Status Scan(const KvVisitor& fn) {
    return ScanRange(Slice(), Slice(), /*ordered=*/true, fn);
  }

  /// lo <= key < hi. `ordered` must match the access method: when false,
  /// out-of-range keys are filtered instead of terminating the walk.
  Status RangeScan(const Slice& lo, const Slice& hi, bool ordered,
                   const KvVisitor& fn) {
    return ScanRange(lo, hi, ordered, fn);
  }

  /// All records whose key starts with `prefix`: a bounded range on an
  /// ordered index, a filtered full scan otherwise.
  Status ScanPrefix(const Slice& prefix, bool ordered, const KvVisitor& fn) {
    if (!ordered) {
      return ScanRange(Slice(), Slice(), false, [&](const Slice& k,
                                                    const Slice& v) {
        return k.starts_with(prefix) ? fn(k, v) : true;
      });
    }
    std::string hi = PrefixUpperBound(prefix);
    return ScanRange(prefix, Slice(hi), true, fn);
  }

  /// Descending over [lo, hi) — the ReverseScan feature. The caller gates
  /// on feature selection; the access method must support reverse.
  Status ReverseScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    FAME_ASSIGN_OR_RETURN(EngineCursor c, NewCursor());
    if (!c.SupportsReverse()) {
      return Status::NotSupported("access method has no reverse iteration");
    }
    if (hi.empty()) {
      c.SeekToLast();
    } else {
      // Predecessor of hi: the entry before the first key >= hi (the last
      // entry overall when every key is < hi).
      c.Seek(hi);
      if (c.Valid()) {
        c.Prev();
      } else if (c.status().ok()) {
        c.SeekToLast();
      }
    }
    for (; c.Valid(); c.Prev()) {
      if (!lo.empty() && c.key().compare(lo) < 0) break;
      Slice v = c.value();
      if (!c.Valid()) break;  // heap join failed; status() has the error
      if (!fn(c.key(), v)) break;
    }
    return c.status();
  }

  // ---- [feature Mvcc] versioned record path ----------------------------
  // Template members: instantiated — and the mvcc codec objects pulled out
  // of the tx library — only when a product that selects Mvcc calls them.
  // The chain is stored as the value half of the ordinary heap record, so
  // index maintenance, heap placement and the cursor join are untouched.

  /// Appends a (commit_ts, value | tombstone) head to `key`'s version
  /// chain, closing the previous head and dropping entries dead below
  /// `prune_below` on the way. Idempotent: a stamp at or below the current
  /// chain head is a replayed write and becomes a no-op — that property
  /// makes crash recovery, double reopens and replication follower apply
  /// safe to re-run.
  Status WriteVersion(const Slice& key, const Slice& value, bool tombstone,
                      uint64_t commit_ts, uint64_t prune_below,
                      tx::mvcc::MvccManager* mgr) {
    // Exclusive physical latch for the whole apply: the rewrite below may
    // compact the heap page, relocate the record, or split index nodes —
    // motion a latch-free snapshot reader could otherwise tear mid-step
    // (see MvccManager::PhysLatch). Readers hold the shared side per step.
    std::unique_lock<std::shared_mutex> phys;
    if (mgr != nullptr) {
      phys = std::unique_lock<std::shared_mutex>(mgr->PhysLatch());
    }
    uint64_t packed = 0;
    Status found = index_->Lookup(key, &packed);
    std::string chain;
    storage::Rid rid;
    bool exists = false;
    if (found.ok()) {
      rid = storage::Rid::Unpack(packed);
      FAME_RETURN_IF_ERROR(heap_->Get(rid, &chain));
      Slice in(chain);
      uint32_t klen = 0;
      if (!GetVarint32(&in, &klen) || in.size() < klen) {
        return Status::Corruption("bad core record");
      }
      if (Slice(in.data(), klen) != key) {
        return Status::Corruption("index points at the wrong record");
      }
      chain.erase(0, chain.size() - (in.size() - klen));
      exists = true;
      // Strictly-newer heads mean this write was already applied AND
      // superseded — a replayed tail behind a later checkpoint. An equal
      // ts falls through: ops of one transaction share its commit ts and
      // the last op on a key must win (AppendVersion replaces the head).
      if (tx::mvcc::HeadTs(chain) > commit_ts) return Status::OK();
    } else if (!found.IsNotFound()) {
      return found;
    }
    std::string next;
    uint32_t entries = tx::mvcc::AppendVersion(Slice(chain), commit_ts,
                                               tombstone, Slice(value),
                                               prune_below, &next);
    if (mgr != nullptr) mgr->RecordChainLen(entries);
    char inline_rec[kInlineRecordBytes];
    std::string spill;
    Slice rec = EncodeRecordInto(key, Slice(next), inline_rec,
                                 sizeof(inline_rec), &spill);
    if (exists) {
      // Publish-then-retire (UpdateRecord): snapshot readers hold rids
      // with no latch, so the old slot must outlive the index re-point.
      return UpdateRecord(key, rid, rec);
    }
    auto rid_or = heap_->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    return index_->Insert(key, rid_or.value().Pack());
  }

  /// Point lookup at snapshot `ts`: NotFound when the key has no visible
  /// version (absent, written after ts, or tombstoned at ts). `latch`
  /// (optional) shields the physical probe+fetch against concurrent
  /// appliers *and other readers* (exclusive: the SingleThreaded pool's
  /// pin counts are plain ints); the chain copy is resolved outside the
  /// latch. The caller must hold `ts` pinned (a registered snapshot) —
  /// otherwise a concurrent commit's inline prune may retire the version
  /// visible at ts before the chain copy is taken.
  Status GetVersioned(const Slice& key, uint64_t ts, std::string* value,
                      tx::mvcc::MvccManager* latch = nullptr) {
    std::string chain;
    {
      std::unique_lock<std::shared_mutex> phys;
      if (latch != nullptr) {
        phys = std::unique_lock<std::shared_mutex>(latch->PhysLatch());
      }
      FAME_RETURN_IF_ERROR(Get(key, &chain));
    }
    tx::mvcc::Version v;
    FAME_RETURN_IF_ERROR(tx::mvcc::VisibleAt(Slice(chain), ts, &v));
    value->assign(v.value.data(), v.value.size());
    return Status::OK();
  }

  /// Point lookup at the *current* read timestamp, without registering a
  /// snapshot: the ts is sampled under the physical latch, and appliers
  /// hold that latch through apply + inline prune — so between the sample
  /// and the chain copy no commit can retire the version this read
  /// resolves. (Sampling ReadTs outside the latch would leave a window in
  /// which two back-to-back commits advance the watermark past the
  /// sampled ts and prune its version.) Exclusive for the same pin-count
  /// reason as SnapshotCursor::LockStep.
  Status GetVersionedLatest(const Slice& key, std::string* value,
                            tx::mvcc::MvccManager* mgr) {
    std::string chain;
    uint64_t ts = 0;
    {
      std::unique_lock<std::shared_mutex> phys(mgr->PhysLatch());
      ts = mgr->ReadTs();
      FAME_RETURN_IF_ERROR(Get(key, &chain));
    }
    tx::mvcc::Version v;
    FAME_RETURN_IF_ERROR(tx::mvcc::VisibleAt(Slice(chain), ts, &v));
    value->assign(v.value.data(), v.value.size());
    return Status::OK();
  }

  /// Opens a snapshot-frozen heap-joining cursor at `ts`. When `mgr` is
  /// given, the caller already registered the snapshot (BeginSnapshot) and
  /// the cursor releases it when destroyed — pinning the GC watermark at
  /// or below ts for the cursor's lifetime.
  StatusOr<SnapshotCursor> NewSnapshotCursor(
      uint64_t ts, tx::mvcc::MvccManager* mgr = nullptr) {
    auto c = NewCursor();
    if (!c.ok()) {
      if (mgr != nullptr) mgr->ReleaseSnapshot(ts);
      return c.status();
    }
    return SnapshotCursor(std::move(c).value(), ts, mgr);
  }

  /// Snapshot visitor adapters — the versioned twins of Scan/RangeScan/
  /// ScanPrefix/ReverseScan: same traversal shape, each chain resolved at
  /// `ts`, invisible keys skipped, corruption surfaced. When `mgr` is
  /// given, `ts` must be a *registered* snapshot (the caller's
  /// mgr->BeginSnapshot()); the underlying SnapshotCursor takes ownership
  /// of the registration and releases it when the scan finishes — pinning
  /// the GC watermark at or below ts for the whole walk. Without the pin a
  /// concurrent commit's inline prune (prune_below = Watermark()) could
  /// retire the very versions the in-flight scan still has to resolve and
  /// keys would silently vanish mid-scan. `mgr` also supplies the
  /// per-step physical latching and re-descent the handle cursors get;
  /// the visitor runs outside any pinned mid-mutation state.
  Status SnapshotScan(uint64_t ts, const KvVisitor& fn,
                      tx::mvcc::MvccManager* mgr = nullptr) {
    return SnapshotRangeScan(ts, Slice(), Slice(), /*ordered=*/true, fn, mgr);
  }

  Status SnapshotRangeScan(uint64_t ts, const Slice& lo, const Slice& hi,
                           bool ordered, const KvVisitor& fn,
                           tx::mvcc::MvccManager* mgr = nullptr) {
    FAME_ASSIGN_OR_RETURN(SnapshotCursor cur, NewSnapshotCursor(ts, mgr));
    if (lo.empty()) {
      cur.SeekToFirst();
    } else {
      cur.Seek(lo);
    }
    for (; cur.Valid(); cur.Next()) {
      if (!hi.empty() && cur.key().compare(hi) >= 0) {
        if (ordered) break;
        continue;
      }
      if (!fn(cur.key(), cur.value())) break;
    }
    return cur.status();
  }

  Status SnapshotScanPrefix(uint64_t ts, const Slice& prefix, bool ordered,
                            const KvVisitor& fn,
                            tx::mvcc::MvccManager* mgr = nullptr) {
    if (!ordered) {
      return SnapshotRangeScan(
          ts, Slice(), Slice(), false,
          [&](const Slice& k, const Slice& v) {
            return k.starts_with(prefix) ? fn(k, v) : true;
          },
          mgr);
    }
    std::string hi = PrefixUpperBound(prefix);
    return SnapshotRangeScan(ts, prefix, Slice(hi), true, fn, mgr);
  }

  Status SnapshotReverseScan(uint64_t ts, const Slice& lo, const Slice& hi,
                             const KvVisitor& fn,
                             tx::mvcc::MvccManager* mgr = nullptr) {
    FAME_ASSIGN_OR_RETURN(SnapshotCursor cur, NewSnapshotCursor(ts, mgr));
    if (!cur.SupportsReverse()) {
      return Status::NotSupported("access method has no reverse iteration");
    }
    if (hi.empty()) {
      cur.SeekToLast();
    } else {
      // Predecessor of hi among *visible* keys: Seek settles at the first
      // visible key >= hi, so one Prev lands on the last visible key < hi
      // (every key between is invisible at ts by construction).
      cur.Seek(hi);
      if (cur.Valid()) {
        cur.Prev();
      } else if (cur.status().ok()) {
        cur.SeekToLast();
      }
    }
    for (; cur.Valid(); cur.Prev()) {
      if (!lo.empty() && cur.key().compare(lo) < 0) break;
      if (!fn(cur.key(), cur.value())) break;
    }
    return cur.status();
  }

  /// Watermark GC sweep: rewrites every chain without its versions dead at
  /// `watermark` and deletes keys whose chain empties (head tombstone at or
  /// below the watermark). Collect-then-apply, because mutating the heap
  /// under an open cursor is not supported. Returns versions pruned.
  StatusOr<uint64_t> MvccSweep(uint64_t watermark, tx::mvcc::MvccManager* mgr) {
    // The sweep holds the physical latch exclusive end to end: collect
    // iterates the heap-joined cursor and apply rewrites records in place,
    // and a snapshot reader must see neither mid-flight. GC is an explicit
    // maintenance call, so stalling readers for its duration is the simple
    // correct trade.
    std::unique_lock<std::shared_mutex> phys;
    if (mgr != nullptr) {
      phys = std::unique_lock<std::shared_mutex>(mgr->PhysLatch());
    }
    struct Edit {
      std::string key;
      std::string chain;  // empty = delete the key
      uint64_t pruned;
    };
    std::vector<Edit> edits;
    FAME_RETURN_IF_ERROR(Scan([&](const Slice& k, const Slice& v) {
      std::string next;
      uint64_t pruned = 0;
      // A corrupt chain is left in place: the sweep is advisory, readers
      // report the corruption with full context.
      if (!tx::mvcc::PruneChain(v, watermark, &next, &pruned).ok()) {
        return true;
      }
      if (pruned == 0) return true;
      edits.push_back(Edit{k.ToString(), std::move(next), pruned});
      return true;
    }));
    uint64_t total = 0;
    for (const auto& e : edits) {
      if (e.chain.empty()) {
        FAME_RETURN_IF_ERROR(Remove(Slice(e.key)));
      } else {
        FAME_RETURN_IF_ERROR(Put(Slice(e.key), Slice(e.chain)));
      }
      total += e.pruned;
    }
    if (mgr != nullptr) mgr->RecordGcRun(total);
    return total;
  }

 private:
  /// Smallest key greater than every key with `prefix` ("" = unbounded,
  /// for an all-0xff prefix).
  static std::string PrefixUpperBound(const Slice& prefix) {
    std::string hi = prefix.ToString();
    while (!hi.empty()) {
      if (static_cast<unsigned char>(hi.back()) != 0xff) {
        hi.back() = static_cast<char>(hi.back() + 1);
        return hi;
      }
      hi.pop_back();
    }
    return hi;
  }

  Status ScanRange(const Slice& lo, const Slice& hi, bool ordered,
                   const KvVisitor& fn) {
    FAME_ASSIGN_OR_RETURN(EngineCursor c, NewCursor());
    if (lo.empty()) {
      c.SeekToFirst();
    } else {
      c.Seek(lo);
    }
    for (; c.Valid(); c.Next()) {
      if (!hi.empty() && c.key().compare(hi) >= 0) {
        if (ordered) break;
        continue;
      }
      Slice v = c.value();
      if (!c.Valid()) break;  // heap join failed; status() has the error
      if (!fn(c.key(), v)) break;
    }
    return c.status();
  }

  storage::RecordManager* heap_ = nullptr;
  IndexT* index_ = nullptr;
#if FAME_OBS_ENABLED
  obs::CursorSink cursor_sink_;
#endif
};

}  // namespace fame::core

#endif  // FAME_CORE_ENGINE_CORE_H_

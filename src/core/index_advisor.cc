#include "core/index_advisor.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/stringutil.h"
#include "index/bplus_tree.h"
#include "index/keys.h"
#include "index/list_index.h"
#include "osal/allocator.h"
#include "osal/env.h"

namespace fame::core {

namespace {

double BtreeLevels(uint64_t n, double fanout) {
  if (n <= 1) return 1;
  return std::max(1.0, std::ceil(std::log(static_cast<double>(n)) /
                                 std::log(std::max(2.0, fanout))));
}

}  // namespace

IndexRecommendation AdviseIndex(const WorkloadProfile& profile,
                                const IndexCostModel& model) {
  IndexRecommendation rec;
  const double n = static_cast<double>(std::max<uint64_t>(1, profile.expected_entries));
  const double levels = BtreeLevels(profile.expected_entries, model.btree_fanout);

  double btree_read = model.btree_base + model.btree_per_level * levels;
  double btree_write = btree_read * model.btree_insert_factor;
  // List: expected half scan on hits; writes scan for the upsert duplicate
  // check, then append.
  double list_read = model.list_per_entry * n / 2;
  double list_write = model.list_per_entry * n;

  rec.btree_cost = profile.point_lookup_fraction * btree_read +
                   profile.range_scan_fraction * btree_read +
                   profile.write_fraction * btree_write;
  rec.list_cost = profile.point_lookup_fraction * list_read +
                  // a List "range scan" is a full filtered pass
                  profile.range_scan_fraction * model.list_per_entry * n +
                  profile.write_fraction * list_write;

  if (profile.requires_order || profile.range_scan_fraction > 0.25) {
    rec.feature = "B+-Tree";
    rec.rationale = profile.requires_order
                        ? "ordered iteration is required"
                        : "range-scan heavy workloads need the ordered index";
    return rec;
  }
  if (rec.list_cost <= rec.btree_cost) {
    rec.feature = "List";
    rec.rationale = StringPrintf(
        "%llu entries are cheap to scan (%.2f vs %.2f per op) and the List "
        "index is the smallest footprint",
        static_cast<unsigned long long>(profile.expected_entries),
        rec.list_cost, rec.btree_cost);
  } else {
    rec.feature = "B+-Tree";
    rec.rationale = StringPrintf(
        "linear scans over %llu entries are too slow (%.2f vs %.2f per op)",
        static_cast<unsigned long long>(profile.expected_entries),
        rec.list_cost, rec.btree_cost);
  }
  return rec;
}

StatusOr<IndexCostModel> Calibrate(uint64_t sample_size) {
  sample_size = std::clamp<uint64_t>(sample_size, 256, 100'000);
  auto env = osal::NewMemEnv(0);
  osal::DynamicAllocator alloc;
  storage::PageFileOptions opts;
  opts.paranoid_checks = false;
  auto pf = storage::PageFile::Open(env.get(), "cal", opts);
  FAME_RETURN_IF_ERROR(pf.status());
  auto bm = storage::BufferManager::Create(
      pf->get(), 256, &alloc, storage::MakeReplacementPolicy("lru"));
  FAME_RETURN_IF_ERROR(bm.status());

  IndexCostModel model;

  // ---- B+-tree: measure lookups at two sizes to split base/per-level ----
  {
    auto tree_or = index::BPlusTree::Open(bm->get(), "cal_t");
    FAME_RETURN_IF_ERROR(tree_or.status());
    auto& tree = *tree_or;
    Random rng(1);
    auto measure = [&](uint64_t upto) -> StatusOr<double> {
      uint64_t v;
      uint64_t start = env->NowNanos();
      const uint64_t reps = 20'000;
      for (uint64_t i = 0; i < reps; ++i) {
        FAME_RETURN_IF_ERROR(
            tree->Lookup(index::EncodeU64Key(rng.Uniform(upto)), &v));
      }
      return static_cast<double>(env->NowNanos() - start) / 1000.0 /
             static_cast<double>(reps);  // us/op
    };
    uint64_t small_n = std::max<uint64_t>(64, sample_size / 16);
    for (uint64_t i = 0; i < small_n; ++i) {
      FAME_RETURN_IF_ERROR(tree->Insert(index::EncodeU64Key(i), i));
    }
    FAME_ASSIGN_OR_RETURN(double cost_small, measure(small_n));
    for (uint64_t i = small_n; i < sample_size; ++i) {
      FAME_RETURN_IF_ERROR(tree->Insert(index::EncodeU64Key(i), i));
    }
    FAME_ASSIGN_OR_RETURN(double cost_large, measure(sample_size));
    double levels_small = BtreeLevels(small_n, model.btree_fanout);
    double levels_large = BtreeLevels(sample_size, model.btree_fanout);
    if (levels_large > levels_small) {
      model.btree_per_level = std::max(
          0.01, (cost_large - cost_small) / (levels_large - levels_small));
    } else {
      model.btree_per_level = std::max(0.01, cost_large * 0.3);
    }
    model.btree_base =
        std::max(0.01, cost_large - model.btree_per_level * levels_large);
  }

  // ---- List: per-entry scan cost from a small sample ----
  {
    auto list_or = index::ListIndex::Open(bm->get(), "cal_l");
    FAME_RETURN_IF_ERROR(list_or.status());
    auto& list = *list_or;
    const uint64_t n = std::min<uint64_t>(1024, sample_size);
    for (uint64_t i = 0; i < n; ++i) {
      FAME_RETURN_IF_ERROR(list->Insert(index::EncodeU64Key(i), i));
    }
    Random rng(2);
    uint64_t v;
    const uint64_t reps = 2'000;
    uint64_t start = env->NowNanos();
    for (uint64_t i = 0; i < reps; ++i) {
      FAME_RETURN_IF_ERROR(
          list->Lookup(index::EncodeU64Key(rng.Uniform(n)), &v));
    }
    double us_per_lookup =
        static_cast<double>(env->NowNanos() - start) / 1000.0 /
        static_cast<double>(reps);
    // Expected scan length on a hit is n/2 entries.
    model.list_per_entry =
        std::max(1e-5, us_per_lookup / (static_cast<double>(n) / 2));
  }
  return model;
}

Status ApplyRecommendation(const IndexRecommendation& rec,
                           fm::Configuration* config) {
  if (config == nullptr || config->model() == nullptr) {
    return Status::InvalidArgument("configuration is not bound to a model");
  }
  FAME_RETURN_IF_ERROR(config->SelectByName(rec.feature));
  return config->model()->Propagate(config);
}

}  // namespace fame::core

// [feature Backup] Online hot backup and point-in-time recovery over the
// segmented WAL. Lives in its own translation unit (and the
// fame::core::backup namespace) so products without the Backup feature
// never link a byte of it — the nm-based symbol guard in the test suite
// checks exactly that, mirroring the Observability isolation.
//
// A backup is three artifacts under a destination prefix D:
//   D            — checksum-verified copy of the page file (fuzzy: taken
//                  while committers keep appending; consistency comes from
//                  replaying the copied log suffix)
//   D.wal.NNNNNN — the live WAL segments, the last one cut at the durable
//                  end captured after the page copy (`end_lsn`)
//   D.manifest   — CRC-sealed text manifest tying the pieces together
//
// Restore materializes the page file and segment chain at a new path and
// optionally splices archived segments past `end_lsn` for point-in-time
// recovery; opening the restored database replays the chain as ordinary
// crash recovery.
#ifndef FAME_CORE_BACKUP_H_
#define FAME_CORE_BACKUP_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "osal/env.h"

namespace fame::storage {
class PageFile;
}
namespace fame::tx {
class TransactionManager;
}

namespace fame::core::backup {

/// What a completed backup captured.
struct BackupReport {
  uint64_t mark = 0;            ///< retention watermark inside the copied meta
  uint64_t end_lsn = 0;         ///< durable log end the backup covers; the
                                ///< lower bound for any restore target
  uint64_t pages_copied = 0;    ///< page images in the copied file
  uint64_t bytes_copied = 0;    ///< total bytes written (file + segments)
  uint64_t segments_copied = 0; ///< WAL segments captured
};

/// What a restore materialized.
struct RestoreReport {
  uint64_t mark = 0;                 ///< watermark of the restored meta
  uint64_t end_lsn = 0;              ///< manifest end_lsn
  uint64_t target_lsn = 0;           ///< effective replay cut
  uint64_t pages_restored = 0;
  uint64_t segments_restored = 0;    ///< segments from the backup itself
  uint64_t archived_integrated = 0;  ///< archived segments spliced for PITR
};

/// Live-database handles a backup runs against. All pointers are borrowed.
struct BackupContext {
  osal::Env* env = nullptr;
  tx::TransactionManager* txmgr = nullptr;   ///< must own a segmented log
  storage::PageFile* file = nullptr;         ///< source page file
  std::string db_path;                       ///< page file path on disk
  std::string wal_path;                      ///< log path (db_path + ".wal")
};

/// Hot backup to destination prefix `dest`: pauses segment recycling,
/// checkpoints, copies pages with per-page checksum verification while
/// engine applies are paused (commit appends keep flowing), then copies
/// the segment chain up to the durable end and seals the manifest.
Status RunBackup(const BackupContext& ctx, const std::string& dest,
                 BackupReport* report);

/// Restore tuning.
struct RestoreOptions {
  /// Replay cut: 0 restores exactly to the backup's end_lsn; anything
  /// larger needs archived segments (Pitr) covering (end_lsn, target].
  /// Targets below end_lsn are rejected — the page copy may already
  /// contain effects up to end_lsn.
  uint64_t target_lsn = 0;
  /// Prefix of the archived-segment files ("<db>.wal.arc." for a Pitr
  /// product); empty disables archive splicing.
  std::string archive_prefix;
};

/// Rebuilds a database at `dest_path` from the backup at prefix `src`.
/// Verifies every manifest CRC before writing anything. The restored
/// database is opened normally afterwards; crash recovery replays the
/// restored chain.
Status RunRestore(osal::Env* env, const std::string& src,
                  const std::string& dest_path, const RestoreOptions& opts,
                  RestoreReport* report);

}  // namespace fame::core::backup

#endif  // FAME_CORE_BACKUP_H_

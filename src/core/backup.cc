#include "core/backup.h"

#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/retry.h"
#include "storage/page.h"
#include "storage/pagefile.h"
#include "tx/txmgr.h"
#include "tx/wal_segments.h"

namespace fame::core::backup {

namespace {

constexpr char kManifestMagic[] = "fame-backup";
constexpr uint32_t kManifestVersion = 1;

/// Re-enables segment recycling on every exit path of a backup.
class RecycleGuard {
 public:
  explicit RecycleGuard(tx::TransactionManager* mgr) : mgr_(mgr) {
    mgr_->PauseWalRecycle(true);
  }
  ~RecycleGuard() { mgr_->PauseWalRecycle(false); }
  RecycleGuard(const RecycleGuard&) = delete;
  RecycleGuard& operator=(const RecycleGuard&) = delete;

 private:
  tx::TransactionManager* mgr_;
};

Status ReadExact(osal::RandomAccessFile* file, uint64_t off, uint64_t n,
                 std::string* out) {
  out->resize(n);
  uint64_t got = 0;
  while (got < n) {
    Slice chunk;
    FAME_RETURN_IF_ERROR(
        file->Read(off + got, n - got, out->data() + got, &chunk));
    if (chunk.empty()) return Status::Corruption("short read");
    if (chunk.data() != out->data() + got) {
      std::memmove(out->data() + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  return Status::OK();
}

bool AllZero(const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

/// Durable whole-file write with host-side backoff (backups are host-only).
Status WriteFileDurable(osal::Env* env, const std::string& name,
                        const std::string& data) {
  return RetryOnTransient(HostIoRetryPolicy(),
                          [&] { return env->WriteStringToFile(name, data); });
}

/// One segment image headed for the restored chain.
struct SegmentPlan {
  uint32_t seq = 0;
  uint64_t base = 0;
  std::string data;  // header + payload
};

/// Parses the numeric suffix of "<prefix><digits>"; false for other names.
bool ParseSeqSuffix(const std::string& name, const std::string& prefix,
                    uint32_t* seq) {
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  std::string suffix = name.substr(prefix.size());
  if (suffix.size() < 6 || suffix.size() > 9) return false;
  for (char c : suffix) {
    if (c < '0' || c > '9') return false;
  }
  *seq = static_cast<uint32_t>(std::stoul(suffix));
  return true;
}

}  // namespace

Status RunBackup(const BackupContext& ctx, const std::string& dest,
                 BackupReport* report) {
  if (ctx.env == nullptr || ctx.txmgr == nullptr || ctx.file == nullptr) {
    return Status::InvalidArgument("backup context is incomplete");
  }
  if (!ctx.txmgr->wal_segmented()) {
    return Status::InvalidArgument("hot backup requires a segmented log");
  }
  if (dest.empty() || dest == ctx.db_path) {
    return Status::InvalidArgument("backup destination must be a new prefix");
  }
  BackupReport rep;

  // Freeze the segment chain for the duration: checkpoints keep advancing
  // the watermark but no file is recycled out from under the copy.
  RecycleGuard recycle(ctx.txmgr);

  // Checkpoint so the on-disk page file holds everything up to the
  // watermark; the copied meta then carries that watermark with it.
  FAME_RETURN_IF_ERROR(ctx.txmgr->Checkpoint());
  {
    auto mark_or = ctx.file->GetRootAux("wal.mark");
    rep.mark = mark_or.ok() ? mark_or.value() : 0;
  }

  // Fuzzy page copy. Engine applies (and further checkpoints) are paused,
  // so the on-disk image is stable; committers stall only at their apply
  // step — appends and fsyncs keep flowing. Every data page is verified
  // against its own checksum, with a bounded re-read for transient damage.
  const uint32_t page_size = ctx.file->page_size();
  std::string image;
  FAME_RETURN_IF_ERROR(ctx.txmgr->WithApplyPaused([&]() -> Status {
    auto src_or = ctx.env->OpenFile(ctx.db_path, /*create=*/false);
    FAME_RETURN_IF_ERROR(src_or.status());
    std::unique_ptr<osal::RandomAccessFile> src = std::move(src_or).value();
    FAME_ASSIGN_OR_RETURN(uint64_t file_bytes, src->Size());
    const uint64_t pages = file_bytes / page_size;
    image.reserve(file_bytes);
    std::string page_buf;
    for (uint64_t id = 0; id < pages; ++id) {
      FAME_RETURN_IF_ERROR(
          ReadExact(src.get(), id * page_size, page_size, &page_buf));
      if (id >= storage::PageFile::kFirstDataPage) {
        storage::Page view(page_buf.data(), page_size);
        uint32_t attempts = 0;
        while (!view.VerifyChecksum().ok() &&
               !AllZero(page_buf.data(), page_size)) {
          if (++attempts >= 3) {
            return Status::Corruption("backup aborted: page " +
                                      std::to_string(id) +
                                      " fails checksum verification");
          }
          FAME_RETURN_IF_ERROR(
              ReadExact(src.get(), id * page_size, page_size, &page_buf));
        }
      }
      image.append(page_buf);
      ++rep.pages_copied;
    }
    // Trailing partial page (torn final extension): carry it verbatim.
    if (file_bytes > pages * page_size) {
      std::string tail;
      FAME_RETURN_IF_ERROR(ReadExact(src.get(), pages * page_size,
                                     file_bytes - pages * page_size, &tail));
      image.append(tail);
    }
    // The durable log end, captured before applies resume: any effect in
    // the copied pages belongs to a commit at or below this LSN, so a
    // restore replaying through end_lsn can never miss one.
    rep.end_lsn = ctx.txmgr->durable_lsn();
    return Status::OK();
  }));

  FAME_RETURN_IF_ERROR(WriteFileDurable(ctx.env, dest, image));
  rep.bytes_copied += image.size();

  // Copy the segment chain, cutting the tail segment at end_lsn. The cut
  // is frame-aligned by construction: durable ends always land on frame
  // boundaries. Segments cannot disappear meanwhile (recycling is paused);
  // concurrent appends land past end_lsn and are simply not read.
  std::vector<tx::WalSegmentInfo> segments;
  FAME_RETURN_IF_ERROR(ctx.txmgr->ListWalSegments(&segments));
  std::string manifest;
  manifest += kManifestMagic;
  manifest += " " + std::to_string(kManifestVersion) + "\n";
  manifest += "mark " + std::to_string(rep.mark) + "\n";
  manifest += "end_lsn " + std::to_string(rep.end_lsn) + "\n";
  manifest += "page_size " + std::to_string(page_size) + "\n";
  manifest += "pages " + std::to_string(rep.pages_copied) + "\n";
  manifest += "file " + std::to_string(image.size()) + " " +
              std::to_string(Crc32(image.data(), image.size())) + "\n";
  for (const tx::WalSegmentInfo& seg : segments) {
    if (seg.base_lsn > rep.end_lsn) continue;
    uint64_t want = rep.end_lsn - seg.base_lsn;
    if (want > seg.payload_bytes) want = seg.payload_bytes;
    auto file_or = ctx.env->OpenFile(seg.file, /*create=*/false);
    FAME_RETURN_IF_ERROR(file_or.status());
    std::string data;
    FAME_RETURN_IF_ERROR(
        ReadExact(file_or.value().get(), 0, tx::seg::kHeaderSize + want,
                  &data));
    uint64_t base = 0;
    uint32_t seq = 0;
    if (!tx::seg::DecodeSegmentHeader(data.data(), data.size(), &base, &seq) ||
        base != seg.base_lsn || seq != seg.seq) {
      return Status::Corruption("segment header of " + seg.file +
                                " is damaged");
    }
    FAME_RETURN_IF_ERROR(WriteFileDurable(
        ctx.env, dest + ".wal." + tx::seg::SegmentSuffix(seg.seq), data));
    rep.bytes_copied += data.size();
    ++rep.segments_copied;
    manifest += "segment " + std::to_string(seg.seq) + " " +
                std::to_string(seg.base_lsn) + " " +
                std::to_string(data.size()) + " " +
                std::to_string(Crc32(data.data(), data.size())) + "\n";
  }
  manifest +=
      "crc " + std::to_string(Crc32(manifest.data(), manifest.size())) + "\n";
  FAME_RETURN_IF_ERROR(WriteFileDurable(ctx.env, dest + ".manifest", manifest));

  if (report != nullptr) *report = rep;
  return Status::OK();
}

Status RunRestore(osal::Env* env, const std::string& src,
                  const std::string& dest_path, const RestoreOptions& opts,
                  RestoreReport* report) {
  if (env == nullptr) return Status::InvalidArgument("restore needs an env");
  if (dest_path == src) {
    return Status::InvalidArgument("restore destination collides with backup");
  }
  RestoreReport rep;

  // ---- manifest: parse and verify the seal before touching anything.
  std::string manifest;
  FAME_RETURN_IF_ERROR(env->ReadFileToString(src + ".manifest", &manifest));
  size_t crc_line = manifest.rfind("crc ");
  if (crc_line == std::string::npos ||
      (crc_line != 0 && manifest[crc_line - 1] != '\n')) {
    return Status::Corruption("backup manifest has no seal");
  }
  {
    std::istringstream seal(manifest.substr(crc_line + 4));
    uint64_t stored = 0;
    seal >> stored;
    if (stored != Crc32(manifest.data(), crc_line)) {
      return Status::Corruption("backup manifest fails its CRC");
    }
  }
  uint64_t file_bytes = 0, file_crc = 0, page_size = 0, pages = 0;
  bool have_file = false;
  struct ManifestSegment {
    uint32_t seq;
    uint64_t base;
    uint64_t bytes;
    uint64_t crc;
  };
  std::vector<ManifestSegment> msegs;
  {
    std::istringstream lines(manifest.substr(0, crc_line));
    std::string line;
    bool have_magic = false;
    while (std::getline(lines, line)) {
      std::istringstream ls(line);
      std::string key;
      ls >> key;
      if (key == kManifestMagic) {
        uint64_t version = 0;
        ls >> version;
        if (version != kManifestVersion) {
          return Status::NotSupported("unknown backup manifest version");
        }
        have_magic = true;
      } else if (key == "mark") {
        ls >> rep.mark;
      } else if (key == "end_lsn") {
        ls >> rep.end_lsn;
      } else if (key == "page_size") {
        ls >> page_size;
      } else if (key == "pages") {
        ls >> pages;
      } else if (key == "file") {
        ls >> file_bytes >> file_crc;
        have_file = !ls.fail();
      } else if (key == "segment") {
        ManifestSegment m{};
        ls >> m.seq >> m.base >> m.bytes >> m.crc;
        if (ls.fail()) return Status::Corruption("bad manifest segment line");
        msegs.push_back(m);
      }
    }
    if (!have_magic || !have_file || page_size == 0) {
      return Status::Corruption("backup manifest is incomplete");
    }
    // `pages` counts whole pages; `file` may additionally carry a trailing
    // partial page (torn final extension, copied verbatim). A disagreement
    // means the manifest lies about the image it seals.
    if (pages != file_bytes / page_size) {
      return Status::Corruption(
          "backup manifest pages count disagrees with its file size");
    }
  }
  const uint64_t target =
      opts.target_lsn == 0 ? rep.end_lsn : opts.target_lsn;
  if (target < rep.end_lsn) {
    return Status::InvalidArgument(
        "restore target " + std::to_string(target) +
        " precedes the backup end LSN " + std::to_string(rep.end_lsn) +
        "; the page copy may already contain later effects");
  }
  rep.target_lsn = target;

  // ---- page file image.
  std::string image;
  FAME_RETURN_IF_ERROR(env->ReadFileToString(src, &image));
  if (image.size() != file_bytes ||
      Crc32(image.data(), image.size()) != file_crc) {
    return Status::Corruption("backup page file fails its CRC");
  }

  // ---- assemble the segment chain: the backup's own segments, then
  // archived segments spliced on for targets past end_lsn.
  std::vector<SegmentPlan> plan;
  for (const ManifestSegment& m : msegs) {
    SegmentPlan p;
    p.seq = m.seq;
    p.base = m.base;
    FAME_RETURN_IF_ERROR(env->ReadFileToString(
        src + ".wal." + tx::seg::SegmentSuffix(m.seq), &p.data));
    if (p.data.size() != m.bytes ||
        Crc32(p.data.data(), p.data.size()) != m.crc) {
      return Status::Corruption("backup segment " + std::to_string(m.seq) +
                                " fails its CRC");
    }
    plan.push_back(std::move(p));
  }
  if (target > rep.end_lsn) {
    if (opts.archive_prefix.empty()) {
      return Status::InvalidArgument(
          "point-in-time targets past the backup need an archive prefix "
          "(feature Pitr)");
    }
    if (plan.empty()) {
      return Status::Corruption("backup holds no segments to splice onto");
    }
    struct ArchiveInfo {
      std::string file;
      uint64_t base;
      uint64_t payload;
    };
    std::map<uint32_t, ArchiveInfo> archives;
    std::vector<std::string> names;
    FAME_RETURN_IF_ERROR(env->ListFiles(opts.archive_prefix, &names));
    for (const std::string& name : names) {
      uint32_t seq = 0;
      if (!ParseSeqSuffix(name, opts.archive_prefix, &seq)) continue;
      std::string head;
      auto f_or = env->OpenFile(name, /*create=*/false);
      FAME_RETURN_IF_ERROR(f_or.status());
      FAME_ASSIGN_OR_RETURN(uint64_t sz, f_or.value()->Size());
      if (sz < tx::seg::kHeaderSize) continue;
      FAME_RETURN_IF_ERROR(
          ReadExact(f_or.value().get(), 0, tx::seg::kHeaderSize, &head));
      uint64_t base = 0;
      uint32_t hdr_seq = 0;
      if (!tx::seg::DecodeSegmentHeader(head.data(), head.size(), &base,
                                        &hdr_seq) ||
          hdr_seq != seq) {
        continue;  // damaged archive: skip, continuity check reports the gap
      }
      archives[seq] =
          ArchiveInfo{name, base, sz - tx::seg::kHeaderSize};
    }
    uint64_t reach =
        plan.back().base + (plan.back().data.size() - tx::seg::kHeaderSize);
    while (reach < target) {
      SegmentPlan& tail = plan.back();
      uint64_t tail_payload = tail.data.size() - tx::seg::kHeaderSize;
      auto same = archives.find(tail.seq);
      if (same != archives.end() && same->second.payload > tail_payload) {
        if (same->second.base != tail.base) {
          return Status::Corruption("archived segment " +
                                    std::to_string(tail.seq) +
                                    " disagrees with the backup about its "
                                    "base LSN");
        }
        FAME_RETURN_IF_ERROR(
            env->ReadFileToString(same->second.file, &tail.data));
        reach = tail.base + (tail.data.size() - tx::seg::kHeaderSize);
        continue;
      }
      auto next = archives.find(tail.seq + 1);
      if (next == archives.end() || next->second.base != reach) {
        return Status::NotFound(
            "archived segments reach LSN " + std::to_string(reach) +
            ", short of the requested target " + std::to_string(target));
      }
      SegmentPlan p;
      p.seq = tail.seq + 1;
      p.base = next->second.base;
      FAME_RETURN_IF_ERROR(env->ReadFileToString(next->second.file, &p.data));
      plan.push_back(std::move(p));
      reach =
          plan.back().base + (plan.back().data.size() - tx::seg::kHeaderSize);
      ++rep.archived_integrated;
    }
    // Cut the tail at the target. Targets are durable LSNs, hence
    // frame-aligned; an unaligned target leaves a partial frame that
    // recovery triages as a torn tail.
    SegmentPlan& tail = plan.back();
    uint64_t keep = target - tail.base;
    if (tx::seg::kHeaderSize + keep < tail.data.size()) {
      tail.data.resize(tx::seg::kHeaderSize + keep);
    }
  }

  // ---- materialize: page file first, then a clean segment chain.
  FAME_RETURN_IF_ERROR(RetryOnTransient(
      HostIoRetryPolicy(), [&] { return env->WriteStringToFile(dest_path, image); }));
  rep.pages_restored = pages;
  {
    // Drop stale log files at the destination (a legacy single-file log or
    // segments of a previous life) so the restored chain stands alone.
    const std::string wal = dest_path + ".wal";
    if (env->FileExists(wal)) FAME_RETURN_IF_ERROR(env->DeleteFile(wal));
    std::vector<std::string> names;
    Status ls = env->ListFiles(wal + ".", &names);
    if (ls.ok()) {
      for (const std::string& name : names) {
        uint32_t seq = 0;
        if (ParseSeqSuffix(name, wal + ".", &seq)) {
          FAME_RETURN_IF_ERROR(env->DeleteFile(name));
        }
      }
    }
    for (const SegmentPlan& p : plan) {
      FAME_RETURN_IF_ERROR(WriteFileDurable(
          env, wal + "." + tx::seg::SegmentSuffix(p.seq), p.data));
      ++rep.segments_restored;
    }
  }

  if (report != nullptr) *report = rep;
  return Status::OK();
}

}  // namespace fame::core::backup

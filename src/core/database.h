// Database: the runtime facade of the FAME-DBMS product line (the API
// feature). Where the StaticEngine products are composed at compile time
// (FeatureC++-equivalent), Database composes *components at runtime* from a
// validated feature Configuration — the component-based comparator the
// paper discusses in §2.1 (flexible, but paying dispatch overhead; the
// ablation bench measures exactly that gap).
#ifndef FAME_CORE_DATABASE_H_
#define FAME_CORE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/backup.h"
#include "core/datatypes.h"
#include "core/engine_core.h"
#include "featuremodel/fame_model.h"
#include "index/index.h"
#include "obs/metrics.h"
#if FAME_OBS_ENABLED
#include "obs/blackbox.h"
#endif
#include "osal/allocator.h"
#include "osal/env.h"
#include "storage/buffer.h"
#include "storage/integrity.h"
#include "storage/record.h"
#include "tx/txmgr.h"

namespace fame::core {

/// Open options: a feature selection plus tuning knobs. Feature names are
/// those of the Figure 2 model; Open() validates the selection against the
/// model (propagation + completeness) before composing anything.
struct DbOptions {
  /// Feature names to select; everything forced by the model is added by
  /// propagation, everything else is excluded (minimal completion).
  std::vector<std::string> features = {"Linux", "Dynamic", "LRU", "B+-Tree",
                                       "BTree-Search", "Int-Types",
                                       "String-Types", "Get", "Put", "API"};
  std::string path = "fame.db";
  uint32_t page_size = 4096;
  size_t buffer_frames = 64;
  size_t static_pool_bytes = 256 * 1024;  // used with feature Static
  uint64_t nutos_capacity_bytes = 0;      // device budget with feature NutOS
  uint32_t hash_buckets = 64;             // [extension] hash index tuning
  /// [feature Backup] Segment roll threshold of the segmented WAL.
  uint64_t wal_segment_bytes = 64 * 1024;
  /// Env for feature Linux; NutOS products create an owned MemEnv.
  osal::Env* env = nullptr;  // nullptr = GetPosixEnv()
};

class SqlEngine;

/// One-stop observability snapshot (Database::GetStats): buffer pool,
/// scrubbing, fault/degradation, repair, and transaction counters that were
/// previously scattered across component accessors or stderr logs. The
/// legacy named fields are kept for existing callers; `metrics` carries the
/// same values (plus the Observability extensions) and is what ToString
/// renders — there is exactly one serializer (obs::RenderText).
struct DbStats {
  storage::BufferStats buffer;
  storage::ScrubStats scrub;
  /// Process-wide meta writes lost in destructor-time best-effort closes.
  uint64_t lost_meta_writes = 0;
  /// Process-wide dirty-page writebacks lost in destructor-time best-effort
  /// buffer flushes (the FlushAll status the destructor cannot return).
  uint64_t lost_page_writebacks = 0;
  /// WAL counters (fsync count, group-commit batching) — zero-valued
  /// without the Transaction feature.
  tx::WalStats wal;
  uint64_t page_count = 0;
  uint64_t verify_runs = 0;
  uint64_t repair_runs = 0;
  uint64_t pages_quarantined = 0;
  uint64_t records_salvaged = 0;
  uint64_t committed_txns = 0;
  uint64_t aborted_txns = 0;
  bool read_only = false;
  tx::RecoveryReport recovery;
  /// The full Observability view the fields above are derived from.
  obs::MetricsSnapshot metrics;

  std::string ToString() const;
};

/// A composed FAME-DBMS instance.
class Database : private tx::ApplyTarget {
 public:
  /// Validates `options.features` against the FAME-DBMS feature model,
  /// derives the minimal valid variant containing them, and composes the
  /// product. ConfigInvalid when the selection violates the model.
  static StatusOr<std::unique_ptr<Database>> Open(const DbOptions& options);

  ~Database() override;

  // ---- Access features (runtime-gated: NotSupported when unselected) ----
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Remove(const Slice& key);
  Status Update(const Slice& key, const Slice& value);
  Status Scan(const index::ScanVisitor& visit);
  Status RangeScan(const Slice& lo, const Slice& hi, const KvVisitor& fn);
  /// [feature ReverseScan] Descending iteration over [lo, hi) (empty hi =
  /// from the last key). NotSupported unless the ReverseScan feature is
  /// selected (which the model ties to B+-Tree).
  Status ReverseScan(const Slice& lo, const Slice& hi, const KvVisitor& fn);

  /// Pull-based cursor over the engine's records (heap-joined values).
  /// Mutating the database invalidates open cursors; re-Seek after writes.
  /// With the Mvcc feature the joined values are raw version chains —
  /// NewSnapshotCursor is the record-level view.
  StatusOr<EngineCursor> NewCursor() { return engine_.NewCursor(); }

  // ---- Transaction ▸ Mvcc feature (runtime-gated) ----
  bool mvcc() const { return mvcc_ != nullptr; }
  /// [feature Mvcc] Cursor frozen at the current read timestamp: positions
  /// resolve through the version chains, so writers committing after the
  /// open never change what it returns. NotSupported without Mvcc.
  StatusOr<SnapshotCursor> NewSnapshotCursor();
  /// [feature Mvcc] Watermark GC: prunes versions no active snapshot can
  /// see (and keys fully dead under a tombstone), then persists the sweep
  /// watermark in the PageFile meta ("mvcc.mark"). Returns versions pruned.
  StatusOr<uint64_t> MvccGc();
  /// [feature Mvcc] Watermark of the last completed GC sweep (persisted;
  /// reloaded at open). 0 before the first sweep.
  uint64_t mvcc_gc_mark() const { return mvcc_mark_; }
  /// [feature Mvcc] Oracle counters (zero-valued without the feature).
  tx::mvcc::MvccStats mvcc_stats() const {
    return mvcc_ != nullptr ? mvcc_->stats() : tx::mvcc::MvccStats{};
  }

  // ---- Transaction feature ----
  StatusOr<tx::Transaction*> Begin();
  Status Commit(tx::Transaction* txn);
  Status Abort(tx::Transaction* txn);

  // ---- typed record API (Data Types feature) ----
  Status CreateTable(const Schema& schema);
  StatusOr<Schema> GetSchema(const std::string& table);
  Status InsertRow(const std::string& table, const Row& row);
  StatusOr<Row> FindRow(const std::string& table, const Value& pk);
  Status DeleteRow(const std::string& table, const Value& pk);
  Status ScanTable(const std::string& table,
                   const std::function<bool(const Row&)>& fn);

  // ---- SQL Engine feature ----
  /// nullptr when the SQL-Engine feature is not selected.
  SqlEngine* sql() { return sql_.get(); }

  /// The complete derived configuration this instance runs.
  const fm::Configuration& configuration() const { return config_; }
  bool HasFeature(const std::string& name) const;

  Status Checkpoint();
  /// Aggregated snapshot (by value: the pool keeps per-shard counters).
  storage::BufferStats buffer_stats() const { return buffers_->stats(); }
  osal::Env* env() { return env_; }

  // ---- Backup / Pitr features (runtime-gated) ----
  /// [feature Backup] Online hot backup to destination prefix `dest`
  /// (page file at `dest`, segments at `dest.wal.NNNNNN`, CRC-sealed
  /// manifest at `dest.manifest`). Runs concurrently with committers:
  /// only engine applies pause during the page copy. NotSupported unless
  /// the Backup feature is selected.
  Status Backup(const std::string& dest,
                backup::BackupReport* report = nullptr);
  /// [feature Backup] Rebuilds a database at `dest_path` from the backup
  /// at prefix `src`; `opts.target_lsn` past the backup end replays
  /// archived segments (feature Pitr). Open the result normally (with the
  /// Backup feature selected) to complete recovery.
  static Status Restore(osal::Env* env, const std::string& src,
                        const std::string& dest_path,
                        const backup::RestoreOptions& opts = {},
                        backup::RestoreReport* report = nullptr);
  /// [feature Backup] End of the durable log (a valid PITR target); 0
  /// without the Transaction feature.
  uint64_t DurableLsn() const {
    return txmgr_ != nullptr ? txmgr_->durable_lsn() : 0;
  }
  /// [feature Backup] Segment-chain counters (zero-valued on a legacy,
  /// single-file log).
  tx::WalSegmentStats wal_segment_stats() const {
    return txmgr_ != nullptr && txmgr_->wal_segmented()
               ? txmgr_->wal_segment_stats()
               : tx::WalSegmentStats{};
  }

  // ---- Replication / Failover features (runtime-gated) ----
  /// [feature Replication] Takes (or resumes) leadership under fencing
  /// epoch `epoch`: stamps the epoch into the PageFile meta (root
  /// "repl.fence") and into every WAL segment created from here on. The
  /// epoch can only move forward. NotSupported unless the Replication
  /// feature is selected.
  Status StartLeader(uint32_t epoch);
  /// [feature Replication] Marks this instance a follower at fencing epoch
  /// `epoch`: persists the fence and rejects every local mutation
  /// (NotSupported) until Promote. Replay-by-recovery still applies — the
  /// shipped log is the only write path into a follower.
  Status StartFollower(uint32_t epoch);
  /// [feature Failover] Integrity-gated promotion: verifies the store
  /// (DataLoss on any finding — a damaged replica must not take
  /// leadership), then re-fences as leader under `epoch` (> current).
  Status Promote(uint32_t epoch);
  /// [feature Replication] Borrowed live handles for a repl::Leader bound
  /// to this engine (same shape hot backup uses).
  StatusOr<backup::BackupContext> ReplicationSource();
  /// Lag gauges fed by the shipping loop (repl::LeaderOptions::lag_sink).
  void SetReplLag(uint64_t lag_bytes, uint64_t lag_epochs) {
    repl_lag_bytes_.store(lag_bytes, std::memory_order_relaxed);
    repl_lag_epochs_.store(lag_epochs, std::memory_order_relaxed);
  }
  uint32_t repl_epoch() const { return repl_epoch_; }
  bool repl_follower() const { return repl_role_ == kRoleFollower; }

  // ---- integrity features (Scrub / Verify / Repair, runtime-gated) ----
  /// [feature Scrub] Incremental scrubbing: checks up to `max_pages` pages,
  /// resuming across calls; call from idle time. Returns pages checked.
  StatusOr<uint32_t> Scrub(uint32_t max_pages);
  /// [feature Verify] Full integrity pass: page scrub + free-list audit +
  /// index invariants + heap/index cross-check + WAL scan. Fills `report`
  /// either way; returns OK only when the report is clean. Read-only.
  Status VerifyIntegrity(storage::IntegrityReport* report);
  /// [feature Repair] Quarantines corrupt pages (raw images appended to
  /// `<path>.quarantine`), salvages every record still readable, rebuilds
  /// the file and index from the salvage, replays the WAL for anything
  /// newer than the last checkpoint, and lifts the read-only latch.
  /// Committed records on corrupt pages are lost (and say so in `report`);
  /// everything else survives. Fails InvalidArgument with transactions
  /// still active.
  Status Repair(storage::IntegrityReport* report = nullptr);
  /// Unified observability counters (always available).
  DbStats GetStats() const;
  /// [feature Observability] The full metrics snapshot — engine-op
  /// counters/latencies, buffer pool per shard, file IO, WAL batching,
  /// B+-tree structure, cursor pipeline. NotSupported unless the
  /// Observability feature is selected (GetStats stays available either
  /// way; this is the surface `fame stats` and the NFP feedback hook use).
  StatusOr<obs::MetricsSnapshot> GetMetricsSnapshot() const;
  /// [feature FlightRecorder] Persists the flight-recorder black box as
  /// `<path>.blackbox` (trigger, feature set, recent errors, last trace
  /// spans, metrics snapshot) via an atomic tmp+rename install, decodable
  /// by `fame_check --blackbox`. Invoked automatically when the read-only
  /// latch trips and when Repair runs; this is the on-demand entry.
  /// NotSupported unless the FlightRecorder feature is selected.
  Status DumpBlackBox(const std::string& reason);
  /// Accumulated findings of incremental Scrub() calls (VerifyIntegrity
  /// uses its own per-call report instead).
  const storage::IntegrityReport& scrub_findings() const {
    return scrub_findings_;
  }

  // ---- degraded (read-only) mode ----
  /// True after a persistent write failure (IO error or on-disk corruption
  /// on a mutation path) flipped the engine to read-only. Reads keep
  /// serving; every mutation is rejected so a half-applied write cannot be
  /// compounded. Recovery is reopening the database.
  bool read_only() const {
    std::unique_lock<std::mutex> l(latch_mu_, std::defer_lock);
    if (concurrent_) l.lock();
    return !write_error_.ok();
  }
  /// The failure that degraded the engine (OK while healthy).
  const Status& degraded_status() const { return write_error_; }
  /// What crash recovery found in the WAL at open (zero-valued without the
  /// Transaction feature or with a clean log).
  tx::RecoveryReport recovery_report() const {
    return txmgr_ != nullptr ? txmgr_->recovery_report() : tx::RecoveryReport{};
  }

 private:
  friend class SqlEngine;
  Database() = default;

  Status ComposeComponents(const DbOptions& options);
  /// Opens (or re-opens, for Repair) the transaction manager over the
  /// product's log flavor: a segmented log with the Backup feature, the
  /// legacy single file otherwise. Does not run recovery.
  Status OpenTxManager();
  /// Opens the storage stack (page file, buffer pool, heap, index,
  /// scrubber) at options_.path and rebinds engine_; Repair re-runs it
  /// after rebuilding the file. env_ and allocator_ must already be set up.
  Status OpenStorageStack();

  /// Assembles the full metrics view from the registry and the component
  /// groups (internal; GetMetricsSnapshot adds the feature gate, GetStats
  /// derives its legacy fields from it).
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// Rejects mutations once the engine is degraded or fenced as a follower.
  Status GuardWrite() const;
  /// Writes the replication fence (epoch, role) into the PageFile meta.
  Status PersistFenceMeta();
  /// Flips the engine to read-only when `s` is a persistent write failure;
  /// returns `s` unchanged.
  Status NoteWrite(Status s);

  /// Record-path seam: plain bytes without Mvcc, a version-chain append /
  /// visible-version resolve at the current read timestamp with it. Every
  /// KV, typed-record and SQL access funnels through these three.
  Status PutRecord(const Slice& key, const Slice& value);
  Status RemoveRecord(const Slice& key);
  Status GetRecord(const Slice& key, std::string* value);
  /// [feature Mvcc] Persists the timestamp oracle ("mvcc.ts") and the GC
  /// watermark ("mvcc.mark") in the PageFile meta.
  Status PersistMvccMeta();

  // tx::ApplyTarget.
  Status ApplyPut(const std::string& store, const Slice& key,
                  const Slice& value) override;
  Status ApplyDelete(const std::string& store, const Slice& key) override;
  Status ReadCommitted(const std::string& store, const Slice& key,
                       std::string* value) override;
  Status ApplyPutVersioned(const std::string& store, const Slice& key,
                           const Slice& value, uint64_t commit_ts) override;
  Status ApplyDeleteVersioned(const std::string& store, const Slice& key,
                              uint64_t commit_ts) override;
  Status ReadAtSnapshot(const std::string& store, const Slice& key,
                        uint64_t ts, std::string* value) override;
  Status CheckpointEngine() override;
  /// [feature Backup] Watermark persistence in the PageFile meta (root
  /// "wal.mark", aux = LSN). Called by segmented checkpoints only.
  Status PersistWalMark(tx::Lsn mark) override;
  StatusOr<tx::Lsn> LoadWalMark() override;

  static std::string TableKey(const std::string& table, const Value& pk);
  static std::string SchemaKey(const std::string& table);

  std::unique_ptr<fm::FeatureModel> model_;
  fm::Configuration config_;
  DbOptions options_;

  osal::Env* env_ = nullptr;
  std::unique_ptr<osal::Env> owned_env_;         // NutOS / Win32 shims
  std::unique_ptr<osal::Allocator> allocator_;
  std::unique_ptr<storage::PageFile> file_;
  std::unique_ptr<storage::BufferManager> buffers_;
  std::unique_ptr<storage::RecordManager> heap_;
  std::unique_ptr<index::KeyValueIndex> index_;
  index::OrderedIndex* ordered_ = nullptr;       // non-null for B+-Tree
  /// The shared engine-level access path (Get/Put/Remove/cursors) over the
  /// runtime-composed heap + index; StaticEngine instantiates the same
  /// template over its compile-time index type.
  EngineCore<index::KeyValueIndex> engine_;
  std::unique_ptr<tx::TransactionManager> txmgr_;
  /// [feature Mvcc] Timestamp oracle / snapshot registry / conflict table;
  /// null without the feature (which keeps the whole record path on the
  /// plain-bytes codec — the zero-cost claim the nm guard checks on the
  /// static products).
  std::unique_ptr<tx::mvcc::MvccManager> mvcc_;
  /// [feature Mvcc] Watermark of the last completed GC sweep (persisted).
  uint64_t mvcc_mark_ = 0;
  std::unique_ptr<SqlEngine> sql_;
  std::unique_ptr<storage::Scrubber> scrubber_;  // with Scrub/Verify
  storage::IntegrityReport scrub_findings_;      // incremental Scrub() only

  bool has_put_ = false, has_remove_ = false, has_update_ = false;
  /// [feature Backup] Completed hot backups and their output bytes
  /// (atomics: Backup may run from a second thread under Concurrency).
  std::atomic<uint64_t> backup_runs_{0};
  std::atomic<uint64_t> backup_bytes_{0};
  /// [feature Replication] Fencing state, loaded from the PageFile meta at
  /// open and rewritten by StartLeader/StartFollower/Promote. The follower
  /// role is enforced even in products without the Replication feature:
  /// local writes into a replica would silently diverge it.
  static constexpr uint8_t kRoleNone = 0, kRoleLeader = 1, kRoleFollower = 2;
  uint8_t repl_role_ = kRoleNone;
  uint32_t repl_epoch_ = 0;
  std::atomic<uint64_t> repl_lag_bytes_{0};
  std::atomic<uint64_t> repl_lag_epochs_{0};
  /// Concurrency feature selected: transaction surface is thread-safe and
  /// the degradation latch below is mutex-guarded.
  bool concurrent_ = false;
  mutable std::mutex latch_mu_;
  Status write_error_;  // first persistent write failure; OK while healthy
  /// All Database-owned counters (engine ops, integrity runs, cursor
  /// pipeline) live here — SharedCells because the Concurrency feature lets
  /// several threads drive the transaction surface, and torn non-atomic
  /// counter reads in GetStats were exactly the bug this replaces.
  mutable obs::BasicMetricsRegistry<obs::SharedCells> metrics_;
#if FAME_OBS_ENABLED
  /// [feature FlightRecorder] Degradation breadcrumbs + dump machinery;
  /// null without the feature. Dumped when the read-only latch trips,
  /// when Repair runs, and on demand via DumpBlackBox().
  std::unique_ptr<obs::BlackBox> blackbox_;
#endif
};

}  // namespace fame::core

#endif  // FAME_CORE_DATABASE_H_

// Data Types feature (Figure 2): typed values and row encoding for the
// record-oriented API and the SQL-lite engine. The or-group alternatives
// Int-Types / String-Types / Blob-Types gate which Kind a product accepts.
#ifndef FAME_CORE_DATATYPES_H_
#define FAME_CORE_DATATYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace fame::core {

/// A typed value.
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt = 1, kString = 2, kBlob = 3 };

  Value() : kind_(Kind::kNull) {}
  static Value Int(int64_t v);
  static Value String(std::string v);
  static Value Blob(std::string v);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  int64_t AsInt() const { return int_; }
  const std::string& AsString() const { return str_; }
  const std::string& AsBlob() const { return str_; }

  /// Order-preserving key encoding (usable as an index key).
  std::string EncodeKey() const;

  /// Human-readable form ("42", "'abc'", "x'6162'", "NULL").
  std::string ToDisplay() const;

  bool operator==(const Value& o) const;
  /// Total order: NULL < Int < String < Blob; within kind, natural order.
  int Compare(const Value& o) const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  std::string str_;
};

/// A row: a tuple of values. Serialized as
/// [varint32 n] then per value [u8 kind][payload].
using Row = std::vector<Value>;

std::string EncodeRow(const Row& row);
StatusOr<Row> DecodeRow(const Slice& data);

/// Column description for the record API / SQL tables.
struct Column {
  std::string name;
  Value::Kind type = Value::Kind::kInt;
};

/// Table schema: named columns, column 0 is the primary key.
struct Schema {
  std::string table;
  std::vector<Column> columns;

  StatusOr<size_t> ColumnIndex(const std::string& name) const;
  /// Checks a row's arity and value kinds against the schema (NULLs pass).
  Status CheckRow(const Row& row) const;

  std::string Encode() const;
  static StatusOr<Schema> Decode(const Slice& data);
};

}  // namespace fame::core

#endif  // FAME_CORE_DATATYPES_H_

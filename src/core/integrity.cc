// Integrity features of the Database facade: Scrub (incremental page
// scrubbing), Verify (the full structural pass behind VerifyIntegrity),
// Repair (quarantine + salvage + rebuild + WAL replay), and the unified
// GetStats snapshot. Kept out of database.cc so the access-path code stays
// readable; everything here is runtime-gated on the Scrub/Verify/Repair
// features of the extended Figure-2 model.
#include <algorithm>
#include <map>
#include <vector>

#include "core/database.h"
#include "core/sql.h"
#include "index/bplus_tree.h"
#include "index/list_index.h"
#include "obs/obs.h"
#include "obs/serialize.h"
#include "osal/slab_alloc.h"
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::core {

namespace {

constexpr char kStore[] = "core";  // same store name database.cc composes

/// Caps per-category issue lists so a totally shredded file cannot balloon
/// the report; the tail is summarized instead.
constexpr size_t kMaxListedIssues = 64;

void AddIssue(std::vector<std::string>* list, std::string msg) {
  if (list->size() < kMaxListedIssues) {
    list->push_back(std::move(msg));
  } else if (list->size() == kMaxListedIssues) {
    list->push_back("(further issues of this kind suppressed)");
  }
}

/// Splits a core record ("varint32 klen, key, value") into its key; false
/// when the bytes cannot possibly be a record.
bool DecodeRecordKey(const Slice& rec, Slice* key) {
  Slice in = rec;
  uint32_t klen = 0;
  if (!GetVarint32(&in, &klen) || in.size() < klen) return false;
  *key = Slice(in.data(), klen);
  return true;
}

std::string RidStr(const storage::Rid& rid) {
  return std::to_string(rid.page) + ":" + std::to_string(rid.slot);
}

// ------------------------------------------------------------ salvage

struct SalvageResult {
  /// key -> full record bytes, keyed so the rebuild is deduplicated and
  /// (for the B+-tree) fed in ascending key order.
  std::map<std::string, std::string> records;
  std::vector<storage::PageId> quarantined;
  std::string quarantine_blob;  // concatenated quarantine entries
};

/// Quarantine container entry framing: ["FQ01"][u32 page id][u32 page size]
/// [image]. Raw page images only; a post-mortem tool can dig records out.
void AppendQuarantineEntry(std::string* blob, storage::PageId id,
                           const char* image, uint32_t page_size) {
  blob->append("FQ01", 4);
  PutFixed32(blob, id);
  PutFixed32(blob, page_size);
  blob->append(image, page_size);
}

/// Raw scan of every data page: corrupt pages are quarantined, live records
/// on intact heap pages are collected. Never trusts any chain or index —
/// those may be the corrupt part.
Status SalvageScan(storage::PageFile* file, storage::IntegrityReport* report,
                   SalvageResult* out) {
  const uint32_t page_size = file->page_size();
  std::vector<char> buf(page_size);
  for (storage::PageId id = storage::PageFile::kFirstDataPage;
       id < file->page_count(); ++id) {
    Status rs = file->ReadPageRaw(id, buf.data());
    if (!rs.ok()) {
      report->AddCorrupt(id, "unreadable: " + rs.ToString());
      out->quarantined.push_back(id);  // no image to preserve
      continue;
    }
    bool all_zero =
        std::all_of(buf.begin(), buf.end(), [](char c) { return c == 0; });
    if (all_zero) continue;  // allocated, never written
    storage::Page page(buf.data(), page_size);
    uint8_t tag = static_cast<uint8_t>(buf[0]);
    bool bad_tag = tag > static_cast<uint8_t>(storage::PageType::kOverflow) ||
                   page.type() == storage::PageType::kMeta;
    Status cs = bad_tag ? Status::OK() : page.VerifyChecksum();
    if (bad_tag || !cs.ok()) {
      report->AddCorrupt(id, bad_tag ? "bad page type tag" : cs.message());
      out->quarantined.push_back(id);
      AppendQuarantineEntry(&out->quarantine_blob, id, buf.data(), page_size);
      continue;
    }
    if (page.type() != storage::PageType::kHeap) continue;
    for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
      auto rec_or = page.Get(slot);
      if (!rec_or.ok()) continue;  // dead slot
      Slice rec = rec_or.value();
      Slice key;
      if (!DecodeRecordKey(rec, &key)) {
        AddIssue(&report->heap_issues,
                 "dropping undecodable record at " +
                     RidStr(storage::Rid{id, slot}));
        continue;
      }
      auto inserted = out->records.emplace(key.ToString(), rec.ToString());
      if (!inserted.second) {
        AddIssue(&report->heap_issues,
                 "duplicate key on page " + std::to_string(id) +
                     " (keeping the first copy)");
      }
    }
  }
  return Status::OK();
}

/// Appends `blob` to `name` (creating it on first use).
Status AppendToFile(osal::Env* env, const std::string& name,
                    const std::string& blob) {
  auto file_or = env->OpenFile(name, /*create=*/true);
  FAME_RETURN_IF_ERROR(file_or.status());
  auto& f = *file_or.value();
  FAME_ASSIGN_OR_RETURN(uint64_t size, f.Size());
  FAME_RETURN_IF_ERROR(f.Write(size, blob));
  return f.Sync();
}

}  // namespace

// ------------------------------------------------------------ Scrub

StatusOr<uint32_t> Database::Scrub(uint32_t max_pages) {
  if (!HasFeature("Scrub")) {
    return Status::NotSupported("feature Scrub not selected");
  }
  return scrubber_->ScrubStep(max_pages, &scrub_findings_);
}

// ------------------------------------------------------------ Verify

Status Database::VerifyIntegrity(storage::IntegrityReport* report) {
  if (!HasFeature("Verify")) {
    return Status::NotSupported("feature Verify not selected");
  }
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kVerify);)
  *report = storage::IntegrityReport{};

  // Bring the medium up to date so the scrub covers current state. Only a
  // healthy engine flushes — a degraded one verifies what is on disk.
  if (write_error_.ok()) {
    FAME_RETURN_IF_ERROR(buffers_->FlushAll());
    FAME_RETURN_IF_ERROR(file_->Sync());
  }

  // Page-level: checksums, type tags, free-list audit.
  FAME_RETURN_IF_ERROR(scrubber_->ScrubAll(report));

  // Index structure.
  if (ordered_ != nullptr) {
    Status s = static_cast<index::BPlusTree*>(ordered_)->CheckInvariants();
    if (!s.ok()) AddIssue(&report->index_issues, s.ToString());
  }

  // Heap -> index: every live record must be indexed under its own key at
  // its own rid.
  Status hs = heap_->Scan([&](const storage::Rid& rid, const Slice& rec) {
    Slice key;
    if (!DecodeRecordKey(rec, &key)) {
      AddIssue(&report->heap_issues,
               "undecodable record at " + RidStr(rid));
      return true;
    }
    uint64_t packed = 0;
    Status ls = index_->Lookup(key, &packed);
    if (!ls.ok()) {
      AddIssue(&report->heap_issues,
               "record at " + RidStr(rid) + " missing from the index");
    } else if (!(storage::Rid::Unpack(packed) == rid)) {
      AddIssue(&report->heap_issues,
               "index maps the key of record " + RidStr(rid) +
                   " to a different rid " +
                   RidStr(storage::Rid::Unpack(packed)));
    }
    return true;
  });
  if (!hs.ok()) {
    AddIssue(&report->heap_issues, "heap walk stopped: " + hs.ToString());
  }

  // Index -> heap: every entry must point at a live record bearing its key.
  Status is = index_->Scan([&](const Slice& key, uint64_t packed) {
    storage::Rid rid = storage::Rid::Unpack(packed);
    std::string rec;
    Status gs = heap_->Get(rid, &rec);
    Slice stored_key;
    if (!gs.ok()) {
      AddIssue(&report->index_issues,
               "index entry dangles at " + RidStr(rid) + ": " +
                   gs.ToString());
    } else if (!DecodeRecordKey(Slice(rec), &stored_key) ||
               stored_key != key) {
      AddIssue(&report->index_issues,
               "index entry points at a record with a different key (" +
                   RidStr(rid) + ")");
    }
    return true;
  });
  if (!is.ok()) {
    AddIssue(&report->index_issues, "index scan stopped: " + is.ToString());
  }

  // WAL: decode every durable frame. Post-recovery, any torn tail or
  // mid-log damage is new.
  if (txmgr_ != nullptr) {
    tx::RecoveryReport wal;
    Status ws = txmgr_->ScanLog(&wal);
    if (!ws.ok()) {
      AddIssue(&report->wal_issues, "wal scan failed: " + ws.ToString());
    } else if (wal.corruption) {
      AddIssue(&report->wal_issues,
               "mid-log corruption: " + std::to_string(wal.dropped_records) +
                   " record(s) stranded past LSN " +
                   std::to_string(wal.recovered_lsn));
    } else if (wal.torn_tail) {
      AddIssue(&report->wal_issues,
               "torn tail past LSN " + std::to_string(wal.recovered_lsn) +
                   " (" + std::to_string(wal.dropped_bytes) +
                   " byte(s); truncated at next recovery)");
    }
    // [feature Backup] Segment-chain invariants: header CRCs, sequence
    // continuity, base-LSN continuity, stranded orphan files.
    if (txmgr_->wal_segmented()) {
      std::vector<std::string> chain;
      Status cs = txmgr_->VerifyWalChain(&chain);
      if (!cs.ok()) {
        AddIssue(&report->wal_issues,
                 "segment chain verify failed: " + cs.ToString());
      }
      for (const std::string& issue : chain) {
        AddIssue(&report->wal_issues, "wal segment: " + issue);
      }
    }
  }

  metrics_.verify_runs.Add(1);
  if (report->clean()) return Status::OK();
  return Status::Corruption("integrity verification found " +
                            std::to_string(report->corrupt_pages.size()) +
                            " corrupt page(s) and further issues; see report");
}

// ------------------------------------------------------------ Repair

Status Database::Repair(storage::IntegrityReport* report) {
  if (!HasFeature("Repair")) {
    return Status::NotSupported("feature Repair not selected");
  }
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kRepair);)
  storage::IntegrityReport local;
  if (report == nullptr) report = &local;
  *report = storage::IntegrityReport{};
  if (txmgr_ != nullptr && txmgr_->active_transactions() > 0) {
    return Status::InvalidArgument("repair with transactions still active");
  }
  // Flight recorder: repair is a degradation event — snapshot the state
  // (breadcrumbs, spans, metrics) before the rebuild tears it down.
  FAME_OBS(if (blackbox_ != nullptr) {
    (void)DumpBlackBox("repair requested; degraded_status=" +
                       write_error_.ToString());
  })
  report->page_size = file_->page_size();
  report->page_count = file_->page_count();

  // Flush whatever clean state the pool still holds; failures here are
  // usually the reason repair was called, so they are not fatal.
  (void)buffers_->FlushAll();
  (void)file_->Sync();

  // Tear down everything above the page file. The WAL file stays on disk:
  // committed operations newer than the last checkpoint are replayed after
  // the rebuild.
  sql_.reset();
  txmgr_.reset();
  scrubber_.reset();
  index_.reset();
  ordered_ = nullptr;
  heap_.reset();

  SalvageResult salvage;
  FAME_RETURN_IF_ERROR(SalvageScan(file_.get(), report, &salvage));

  buffers_.reset();
  (void)file_->Close();  // the old image is about to be replaced
  file_.reset();

  if (!salvage.quarantine_blob.empty()) {
    FAME_RETURN_IF_ERROR(AppendToFile(env_, options_.path + ".quarantine",
                                      salvage.quarantine_blob));
  }

  // Rebuild a fresh file from the salvage, then install it atomically.
  std::string tmp = options_.path + ".repair";
  if (env_->FileExists(tmp)) FAME_RETURN_IF_ERROR(env_->DeleteFile(tmp));
  Status rebuild = [&]() -> Status {
    storage::PageFileOptions pf_opts;
    pf_opts.page_size = options_.page_size;
    FAME_ASSIGN_OR_RETURN(auto pf, storage::PageFile::Open(env_, tmp, pf_opts));
    {
      FAME_ASSIGN_OR_RETURN(
          auto bm, storage::BufferManager::Create(
                       pf.get(), options_.buffer_frames, allocator_.get(),
                       storage::MakeReplacementPolicy("lru")));
      FAME_ASSIGN_OR_RETURN(auto heap,
                            storage::RecordManager::Open(bm.get(), kStore));
      if (HasFeature("B+-Tree")) {
        FAME_ASSIGN_OR_RETURN(auto tree,
                              index::BPlusTree::Open(bm.get(), kStore));
        std::vector<std::pair<std::string, uint64_t>> entries;
        entries.reserve(salvage.records.size());
        for (const auto& [key, rec] : salvage.records) {
          FAME_ASSIGN_OR_RETURN(storage::Rid rid, heap->Insert(rec));
          entries.emplace_back(key, rid.Pack());
        }
        if (!entries.empty()) FAME_RETURN_IF_ERROR(tree->BulkLoad(entries));
      } else {
        FAME_ASSIGN_OR_RETURN(auto list,
                              index::ListIndex::Open(bm.get(), kStore));
        for (const auto& [key, rec] : salvage.records) {
          FAME_ASSIGN_OR_RETURN(storage::Rid rid, heap->Insert(rec));
          FAME_RETURN_IF_ERROR(list->Insert(key, rid.Pack()));
        }
      }
      FAME_RETURN_IF_ERROR(bm->Checkpoint());
    }
    FAME_RETURN_IF_ERROR(pf->Close());
    return env_->RenameFile(tmp, options_.path);
  }();

  // Recompose on whichever file is now at options_.path — the rebuilt one,
  // or (when the rebuild failed before install) the original.
  Status reopen = OpenStorageStack();
  if (rebuild.ok() && reopen.ok() && HasFeature("Transaction")) {
    // Same log flavor as the original open (segmented for Backup
    // products, the single file otherwise).
    reopen = OpenTxManager();
    if (reopen.ok()) {
      // Replays everything committed after the last checkpoint. Redone
      // puts are idempotent upserts; deletes of already-gone keys are
      // tolerated by recovery.
      reopen = txmgr_->Recover();
    }
  }
  if (!rebuild.ok()) return rebuild;
  FAME_RETURN_IF_ERROR(reopen);
  if (HasFeature("SQL-Engine")) {
    sql_ = std::make_unique<SqlEngine>(this, HasFeature("Optimizer"));
  }

  // The rebuilt file is consistent by construction: lift the latch.
  write_error_ = Status::OK();
  report->repaired = true;
  report->quarantined_pages = salvage.quarantined;
  report->records_salvaged = salvage.records.size();
  metrics_.repair_runs.Add(1);
  metrics_.pages_quarantined.Add(salvage.quarantined.size());
  metrics_.records_salvaged.Add(salvage.records.size());
  return Status::OK();
}

// ------------------------------------------------------------ stats

obs::MetricsSnapshot Database::SnapshotMetrics() const {
  obs::MetricsSnapshot m;
  metrics_.Snapshot(&m);
  if (buffers_ != nullptr) {
    storage::BufferStats b = buffers_->stats();
    m.buffer_hits = b.hits;
    m.buffer_misses = b.misses;
    m.buffer_evictions = b.evictions;
    m.buffer_writebacks = b.dirty_writebacks;
    for (size_t i = 0; i < buffers_->shard_count(); ++i) {
      storage::BufferStats sh = buffers_->shard_stats(i);
      m.buffer_shards.push_back(
          {sh.hits, sh.misses, sh.evictions, sh.dirty_writebacks});
    }
  }
  if (scrubber_ != nullptr) {
    storage::ScrubStats sc = scrubber_->stats();
    m.scrub_pages_checked = sc.pages_checked;
    m.scrub_corrupt_pages = sc.corrupt_pages;
    m.scrub_cycles = sc.cycles_completed;
  }
#if FAME_OBS_ENABLED
  if (file_ != nullptr) {
    const auto& io = file_->io_metrics();
    m.file_reads = io.reads.Load();
    m.file_writes = io.writes.Load();
    m.file_syncs = io.syncs.Load();
    m.file_read_bytes = io.read_bytes.Load();
    m.file_write_bytes = io.write_bytes.Load();
    m.file_read_ns = io.read_ns.Snapshot();
    m.file_write_ns = io.write_ns.Snapshot();
    m.file_sync_ns = io.sync_ns.Snapshot();
  }
  if (ordered_ != nullptr) {
    const auto& bt = static_cast<const index::BPlusTree*>(ordered_)->metrics();
    m.btree_splits = bt.splits.Load();
    m.btree_merges = bt.merges.Load();
    m.btree_descents = bt.descents.Load();
  }
#endif
  if (txmgr_ != nullptr) {
    tx::WalStats w = txmgr_->wal_stats();
    m.wal_appends = w.records_appended;
    m.wal_syncs = w.syncs;
    m.wal_batches = w.group_batches;
    m.wal_batched_bytes = w.group_batched_bytes;
    if (txmgr_->wal_segmented()) {
      tx::WalSegmentStats seg = txmgr_->wal_segment_stats();
      m.wal_segmented = true;
      m.wal_segments = seg.segments;
      m.wal_rotations = seg.rotations;
      m.wal_recycled = seg.recycled;
      m.wal_archived = seg.archived;
      m.wal_archive_lag_bytes = seg.archive_lag_bytes;
      m.wal_archive_stalled = seg.archive_stalled;
      m.wal_retained_lsn = seg.retained_lsn;
      m.backup_runs = backup_runs_.load(std::memory_order_relaxed);
      m.backup_bytes = backup_bytes_.load(std::memory_order_relaxed);
    }
    FAME_OBS(m.wal_batch_records = txmgr_->wal_batch_histogram();)
    m.committed_txns = txmgr_->committed();
    m.aborted_txns = txmgr_->aborted();
    tx::RecoveryReport r = txmgr_->recovery_report();
    m.recovery_applied_records = r.applied_records;
    m.recovery_dropped_bytes = r.dropped_bytes;
  }
  if (mvcc_ != nullptr) {
    tx::mvcc::MvccStats ms = mvcc_->stats();
    m.mvcc = true;
    m.mvcc_active_snapshots = ms.active_snapshots;
    m.mvcc_conflicts = ms.conflicts;
    m.mvcc_gc_runs = ms.gc_runs;
    m.mvcc_gc_pruned = ms.gc_pruned;
    m.mvcc_watermark = ms.watermark;
    m.mvcc_clock = ms.clock;
    m.mvcc_chain_len = mvcc_->chain_len_histogram();
  }
  if (repl_role_ != kRoleNone) {
    m.repl = true;
    m.repl_follower = repl_role_ == kRoleFollower;
    m.repl_epoch = repl_epoch_;
    m.repl_lag_bytes = repl_lag_bytes_.load(std::memory_order_relaxed);
    m.repl_lag_epochs = repl_lag_epochs_.load(std::memory_order_relaxed);
  }
  if (allocator_ != nullptr) {
    osal::AllocStats alloc = allocator_->stats();
    m.alloc_name = allocator_->name();
    m.alloc_live_bytes = alloc.live_bytes;
    m.alloc_peak_bytes = alloc.peak_bytes;
    m.alloc_remote_frees = alloc.remote_frees;
#if FAME_SLAB_ENABLED
    // Pooled per-op objects (cursors, transactions) are thread-local and
    // process-wide, not per-engine; their cross-thread frees fold in here.
    m.alloc_remote_frees += osal::slab::PooledCrossThreadFrees();
#endif
  }
  m.lost_meta_writes = storage::PageFile::lost_meta_writes();
  m.lost_page_writebacks = storage::BufferLostWritebacks();
  if (file_ != nullptr) m.page_count = file_->page_count();
  m.read_only = read_only();
  return m;
}

StatusOr<obs::MetricsSnapshot> Database::GetMetricsSnapshot() const {
  if (!HasFeature("Observability")) {
    return Status::NotSupported("feature Observability not selected");
  }
  return SnapshotMetrics();
}

DbStats Database::GetStats() const {
  DbStats s;
  s.metrics = SnapshotMetrics();
  // Legacy named fields, derived from the one snapshot so there is a
  // single read of every counter (the snapshot reads are atomic; the old
  // implementation re-read multi-word structs non-atomically).
  if (buffers_ != nullptr) s.buffer = buffers_->stats();
  if (scrubber_ != nullptr) s.scrub = scrubber_->stats();
  s.lost_meta_writes = s.metrics.lost_meta_writes;
  s.lost_page_writebacks = s.metrics.lost_page_writebacks;
  s.page_count = s.metrics.page_count;
  s.verify_runs = s.metrics.verify_runs;
  s.repair_runs = s.metrics.repair_runs;
  s.pages_quarantined = s.metrics.pages_quarantined;
  s.records_salvaged = s.metrics.records_salvaged;
  s.committed_txns = s.metrics.committed_txns;
  s.aborted_txns = s.metrics.aborted_txns;
  s.read_only = s.metrics.read_only;
  if (txmgr_ != nullptr) {
    s.recovery = txmgr_->recovery_report();
    s.wal = txmgr_->wal_stats();
  }
  return s;
}

std::string DbStats::ToString() const { return obs::RenderText(metrics); }

Status Database::DumpBlackBox(const std::string& reason) {
#if FAME_OBS_ENABLED
  if (blackbox_ == nullptr) {
    return Status::NotSupported("feature FlightRecorder not selected");
  }
  return blackbox_->Persist(env_, options_.path, reason, config_.Signature(),
                            obs::RenderText(SnapshotMetrics()));
#else
  (void)reason;
  return Status::NotSupported("observability not compiled in");
#endif
}

}  // namespace fame::core

#include "core/datatypes.h"

#include "common/coding.h"
#include "common/stringutil.h"
#include "index/keys.h"

namespace fame::core {

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.str_ = std::move(v);
  return out;
}

Value Value::Blob(std::string v) {
  Value out;
  out.kind_ = Kind::kBlob;
  out.str_ = std::move(v);
  return out;
}

std::string Value::EncodeKey() const {
  switch (kind_) {
    case Kind::kNull:
      return std::string(1, '\0');
    case Kind::kInt:
      return index::EncodeI64Key(int_);
    case Kind::kString:
    case Kind::kBlob:
      return str_;
  }
  return "";
}

std::string Value::ToDisplay() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kString:
      return "'" + str_ + "'";
    case Kind::kBlob: {
      static const char* hex = "0123456789abcdef";
      std::string out = "x'";
      for (unsigned char c : str_) {
        out.push_back(hex[c >> 4]);
        out.push_back(hex[c & 0xf]);
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

bool Value::operator==(const Value& o) const { return Compare(o) == 0; }

int Value::Compare(const Value& o) const {
  if (kind_ != o.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(o.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kInt:
      return int_ < o.int_ ? -1 : (int_ > o.int_ ? 1 : 0);
    case Kind::kString:
    case Kind::kBlob:
      return Slice(str_).compare(Slice(o.str_));
  }
  return 0;
}

std::string EncodeRow(const Row& row) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    out.push_back(static_cast<char>(v.kind()));
    switch (v.kind()) {
      case Value::Kind::kNull:
        break;
      case Value::Kind::kInt:
        PutVarint64(&out, static_cast<uint64_t>(v.AsInt()));
        break;
      case Value::Kind::kString:
      case Value::Kind::kBlob:
        PutLengthPrefixedSlice(&out, v.AsString());
        break;
    }
  }
  return out;
}

StatusOr<Row> DecodeRow(const Slice& data) {
  Slice in = data;
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return Status::Corruption("bad row header");
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (in.empty()) return Status::Corruption("row truncated");
    auto kind = static_cast<Value::Kind>(in[0]);
    in.remove_prefix(1);
    switch (kind) {
      case Value::Kind::kNull:
        row.push_back(Value());
        break;
      case Value::Kind::kInt: {
        uint64_t v = 0;
        if (!GetVarint64(&in, &v)) return Status::Corruption("row truncated");
        row.push_back(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case Value::Kind::kString:
      case Value::Kind::kBlob: {
        Slice s;
        if (!GetLengthPrefixedSlice(&in, &s)) {
          return Status::Corruption("row truncated");
        }
        row.push_back(kind == Value::Kind::kString
                          ? Value::String(s.ToString())
                          : Value::Blob(s.ToString()));
        break;
      }
      default:
        return Status::Corruption("unknown value kind");
    }
  }
  return row;
}

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

Status Schema::CheckRow(const Row& row) const {
  if (row.size() != columns.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table " + table +
        " has " + std::to_string(columns.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].kind() != columns[i].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     columns[i].name);
    }
  }
  if (row.empty() || row[0].is_null()) {
    return Status::InvalidArgument("primary key (first column) must be set");
  }
  return Status::OK();
}

std::string Schema::Encode() const {
  std::string out;
  PutLengthPrefixedSlice(&out, table);
  PutVarint32(&out, static_cast<uint32_t>(columns.size()));
  for (const Column& c : columns) {
    PutLengthPrefixedSlice(&out, c.name);
    out.push_back(static_cast<char>(c.type));
  }
  return out;
}

StatusOr<Schema> Schema::Decode(const Slice& data) {
  Slice in = data;
  Schema schema;
  Slice name;
  if (!GetLengthPrefixedSlice(&in, &name)) {
    return Status::Corruption("bad schema");
  }
  schema.table = name.ToString();
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return Status::Corruption("bad schema");
  for (uint32_t i = 0; i < n; ++i) {
    Slice cname;
    if (!GetLengthPrefixedSlice(&in, &cname) || in.empty()) {
      return Status::Corruption("bad schema column");
    }
    Column col;
    col.name = cname.ToString();
    col.type = static_cast<Value::Kind>(in[0]);
    in.remove_prefix(1);
    schema.columns.push_back(std::move(col));
  }
  return schema;
}

}  // namespace fame::core

#include "core/sql.h"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "common/stringutil.h"
#include "core/database.h"
#include "obs/obs.h"

#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#include "obs/serialize.h"
#endif
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::core {
namespace {

struct SqlToken {
  enum Kind { kWord, kNumber, kString, kBlob, kPunct, kEnd } kind;
  std::string text;  // words upper-cased; literals raw
};

StatusOr<std::vector<SqlToken>> Lex(const std::string& sql) {
  std::vector<SqlToken> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      // x'...' blob literal.
      if ((word == "x" || word == "X") && i < n && sql[i] == '\'') {
        size_t end = sql.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated blob literal");
        }
        std::string hex = sql.substr(i + 1, end - i - 1);
        if (hex.size() % 2 != 0) return Status::ParseError("odd hex length");
        std::string bytes;
        for (size_t h = 0; h < hex.size(); h += 2) {
          auto nib = [](char x) -> int {
            if (x >= '0' && x <= '9') return x - '0';
            if (x >= 'a' && x <= 'f') return x - 'a' + 10;
            if (x >= 'A' && x <= 'F') return x - 'A' + 10;
            return -1;
          };
          int hi = nib(hex[h]), lo = nib(hex[h + 1]);
          if (hi < 0 || lo < 0) return Status::ParseError("bad hex digit");
          bytes.push_back(static_cast<char>((hi << 4) | lo));
        }
        out.push_back({SqlToken::kBlob, bytes});
        i = end + 1;
        continue;
      }
      for (char& ch : word) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      out.push_back({SqlToken::kWord, word});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      out.push_back({SqlToken::kNumber, sql.substr(start, i - start)});
    } else if (c == '\'') {
      std::string lit;
      ++i;
      while (i < n) {
        if (sql[i] == '\'' && i + 1 < n && sql[i + 1] == '\'') {
          lit.push_back('\'');  // escaped quote
          i += 2;
        } else if (sql[i] == '\'') {
          break;
        } else {
          lit.push_back(sql[i]);
          ++i;
        }
      }
      if (i >= n) return Status::ParseError("unterminated string literal");
      ++i;
      out.push_back({SqlToken::kString, lit});
    } else {
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      std::string two = sql.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (two == op) {
          out.push_back({SqlToken::kPunct, two == "<>" ? "!=" : two});
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        out.push_back({SqlToken::kPunct, std::string(1, c)});
        ++i;
      }
    }
  }
  out.push_back({SqlToken::kEnd, ""});
  return out;
}

/// Cursor over a token stream with a tiny expectation API.
class Tokens {
 public:
  explicit Tokens(std::vector<SqlToken> toks) : toks_(std::move(toks)) {}
  const SqlToken& Peek() const { return toks_[pos_]; }
  const SqlToken& Next() { return toks_[pos_ == toks_.size() - 1 ? pos_ : pos_++]; }
  bool AtEnd() const {
    return Peek().kind == SqlToken::kEnd ||
           (Peek().kind == SqlToken::kPunct && Peek().text == ";");
  }
  bool ConsumeWord(const char* w) {
    if (Peek().kind == SqlToken::kWord && Peek().text == w) {
      Next();
      return true;
    }
    return false;
  }
  bool ConsumePunct(const char* p) {
    if (Peek().kind == SqlToken::kPunct && Peek().text == p) {
      Next();
      return true;
    }
    return false;
  }
  StatusOr<std::string> ExpectWord() {
    if (Peek().kind != SqlToken::kWord) {
      return Status::ParseError("expected identifier, got '" + Peek().text +
                                "'");
    }
    return Next().text;
  }
  Status ExpectPunct(const char* p) {
    if (!ConsumePunct(p)) {
      return Status::ParseError(std::string("expected '") + p + "'");
    }
    return Status::OK();
  }
  StatusOr<Value> ExpectLiteral() {
    const SqlToken& t = Peek();
    if (t.kind == SqlToken::kNumber) {
      Value v = Value::Int(std::strtoll(t.text.c_str(), nullptr, 10));
      Next();
      return v;
    }
    if (t.kind == SqlToken::kString) {
      Value v = Value::String(t.text);
      Next();
      return v;
    }
    if (t.kind == SqlToken::kBlob) {
      Value v = Value::Blob(t.text);
      Next();
      return v;
    }
    if (t.kind == SqlToken::kWord && t.text == "NULL") {
      Next();
      return Value();
    }
    return Status::ParseError("expected literal, got '" + t.text + "'");
  }

 private:
  std::vector<SqlToken> toks_;
  size_t pos_ = 0;
};

/// Table names arrive upper-cased from the lexer; schemas are stored with
/// that canonical casing because CREATE also goes through the lexer.
bool IsComparisonOp(const std::string& p) {
  return p == "=" || p == "!=" || p == "<" || p == "<=" || p == ">" ||
         p == ">=";
}

bool CompareWithOp(int cmp, const std::string& op) {
  if (op == "=") return cmp == 0;
  if (op == "!=") return cmp != 0;
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  return cmp >= 0;  // >=
}

}  // namespace

std::string ResultSet::ToTable() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += (i > 0 ? " | " : "") + columns[i];
  }
  if (!columns.empty()) out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += (i > 0 ? " | " : "") + row[i].ToDisplay();
    }
    out += "\n";
  }
  return out;
}

StatusOr<ResultSet> SqlEngine::Execute(const std::string& sql) {
  // Every statement runs under one root span; engine ops, buffer misses,
  // and WAL syncs it triggers nest beneath it in the trace ring.
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kSql);)
  StatusOr<ResultSet> result = ExecuteStatement(sql);
  FAME_OBS_TRACE(span.set_error(!result.ok());)
  return result;
}

StatusOr<ResultSet> SqlEngine::ExecuteStatement(const std::string& sql) {
  std::string trimmed(Trim(sql));
  std::string head = ToLower(trimmed.substr(0, 7));
  if (StartsWith(head, "explain")) return ExecExplain(trimmed.substr(7));
  if (StartsWith(head, "profile")) return ExecProfile(trimmed.substr(7));
  head = head.substr(0, 6);
  if (StartsWith(head, "create")) return ExecCreate(sql);
  if (StartsWith(head, "insert")) return ExecInsert(sql);
  if (StartsWith(head, "select")) return ExecSelect(sql);
  if (StartsWith(head, "update")) return ExecUpdate(sql);
  if (StartsWith(head, "delete")) return ExecDelete(sql);
  return Status::ParseError("unsupported statement: " + sql);
}

StatusOr<ResultSet> SqlEngine::ExecCreate(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("CREATE") || !t.ConsumeWord("TABLE")) {
    return Status::ParseError("expected CREATE TABLE");
  }
  Schema schema;
  FAME_ASSIGN_OR_RETURN(schema.table, t.ExpectWord());
  FAME_RETURN_IF_ERROR(t.ExpectPunct("("));
  while (true) {
    Column col;
    FAME_ASSIGN_OR_RETURN(col.name, t.ExpectWord());
    FAME_ASSIGN_OR_RETURN(std::string type, t.ExpectWord());
    if (type == "INT" || type == "INTEGER") {
      col.type = Value::Kind::kInt;
    } else if (type == "TEXT" || type == "VARCHAR" || type == "STRING") {
      col.type = Value::Kind::kString;
    } else if (type == "BLOB") {
      col.type = Value::Kind::kBlob;
    } else {
      return Status::ParseError("unknown column type " + type);
    }
    schema.columns.push_back(std::move(col));
    if (t.ConsumePunct(")")) break;
    FAME_RETURN_IF_ERROR(t.ExpectPunct(","));
  }
  FAME_RETURN_IF_ERROR(db_->CreateTable(schema));
  ResultSet rs;
  rs.plan = "ddl";
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecInsert(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("INSERT") || !t.ConsumeWord("INTO")) {
    return Status::ParseError("expected INSERT INTO");
  }
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());
  if (!t.ConsumeWord("VALUES")) return Status::ParseError("expected VALUES");
  ResultSet rs;
  rs.plan = "insert";
  while (true) {
    FAME_RETURN_IF_ERROR(t.ExpectPunct("("));
    Row row;
    while (true) {
      FAME_ASSIGN_OR_RETURN(Value v, t.ExpectLiteral());
      row.push_back(std::move(v));
      if (t.ConsumePunct(")")) break;
      FAME_RETURN_IF_ERROR(t.ExpectPunct(","));
    }
    FAME_RETURN_IF_ERROR(db_->InsertRow(table, row));
    ++rs.affected;
    if (!t.ConsumePunct(",")) break;
  }
  return rs;
}

bool SqlEngine::RowMatches(const Schema& schema, const Row& row,
                           const Predicate& pred) {
  auto idx_or = schema.ColumnIndex(pred.column);
  if (!idx_or.ok() || idx_or.value() >= row.size()) return false;
  return CompareWithOp(row[idx_or.value()].Compare(pred.literal), pred.op);
}

const SqlEngine::Predicate* SqlEngine::PickAccess(
    const Schema& schema, const std::vector<Predicate>& preds) {
  const Predicate* access = nullptr;
  for (const Predicate& p : preds) {
    auto idx_or = schema.ColumnIndex(p.column);
    if (!idx_or.ok() || idx_or.value() != 0) continue;
    if (p.op == "=") return &p;
    if (access == nullptr &&
        (p.op == "<" || p.op == "<=" || p.op == ">" || p.op == ">=")) {
      access = &p;
    }
  }
  return access;
}

std::string SqlEngine::PlanName(const Predicate* access) const {
  if (access != nullptr && access->op == "=") return "point-lookup";
  if (access != nullptr && optimizer_ && db_->HasFeature("B+-Tree")) {
    return "index-range";
  }
  return "full-scan";
}

Status SqlEngine::CollectRows(const std::string& table,
                              const std::vector<Predicate>& preds,
                              std::optional<uint64_t> limit,
                              std::vector<Row>* rows, std::string* plan,
                              ScanStats* stats) {
  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(table));
  for (const Predicate& p : preds) {
    FAME_RETURN_IF_ERROR(schema.ColumnIndex(p.column).status());
  }
  *plan = "full-scan";
  auto done = [&] { return limit.has_value() && rows->size() >= *limit; };
  if (done()) return Status::OK();

  // Pick the access-path predicate: an equality on the primary key beats a
  // range on the primary key beats nothing. The remaining predicates
  // filter.
  const Predicate* access = PickAccess(schema, preds);
  *plan = PlanName(access);
  auto matches_all = [&](const Row& row) {
    for (const Predicate& p : preds) {
      if (!RowMatches(schema, row, p)) return false;
    }
    return true;
  };
  auto scanned = [&] {
    if (stats != nullptr) ++stats->rows_scanned;
  };
  auto matched = [&] {
    if (stats != nullptr) ++stats->rows_matched;
  };

  if (*plan == "point-lookup") {
    auto row_or = db_->FindRow(table, access->literal);
    if (row_or.ok()) {
      scanned();
      if (matches_all(row_or.value())) {
        matched();
        rows->push_back(std::move(row_or).value());
      }
    } else if (!row_or.status().IsNotFound()) {
      return row_or.status();
    }
    return Status::OK();
  }
  if (*plan == "index-range") {
    // Rule-based optimizer: range predicate on the key -> index range.
    std::string prefix = "t:" + table + "\x01";
    std::string lo = prefix, hi = prefix;
    hi.back() = '\x02';
    if (access->op == ">" || access->op == ">=") {
      lo = prefix + access->literal.EncodeKey();
    } else {
      hi = prefix + access->literal.EncodeKey();
      if (access->op == "<=") hi.push_back('\0');  // include the bound
    }
    // Consume the engine cursor directly: seek to the range start, pull
    // rows until the bound or the limit, then abandon the cursor — a
    // LIMIT-k query never touches more than k matching leaves.
    if (db_->mvcc()) {
      // [feature Mvcc] Same walk over the snapshot view: each position
      // resolves its version chain at the query's read timestamp.
      auto snap_or = db_->NewSnapshotCursor();
      FAME_RETURN_IF_ERROR(snap_or.status());
      SnapshotCursor snap = std::move(snap_or).value();
      for (snap.Seek(lo); snap.Valid(); snap.Next()) {
        if (snap.key().compare(Slice(hi)) >= 0) break;
        scanned();
        auto row_or = DecodeRow(snap.value());
        if (!row_or.ok()) return row_or.status();
        if (matches_all(row_or.value())) {
          matched();
          rows->push_back(std::move(row_or).value());
          if (done()) break;
        }
      }
      return snap.status();
    }
    auto cur_or = db_->NewCursor();
    FAME_RETURN_IF_ERROR(cur_or.status());
    EngineCursor cur = std::move(cur_or).value();
    for (cur.Seek(lo); cur.Valid(); cur.Next()) {
      if (cur.key().compare(Slice(hi)) >= 0) break;
      scanned();
      Slice value = cur.value();
      if (!cur.Valid()) break;  // heap join failed; status() has the error
      auto row_or = DecodeRow(value);
      if (!row_or.ok()) return row_or.status();
      // The bounds over-approximate; re-check every predicate exactly.
      if (matches_all(row_or.value())) {
        matched();
        rows->push_back(std::move(row_or).value());
        if (done()) break;
      }
    }
    return cur.status();
  }
  // Fallback: scan everything, filter; the limit still stops the
  // underlying cursor early once enough rows matched.
  FAME_RETURN_IF_ERROR(db_->ScanTable(table, [&](const Row& row) {
    scanned();
    if (matches_all(row)) {
      matched();
      rows->push_back(row);
      if (done()) return false;
    }
    return true;
  }));
  return Status::OK();
}

Status SqlEngine::ParseSelect(const std::string& sql, SelectQuery* q) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("SELECT")) return Status::ParseError("expected SELECT");

  // Projection list: '*', plain columns, or aggregates (not mixed).
  q->star = t.ConsumePunct("*");
  if (!q->star) {
    while (true) {
      FAME_ASSIGN_OR_RETURN(std::string word, t.ExpectWord());
      if ((word == "COUNT" || word == "SUM" || word == "AVG" ||
           word == "MIN" || word == "MAX") &&
          t.ConsumePunct("(")) {
        SelectQuery::Aggregate agg;
        agg.fn = word;
        if (t.ConsumePunct("*")) {
          if (word != "COUNT") {
            return Status::ParseError(word + "(*) is not supported");
          }
          agg.column = "*";
        } else {
          FAME_ASSIGN_OR_RETURN(agg.column, t.ExpectWord());
        }
        FAME_RETURN_IF_ERROR(t.ExpectPunct(")"));
        q->aggregates.push_back(std::move(agg));
      } else {
        q->wanted.push_back(word);
      }
      if (!t.ConsumePunct(",")) break;
    }
    if (!q->aggregates.empty() && !q->wanted.empty()) {
      return Status::ParseError(
          "mixing aggregates and plain columns is not supported");
    }
  }
  if (!t.ConsumeWord("FROM")) return Status::ParseError("expected FROM");
  FAME_ASSIGN_OR_RETURN(q->table, t.ExpectWord());

  if (t.ConsumeWord("WHERE")) {
    do {
      Predicate p;
      FAME_ASSIGN_OR_RETURN(p.column, t.ExpectWord());
      if (t.Peek().kind != SqlToken::kPunct ||
          !IsComparisonOp(t.Peek().text)) {
        return Status::ParseError("expected comparison operator");
      }
      p.op = t.Next().text;
      FAME_ASSIGN_OR_RETURN(p.literal, t.ExpectLiteral());
      q->preds.push_back(std::move(p));
    } while (t.ConsumeWord("AND"));
  }
  if (t.ConsumeWord("ORDER")) {
    if (!t.ConsumeWord("BY")) return Status::ParseError("expected BY");
    FAME_ASSIGN_OR_RETURN(std::string col, t.ExpectWord());
    q->order_by = col;
    if (t.ConsumeWord("DESC")) {
      q->order_desc = true;
    } else {
      t.ConsumeWord("ASC");
    }
  }
  if (t.ConsumeWord("LIMIT")) {
    if (t.Peek().kind != SqlToken::kNumber) {
      return Status::ParseError("expected LIMIT count");
    }
    q->limit = std::strtoull(t.Next().text.c_str(), nullptr, 10);
  }
  if (!t.AtEnd()) {
    return Status::ParseError("trailing input after SELECT: '" +
                              t.Peek().text + "'");
  }
  return Status::OK();
}

StatusOr<ResultSet> SqlEngine::ExecSelect(const std::string& sql) {
  SelectQuery q;
  FAME_RETURN_IF_ERROR(ParseSelect(sql, &q));
  return RunSelect(q, nullptr);
}

namespace {
uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}
}  // namespace

StatusOr<ResultSet> SqlEngine::RunSelect(const SelectQuery& q,
                                         SelectProfile* prof) {
  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(q.table));
  ResultSet rs;
  std::vector<Row> rows;
  // LIMIT pushes down into collection (stopping the cursor after k matches)
  // only when collection order is output order; ORDER BY and aggregates
  // need the full row set first.
  std::optional<uint64_t> pushdown;
  if (!q.order_by.has_value() && q.aggregates.empty()) pushdown = q.limit;
  ScanStats scan_stats;
  auto mark = [&](const std::string& name, uint64_t rows_in, uint64_t rows_out,
                  std::chrono::steady_clock::time_point since) {
    if (prof != nullptr) {
      prof->ops.push_back({name, rows_in, rows_out, ElapsedNs(since)});
    }
  };
  auto scan_t0 = std::chrono::steady_clock::now();
  FAME_RETURN_IF_ERROR(CollectRows(q.table, q.preds, pushdown, &rows, &rs.plan,
                                   prof != nullptr ? &scan_stats : nullptr));
  mark("scan:" + rs.plan, scan_stats.rows_scanned, rows.size(), scan_t0);

  if (!q.aggregates.empty()) {
    // Aggregation consumes the row set; ORDER BY / LIMIT are meaningless
    // on the single result row and therefore rejected.
    if (q.order_by.has_value() || q.limit.has_value()) {
      return Status::ParseError("ORDER BY / LIMIT on an aggregate query");
    }
    auto agg_t0 = std::chrono::steady_clock::now();
    const uint64_t agg_in = rows.size();
    Row out_row;
    for (const SelectQuery::Aggregate& agg : q.aggregates) {
      rs.columns.push_back(agg.fn + "(" + agg.column + ")");
      if (agg.fn == "COUNT" && agg.column == "*") {
        out_row.push_back(Value::Int(static_cast<int64_t>(rows.size())));
        continue;
      }
      FAME_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(agg.column));
      int64_t count = 0, sum = 0;
      std::optional<Value> best;
      bool numeric = true;
      for (const Row& row : rows) {
        const Value& v = row[col];
        if (v.is_null()) continue;
        ++count;
        if (v.kind() == Value::Kind::kInt) {
          sum += v.AsInt();
        } else {
          numeric = false;
        }
        if (!best.has_value() ||
            (agg.fn == "MIN" && v.Compare(*best) < 0) ||
            (agg.fn == "MAX" && v.Compare(*best) > 0)) {
          best = v;
        }
      }
      if (agg.fn == "COUNT") {
        out_row.push_back(Value::Int(count));
      } else if (agg.fn == "SUM" || agg.fn == "AVG") {
        if (!numeric) {
          return Status::InvalidArgument(agg.fn + " needs an INT column");
        }
        if (agg.fn == "SUM") {
          out_row.push_back(count == 0 ? Value() : Value::Int(sum));
        } else {
          out_row.push_back(count == 0 ? Value() : Value::Int(sum / count));
        }
      } else {  // MIN / MAX
        out_row.push_back(best.value_or(Value()));
      }
    }
    rs.rows.push_back(std::move(out_row));
    mark("aggregate", agg_in, 1, agg_t0);
    return rs;
  }

  if (q.order_by.has_value()) {
    auto sort_t0 = std::chrono::steady_clock::now();
    FAME_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(*q.order_by));
    const bool order_desc = q.order_desc;
    std::stable_sort(rows.begin(), rows.end(),
                     [col, order_desc](const Row& a, const Row& b) {
                       int cmp = a[col].Compare(b[col]);
                       return order_desc ? cmp > 0 : cmp < 0;
                     });
    mark("sort", rows.size(), rows.size(), sort_t0);
  }
  if (q.limit.has_value()) {
    auto limit_t0 = std::chrono::steady_clock::now();
    const uint64_t limit_in = rows.size();
    if (rows.size() > *q.limit) rows.resize(*q.limit);
    mark("limit", limit_in, rows.size(), limit_t0);
  }

  // Projection.
  auto proj_t0 = std::chrono::steady_clock::now();
  std::vector<size_t> proj;
  if (q.star) {
    for (size_t i = 0; i < schema.columns.size(); ++i) proj.push_back(i);
    for (const Column& c : schema.columns) rs.columns.push_back(c.name);
  } else {
    for (const std::string& name : q.wanted) {
      FAME_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
      proj.push_back(idx);
      rs.columns.push_back(name);
    }
  }
  for (Row& row : rows) {
    Row out;
    out.reserve(proj.size());
    for (size_t idx : proj) out.push_back(row[idx]);
    rs.rows.push_back(std::move(out));
  }
  mark("project", rs.rows.size(), rs.rows.size(), proj_t0);
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecExplain(const std::string& select_sql) {
  SelectQuery q;
  FAME_RETURN_IF_ERROR(ParseSelect(select_sql, &q));
  // Validate every referenced column against the schema so EXPLAIN rejects
  // exactly what execution would — it just never touches the data.
  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(q.table));
  for (const Predicate& p : q.preds) {
    FAME_RETURN_IF_ERROR(schema.ColumnIndex(p.column).status());
  }
  if (q.order_by.has_value()) {
    FAME_RETURN_IF_ERROR(schema.ColumnIndex(*q.order_by).status());
  }
  for (const std::string& name : q.wanted) {
    FAME_RETURN_IF_ERROR(schema.ColumnIndex(name).status());
  }
  for (const SelectQuery::Aggregate& agg : q.aggregates) {
    if (agg.column != "*") {
      FAME_RETURN_IF_ERROR(schema.ColumnIndex(agg.column).status());
    }
  }

  const Predicate* access = PickAccess(schema, q.preds);
  ResultSet rs;
  rs.plan = PlanName(access);
  rs.columns = {"step", "detail"};
  auto step = [&rs](const std::string& name, const std::string& detail) {
    rs.rows.push_back({Value::String(name), Value::String(detail)});
  };
  std::string access_detail = rs.plan + " on " + q.table;
  if (access != nullptr && rs.plan != "full-scan") {
    access_detail +=
        " (" + access->column + " " + access->op + " " +
        access->literal.ToDisplay() + ")";
  }
  step("access", access_detail);
  if (!q.preds.empty()) {
    step("filter", std::to_string(q.preds.size()) +
                       " predicate(s) re-checked on every row");
  }
  if (!q.aggregates.empty()) {
    std::string aggs;
    for (const SelectQuery::Aggregate& agg : q.aggregates) {
      if (!aggs.empty()) aggs += ", ";
      aggs += agg.fn + "(" + agg.column + ")";
    }
    step("aggregate", aggs);
  }
  if (q.order_by.has_value()) {
    step("sort", "ORDER BY " + *q.order_by + (q.order_desc ? " DESC" : " ASC"));
  }
  if (q.limit.has_value()) {
    const bool pushdown = !q.order_by.has_value() && q.aggregates.empty();
    step("limit", std::to_string(*q.limit) +
                      (pushdown ? " (pushed down into the scan)"
                                : " (applied after sort/aggregate)"));
  }
  if (q.star) {
    step("project", "*");
  } else if (!q.wanted.empty()) {
    std::string cols;
    for (const std::string& name : q.wanted) {
      if (!cols.empty()) cols += ", ";
      cols += name;
    }
    step("project", cols);
  }
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecProfile(const std::string& select_sql) {
#if FAME_OBS_ENABLED
  SelectQuery q;
  FAME_RETURN_IF_ERROR(ParseSelect(select_sql, &q));
  // The IO columns are registry deltas around execution: the profile is
  // read from the same counters `fame stats` reports, not a parallel
  // bookkeeping path that could drift.
  auto before_or = db_->GetMetricsSnapshot();
  FAME_RETURN_IF_ERROR(before_or.status());
  const obs::MetricsSnapshot before = std::move(before_or).value();

  SelectProfile prof;
  auto total_t0 = std::chrono::steady_clock::now();
  auto run_or = RunSelect(q, &prof);
  const uint64_t total_ns = ElapsedNs(total_t0);
  FAME_RETURN_IF_ERROR(run_or.status());

  auto after_or = db_->GetMetricsSnapshot();
  FAME_RETURN_IF_ERROR(after_or.status());
  const obs::MetricsSnapshot after = std::move(after_or).value();
  const uint64_t page_reads = after.file_reads - before.file_reads;
  const uint64_t buffer_hits = after.buffer_hits - before.buffer_hits;

  ResultSet rs;
  rs.plan = run_or.value().plan;
  rs.columns = {"operator", "rows_in",    "rows_out",
                "wall_ns",  "page_reads", "buffer_hits"};
  for (const SelectProfile::OpStat& op : prof.ops) {
    // All data access happens in the scan operator; the statement's IO
    // deltas are attributed there, the in-memory operators get nulls.
    const bool is_scan = StartsWith(op.name, "scan:");
    rs.rows.push_back({Value::String(op.name),
                       Value::Int(static_cast<int64_t>(op.rows_in)),
                       Value::Int(static_cast<int64_t>(op.rows_out)),
                       Value::Int(static_cast<int64_t>(op.wall_ns)),
                       is_scan ? Value::Int(static_cast<int64_t>(page_reads))
                               : Value(),
                       is_scan ? Value::Int(static_cast<int64_t>(buffer_hits))
                               : Value()});
  }
  rs.rows.push_back({Value::String("total"), Value(),
                     Value::Int(static_cast<int64_t>(run_or.value().rows.size())),
                     Value::Int(static_cast<int64_t>(total_ns)),
                     Value::Int(static_cast<int64_t>(page_reads)),
                     Value::Int(static_cast<int64_t>(buffer_hits))});

  // Page-read latency percentiles for this statement, interpolated from
  // the delta of the base-4 IO histogram (shared with `fame stats`).
  obs::HistogramSnapshot read_ns;
  for (size_t b = 0; b < obs::HistogramSnapshot::kBuckets; ++b) {
    read_ns.counts[b] = after.file_read_ns.counts[b] - before.file_read_ns.counts[b];
  }
  read_ns.count = after.file_read_ns.count - before.file_read_ns.count;
  read_ns.sum = after.file_read_ns.sum - before.file_read_ns.sum;
  if (read_ns.count > 0) {
    for (double quantile : {0.50, 0.95, 0.99}) {
      const uint64_t ns = obs::HistogramPercentile(read_ns, quantile);
      rs.rows.push_back(
          {Value::String("io.read.p" +
                         std::to_string(static_cast<int>(quantile * 100))),
           Value(), Value(), Value::Int(static_cast<int64_t>(ns)), Value(),
           Value()});
    }
  }
  return rs;
#else
  (void)select_sql;
  return Status::NotSupported("PROFILE requires observability support");
#endif
}

StatusOr<ResultSet> SqlEngine::ExecUpdate(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("UPDATE")) return Status::ParseError("expected UPDATE");
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());
  if (!t.ConsumeWord("SET")) return Status::ParseError("expected SET");

  std::vector<std::pair<std::string, Value>> sets;
  while (true) {
    FAME_ASSIGN_OR_RETURN(std::string col, t.ExpectWord());
    FAME_RETURN_IF_ERROR(t.ExpectPunct("="));
    FAME_ASSIGN_OR_RETURN(Value v, t.ExpectLiteral());
    sets.emplace_back(std::move(col), std::move(v));
    if (!t.ConsumePunct(",")) break;
  }
  std::vector<Predicate> preds;
  if (t.ConsumeWord("WHERE")) {
    do {
      Predicate p;
      FAME_ASSIGN_OR_RETURN(p.column, t.ExpectWord());
      if (t.Peek().kind != SqlToken::kPunct ||
          !IsComparisonOp(t.Peek().text)) {
        return Status::ParseError("expected comparison operator");
      }
      p.op = t.Next().text;
      FAME_ASSIGN_OR_RETURN(p.literal, t.ExpectLiteral());
      preds.push_back(std::move(p));
    } while (t.ConsumeWord("AND"));
  }

  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(table));
  std::vector<std::pair<size_t, Value>> set_idx;
  for (auto& [col, v] : sets) {
    FAME_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
    if (idx == 0) {
      return Status::NotSupported("updating the primary key is not supported");
    }
    set_idx.emplace_back(idx, v);
  }

  ResultSet rs;
  std::vector<Row> rows;
  FAME_RETURN_IF_ERROR(
      CollectRows(table, preds, std::nullopt, &rows, &rs.plan));
  for (Row& row : rows) {
    for (const auto& [idx, v] : set_idx) row[idx] = v;
    FAME_RETURN_IF_ERROR(db_->InsertRow(table, row));  // upsert by key
    ++rs.affected;
  }
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecDelete(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("DELETE") || !t.ConsumeWord("FROM")) {
    return Status::ParseError("expected DELETE FROM");
  }
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());
  std::vector<Predicate> preds;
  if (t.ConsumeWord("WHERE")) {
    do {
      Predicate p;
      FAME_ASSIGN_OR_RETURN(p.column, t.ExpectWord());
      if (t.Peek().kind != SqlToken::kPunct ||
          !IsComparisonOp(t.Peek().text)) {
        return Status::ParseError("expected comparison operator");
      }
      p.op = t.Next().text;
      FAME_ASSIGN_OR_RETURN(p.literal, t.ExpectLiteral());
      preds.push_back(std::move(p));
    } while (t.ConsumeWord("AND"));
  }
  ResultSet rs;
  std::vector<Row> rows;
  FAME_RETURN_IF_ERROR(
      CollectRows(table, preds, std::nullopt, &rows, &rs.plan));
  for (const Row& row : rows) {
    FAME_RETURN_IF_ERROR(db_->DeleteRow(table, row[0]));
    ++rs.affected;
  }
  return rs;
}

}  // namespace fame::core

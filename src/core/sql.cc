#include "core/sql.h"

#include <algorithm>
#include <cctype>

#include "common/stringutil.h"
#include "core/database.h"

namespace fame::core {
namespace {

struct SqlToken {
  enum Kind { kWord, kNumber, kString, kBlob, kPunct, kEnd } kind;
  std::string text;  // words upper-cased; literals raw
};

StatusOr<std::vector<SqlToken>> Lex(const std::string& sql) {
  std::vector<SqlToken> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      // x'...' blob literal.
      if ((word == "x" || word == "X") && i < n && sql[i] == '\'') {
        size_t end = sql.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated blob literal");
        }
        std::string hex = sql.substr(i + 1, end - i - 1);
        if (hex.size() % 2 != 0) return Status::ParseError("odd hex length");
        std::string bytes;
        for (size_t h = 0; h < hex.size(); h += 2) {
          auto nib = [](char x) -> int {
            if (x >= '0' && x <= '9') return x - '0';
            if (x >= 'a' && x <= 'f') return x - 'a' + 10;
            if (x >= 'A' && x <= 'F') return x - 'A' + 10;
            return -1;
          };
          int hi = nib(hex[h]), lo = nib(hex[h + 1]);
          if (hi < 0 || lo < 0) return Status::ParseError("bad hex digit");
          bytes.push_back(static_cast<char>((hi << 4) | lo));
        }
        out.push_back({SqlToken::kBlob, bytes});
        i = end + 1;
        continue;
      }
      for (char& ch : word) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      out.push_back({SqlToken::kWord, word});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      out.push_back({SqlToken::kNumber, sql.substr(start, i - start)});
    } else if (c == '\'') {
      std::string lit;
      ++i;
      while (i < n) {
        if (sql[i] == '\'' && i + 1 < n && sql[i + 1] == '\'') {
          lit.push_back('\'');  // escaped quote
          i += 2;
        } else if (sql[i] == '\'') {
          break;
        } else {
          lit.push_back(sql[i]);
          ++i;
        }
      }
      if (i >= n) return Status::ParseError("unterminated string literal");
      ++i;
      out.push_back({SqlToken::kString, lit});
    } else {
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      std::string two = sql.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (two == op) {
          out.push_back({SqlToken::kPunct, two == "<>" ? "!=" : two});
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        out.push_back({SqlToken::kPunct, std::string(1, c)});
        ++i;
      }
    }
  }
  out.push_back({SqlToken::kEnd, ""});
  return out;
}

/// Cursor over a token stream with a tiny expectation API.
class Tokens {
 public:
  explicit Tokens(std::vector<SqlToken> toks) : toks_(std::move(toks)) {}
  const SqlToken& Peek() const { return toks_[pos_]; }
  const SqlToken& Next() { return toks_[pos_ == toks_.size() - 1 ? pos_ : pos_++]; }
  bool AtEnd() const {
    return Peek().kind == SqlToken::kEnd ||
           (Peek().kind == SqlToken::kPunct && Peek().text == ";");
  }
  bool ConsumeWord(const char* w) {
    if (Peek().kind == SqlToken::kWord && Peek().text == w) {
      Next();
      return true;
    }
    return false;
  }
  bool ConsumePunct(const char* p) {
    if (Peek().kind == SqlToken::kPunct && Peek().text == p) {
      Next();
      return true;
    }
    return false;
  }
  StatusOr<std::string> ExpectWord() {
    if (Peek().kind != SqlToken::kWord) {
      return Status::ParseError("expected identifier, got '" + Peek().text +
                                "'");
    }
    return Next().text;
  }
  Status ExpectPunct(const char* p) {
    if (!ConsumePunct(p)) {
      return Status::ParseError(std::string("expected '") + p + "'");
    }
    return Status::OK();
  }
  StatusOr<Value> ExpectLiteral() {
    const SqlToken& t = Peek();
    if (t.kind == SqlToken::kNumber) {
      Value v = Value::Int(std::strtoll(t.text.c_str(), nullptr, 10));
      Next();
      return v;
    }
    if (t.kind == SqlToken::kString) {
      Value v = Value::String(t.text);
      Next();
      return v;
    }
    if (t.kind == SqlToken::kBlob) {
      Value v = Value::Blob(t.text);
      Next();
      return v;
    }
    if (t.kind == SqlToken::kWord && t.text == "NULL") {
      Next();
      return Value();
    }
    return Status::ParseError("expected literal, got '" + t.text + "'");
  }

 private:
  std::vector<SqlToken> toks_;
  size_t pos_ = 0;
};

/// Table names arrive upper-cased from the lexer; schemas are stored with
/// that canonical casing because CREATE also goes through the lexer.
bool IsComparisonOp(const std::string& p) {
  return p == "=" || p == "!=" || p == "<" || p == "<=" || p == ">" ||
         p == ">=";
}

bool CompareWithOp(int cmp, const std::string& op) {
  if (op == "=") return cmp == 0;
  if (op == "!=") return cmp != 0;
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  return cmp >= 0;  // >=
}

}  // namespace

std::string ResultSet::ToTable() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += (i > 0 ? " | " : "") + columns[i];
  }
  if (!columns.empty()) out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += (i > 0 ? " | " : "") + row[i].ToDisplay();
    }
    out += "\n";
  }
  return out;
}

StatusOr<ResultSet> SqlEngine::Execute(const std::string& sql) {
  std::string head = ToLower(std::string(Trim(sql)).substr(0, 6));
  if (StartsWith(head, "create")) return ExecCreate(sql);
  if (StartsWith(head, "insert")) return ExecInsert(sql);
  if (StartsWith(head, "select")) return ExecSelect(sql);
  if (StartsWith(head, "update")) return ExecUpdate(sql);
  if (StartsWith(head, "delete")) return ExecDelete(sql);
  return Status::ParseError("unsupported statement: " + sql);
}

StatusOr<ResultSet> SqlEngine::ExecCreate(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("CREATE") || !t.ConsumeWord("TABLE")) {
    return Status::ParseError("expected CREATE TABLE");
  }
  Schema schema;
  FAME_ASSIGN_OR_RETURN(schema.table, t.ExpectWord());
  FAME_RETURN_IF_ERROR(t.ExpectPunct("("));
  while (true) {
    Column col;
    FAME_ASSIGN_OR_RETURN(col.name, t.ExpectWord());
    FAME_ASSIGN_OR_RETURN(std::string type, t.ExpectWord());
    if (type == "INT" || type == "INTEGER") {
      col.type = Value::Kind::kInt;
    } else if (type == "TEXT" || type == "VARCHAR" || type == "STRING") {
      col.type = Value::Kind::kString;
    } else if (type == "BLOB") {
      col.type = Value::Kind::kBlob;
    } else {
      return Status::ParseError("unknown column type " + type);
    }
    schema.columns.push_back(std::move(col));
    if (t.ConsumePunct(")")) break;
    FAME_RETURN_IF_ERROR(t.ExpectPunct(","));
  }
  FAME_RETURN_IF_ERROR(db_->CreateTable(schema));
  ResultSet rs;
  rs.plan = "ddl";
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecInsert(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("INSERT") || !t.ConsumeWord("INTO")) {
    return Status::ParseError("expected INSERT INTO");
  }
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());
  if (!t.ConsumeWord("VALUES")) return Status::ParseError("expected VALUES");
  ResultSet rs;
  rs.plan = "insert";
  while (true) {
    FAME_RETURN_IF_ERROR(t.ExpectPunct("("));
    Row row;
    while (true) {
      FAME_ASSIGN_OR_RETURN(Value v, t.ExpectLiteral());
      row.push_back(std::move(v));
      if (t.ConsumePunct(")")) break;
      FAME_RETURN_IF_ERROR(t.ExpectPunct(","));
    }
    FAME_RETURN_IF_ERROR(db_->InsertRow(table, row));
    ++rs.affected;
    if (!t.ConsumePunct(",")) break;
  }
  return rs;
}

bool SqlEngine::RowMatches(const Schema& schema, const Row& row,
                           const Predicate& pred) {
  auto idx_or = schema.ColumnIndex(pred.column);
  if (!idx_or.ok() || idx_or.value() >= row.size()) return false;
  return CompareWithOp(row[idx_or.value()].Compare(pred.literal), pred.op);
}

Status SqlEngine::CollectRows(const std::string& table,
                              const std::vector<Predicate>& preds,
                              std::optional<uint64_t> limit,
                              std::vector<Row>* rows, std::string* plan) {
  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(table));
  for (const Predicate& p : preds) {
    FAME_RETURN_IF_ERROR(schema.ColumnIndex(p.column).status());
  }
  *plan = "full-scan";
  auto done = [&] { return limit.has_value() && rows->size() >= *limit; };
  if (done()) return Status::OK();

  // Pick the access-path predicate: an equality on the primary key beats a
  // range on the primary key beats nothing. The remaining predicates
  // filter.
  const Predicate* access = nullptr;
  for (const Predicate& p : preds) {
    auto idx_or = schema.ColumnIndex(p.column);
    if (!idx_or.ok() || idx_or.value() != 0) continue;
    if (p.op == "=") {
      access = &p;
      break;
    }
    if (access == nullptr &&
        (p.op == "<" || p.op == "<=" || p.op == ">" || p.op == ">=")) {
      access = &p;
    }
  }
  auto matches_all = [&](const Row& row) {
    for (const Predicate& p : preds) {
      if (!RowMatches(schema, row, p)) return false;
    }
    return true;
  };

  if (access != nullptr && access->op == "=") {
    *plan = "point-lookup";
    auto row_or = db_->FindRow(table, access->literal);
    if (row_or.ok()) {
      if (matches_all(row_or.value())) rows->push_back(std::move(row_or).value());
    } else if (!row_or.status().IsNotFound()) {
      return row_or.status();
    }
    return Status::OK();
  }
  if (access != nullptr && optimizer_ && db_->HasFeature("B+-Tree")) {
    // Rule-based optimizer: range predicate on the key -> index range.
    *plan = "index-range";
    std::string prefix = "t:" + table + "\x01";
    std::string lo = prefix, hi = prefix;
    hi.back() = '\x02';
    if (access->op == ">" || access->op == ">=") {
      lo = prefix + access->literal.EncodeKey();
    } else {
      hi = prefix + access->literal.EncodeKey();
      if (access->op == "<=") hi.push_back('\0');  // include the bound
    }
    // Consume the engine cursor directly: seek to the range start, pull
    // rows until the bound or the limit, then abandon the cursor — a
    // LIMIT-k query never touches more than k matching leaves.
    if (db_->mvcc()) {
      // [feature Mvcc] Same walk over the snapshot view: each position
      // resolves its version chain at the query's read timestamp.
      auto snap_or = db_->NewSnapshotCursor();
      FAME_RETURN_IF_ERROR(snap_or.status());
      SnapshotCursor snap = std::move(snap_or).value();
      for (snap.Seek(lo); snap.Valid(); snap.Next()) {
        if (snap.key().compare(Slice(hi)) >= 0) break;
        auto row_or = DecodeRow(snap.value());
        if (!row_or.ok()) return row_or.status();
        if (matches_all(row_or.value())) {
          rows->push_back(std::move(row_or).value());
          if (done()) break;
        }
      }
      return snap.status();
    }
    auto cur_or = db_->NewCursor();
    FAME_RETURN_IF_ERROR(cur_or.status());
    EngineCursor cur = std::move(cur_or).value();
    for (cur.Seek(lo); cur.Valid(); cur.Next()) {
      if (cur.key().compare(Slice(hi)) >= 0) break;
      Slice value = cur.value();
      if (!cur.Valid()) break;  // heap join failed; status() has the error
      auto row_or = DecodeRow(value);
      if (!row_or.ok()) return row_or.status();
      // The bounds over-approximate; re-check every predicate exactly.
      if (matches_all(row_or.value())) {
        rows->push_back(std::move(row_or).value());
        if (done()) break;
      }
    }
    return cur.status();
  }
  // Fallback: scan everything, filter; the limit still stops the
  // underlying cursor early once enough rows matched.
  FAME_RETURN_IF_ERROR(db_->ScanTable(table, [&](const Row& row) {
    if (matches_all(row)) {
      rows->push_back(row);
      if (done()) return false;
    }
    return true;
  }));
  return Status::OK();
}

StatusOr<ResultSet> SqlEngine::ExecSelect(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("SELECT")) return Status::ParseError("expected SELECT");

  // Projection list: '*', plain columns, or aggregates (not mixed).
  struct Aggregate {
    std::string fn;      // COUNT SUM AVG MIN MAX
    std::string column;  // "*" only for COUNT
  };
  std::vector<std::string> wanted;
  std::vector<Aggregate> aggregates;
  bool star = t.ConsumePunct("*");
  if (!star) {
    while (true) {
      FAME_ASSIGN_OR_RETURN(std::string word, t.ExpectWord());
      if ((word == "COUNT" || word == "SUM" || word == "AVG" ||
           word == "MIN" || word == "MAX") &&
          t.ConsumePunct("(")) {
        Aggregate agg;
        agg.fn = word;
        if (t.ConsumePunct("*")) {
          if (word != "COUNT") {
            return Status::ParseError(word + "(*) is not supported");
          }
          agg.column = "*";
        } else {
          FAME_ASSIGN_OR_RETURN(agg.column, t.ExpectWord());
        }
        FAME_RETURN_IF_ERROR(t.ExpectPunct(")"));
        aggregates.push_back(std::move(agg));
      } else {
        wanted.push_back(word);
      }
      if (!t.ConsumePunct(",")) break;
    }
    if (!aggregates.empty() && !wanted.empty()) {
      return Status::ParseError(
          "mixing aggregates and plain columns is not supported");
    }
  }
  if (!t.ConsumeWord("FROM")) return Status::ParseError("expected FROM");
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());

  std::vector<Predicate> preds;
  if (t.ConsumeWord("WHERE")) {
    do {
      Predicate p;
      FAME_ASSIGN_OR_RETURN(p.column, t.ExpectWord());
      if (t.Peek().kind != SqlToken::kPunct ||
          !IsComparisonOp(t.Peek().text)) {
        return Status::ParseError("expected comparison operator");
      }
      p.op = t.Next().text;
      FAME_ASSIGN_OR_RETURN(p.literal, t.ExpectLiteral());
      preds.push_back(std::move(p));
    } while (t.ConsumeWord("AND"));
  }
  std::optional<std::string> order_by;
  bool order_desc = false;
  if (t.ConsumeWord("ORDER")) {
    if (!t.ConsumeWord("BY")) return Status::ParseError("expected BY");
    FAME_ASSIGN_OR_RETURN(std::string col, t.ExpectWord());
    order_by = col;
    if (t.ConsumeWord("DESC")) {
      order_desc = true;
    } else {
      t.ConsumeWord("ASC");
    }
  }
  std::optional<uint64_t> limit;
  if (t.ConsumeWord("LIMIT")) {
    if (t.Peek().kind != SqlToken::kNumber) {
      return Status::ParseError("expected LIMIT count");
    }
    limit = std::strtoull(t.Next().text.c_str(), nullptr, 10);
  }
  if (!t.AtEnd()) {
    return Status::ParseError("trailing input after SELECT: '" +
                              t.Peek().text + "'");
  }

  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(table));
  ResultSet rs;
  std::vector<Row> rows;
  // LIMIT pushes down into collection (stopping the cursor after k matches)
  // only when collection order is output order; ORDER BY and aggregates
  // need the full row set first.
  std::optional<uint64_t> pushdown;
  if (!order_by.has_value() && aggregates.empty()) pushdown = limit;
  FAME_RETURN_IF_ERROR(CollectRows(table, preds, pushdown, &rows, &rs.plan));

  if (!aggregates.empty()) {
    // Aggregation consumes the row set; ORDER BY / LIMIT are meaningless
    // on the single result row and therefore rejected.
    if (order_by.has_value() || limit.has_value()) {
      return Status::ParseError("ORDER BY / LIMIT on an aggregate query");
    }
    Row out_row;
    for (const Aggregate& agg : aggregates) {
      rs.columns.push_back(agg.fn + "(" + agg.column + ")");
      if (agg.fn == "COUNT" && agg.column == "*") {
        out_row.push_back(Value::Int(static_cast<int64_t>(rows.size())));
        continue;
      }
      FAME_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(agg.column));
      int64_t count = 0, sum = 0;
      std::optional<Value> best;
      bool numeric = true;
      for (const Row& row : rows) {
        const Value& v = row[col];
        if (v.is_null()) continue;
        ++count;
        if (v.kind() == Value::Kind::kInt) {
          sum += v.AsInt();
        } else {
          numeric = false;
        }
        if (!best.has_value() ||
            (agg.fn == "MIN" && v.Compare(*best) < 0) ||
            (agg.fn == "MAX" && v.Compare(*best) > 0)) {
          best = v;
        }
      }
      if (agg.fn == "COUNT") {
        out_row.push_back(Value::Int(count));
      } else if (agg.fn == "SUM" || agg.fn == "AVG") {
        if (!numeric) {
          return Status::InvalidArgument(agg.fn + " needs an INT column");
        }
        if (agg.fn == "SUM") {
          out_row.push_back(count == 0 ? Value() : Value::Int(sum));
        } else {
          out_row.push_back(count == 0 ? Value() : Value::Int(sum / count));
        }
      } else {  // MIN / MAX
        out_row.push_back(best.value_or(Value()));
      }
    }
    rs.rows.push_back(std::move(out_row));
    return rs;
  }

  if (order_by.has_value()) {
    FAME_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(*order_by));
    std::stable_sort(rows.begin(), rows.end(),
                     [col, order_desc](const Row& a, const Row& b) {
                       int cmp = a[col].Compare(b[col]);
                       return order_desc ? cmp > 0 : cmp < 0;
                     });
  }
  if (limit.has_value() && rows.size() > *limit) rows.resize(*limit);

  // Projection.
  std::vector<size_t> proj;
  if (star) {
    for (size_t i = 0; i < schema.columns.size(); ++i) proj.push_back(i);
    for (const Column& c : schema.columns) rs.columns.push_back(c.name);
  } else {
    for (const std::string& name : wanted) {
      FAME_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
      proj.push_back(idx);
      rs.columns.push_back(name);
    }
  }
  for (Row& row : rows) {
    Row out;
    out.reserve(proj.size());
    for (size_t idx : proj) out.push_back(row[idx]);
    rs.rows.push_back(std::move(out));
  }
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecUpdate(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("UPDATE")) return Status::ParseError("expected UPDATE");
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());
  if (!t.ConsumeWord("SET")) return Status::ParseError("expected SET");

  std::vector<std::pair<std::string, Value>> sets;
  while (true) {
    FAME_ASSIGN_OR_RETURN(std::string col, t.ExpectWord());
    FAME_RETURN_IF_ERROR(t.ExpectPunct("="));
    FAME_ASSIGN_OR_RETURN(Value v, t.ExpectLiteral());
    sets.emplace_back(std::move(col), std::move(v));
    if (!t.ConsumePunct(",")) break;
  }
  std::vector<Predicate> preds;
  if (t.ConsumeWord("WHERE")) {
    do {
      Predicate p;
      FAME_ASSIGN_OR_RETURN(p.column, t.ExpectWord());
      if (t.Peek().kind != SqlToken::kPunct ||
          !IsComparisonOp(t.Peek().text)) {
        return Status::ParseError("expected comparison operator");
      }
      p.op = t.Next().text;
      FAME_ASSIGN_OR_RETURN(p.literal, t.ExpectLiteral());
      preds.push_back(std::move(p));
    } while (t.ConsumeWord("AND"));
  }

  FAME_ASSIGN_OR_RETURN(Schema schema, db_->GetSchema(table));
  std::vector<std::pair<size_t, Value>> set_idx;
  for (auto& [col, v] : sets) {
    FAME_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
    if (idx == 0) {
      return Status::NotSupported("updating the primary key is not supported");
    }
    set_idx.emplace_back(idx, v);
  }

  ResultSet rs;
  std::vector<Row> rows;
  FAME_RETURN_IF_ERROR(
      CollectRows(table, preds, std::nullopt, &rows, &rs.plan));
  for (Row& row : rows) {
    for (const auto& [idx, v] : set_idx) row[idx] = v;
    FAME_RETURN_IF_ERROR(db_->InsertRow(table, row));  // upsert by key
    ++rs.affected;
  }
  return rs;
}

StatusOr<ResultSet> SqlEngine::ExecDelete(const std::string& sql) {
  auto toks_or = Lex(sql);
  FAME_RETURN_IF_ERROR(toks_or.status());
  Tokens t(std::move(toks_or).value());
  if (!t.ConsumeWord("DELETE") || !t.ConsumeWord("FROM")) {
    return Status::ParseError("expected DELETE FROM");
  }
  FAME_ASSIGN_OR_RETURN(std::string table, t.ExpectWord());
  std::vector<Predicate> preds;
  if (t.ConsumeWord("WHERE")) {
    do {
      Predicate p;
      FAME_ASSIGN_OR_RETURN(p.column, t.ExpectWord());
      if (t.Peek().kind != SqlToken::kPunct ||
          !IsComparisonOp(t.Peek().text)) {
        return Status::ParseError("expected comparison operator");
      }
      p.op = t.Next().text;
      FAME_ASSIGN_OR_RETURN(p.literal, t.ExpectLiteral());
      preds.push_back(std::move(p));
    } while (t.ConsumeWord("AND"));
  }
  ResultSet rs;
  std::vector<Row> rows;
  FAME_RETURN_IF_ERROR(
      CollectRows(table, preds, std::nullopt, &rows, &rs.plan));
  for (const Row& row : rows) {
    FAME_RETURN_IF_ERROR(db_->DeleteRow(table, row[0]));
    ++rs.affected;
  }
  return rs;
}

}  // namespace fame::core

// SQL-lite engine (the SQL Engine + Optimizer features of Figure 2).
// Supported statements:
//
//   CREATE TABLE t (col INT|TEXT|BLOB, ...)      -- first column = key
//   INSERT INTO t VALUES (lit, ...)
//   SELECT * | col[, col] | agg[, agg] FROM t
//       [WHERE col op lit [AND col op lit]...]
//       [ORDER BY col [DESC]] [LIMIT n]
//   UPDATE t SET col = lit [, ...] [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   EXPLAIN SELECT ...                           -- plan only, no execution
//   PROFILE SELECT ...                           -- execute + operator stats
//
// op: = != < <= > >=. Literals: integers, 'strings', x'hex blobs', NULL.
// agg: COUNT(*) | COUNT(col) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
// (aggregates and plain columns cannot be mixed in one SELECT).
//
// EXPLAIN renders the chosen access method and pushdowns as a step/detail
// table without touching any data. PROFILE runs the query and returns a
// per-operator table (rows in/out, wall ns, page reads, buffer hits) whose
// IO columns are metric-registry deltas taken around execution; it needs
// the Observability feature and the result rows are the profile, not the
// query output.
//
// Planning: equality on the primary key becomes a point lookup; with the
// Optimizer feature, range predicates on the primary key become B+-tree
// range scans — the paper's future-work idea of statically choosing the
// optimal index, realized as a rule-based optimizer. Everything else is a
// full scan with a filter. ResultSet::plan records the choice.
#ifndef FAME_CORE_SQL_H_
#define FAME_CORE_SQL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/datatypes.h"

namespace fame::core {

class Database;

/// Rows + metadata a statement produced.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  uint64_t affected = 0;        // rows written/deleted by DML
  std::string plan;             // "point-lookup" | "index-range" | "full-scan"

  std::string ToTable() const;  // ASCII rendering for examples/tools
};

/// One SQL execution engine bound to a Database.
class SqlEngine {
 public:
  SqlEngine(Database* db, bool optimizer_enabled)
      : db_(db), optimizer_(optimizer_enabled) {}

  /// Parses and executes one statement.
  StatusOr<ResultSet> Execute(const std::string& sql);

  bool optimizer_enabled() const { return optimizer_; }

 private:
  struct Predicate {
    std::string column;
    std::string op;  // = != < <= > >=
    Value literal;
  };

  /// A parsed SELECT: everything the planner and executor need, with no
  /// reference to the token stream. EXPLAIN plans one without executing;
  /// PROFILE executes one with per-operator accounting.
  struct SelectQuery {
    struct Aggregate {
      std::string fn;      // COUNT SUM AVG MIN MAX
      std::string column;  // "*" only for COUNT
    };
    std::string table;
    bool star = false;
    std::vector<std::string> wanted;
    std::vector<Aggregate> aggregates;
    std::vector<Predicate> preds;
    std::optional<std::string> order_by;
    bool order_desc = false;
    std::optional<uint64_t> limit;
  };

  /// Rows examined/matched by the access operator (PROFILE accounting).
  struct ScanStats {
    uint64_t rows_scanned = 0;  // rows the access path examined
    uint64_t rows_matched = 0;  // rows surviving the residual filter
  };

  /// Per-operator runtime counters collected by RunSelect for PROFILE.
  struct SelectProfile {
    struct OpStat {
      std::string name;
      uint64_t rows_in = 0;
      uint64_t rows_out = 0;
      uint64_t wall_ns = 0;
    };
    std::vector<OpStat> ops;
  };

  StatusOr<ResultSet> ExecuteStatement(const std::string& sql);
  StatusOr<ResultSet> ExecCreate(const std::string& sql);
  StatusOr<ResultSet> ExecInsert(const std::string& sql);
  StatusOr<ResultSet> ExecSelect(const std::string& sql);
  StatusOr<ResultSet> ExecUpdate(const std::string& sql);
  StatusOr<ResultSet> ExecDelete(const std::string& sql);
  StatusOr<ResultSet> ExecExplain(const std::string& select_sql);
  StatusOr<ResultSet> ExecProfile(const std::string& select_sql);

  /// Parses a full SELECT statement (starting at the SELECT keyword) into
  /// `q`. Pure parse: no schema validation, no data access.
  Status ParseSelect(const std::string& sql, SelectQuery* q);

  /// Executes a parsed SELECT. With `prof`, fills one OpStat per operator
  /// actually run (scan, aggregate, sort, limit, project).
  StatusOr<ResultSet> RunSelect(const SelectQuery& q, SelectProfile* prof);

  /// The access-path chooser shared by execution and EXPLAIN: an equality
  /// on the primary key beats a range on the primary key beats nothing.
  static const Predicate* PickAccess(const Schema& schema,
                                     const std::vector<Predicate>& preds);

  /// Plan name for a chosen access predicate, honouring the optimizer
  /// gate and the selected access-method feature — the exact rule
  /// CollectRows executes, so EXPLAIN can never drift from reality.
  std::string PlanName(const Predicate* access) const;

  /// Collects rows of `table` matching all of `preds`, using the best
  /// access path for the most selective primary-key predicate and
  /// filtering with the rest. With `limit`, collection stops as soon as
  /// that many rows matched — the underlying cursor is abandoned early, so
  /// LIMIT-k queries do O(k) work (callers must only pass a limit when
  /// collection order is output order: no ORDER BY, no aggregates).
  /// `stats` (optional) receives access-operator row counts for PROFILE.
  Status CollectRows(const std::string& table,
                     const std::vector<Predicate>& preds,
                     std::optional<uint64_t> limit, std::vector<Row>* rows,
                     std::string* plan, ScanStats* stats = nullptr);

  static bool RowMatches(const Schema& schema, const Row& row,
                         const Predicate& pred);

  Database* db_;
  bool optimizer_;
};

}  // namespace fame::core

#endif  // FAME_CORE_SQL_H_

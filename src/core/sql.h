// SQL-lite engine (the SQL Engine + Optimizer features of Figure 2).
// Supported statements:
//
//   CREATE TABLE t (col INT|TEXT|BLOB, ...)      -- first column = key
//   INSERT INTO t VALUES (lit, ...)
//   SELECT * | col[, col] | agg[, agg] FROM t
//       [WHERE col op lit [AND col op lit]...]
//       [ORDER BY col [DESC]] [LIMIT n]
//   UPDATE t SET col = lit [, ...] [WHERE ...]
//   DELETE FROM t [WHERE ...]
//
// op: = != < <= > >=. Literals: integers, 'strings', x'hex blobs', NULL.
// agg: COUNT(*) | COUNT(col) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
// (aggregates and plain columns cannot be mixed in one SELECT).
//
// Planning: equality on the primary key becomes a point lookup; with the
// Optimizer feature, range predicates on the primary key become B+-tree
// range scans — the paper's future-work idea of statically choosing the
// optimal index, realized as a rule-based optimizer. Everything else is a
// full scan with a filter. ResultSet::plan records the choice.
#ifndef FAME_CORE_SQL_H_
#define FAME_CORE_SQL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/datatypes.h"

namespace fame::core {

class Database;

/// Rows + metadata a statement produced.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  uint64_t affected = 0;        // rows written/deleted by DML
  std::string plan;             // "point-lookup" | "index-range" | "full-scan"

  std::string ToTable() const;  // ASCII rendering for examples/tools
};

/// One SQL execution engine bound to a Database.
class SqlEngine {
 public:
  SqlEngine(Database* db, bool optimizer_enabled)
      : db_(db), optimizer_(optimizer_enabled) {}

  /// Parses and executes one statement.
  StatusOr<ResultSet> Execute(const std::string& sql);

  bool optimizer_enabled() const { return optimizer_; }

 private:
  struct Predicate {
    std::string column;
    std::string op;  // = != < <= > >=
    Value literal;
  };

  StatusOr<ResultSet> ExecCreate(const std::string& sql);
  StatusOr<ResultSet> ExecInsert(const std::string& sql);
  StatusOr<ResultSet> ExecSelect(const std::string& sql);
  StatusOr<ResultSet> ExecUpdate(const std::string& sql);
  StatusOr<ResultSet> ExecDelete(const std::string& sql);

  /// Collects rows of `table` matching all of `preds`, using the best
  /// access path for the most selective primary-key predicate and
  /// filtering with the rest. With `limit`, collection stops as soon as
  /// that many rows matched — the underlying cursor is abandoned early, so
  /// LIMIT-k queries do O(k) work (callers must only pass a limit when
  /// collection order is output order: no ORDER BY, no aggregates).
  Status CollectRows(const std::string& table,
                     const std::vector<Predicate>& preds,
                     std::optional<uint64_t> limit, std::vector<Row>* rows,
                     std::string* plan);

  static bool RowMatches(const Schema& schema, const Row& row,
                         const Predicate& pred);

  Database* db_;
  bool optimizer_;
};

}  // namespace fame::core

#endif  // FAME_CORE_SQL_H_

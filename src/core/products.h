// Named, statically-composed FAME-DBMS products (the generator output of
// the product line). Each Cfg struct is one valid configuration of the
// Figure 2 feature model; tests assert that correspondence.
#ifndef FAME_CORE_PRODUCTS_H_
#define FAME_CORE_PRODUCTS_H_

#include "core/static_engine.h"

namespace fame::core {

/// Deeply embedded sensor node: NutOS (MemEnv), Static allocation, List
/// index, Get/Put only. Smallest product.
struct EmbeddedMinimalCfg {
  using IndexTag = ListTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = false;
  static constexpr bool kUpdate = false;
  static constexpr bool kTransactions = false;
  static constexpr bool kForceCommit = false;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 512;
  static constexpr size_t kBufferFrames = 4;
  static constexpr size_t kStaticPoolBytes = 16 * 1024;
};
using EmbeddedMinimal = StaticEngine<EmbeddedMinimalCfg>;

/// Data logger: NutOS, Static allocation, B+-tree (range queries over
/// timestamps), Put/Get/Remove, no transactions.
struct SensorLoggerCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = false;
  static constexpr bool kTransactions = false;
  static constexpr bool kForceCommit = false;
  static constexpr const char* kReplacement = "lfu";
  static constexpr uint32_t kPageSize = 1024;
  static constexpr size_t kBufferFrames = 8;
  static constexpr size_t kStaticPoolBytes = 32 * 1024;
};
using SensorLogger = StaticEngine<SensorLoggerCfg>;

/// Workstation product: Linux, Dynamic allocation, B+-tree, full Access
/// set, WAL-redo transactions.
struct WorkstationCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 128;
  static constexpr size_t kStaticPoolBytes = 0;
};
using Workstation = StaticEngine<WorkstationCfg>;

/// Controller: force-at-commit protocol (no recovery replay buffer needed),
/// static allocation — the Transaction alternative aimed at small devices.
struct ControllerCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = true;
  static constexpr const char* kReplacement = "clock";
  static constexpr uint32_t kPageSize = 2048;
  static constexpr size_t kBufferFrames = 16;
  static constexpr size_t kStaticPoolBytes = 64 * 1024;
};
using Controller = StaticEngine<ControllerCfg>;

/// Edge server: Workstation plus the optional Concurrency feature — the
/// multi-core product. Commits from concurrent threads batch through WAL
/// group commit (one fsync per epoch); the storage substrate gains sharded
/// lock striping (storage::ConcurrentBufferManager) for callers composing
/// it directly.
struct EdgeServerCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kConcurrency = true;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 256;
  static constexpr size_t kStaticPoolBytes = 0;
};
using EdgeServer = StaticEngine<EdgeServerCfg>;

/// Analytics node: Workstation plus the optional ReverseScan feature —
/// descending cursor iteration for latest-first queries over ordered keys.
struct AnalyticsCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kReverseScan = true;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 128;
  static constexpr size_t kStaticPoolBytes = 0;
};
using Analytics = StaticEngine<AnalyticsCfg>;

/// Telemetry node: Workstation plus the optional Observability feature —
/// the metrics registry is compiled into the engine's hot paths (plain
/// integer cells: no Concurrency, so no atomics) and GetMetricsSnapshot()
/// exists. Products without kObservability carry zero bytes of it.
struct TelemetryNodeCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kObservability = true;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 128;
  static constexpr size_t kStaticPoolBytes = 0;
};
using TelemetryNode = StaticEngine<TelemetryNodeCfg>;

/// Archive node: Workstation plus the optional Backup feature (segmented
/// WAL with retention watermarks, online hot backup) and its Pitr
/// sub-feature (recycled segments archived for point-in-time recovery).
/// Products without kBackup keep the legacy single-file log — and link
/// zero bytes of the segment or backup machinery.
struct ArchiveNodeCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kBackup = true;
  static constexpr bool kPitr = true;
  static constexpr uint64_t kWalSegmentBytes = 64 * 1024;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 128;
  static constexpr size_t kStaticPoolBytes = 0;
};
using ArchiveNode = StaticEngine<ArchiveNodeCfg>;

/// Replica-set node: ArchiveNode plus the optional Replication feature
/// (epoch-fenced WAL shipping: fence persistence, epoch-stamped segments,
/// follower read-only enforcement) and its Failover sub-feature (the
/// promotion ceremony). Verify rides along — a replica that cannot scrub
/// itself cannot detect divergence. Products without kReplication carry
/// zero bytes of the fencing state or the fame::repl shipping loop.
struct ReplicaSetCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kBackup = true;
  static constexpr bool kReplication = true;
  static constexpr bool kFailover = true;
  static constexpr uint64_t kWalSegmentBytes = 64 * 1024;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 128;
  static constexpr size_t kStaticPoolBytes = 0;
};
using ReplicaSet = StaticEngine<ReplicaSetCfg>;

/// Versioned store: Workstation plus the optional Mvcc sub-feature of
/// Transaction — snapshot-isolation reads over version-chained records,
/// first-committer-wins commits (disjoint-key writers skip 2PL entirely)
/// and watermark-driven version GC. Products without kMvcc keep the
/// plain-bytes record codec and link zero fame::tx::mvcc symbols.
struct VersionedStoreCfg {
  using IndexTag = BtreeTag;
  static constexpr bool kPut = true;
  static constexpr bool kRemove = true;
  static constexpr bool kUpdate = true;
  static constexpr bool kTransactions = true;
  static constexpr bool kForceCommit = false;
  static constexpr bool kMvcc = true;
  static constexpr const char* kReplacement = "lru";
  static constexpr uint32_t kPageSize = 4096;
  static constexpr size_t kBufferFrames = 128;
  static constexpr size_t kStaticPoolBytes = 0;
};
using VersionedStore = StaticEngine<VersionedStoreCfg>;

/// Feature selections (names from the Figure 2 model) corresponding to the
/// products above, used by tests and the derivation tooling to check that
/// every named product is a valid variant.
const char* const kEmbeddedMinimalFeatures[] = {
    "NutOS", "Static", "LRU", "List", "Int-Types", "Get", "Put"};
const char* const kSensorLoggerFeatures[] = {
    "NutOS", "Static", "LFU", "B+-Tree", "BTree-Search", "BTree-Remove",
    "Int-Types", "Get", "Put", "Remove"};
const char* const kWorkstationFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "Transaction", "WAL-Redo", "Locking", "API"};
const char* const kControllerFeatures[] = {
    "Linux", "Static", "Clock", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "Get", "Put", "Remove", "Update",
    "Transaction", "Force-Commit"};
const char* const kEdgeServerFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "Transaction", "WAL-Redo", "Locking", "API",
    "Concurrency"};
const char* const kAnalyticsFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "ReverseScan", "Transaction", "WAL-Redo", "Locking",
    "API"};
const char* const kTelemetryNodeFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "Transaction", "WAL-Redo", "Locking", "API",
    "Observability"};
const char* const kArchiveNodeFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "Transaction", "WAL-Redo", "Locking", "API",
    "Backup", "Pitr"};
const char* const kReplicaSetFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "Transaction", "WAL-Redo", "Locking", "API",
    "Backup", "Verify", "Replication", "Failover"};
const char* const kVersionedStoreFeatures[] = {
    "Linux", "Dynamic", "LRU", "B+-Tree", "BTree-Search", "BTree-Update",
    "BTree-Remove", "Int-Types", "String-Types", "Blob-Types", "Get", "Put",
    "Remove", "Update", "Transaction", "WAL-Redo", "Mvcc", "API"};

}  // namespace fame::core

#endif  // FAME_CORE_PRODUCTS_H_

// StaticEngine: the FeatureC++-equivalent composition of the FAME-DBMS
// prototype (paper §2.3). A product is described by a compile-time Cfg
// traits struct; unselected features either do not instantiate (method
// templates are instantiated on use only) or fail the build via
// static_assert — "the application contains only and exactly the
// functionality required".
//
// Cfg requirements:
//   using IndexTag            — core::BtreeTag or core::ListTag
//   static constexpr bool kPut, kRemove, kUpdate;   // Access features
//   static constexpr bool kTransactions;            // Transaction feature
//   static constexpr bool kForceCommit;             // commit protocol alt
//   static constexpr const char* kReplacement;      // "lru"|"lfu"|"clock"
//   static constexpr uint32_t kPageSize;
//   static constexpr size_t kBufferFrames;
//   static constexpr size_t kStaticPoolBytes;       // 0 => Dynamic alloc
//   static constexpr bool kConcurrency;             // optional Concurrency
//                                                   // feature; absent => off
//   static constexpr bool kReverseScan;             // optional ReverseScan
//                                                   // feature; absent => off
//
// With Concurrency selected, the transaction surface (Begin/Commit/Abort,
// one transaction per thread) becomes thread-safe and commits batch through
// WAL group commit; the read-only degradation latch turns mutex-guarded.
// Deselected products compile to the historical lock-free engine.
#ifndef FAME_CORE_STATIC_ENGINE_H_
#define FAME_CORE_STATIC_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <type_traits>

#include "core/engine_core.h"
#include "index/bplus_tree.h"
#include "index/list_index.h"
#include "obs/obs.h"
#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#endif
#include "osal/allocator.h"
#include "osal/env.h"
#include "storage/buffer.h"
#include "storage/record.h"
#include "tx/txmgr.h"

namespace fame::core {

/// Index alternatives for the core product line.
struct BtreeTag {
  using Type = index::BPlusTree;
  static constexpr bool kOrdered = true;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* b) {
    return Type::Open(b, "core");
  }
};
struct ListTag {
  using Type = index::ListIndex;
  static constexpr bool kOrdered = false;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* b) {
    return Type::Open(b, "core");
  }
};

namespace detail {

/// Memory Alloc alternative, selected at compile time.
template <size_t kPoolBytes>
struct AllocState {  // Static
  osal::StaticPoolAllocator alloc{kPoolBytes};
  osal::Allocator* get() { return &alloc; }
};
template <>
struct AllocState<0> {  // Dynamic
  osal::DynamicAllocator alloc;
  osal::Allocator* get() { return &alloc; }
};

/// Detects the optional Concurrency feature: Cfg structs written before the
/// feature existed (no kConcurrency member) keep compiling and mean "off".
template <typename Cfg, typename = void>
struct ConcurrencySelected : std::false_type {};
template <typename Cfg>
struct ConcurrencySelected<Cfg, std::void_t<decltype(Cfg::kConcurrency)>>
    : std::bool_constant<Cfg::kConcurrency> {};

/// Detects the optional ReverseScan sub-feature of Access; Cfg structs
/// without a kReverseScan member mean "off".
template <typename Cfg, typename = void>
struct ReverseScanSelected : std::false_type {};
template <typename Cfg>
struct ReverseScanSelected<Cfg, std::void_t<decltype(Cfg::kReverseScan)>>
    : std::bool_constant<Cfg::kReverseScan> {};

/// Detects the optional Observability sub-feature of Storage; Cfg structs
/// without a kObservability member mean "off".
template <typename Cfg, typename = void>
struct ObservabilitySelected : std::false_type {};
template <typename Cfg>
struct ObservabilitySelected<Cfg, std::void_t<decltype(Cfg::kObservability)>>
    : std::bool_constant<Cfg::kObservability> {};

/// Empty stand-in for the metrics registry in products that deselect
/// Observability (the member collapses via [[no_unique_address]]).
struct NoMetrics {};

}  // namespace detail

template <typename Cfg>
class StaticEngine : private tx::ApplyTarget {
 public:
  using Index = typename Cfg::IndexTag::Type;
  static constexpr bool kOrdered = Cfg::IndexTag::kOrdered;
  /// Optional Concurrency feature (off for Cfgs that predate it).
  static constexpr bool kConcurrent = detail::ConcurrencySelected<Cfg>::value;
  /// Optional ReverseScan feature (off for Cfgs that predate it).
  static constexpr bool kReverse = detail::ReverseScanSelected<Cfg>::value;
#if FAME_OBS_ENABLED
  /// Optional Observability feature (off for Cfgs that predate it). In a
  /// build with FAME_OBS_DISABLE the trait is pinned off and the metrics
  /// surface does not exist at all.
  static constexpr bool kObservability =
      detail::ObservabilitySelected<Cfg>::value;
  /// Plain integers in single-threaded products, relaxed atomics when the
  /// Concurrency feature is selected — the same policy split as the
  /// buffer pool (storage/concurrency.h).
  using ObsCells =
      std::conditional_t<kConcurrent, obs::SharedCells,
                         storage::SingleThreaded>;
#else
  static constexpr bool kObservability = false;
#endif

  StaticEngine() = default;
  ~StaticEngine() override = default;

  /// Opens the engine at `path` in `env`. With the Transaction feature the
  /// WAL is recovered before the call returns.
  Status Open(osal::Env* env, const std::string& path) {
    env_ = env;
    storage::PageFileOptions opts;
    opts.page_size = Cfg::kPageSize;
    auto file_or = storage::PageFile::Open(env, path, opts);
    FAME_RETURN_IF_ERROR(file_or.status());
    file_ = std::move(file_or).value();
    auto bm_or = storage::BufferManager::Create(
        file_.get(), Cfg::kBufferFrames, alloc_.get(),
        storage::MakeReplacementPolicy(Cfg::kReplacement));
    FAME_RETURN_IF_ERROR(bm_or.status());
    buffers_ = std::move(bm_or).value();
    auto heap_or = storage::RecordManager::Open(buffers_.get(), "core");
    FAME_RETURN_IF_ERROR(heap_or.status());
    heap_ = std::move(heap_or).value();
    auto idx_or = Cfg::IndexTag::Open(buffers_.get());
    FAME_RETURN_IF_ERROR(idx_or.status());
    index_ = std::move(idx_or).value();
    core_.Bind(heap_.get(), index_.get());
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      core_.SetCursorSink(metrics_.cursors.sink());
    }
#endif
    if constexpr (Cfg::kTransactions) {
      auto mgr_or = tx::TransactionManager::Open(
          env, path + ".wal", this,
          Cfg::kForceCommit ? tx::CommitProtocol::kForceAtCommit
                            : tx::CommitProtocol::kWalRedo,
          /*group_commit=*/kConcurrent);
      FAME_RETURN_IF_ERROR(mgr_or.status());
      txmgr_ = std::move(mgr_or).value();
      FAME_RETURN_IF_ERROR(txmgr_->Recover());
    }
    return Status::OK();
  }

  // The access-path bodies live in EngineCore<Index> — the same template
  // Database instantiates over the virtual index interface; here it is
  // instantiated over the concrete index type, so calls devirtualize.
  // StaticEngine adds only compile-time gating and the degradation latch.

  /// Access:get — present in every product.
  Status Get(const Slice& key, std::string* value) {
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.get_ns);
      metrics_.gets.Add(1);
      return core_.Get(key, value);
    }
#endif
    return core_.Get(key, value);
  }

  /// Access:put.
  Status Put(const Slice& key, const Slice& value) {
    static_assert(Cfg::kPut, "feature Access:Put is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.put_ns);
      metrics_.puts.Add(1);
      return NoteWrite(core_.Put(key, value));
    }
#endif
    return NoteWrite(core_.Put(key, value));
  }

  /// Access:remove.
  Status Remove(const Slice& key) {
    static_assert(Cfg::kRemove, "feature Access:Remove is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.remove_ns);
      metrics_.removes.Add(1);
      return NoteWrite(core_.Remove(key));
    }
#endif
    return NoteWrite(core_.Remove(key));
  }

  /// Access:update — put that requires the key to exist.
  Status Update(const Slice& key, const Slice& value) {
    static_assert(Cfg::kUpdate, "feature Access:Update is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.put_ns);
      metrics_.puts.Add(1);
      return NoteWrite(core_.Put(key, value));
    }
#endif
    return NoteWrite(core_.Put(key, value));
  }

  /// Pull-based cursor over the engine's records (heap-joined values).
  /// Mutation invalidates open cursors; re-Seek after writes.
  StatusOr<EngineCursor> NewCursor() { return core_.NewCursor(); }

  /// Full scan (index order) — visitor adapter over the cursor.
  Status Scan(const KvVisitor& fn) {
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.scan_ns);
      metrics_.scans.Add(1);
      return core_.Scan(fn);
    }
#endif
    return core_.Scan(fn);
  }

  /// Ordered range scan — compile-time gated on the B+-tree alternative.
  Status RangeScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    static_assert(kOrdered, "RangeScan requires the B+-Tree alternative");
    return core_.RangeScan(lo, hi, /*ordered=*/true, fn);
  }

  /// Descending scan over [lo, hi) — the ReverseScan feature, gated at
  /// compile time (and model-constrained to the B+-Tree alternative).
  Status ReverseScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    static_assert(kReverse, "feature Access:ReverseScan is not selected");
    static_assert(kOrdered, "ReverseScan requires the B+-Tree alternative");
    return core_.ReverseScan(lo, hi, fn);
  }

  // ---- Transaction feature surface (instantiated on use only) ----
  StatusOr<tx::Transaction*> Begin() {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    return txmgr_->Begin();
  }
  Status Commit(tx::Transaction* txn) {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    Status guard = GuardWrite();
    if (!guard.ok()) {
      txmgr_->Abort(txn);  // finish the handle; refuse the mutation
      return guard;
    }
    return NoteWrite(txmgr_->Commit(txn));
  }
  Status Abort(tx::Transaction* txn) {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    return txmgr_->Abort(txn);
  }

  Status Checkpoint() {
    FAME_RETURN_IF_ERROR(GuardWrite());
    return NoteWrite(buffers_->Checkpoint());
  }

  // ---- degraded (read-only) mode, mirroring core::Database ----
  /// True after a persistent write failure flipped the engine read-only;
  /// Get/Scan keep serving, mutations are rejected until reopen.
  bool read_only() const {
    storage::LockGuard<LatchMutex> l(latch_mu_);
    return !write_error_.ok();
  }
  const Status& degraded_status() const { return write_error_; }
  /// What WAL recovery found at Open (transactional products).
  tx::RecoveryReport recovery_report() const {
    return txmgr_ != nullptr ? txmgr_->recovery_report() : tx::RecoveryReport{};
  }
  storage::BufferManager* buffers() { return buffers_.get(); }
  osal::Allocator* allocator() { return alloc_.get(); }
  Index* index() { return index_.get(); }

#if FAME_OBS_ENABLED
  /// [feature Observability] Snapshot of every metric this product
  /// collects. Compile-time gated like ReverseScan: products that
  /// deselect the feature fail the static_assert (and carry none of the
  /// collection code).
  obs::MetricsSnapshot GetMetricsSnapshot() const {
    static_assert(kObservability,
                  "feature Storage:Observability is not selected");
    obs::MetricsSnapshot m;
    metrics_.Snapshot(&m);
    storage::BufferStats b = buffers_->stats();
    m.buffer_hits = b.hits;
    m.buffer_misses = b.misses;
    m.buffer_evictions = b.evictions;
    m.buffer_writebacks = b.dirty_writebacks;
    for (size_t i = 0; i < buffers_->shard_count(); ++i) {
      storage::BufferStats s = buffers_->shard_stats(i);
      m.buffer_shards.push_back(
          {s.hits, s.misses, s.evictions, s.dirty_writebacks});
    }
    const auto& io = file_->io_metrics();
    m.file_reads = io.reads.Load();
    m.file_writes = io.writes.Load();
    m.file_syncs = io.syncs.Load();
    m.file_read_bytes = io.read_bytes.Load();
    m.file_write_bytes = io.write_bytes.Load();
    m.file_read_ns = io.read_ns.Snapshot();
    m.file_write_ns = io.write_ns.Snapshot();
    m.file_sync_ns = io.sync_ns.Snapshot();
    if constexpr (std::is_same_v<Index, index::BPlusTree>) {
      const auto& bt = index_->metrics();
      m.btree_splits = bt.splits.Load();
      m.btree_merges = bt.merges.Load();
      m.btree_descents = bt.descents.Load();
    }
    if constexpr (Cfg::kTransactions) {
      tx::WalStats w = txmgr_->wal_stats();
      m.wal_appends = w.records_appended;
      m.wal_syncs = w.syncs;
      m.wal_batches = w.group_batches;
      m.wal_batched_bytes = w.group_batched_bytes;
      m.wal_batch_records = txmgr_->wal_batch_histogram();
      m.committed_txns = txmgr_->committed();
      m.aborted_txns = txmgr_->aborted();
      tx::RecoveryReport r = txmgr_->recovery_report();
      m.recovery_applied_records = r.applied_records;
      m.recovery_dropped_bytes = r.dropped_bytes;
    }
    m.lost_meta_writes = storage::PageFile::lost_meta_writes();
    m.lost_page_writebacks = storage::BufferLostWritebacks();
    m.page_count = file_->page_count();
    m.read_only = read_only();
    return m;
  }
#endif

 private:
  /// The degradation latch is touched from every committer in a concurrent
  /// product; a no-op lock (compiled away) in single-threaded ones.
  using LatchMutex =
      std::conditional_t<kConcurrent, std::mutex,
                         storage::SingleThreaded::Mutex>;

  Status GuardWrite() const {
    storage::LockGuard<LatchMutex> l(latch_mu_);
    if (write_error_.ok()) return Status::OK();
    return Status::IOError("engine is read-only after write failure: " +
                           write_error_.ToString());
  }

  Status NoteWrite(Status s) {
    storage::LockGuard<LatchMutex> l(latch_mu_);
    if (write_error_.ok() &&
        (s.code() == StatusCode::kIOError ||
         s.code() == StatusCode::kCorruption)) {
      write_error_ = s;
    }
    return s;
  }

  // tx::ApplyTarget (reached only in transactional products).
  Status ApplyPut(const std::string& store, const Slice& key,
                  const Slice& value) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    return core_.Put(key, value);
  }
  Status ApplyDelete(const std::string& store, const Slice& key) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    return core_.Remove(key);
  }
  Status ReadCommitted(const std::string& store, const Slice& key,
                       std::string* value) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    return Get(key, value);
  }
  Status CheckpointEngine() override { return buffers_->Checkpoint(); }

  osal::Env* env_ = nullptr;
  detail::AllocState<Cfg::kStaticPoolBytes> alloc_;
  std::unique_ptr<storage::PageFile> file_;
  std::unique_ptr<storage::BufferManager> buffers_;
  std::unique_ptr<storage::RecordManager> heap_;
  std::unique_ptr<Index> index_;
  EngineCore<Index> core_;
#if FAME_OBS_ENABLED
  /// Sized only when the product selects Observability; otherwise an
  /// empty tag that [[no_unique_address]] collapses to nothing.
  [[no_unique_address]] mutable std::conditional_t<
      kObservability, obs::BasicMetricsRegistry<ObsCells>, detail::NoMetrics>
      metrics_;
#endif
  std::unique_ptr<tx::TransactionManager> txmgr_;
  mutable LatchMutex latch_mu_;
  Status write_error_;  // first persistent write failure; OK while healthy
};

}  // namespace fame::core

#endif  // FAME_CORE_STATIC_ENGINE_H_

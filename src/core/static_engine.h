// StaticEngine: the FeatureC++-equivalent composition of the FAME-DBMS
// prototype (paper §2.3). A product is described by a compile-time Cfg
// traits struct; unselected features either do not instantiate (method
// templates are instantiated on use only) or fail the build via
// static_assert — "the application contains only and exactly the
// functionality required".
//
// Cfg requirements:
//   using IndexTag            — core::BtreeTag or core::ListTag
//   static constexpr bool kPut, kRemove, kUpdate;   // Access features
//   static constexpr bool kTransactions;            // Transaction feature
//   static constexpr bool kForceCommit;             // commit protocol alt
//   static constexpr const char* kReplacement;      // "lru"|"lfu"|"clock"
//   static constexpr uint32_t kPageSize;
//   static constexpr size_t kBufferFrames;
//   static constexpr size_t kStaticPoolBytes;       // 0 => Dynamic alloc
//   static constexpr bool kConcurrency;             // optional Concurrency
//                                                   // feature; absent => off
//   static constexpr bool kReverseScan;             // optional ReverseScan
//                                                   // feature; absent => off
//
// With Concurrency selected, the transaction surface (Begin/Commit/Abort,
// one transaction per thread) becomes thread-safe and commits batch through
// WAL group commit; the read-only degradation latch turns mutex-guarded.
// Deselected products compile to the historical lock-free engine.
#ifndef FAME_CORE_STATIC_ENGINE_H_
#define FAME_CORE_STATIC_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <type_traits>

#include "core/backup.h"
#include "core/engine_core.h"
#include "index/bplus_tree.h"
#include "index/list_index.h"
#include "obs/obs.h"
#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#endif
#include "osal/allocator.h"
#include "osal/env.h"
#include "osal/slab_alloc.h"
#include "storage/buffer.h"
#include "storage/record.h"
#include "tx/txmgr.h"

namespace fame::core {

/// Index alternatives for the core product line.
struct BtreeTag {
  using Type = index::BPlusTree;
  static constexpr bool kOrdered = true;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* b) {
    return Type::Open(b, "core");
  }
};
struct ListTag {
  using Type = index::ListIndex;
  static constexpr bool kOrdered = false;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* b) {
    return Type::Open(b, "core");
  }
};

namespace detail {

/// Memory Alloc alternative, selected at compile time. Static products
/// take the whole kPoolBytes budget in one allocation at construction and
/// never touch the heap again: the slab allocator's segregated classes
/// make every Allocate/Deallocate O(1) (the old StaticPoolAllocator
/// first-fit walk remains available when the slab feature is compiled
/// out). Products that deselect the slab build link no fame::osal::slab
/// symbols — the alloc nm probe pair enforces it.
template <size_t kPoolBytes>
struct AllocState {  // Static
#if FAME_SLAB_ENABLED
  osal::slab::StaticSlabAllocator alloc{kPoolBytes};
#else
  osal::StaticPoolAllocator alloc{kPoolBytes};
#endif
  osal::Allocator* get() { return &alloc; }
  const osal::Allocator* get() const { return &alloc; }
};
template <>
struct AllocState<0> {  // Dynamic
  osal::DynamicAllocator alloc;
  osal::Allocator* get() { return &alloc; }
  const osal::Allocator* get() const { return &alloc; }
};

/// Detects the optional Concurrency feature: Cfg structs written before the
/// feature existed (no kConcurrency member) keep compiling and mean "off".
template <typename Cfg, typename = void>
struct ConcurrencySelected : std::false_type {};
template <typename Cfg>
struct ConcurrencySelected<Cfg, std::void_t<decltype(Cfg::kConcurrency)>>
    : std::bool_constant<Cfg::kConcurrency> {};

/// Detects the optional ReverseScan sub-feature of Access; Cfg structs
/// without a kReverseScan member mean "off".
template <typename Cfg, typename = void>
struct ReverseScanSelected : std::false_type {};
template <typename Cfg>
struct ReverseScanSelected<Cfg, std::void_t<decltype(Cfg::kReverseScan)>>
    : std::bool_constant<Cfg::kReverseScan> {};

/// Detects the optional Observability sub-feature of Storage; Cfg structs
/// without a kObservability member mean "off".
template <typename Cfg, typename = void>
struct ObservabilitySelected : std::false_type {};
template <typename Cfg>
struct ObservabilitySelected<Cfg, std::void_t<decltype(Cfg::kObservability)>>
    : std::bool_constant<Cfg::kObservability> {};

/// Detects the optional Backup sub-feature of Storage (segmented WAL with
/// retention watermarks + hot backup); Cfg structs without a kBackup
/// member mean "off" and keep the legacy single-file log byte for byte.
template <typename Cfg, typename = void>
struct BackupSelected : std::false_type {};
template <typename Cfg>
struct BackupSelected<Cfg, std::void_t<decltype(Cfg::kBackup)>>
    : std::bool_constant<Cfg::kBackup> {};

/// Detects the optional Pitr sub-feature of Backup (archive recycled
/// segments for point-in-time recovery).
template <typename Cfg, typename = void>
struct PitrSelected : std::false_type {};
template <typename Cfg>
struct PitrSelected<Cfg, std::void_t<decltype(Cfg::kPitr)>>
    : std::bool_constant<Cfg::kPitr> {};

/// Detects the optional Replication sub-feature of Storage (epoch-fenced
/// WAL shipping); Cfg structs without a kReplication member mean "off" and
/// carry no fencing state or code.
template <typename Cfg, typename = void>
struct ReplicationSelected : std::false_type {};
template <typename Cfg>
struct ReplicationSelected<Cfg, std::void_t<decltype(Cfg::kReplication)>>
    : std::bool_constant<Cfg::kReplication> {};

/// Detects the optional Failover sub-feature of Replication (promotion).
template <typename Cfg, typename = void>
struct FailoverSelected : std::false_type {};
template <typename Cfg>
struct FailoverSelected<Cfg, std::void_t<decltype(Cfg::kFailover)>>
    : std::bool_constant<Cfg::kFailover> {};

/// Detects the optional Mvcc sub-feature of Transaction (snapshot
/// isolation over version-chained records); Cfg structs without a kMvcc
/// member mean "off" and keep the plain-bytes record codec byte for byte.
template <typename Cfg, typename = void>
struct MvccSelected : std::false_type {};
template <typename Cfg>
struct MvccSelected<Cfg, std::void_t<decltype(Cfg::kMvcc)>>
    : std::bool_constant<Cfg::kMvcc> {};

/// Detects the optional segment-size knob (bytes per WAL segment before a
/// roll); defaults to 64 KiB when the Cfg does not name one.
template <typename Cfg, typename = void>
struct SegmentBytes {
  static constexpr uint64_t value = 64 * 1024;
};
template <typename Cfg>
struct SegmentBytes<Cfg, std::void_t<decltype(Cfg::kWalSegmentBytes)>> {
  static constexpr uint64_t value = Cfg::kWalSegmentBytes;
};

/// Empty stand-in for the metrics registry in products that deselect
/// Observability (the member collapses via [[no_unique_address]]).
struct NoMetrics {};

/// Backup-run counters, sized only for Backup products.
struct BackupCounters {
  uint64_t runs = 0;
  uint64_t bytes = 0;
};
struct NoBackupCounters {};

/// Fencing state, sized only for Replication products.
struct ReplState {
  uint8_t role = 0;  // 0 none, 1 leader, 2 follower
  uint32_t epoch = 0;
};
struct NoReplState {};

/// Timestamp oracle + GC mark, sized only for Mvcc products. Constructing
/// the MvccManager is what pulls tx/mvcc.o out of the library — products
/// without the feature hold NoMvccState and reference nothing.
struct MvccState {
  tx::mvcc::MvccManager mgr;
  uint64_t gc_mark = 0;
};
struct NoMvccState {};

}  // namespace detail

template <typename Cfg>
class StaticEngine : private tx::ApplyTarget {
 public:
  using Index = typename Cfg::IndexTag::Type;
  static constexpr bool kOrdered = Cfg::IndexTag::kOrdered;
  /// Optional Concurrency feature (off for Cfgs that predate it).
  static constexpr bool kConcurrent = detail::ConcurrencySelected<Cfg>::value;
  /// Optional ReverseScan feature (off for Cfgs that predate it).
  static constexpr bool kReverse = detail::ReverseScanSelected<Cfg>::value;
  /// Optional Backup feature: segmented WAL, retention watermarks, hot
  /// backup. Off (legacy single-file log) for Cfgs that predate it.
  static constexpr bool kBackupFeature = detail::BackupSelected<Cfg>::value;
  /// Optional Pitr sub-feature of Backup: archive recycled segments.
  static constexpr bool kPitr = detail::PitrSelected<Cfg>::value;
  static_assert(!kPitr || kBackupFeature, "Pitr requires Backup");
  static_assert(!kBackupFeature || Cfg::kTransactions,
                "Backup requires Transaction");
  /// Optional Replication feature: epoch-fenced WAL shipping. Off for
  /// Cfgs that predate it; selecting it sizes the fencing state and the
  /// stamping code, nothing else — the shipping loop itself lives in
  /// fame::repl and is linked only by products that use it.
  static constexpr bool kReplication = detail::ReplicationSelected<Cfg>::value;
  /// Optional Failover sub-feature of Replication: the promotion ceremony.
  static constexpr bool kFailoverFeature = detail::FailoverSelected<Cfg>::value;
  static_assert(!kReplication || kBackupFeature,
                "Replication requires Backup");
  static_assert(!kFailoverFeature || kReplication,
                "Failover requires Replication");
  /// Optional Mvcc sub-feature of Transaction: snapshot-isolation
  /// transactions over version-chained records, first-committer-wins
  /// commits, watermark GC. Off for Cfgs that predate it — their record
  /// path stays on the plain-bytes codec and links zero fame::tx::mvcc
  /// symbols (cmake/CheckNoMvccSymbols.cmake).
  static constexpr bool kMvcc = detail::MvccSelected<Cfg>::value;
  static_assert(!kMvcc || Cfg::kTransactions, "Mvcc requires Transaction");
#if FAME_OBS_ENABLED
  /// Optional Observability feature (off for Cfgs that predate it). In a
  /// build with FAME_OBS_DISABLE the trait is pinned off and the metrics
  /// surface does not exist at all.
  static constexpr bool kObservability =
      detail::ObservabilitySelected<Cfg>::value;
  /// Plain integers in single-threaded products, relaxed atomics when the
  /// Concurrency feature is selected — the same policy split as the
  /// buffer pool (storage/concurrency.h).
  using ObsCells =
      std::conditional_t<kConcurrent, obs::SharedCells,
                         storage::SingleThreaded>;
#else
  static constexpr bool kObservability = false;
#endif

  StaticEngine() = default;
  ~StaticEngine() override = default;

  /// Opens the engine at `path` in `env`. With the Transaction feature the
  /// WAL is recovered before the call returns.
  Status Open(osal::Env* env, const std::string& path) {
    env_ = env;
    path_ = path;
    storage::PageFileOptions opts;
    opts.page_size = Cfg::kPageSize;
    auto file_or = storage::PageFile::Open(env, path, opts);
    FAME_RETURN_IF_ERROR(file_or.status());
    file_ = std::move(file_or).value();
    if constexpr (kReplication) {
      // Replication fence (epoch, role) persisted in the meta; see
      // core::Database for the packing.
      auto fence_or = file_->GetRootAux("repl.fence");
      if (fence_or.ok()) {
        repl_.epoch = static_cast<uint32_t>(fence_or.value() >> 8);
        repl_.role = static_cast<uint8_t>(fence_or.value() & 0xff);
      }
    }
    auto bm_or = storage::BufferManager::Create(
        file_.get(), Cfg::kBufferFrames, alloc_.get(),
        storage::MakeReplacementPolicy(Cfg::kReplacement));
    FAME_RETURN_IF_ERROR(bm_or.status());
    buffers_ = std::move(bm_or).value();
    auto heap_or = storage::RecordManager::Open(buffers_.get(), "core");
    FAME_RETURN_IF_ERROR(heap_or.status());
    heap_ = std::move(heap_or).value();
    auto idx_or = Cfg::IndexTag::Open(buffers_.get());
    FAME_RETURN_IF_ERROR(idx_or.status());
    index_ = std::move(idx_or).value();
    core_.Bind(heap_.get(), index_.get());
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      core_.SetCursorSink(metrics_.cursors.sink());
    }
#endif
    if constexpr (Cfg::kTransactions) {
      constexpr tx::CommitProtocol kProtocol =
          Cfg::kForceCommit ? tx::CommitProtocol::kForceAtCommit
                            : tx::CommitProtocol::kWalRedo;
      if constexpr (kBackupFeature) {
        // Segmented log: only this branch (and so only Backup products)
        // references the segment machinery's translation unit.
        tx::WalOptions wopts;
        wopts.segment_bytes = detail::SegmentBytes<Cfg>::value;
        wopts.archive = kPitr;
        auto log_or =
            tx::LogManager::OpenSegmented(env, path + ".wal", wopts);
        FAME_RETURN_IF_ERROR(log_or.status());
        auto mgr_or = tx::TransactionManager::Adopt(
            std::move(log_or).value(), this, kProtocol,
            /*group_commit=*/kConcurrent);
        FAME_RETURN_IF_ERROR(mgr_or.status());
        txmgr_ = std::move(mgr_or).value();
      } else {
        auto mgr_or = tx::TransactionManager::Open(
            env, path + ".wal", this, kProtocol,
            /*group_commit=*/kConcurrent);
        FAME_RETURN_IF_ERROR(mgr_or.status());
        txmgr_ = std::move(mgr_or).value();
      }
      // Mvcc: install the oracle before recovery so replayed commits that
      // carry timestamps take the versioned apply path, and seed it from
      // the checkpointed meta BEFORE replay runs — recovery ends in
      // CheckpointEngine(), which re-persists the clock, so seeding after
      // would read back the overwrite and restart the clock at zero.
      if constexpr (kMvcc) {
        txmgr_->EnableMvcc(&mvcc_.mgr);
        auto ts_or = file_->GetRootAux("mvcc.ts");
        if (ts_or.ok()) mvcc_.mgr.SeedClock(ts_or.value());
        auto mark_or = file_->GetRootAux("mvcc.mark");
        if (mark_or.ok()) mvcc_.gc_mark = mark_or.value();
      }
      FAME_RETURN_IF_ERROR(txmgr_->Recover());
      if constexpr (kMvcc) {
        // Ratchet past the highest commit ts replay saw and persist
        // immediately: recovery just truncated the log, so a crash before
        // the next checkpoint must not rewind the clock under chains.
        mvcc_.mgr.SeedClock(txmgr_->recovery_report().max_commit_ts);
        FAME_RETURN_IF_ERROR(PersistMvccMeta());
      }
      if constexpr (kReplication) {
        if (repl_.epoch != 0) txmgr_->SetWalFenceEpoch(repl_.epoch);
      }
    }
    return Status::OK();
  }

  // The access-path bodies live in EngineCore<Index> — the same template
  // Database instantiates over the virtual index interface; here it is
  // instantiated over the concrete index type, so calls devirtualize.
  // StaticEngine adds only compile-time gating and the degradation latch.

  /// Access:get — present in every product.
  Status Get(const Slice& key, std::string* value) {
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.get_ns);
      metrics_.gets.Add(1);
      return GetRecord(key, value);
    }
#endif
    return GetRecord(key, value);
  }

  /// Access:put.
  Status Put(const Slice& key, const Slice& value) {
    static_assert(Cfg::kPut, "feature Access:Put is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.put_ns);
      metrics_.puts.Add(1);
      return NoteWrite(PutRecord(key, value));
    }
#endif
    return NoteWrite(PutRecord(key, value));
  }

  /// Access:remove.
  Status Remove(const Slice& key) {
    static_assert(Cfg::kRemove, "feature Access:Remove is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.remove_ns);
      metrics_.removes.Add(1);
      return NoteWrite(RemoveRecord(key));
    }
#endif
    return NoteWrite(RemoveRecord(key));
  }

  /// Access:update — put that requires the key to exist.
  Status Update(const Slice& key, const Slice& value) {
    static_assert(Cfg::kUpdate, "feature Access:Update is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
    if constexpr (kMvcc) {
      // The key must *visibly* exist: an index hit whose chain is
      // tombstoned at the read timestamp is still absent.
      std::string existing;
      FAME_RETURN_IF_ERROR(
          core_.GetVersionedLatest(key, &existing, &mvcc_.mgr));
    } else {
      uint64_t packed = 0;
      FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    }
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.put_ns);
      metrics_.puts.Add(1);
      return NoteWrite(PutRecord(key, value));
    }
#endif
    return NoteWrite(PutRecord(key, value));
  }

  /// Pull-based cursor over the engine's records (heap-joined values).
  /// Mutation invalidates open cursors; re-Seek after writes.
  StatusOr<EngineCursor> NewCursor() { return core_.NewCursor(); }

  /// Full scan (index order) — visitor adapter over the cursor.
  Status Scan(const KvVisitor& fn) {
#if FAME_OBS_ENABLED
    if constexpr (kObservability) {
      obs::ScopedLatencyTimer<ObsCells> timer(&metrics_.scan_ns);
      metrics_.scans.Add(1);
      return ScanRecords(fn);
    }
#endif
    return ScanRecords(fn);
  }

  /// Ordered range scan — compile-time gated on the B+-tree alternative.
  Status RangeScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    static_assert(kOrdered, "RangeScan requires the B+-Tree alternative");
    if constexpr (kMvcc) {
      // Registered snapshot (not a bare ReadTs): the scan's cursor owns
      // the registration, pinning the GC watermark for the whole walk.
      return core_.SnapshotRangeScan(mvcc_.mgr.BeginSnapshot(), lo, hi,
                                     /*ordered=*/true, fn, &mvcc_.mgr);
    } else {
      return core_.RangeScan(lo, hi, /*ordered=*/true, fn);
    }
  }

  /// Descending scan over [lo, hi) — the ReverseScan feature, gated at
  /// compile time (and model-constrained to the B+-Tree alternative).
  Status ReverseScan(const Slice& lo, const Slice& hi, const KvVisitor& fn) {
    static_assert(kReverse, "feature Access:ReverseScan is not selected");
    static_assert(kOrdered, "ReverseScan requires the B+-Tree alternative");
    if constexpr (kMvcc) {
      return core_.SnapshotReverseScan(mvcc_.mgr.BeginSnapshot(), lo, hi, fn,
                                       &mvcc_.mgr);
    } else {
      return core_.ReverseScan(lo, hi, fn);
    }
  }

  // ---- Transaction feature surface (instantiated on use only) ----
  StatusOr<tx::Transaction*> Begin() {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    return txmgr_->Begin();
  }
  Status Commit(tx::Transaction* txn) {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    Status guard = GuardWrite();
    if (!guard.ok()) {
      txmgr_->Abort(txn);  // finish the handle; refuse the mutation
      return guard;
    }
    return NoteWrite(txmgr_->Commit(txn));
  }
  Status Abort(tx::Transaction* txn) {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    return txmgr_->Abort(txn);
  }

  // ---- Transaction ▸ Mvcc feature surface (instantiated on use only) ----
  /// [feature Mvcc] Cursor frozen at the current read timestamp: positions
  /// resolve through the version chains, so writers committing after the
  /// open never change what it returns.
  StatusOr<SnapshotCursor> NewSnapshotCursor() {
    static_assert(kMvcc, "feature Transaction:Mvcc is not selected");
    // Register the snapshot so the GC watermark cannot pass the cursor's
    // ts while it lives; the cursor owns the release.
    return core_.NewSnapshotCursor(mvcc_.mgr.BeginSnapshot(), &mvcc_.mgr);
  }
  /// [feature Mvcc] Watermark GC: prunes versions no active snapshot can
  /// see, persists the sweep watermark ("mvcc.mark"). Returns versions
  /// pruned.
  StatusOr<uint64_t> MvccGc() {
    static_assert(kMvcc, "feature Transaction:Mvcc is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
    const uint64_t mark = mvcc_.mgr.Watermark();
    uint64_t pruned = 0;
    Status s = txmgr_->WithApplyPaused([&]() -> Status {
      FAME_ASSIGN_OR_RETURN(pruned, core_.MvccSweep(mark, &mvcc_.mgr));
      return Status::OK();
    });
    if (!s.ok()) return NoteWrite(std::move(s));
    mvcc_.gc_mark = mark;
    FAME_RETURN_IF_ERROR(NoteWrite(PersistMvccMeta()));
    return pruned;
  }
  /// [feature Mvcc] Watermark of the last completed GC sweep (persisted).
  uint64_t mvcc_gc_mark() const {
    static_assert(kMvcc, "feature Transaction:Mvcc is not selected");
    return mvcc_.gc_mark;
  }
  /// [feature Mvcc] Oracle counters.
  tx::mvcc::MvccStats mvcc_stats() const {
    static_assert(kMvcc, "feature Transaction:Mvcc is not selected");
    return mvcc_.mgr.stats();
  }

  Status Checkpoint() {
    FAME_RETURN_IF_ERROR(GuardWrite());
    if constexpr (kBackupFeature) {
      // Segmented products checkpoint through the transaction manager so
      // the retention watermark advances and old segments recycle.
      return NoteWrite(txmgr_->Checkpoint());
    }
    return NoteWrite(buffers_->Checkpoint());
  }

  // ---- Backup / Pitr feature surface (instantiated on use only) ----
  /// [feature Backup] Online hot backup to destination prefix `dest`;
  /// see core::backup::RunBackup for the artifact layout.
  Status Backup(const std::string& dest,
                backup::BackupReport* report = nullptr) {
    static_assert(kBackupFeature, "feature Storage:Backup is not selected");
    FAME_RETURN_IF_ERROR(GuardWrite());
    backup::BackupContext ctx;
    ctx.env = env_;
    ctx.txmgr = txmgr_.get();
    ctx.file = file_.get();
    ctx.db_path = path_;
    ctx.wal_path = path_ + ".wal";
    backup::BackupReport local;
    Status s = backup::RunBackup(ctx, dest, &local);
    if (s.ok()) {
      backup_counters_.runs += 1;
      backup_counters_.bytes += local.bytes_copied;
      if (report != nullptr) *report = local;
    }
    return s;
  }
  /// [feature Backup] Rebuilds a database at `dest_path` from the backup
  /// at prefix `src` (static: runs against files, not a live engine).
  static Status Restore(osal::Env* env, const std::string& src,
                        const std::string& dest_path,
                        const backup::RestoreOptions& opts = {},
                        backup::RestoreReport* report = nullptr) {
    static_assert(kBackupFeature, "feature Storage:Backup is not selected");
    return backup::RunRestore(env, src, dest_path, opts, report);
  }
  /// [feature Backup] End of the durable log — a valid PITR target.
  uint64_t DurableLsn() const {
    static_assert(Cfg::kTransactions, "feature Transaction is not selected");
    return txmgr_->durable_lsn();
  }
  /// [feature Backup] Segment-chain counters.
  tx::WalSegmentStats wal_segment_stats() const {
    static_assert(kBackupFeature, "feature Storage:Backup is not selected");
    return txmgr_->wal_segment_stats();
  }

  // ---- Replication / Failover feature surface (instantiated on use) ----
  /// [feature Replication] Takes (or resumes) leadership under fencing
  /// epoch `epoch`: persisted in the meta and stamped into every segment
  /// created from here on.
  Status StartLeader(uint32_t epoch) {
    static_assert(kReplication,
                  "feature Storage:Replication is not selected");
    if (epoch < repl_.epoch) {
      return Status::InvalidArgument("fencing epoch cannot move backwards");
    }
    repl_.epoch = epoch;
    repl_.role = 1;
    txmgr_->SetWalFenceEpoch(epoch);
    return PersistFenceMeta();
  }
  /// [feature Replication] Fences this product as a read-only follower.
  Status StartFollower(uint32_t epoch) {
    static_assert(kReplication,
                  "feature Storage:Replication is not selected");
    if (epoch < repl_.epoch) {
      return Status::InvalidArgument("fencing epoch cannot move backwards");
    }
    repl_.epoch = epoch;
    repl_.role = 2;
    txmgr_->SetWalFenceEpoch(epoch);
    return PersistFenceMeta();
  }
  /// [feature Failover] Re-fences a follower as leader under `epoch`
  /// (> current). The static product line leaves the integrity gate to
  /// the caller (its Verify feature); the runtime facade's Promote runs
  /// the scrub itself.
  Status Promote(uint32_t epoch) {
    static_assert(kFailoverFeature,
                  "feature Replication:Failover is not selected");
    if (repl_.role != 2) {
      return Status::InvalidArgument("only a follower can be promoted");
    }
    if (epoch <= repl_.epoch) {
      return Status::InvalidArgument("promotion must advance the epoch");
    }
    repl_.epoch = epoch;
    repl_.role = 1;
    txmgr_->SetWalFenceEpoch(epoch);
    return PersistFenceMeta();
  }
  /// [feature Replication] Borrowed live handles for a repl::Leader.
  backup::BackupContext ReplicationSource() {
    static_assert(kReplication,
                  "feature Storage:Replication is not selected");
    backup::BackupContext ctx;
    ctx.env = env_;
    ctx.txmgr = txmgr_.get();
    ctx.file = file_.get();
    ctx.db_path = path_;
    ctx.wal_path = path_ + ".wal";
    return ctx;
  }
  uint32_t repl_epoch() const {
    static_assert(kReplication,
                  "feature Storage:Replication is not selected");
    return repl_.epoch;
  }
  bool repl_follower() const {
    static_assert(kReplication,
                  "feature Storage:Replication is not selected");
    return repl_.role == 2;
  }

  // ---- degraded (read-only) mode, mirroring core::Database ----
  /// True after a persistent write failure flipped the engine read-only;
  /// Get/Scan keep serving, mutations are rejected until reopen.
  bool read_only() const {
    storage::LockGuard<LatchMutex> l(latch_mu_);
    return !write_error_.ok();
  }
  const Status& degraded_status() const { return write_error_; }
  /// What WAL recovery found at Open (transactional products).
  tx::RecoveryReport recovery_report() const {
    return txmgr_ != nullptr ? txmgr_->recovery_report() : tx::RecoveryReport{};
  }
  storage::BufferManager* buffers() { return buffers_.get(); }
  osal::Allocator* allocator() { return alloc_.get(); }
  Index* index() { return index_.get(); }

#if FAME_OBS_ENABLED
  /// [feature Observability] Snapshot of every metric this product
  /// collects. Compile-time gated like ReverseScan: products that
  /// deselect the feature fail the static_assert (and carry none of the
  /// collection code).
  obs::MetricsSnapshot GetMetricsSnapshot() const {
    static_assert(kObservability,
                  "feature Storage:Observability is not selected");
    obs::MetricsSnapshot m;
    metrics_.Snapshot(&m);
    storage::BufferStats b = buffers_->stats();
    m.buffer_hits = b.hits;
    m.buffer_misses = b.misses;
    m.buffer_evictions = b.evictions;
    m.buffer_writebacks = b.dirty_writebacks;
    for (size_t i = 0; i < buffers_->shard_count(); ++i) {
      storage::BufferStats s = buffers_->shard_stats(i);
      m.buffer_shards.push_back(
          {s.hits, s.misses, s.evictions, s.dirty_writebacks});
    }
    const auto& io = file_->io_metrics();
    m.file_reads = io.reads.Load();
    m.file_writes = io.writes.Load();
    m.file_syncs = io.syncs.Load();
    m.file_read_bytes = io.read_bytes.Load();
    m.file_write_bytes = io.write_bytes.Load();
    m.file_read_ns = io.read_ns.Snapshot();
    m.file_write_ns = io.write_ns.Snapshot();
    m.file_sync_ns = io.sync_ns.Snapshot();
    if constexpr (std::is_same_v<Index, index::BPlusTree>) {
      const auto& bt = index_->metrics();
      m.btree_splits = bt.splits.Load();
      m.btree_merges = bt.merges.Load();
      m.btree_descents = bt.descents.Load();
    }
    if constexpr (Cfg::kTransactions) {
      tx::WalStats w = txmgr_->wal_stats();
      m.wal_appends = w.records_appended;
      m.wal_syncs = w.syncs;
      m.wal_batches = w.group_batches;
      m.wal_batched_bytes = w.group_batched_bytes;
      m.wal_batch_records = txmgr_->wal_batch_histogram();
      m.committed_txns = txmgr_->committed();
      m.aborted_txns = txmgr_->aborted();
      tx::RecoveryReport r = txmgr_->recovery_report();
      m.recovery_applied_records = r.applied_records;
      m.recovery_dropped_bytes = r.dropped_bytes;
      if constexpr (kBackupFeature) {
        tx::WalSegmentStats seg = txmgr_->wal_segment_stats();
        m.wal_segmented = true;
        m.wal_segments = seg.segments;
        m.wal_rotations = seg.rotations;
        m.wal_recycled = seg.recycled;
        m.wal_archived = seg.archived;
        m.wal_archive_lag_bytes = seg.archive_lag_bytes;
        m.wal_archive_stalled = seg.archive_stalled;
        m.wal_retained_lsn = seg.retained_lsn;
        m.backup_runs = backup_counters_.runs;
        m.backup_bytes = backup_counters_.bytes;
      }
      if constexpr (kMvcc) {
        tx::mvcc::MvccStats ms = mvcc_.mgr.stats();
        m.mvcc = true;
        m.mvcc_active_snapshots = ms.active_snapshots;
        m.mvcc_conflicts = ms.conflicts;
        m.mvcc_gc_runs = ms.gc_runs;
        m.mvcc_gc_pruned = ms.gc_pruned;
        m.mvcc_watermark = ms.watermark;
        m.mvcc_clock = ms.clock;
        m.mvcc_chain_len = mvcc_.mgr.chain_len_histogram();
      }
    }
    osal::AllocStats alloc = alloc_.get()->stats();
    m.alloc_name = alloc_.get()->name();
    m.alloc_live_bytes = alloc.live_bytes;
    m.alloc_peak_bytes = alloc.peak_bytes;
    m.alloc_remote_frees = alloc.remote_frees;
#if FAME_SLAB_ENABLED
    // Cross-thread frees of pooled per-op objects (cursors, transactions)
    // are process-wide: the pool is thread-local, not per-engine.
    m.alloc_remote_frees += osal::slab::PooledCrossThreadFrees();
#endif
    m.lost_meta_writes = storage::PageFile::lost_meta_writes();
    m.lost_page_writebacks = storage::BufferLostWritebacks();
    m.page_count = file_->page_count();
    m.read_only = read_only();
    return m;
  }
#endif

 private:
  /// The degradation latch is touched from every committer in a concurrent
  /// product; a no-op lock (compiled away) in single-threaded ones.
  using LatchMutex =
      std::conditional_t<kConcurrent, std::mutex,
                         storage::SingleThreaded::Mutex>;

  Status GuardWrite() const {
    if constexpr (kReplication) {
      if (repl_.role == 2) {
        return Status::NotSupported(
            "replica is read-only (follower role); promote to accept writes");
      }
    }
    storage::LockGuard<LatchMutex> l(latch_mu_);
    if (write_error_.ok()) return Status::OK();
    return Status::IOError("engine is read-only after write failure: " +
                           write_error_.ToString());
  }

  /// [feature Replication] Fence persistence in the PageFile meta
  /// (instantiated only from the gated surface above).
  Status PersistFenceMeta() {
    FAME_RETURN_IF_ERROR(file_->SetRoot(
        "repl.fence", storage::kInvalidPageId,
        (static_cast<uint64_t>(repl_.epoch) << 8) | repl_.role));
    return file_->Sync();
  }

  Status NoteWrite(Status s) {
    storage::LockGuard<LatchMutex> l(latch_mu_);
    if (write_error_.ok() &&
        (s.code() == StatusCode::kIOError ||
         s.code() == StatusCode::kCorruption)) {
      write_error_ = s;
    }
    return s;
  }

  // tx::ApplyTarget (reached only in transactional products).
  Status ApplyPut(const std::string& store, const Slice& key,
                  const Slice& value) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    if constexpr (kMvcc) {
      // Legacy (timestamp-less) log records migrate on the fly: each
      // becomes a fresh head version. Sequenced so the watermark is read
      // after the tick (unspecified evaluation order otherwise).
      const uint64_t ts = mvcc_.mgr.AdvanceClock();
      return core_.WriteVersion(key, value, /*tombstone=*/false, ts,
                                mvcc_.mgr.Watermark(), &mvcc_.mgr);
    } else {
      return core_.Put(key, value);
    }
  }
  Status ApplyDelete(const std::string& store, const Slice& key) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    if constexpr (kMvcc) {
      return RemoveRecord(key);
    } else {
      return core_.Remove(key);
    }
  }
  Status ReadCommitted(const std::string& store, const Slice& key,
                       std::string* value) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    return Get(key, value);
  }
  // [feature Mvcc] Versioned apply/read slots; the bodies collapse to the
  // plain codec unless Mvcc is selected (same pattern as PersistWalMark —
  // virtual overrides instantiate with the vtable, so the gate must live
  // inside the body).
  Status ApplyPutVersioned(const std::string& store, const Slice& key,
                           const Slice& value, uint64_t commit_ts) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    if constexpr (kMvcc) {
      mvcc_.mgr.SeedClock(commit_ts);  // replay may precede clock seeding
      return core_.WriteVersion(key, value, /*tombstone=*/false, commit_ts,
                                mvcc_.mgr.Watermark(), &mvcc_.mgr);
    } else {
      (void)commit_ts;
      return core_.Put(key, value);
    }
  }
  Status ApplyDeleteVersioned(const std::string& store, const Slice& key,
                              uint64_t commit_ts) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    if constexpr (kMvcc) {
      mvcc_.mgr.SeedClock(commit_ts);
      uint64_t packed = 0;
      FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
      return core_.WriteVersion(key, Slice(), /*tombstone=*/true, commit_ts,
                                mvcc_.mgr.Watermark(), &mvcc_.mgr);
    } else {
      (void)commit_ts;
      return core_.Remove(key);
    }
  }
  Status ReadAtSnapshot(const std::string& store, const Slice& key,
                        uint64_t ts, std::string* value) override {
    if (store != "core") return Status::InvalidArgument("unknown store");
    if constexpr (kMvcc) {
      return core_.GetVersioned(key, ts, value, &mvcc_.mgr);
    } else {
      (void)ts;
      return Get(key, value);
    }
  }
  Status CheckpointEngine() override {
    FAME_RETURN_IF_ERROR(buffers_->Checkpoint());
    // Checkpoint is the durability point of the timestamp oracle: the WAL
    // below it may be truncated/recycled afterwards.
    if constexpr (kMvcc) FAME_RETURN_IF_ERROR(PersistMvccMeta());
    return Status::OK();
  }

  // ---- [feature Mvcc] record-path seam -----------------------------
  // Plain bytes without the feature, a version-chain append / visible-
  // version resolve at the current read timestamp with it. Every surface
  // access funnels through these.
  Status PutRecord(const Slice& key, const Slice& value) {
    if constexpr (kMvcc) {
      // Auto-commit write through the oracle's conflict table, so MVCC
      // transactions that read this key before the write conflict at
      // their commit (no lost update); the ts stays invisible to new
      // snapshots until the apply lands (FinishCommit).
      const uint64_t commit_ts =
          mvcc_.mgr.PrepareAutoCommit("core:" + key.ToString());
      Status s = core_.WriteVersion(key, value, /*tombstone=*/false,
                                    commit_ts, mvcc_.mgr.Watermark(),
                                    &mvcc_.mgr);
      mvcc_.mgr.FinishCommit(commit_ts);
      return s;
    } else {
      return core_.Put(key, value);
    }
  }
  Status RemoveRecord(const Slice& key) {
    if constexpr (kMvcc) {
      // Preserve Remove's NotFound contract against the *visible* state.
      std::string existing;
      FAME_RETURN_IF_ERROR(
          core_.GetVersionedLatest(key, &existing, &mvcc_.mgr));
      const uint64_t commit_ts =
          mvcc_.mgr.PrepareAutoCommit("core:" + key.ToString());
      Status s = core_.WriteVersion(key, Slice(), /*tombstone=*/true,
                                    commit_ts, mvcc_.mgr.Watermark(),
                                    &mvcc_.mgr);
      mvcc_.mgr.FinishCommit(commit_ts);
      return s;
    } else {
      return core_.Remove(key);
    }
  }
  Status GetRecord(const Slice& key, std::string* value) {
    if constexpr (kMvcc) {
      // The read ts is sampled under the physical latch (see
      // EngineCore::GetVersionedLatest) so concurrent commits cannot prune
      // the version this read resolves.
      return core_.GetVersionedLatest(key, value, &mvcc_.mgr);
    } else {
      return core_.Get(key, value);
    }
  }
  Status ScanRecords(const KvVisitor& fn) {
    if constexpr (kMvcc) {
      return core_.SnapshotScan(mvcc_.mgr.BeginSnapshot(), fn, &mvcc_.mgr);
    } else {
      return core_.Scan(fn);
    }
  }
  /// [feature Mvcc] Oracle + GC-mark persistence in the PageFile meta
  /// (instantiated only from the gated paths above).
  Status PersistMvccMeta() {
    // The raw clock, not the pending-gated read ts: a reopened clock below
    // any persisted chain head would drop fresh writes as replays.
    FAME_RETURN_IF_ERROR(file_->SetRoot("mvcc.ts", storage::kInvalidPageId,
                                        mvcc_.mgr.Clock()));
    FAME_RETURN_IF_ERROR(file_->SetRoot("mvcc.mark", storage::kInvalidPageId,
                                        mvcc_.gc_mark));
    return file_->Sync();
  }
  // [feature Backup] Watermark persistence in the PageFile meta. Virtual
  // slots exist in every product; the bodies collapse to the base-class
  // no-ops unless Backup is selected (and are only ever called by
  // segmented checkpoints).
  Status PersistWalMark(tx::Lsn mark) override {
    if constexpr (kBackupFeature) {
      FAME_RETURN_IF_ERROR(
          file_->SetRoot("wal.mark", storage::kInvalidPageId, mark));
      return file_->Sync();
    } else {
      (void)mark;
      return Status::OK();
    }
  }
  StatusOr<tx::Lsn> LoadWalMark() override {
    if constexpr (kBackupFeature) {
      auto aux_or = file_->GetRootAux("wal.mark");
      if (!aux_or.ok()) return static_cast<tx::Lsn>(0);  // no checkpoint yet
      return aux_or.value();
    } else {
      return static_cast<tx::Lsn>(0);
    }
  }

  osal::Env* env_ = nullptr;
  detail::AllocState<Cfg::kStaticPoolBytes> alloc_;
  std::unique_ptr<storage::PageFile> file_;
  std::unique_ptr<storage::BufferManager> buffers_;
  std::unique_ptr<storage::RecordManager> heap_;
  std::unique_ptr<Index> index_;
  EngineCore<Index> core_;
#if FAME_OBS_ENABLED
  /// Sized only when the product selects Observability; otherwise an
  /// empty tag that [[no_unique_address]] collapses to nothing.
  [[no_unique_address]] mutable std::conditional_t<
      kObservability, obs::BasicMetricsRegistry<ObsCells>, detail::NoMetrics>
      metrics_;
#endif
  std::unique_ptr<tx::TransactionManager> txmgr_;
  std::string path_;
  /// Sized only for Backup products ([[no_unique_address]] otherwise).
  [[no_unique_address]] std::conditional_t<kBackupFeature,
                                           detail::BackupCounters,
                                           detail::NoBackupCounters>
      backup_counters_;
  /// Sized only for Replication products ([[no_unique_address]] otherwise).
  [[no_unique_address]] std::conditional_t<kReplication, detail::ReplState,
                                           detail::NoReplState>
      repl_;
  /// Timestamp oracle + GC mark; sized only for Mvcc products
  /// ([[no_unique_address]] otherwise).
  [[no_unique_address]] std::conditional_t<kMvcc, detail::MvccState,
                                           detail::NoMvccState>
      mvcc_;
  mutable LatchMutex latch_mu_;
  Status write_error_;  // first persistent write failure; OK while healthy
};

}  // namespace fame::core

#endif  // FAME_CORE_STATIC_ENGINE_H_

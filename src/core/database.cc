#include "core/database.h"

#include <mutex>

#include "core/sql.h"
#include "index/bplus_tree.h"
#include "index/list_index.h"
#include "obs/obs.h"
#include "osal/slab_alloc.h"
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::core {

namespace {
constexpr char kStore[] = "core";
}  // namespace

Database::~Database() = default;

StatusOr<std::unique_ptr<Database>> Database::Open(const DbOptions& options) {
  std::unique_ptr<Database> db(new Database());
  db->options_ = options;
  db->model_ = fm::BuildFameDbmsModel();

  // Derive the product: select the requested features, propagate, complete
  // minimally, validate.
  fm::Configuration config(db->model_.get());
  for (const std::string& f : options.features) {
    FAME_RETURN_IF_ERROR(config.SelectByName(f));
  }
  FAME_RETURN_IF_ERROR(db->model_->CompleteMinimal(&config));
  db->config_ = config;

  FAME_RETURN_IF_ERROR(db->ComposeComponents(options));
  return db;
}

bool Database::HasFeature(const std::string& name) const {
  auto id_or = model_->Find(name);
  return id_or.ok() && config_.IsSelected(id_or.value());
}

Status Database::ComposeComponents(const DbOptions& options) {
  // OS-Abstraction alternative.
  if (HasFeature("NutOS")) {
    owned_env_ = osal::NewMemEnv(options.nutos_capacity_bytes);
    env_ = owned_env_.get();
  } else if (HasFeature("Win32")) {
    osal::Env* base = options.env != nullptr ? options.env
                                             : osal::GetPosixEnv();
    owned_env_ = osal::NewWin32PathEnv(base);
    env_ = owned_env_.get();
  } else {
    env_ = options.env != nullptr ? options.env : osal::GetPosixEnv();
  }

  // Memory Alloc alternative. Static products take their whole budget up
  // front and never touch the heap again: segregated slab classes (O(1)
  // carve/free) replaced the first-fit StaticPoolAllocator walk.
  if (HasFeature("Static")) {
#if FAME_SLAB_ENABLED
    allocator_ = std::make_unique<osal::slab::StaticSlabAllocator>(
        options.static_pool_bytes);
#else
    allocator_ =
        std::make_unique<osal::StaticPoolAllocator>(options.static_pool_bytes);
#endif
  } else {
    allocator_ = std::make_unique<osal::DynamicAllocator>();
  }

  // Tracing feature: flip the process-wide recording gate before the
  // storage stack opens, so open-time page IO is already in the ring.
  // (Static products call obs::Trace::Enable themselves; the facade
  // derives it from the configuration like every other feature.)
  FAME_OBS_TRACE(if (HasFeature("Tracing")) obs::Trace::Enable(true);)

  // FlightRecorder feature: the in-memory black box exists from before the
  // storage stack opens so even open-time degradation leaves breadcrumbs.
  FAME_OBS(if (HasFeature("FlightRecorder")) {
    blackbox_ = std::make_unique<obs::BlackBox>();
  })

  FAME_RETURN_IF_ERROR(OpenStorageStack());

  // Replication fence: a fenced store (leader or follower) carries its
  // epoch and role in the meta. Loaded unconditionally — a follower's page
  // file must stay read-only even when opened by a product without the
  // Replication feature.
  auto fence_or = file_->GetRootAux("repl.fence");
  if (fence_or.ok()) {
    repl_epoch_ = static_cast<uint32_t>(fence_or.value() >> 8);
    repl_role_ = static_cast<uint8_t>(fence_or.value() & 0xff);
  }

  has_put_ = HasFeature("Put");
  has_remove_ = HasFeature("Remove");
  has_update_ = HasFeature("Update");

  // Concurrency feature: group-commit WAL + thread-safe transaction
  // surface. The runtime-composed engine stack itself stays behind the
  // transaction manager's apply/read serialization.
  concurrent_ = HasFeature("Concurrency");

  // Transaction feature.
  if (HasFeature("Transaction")) {
    FAME_RETURN_IF_ERROR(OpenTxManager());
    // Mvcc sub-feature: install the oracle before recovery so replayed
    // commits that carry timestamps go down the versioned apply path.
    if (HasFeature("Mvcc")) {
      mvcc_ = std::make_unique<tx::mvcc::MvccManager>();
      txmgr_->EnableMvcc(mvcc_.get());
      // Seed the oracle from the checkpointed meta BEFORE recovery runs:
      // replay ends in CheckpointEngine(), which re-persists the clock —
      // seeding afterwards would read back the overwrite, not the stored
      // value, and restart the clock at zero under existing chains.
      auto ts_or = file_->GetRootAux("mvcc.ts");
      if (ts_or.ok()) mvcc_->SeedClock(ts_or.value());
      auto mark_or = file_->GetRootAux("mvcc.mark");
      if (mark_or.ok()) mvcc_mark_ = mark_or.value();
    }
    FAME_RETURN_IF_ERROR(txmgr_->Recover());
    if (mvcc_ != nullptr) {
      // Ratchet past the highest commit ts replay saw and persist right
      // away — recovery just truncated the log, so a crash before the
      // next checkpoint must not rewind the clock under existing chains.
      mvcc_->SeedClock(txmgr_->recovery_report().max_commit_ts);
      FAME_RETURN_IF_ERROR(PersistMvccMeta());
    }
    // New segments must carry the persisted fence from the first commit,
    // not only after StartLeader/StartFollower re-stamps it.
    if (repl_epoch_ != 0) txmgr_->SetWalFenceEpoch(repl_epoch_);
  }

  // SQL Engine feature.
  if (HasFeature("SQL-Engine")) {
    sql_ = std::make_unique<SqlEngine>(this, HasFeature("Optimizer"));
  }
  return Status::OK();
}

Status Database::OpenTxManager() {
  tx::CommitProtocol protocol = HasFeature("Force-Commit")
                                    ? tx::CommitProtocol::kForceAtCommit
                                    : tx::CommitProtocol::kWalRedo;
  const std::string log_path = options_.path + ".wal";
  if (HasFeature("Backup")) {
    // Segmented log: checkpoints advance a retention watermark instead of
    // truncating, and hot backup / PITR become possible. Pitr additionally
    // archives recycled segments next to the log.
    tx::WalOptions wopts;
    wopts.segment_bytes = options_.wal_segment_bytes;
    wopts.archive = HasFeature("Pitr");
    auto log_or = tx::LogManager::OpenSegmented(env_, log_path, wopts);
    FAME_RETURN_IF_ERROR(log_or.status());
    auto mgr_or = tx::TransactionManager::Adopt(std::move(log_or).value(),
                                                this, protocol, concurrent_);
    FAME_RETURN_IF_ERROR(mgr_or.status());
    txmgr_ = std::move(mgr_or).value();
    return Status::OK();
  }
  auto mgr_or = tx::TransactionManager::Open(env_, log_path, this, protocol,
                                             concurrent_);
  FAME_RETURN_IF_ERROR(mgr_or.status());
  txmgr_ = std::move(mgr_or).value();
  return Status::OK();
}

Status Database::OpenStorageStack() {
  ordered_ = nullptr;
  scrubber_.reset();
  storage::PageFileOptions pf_opts;
  pf_opts.page_size = options_.page_size;
  auto file_or = storage::PageFile::Open(env_, options_.path, pf_opts);
  FAME_RETURN_IF_ERROR(file_or.status());
  file_ = std::move(file_or).value();

  // Replacement alternative.
  const char* policy = HasFeature("LFU")   ? "lfu"
                       : HasFeature("Clock") ? "clock"
                                             : "lru";
  auto bm_or = storage::BufferManager::Create(
      file_.get(), options_.buffer_frames, allocator_.get(),
      storage::MakeReplacementPolicy(policy));
  FAME_RETURN_IF_ERROR(bm_or.status());
  buffers_ = std::move(bm_or).value();

  auto heap_or = storage::RecordManager::Open(buffers_.get(), kStore);
  FAME_RETURN_IF_ERROR(heap_or.status());
  heap_ = std::move(heap_or).value();

  // Index alternative.
  if (HasFeature("B+-Tree")) {
    auto idx_or = index::BPlusTree::Open(buffers_.get(), kStore);
    FAME_RETURN_IF_ERROR(idx_or.status());
    ordered_ = idx_or.value().get();
    index_ = std::move(idx_or).value();
  } else {
    auto idx_or = index::ListIndex::Open(buffers_.get(), kStore);
    FAME_RETURN_IF_ERROR(idx_or.status());
    index_ = std::move(idx_or).value();
  }

  engine_.Bind(heap_.get(), index_.get());
  FAME_OBS(engine_.SetCursorSink(metrics_.cursors.sink());)

  // Integrity features keep one scrubber so incremental cycles and stats
  // survive across calls.
  if (HasFeature("Scrub") || HasFeature("Verify")) {
    scrubber_ = std::make_unique<storage::Scrubber>(file_.get());
  }
  return Status::OK();
}

// ------------------------------------------------------------ degradation

Status Database::GuardWrite() const {
  if (repl_role_ == kRoleFollower) {
    return Status::NotSupported(
        "replica is read-only (follower role); promote to accept writes");
  }
  std::unique_lock<std::mutex> l(latch_mu_, std::defer_lock);
  if (concurrent_) l.lock();  // committers race on the latch otherwise
  if (write_error_.ok()) return Status::OK();
  return Status::IOError("database is read-only after write failure: " +
                         write_error_.ToString());
}

Status Database::NoteWrite(Status s) {
  // IO errors that survived the storage layer's bounded retries, and
  // corruption discovered on a mutation path, are persistent: a half-applied
  // write may be on disk, so stop mutating instead of compounding it. Reads
  // stay up; reopening the database (which re-runs recovery) is the reset.
  FAME_OBS(bool tripped = false;)
  {
    std::unique_lock<std::mutex> l(latch_mu_, std::defer_lock);
    if (concurrent_) l.lock();
    if (write_error_.ok() &&
        (s.code() == StatusCode::kIOError ||
         s.code() == StatusCode::kCorruption)) {
      write_error_ = s;
      FAME_OBS(tripped = true;)
    }
  }
  // Flight-recorder hooks run after the latch releases: the dump reads the
  // metrics snapshot and writes a file, neither of which belongs under
  // latch_mu_.
  FAME_OBS(if (blackbox_ != nullptr && !s.ok() && !s.IsNotFound()) {
    blackbox_->NoteStatus("write", s.ToString());
    if (tripped) {
      // Best-effort by design — the database just degraded, the dump must
      // not mask the original failure.
      (void)DumpBlackBox("read-only latch tripped: " + s.ToString());
    }
  })
  return s;
}

// ------------------------------------------------------------ KV access
//
// The bodies live in EngineCore (shared with StaticEngine); Database adds
// only feature gating and the degradation latch.

Status Database::Put(const Slice& key, const Slice& value) {
  if (!has_put_) return Status::NotSupported("feature Put not selected");
  FAME_OBS(metrics_.puts.Add(1);
           obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.put_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kPut);)
  FAME_RETURN_IF_ERROR(GuardWrite());
  Status s = NoteWrite(PutRecord(key, value));
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  return s;
}

Status Database::Get(const Slice& key, std::string* value) {
  FAME_OBS(metrics_.gets.Add(1);
           obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.get_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kGet);)
  Status s = GetRecord(key, value);
  FAME_OBS_TRACE(span.set_error(!s.ok() && !s.IsNotFound());)
  return s;
}

Status Database::Remove(const Slice& key) {
  if (!has_remove_) return Status::NotSupported("feature Remove not selected");
  FAME_OBS(
      metrics_.removes.Add(1);
      obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.remove_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kRemove);)
  FAME_RETURN_IF_ERROR(GuardWrite());
  Status s = NoteWrite(RemoveRecord(key));
  FAME_OBS_TRACE(span.set_error(!s.ok() && !s.IsNotFound());)
  return s;
}

Status Database::Update(const Slice& key, const Slice& value) {
  if (!has_update_) return Status::NotSupported("feature Update not selected");
  FAME_OBS(metrics_.puts.Add(1);
           obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.put_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kUpdate);)
  FAME_RETURN_IF_ERROR(GuardWrite());
  if (mvcc_ != nullptr) {
    // Update requires the key to *visibly* exist: an index hit whose chain
    // is tombstoned at the read timestamp is still absent.
    std::string existing;
    FAME_RETURN_IF_ERROR(
        engine_.GetVersionedLatest(key, &existing, mvcc_.get()));
  } else {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
  }
  Status s = NoteWrite(PutRecord(key, value));
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  return s;
}

Status Database::Scan(const index::ScanVisitor& visit) {
  FAME_OBS(metrics_.scans.Add(1);
           obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.scan_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kScan);)
  Status s = index_->Scan(visit);
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  return s;
}

Status Database::RangeScan(const Slice& lo, const Slice& hi,
                           const KvVisitor& fn) {
  if (ordered_ == nullptr) {
    return Status::NotSupported("RangeScan requires the B+-Tree feature");
  }
  FAME_OBS(metrics_.scans.Add(1);
           obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.scan_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kScan);)
  // The scan's snapshot is *registered* (not a bare ReadTs sample): the
  // adapter's cursor owns the registration, so the GC watermark stays
  // pinned below the scan's ts until it finishes — a concurrent commit
  // cannot prune the versions the scan still has to resolve.
  Status s = mvcc_ != nullptr
                 ? engine_.SnapshotRangeScan(mvcc_->BeginSnapshot(), lo, hi,
                                             /*ordered=*/true, fn,
                                             mvcc_.get())
                 : engine_.RangeScan(lo, hi, /*ordered=*/true, fn);
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  return s;
}

Status Database::ReverseScan(const Slice& lo, const Slice& hi,
                             const KvVisitor& fn) {
  if (!HasFeature("ReverseScan")) {
    return Status::NotSupported("feature ReverseScan not selected");
  }
  FAME_OBS(metrics_.scans.Add(1);
           obs::ScopedLatencyTimer<obs::SharedCells> timer(&metrics_.scan_ns);)
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kReverseScan);)
  Status s = mvcc_ != nullptr
                 ? engine_.SnapshotReverseScan(mvcc_->BeginSnapshot(), lo, hi,
                                               fn, mvcc_.get())
                 : engine_.ReverseScan(lo, hi, fn);
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  return s;
}

// ------------------------------------------------------------ transactions

StatusOr<tx::Transaction*> Database::Begin() {
  if (txmgr_ == nullptr) {
    return Status::NotSupported("feature Transaction not selected");
  }
  return txmgr_->Begin();
}

Status Database::Commit(tx::Transaction* txn) {
  if (txmgr_ == nullptr) {
    return Status::NotSupported("feature Transaction not selected");
  }
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kCommit);)
  Status guard = GuardWrite();
  if (!guard.ok()) {
    // Still finish the transaction (drop writes, release locks) so the
    // handle does not leak, but refuse the mutation.
    txmgr_->Abort(txn);
    FAME_OBS_TRACE(span.set_error(true);)
    return guard;
  }
  Status s = NoteWrite(txmgr_->Commit(txn));
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  return s;
}

Status Database::Abort(tx::Transaction* txn) {
  if (txmgr_ == nullptr) {
    return Status::NotSupported("feature Transaction not selected");
  }
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kAbort);)
  return txmgr_->Abort(txn);
}

Status Database::ApplyPut(const std::string& store, const Slice& key,
                          const Slice& value) {
  if (store != kStore) return Status::InvalidArgument("unknown store");
  // A legacy (timestamp-less) log record replaying into an Mvcc product is
  // migrated on the fly: it becomes a fresh head version. (Sequenced
  // explicitly: the watermark must be read *after* the tick, or an
  // unspecified evaluation order could hand WriteVersion a prune floor
  // equal to its own commit ts.)
  if (mvcc_ != nullptr) {
    const uint64_t ts = mvcc_->AdvanceClock();
    return engine_.WriteVersion(key, value, /*tombstone=*/false, ts,
                                mvcc_->Watermark(), mvcc_.get());
  }
  return engine_.Put(key, value);
}

Status Database::ApplyDelete(const std::string& store, const Slice& key) {
  if (store != kStore) return Status::InvalidArgument("unknown store");
  if (mvcc_ != nullptr) return RemoveRecord(key);
  return engine_.Remove(key);
}

Status Database::ApplyPutVersioned(const std::string& store, const Slice& key,
                                   const Slice& value, uint64_t commit_ts) {
  if (store != kStore) return Status::InvalidArgument("unknown store");
  if (mvcc_ == nullptr) return engine_.Put(key, value);  // ts-less fallback
  mvcc_->SeedClock(commit_ts);  // replay may run before the clock is seeded
  return engine_.WriteVersion(key, value, /*tombstone=*/false, commit_ts,
                              mvcc_->Watermark(), mvcc_.get());
}

Status Database::ApplyDeleteVersioned(const std::string& store,
                                      const Slice& key, uint64_t commit_ts) {
  if (store != kStore) return Status::InvalidArgument("unknown store");
  if (mvcc_ == nullptr) return engine_.Remove(key);
  mvcc_->SeedClock(commit_ts);
  uint64_t packed = 0;
  Status found = engine_.index()->Lookup(key, &packed);
  // Deleting a key with no chain at all stays NotFound (the caller treats
  // replayed deletes of absent keys as already-applied).
  if (!found.ok()) return found;
  return engine_.WriteVersion(key, Slice(), /*tombstone=*/true, commit_ts,
                              mvcc_->Watermark(), mvcc_.get());
}

Status Database::ReadAtSnapshot(const std::string& store, const Slice& key,
                                uint64_t ts, std::string* value) {
  if (store != kStore) return Status::InvalidArgument("unknown store");
  if (mvcc_ == nullptr) return Get(key, value);
  return engine_.GetVersioned(key, ts, value, mvcc_.get());
}

// ------------------------------------------------------------ record path

Status Database::PutRecord(const Slice& key, const Slice& value) {
  if (mvcc_ == nullptr) return engine_.Put(key, value);
  // Auto-commit versioned write through the oracle's conflict table — not
  // a bare clock tick — so an MVCC transaction that read this key before
  // the write loses first-committer-wins at its own commit instead of
  // silently overwriting us (lost update). The ts stays in-flight
  // (invisible to new snapshots) until the engine apply lands; the
  // watermark is read after PrepareAutoCommit, which also pins it below
  // the new commit ts. Opportunistic pruning of versions already below the
  // watermark happens while the chain is in hand.
  const uint64_t commit_ts =
      mvcc_->PrepareAutoCommit(std::string(kStore) + ":" + key.ToString());
  Status s = engine_.WriteVersion(key, value, /*tombstone=*/false, commit_ts,
                                  mvcc_->Watermark(), mvcc_.get());
  mvcc_->FinishCommit(commit_ts);
  return s;
}

Status Database::RemoveRecord(const Slice& key) {
  if (mvcc_ == nullptr) return engine_.Remove(key);
  // Preserve Remove's NotFound contract against the *visible* state: a key
  // that is absent or already tombstoned at the read ts is not removable.
  std::string existing;
  FAME_RETURN_IF_ERROR(engine_.GetVersionedLatest(key, &existing, mvcc_.get()));
  const uint64_t commit_ts =
      mvcc_->PrepareAutoCommit(std::string(kStore) + ":" + key.ToString());
  Status s = engine_.WriteVersion(key, Slice(), /*tombstone=*/true, commit_ts,
                                  mvcc_->Watermark(), mvcc_.get());
  mvcc_->FinishCommit(commit_ts);
  return s;
}

Status Database::GetRecord(const Slice& key, std::string* value) {
  if (mvcc_ == nullptr) return engine_.Get(key, value);
  // Latched latest-read: the ts is sampled under the physical latch, so a
  // concurrent commit pair cannot prune the sampled version between the
  // ReadTs call and the chain copy.
  return engine_.GetVersionedLatest(key, value, mvcc_.get());
}

StatusOr<SnapshotCursor> Database::NewSnapshotCursor() {
  if (mvcc_ == nullptr) {
    return Status::NotSupported("feature Mvcc not selected");
  }
  // Register the snapshot with the oracle so the GC watermark stays at or
  // below the cursor's ts while it lives; the cursor owns the release.
  return engine_.NewSnapshotCursor(mvcc_->BeginSnapshot(), mvcc_.get());
}

StatusOr<uint64_t> Database::MvccGc() {
  if (mvcc_ == nullptr) {
    return Status::NotSupported("feature Mvcc not selected");
  }
  FAME_RETURN_IF_ERROR(GuardWrite());
  const uint64_t mark = mvcc_->Watermark();
  uint64_t pruned = 0;
  // The sweep rewrites heap records in place; exclude concurrent engine
  // applies the same way hot backup does.
  Status s = txmgr_->WithApplyPaused([&]() -> Status {
    FAME_ASSIGN_OR_RETURN(pruned, engine_.MvccSweep(mark, mvcc_.get()));
    return Status::OK();
  });
  if (!s.ok()) return NoteWrite(std::move(s));
  mvcc_mark_ = mark;
  FAME_RETURN_IF_ERROR(NoteWrite(PersistMvccMeta()));
  return pruned;
}

Status Database::PersistMvccMeta() {
  // The *raw* clock, not the (pending-gated) read ts: chains on disk may
  // already carry in-flight stamps past ReadTs, and a reopened clock below
  // any persisted head would make WriteVersion treat fresh writes as
  // already-replayed no-ops.
  FAME_RETURN_IF_ERROR(
      file_->SetRoot("mvcc.ts", storage::kInvalidPageId, mvcc_->Clock()));
  FAME_RETURN_IF_ERROR(
      file_->SetRoot("mvcc.mark", storage::kInvalidPageId, mvcc_mark_));
  return file_->Sync();
}

Status Database::ReadCommitted(const std::string& store, const Slice& key,
                               std::string* value) {
  if (store != kStore) return Status::InvalidArgument("unknown store");
  return Get(key, value);
}

Status Database::CheckpointEngine() {
  FAME_RETURN_IF_ERROR(buffers_->Checkpoint());
  // Checkpoint is the durability point of the timestamp oracle: the WAL
  // below the checkpoint may be truncated/recycled, so the clock must be
  // recoverable from the meta alone.
  if (mvcc_ != nullptr) FAME_RETURN_IF_ERROR(PersistMvccMeta());
  return Status::OK();
}

Status Database::PersistWalMark(tx::Lsn mark) {
  // Called inside the checkpoint's exclusive section (applies and reads
  // quiesced), so the unserialized meta mutation is safe even for
  // concurrent products.
  FAME_RETURN_IF_ERROR(
      file_->SetRoot("wal.mark", storage::kInvalidPageId, mark));
  return file_->Sync();
}

StatusOr<tx::Lsn> Database::LoadWalMark() {
  auto aux_or = file_->GetRootAux("wal.mark");
  if (!aux_or.ok()) return static_cast<tx::Lsn>(0);  // no checkpoint yet
  return aux_or.value();
}

Status Database::Backup(const std::string& dest,
                        backup::BackupReport* report) {
  if (!HasFeature("Backup")) {
    return Status::NotSupported("feature Backup not selected");
  }
  FAME_RETURN_IF_ERROR(GuardWrite());
  backup::BackupContext ctx;
  ctx.env = env_;
  ctx.txmgr = txmgr_.get();
  ctx.file = file_.get();
  ctx.db_path = options_.path;
  ctx.wal_path = options_.path + ".wal";
  backup::BackupReport local;
  Status s = backup::RunBackup(ctx, dest, &local);
  if (s.ok()) {
    backup_runs_.fetch_add(1, std::memory_order_relaxed);
    backup_bytes_.fetch_add(local.bytes_copied, std::memory_order_relaxed);
    if (report != nullptr) *report = local;
  }
  return s;
}

Status Database::Restore(osal::Env* env, const std::string& src,
                         const std::string& dest_path,
                         const backup::RestoreOptions& opts,
                         backup::RestoreReport* report) {
  return backup::RunRestore(env != nullptr ? env : osal::GetPosixEnv(), src,
                            dest_path, opts, report);
}

// ------------------------------------------------------------ replication

Status Database::PersistFenceMeta() {
  FAME_RETURN_IF_ERROR(file_->SetRoot(
      "repl.fence", storage::kInvalidPageId,
      (static_cast<uint64_t>(repl_epoch_) << 8) | repl_role_));
  return file_->Sync();
}

Status Database::StartLeader(uint32_t epoch) {
  if (!HasFeature("Replication")) {
    return Status::NotSupported("feature Replication not selected");
  }
  if (epoch < repl_epoch_) {
    return Status::InvalidArgument(
        "fencing epoch cannot move backwards: have " +
        std::to_string(repl_epoch_) + ", asked for " + std::to_string(epoch));
  }
  repl_epoch_ = epoch;
  repl_role_ = kRoleLeader;
  if (txmgr_ != nullptr) txmgr_->SetWalFenceEpoch(epoch);
  return PersistFenceMeta();
}

Status Database::StartFollower(uint32_t epoch) {
  if (!HasFeature("Replication")) {
    return Status::NotSupported("feature Replication not selected");
  }
  if (epoch < repl_epoch_) {
    return Status::InvalidArgument(
        "fencing epoch cannot move backwards: have " +
        std::to_string(repl_epoch_) + ", asked for " + std::to_string(epoch));
  }
  repl_epoch_ = epoch;
  repl_role_ = kRoleFollower;
  if (txmgr_ != nullptr) txmgr_->SetWalFenceEpoch(epoch);
  return PersistFenceMeta();
}

Status Database::Promote(uint32_t epoch) {
  if (!HasFeature("Failover")) {
    return Status::NotSupported("feature Failover not selected");
  }
  if (repl_role_ != kRoleFollower) {
    return Status::InvalidArgument("only a follower can be promoted");
  }
  if (epoch <= repl_epoch_) {
    return Status::InvalidArgument(
        "promotion must advance the fencing epoch past " +
        std::to_string(repl_epoch_));
  }
  // Integrity-gated: a replica with damage must refuse leadership rather
  // than serve (and replicate) divergent data.
  storage::IntegrityReport report;
  Status verify = VerifyIntegrity(&report);
  if (!verify.ok()) {
    return Status::DataLoss("refusing promotion, replica failed its scrub: " +
                            verify.ToString());
  }
  repl_epoch_ = epoch;
  repl_role_ = kRoleLeader;
  if (txmgr_ != nullptr) txmgr_->SetWalFenceEpoch(epoch);
  return PersistFenceMeta();
}

StatusOr<backup::BackupContext> Database::ReplicationSource() {
  if (!HasFeature("Replication")) {
    return Status::NotSupported("feature Replication not selected");
  }
  backup::BackupContext ctx;
  ctx.env = env_;
  ctx.txmgr = txmgr_.get();
  ctx.file = file_.get();
  ctx.db_path = options_.path;
  ctx.wal_path = options_.path + ".wal";
  return ctx;
}

Status Database::Checkpoint() {
  FAME_RETURN_IF_ERROR(GuardWrite());
  if (txmgr_ != nullptr) return NoteWrite(txmgr_->Checkpoint());
  return NoteWrite(buffers_->Checkpoint());
}

// ------------------------------------------------------------ typed records

std::string Database::TableKey(const std::string& table, const Value& pk) {
  std::string key = "t:" + table + "\x01";
  key.append(pk.EncodeKey());
  return key;
}

std::string Database::SchemaKey(const std::string& table) {
  return "s:" + table;
}

Status Database::CreateTable(const Schema& schema) {
  if (schema.columns.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  for (const Column& c : schema.columns) {
    if (c.type == Value::Kind::kInt && !HasFeature("Int-Types")) {
      return Status::NotSupported("feature Int-Types not selected");
    }
    if (c.type == Value::Kind::kString && !HasFeature("String-Types")) {
      return Status::NotSupported("feature String-Types not selected");
    }
    if (c.type == Value::Kind::kBlob && !HasFeature("Blob-Types")) {
      return Status::NotSupported("feature Blob-Types not selected");
    }
  }
  std::string existing;
  if (Get(SchemaKey(schema.table), &existing).ok()) {
    return Status::InvalidArgument("table exists: " + schema.table);
  }
  FAME_RETURN_IF_ERROR(GuardWrite());
  return NoteWrite(PutRecord(SchemaKey(schema.table), schema.Encode()));
}

StatusOr<Schema> Database::GetSchema(const std::string& table) {
  std::string data;
  Status s = Get(SchemaKey(table), &data);
  if (s.IsNotFound()) return Status::NotFound("no table named " + table);
  FAME_RETURN_IF_ERROR(s);
  return Schema::Decode(data);
}

Status Database::InsertRow(const std::string& table, const Row& row) {
  FAME_ASSIGN_OR_RETURN(Schema schema, GetSchema(table));
  FAME_RETURN_IF_ERROR(schema.CheckRow(row));
  if (!has_put_) return Status::NotSupported("feature Put not selected");
  FAME_RETURN_IF_ERROR(GuardWrite());
  return NoteWrite(PutRecord(TableKey(table, row[0]), EncodeRow(row)));
}

StatusOr<Row> Database::FindRow(const std::string& table, const Value& pk) {
  std::string data;
  FAME_RETURN_IF_ERROR(Get(TableKey(table, pk), &data));
  return DecodeRow(data);
}

Status Database::DeleteRow(const std::string& table, const Value& pk) {
  if (!has_remove_) return Status::NotSupported("feature Remove not selected");
  FAME_RETURN_IF_ERROR(GuardWrite());
  return NoteWrite(RemoveRecord(TableKey(table, pk)));
}

Status Database::ScanTable(const std::string& table,
                           const std::function<bool(const Row&)>& fn) {
  std::string prefix = "t:" + table + "\x01";
  Status inner = Status::OK();
  const KvVisitor row_visitor = [&](const Slice&, const Slice& value) {
    auto row_or = DecodeRow(value);
    if (!row_or.ok()) {
      inner = row_or.status();
      return false;
    }
    return fn(row_or.value());
  };
  FAME_RETURN_IF_ERROR(
      mvcc_ != nullptr
          ? engine_.SnapshotScanPrefix(mvcc_->BeginSnapshot(), prefix,
                                       ordered_ != nullptr, row_visitor,
                                       mvcc_.get())
          : engine_.ScanPrefix(prefix, ordered_ != nullptr, row_visitor));
  return inner;
}

}  // namespace fame::core

// Data-driven index selection — the paper's named future work: "knowledge
// about the application domain has to be included in the product derivation
// process ... For example, the data that is to be stored could be
// considered to statically select the optimal index."
//
// The advisor maps an application's *workload profile* (expected dataset
// size, point/range/write mix) onto the Index alternative of the Figure 2
// model (B+-Tree vs List) using a per-operation cost model. The model can
// be used with documented defaults or *calibrated*: Calibrate() actually
// runs both index structures on a synthetic dataset in a MemEnv and fits
// the parameters from measurements — measurement-backed derivation, in the
// spirit of the Feedback Approach.
#ifndef FAME_CORE_INDEX_ADVISOR_H_
#define FAME_CORE_INDEX_ADVISOR_H_

#include <string>

#include "common/status.h"
#include "featuremodel/model.h"

namespace fame::core {

/// What the application will do with the store.
struct WorkloadProfile {
  uint64_t expected_entries = 1000;  ///< dataset size at steady state
  double point_lookup_fraction = 0.5;  ///< share of operations that are gets
  double range_scan_fraction = 0.0;    ///< share that are ordered range scans
  double write_fraction = 0.5;         ///< share that are puts/removes
  bool requires_order = false;         ///< ordered iteration is mandatory
};

/// Per-operation cost parameters (arbitrary but consistent units;
/// microseconds when calibrated).
struct IndexCostModel {
  // B+-tree: cost = base + per_level * ceil(log_fanout(n)).
  double btree_base = 0.4;
  double btree_per_level = 0.25;
  double btree_fanout = 64;
  double btree_insert_factor = 1.6;  ///< writes touch more than reads
  // List: cost = per_entry * n/2 for lookups, per_entry * n for misses;
  // inserts append after a duplicate scan.
  double list_per_entry = 0.01;
};

/// The advisor's verdict.
struct IndexRecommendation {
  std::string feature;       ///< "B+-Tree" or "List" (Figure 2 names)
  double btree_cost = 0;     ///< estimated cost per operation
  double list_cost = 0;
  std::string rationale;     ///< one-line human-readable explanation
};

/// Estimates per-operation costs for `profile` under `model` and picks the
/// cheaper index; order requirements force the B+-tree.
IndexRecommendation AdviseIndex(const WorkloadProfile& profile,
                                const IndexCostModel& model = {});

/// Measures both index structures on a `sample_size`-entry synthetic
/// dataset (in-memory) and returns a cost model fitted from the
/// measurements. `sample_size` is clamped to [256, 100000].
StatusOr<IndexCostModel> Calibrate(uint64_t sample_size = 4096);

/// Applies a recommendation to a partial FAME-DBMS configuration: selects
/// the recommended Index alternative (propagation excludes the other).
Status ApplyRecommendation(const IndexRecommendation& rec,
                           fm::Configuration* config);

}  // namespace fame::core

#endif  // FAME_CORE_INDEX_ADVISOR_H_

// [feature Replication] Leader side of WAL shipping. One Leader instance
// serves one follower link; a node with several followers runs several
// Leaders over the same engine handles.
#ifndef FAME_REPL_LEADER_H_
#define FAME_REPL_LEADER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/retry.h"
#include "core/backup.h"
#include "repl/repl.h"

namespace fame::repl {

struct LeaderOptions {
  /// Payload bytes per kWal / kSnapshotFile chunk.
  uint64_t chunk_bytes = 4096;
  /// Per-send retry with a total deadline budget; defaults to jittered
  /// backoff under a 200ms budget on a steady clock. Tests substitute a
  /// fake clock / zero budget to stay deterministic.
  DeadlineRetryPolicy send_retry;
  /// Un-acked live WAL bytes the leader will pin (recycle hold) for a
  /// stalled follower before shedding the hold and letting checkpoints
  /// recycle again — the follower then re-enters through the archive
  /// splice or a fresh bootstrap. Mirrors the archive-stall semantics.
  uint64_t max_hold_bytes = 1 << 20;
  /// Archived-segment namespace for catch-up splicing; defaults to the
  /// engine's "<wal>.arc." convention.
  std::string archive_prefix;
  /// Invoked at the end of every SyncOnce with (lag_bytes, lag_epochs);
  /// the Database glue points this at its lag gauges.
  std::function<void(uint64_t, uint64_t)> lag_sink;
};

/// Ships the leader's WAL to one follower. Single-threaded: call SyncOnce
/// from the replication tick (tests call it directly). The leader keeps
/// committing regardless of follower health — shipping is asynchronous by
/// construction and degradation is bounded by `max_hold_bytes`.
class Leader {
 public:
  /// `source` holds borrowed live handles of the open leader engine
  /// (Database::ReplicationSource or StaticEngine::ReplicationSource);
  /// `epoch` is the leader's fencing epoch (already stamped into the
  /// engine via StartLeader).
  Leader(core::backup::BackupContext source, uint32_t epoch,
         Transport* transport, LeaderOptions opts = {});

  /// One shipping round: bootstrap / archive-splice if the follower is
  /// behind the retained log start, then ship live segment bytes up to the
  /// durable end, then announce seals for fully-acked sealed segments.
  /// Transient link errors stall the round (retention hold engaged, lag
  /// grows, commits unaffected); a fencing rejection (Aborted) means this
  /// leader was deposed and must stop.
  Status SyncOnce();

  uint64_t acked_end() const { return acked_end_; }
  uint64_t lag_bytes() const { return lag_bytes_; }
  uint64_t lag_epochs() const { return rounds_started_ - rounds_acked_; }
  bool follower_stalled() const { return stalled_; }
  bool holding_retention() const { return holding_; }
  /// The hold was shed (budget exceeded / disk full); the follower will
  /// catch up through the archive or a fresh bootstrap.
  bool hold_shed() const { return shed_; }
  /// A fencing rejection arrived: a newer leader exists.
  bool deposed() const { return deposed_; }

 private:
  /// A shippable segment view: live chain entry or archived file.
  struct SegView {
    std::string file;
    uint32_t seq = 0;
    uint64_t base = 0;
    uint64_t payload = 0;
    uint32_t epoch = 0;
  };

  StatusOr<Ack> SendChecked(const Message& m);
  Status ShipRound();
  /// Ships + seals the live chain up to `durable`.
  Status ShipLive(uint64_t durable);
  Status ShipSegments(const std::vector<SegView>& views, uint64_t limit);
  /// Announces seals for fully-acked segments; `all_sealed` covers archive
  /// splices (every view is sealed), otherwise the last view is the active
  /// segment and is skipped.
  Status SealSegments(const std::vector<SegView>& views, bool all_sealed);
  Status Bootstrap();
  Status CollectArchived(std::vector<SegView>* out) const;
  void NoteStall(const Status& cause);
  void NoteCaughtUp();

  core::backup::BackupContext ctx_;
  const uint32_t epoch_;
  Transport* transport_;
  LeaderOptions opts_;

  uint64_t acked_end_ = 0;
  uint64_t lag_bytes_ = 0;
  uint64_t rounds_started_ = 0;
  uint64_t rounds_acked_ = 0;
  bool hello_sent_ = false;
  bool stalled_ = false;
  bool holding_ = false;
  bool shed_ = false;
  bool deposed_ = false;
  bool bootstrapped_once_ = false;
  /// Last ack's view of whether the follower has a materialized database;
  /// a baseline-less follower is bootstrapped even at zero LSN lag.
  bool follower_has_db_ = false;
  std::set<uint32_t> sealed_sent_;
};

}  // namespace fame::repl

#endif  // FAME_REPL_LEADER_H_

// Fence sidecar IO: the durable replication identity of a node, kept in a
// small CRC-sealed text file next to the database so tooling (fame repl
// status, fame_check) can read the role and epoch without opening the
// engine. The PageFile meta carries a second copy ("repl.fence" root) that
// fences writers even when the sidecar is lost; the sidecar is the
// tooling-facing one.
#include "repl/repl.h"

#include <cstdio>

#include "common/crc32.h"
#include "common/stringutil.h"

namespace fame::repl {

namespace {
constexpr char kMagicLine[] = "fame-fence 1";

const char* RoleName(Role r) {
  switch (r) {
    case Role::kLeader:
      return "leader";
    case Role::kFollower:
      return "follower";
    case Role::kNone:
      break;
  }
  return "none";
}
}  // namespace

StatusOr<FenceState> LoadFence(osal::Env* env, const std::string& db_path) {
  const std::string path = db_path + kFenceSuffix;
  if (!env->FileExists(path)) {
    return Status::NotFound("no fence sidecar at " + path);
  }
  std::string contents;
  FAME_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  // Last line is "crc <masked crc of everything before it>".
  size_t crc_pos = contents.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      contents[crc_pos - 1] != '\n') {
    return Status::Corruption("fence sidecar missing crc seal: " + path);
  }
  uint32_t want = 0;
  if (std::sscanf(contents.c_str() + crc_pos, "crc %u", &want) != 1 ||
      want != MaskCrc(Crc32(contents.data(), crc_pos))) {
    return Status::Corruption("fence sidecar crc mismatch: " + path);
  }
  FenceState f;
  unsigned epoch = 0;
  char role[16] = {0};
  unsigned divergent = 0;
  if (std::sscanf(contents.c_str(), "fame-fence 1\nepoch %u\nrole %15s\n"
                  "divergent %u\n", &epoch, role, &divergent) != 3) {
    return Status::Corruption("fence sidecar malformed: " + path);
  }
  f.epoch = epoch;
  f.divergent = divergent != 0;
  std::string r = role;
  if (r == "leader") {
    f.role = Role::kLeader;
  } else if (r == "follower") {
    f.role = Role::kFollower;
  } else {
    f.role = Role::kNone;
  }
  return f;
}

Status StoreFence(osal::Env* env, const std::string& db_path,
                  const FenceState& fence) {
  std::string body = StringPrintf("%s\nepoch %u\nrole %s\ndivergent %u\n",
                                  kMagicLine, fence.epoch,
                                  RoleName(fence.role),
                                  fence.divergent ? 1u : 0u);
  body += StringPrintf("crc %u\n", MaskCrc(Crc32(body.data(), body.size())));
  return env->WriteStringToFile(db_path + kFenceSuffix, body);
}

}  // namespace fame::repl

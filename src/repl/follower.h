// [feature Replication] Follower side of WAL shipping, and the promotion
// ceremony. The follower's apply path is deliberately not new code: staged
// segment bytes are applied by *reopening the engine*, which replays them
// through the ordinary crash-recovery path (LogManager::Replay into the
// ApplyTarget, then VerifyIntegrity). A crash mid-apply is therefore a
// crash mid-recovery — a case the engine already survives idempotently.
#ifndef FAME_REPL_FOLLOWER_H_
#define FAME_REPL_FOLLOWER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/database.h"
#include "repl/repl.h"

namespace fame::repl {

/// Receives the leader's stream into local segment files and periodically
/// applies them by reopening its engine. Create with Attach; single-
/// threaded like the engines it wraps.
class Follower final : public Peer {
 public:
  struct Options {
    /// Template for the engine reopen in Sweep(): features and tuning of
    /// the follower's product. path/env are overridden; the Transaction,
    /// Backup, Verify, and Replication features are force-added (a
    /// follower without them could not replay or scrub what it receives).
    core::DbOptions base;
  };

  /// Binds a follower to `db_path` (creating its fence sidecar when absent)
  /// and recovers the resume point from the staged segments on disk.
  static StatusOr<std::unique_ptr<Follower>> Attach(osal::Env* env,
                                                    std::string db_path,
                                                    Options opts = {});

  /// Peer: stages one message. Stale-epoch senders get Aborted ("fenced"),
  /// duplicates and gaps are answered with the current contiguous end so
  /// the leader resumes correctly, CRC-damaged chunks get a transient
  /// error, and a failed seal cross-check marks the node divergent on disk
  /// and returns DataLoss.
  StatusOr<Ack> Deliver(const Message& m) override;

  /// Applies everything staged so far: syncs the staged files, reopens the
  /// engine (crash-recovery replay is the apply), verifies integrity, and
  /// recomputes the resume point. DataLoss when the node is (or becomes)
  /// divergent.
  Status Sweep();

  /// Contiguous WAL bytes staged (the resume point acked to the leader).
  uint64_t end_lsn() const { return wal_end_; }
  const FenceState& fence() const { return fence_; }
  bool divergent() const { return fence_.divergent; }

 private:
  Follower(osal::Env* env, std::string db_path, Options opts);

  Status DeliverWal(const Message& m);
  Status DeliverSeal(const Message& m);
  Status DeliverSnapshotFile(const Message& m, Ack* ack);
  Status DeliverSnapshotDone();
  /// Raises the fence to `epoch` (persisting it) if higher.
  Status RaiseFence(uint32_t epoch);
  Status MarkDivergent(const std::string& why);
  /// Recomputes wal_end_ from the staged segment files.
  Status ScanStagedWal();
  /// Deletes the page file and every staged segment (epoch-change reset /
  /// bootstrap replace).
  Status ResetDataFiles();
  Status ClearSnapshotStaging();
  std::string SegmentName(uint32_t seq) const;
  std::string SnapPrefix() const { return db_path_ + ".snap"; }

  osal::Env* env_;
  const std::string db_path_;
  const std::string wal_path_;
  Options opts_;
  FenceState fence_;
  uint64_t wal_end_ = 0;
  bool snapshot_active_ = false;
  /// Contiguous bytes staged per bootstrap artifact (keyed by suffix).
  std::map<std::string, uint64_t> snap_received_;
};

/// Epoch-fenced failover: promotes the follower at `db_path` to leader.
/// Refuses (DataLoss) when the node is marked divergent; otherwise opens
/// the engine, runs the integrity-gated Database::Promote under epoch + 1,
/// and rewrites the fence sidecar. Returns the new epoch. `base` carries
/// the product's features/tuning like Follower::Options.
StatusOr<uint32_t> PromoteFollower(osal::Env* env, const std::string& db_path,
                                   const core::DbOptions& base);

/// Force-adds the features a replication node cannot function without.
void AddReplicationFeatures(std::vector<std::string>* features);

}  // namespace fame::repl

#endif  // FAME_REPL_FOLLOWER_H_

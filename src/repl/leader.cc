#include "repl/leader.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/crc32.h"
#include "common/stringutil.h"
#include "obs/obs.h"
#include "tx/txmgr.h"
#include "tx/wal_segments.h"
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::repl {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status ReadExactAt(osal::RandomAccessFile* f, uint64_t off, uint64_t n,
                   char* dst) {
  Slice result;
  FAME_RETURN_IF_ERROR(f->Read(off, n, dst, &result));
  if (result.size() != n) return Status::IOError("short replication read");
  return Status::OK();
}

}  // namespace

Leader::Leader(core::backup::BackupContext source, uint32_t epoch,
               Transport* transport, LeaderOptions opts)
    : ctx_(std::move(source)),
      epoch_(epoch),
      transport_(transport),
      opts_(std::move(opts)) {
  if (opts_.chunk_bytes == 0) opts_.chunk_bytes = 4096;
  if (opts_.send_retry.now_nanos == nullptr &&
      opts_.send_retry.budget_nanos == 0 &&
      opts_.send_retry.base.max_attempts == 3 &&
      opts_.send_retry.base.backoff == nullptr) {
    // Untouched default: jittered backoff under a 200ms total budget.
    opts_.send_retry.base = HostIoRetryPolicy();
    opts_.send_retry.budget_nanos = 200ull * 1000 * 1000;
    opts_.send_retry.now_nanos = &SteadyNowNanos;
  }
  if (opts_.archive_prefix.empty()) {
    opts_.archive_prefix = ctx_.wal_path + ".arc.";
  }
}

StatusOr<Ack> Leader::SendChecked(const Message& m) {
  Ack ack;
  Status s = RetryOnTransientDeadline(opts_.send_retry, [&]() -> Status {
    auto ack_or = transport_->Send(m);
    if (!ack_or.ok()) return ack_or.status();
    ack = std::move(ack_or).value();
    return Status::OK();
  });
  if (!s.ok()) {
    if (s.IsAborted()) deposed_ = true;  // follower rejected our epoch
    return s;
  }
  if (ack.epoch > epoch_) {
    deposed_ = true;
    return Status::Aborted(StringPrintf(
        "fenced: follower is at epoch %u, this leader at %u", ack.epoch,
        epoch_));
  }
  follower_has_db_ = ack.has_db;
  return ack;
}

Status Leader::SyncOnce() {
  if (deposed_) {
    return Status::Aborted("fenced: this leader was deposed");
  }
  ++rounds_started_;
  // One ship round is one replication span: chunk sends, seals, and any
  // bootstrap it triggers all parent under it.
  FAME_OBS_TRACE(obs::ScopedOpSpan span(obs::TraceOp::kReplShip);)
  Status s = ShipRound();
  FAME_OBS_TRACE(span.set_error(!s.ok());)
  const uint64_t durable = ctx_.txmgr->durable_lsn();
  lag_bytes_ = durable > acked_end_ ? durable - acked_end_ : 0;
  if (s.ok() && lag_bytes_ == 0) {
    rounds_acked_ = rounds_started_;
    NoteCaughtUp();
  } else if (!s.ok() && !s.IsAborted() && IsTransient(s)) {
    NoteStall(s);
  }
  if (opts_.lag_sink) opts_.lag_sink(lag_bytes_, lag_epochs());
  return s;
}

Status Leader::ShipRound() {
  if (!hello_sent_) {
    Message hello;
    hello.kind = Message::kHello;
    hello.epoch = epoch_;
    // The hello carries our durable end: a follower whose log runs past it
    // (possible only across an epoch change) resets and re-bootstraps —
    // its surplus suffix was never durable under this leadership.
    hello.total = ctx_.txmgr->durable_lsn();
    FAME_ASSIGN_OR_RETURN(Ack a, SendChecked(hello));
    acked_end_ = a.end_lsn;  // resume point from the follower's disk
    hello_sent_ = true;
  }

  const tx::WalSegmentStats stats = ctx_.txmgr->wal_segment_stats();
  const uint64_t durable = ctx_.txmgr->durable_lsn();

  // A follower with no database and no staged WAL needs a snapshot
  // baseline: the retained chain only encodes changes made after it was
  // created, and the leader's state at the chain's base may live in
  // checkpointed pages (a migrated legacy log starts an empty chain).
  const bool needs_baseline =
      !follower_has_db_ && acked_end_ == 0 && !bootstrapped_once_;
  if (acked_end_ < stats.start_lsn || needs_baseline) {
    // The follower is behind the retained start of the live chain. Splice
    // archived segments when they cover the gap (Pitr products); otherwise
    // fall back to a full snapshot bootstrap. A baseline-less follower
    // always bootstraps: no WAL suffix can stand in for the pages.
    std::vector<SegView> splice;
    bool spliceable = false;
    if (!needs_baseline) {
      std::vector<SegView> archived;
      FAME_RETURN_IF_ERROR(CollectArchived(&archived));
      uint64_t covered_to = acked_end_;
      bool contiguous = true;
      for (const SegView& v : archived) {
        if (v.base + v.payload <= acked_end_) continue;
        if (v.base >= stats.start_lsn) break;
        if (v.base > covered_to) {
          contiguous = false;
          break;
        }
        splice.push_back(v);
        covered_to = v.base + v.payload;
      }
      spliceable =
          contiguous && covered_to >= stats.start_lsn && !splice.empty();
    }
    Status catchup;
    if (spliceable) {
      catchup = ShipSegments(splice, stats.start_lsn);
      if (catchup.ok()) catchup = SealSegments(splice, /*all_sealed=*/true);
    }
    if (!spliceable || catchup.IsDataLoss()) {
      // No archive coverage — or the follower flagged divergence on the
      // spliced bytes. Either way the snapshot is the fresh baseline.
      FAME_RETURN_IF_ERROR(Bootstrap());
    } else {
      FAME_RETURN_IF_ERROR(catchup);
    }
  }

  Status live = ShipLive(durable);
  if (live.IsDataLoss()) {
    // The follower declared itself divergent (its staged bytes or its
    // scrub disagreed with this leader). It refuses WAL but accepts a
    // snapshot, and a completed bootstrap clears the mark on its side:
    // re-baseline it, then re-ship the live tail.
    FAME_RETURN_IF_ERROR(Bootstrap());
    live = ShipLive(durable);
  }
  return live;
}

Status Leader::ShipLive(uint64_t durable) {
  std::vector<tx::WalSegmentInfo> infos;
  FAME_RETURN_IF_ERROR(ctx_.txmgr->ListWalSegments(&infos));
  std::vector<SegView> live;
  live.reserve(infos.size());
  for (const tx::WalSegmentInfo& i : infos) {
    live.push_back({i.file, i.seq, i.base_lsn, i.payload_bytes, i.epoch});
  }
  FAME_RETURN_IF_ERROR(ShipSegments(live, durable));
  return SealSegments(live, /*all_sealed=*/false);
}

Status Leader::ShipSegments(const std::vector<SegView>& views,
                            uint64_t limit) {
  for (int pass = 0; pass < 4; ++pass) {
    bool rewound = false;
    for (const SegView& v : views) {
      const uint64_t seg_end = std::min(v.base + v.payload, limit);
      if (seg_end <= acked_end_) continue;
      if (v.base > acked_end_) {
        // The resume point fell below this chain (segments were recycled
        // under the follower). The next round takes the bootstrap path.
        return Status::OK();
      }
      auto f_or = ctx_.env->OpenFile(v.file, /*create=*/false);
      FAME_RETURN_IF_ERROR(f_or.status());
      std::unique_ptr<osal::RandomAccessFile> f = std::move(f_or).value();
      while (acked_end_ < seg_end) {
        const uint64_t n = std::min(opts_.chunk_bytes, seg_end - acked_end_);
        std::string buf(n, '\0');
        FAME_RETURN_IF_ERROR(ReadExactAt(
            f.get(), tx::seg::kHeaderSize + (acked_end_ - v.base), n,
            buf.data()));
        Message m;
        m.kind = Message::kWal;
        m.epoch = epoch_;
        m.seq = v.seq;
        m.base_lsn = v.base;
        m.seg_epoch = v.epoch;
        m.lsn = acked_end_;
        m.crc = Crc32(buf.data(), buf.size());
        m.payload = std::move(buf);
        FAME_ASSIGN_OR_RETURN(Ack a, SendChecked(m));
        if (a.end_lsn != acked_end_ + n) {
          // Short ack: the follower lost staged bytes (crash) or saw the
          // chunks out of order — rewind to what it holds and re-ship.
          // A long ack (duplicate delivery on reattach) just skips ahead.
          acked_end_ = a.end_lsn;
          rewound = true;
          break;
        }
        acked_end_ = a.end_lsn;
      }
      if (rewound) break;
    }
    if (!rewound) return Status::OK();
  }
  return Status::IOError("follower kept rewinding; giving up this round");
}

Status Leader::SealSegments(const std::vector<SegView>& views,
                            bool all_sealed) {
  for (size_t i = 0; i < views.size(); ++i) {
    if (!all_sealed && i + 1 == views.size()) break;  // active segment
    const SegView& v = views[i];
    if (v.base + v.payload > acked_end_) break;  // not fully shipped yet
    if (sealed_sent_.count(v.seq) != 0) continue;
    std::string payload(v.payload, '\0');
    if (v.payload > 0) {
      auto f_or = ctx_.env->OpenFile(v.file, /*create=*/false);
      FAME_RETURN_IF_ERROR(f_or.status());
      FAME_RETURN_IF_ERROR(ReadExactAt(f_or.value().get(),
                                       tx::seg::kHeaderSize, v.payload,
                                       payload.data()));
    }
    Message m;
    m.kind = Message::kSeal;
    m.epoch = epoch_;
    m.seq = v.seq;
    m.base_lsn = v.base;
    m.seg_epoch = v.epoch;
    m.total = v.payload;
    m.crc = Crc32(payload.data(), payload.size());
    FAME_ASSIGN_OR_RETURN(Ack a, SendChecked(m));
    (void)a;
    sealed_sent_.insert(v.seq);
  }
  return Status::OK();
}

Status Leader::Bootstrap() {
  const std::string prefix = ctx_.db_path + ".replship";
  std::vector<std::string> stale;
  (void)ctx_.env->ListFiles(prefix, &stale);
  for (const std::string& f : stale) {
    FAME_RETURN_IF_ERROR(ctx_.env->DeleteFile(f));
  }
  core::backup::BackupReport report;
  FAME_RETURN_IF_ERROR(core::backup::RunBackup(ctx_, prefix, &report));

  Message begin;
  begin.kind = Message::kSnapshotBegin;
  begin.epoch = epoch_;
  {
    FAME_ASSIGN_OR_RETURN(Ack a, SendChecked(begin));
    (void)a;
  }

  std::vector<std::string> files;
  FAME_RETURN_IF_ERROR(ctx_.env->ListFiles(prefix, &files));
  for (const std::string& file : files) {
    const std::string name = file.substr(prefix.size());
    auto f_or = ctx_.env->OpenFile(file, /*create=*/false);
    FAME_RETURN_IF_ERROR(f_or.status());
    std::unique_ptr<osal::RandomAccessFile> f = std::move(f_or).value();
    auto size_or = f->Size();
    FAME_RETURN_IF_ERROR(size_or.status());
    const uint64_t size = size_or.value();
    uint64_t pos = 0;
    uint32_t stagnant = 0;
    do {
      const uint64_t n = std::min(opts_.chunk_bytes, size - pos);
      std::string buf(n, '\0');
      if (n > 0) FAME_RETURN_IF_ERROR(ReadExactAt(f.get(), pos, n, buf.data()));
      Message m;
      m.kind = Message::kSnapshotFile;
      m.epoch = epoch_;
      m.name = name;
      m.offset = pos;
      m.total = size;
      m.crc = Crc32(buf.data(), buf.size());
      m.payload = std::move(buf);
      FAME_ASSIGN_OR_RETURN(Ack a, SendChecked(m));
      // The follower reports its contiguous prefix of this artifact; jump
      // there (resume past what it already has, rewind over what it lost).
      if (a.snapshot_bytes <= pos && n > 0) {
        if (++stagnant > 8) {
          return Status::IOError("bootstrap made no progress on " + file);
        }
      } else {
        stagnant = 0;
      }
      pos = a.snapshot_bytes;
    } while (pos < size);
  }

  Message done;
  done.kind = Message::kSnapshotDone;
  done.epoch = epoch_;
  FAME_ASSIGN_OR_RETURN(Ack a, SendChecked(done));
  acked_end_ = a.end_lsn;

  files.clear();
  (void)ctx_.env->ListFiles(prefix, &files);
  for (const std::string& f : files) (void)ctx_.env->DeleteFile(f);
  bootstrapped_once_ = true;
  return Status::OK();
}

Status Leader::CollectArchived(std::vector<SegView>* out) const {
  std::vector<std::string> names;
  if (!ctx_.env->ListFiles(opts_.archive_prefix, &names).ok()) {
    return Status::OK();
  }
  for (const std::string& name : names) {
    auto f_or = ctx_.env->OpenFile(name, /*create=*/false);
    if (!f_or.ok()) continue;
    auto size_or = f_or.value()->Size();
    if (!size_or.ok() || size_or.value() < tx::seg::kHeaderSize) continue;
    char hdr[tx::seg::kHeaderSize];
    if (!ReadExactAt(f_or.value().get(), 0, tx::seg::kHeaderSize, hdr).ok()) {
      continue;
    }
    uint64_t base = 0;
    uint32_t seq = 0;
    uint32_t seg_epoch = 0;
    if (!tx::seg::DecodeSegmentHeader(hdr, tx::seg::kHeaderSize, &base, &seq,
                                      &seg_epoch)) {
      continue;
    }
    out->push_back(
        {name, seq, base, size_or.value() - tx::seg::kHeaderSize, seg_epoch});
  }
  std::sort(out->begin(), out->end(),
            [](const SegView& a, const SegView& b) { return a.base < b.base; });
  return Status::OK();
}

void Leader::NoteStall(const Status& cause) {
  stalled_ = true;
  if (!holding_ && !shed_) {
    // Pin the chain so the follower can resume from live segments instead
    // of paying for a bootstrap — bounded below.
    ctx_.txmgr->PauseWalRecycle(true);
    holding_ = true;
  }
  const uint64_t durable = ctx_.txmgr->durable_lsn();
  const uint64_t held = durable > acked_end_ ? durable - acked_end_ : 0;
  const tx::WalSegmentStats stats = ctx_.txmgr->wal_segment_stats();
  if (holding_ &&
      (held > opts_.max_hold_bytes || IsDiskFull(cause) ||
       stats.archive_stalled)) {
    // Shed the hold: the leader's durability beats the follower's
    // convenience. Checkpoints recycle again; the follower re-enters
    // through the archive splice or a fresh bootstrap.
    ctx_.txmgr->PauseWalRecycle(false);
    holding_ = false;
    shed_ = true;
  }
}

void Leader::NoteCaughtUp() {
  stalled_ = false;
  shed_ = false;
  if (holding_) {
    ctx_.txmgr->PauseWalRecycle(false);
    holding_ = false;
  }
}

}  // namespace fame::repl

// Deterministic in-process transport. Fault semantics:
//   drop      — the message never reaches the peer; the sender sees a
//               transient IOError, exactly like a send timeout.
//   duplicate — delivered twice back to back; the second ack wins (acks are
//               idempotent, so both describe the same follower state).
//   delay     — held back and delivered *after* the next send, modelling
//               network reordering; the sender sees a timeout for the held
//               message (it will retransmit, adding duplication on top).
//   partition — the link is down: transient IOError on every send until the
//               plan is healed.
#include "repl/repl.h"

namespace fame::repl {

StatusOr<Ack> InProcessTransport::Send(const Message& m) {
  osal::LinkFaults::Plan plan;
  if (faults_ != nullptr) plan = faults_->Next();
  if (plan.partitioned) {
    return Status::IOError("repl link partitioned");
  }
  if (plan.drop) {
    return Status::IOError("repl send timed out (dropped)");
  }
  if (plan.delay) {
    held_.push_back(m);
    return Status::IOError("repl send timed out (delayed in flight)");
  }
  auto ack_or = peer_->Deliver(m);
  if (ack_or.ok() && plan.duplicate) {
    ack_or = peer_->Deliver(m);
  }
  // Flush delayed messages *after* the current one: they arrive out of
  // order. Their acks are stale by construction and are discarded; the
  // sender already treated them as timed out and will have retransmitted.
  if (!held_.empty()) {
    std::vector<Message> held;
    held.swap(held_);
    for (const Message& h : held) {
      (void)peer_->Deliver(h);
    }
  }
  return ack_or;
}

}  // namespace fame::repl

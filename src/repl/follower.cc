#include "repl/follower.h"

#include <algorithm>
#include <vector>

#include "common/crc32.h"
#include "common/stringutil.h"
#include "obs/obs.h"
#include "tx/wal_segments.h"
#if FAME_OBS_ENABLED
#include "obs/blackbox.h"
#endif
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::repl {

namespace {

Status ReadExactAt(osal::RandomAccessFile* f, uint64_t off, uint64_t n,
                   char* dst) {
  Slice result;
  FAME_RETURN_IF_ERROR(f->Read(off, n, dst, &result));
  if (result.size() != n) return Status::IOError("short replication read");
  return Status::OK();
}

}  // namespace

void AddReplicationFeatures(std::vector<std::string>* features) {
  for (const char* needed :
       {"Transaction", "WAL-Redo", "Backup", "Verify", "Replication"}) {
    if (std::find(features->begin(), features->end(), needed) ==
        features->end()) {
      features->push_back(needed);
    }
  }
}

Follower::Follower(osal::Env* env, std::string db_path, Options opts)
    : env_(env),
      db_path_(std::move(db_path)),
      wal_path_(db_path_ + ".wal"),
      opts_(std::move(opts)) {}

StatusOr<std::unique_ptr<Follower>> Follower::Attach(osal::Env* env,
                                                     std::string db_path,
                                                     Options opts) {
  std::unique_ptr<Follower> f(
      new Follower(env, std::move(db_path), std::move(opts)));
  auto fence_or = LoadFence(env, f->db_path_);
  if (fence_or.ok()) {
    f->fence_ = fence_or.value();
    if (f->fence_.role == Role::kLeader) {
      return Status::InvalidArgument(
          "refusing to attach a leader as a follower: " + f->db_path_);
    }
  } else if (fence_or.status().IsNotFound()) {
    f->fence_.role = Role::kFollower;
    FAME_RETURN_IF_ERROR(StoreFence(env, f->db_path_, f->fence_));
  } else {
    return fence_or.status();
  }
  FAME_RETURN_IF_ERROR(f->ScanStagedWal());
  return f;
}

std::string Follower::SegmentName(uint32_t seq) const {
  return wal_path_ + "." + tx::seg::SegmentSuffix(seq);
}

Status Follower::RaiseFence(uint32_t epoch) {
  if (epoch <= fence_.epoch) return Status::OK();
  fence_.epoch = epoch;
  fence_.role = Role::kFollower;
  return StoreFence(env_, db_path_, fence_);
}

Status Follower::MarkDivergent(const std::string& why) {
  fence_.divergent = true;
  // Persist first: a divergent node must refuse promotion even after a
  // crash right here.
  FAME_RETURN_IF_ERROR(StoreFence(env_, db_path_, fence_));
  // Flight recorder: divergence is the replication black-box moment. The
  // follower has no Database handle, so the one-shot writer captures the
  // trigger + any active trace spans (best-effort — the DataLoss verdict
  // below must surface regardless).
  FAME_OBS(if (std::find(opts_.base.features.begin(),
                         opts_.base.features.end(),
                         "FlightRecorder") != opts_.base.features.end()) {
    std::string features;
    for (const std::string& f : opts_.base.features) {
      if (!features.empty()) features += ",";
      features += f;
    }
    (void)obs::PersistBlackBox(env_, db_path_,
                               "replication divergence: " + why, features,
                               /*errors_text=*/"", /*metrics_text=*/"");
  })
  return Status::DataLoss("follower diverged: " + why);
}

StatusOr<Ack> Follower::Deliver(const Message& m) {
  if (m.epoch < fence_.epoch) {
    return Status::Aborted(StringPrintf(
        "fenced: sender epoch %u is stale (follower fence at %u)", m.epoch,
        fence_.epoch));
  }
  const bool epoch_raised = m.epoch > fence_.epoch;
  FAME_RETURN_IF_ERROR(RaiseFence(m.epoch));

  Ack ack;
  switch (m.kind) {
    case Message::kHello:
      // Across an epoch change, a log running past the new leader's
      // durable end holds a suffix that was never durable under the new
      // leadership — and may already be applied to our pages. Redo-only
      // recovery cannot un-apply it, so reset entirely and let the leader
      // bootstrap us fresh.
      if (epoch_raised && wal_end_ > m.total) {
        FAME_RETURN_IF_ERROR(ResetDataFiles());
        FAME_RETURN_IF_ERROR(ClearSnapshotStaging());
      }
      break;
    case Message::kWal:
      if (fence_.divergent) {
        return Status::DataLoss("follower diverged; re-bootstrap required");
      }
      FAME_RETURN_IF_ERROR(DeliverWal(m));
      break;
    case Message::kSeal:
      if (fence_.divergent) {
        return Status::DataLoss("follower diverged; re-bootstrap required");
      }
      FAME_RETURN_IF_ERROR(DeliverSeal(m));
      break;
    case Message::kSnapshotBegin:
      FAME_RETURN_IF_ERROR(ClearSnapshotStaging());
      snapshot_active_ = true;
      break;
    case Message::kSnapshotFile:
      FAME_RETURN_IF_ERROR(DeliverSnapshotFile(m, &ack));
      break;
    case Message::kSnapshotDone:
      FAME_RETURN_IF_ERROR(DeliverSnapshotDone());
      break;
  }
  ack.epoch = fence_.epoch;
  ack.end_lsn = wal_end_;
  ack.has_db = env_->FileExists(db_path_);
  return ack;
}

Status Follower::DeliverWal(const Message& m) {
  if (Crc32(m.payload.data(), m.payload.size()) != m.crc) {
    // Damaged in flight: transient, the sender retries the chunk.
    return Status::IOError("repl chunk crc mismatch in flight");
  }
  const uint64_t chunk_end = m.lsn + m.payload.size();
  if (chunk_end <= wal_end_) return Status::OK();  // duplicate delivery
  if (m.lsn > wal_end_) return Status::OK();  // gap (reorder); ack rewinds
  const std::string name = SegmentName(m.seq);
  const bool fresh = !env_->FileExists(name);
  auto f_or = env_->OpenFile(name, /*create=*/true);
  FAME_RETURN_IF_ERROR(f_or.status());
  std::unique_ptr<osal::RandomAccessFile> f = std::move(f_or).value();
  if (fresh) {
    // Recreate the header byte-identically to the leader's: same base,
    // sequence, and creation epoch.
    FAME_RETURN_IF_ERROR(f->Write(
        0, tx::seg::EncodeSegmentHeader(m.base_lsn, m.seq, m.seg_epoch)));
  }
  const uint64_t skip = wal_end_ - m.lsn;  // overlap already staged
  Slice body(m.payload.data() + skip, m.payload.size() - skip);
  FAME_RETURN_IF_ERROR(
      f->Write(tx::seg::kHeaderSize + (wal_end_ - m.base_lsn), body));
  // Per-chunk durability keeps the acked prefix honest: what we ack
  // survives our own crash, so the leader's resume point never lies.
  FAME_RETURN_IF_ERROR(f->Sync());
  wal_end_ = chunk_end;
  return Status::OK();
}

Status Follower::DeliverSeal(const Message& m) {
  const std::string name = SegmentName(m.seq);
  if (!env_->FileExists(name)) {
    // Already applied, verified, and recycled by an earlier sweep.
    return Status::OK();
  }
  auto f_or = env_->OpenFile(name, /*create=*/false);
  FAME_RETURN_IF_ERROR(f_or.status());
  auto size_or = f_or.value()->Size();
  FAME_RETURN_IF_ERROR(size_or.status());
  if (size_or.value() < tx::seg::kHeaderSize + m.total) {
    return MarkDivergent(StringPrintf(
        "segment %u shorter than the leader's seal (%llu < %llu)", m.seq,
        static_cast<unsigned long long>(size_or.value()),
        static_cast<unsigned long long>(tx::seg::kHeaderSize + m.total)));
  }
  std::string payload(m.total, '\0');
  if (m.total > 0) {
    FAME_RETURN_IF_ERROR(ReadExactAt(f_or.value().get(),
                                     tx::seg::kHeaderSize, m.total,
                                     payload.data()));
  }
  if (Crc32(payload.data(), payload.size()) != m.crc) {
    return MarkDivergent(StringPrintf(
        "segment %u payload crc differs from the leader's seal", m.seq));
  }
  return Status::OK();
}

Status Follower::DeliverSnapshotFile(const Message& m, Ack* ack) {
  if (Crc32(m.payload.data(), m.payload.size()) != m.crc) {
    return Status::IOError("repl snapshot chunk crc mismatch in flight");
  }
  snapshot_active_ = true;
  uint64_t& received = snap_received_[m.name];
  const uint64_t chunk_end = m.offset + m.payload.size();
  const std::string name = SnapPrefix() + m.name;
  const bool fresh = !env_->FileExists(name);
  if (m.offset > received || (chunk_end <= received && !fresh)) {
    ack->snapshot_bytes = received;  // gap or duplicate; sender resyncs
    return Status::OK();
  }
  auto f_or = env_->OpenFile(name, /*create=*/true);
  FAME_RETURN_IF_ERROR(f_or.status());
  std::unique_ptr<osal::RandomAccessFile> f = std::move(f_or).value();
  const uint64_t skip = received > m.offset ? received - m.offset : 0;
  if (m.payload.size() > skip) {
    Slice body(m.payload.data() + skip, m.payload.size() - skip);
    FAME_RETURN_IF_ERROR(f->Write(m.offset + skip, body));
    FAME_RETURN_IF_ERROR(f->Sync());
  }
  if (chunk_end > received) received = chunk_end;
  ack->snapshot_bytes = received;
  return Status::OK();
}

Status Follower::DeliverSnapshotDone() {
  if (!env_->FileExists(SnapPrefix() + ".manifest")) {
    return Status::IOError("snapshot incomplete: no manifest staged");
  }
  // The restore replaces whatever this node had: bootstrap is authoritative.
  FAME_RETURN_IF_ERROR(ResetDataFiles());
  core::backup::RestoreReport report;
  FAME_RETURN_IF_ERROR(core::backup::RunRestore(
      env_, SnapPrefix(), db_path_, core::backup::RestoreOptions{}, &report));
  FAME_RETURN_IF_ERROR(ClearSnapshotStaging());
  snapshot_active_ = false;
  // A completed bootstrap clears divergence: this node is now a verbatim
  // copy of the leader's artifacts.
  if (fence_.divergent) {
    fence_.divergent = false;
    FAME_RETURN_IF_ERROR(StoreFence(env_, db_path_, fence_));
  }
  return ScanStagedWal();
}

Status Follower::Sweep() {
  if (fence_.divergent) {
    return Status::DataLoss("follower diverged; re-bootstrap required");
  }
  if (snapshot_active_) {
    return Status::Busy("bootstrap in progress; nothing to apply yet");
  }
  if (!env_->FileExists(db_path_) && wal_end_ == 0) {
    return Status::OK();  // nothing staged yet
  }
  // One apply sweep is one replication span: the reopen's recovery replay
  // and the post-sweep scrub both parent under it.
  FAME_OBS_TRACE(obs::ScopedOpSpan sweep_span(obs::TraceOp::kReplApply);)
  core::DbOptions o = opts_.base;
  o.path = db_path_;
  o.env = env_;
  AddReplicationFeatures(&o.features);
  // The reopen *is* the apply: Database::Open runs crash recovery, which
  // replays every staged committed record through the same code path a
  // crashed standalone engine uses.
  auto db_or = core::Database::Open(o);
  if (!db_or.ok()) {
    FAME_OBS_TRACE(sweep_span.set_error(true);)
    if (db_or.status().IsCorruption()) {
      return MarkDivergent("engine reopen failed: " +
                           db_or.status().ToString());
    }
    return db_or.status();
  }
  std::unique_ptr<core::Database> db = std::move(db_or).value();
  FAME_RETURN_IF_ERROR(db->StartFollower(fence_.epoch));
  storage::IntegrityReport report;
  Status verify = db->VerifyIntegrity(&report);
  if (!verify.ok()) {
    FAME_OBS_TRACE(sweep_span.set_error(true);)
    return MarkDivergent("post-sweep scrub found damage: " +
                         verify.ToString());
  }
  db.reset();
  // Recovery may have truncated a torn tail and recycled applied segments;
  // recompute the resume point so the next ack tells the leader exactly
  // where to resume.
  return ScanStagedWal();
}

Status Follower::ScanStagedWal() {
  wal_end_ = 0;
  std::vector<std::string> names;
  Status s = env_->ListFiles(wal_path_ + ".", &names);
  if (!s.ok()) return Status::OK();
  const size_t plen = wal_path_.size() + 1;
  std::vector<std::pair<uint32_t, std::string>> candidates;
  for (const std::string& n : names) {
    const std::string suffix = n.substr(plen);
    if (suffix.size() < 6 || suffix.size() > 9) continue;
    if (!std::all_of(suffix.begin(), suffix.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      continue;
    }
    candidates.emplace_back(static_cast<uint32_t>(std::stoul(suffix)), n);
  }
  std::sort(candidates.begin(), candidates.end());
  uint32_t prev_seq = 0;
  bool have_prev = false;
  for (const auto& [seq, name] : candidates) {
    auto f_or = env_->OpenFile(name, /*create=*/false);
    if (!f_or.ok()) break;
    auto size_or = f_or.value()->Size();
    if (!size_or.ok() || size_or.value() < tx::seg::kHeaderSize) break;
    char hdr[tx::seg::kHeaderSize];
    if (!ReadExactAt(f_or.value().get(), 0, tx::seg::kHeaderSize, hdr).ok()) {
      break;
    }
    uint64_t base = 0;
    uint32_t hdr_seq = 0;
    if (!tx::seg::DecodeSegmentHeader(hdr, tx::seg::kHeaderSize, &base,
                                      &hdr_seq) ||
        hdr_seq != seq) {
      break;
    }
    if (have_prev && seq != prev_seq + 1) break;
    if (have_prev && base != wal_end_) break;
    wal_end_ = base + (size_or.value() - tx::seg::kHeaderSize);
    prev_seq = seq;
    have_prev = true;
  }
  return Status::OK();
}

Status Follower::ResetDataFiles() {
  if (env_->FileExists(db_path_)) {
    FAME_RETURN_IF_ERROR(env_->DeleteFile(db_path_));
  }
  std::vector<std::string> names;
  if (env_->ListFiles(wal_path_ + ".", &names).ok()) {
    for (const std::string& n : names) {
      FAME_RETURN_IF_ERROR(env_->DeleteFile(n));
    }
  }
  wal_end_ = 0;
  return Status::OK();
}

Status Follower::ClearSnapshotStaging() {
  std::vector<std::string> names;
  if (env_->ListFiles(SnapPrefix(), &names).ok()) {
    for (const std::string& n : names) {
      FAME_RETURN_IF_ERROR(env_->DeleteFile(n));
    }
  }
  snap_received_.clear();
  return Status::OK();
}

StatusOr<uint32_t> PromoteFollower(osal::Env* env, const std::string& db_path,
                                   const core::DbOptions& base) {
  auto fence_or = LoadFence(env, db_path);
  if (!fence_or.ok()) {
    if (fence_or.status().IsNotFound()) {
      return Status::InvalidArgument(
          "not a replication node (no fence sidecar): " + db_path);
    }
    return fence_or.status();
  }
  FenceState fence = fence_or.value();
  if (fence.divergent) {
    return Status::DataLoss(
        "refusing promotion: follower diverged from its leader; "
        "re-bootstrap it first");
  }
  if (fence.role == Role::kLeader) {
    return Status::InvalidArgument("already a leader: " + db_path);
  }
  core::DbOptions o = base;
  o.path = db_path;
  o.env = env;
  AddReplicationFeatures(&o.features);
  if (std::find(o.features.begin(), o.features.end(), "Failover") ==
      o.features.end()) {
    o.features.push_back("Failover");
  }
  FAME_ASSIGN_OR_RETURN(std::unique_ptr<core::Database> db,
                        core::Database::Open(o));
  if (!db->repl_follower()) {
    // The sidecar is authoritative: a follower that never swept (nothing
    // staged yet) has no fence stamped into its page-file meta. Stamp it
    // now so the promotion ceremony below sees a follower.
    FAME_RETURN_IF_ERROR(db->StartFollower(fence.epoch));
  }
  const uint32_t new_epoch = fence.epoch + 1;
  // Integrity-gated: Promote verifies the store before taking leadership
  // and stamps the new epoch into the PageFile meta and the WAL.
  FAME_RETURN_IF_ERROR(db->Promote(new_epoch));
  db.reset();
  fence.epoch = new_epoch;
  fence.role = Role::kLeader;
  FAME_RETURN_IF_ERROR(StoreFence(env, db_path, fence));
  return new_epoch;
}

}  // namespace fame::repl

// [feature Replication] WAL-shipping replication for the FAME-DBMS product
// line. The paper's point is that replication is exactly the kind of
// heavyweight capability that must be an optional, tailor-made feature:
// everything in this directory is reached only through the Replication
// feature, and the nm symbol guard in tests/CMakeLists.txt proves products
// without it link none of these bytes.
//
// Design in one paragraph: a *leader* ships the segmented WAL (PR 6's
// sealed, CRC'd, monotone-LSN segments) to *followers* over a pluggable
// Transport, chunk by chunk with resumable acks. A follower stages the
// bytes into its own identically-named segment files and applies them by
// reopening its engine — recovery replay *is* the apply path, so
// replication and crash recovery share one code path and one set of
// invariants. Leadership is fenced by a monotone epoch stamped into every
// message, every new segment header, and the PageFile meta; a deposed
// leader's late frames are rejected before a byte lands (no split-brain).
// Divergence is detected by per-segment CRC cross-checks (kSeal) plus a
// full VerifyIntegrity scrub after every sweep; a diverged follower is
// marked on disk and refuses promotion. The in-process transport is the
// deterministic implementation the fault matrix drives; a socket server is
// future work behind the same interface.
#ifndef FAME_REPL_REPL_H_
#define FAME_REPL_REPL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "osal/env.h"
#include "osal/link_faults.h"

namespace fame::repl {

/// Suffix of the fence sidecar file next to a replicated database
/// ("<db>.fence"): the node's replication identity, readable without
/// opening the database (fame_check, fame repl status).
inline constexpr char kFenceSuffix[] = ".fence";

enum class Role : uint8_t { kNone = 0, kLeader = 1, kFollower = 2 };

/// Durable replication identity of one node.
struct FenceState {
  uint32_t epoch = 0;     ///< fencing epoch; monotone over the node's life
  Role role = Role::kNone;
  /// Set when a divergence check failed (segment CRC mismatch against the
  /// leader, or a post-sweep scrub found damage). Sticky until the node is
  /// re-bootstrapped; a divergent follower refuses promotion.
  bool divergent = false;
};

/// Reads `<db_path>.fence`. NotFound when absent, Corruption on damage.
StatusOr<FenceState> LoadFence(osal::Env* env, const std::string& db_path);

/// Durably writes `<db_path>.fence`.
Status StoreFence(osal::Env* env, const std::string& db_path,
                  const FenceState& fence);

/// One replication message. Every message carries the sender's fencing
/// epoch; WAL messages additionally carry the epoch stamped in the segment
/// header being shipped (`seg_epoch`), so the follower recreates headers
/// byte-identically.
struct Message {
  enum Kind : uint8_t {
    kHello = 0,          ///< leader announces itself (epoch handshake)
    kWal = 1,            ///< one chunk of segment payload
    kSeal = 2,           ///< whole-payload CRC of a fully-shipped segment
    kSnapshotBegin = 3,  ///< bootstrap starts; follower clears its staging
    kSnapshotFile = 4,   ///< one chunk of a bootstrap artifact
    kSnapshotDone = 5,   ///< all artifacts shipped; follower restores
  };
  Kind kind = kHello;
  uint32_t epoch = 0;      ///< sender's fencing epoch

  // kWal / kSeal: which segment.
  uint32_t seq = 0;        ///< segment sequence number
  uint64_t base_lsn = 0;   ///< segment base LSN
  uint32_t seg_epoch = 0;  ///< epoch in the segment's header

  uint64_t lsn = 0;        ///< kWal: LSN of payload[0]
  uint64_t total = 0;      ///< kSeal: sealed payload length;
                           ///< kSnapshotFile: full artifact size
  std::string name;        ///< kSnapshotFile: artifact suffix ("" = pages)
  uint64_t offset = 0;     ///< kSnapshotFile: payload offset in the artifact
  uint32_t crc = 0;        ///< CRC32 of payload (kWal/kSnapshotFile) or of
                           ///< the whole sealed payload (kSeal)
  std::string payload;
};

/// The follower's reply. `end_lsn` is the contiguous WAL prefix it holds —
/// the resume point. A short ack (end_lsn below what the leader shipped)
/// tells the leader to rewind; acks make every exchange idempotent under
/// drops, duplicates, and reordering.
struct Ack {
  uint32_t epoch = 0;           ///< receiver's fence epoch
  uint64_t end_lsn = 0;         ///< contiguous WAL bytes held
  uint64_t snapshot_bytes = 0;  ///< bytes held of the current artifact
  /// The follower has a materialized database file. `end_lsn == 0` alone
  /// cannot distinguish "fresh empty node" from "caught up with a leader
  /// whose retained chain starts empty" (a legacy log migrated after its
  /// state was checkpointed into pages): a leader must bootstrap the
  /// former even though the LSN arithmetic says there is nothing to ship.
  bool has_db = false;
};

/// Receiving end of the stream (a follower, or a relay).
class Peer {
 public:
  virtual ~Peer() = default;
  virtual StatusOr<Ack> Deliver(const Message& m) = 0;
};

/// The wire. Sends are synchronous: a Status error models a timeout or a
/// dead link, and the caller retries under a deadline budget.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual StatusOr<Ack> Send(const Message& m) = 0;
};

/// Deterministic in-process transport: delivers directly to a Peer,
/// applying a scripted osal::LinkFaults plan — drop (sender sees IOError),
/// duplicate (delivered twice), delay (held and delivered after the next
/// send: reordering), partition (IOError until healed). The replication
/// fault matrix drives every cell through this.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(Peer* peer, osal::LinkFaults* faults = nullptr)
      : peer_(peer), faults_(faults) {}

  StatusOr<Ack> Send(const Message& m) override;

 private:
  Peer* peer_;
  osal::LinkFaults* faults_;
  std::vector<Message> held_;  ///< delayed messages awaiting redelivery
};

}  // namespace fame::repl

#endif  // FAME_REPL_REPL_H_

#include "osal/slab_alloc.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <new>

namespace fame::osal::slab {

// ---------------------------------------------------------------------------
// StaticSlabAllocator

StaticSlabAllocator::StaticSlabAllocator(void* arena, size_t size)
    : base_(static_cast<char*>(arena)),
      size_(size),
      lo_(base_),
      hi_(base_ + (size & ~(alignof(std::max_align_t) - 1))) {
  assert(IsContractAligned(base_));
  assert(size >= kMaxSmall);
}

StaticSlabAllocator::StaticSlabAllocator(size_t size)
    : owned_(new char[size]),
      base_(owned_.get()),
      size_(size),
      lo_(base_),
      hi_(base_ + (size & ~(alignof(std::max_align_t) - 1))) {
  assert(IsContractAligned(base_));
  assert(size >= kMaxSmall);
}

size_t StaticSlabAllocator::ChargedSize(size_t n) {
  if (n == 0) n = 1;
  return n <= kMaxSmall ? ClassSize(SizeToClass(n)) : AlignUp(n);
}

void* StaticSlabAllocator::Allocate(size_t n) {
  if (n == 0) n = 1;
  if (n > kMaxSmall) return AllocateLarge(n);
  const size_t c = SizeToClass(n);
  const size_t cs = ClassSize(c);
  FreeNode* f = free_[c];
  if (f != nullptr) {
    free_[c] = f->next;
    live_ += cs;
    if (live_ > peak_) peak_ = live_;
    return f;
  }
  // The entire small path when the class freelist is warm or the bump gap
  // is open: a pointer bump. No headers, no walks, no locks.
  if (lo_ + cs > hi_) return nullptr;  // budget exhausted
  char* p = lo_;
  lo_ += cs;
  live_ += cs;
  if (live_ > peak_) peak_ = live_;
  assert(IsContractAligned(p));
  return p;
}

void* StaticSlabAllocator::AllocateLarge(size_t n) {
  const size_t need = AlignUp(n);
  // Recycled large blocks first (first-fit; the list stays short because
  // frame arenas are allocated once per open). Split only when the
  // remainder is still a usable large block.
  LargeNode** prev = &large_free_;
  for (LargeNode* b = large_free_; b != nullptr;
       prev = &b->next, b = b->next) {
    if (b->size < need) continue;
    char* p = reinterpret_cast<char*>(b);
    if (b->size >= need + kMaxSmall) {
      auto* rest = reinterpret_cast<LargeNode*>(p + need);
      rest->size = b->size - need;
      rest->next = b->next;
      *prev = rest;
    } else {
      *prev = b->next;
    }
    live_ += need;
    if (live_ > peak_) peak_ = live_;
    assert(IsContractAligned(p));
    return p;
  }
  if (hi_ - lo_ < static_cast<ptrdiff_t>(need)) return nullptr;
  hi_ -= need;
  live_ += need;
  if (live_ > peak_) peak_ = live_;
  assert(IsContractAligned(hi_));
  return hi_;
}

void StaticSlabAllocator::Deallocate(void* p, size_t n) {
  if (p == nullptr) return;
  if (n == 0) n = 1;
  assert(static_cast<char*>(p) >= base_ &&
         static_cast<char*>(p) < base_ + size_);
  if (n <= kMaxSmall) {
    const size_t c = SizeToClass(n);
    const size_t cs = ClassSize(c);
    PoisonFreedBlock(p, cs);
    auto* f = static_cast<FreeNode*>(p);
    f->next = free_[c];
    free_[c] = f;
    live_ -= cs;
    return;
  }
  const size_t need = AlignUp(n);
  live_ -= need;
  if (static_cast<char*>(p) == hi_) {
    // Freeing the most recent top carve reopens the bump gap directly.
    hi_ += need;
    return;
  }
  PoisonFreedBlock(p, sizeof(LargeNode));
  auto* b = static_cast<LargeNode*>(p);
  b->size = need;
  b->next = large_free_;
  large_free_ = b;
}

size_t StaticSlabAllocator::LargestFreeBlock() const {
  size_t best = hi_ > lo_ ? static_cast<size_t>(hi_ - lo_) : 0;
  for (LargeNode* b = large_free_; b != nullptr; b = b->next) {
    if (b->size > best) best = b->size;
  }
  // Segregated classes never coalesce back into the bump gap, but a block
  // parked on a class freelist can still satisfy a request of that class.
  for (size_t c = kNumClasses; c-- > 0;) {
    if (ClassSize(c) <= best) break;
    if (free_[c] != nullptr) {
      best = ClassSize(c);
      break;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Thread-local object pool (pooled operator new of Cursor / Transaction).
#if FAME_SLAB_ENABLED

namespace {

// Block layout: [BlockHeader][payload]; the header keeps the payload on
// the alignment contract and lets an unsized delete recover the class.
struct BlockHeader {
  void* owner;     // ThreadCache* that allocated it; nullptr = uncached
  uint32_t cls;    // size class, or kLargeCls
  uint32_t magic;
};
static_assert(sizeof(BlockHeader) == AlignUp(sizeof(BlockHeader)),
              "header must preserve the payload alignment contract");
constexpr uint32_t kBlockMagic = 0xb10cb10cu;
constexpr uint32_t kLargeCls = 0xffffffffu;
constexpr uint32_t kMaxCachedPerClass = 64;

std::atomic<uint64_t> g_cross_thread_frees{0};

struct CacheFreeNode {
  CacheFreeNode* next;
};

struct ThreadCache {
  CacheFreeNode* free_[kNumClasses] = {};
  uint32_t count_[kNumClasses] = {};
  ThreadCacheStats stats;

  void Purge() {
    for (size_t c = 0; c < kNumClasses; ++c) {
      CacheFreeNode* n = free_[c];
      while (n != nullptr) {
        CacheFreeNode* next = n->next;
        ::operator delete(reinterpret_cast<char*>(n) - sizeof(BlockHeader));
        n = next;
      }
      free_[c] = nullptr;
      count_[c] = 0;
    }
  }
};

// Thread-exit-safe access: the raw pointer and the state byte are
// trivially destructible thread_locals, valid at any point of thread
// teardown; the holder's destructor flips the state so late frees (e.g.
// from statics destroyed after the cache) take the heap path.
thread_local ThreadCache* t_cache = nullptr;
thread_local uint8_t t_cache_state = 0;  // 0 unborn, 1 alive, 2 dead

struct CacheHolder {
  ThreadCache cache;
  CacheHolder() {
    t_cache = &cache;
    t_cache_state = 1;
  }
  ~CacheHolder() {
    cache.Purge();
    t_cache = nullptr;
    t_cache_state = 2;
  }
};

ThreadCache* GetCache() {
  if (t_cache_state == 1) return t_cache;
  if (t_cache_state == 2) return nullptr;
  static thread_local CacheHolder holder;
  return t_cache;
}

}  // namespace

void* PooledNew(size_t n) {
  ThreadCache* cache = GetCache();
  const uint32_t cls =
      n <= kMaxSmall ? static_cast<uint32_t>(SizeToClass(n)) : kLargeCls;
  if (cache != nullptr && cls != kLargeCls) {
    CacheFreeNode* f = cache->free_[cls];
    if (f != nullptr) {
      cache->free_[cls] = f->next;
      --cache->count_[cls];
      ++cache->stats.hits;
      ++cache->stats.live_blocks;
      auto* h = reinterpret_cast<BlockHeader*>(reinterpret_cast<char*>(f) -
                                               sizeof(BlockHeader));
      h->owner = cache;
      return f;
    }
  }
  const size_t payload = cls == kLargeCls ? AlignUp(n) : ClassSize(cls);
  auto* h =
      static_cast<BlockHeader*>(::operator new(sizeof(BlockHeader) + payload));
  h->owner = cls == kLargeCls ? nullptr : cache;
  h->cls = cls;
  h->magic = kBlockMagic;
  if (cache != nullptr) {
    ++cache->stats.misses;
    ++cache->stats.live_blocks;
  }
  return reinterpret_cast<char*>(h) + sizeof(BlockHeader);
}

namespace {

void PooledRelease(void* p, uint32_t cls) noexcept {
  auto* h = reinterpret_cast<BlockHeader*>(static_cast<char*>(p) -
                                           sizeof(BlockHeader));
  assert(h->magic == kBlockMagic);
  assert(h->cls == cls);
  ThreadCache* cache = GetCache();
  if (cache != nullptr && cache->stats.live_blocks > 0) {
    --cache->stats.live_blocks;
  }
  if (cls != kLargeCls && h->owner == cache && cache != nullptr &&
      cache->count_[cls] < kMaxCachedPerClass) {
    // Same-thread churn: recycle without touching the heap.
    PoisonFreedBlock(p, ClassSize(cls));
    auto* f = static_cast<CacheFreeNode*>(p);
    f->next = cache->free_[cls];
    cache->free_[cls] = f;
    ++cache->count_[cls];
    ++cache->stats.returns;
    return;
  }
  if (h->owner != nullptr && h->owner != cache) {
    // Allocated by another thread's cache (or by a thread that has since
    // exited): route to the heap, count the crossing.
    g_cross_thread_frees.fetch_add(1, std::memory_order_relaxed);
  }
  ::operator delete(h);
}

}  // namespace

void PooledDelete(void* p, size_t n) noexcept {
  if (p == nullptr) return;
  PooledRelease(p, n <= kMaxSmall ? static_cast<uint32_t>(SizeToClass(n))
                                  : kLargeCls);
}

void PooledDelete(void* p) noexcept {
  if (p == nullptr) return;
  auto* h = reinterpret_cast<BlockHeader*>(static_cast<char*>(p) -
                                           sizeof(BlockHeader));
  PooledRelease(p, h->cls);
}

ThreadCacheStats PooledThreadStats() {
  ThreadCache* cache = GetCache();
  return cache != nullptr ? cache->stats : ThreadCacheStats{};
}

uint64_t PooledCrossThreadFrees() {
  return g_cross_thread_frees.load(std::memory_order_relaxed);
}

#endif  // FAME_SLAB_ENABLED

}  // namespace fame::osal::slab

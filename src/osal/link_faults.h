// Deterministic link-fault plans for the replication transport, the
// network-side sibling of FaultInjectionEnv: instead of failing file IO by
// operation index, a LinkFaults plan fails *message sends* by send index —
// drop (the message vanishes, the sender sees a timeout), duplicate (the
// peer receives it twice), delay (held back and delivered after the next
// send: reordering), and partition (every send from a point on fails until
// Heal()). Tests script a plan up front and the replication fault matrix
// replays it deterministically; there is no randomness and no wall clock.
//
// Header-only and engine-agnostic: the transport asks `Next()` for the
// fault decision of each send and implements the semantics itself.
#ifndef FAME_OSAL_LINK_FAULTS_H_
#define FAME_OSAL_LINK_FAULTS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace fame::osal {

/// A scripted fault plan over a sequence of message sends.
class LinkFaults {
 public:
  /// What to do with one send.
  struct Plan {
    bool drop = false;         ///< discard; sender sees a transient failure
    bool duplicate = false;    ///< deliver twice
    bool delay = false;        ///< hold back, deliver after the next send
    bool partitioned = false;  ///< link is down; nothing is delivered
  };

  /// Drops sends with index in [start, start + count).
  void DropRange(uint64_t start, uint64_t count) {
    drops_.emplace_back(start, count);
  }
  /// Delivers send `op` twice.
  void DuplicateOp(uint64_t op) { dups_.push_back(op); }
  /// Holds send `op` back so it arrives after the following send.
  void DelayOp(uint64_t op) { delays_.push_back(op); }
  /// Partitions the link from send `op` on; sends fail until Heal().
  void PartitionFrom(uint64_t op) { partition_from_ = op; }
  /// Repairs a partition; subsequent sends flow normally.
  void Heal() { partition_from_ = kNever; }

  /// Consumes the next send index and returns its fault decision.
  Plan Next() {
    const uint64_t op = next_op_++;
    Plan p;
    if (op >= partition_from_) {
      p.partitioned = true;
      return p;
    }
    for (const auto& [start, count] : drops_) {
      if (op >= start && op - start < count) p.drop = true;
    }
    for (uint64_t d : dups_) {
      if (d == op) p.duplicate = true;
    }
    for (uint64_t d : delays_) {
      if (d == op) p.delay = true;
    }
    return p;
  }

  /// Sends decided so far (== the index the next send will get).
  uint64_t sends() const { return next_op_; }
  bool partitioned() const { return next_op_ >= partition_from_; }

 private:
  static constexpr uint64_t kNever = ~0ull;

  std::vector<std::pair<uint64_t, uint64_t>> drops_;
  std::vector<uint64_t> dups_;
  std::vector<uint64_t> delays_;
  uint64_t partition_from_ = kNever;
  uint64_t next_op_ = 0;
};

}  // namespace fame::osal

#endif  // FAME_OSAL_LINK_FAULTS_H_

#include "osal/allocator.h"

#include <cassert>
#include <cstring>
#include <new>

namespace fame::osal {

void* DynamicAllocator::Allocate(size_t n) {
  void* p = ::operator new(n, std::nothrow);
  assert(IsContractAligned(p));
  if (p != nullptr) {
    in_use_ += n;
    if (in_use_ > peak_) peak_ = in_use_;
  }
  return p;
}

void DynamicAllocator::Deallocate(void* p, size_t n) {
  if (p == nullptr) return;
  assert(in_use_ >= n);
  in_use_ -= n;
  ::operator delete(p);
}

StaticPoolAllocator::StaticPoolAllocator(void* arena, size_t size)
    : arena_(static_cast<char*>(arena)), size_(size) {
  assert(size > sizeof(BlockHeader));
  // The alignment contract propagates from the arena base: every payload
  // sits at base + k * AlignUp(sizeof(BlockHeader)) offsets.
  assert(IsContractAligned(arena_));
  free_list_ = reinterpret_cast<BlockHeader*>(arena_);
  free_list_->size = size - AlignUp(sizeof(BlockHeader));
  free_list_->next = nullptr;
}

StaticPoolAllocator::StaticPoolAllocator(size_t size)
    : owned_arena_(new char[size]), arena_(owned_arena_.get()), size_(size) {
  assert(size > sizeof(BlockHeader));
  free_list_ = reinterpret_cast<BlockHeader*>(arena_);
  free_list_->size = size - AlignUp(sizeof(BlockHeader));
  free_list_->next = nullptr;
}

void* StaticPoolAllocator::Allocate(size_t n) {
  if (n == 0) n = 1;
  n = AlignUp(n);
  BlockHeader** prev = &free_list_;
  for (BlockHeader* b = free_list_; b != nullptr; prev = &b->next, b = b->next) {
    if (b->size < n) continue;
    const size_t header = AlignUp(sizeof(BlockHeader));
    if (b->size >= n + header + kAlign) {
      // Split: carve the tail of this free block into the allocation, leave
      // the head on the free list with a reduced size.
      b->size -= n + header;
      char* alloc_start = reinterpret_cast<char*>(b) + header + b->size;
      auto* ah = reinterpret_cast<BlockHeader*>(alloc_start);
      ah->size = n;
      ah->next = nullptr;
      in_use_ += n;
      if (in_use_ > peak_) peak_ = in_use_;
      assert(IsContractAligned(alloc_start + header));
      return alloc_start + header;
    }
    // Exact-ish fit: hand out the whole block.
    *prev = b->next;
    b->next = nullptr;
    in_use_ += b->size;
    if (in_use_ > peak_) peak_ = in_use_;
    assert(IsContractAligned(reinterpret_cast<char*>(b) + header));
    return reinterpret_cast<char*>(b) + header;
  }
  return nullptr;  // pool exhausted or too fragmented
}

void StaticPoolAllocator::Deallocate(void* p, size_t n) {
  if (p == nullptr) return;
  (void)n;
  const size_t header = AlignUp(sizeof(BlockHeader));
  auto* b = reinterpret_cast<BlockHeader*>(static_cast<char*>(p) - header);
  assert(reinterpret_cast<char*>(b) >= arena_ &&
         reinterpret_cast<char*>(b) < arena_ + size_);
  in_use_ -= b->size;

  // Insert into the address-ordered free list and coalesce neighbours so
  // long-running embedded products do not fragment to death.
  BlockHeader** prev = &free_list_;
  while (*prev != nullptr && *prev < b) prev = &(*prev)->next;
  b->next = *prev;
  *prev = b;

  // Coalesce with successor.
  char* b_end = reinterpret_cast<char*>(b) + header + b->size;
  if (b->next != nullptr && b_end == reinterpret_cast<char*>(b->next)) {
    b->size += header + b->next->size;
    b->next = b->next->next;
  }
  // Coalesce with predecessor.
  if (prev != &free_list_) {
    auto* pred = reinterpret_cast<BlockHeader*>(
        reinterpret_cast<char*>(prev) - offsetof(BlockHeader, next));
    char* pred_end = reinterpret_cast<char*>(pred) + header + pred->size;
    if (pred_end == reinterpret_cast<char*>(b)) {
      pred->size += header + b->size;
      pred->next = b->next;
    }
  }
}

size_t StaticPoolAllocator::LargestFreeBlock() const {
  size_t best = 0;
  for (BlockHeader* b = free_list_; b != nullptr; b = b->next) {
    if (b->size > best) best = b->size;
  }
  return best;
}

}  // namespace fame::osal

// MemEnv: the "NutOS" OS-Abstraction alternative. Deeply embedded devices in
// the paper's target class have no file system; persistent state lives in a
// fixed RAM/flash budget. MemEnv models that: a flat name -> buffer namespace
// with a hard capacity limit, returning ResourceExhausted when the device is
// full (so products and tests can exercise out-of-storage paths).
//
// A single env-wide mutex guards the namespace, the capacity accounting, and
// every file buffer. NutOS products are single-threaded (the feature model
// excludes Concurrency under NutOS), so for them the lock is never contended;
// it exists so the in-memory env can back multi-threaded buffer-pool and
// group-commit tests without data races.
#include <chrono>
#include <map>
#include <mutex>

#include "osal/env.h"

namespace fame::osal {
namespace {

class MemEnvImpl;

struct FileBuffer {
  std::string data;
};

class MemFile final : public RandomAccessFile {
 public:
  MemFile(MemEnvImpl* env, std::shared_ptr<FileBuffer> buf)
      : env_(env), buf_(std::move(buf)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* result) const override;
  Status Write(uint64_t offset, const Slice& data) override;
  Status Sync() override { return Status::OK(); }
  StatusOr<uint64_t> Size() const override;
  Status Truncate(uint64_t size) override;

 private:
  MemEnvImpl* env_;
  std::shared_ptr<FileBuffer> buf_;
};

class MemEnvImpl final : public Env {
 public:
  explicit MemEnvImpl(uint64_t capacity) : capacity_(capacity) {}

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& name,
                                                       bool create) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) {
      if (!create) return Status::IOError("no such file: " + name);
      it = files_.emplace(name, std::make_shared<FileBuffer>()).first;
    }
    return std::unique_ptr<RandomAccessFile>(new MemFile(this, it->second));
  }

  Status DeleteFile(const std::string& name) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::IOError("no such file: " + name);
    used_ -= it->second->data.size();
    files_.erase(it);
    return Status::OK();
  }

  bool FileExists(const std::string& name) const override {
    std::lock_guard<std::mutex> l(mu_);
    return files_.count(name) > 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) return Status::IOError("no such file: " + from);
    auto old_target = files_.find(to);
    if (old_target != files_.end()) {
      used_ -= old_target->second->data.size();
      files_.erase(old_target);
    }
    files_[to] = it->second;
    files_.erase(from);
    return Status::OK();
  }

  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override {
    std::lock_guard<std::mutex> l(mu_);
    // files_ is name-ordered, so the prefix range is already sorted.
    for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out->push_back(it->first);
    }
    return Status::OK();
  }

  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const char* name() const override { return "nutos"; }

  uint64_t used() const {
    std::lock_guard<std::mutex> l(mu_);
    return used_;
  }
  uint64_t capacity() const { return capacity_; }

 private:
  friend class MemFile;

  /// Reserves `delta` more bytes of device storage; fails when the fixed
  /// capacity would be exceeded. Caller holds mu_.
  Status ReserveLocked(uint64_t delta) {
    if (capacity_ != 0 && used_ + delta > capacity_) {
      return Status::ResourceExhausted("device storage full");
    }
    used_ += delta;
    return Status::OK();
  }
  void ReleaseLocked(uint64_t delta) { used_ -= delta; }

  const uint64_t capacity_;
  mutable std::mutex mu_;  // guards files_, used_, and all buffer contents
  uint64_t used_ = 0;
  std::map<std::string, std::shared_ptr<FileBuffer>> files_;
};

Status MemFile::Read(uint64_t offset, size_t n, char* scratch,
                     Slice* result) const {
  std::lock_guard<std::mutex> l(env_->mu_);
  const std::string& d = buf_->data;
  if (offset >= d.size()) {
    *result = Slice(scratch, 0);
    return Status::OK();
  }
  size_t avail = d.size() - static_cast<size_t>(offset);
  size_t take = n < avail ? n : avail;
  std::memcpy(scratch, d.data() + offset, take);
  *result = Slice(scratch, take);
  return Status::OK();
}

Status MemFile::Write(uint64_t offset, const Slice& data) {
  std::lock_guard<std::mutex> l(env_->mu_);
  std::string& d = buf_->data;
  uint64_t end = offset + data.size();
  if (end > d.size()) {
    FAME_RETURN_IF_ERROR(env_->ReserveLocked(end - d.size()));
    d.resize(end);
  }
  std::memcpy(d.data() + offset, data.data(), data.size());
  return Status::OK();
}

StatusOr<uint64_t> MemFile::Size() const {
  std::lock_guard<std::mutex> l(env_->mu_);
  return static_cast<uint64_t>(buf_->data.size());
}

Status MemFile::Truncate(uint64_t size) {
  std::lock_guard<std::mutex> l(env_->mu_);
  std::string& d = buf_->data;
  if (size > d.size()) {
    FAME_RETURN_IF_ERROR(env_->ReserveLocked(size - d.size()));
  } else {
    env_->ReleaseLocked(d.size() - size);
  }
  d.resize(size);
  return Status::OK();
}

}  // namespace

std::unique_ptr<Env> NewMemEnv(uint64_t capacity_bytes) {
  return std::make_unique<MemEnvImpl>(capacity_bytes);
}

}  // namespace fame::osal

// MemEnv: the "NutOS" OS-Abstraction alternative. Deeply embedded devices in
// the paper's target class have no file system; persistent state lives in a
// fixed RAM/flash budget. MemEnv models that: a flat name -> buffer namespace
// with a hard capacity limit, returning ResourceExhausted when the device is
// full (so products and tests can exercise out-of-storage paths).
#include <chrono>
#include <map>

#include "osal/env.h"

namespace fame::osal {
namespace {

class MemEnvImpl;

struct FileBuffer {
  std::string data;
};

class MemFile final : public RandomAccessFile {
 public:
  MemFile(MemEnvImpl* env, std::shared_ptr<FileBuffer> buf)
      : env_(env), buf_(std::move(buf)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* result) const override {
    const std::string& d = buf_->data;
    if (offset >= d.size()) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    size_t avail = d.size() - static_cast<size_t>(offset);
    size_t take = n < avail ? n : avail;
    std::memcpy(scratch, d.data() + offset, take);
    *result = Slice(scratch, take);
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override;

  Status Sync() override { return Status::OK(); }

  StatusOr<uint64_t> Size() const override {
    return static_cast<uint64_t>(buf_->data.size());
  }

  Status Truncate(uint64_t size) override;

 private:
  MemEnvImpl* env_;
  std::shared_ptr<FileBuffer> buf_;
};

class MemEnvImpl final : public Env {
 public:
  explicit MemEnvImpl(uint64_t capacity) : capacity_(capacity) {}

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& name,
                                                       bool create) override {
    auto it = files_.find(name);
    if (it == files_.end()) {
      if (!create) return Status::IOError("no such file: " + name);
      it = files_.emplace(name, std::make_shared<FileBuffer>()).first;
    }
    return std::unique_ptr<RandomAccessFile>(new MemFile(this, it->second));
  }

  Status DeleteFile(const std::string& name) override {
    auto it = files_.find(name);
    if (it == files_.end()) return Status::IOError("no such file: " + name);
    used_ -= it->second->data.size();
    files_.erase(it);
    return Status::OK();
  }

  bool FileExists(const std::string& name) const override {
    return files_.count(name) > 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    auto it = files_.find(from);
    if (it == files_.end()) return Status::IOError("no such file: " + from);
    auto old_target = files_.find(to);
    if (old_target != files_.end()) {
      used_ -= old_target->second->data.size();
      files_.erase(old_target);
    }
    files_[to] = it->second;
    files_.erase(from);
    return Status::OK();
  }

  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const char* name() const override { return "nutos"; }

  /// Reserves `delta` more bytes of device storage; fails when the fixed
  /// capacity would be exceeded.
  Status Reserve(uint64_t delta) {
    if (capacity_ != 0 && used_ + delta > capacity_) {
      return Status::ResourceExhausted("device storage full");
    }
    used_ += delta;
    return Status::OK();
  }
  void Release(uint64_t delta) { used_ -= delta; }

  uint64_t used() const { return used_; }
  uint64_t capacity() const { return capacity_; }

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::map<std::string, std::shared_ptr<FileBuffer>> files_;
};

Status MemFile::Write(uint64_t offset, const Slice& data) {
  std::string& d = buf_->data;
  uint64_t end = offset + data.size();
  if (end > d.size()) {
    FAME_RETURN_IF_ERROR(env_->Reserve(end - d.size()));
    d.resize(end);
  }
  std::memcpy(d.data() + offset, data.data(), data.size());
  return Status::OK();
}

Status MemFile::Truncate(uint64_t size) {
  std::string& d = buf_->data;
  if (size > d.size()) {
    FAME_RETURN_IF_ERROR(env_->Reserve(size - d.size()));
  } else {
    env_->Release(d.size() - size);
  }
  d.resize(size);
  return Status::OK();
}

}  // namespace

std::unique_ptr<Env> NewMemEnv(uint64_t capacity_bytes) {
  return std::make_unique<MemEnvImpl>(capacity_bytes);
}

}  // namespace fame::osal

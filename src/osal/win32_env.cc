// Win32PathEnv: the "Win32" OS-Abstraction alternative. The behavioural
// difference this feature carries in the product line is path handling:
// backslash separators, optional drive-letter prefixes, and case-insensitive
// names. It normalizes those onto a backing Env, so products composed for
// Win32 accept Windows-style database paths.
#include <cctype>

#include "osal/env.h"

namespace fame::osal {
namespace {

class Win32PathEnv final : public Env {
 public:
  explicit Win32PathEnv(Env* base) : base_(base) {}

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& name,
                                                       bool create) override {
    return base_->OpenFile(Normalize(name), create);
  }
  Status DeleteFile(const std::string& name) override {
    return base_->DeleteFile(Normalize(name));
  }
  bool FileExists(const std::string& name) const override {
    return base_->FileExists(Normalize(name));
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(Normalize(from), Normalize(to));
  }
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override {
    return base_->ListFiles(Normalize(prefix), out);
  }
  uint64_t NowNanos() const override { return base_->NowNanos(); }
  const char* name() const override { return "win32"; }

  /// Win32 path normalization: strip "C:"-style drive prefixes, convert
  /// backslashes to slashes, and lower-case (NTFS default is
  /// case-insensitive).
  static std::string Normalize(const std::string& path) {
    std::string out;
    size_t start = 0;
    if (path.size() >= 2 && std::isalpha(static_cast<unsigned char>(path[0])) &&
        path[1] == ':') {
      start = 2;
    }
    for (size_t i = start; i < path.size(); ++i) {
      char c = path[i];
      if (c == '\\') c = '/';
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
  }

 private:
  Env* base_;
};

}  // namespace

std::unique_ptr<Env> NewWin32PathEnv(Env* base) {
  return std::make_unique<Win32PathEnv>(base);
}

}  // namespace fame::osal

#include "osal/fault_env.h"

#include <cstring>

namespace fame::osal {

/// A handle whose ops report to the env's fault scheduler. Shares the
/// durable-image state with every other handle on the same name.
class FaultFile final : public RandomAccessFile {
 public:
  FaultFile(FaultInjectionEnv* env, std::unique_ptr<RandomAccessFile> base,
            std::shared_ptr<FaultInjectionEnv::FileState> state)
      : env_(env), base_(std::move(base)), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* result) const override {
    FaultInjectionEnv::FaultOutcome o = env_->CheckOp(FaultOp::kRead);
    if (!o.error.ok()) return o.error;
    FAME_RETURN_IF_ERROR(base_->Read(offset, n, scratch, result));
    if (o.corrupt && result->size() > 0) {
      // Silent bit rot: deliver flipped data with a clean status. The base
      // may return a pointer into its own memory; corrupt a copy in the
      // caller's scratch, never the medium.
      if (result->data() != scratch) {
        std::memcpy(scratch, result->data(), result->size());
        *result = Slice(scratch, result->size());
      }
      uint64_t at = o.corrupt_byte < result->size() ? o.corrupt_byte
                                                    : result->size() - 1;
      scratch[at] ^= static_cast<char>(1u << (o.corrupt_bit & 7));
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    FaultInjectionEnv::FaultOutcome o = env_->CheckOp(FaultOp::kWrite);
    if (o.torn) {
      // Persist a prefix, then report the failure: the bytes are on the
      // medium even though the caller sees an error.
      uint64_t k = o.torn_keep < data.size() ? o.torn_keep : data.size();
      if (k > 0) {
        FAME_RETURN_IF_ERROR(base_->Write(offset, Slice(data.data(), k)));
      }
      return o.error.ok() ? Status::IOError("injected torn write") : o.error;
    }
    if (!o.error.ok()) return o.error;
    if (env_->disk_full_) {
      auto size_or = base_->Size();
      FAME_RETURN_IF_ERROR(size_or.status());
      if (offset + data.size() > size_or.value()) {
        ++env_->faults_injected_;
        return Status::ResourceExhausted("injected disk full (ENOSPC)");
      }
    }
    return base_->Write(offset, data);
  }

  Status Sync() override {
    FaultInjectionEnv::FaultOutcome o = env_->CheckOp(FaultOp::kSync);
    if (!o.error.ok()) return o.error;
    FAME_RETURN_IF_ERROR(base_->Sync());
    // Durability point: snapshot the current content as the on-flash image.
    auto size_or = base_->Size();
    FAME_RETURN_IF_ERROR(size_or.status());
    std::string image(size_or.value(), '\0');
    if (!image.empty()) {
      Slice result;
      FAME_RETURN_IF_ERROR(
          base_->Read(0, image.size(), image.data(), &result));
      image.resize(result.size());
    }
    state_->synced = std::move(image);
    state_->durable = true;
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override { return base_->Size(); }

  Status Truncate(uint64_t size) override {
    FaultInjectionEnv::FaultOutcome o = env_->CheckOp(FaultOp::kTruncate);
    if (!o.error.ok()) return o.error;
    if (env_->disk_full_) {
      auto size_or = base_->Size();
      FAME_RETURN_IF_ERROR(size_or.status());
      if (size > size_or.value()) {
        ++env_->faults_injected_;
        return Status::ResourceExhausted("injected disk full (ENOSPC)");
      }
    }
    return base_->Truncate(size);
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultInjectionEnv::FileState> state_;
};

FaultInjectionEnv::FaultOutcome FaultInjectionEnv::CheckOp(FaultOp op) {
  FaultOutcome out;
  uint64_t index = op_counts_[static_cast<size_t>(op)]++;
  bool mutating = op != FaultOp::kRead;
  if (mutating) {
    uint64_t mindex = mutations_++;
    if (mindex >= crash_after_) {
      ++faults_injected_;
      out.error = Status::IOError("injected device failure (post-crash-point)");
      return out;
    }
  }
  for (const FaultRule& r : rules_) {
    if (r.op != op) continue;
    if (index < r.start || index - r.start >= r.count) continue;
    ++faults_injected_;
    if (r.torn) {
      out.torn = true;
      out.torn_keep = r.torn_keep;
      return out;  // FaultFile::Write builds the torn IOError
    }
    if (r.corrupt) {
      out.corrupt = true;
      out.corrupt_byte = r.corrupt_byte;
      out.corrupt_bit = r.corrupt_bit;
      return out;  // the read reports success; the data lies
    }
    out.error = r.error;
    return out;
  }
  return out;
}

std::shared_ptr<FaultInjectionEnv::FileState> FaultInjectionEnv::TrackFile(
    const std::string& name, bool existed) {
  auto it = files_.find(name);
  if (it != files_.end()) return it->second;
  auto state = std::make_shared<FileState>();
  if (existed) {
    // Pre-existing content counts as durable.
    std::string content;
    if (base_->ReadFileToString(name, &content).ok()) {
      state->synced = std::move(content);
    }
    state->durable = true;
  }
  files_[name] = state;
  return state;
}

StatusOr<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::OpenFile(
    const std::string& name, bool create) {
  bool existed = base_->FileExists(name);
  auto file_or = base_->OpenFile(name, create);
  FAME_RETURN_IF_ERROR(file_or.status());
  auto state = TrackFile(name, existed);
  return std::unique_ptr<RandomAccessFile>(
      new FaultFile(this, std::move(file_or).value(), state));
}

Status FaultInjectionEnv::DeleteFile(const std::string& name) {
  files_.erase(name);
  return base_->DeleteFile(name);
}

bool FaultInjectionEnv::FileExists(const std::string& name) const {
  return base_->FileExists(name);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  FAME_RETURN_IF_ERROR(base_->RenameFile(from, to));
  // Rename is the atomic-install primitive; treat it as durable.
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

void FaultInjectionEnv::FailRange(FaultOp op, uint64_t start, uint64_t count,
                                  Status error) {
  rules_.push_back(FaultRule{op, start, count, std::move(error), false, 0});
}

void FaultInjectionEnv::FailFrom(FaultOp op, uint64_t start, Status error) {
  FailRange(op, start, ~0ull, std::move(error));
}

void FaultInjectionEnv::TearWrite(uint64_t nth, uint64_t keep_bytes) {
  FaultRule r{FaultOp::kWrite, nth, 1, Status::IOError("injected torn write"),
              true, keep_bytes};
  rules_.push_back(std::move(r));
}

void FaultInjectionEnv::CorruptRead(uint64_t nth, uint64_t byte_in_result,
                                    uint8_t bit) {
  FaultRule r{FaultOp::kRead, nth, 1, Status::OK(), false, 0};
  r.corrupt = true;
  r.corrupt_byte = byte_in_result;
  r.corrupt_bit = bit;
  rules_.push_back(std::move(r));
}

Status FaultInjectionEnv::FlipBitAtRest(const std::string& name,
                                        uint64_t offset, uint8_t bit) {
  auto file_or = base_->OpenFile(name, /*create=*/false);
  FAME_RETURN_IF_ERROR(file_or.status());
  auto& f = *file_or.value();
  char byte = 0;
  Slice result;
  FAME_RETURN_IF_ERROR(f.Read(offset, 1, &byte, &result));
  if (result.size() < 1) {
    return Status::InvalidArgument("bit-flip offset past end of file");
  }
  char mask = static_cast<char>(1u << (bit & 7));
  char flipped = static_cast<char>(result.data()[0] ^ mask);
  FAME_RETURN_IF_ERROR(f.Write(offset, Slice(&flipped, 1)));
  // The rot is on the flash itself, so a post-crash image carries it too.
  auto it = files_.find(name);
  if (it != files_.end() && offset < it->second->synced.size()) {
    it->second->synced[offset] ^= mask;
  }
  return Status::OK();
}

void FaultInjectionEnv::CrashAfterMutations(uint64_t nth) {
  crash_after_ = nth;
}

void FaultInjectionEnv::ClearFaults() {
  rules_.clear();
  crash_after_ = ~0ull;
  disk_full_ = false;
}

void FaultInjectionEnv::SimulateCrash() {
  ClearFaults();
  for (auto it = files_.begin(); it != files_.end();) {
    const std::string& name = it->first;
    FileState& state = *it->second;
    if (!state.durable) {
      // Never synced: the file never reached the medium.
      base_->DeleteFile(name);
      it = files_.erase(it);
      continue;
    }
    auto file_or = base_->OpenFile(name, /*create=*/true);
    if (file_or.ok()) {
      auto& f = *file_or.value();
      f.Truncate(state.synced.size());
      if (!state.synced.empty()) f.Write(0, state.synced);
    }
    ++it;
  }
}

}  // namespace fame::osal

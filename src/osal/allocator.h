// Memory allocation alternatives ("Memory Alloc" feature, Figure 2):
//   - DynamicAllocator    — heap-backed, for hosts with an OS allocator
//   - StaticPoolAllocator — fixed arena with a first-fit free list, for
//                           deeply embedded targets where all memory is
//                           budgeted at build time (no malloc)
//   - TrackingAllocator   — decorator counting live/peak bytes, feeding the
//                           RAM non-functional property measurements (§3.2)
// The segregated slab allocators (BasicSlabPool, StaticSlabAllocator) live
// in osal/slab_alloc.h; they implement the same interface.
#ifndef FAME_OSAL_ALLOCATOR_H_
#define FAME_OSAL_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace fame::osal {

/// Live/peak/cross-thread counters every allocator can report; feeds the
/// alloc_* gauges of the observability snapshot. remote_frees is nonzero
/// only for sharded pools that execute cross-thread deallocations.
struct AllocStats {
  size_t live_bytes = 0;
  size_t peak_bytes = 0;
  uint64_t remote_frees = 0;
};

/// Abstract allocator used by the buffer manager and index structures.
///
/// Alignment contract: every block returned by Allocate is aligned to
/// alignof(std::max_align_t). Implementations must enforce this (the
/// StaticPoolAllocator header math and the slab size classes silently
/// depend on it); callers must not request stricter alignment.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Returns a block of at least `n` bytes, or nullptr when exhausted
  /// (static pools are finite; callers must handle nullptr).
  virtual void* Allocate(size_t n) = 0;

  /// Returns a block obtained from Allocate. `n` must match the original
  /// request (needed by pool allocators; checked where possible).
  /// p == nullptr is a no-op (callers legally pass back a failed Allocate).
  virtual void Deallocate(void* p, size_t n) = 0;

  /// Bytes currently handed out.
  virtual size_t bytes_in_use() const = 0;

  /// Stable identifier of the alternative: "dynamic", "static", "tracking",
  /// "slab", "static-slab".
  virtual const char* name() const = 0;

  /// Counter snapshot for observability. The default reports live bytes
  /// only; allocators that track peaks or remote frees override.
  virtual AllocStats stats() const { return {bytes_in_use(), 0, 0}; }
};

/// True when `p` satisfies the Allocator alignment contract. Debug checks
/// in the implementations assert this on every block they hand out.
inline bool IsContractAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) &
          (alignof(std::max_align_t) - 1)) == 0;
}

/// Heap-backed allocator (operator new/delete).
class DynamicAllocator final : public Allocator {
 public:
  void* Allocate(size_t n) override;
  void Deallocate(void* p, size_t n) override;
  size_t bytes_in_use() const override { return in_use_; }
  const char* name() const override { return "dynamic"; }
  AllocStats stats() const override { return {in_use_, peak_, 0}; }

 private:
  size_t in_use_ = 0;
  size_t peak_ = 0;
};

/// Fixed-arena allocator with a first-fit free list and coalescing of
/// adjacent free blocks. All state lives inside the arena passed at
/// construction, so a product can place it in a static buffer.
class StaticPoolAllocator final : public Allocator {
 public:
  /// Manages `size` bytes at `arena` (not owned). The pool reserves a small
  /// per-block header; usable capacity is slightly under `size`.
  StaticPoolAllocator(void* arena, size_t size);

  /// Convenience: owns an internal arena of `size` bytes.
  explicit StaticPoolAllocator(size_t size);

  void* Allocate(size_t n) override;
  void Deallocate(void* p, size_t n) override;
  size_t bytes_in_use() const override { return in_use_; }
  const char* name() const override { return "static"; }
  AllocStats stats() const override { return {in_use_, peak_, 0}; }

  size_t capacity() const { return size_; }
  /// Largest single allocation currently satisfiable (fragmentation probe).
  size_t LargestFreeBlock() const;

 private:
  struct BlockHeader {
    size_t size;        // payload size of this block
    BlockHeader* next;  // next free block (free blocks only)
  };
  static constexpr size_t kAlign = alignof(std::max_align_t);
  // The block layout (header immediately before the payload) only yields
  // contract-aligned payloads if the header rounds to a multiple of the
  // contract alignment — enforce what the math silently assumes.
  static_assert(((sizeof(BlockHeader) + kAlign - 1) & ~(kAlign - 1)) %
                        alignof(std::max_align_t) ==
                    0,
                "BlockHeader must round to the Allocator alignment contract");
  static size_t AlignUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

  std::unique_ptr<char[]> owned_arena_;
  char* arena_;
  size_t size_;
  BlockHeader* free_list_;
  size_t in_use_ = 0;
  size_t peak_ = 0;
};

/// Decorator that forwards to `base` and records live and peak usage.
class TrackingAllocator final : public Allocator {
 public:
  explicit TrackingAllocator(Allocator* base) : base_(base) {}

  void* Allocate(size_t n) override {
    void* p = base_->Allocate(n);
    if (p != nullptr) {
      live_ += n;
      if (live_ > peak_) peak_ = live_;
      ++alloc_calls_;
    }
    return p;
  }
  void Deallocate(void* p, size_t n) override {
    // A failed Allocate hands callers nullptr, which they legally pass
    // back; counting it would underflow live_ and corrupt the RAM NFP
    // measurements this decorator exists to feed.
    if (p == nullptr) return;
    base_->Deallocate(p, n);
    live_ -= n;
  }
  size_t bytes_in_use() const override { return live_; }
  const char* name() const override { return "tracking"; }
  AllocStats stats() const override {
    return {live_, peak_, base_->stats().remote_frees};
  }

  size_t peak_bytes() const { return peak_; }
  uint64_t alloc_calls() const { return alloc_calls_; }
  void ResetPeak() { peak_ = live_; }

 private:
  Allocator* base_;
  size_t live_ = 0;
  size_t peak_ = 0;
  uint64_t alloc_calls_ = 0;
};

}  // namespace fame::osal

#endif  // FAME_OSAL_ALLOCATOR_H_

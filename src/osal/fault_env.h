// FaultInjectionEnv: a deterministic fault-injection wrapper over any Env,
// modelling the failure modes of the embedded storage hardware FAME-DBMS
// targets (NutOS-class flash): transient IO errors, torn/short sector
// writes, fsync failures, and power loss.
//
// Failure model:
//   - Write/Read/Sync/Truncate each have a monotonically increasing op
//     counter; fault rules fire on exact, scheduled op indexes, so every
//     run of a deterministic workload injects at exactly the same points.
//   - A torn write persists only a prefix of the data and reports IOError —
//     the partial bytes ARE on the medium, exactly like a sector write that
//     lost power halfway.
//   - Sync() is the durability point: on success the file's current content
//     becomes the "on-flash" image. SimulateCrash() reverts every file to
//     its last synced image (files never synced since creation disappear),
//     modelling power loss with all volatile buffers dropped.
//   - CrashAfterMutations(n) kills the "device" after the n-th mutating op
//     (write/sync/truncate): every later mutation fails with IOError until
//     SimulateCrash() resets the schedule — the way the randomized recovery
//     harness sweeps crash points through a workload.
//
// The wrapper is test infrastructure but lives in src/osal because recovery
// guarantees are product features here: products are validated against this
// env in tier-1 tests.
#ifndef FAME_OSAL_FAULT_ENV_H_
#define FAME_OSAL_FAULT_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osal/env.h"

namespace fame::osal {

/// Operation classes a fault rule can target.
enum class FaultOp : uint8_t { kRead = 0, kWrite = 1, kSync = 2, kTruncate = 3 };
constexpr size_t kNumFaultOps = 4;

class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (not owned). All files must be opened through the wrapper
  /// for crash modelling to see them.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // ---- Env interface (forwards to base, applying fault rules) ----
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& name,
                                                       bool create) override;
  Status DeleteFile(const std::string& name) override;
  bool FileExists(const std::string& name) const override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  /// Listing is metadata-only (like FileExists): no op counter, no faults.
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override {
    return base_->ListFiles(prefix, out);
  }
  uint64_t NowNanos() const override { return base_->NowNanos(); }
  const char* name() const override { return "fault"; }

  // ---- fault scheduling (deterministic) ----
  /// Ops of kind `op` whose 0-based index falls in [start, start+count)
  /// fail with `error` (transient if count is finite).
  void FailRange(FaultOp op, uint64_t start, uint64_t count, Status error);
  /// Every op of kind `op` from index `start` on fails (persistent failure,
  /// e.g. worn-out flash).
  void FailFrom(FaultOp op, uint64_t start, Status error);
  /// The write with index `nth` persists only its first `keep_bytes` bytes
  /// and returns IOError: a torn sector write.
  void TearWrite(uint64_t nth, uint64_t keep_bytes);
  /// The read with index `nth` *succeeds* but silently delivers flipped bit
  /// `bit` (0-7) of result byte `byte_in_result` (clamped to the result):
  /// bit rot on the wire / in the sense amplifier. The medium itself is
  /// untouched — a later read sees clean data.
  void CorruptRead(uint64_t nth, uint64_t byte_in_result, uint8_t bit);
  /// After `nth` mutating ops (writes/syncs/truncates, globally counted)
  /// have completed, every further mutation fails with IOError — the device
  /// died mid-workload. Reads keep working.
  void CrashAfterMutations(uint64_t nth);
  /// While set, every *size-extending* write or truncate fails with
  /// ResourceExhausted — a full device. Overwrites of existing bytes (meta
  /// slots, WAL tail truncation, page write-back) still succeed, exactly
  /// like a real ENOSPC. Cleared by ClearFaults()/SimulateCrash().
  void SetDiskFull(bool on) { disk_full_ = on; }
  bool disk_full() const { return disk_full_; }
  /// Removes every scheduled fault.
  void ClearFaults();

  // ---- at-rest damage ----
  /// Flips bit `bit` (0-7) of byte `offset` of `name` directly on the
  /// backing medium — silent bit rot of data at rest. The synced crash
  /// image is flipped too (the damage is on the flash, not in a buffer).
  /// Not counted as an op; no fault rules apply.
  Status FlipBitAtRest(const std::string& name, uint64_t offset, uint8_t bit);

  // ---- crash modelling ----
  /// Power loss: every file reverts to its last synced image; files created
  /// but never synced disappear. Also clears all fault schedules (the
  /// replacement device is healthy). Open handles from before the crash
  /// must not be used afterwards.
  void SimulateCrash();

  // ---- observability ----
  /// Ops of kind `op` seen so far (attempted, including failed ones).
  uint64_t op_count(FaultOp op) const {
    return op_counts_[static_cast<size_t>(op)];
  }
  /// Mutating ops (write/sync/truncate) seen so far.
  uint64_t mutation_count() const { return mutations_; }
  /// Faults injected so far.
  uint64_t faults_injected() const { return faults_injected_; }

 private:
  friend class FaultFile;

  struct FileState {
    std::string synced;        // last durable image
    bool durable = false;      // survived at least one Sync (or pre-existed)
  };

  struct FaultRule {
    FaultOp op;
    uint64_t start;
    uint64_t count;       // number of op indexes covered
    Status error;
    bool torn = false;    // torn write: persist prefix, then fail
    uint64_t torn_keep = 0;
    bool corrupt = false;  // corrupt read: deliver a flipped bit, report OK
    uint64_t corrupt_byte = 0;
    uint8_t corrupt_bit = 0;
  };

  /// What CheckOp decided for one op: an error to return, a torn write to
  /// persist partially, or a read to corrupt silently.
  struct FaultOutcome {
    Status error;
    bool torn = false;
    uint64_t torn_keep = 0;
    bool corrupt = false;
    uint64_t corrupt_byte = 0;
    uint8_t corrupt_bit = 0;
  };

  /// Advances the `op` counter and returns the injected fault, if any.
  FaultOutcome CheckOp(FaultOp op);

  std::shared_ptr<FileState> TrackFile(const std::string& name, bool existed);

  Env* base_;
  std::vector<FaultRule> rules_;
  uint64_t crash_after_ = ~0ull;
  bool disk_full_ = false;
  uint64_t op_counts_[kNumFaultOps] = {0, 0, 0, 0};
  uint64_t mutations_ = 0;
  uint64_t faults_injected_ = 0;
  std::map<std::string, std::shared_ptr<FileState>> files_;
};

}  // namespace fame::osal

#endif  // FAME_OSAL_FAULT_ENV_H_

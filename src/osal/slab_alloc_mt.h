// Multi-threaded policy for BasicSlabPool (see slab_alloc.h). Kept in its
// own header — mirroring storage/concurrency_mt.h — so single-threaded
// products never include <atomic>/<mutex>/<thread> through the allocator:
// the ST instantiation stays plain pointer bumps by inspection.
#ifndef FAME_OSAL_SLAB_ALLOC_MT_H_
#define FAME_OSAL_SLAB_ALLOC_MT_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>

#include "osal/slab_alloc.h"

namespace fame::osal::slab {

struct SlabMultiThreaded {
  static constexpr bool kConcurrent = true;
  static constexpr size_t kDefaultShards = 8;
  using Mutex = std::mutex;

  /// MPSC remote-free stack head: many producers push freed blocks with a
  /// CAS, the single owner empties it with one exchange.
  template <typename Node>
  struct RemotePtr {
    std::atomic<Node*> head{nullptr};
  };

  template <typename Node>
  static void RemotePush(RemotePtr<Node>& r, Node* n) {
    Node* old = r.head.load(std::memory_order_relaxed);
    do {
      n->next = old;
    } while (!r.head.compare_exchange_weak(old, n, std::memory_order_release,
                                           std::memory_order_relaxed));
  }

  template <typename Node>
  static Node* RemoteDrainAll(RemotePtr<Node>& r) {
    return r.head.exchange(nullptr, std::memory_order_acquire);
  }

  template <typename Node>
  static bool RemoteEmpty(const RemotePtr<Node>& r) {
    return r.head.load(std::memory_order_relaxed) == nullptr;
  }

  /// Stable per-thread shard assignment: hashed once per thread, cached.
  static size_t HomeShard(size_t nshards) {
    static thread_local const size_t hashed =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return hashed % nshards;
  }
};

using ConcurrentSlabPool = BasicSlabPool<SlabMultiThreaded>;

}  // namespace fame::osal::slab

#endif  // FAME_OSAL_SLAB_ALLOC_MT_H_

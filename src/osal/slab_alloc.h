// Sharded slab allocator — the snmalloc-style "Memory Alloc" overhaul
// (ROADMAP item 5). Three pieces share one size-class scheme:
//
//   BasicSlabPool<Policy>   heap-backed pool, threading-policy templated.
//                           Small requests ride per-shard segregated
//                           freelists carved out of aligned 64 KiB slabs;
//                           cross-shard Deallocate is a single atomic push
//                           onto the owner shard's MPSC remote-free stack,
//                           reclaimed in a batch on the owner's next
//                           Allocate. The SlabSingleThreaded instantiation
//                           compiles to plain pointer bumps: no-op mutex,
//                           remote path discarded by if-constexpr, zero
//                           atomics (this header includes no threading
//                           headers — checkable by inspection; the MT
//                           policy lives in slab_alloc_mt.h).
//   StaticSlabAllocator     arena-backed Memory-Alloc:Static alternative.
//                           One fixed budget at construction, no malloc
//                           afterwards; segregated class freelists replace
//                           the StaticPoolAllocator O(n) first-fit walk.
//   PooledNew/PooledDelete  thread-local object pool behind the class-level
//                           operator new/delete of index::Cursor and
//                           tx::Transaction (the per-op hot path). Gated by
//                           FAME_SLAB_ENABLED so products that deselect the
//                           feature carry none of it (nm probe enforced).
//
// Alignment: all size classes are multiples of alignof(std::max_align_t)
// and every carve starts at a contract-aligned base, so the Allocator
// alignment contract holds by construction.
#ifndef FAME_OSAL_SLAB_ALLOC_H_
#define FAME_OSAL_SLAB_ALLOC_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#include "osal/allocator.h"

// Feature gate, mirroring obs/obs.h: the build (or a probe target) defines
// FAME_SLAB_DISABLE to compile the pooled-object path out entirely.
#if defined(FAME_SLAB_DISABLE)
#define FAME_SLAB_ENABLED 0
#else
#define FAME_SLAB_ENABLED 1
#endif

namespace fame::osal::slab {

// ---------------------------------------------------------------------------
// Size classes. Every class is a multiple of the alignment contract; the
// spacing (powers of two plus midpoints) bounds internal fragmentation at
// 25% while keeping class lookup a short branch-free scan.
inline constexpr size_t kClassSizes[] = {16,  32,  48,  64,  96,  128,
                                         192, 256, 384, 512, 768, 1024};
inline constexpr size_t kNumClasses =
    sizeof(kClassSizes) / sizeof(kClassSizes[0]);
inline constexpr size_t kMaxSmall = kClassSizes[kNumClasses - 1];

constexpr size_t ClassSize(size_t c) { return kClassSizes[c]; }

constexpr size_t SizeToClass(size_t n) {
  size_t c = 0;
  while (kClassSizes[c] < n) ++c;
  return c;
}

constexpr size_t AlignUp(size_t n) {
  constexpr size_t a = alignof(std::max_align_t);
  return (n + a - 1) & ~(a - 1);
}

static_assert(SizeToClass(1) == 0 && SizeToClass(16) == 0 &&
              SizeToClass(17) == 1 && SizeToClass(1024) == kNumClasses - 1);
static_assert([] {
  for (size_t c = 0; c < kNumClasses; ++c) {
    if (kClassSizes[c] % alignof(std::max_align_t) != 0) return false;
    if (kClassSizes[c] < sizeof(void*) * 2) return false;  // freelist nodes
  }
  return true;
}());

// Debug poison written over a freed block before it enters a freelist, so
// use-after-free reads trip deterministically under the sanitizer jobs.
inline void PoisonFreedBlock(void* p, size_t n) {
#ifndef NDEBUG
  std::memset(p, 0xDB, n);
#else
  (void)p;
  (void)n;
#endif
}

// ---------------------------------------------------------------------------
// Threading policies. The ST policy lives here (and keeps this header free
// of <atomic>/<mutex>/<thread>); SlabMultiThreaded is in slab_alloc_mt.h.
struct SlabSingleThreaded {
  static constexpr bool kConcurrent = false;
  static constexpr size_t kDefaultShards = 1;
  struct Mutex {
    void lock() {}
    void unlock() {}
  };
  // Placeholder for the MPSC remote-free stack head; never touched in ST
  // builds (the remote path is discarded by if-constexpr).
  template <typename Node>
  struct RemotePtr {
    Node* head = nullptr;
  };
  static size_t HomeShard(size_t /*nshards*/) { return 0; }
};

namespace detail {
/// Scoped lock over a policy mutex; compiles to nothing for the ST policy.
template <typename M>
class SlabLockGuard {
 public:
  explicit SlabLockGuard(M& m) : m_(m) { m_.lock(); }
  ~SlabLockGuard() { m_.unlock(); }
  SlabLockGuard(const SlabLockGuard&) = delete;
  SlabLockGuard& operator=(const SlabLockGuard&) = delete;

 private:
  M& m_;
};
}  // namespace detail

// ---------------------------------------------------------------------------
/// Sharded slab pool. Small blocks (≤ kMaxSmall) come from per-shard,
/// per-class freelists fed by bump carving inside 64 KiB pointer-aligned
/// slabs; the owning shard of any small block is recovered by masking the
/// pointer down to its slab header. Large blocks go straight to the heap
/// and are routed by the Deallocate size argument, so they carry no header.
template <typename Policy>
class BasicSlabPool final : public Allocator {
 public:
  static constexpr size_t kSlabBytes = 64 * 1024;

  explicit BasicSlabPool(size_t shards = Policy::kDefaultShards)
      : nshards_(shards == 0 ? 1 : shards),
        shards_(std::make_unique<Shard[]>(shards == 0 ? 1 : shards)) {}

  ~BasicSlabPool() override {
    for (size_t i = 0; i < nshards_; ++i) {
      SlabHeader* s = shards_[i].slabs;
      while (s != nullptr) {
        SlabHeader* next = s->next_slab;
        ::operator delete(s, std::align_val_t(kSlabBytes));
        s = next;
      }
    }
  }

  void* Allocate(size_t n) override {
    if (n == 0) n = 1;
    if (n > kMaxSmall) {
      // Large blocks are heap-direct and routed back by size; accounting
      // lives on shard 0 so alloc and free touch the same counters.
      Shard& sh = shards_[0];
      detail::SlabLockGuard<typename Policy::Mutex> g(sh.mu);
      return AllocateLargeLocked(sh, n);
    }
    Shard& sh = shards_[Policy::HomeShard(nshards_)];
    detail::SlabLockGuard<typename Policy::Mutex> g(sh.mu);
    if constexpr (Policy::kConcurrent) DrainRemoteLocked(sh);
    const size_t c = SizeToClass(n);
    FreeNode* f = sh.free_[c];
    if (f != nullptr) {
      sh.free_[c] = f->next;
      Charge(sh, ClassSize(c));
      return f;
    }
    if (sh.bump_[c] + ClassSize(c) > sh.bump_end_[c]) {
      if (!RefillClassLocked(sh, c)) return nullptr;
    }
    char* p = sh.bump_[c];
    sh.bump_[c] += ClassSize(c);
    Charge(sh, ClassSize(c));
    assert(IsContractAligned(p));
    return p;
  }

  void Deallocate(void* p, size_t n) override {
    if (p == nullptr) return;
    if (n == 0) n = 1;
    if (n > kMaxSmall) {
      Shard& sh = shards_[0];
      detail::SlabLockGuard<typename Policy::Mutex> g(sh.mu);
      sh.live -= AlignUp(n);
      ::operator delete(p);
      return;
    }
    auto* slab = reinterpret_cast<SlabHeader*>(
        reinterpret_cast<uintptr_t>(p) & ~uintptr_t(kSlabBytes - 1));
    assert(slab->magic == kSlabMagic);
    const size_t c = SizeToClass(n);
    assert(slab->size_class == c);
    Shard& owner = shards_[slab->shard];
    if constexpr (Policy::kConcurrent) {
      // A thread whose home shard is not the block's owner must not touch
      // the owner's freelists; it pushes onto the owner's MPSC remote
      // stack instead — one atomic CAS, no lock, reclaimed in a batch by
      // the owner on its next Allocate.
      if (&shards_[Policy::HomeShard(nshards_)] != &owner) {
        PoisonFreedBlock(p, ClassSize(c));
        auto* node = static_cast<RemoteNode*>(p);
        node->cls = c;
        Policy::RemotePush(owner.remote, node);
        return;
      }
    }
    detail::SlabLockGuard<typename Policy::Mutex> g(owner.mu);
    PoisonFreedBlock(p, ClassSize(c));
    auto* node = static_cast<FreeNode*>(p);
    node->next = owner.free_[c];
    owner.free_[c] = node;
    owner.live -= ClassSize(c);
  }

  size_t bytes_in_use() const override {
    size_t total = 0;
    for (size_t i = 0; i < nshards_; ++i) {
      detail::SlabLockGuard<typename Policy::Mutex> g(shards_[i].mu);
      total += shards_[i].live;
    }
    return total;
  }

  const char* name() const override { return "slab"; }

  AllocStats stats() const override {
    AllocStats a;
    for (size_t i = 0; i < nshards_; ++i) {
      detail::SlabLockGuard<typename Policy::Mutex> g(shards_[i].mu);
      a.live_bytes += shards_[i].live;
      a.peak_bytes += shards_[i].peak;
      a.remote_frees += shards_[i].remote_frees;
    }
    return a;
  }

  size_t shard_count() const { return nshards_; }

  /// Forces owner-side reclaim of every shard's remote stack. Normal
  /// reclaim happens on the owning shard's next Allocate; tests and
  /// shutdown paths call this to settle `bytes_in_use` (blocks sitting on
  /// a remote stack still count as live until reclaimed).
  void DrainRemote() {
    if constexpr (Policy::kConcurrent) {
      for (size_t i = 0; i < nshards_; ++i) {
        detail::SlabLockGuard<typename Policy::Mutex> g(shards_[i].mu);
        DrainRemoteLocked(shards_[i]);
      }
    }
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct RemoteNode {
    RemoteNode* next;
    size_t cls;
  };
  static constexpr uint32_t kSlabMagic = 0x51ab51abu;
  struct SlabHeader {
    uint32_t magic;
    uint32_t size_class;
    uint32_t shard;
    uint32_t reserved;
    SlabHeader* next_slab;  // teardown chain, per shard
  };
  static constexpr size_t kSlabPayloadOffset = AlignUp(sizeof(SlabHeader));

  struct Shard {
    mutable typename Policy::Mutex mu;
    FreeNode* free_[kNumClasses] = {};
    char* bump_[kNumClasses] = {};
    char* bump_end_[kNumClasses] = {};
    [[no_unique_address]] typename Policy::template RemotePtr<RemoteNode>
        remote;
    SlabHeader* slabs = nullptr;
    size_t live = 0;  // shard-local; pool totals sum across shards
    size_t peak = 0;
    uint64_t remote_frees = 0;  // blocks reclaimed off the remote stack
  };

  static void Charge(Shard& sh, size_t bytes) {
    sh.live += bytes;
    if (sh.live > sh.peak) sh.peak = sh.live;
  }

  // Owner-side batch reclaim: one exchange empties the MPSC stack, then
  // every node goes back to its class freelist under the already-held lock.
  void DrainRemoteLocked(Shard& sh) {
    if constexpr (Policy::kConcurrent) {
      if (Policy::RemoteEmpty(sh.remote)) return;
      RemoteNode* n = Policy::RemoteDrainAll(sh.remote);
      while (n != nullptr) {
        RemoteNode* next = n->next;
        const size_t c = n->cls;
        auto* f = reinterpret_cast<FreeNode*>(n);
        f->next = sh.free_[c];
        sh.free_[c] = f;
        sh.live -= ClassSize(c);
        ++sh.remote_frees;
        n = next;
      }
    }
  }

  bool RefillClassLocked(Shard& sh, size_t c) {
    void* raw =
        ::operator new(kSlabBytes, std::align_val_t(kSlabBytes), std::nothrow);
    if (raw == nullptr) return false;
    auto* slab = static_cast<SlabHeader*>(raw);
    slab->magic = kSlabMagic;
    slab->size_class = static_cast<uint32_t>(c);
    slab->shard = static_cast<uint32_t>(&sh - shards_.get());
    slab->reserved = 0;
    slab->next_slab = sh.slabs;
    sh.slabs = slab;
    sh.bump_[c] = static_cast<char*>(raw) + kSlabPayloadOffset;
    sh.bump_end_[c] = static_cast<char*>(raw) + kSlabBytes;
    return true;
  }

  void* AllocateLargeLocked(Shard& sh, size_t n) {
    void* p = ::operator new(n, std::nothrow);
    if (p == nullptr) return nullptr;
    assert(IsContractAligned(p));
    Charge(sh, AlignUp(n));
    return p;
  }

  size_t nshards_;
  std::unique_ptr<Shard[]> shards_;
};

using SlabPool = BasicSlabPool<SlabSingleThreaded>;

// ---------------------------------------------------------------------------
/// Arena-backed Memory-Alloc:Static alternative. The whole budget is taken
/// once at construction (or supplied externally) and never grows: small
/// classes bump-carve from the bottom of the arena and recycle through
/// segregated freelists — O(1) pointer pops replacing the first-fit walk —
/// while large blocks (page-frame arenas, WAL buffers) carve from the top
/// and recycle through a first-fit list that is short in practice because
/// frame arenas are allocated once per open. No per-block headers: the
/// Deallocate size argument routes every free, so usable capacity is the
/// full budget.
class StaticSlabAllocator final : public Allocator {
 public:
  /// Manages `size` bytes at `arena` (not owned; must satisfy the
  /// alignment contract).
  StaticSlabAllocator(void* arena, size_t size);
  /// Owns an internal arena of `size` bytes — the single heap allocation
  /// this allocator ever performs.
  explicit StaticSlabAllocator(size_t size);

  void* Allocate(size_t n) override;
  void Deallocate(void* p, size_t n) override;
  size_t bytes_in_use() const override { return live_; }
  const char* name() const override { return "static-slab"; }
  AllocStats stats() const override { return {live_, peak_, 0}; }

  size_t capacity() const { return size_; }
  /// Largest single allocation currently satisfiable (fragmentation probe):
  /// the untouched bump gap or the biggest recycled large block.
  size_t LargestFreeBlock() const;
  /// Arena bytes a request of `n` costs (size-class rounding for small
  /// requests, contract rounding for large) — lets tests account exactly.
  static size_t ChargedSize(size_t n);

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct LargeNode {
    size_t size;
    LargeNode* next;
  };
  void* AllocateLarge(size_t n);

  std::unique_ptr<char[]> owned_;
  char* base_;
  size_t size_;
  char* lo_;  // small-class bump frontier (grows up)
  char* hi_;  // large-block frontier (grows down); free gap is [lo_, hi_)
  FreeNode* free_[kNumClasses] = {};
  LargeNode* large_free_ = nullptr;
  size_t live_ = 0;
  size_t peak_ = 0;
};

// ---------------------------------------------------------------------------
// Thread-local object pool behind the pooled class-level operator new of
// index::Cursor and tx::Transaction. Every block is an individual heap
// allocation tagged with its owning cache, so a free from any thread (or
// after the owner thread exited) safely falls back to operator delete;
// same-thread churn — the per-op hot path — is a freelist pop/push with
// zero atomics and zero locks.
#if FAME_SLAB_ENABLED

/// Allocates a pooled block (throws std::bad_alloc on exhaustion, matching
/// operator new semantics of the classes that ride it).
void* PooledNew(size_t n);
/// Sized release; same-thread frees recycle into the thread cache.
void PooledDelete(void* p, size_t n) noexcept;
/// Unsized release (the block header carries its class).
void PooledDelete(void* p) noexcept;

struct ThreadCacheStats {
  uint64_t hits = 0;       // allocations served from the cache freelist
  uint64_t misses = 0;     // allocations that went to the heap
  uint64_t returns = 0;    // frees recycled into the cache
  uint64_t live_blocks = 0;
};
/// Stats of the calling thread's cache.
ThreadCacheStats PooledThreadStats();
/// Process-wide count of pooled blocks freed on a thread other than their
/// allocator (the object-pool analogue of the slab remote-free counter).
uint64_t PooledCrossThreadFrees();

#endif  // FAME_SLAB_ENABLED

}  // namespace fame::osal::slab

#endif  // FAME_OSAL_SLAB_ALLOC_H_

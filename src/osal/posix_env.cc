// PosixEnv: the "Linux" OS-Abstraction alternative. Plain pread/pwrite files.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "osal/env.h"

namespace fame::osal {
namespace {

Status ErrnoStatus(const std::string& context, int err) {
  // A full device is not an IO glitch: retrying cannot help and the engine
  // must not degrade to read-only over it. Surface it as ResourceExhausted,
  // the same code MemEnv uses for an exceeded capacity budget.
  if (err == ENOSPC
#ifdef EDQUOT
      || err == EDQUOT
#endif
  ) {
    return Status::ResourceExhausted(context + ": " + std::strerror(err));
  }
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixFile final : public RandomAccessFile {
 public:
  explicit PosixFile(int fd, std::string name)
      : fd_(fd), name_(std::move(name)) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* result) const override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + name_, errno);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    *result = Slice(scratch, got);
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    size_t put = 0;
    while (put < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + put, data.size() - put,
                           static_cast<off_t>(offset + put));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + name_, errno);
      }
      put += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + name_, errno);
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat " + name_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate " + name_, errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string name_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& name,
                                                       bool create) override {
    int flags = O_RDWR;
    if (create) flags |= O_CREAT;
    int fd = ::open(name.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open " + name, errno);
    return std::unique_ptr<RandomAccessFile>(new PosixFile(fd, name));
  }

  Status DeleteFile(const std::string& name) override {
    if (::unlink(name.c_str()) != 0) return ErrnoStatus("unlink " + name, errno);
    return Status::OK();
  }

  bool FileExists(const std::string& name) const override {
    return ::access(name.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override {
    // Split into directory + name prefix; entries are returned with the
    // directory part re-attached so names round-trip into OpenFile.
    size_t slash = prefix.find_last_of('/');
    std::string dir = slash == std::string::npos ? std::string(".")
                                                 : prefix.substr(0, slash + 1);
    DIR* d = ::opendir(slash == std::string::npos ? "." : dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir " + dir, errno);
    std::string name_prefix =
        slash == std::string::npos ? prefix : prefix.substr(slash + 1);
    std::vector<std::string> found;
    for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
      std::string entry(e->d_name);
      if (entry.compare(0, name_prefix.size(), name_prefix) != 0) continue;
      found.push_back(slash == std::string::npos ? entry : dir + entry);
    }
    ::closedir(d);
    std::sort(found.begin(), found.end());
    out->insert(out->end(), found.begin(), found.end());
    return Status::OK();
  }

  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const char* name() const override { return "linux"; }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

}  // namespace fame::osal

// OS abstraction layer ("OS-Abstraction" feature in the FAME-DBMS feature
// diagram, Figure 2 of the paper). A DBMS product selects exactly one Env
// alternative at composition time:
//   - PosixEnv      ("Linux")  — real files on a POSIX filesystem
//   - MemEnv        ("NutOS")  — no filesystem; fixed-capacity in-memory
//                                storage, modelling a deeply embedded device
//   - Win32PathEnv  ("Win32")  — Windows path semantics shimmed over a
//                                backing Env (separator & drive handling)
#ifndef FAME_OSAL_ENV_H_
#define FAME_OSAL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace fame::osal {

/// A file supporting positional reads and writes; the unit of storage the
/// page manager sits on.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `scratch`; `*result` points into
  /// scratch (possibly fewer bytes at EOF).
  virtual Status Read(uint64_t offset, size_t n, char* scratch,
                      Slice* result) const = 0;

  /// Writes `data` at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const Slice& data) = 0;

  /// Forces written data to the storage medium.
  virtual Status Sync() = 0;

  /// Current file size in bytes.
  virtual StatusOr<uint64_t> Size() const = 0;

  /// Shrinks or extends the file to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;
};

/// Operating-system facade. Thread-compatible; products for single-core
/// embedded targets use it from one thread.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if `create`) a file for positional read/write.
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> OpenFile(
      const std::string& name, bool create) = 0;

  virtual Status DeleteFile(const std::string& name) = 0;
  virtual bool FileExists(const std::string& name) const = 0;

  /// Renames a file, replacing any existing target (used for atomic
  /// checkpoint installs).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Convenience whole-file helpers for small artifacts (feature models,
  /// feedback repositories).
  virtual Status WriteStringToFile(const std::string& name,
                                   const Slice& data);
  virtual Status ReadFileToString(const std::string& name, std::string* out);

  /// Appends to `out` the names of existing files starting with `prefix`,
  /// sorted lexicographically (WAL segment / archive discovery, backup
  /// tooling). The default reports NotSupported so foreign Env shims stay
  /// source-compatible; every shipped env overrides it.
  virtual Status ListFiles(const std::string& prefix,
                           std::vector<std::string>* out) const;

  /// Monotonic clock in nanoseconds (benchmark timing).
  virtual uint64_t NowNanos() const = 0;

  /// Stable identifier of the OS alternative: "linux", "nutos", "win32".
  virtual const char* name() const = 0;
};

/// Process-wide POSIX environment (never deleted).
Env* GetPosixEnv();

/// Creates a fresh in-memory environment with a total storage capacity of
/// `capacity_bytes` (0 = unlimited). Models the NutOS target: no file
/// system, storage carved out of a fixed RAM/flash budget.
std::unique_ptr<Env> NewMemEnv(uint64_t capacity_bytes);

/// Wraps `base` with Windows path semantics: accepts '\\' separators and a
/// leading drive letter, normalizing to the backing env's flat namespace.
std::unique_ptr<Env> NewWin32PathEnv(Env* base);

}  // namespace fame::osal

#endif  // FAME_OSAL_ENV_H_

#include "osal/env.h"

namespace fame::osal {

Status Env::WriteStringToFile(const std::string& name, const Slice& data) {
  auto file_or = OpenFile(name, /*create=*/true);
  FAME_RETURN_IF_ERROR(file_or.status());
  std::unique_ptr<RandomAccessFile> file = std::move(file_or).value();
  FAME_RETURN_IF_ERROR(file->Truncate(0));
  FAME_RETURN_IF_ERROR(file->Write(0, data));
  return file->Sync();
}

Status Env::ReadFileToString(const std::string& name, std::string* out) {
  out->clear();
  auto file_or = OpenFile(name, /*create=*/false);
  FAME_RETURN_IF_ERROR(file_or.status());
  std::unique_ptr<RandomAccessFile> file = std::move(file_or).value();
  auto size_or = file->Size();
  FAME_RETURN_IF_ERROR(size_or.status());
  uint64_t size = size_or.value();
  out->resize(size);
  if (size == 0) return Status::OK();
  Slice result;
  FAME_RETURN_IF_ERROR(file->Read(0, size, out->data(), &result));
  out->resize(result.size());
  return Status::OK();
}

Status Env::ListFiles(const std::string& prefix,
                      std::vector<std::string>* out) const {
  (void)prefix;
  (void)out;
  return Status::NotSupported(std::string(name()) +
                              " env does not support ListFiles");
}

}  // namespace fame::osal

#include "analysis/query.h"

#include <cctype>
#include <vector>

namespace fame::analysis {
namespace {

class AndQuery final : public ModelQuery {
 public:
  AndQuery(std::unique_ptr<ModelQuery> a, std::unique_ptr<ModelQuery> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  bool Eval(const ApplicationModel& m) const override {
    return a_->Eval(m) && b_->Eval(m);
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " and " + b_->ToString() + ")";
  }

 private:
  std::unique_ptr<ModelQuery> a_, b_;
};

class OrQuery final : public ModelQuery {
 public:
  OrQuery(std::unique_ptr<ModelQuery> a, std::unique_ptr<ModelQuery> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  bool Eval(const ApplicationModel& m) const override {
    return a_->Eval(m) || b_->Eval(m);
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " or " + b_->ToString() + ")";
  }

 private:
  std::unique_ptr<ModelQuery> a_, b_;
};

class NotQuery final : public ModelQuery {
 public:
  explicit NotQuery(std::unique_ptr<ModelQuery> a) : a_(std::move(a)) {}
  bool Eval(const ApplicationModel& m) const override { return !a_->Eval(m); }
  std::string ToString() const override { return "not " + a_->ToString(); }

 private:
  std::unique_ptr<ModelQuery> a_;
};

class ConstQuery final : public ModelQuery {
 public:
  explicit ConstQuery(bool v) : v_(v) {}
  bool Eval(const ApplicationModel&) const override { return v_; }
  std::string ToString() const override { return v_ ? "true" : "false"; }

 private:
  bool v_;
};

class PredQuery final : public ModelQuery {
 public:
  enum Kind { kCalls, kCallsWithFlag, kUsesType, kIncludes };
  PredQuery(Kind kind, std::string a, std::string b = "")
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  bool Eval(const ApplicationModel& m) const override {
    switch (kind_) {
      case kCalls:
        return m.Calls(a_);
      case kCallsWithFlag:
        return m.CallsWithFlag(a_, b_);
      case kUsesType:
        return m.UsesType(a_);
      case kIncludes:
        return m.Includes(a_);
    }
    return false;
  }

  std::string ToString() const override {
    switch (kind_) {
      case kCalls:
        return "calls(" + a_ + ")";
      case kCallsWithFlag:
        return "callsWithFlag(" + a_ + ", " + b_ + ")";
      case kUsesType:
        return "usesType(" + a_ + ")";
      case kIncludes:
        return "includes(" + a_ + ")";
    }
    return "?";
  }

 private:
  Kind kind_;
  std::string a_, b_;
};

class QueryParser {
 public:
  explicit QueryParser(const std::string& text) : text_(text) {}

  StatusOr<std::unique_ptr<ModelQuery>> Run() {
    auto expr = ParseExpr();
    FAME_RETURN_IF_ERROR(expr.status());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input in query at offset " +
                                std::to_string(pos_));
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeWord(const std::string& w) {
    SkipSpace();
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    size_t end = pos_ + w.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;  // prefix of a longer identifier
    }
    pos_ = end;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ReadName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == ':' || text_[pos_] == '.' ||
            text_[pos_] == '/' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  StatusOr<std::unique_ptr<ModelQuery>> ParseExpr() {
    auto left = ParseTerm();
    FAME_RETURN_IF_ERROR(left.status());
    std::unique_ptr<ModelQuery> node = std::move(left).value();
    while (ConsumeWord("or")) {
      auto right = ParseTerm();
      FAME_RETURN_IF_ERROR(right.status());
      node = std::make_unique<OrQuery>(std::move(node),
                                       std::move(right).value());
    }
    return node;
  }

  StatusOr<std::unique_ptr<ModelQuery>> ParseTerm() {
    auto left = ParseFactor();
    FAME_RETURN_IF_ERROR(left.status());
    std::unique_ptr<ModelQuery> node = std::move(left).value();
    while (ConsumeWord("and")) {
      auto right = ParseFactor();
      FAME_RETURN_IF_ERROR(right.status());
      node = std::make_unique<AndQuery>(std::move(node),
                                        std::move(right).value());
    }
    return node;
  }

  StatusOr<std::unique_ptr<ModelQuery>> ParseFactor() {
    if (ConsumeWord("not")) {
      auto inner = ParseFactor();
      FAME_RETURN_IF_ERROR(inner.status());
      return std::unique_ptr<ModelQuery>(
          new NotQuery(std::move(inner).value()));
    }
    if (ConsumeChar('(')) {
      auto inner = ParseExpr();
      FAME_RETURN_IF_ERROR(inner.status());
      if (!ConsumeChar(')')) return Status::ParseError("expected ')'");
      return inner;
    }
    if (ConsumeWord("true")) {
      return std::unique_ptr<ModelQuery>(new ConstQuery(true));
    }
    if (ConsumeWord("false")) {
      return std::unique_ptr<ModelQuery>(new ConstQuery(false));
    }
    for (auto [word, kind, arity] :
         {std::tuple{"callsWithFlag", PredQuery::kCallsWithFlag, 2},
          std::tuple{"calls", PredQuery::kCalls, 1},
          std::tuple{"usesType", PredQuery::kUsesType, 1},
          std::tuple{"includes", PredQuery::kIncludes, 1}}) {
      if (!ConsumeWord(word)) continue;
      if (!ConsumeChar('(')) {
        return Status::ParseError(std::string("expected '(' after ") + word);
      }
      std::string a = ReadName();
      if (a.empty()) return Status::ParseError("expected argument name");
      std::string b;
      if (arity == 2) {
        if (!ConsumeChar(',')) return Status::ParseError("expected ','");
        b = ReadName();
        if (b.empty()) return Status::ParseError("expected flag name");
      }
      if (!ConsumeChar(')')) return Status::ParseError("expected ')'");
      return std::unique_ptr<ModelQuery>(new PredQuery(kind, a, b));
    }
    return Status::ParseError("expected predicate at offset " +
                              std::to_string(pos_));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<ModelQuery>> ParseQuery(const std::string& text) {
  return QueryParser(text).Run();
}

}  // namespace fame::analysis

#include "analysis/lexer.h"

#include <cctype>

namespace fame::analysis {

std::vector<CppToken> TokenizeCpp(const std::string& src) {
  std::vector<CppToken> out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto peek = [&](size_t k) { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
    } else if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
    } else if (c == '#') {
      size_t start = ++i;
      while (i < n && src[i] != '\n') {
        // Line continuations inside directives.
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      out.push_back({CppToken::kPreproc, src.substr(start, i - start), line});
    } else if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.push_back({CppToken::kString, "", line});
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      out.push_back({CppToken::kIdent, src.substr(start, i - start), line});
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '.' || src[i] == 'x')) {
        ++i;
      }
      out.push_back({CppToken::kNumber, src.substr(start, i - start), line});
    } else {
      // Multi-char operators the analyzer cares about.
      static const char* kTwoChar[] = {"::", "->", "||", "&&", "==",
                                       "!=", "<=", ">=", "|=", "+="};
      std::string two;
      two.push_back(c);
      two.push_back(peek(1));
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (two == op) {
          out.push_back({CppToken::kPunct, two, line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        out.push_back({CppToken::kPunct, std::string(1, c), line});
        ++i;
      }
    }
  }
  return out;
}

}  // namespace fame::analysis

#include "analysis/appmodel.h"

#include <cctype>

#include "analysis/lexer.h"
#include "common/stringutil.h"

namespace fame::analysis {
namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",     "while",  "for",    "switch", "return", "sizeof",
      "new",    "delete", "static", "const",  "auto",   "case",
      "do",     "else",   "int",    "char",   "void",   "bool",
      "double", "float",  "long",   "short",  "struct", "class",
      "public", "private","throw",  "catch",  "assert", "unsigned",
      "namespace", "using", "template", "typename", "enum",
  };
  return kw;
}

/// A "flag symbol" is an UPPER_CASE identifier of length > 1.
bool IsFlagSymbol(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return has_alpha;
}

/// Type-looking identifier: starts uppercase but is not a flag symbol.
bool IsTypeName(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0])) &&
         !IsFlagSymbol(s) && Keywords().count(s) == 0;
}

size_t FindMatching(const std::vector<CppToken>& toks, size_t open,
                    const char* open_ch, const char* close_ch) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind == CppToken::kPunct) {
      if (toks[i].text == open_ch) ++depth;
      if (toks[i].text == close_ch) {
        --depth;
        if (depth == 0) return i;
      }
    }
  }
  return toks.size();
}

}  // namespace

ApplicationModel ApplicationModel::Build(
    const std::vector<std::string>& sources) {
  ApplicationModel model;
  for (const std::string& src : sources) {
    model.AnalyzeSource(src);
  }
  model.ComputeReachability();
  return model;
}

void ApplicationModel::AnalyzeSource(const std::string& source) {
  std::vector<CppToken> toks = TokenizeCpp(source);

  // ---- file-level facts: includes and #define'd flag macros ----
  std::map<std::string, std::set<std::string>> define_flags;
  for (const CppToken& t : toks) {
    if (t.kind != CppToken::kPreproc) continue;
    std::string body(Trim(t.text));
    if (StartsWith(body, "include")) {
      std::string path(Trim(body.substr(7)));
      if (path.size() >= 2) path = path.substr(1, path.size() - 2);
      includes_.insert(path);
    } else if (StartsWith(body, "define")) {
      // "#define APP_FLAGS (DB_CREATE | DB_INIT_TXN)": the macro expands to
      // flag symbols, so uses of APP_FLAGS carry those flags.
      std::vector<CppToken> dtoks = TokenizeCpp(body.substr(6));
      if (!dtoks.empty() && dtoks[0].kind == CppToken::kIdent) {
        std::set<std::string> flags;
        for (size_t i = 1; i < dtoks.size(); ++i) {
          if (dtoks[i].kind == CppToken::kIdent &&
              IsFlagSymbol(dtoks[i].text)) {
            flags.insert(dtoks[i].text);
          }
        }
        if (!flags.empty()) define_flags[dtoks[0].text] = std::move(flags);
      }
    }
  }

  // ---- flag constant propagation: var = FLAG | FLAG ... ----
  std::map<std::string, std::set<std::string>> flag_vars = define_flags;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != CppToken::kIdent) continue;
    if (toks[i + 1].kind != CppToken::kPunct ||
        (toks[i + 1].text != "=" && toks[i + 1].text != "|=")) {
      continue;
    }
    std::set<std::string> flags;
    size_t j = i + 2;
    bool pure = true;
    while (j < toks.size() &&
           !(toks[j].kind == CppToken::kPunct &&
             (toks[j].text == ";" || toks[j].text == ")" ||
              toks[j].text == ","))) {
      if (toks[j].kind == CppToken::kIdent) {
        if (flag_vars.count(toks[j].text) > 0) {
          const auto& prior = flag_vars[toks[j].text];
          flags.insert(prior.begin(), prior.end());
        } else if (IsFlagSymbol(toks[j].text)) {
          flags.insert(toks[j].text);
        } else {
          pure = false;
        }
      } else if (toks[j].kind == CppToken::kPunct && toks[j].text != "|") {
        pure = false;
      }
      ++j;
    }
    if (pure && !flags.empty()) {
      auto& dst = flag_vars[toks[i].text];
      if (toks[i + 1].text == "|=") {
        dst.insert(flags.begin(), flags.end());
      } else {
        dst = flags;
      }
    }
  }

  // ---- variable declarations: Type var / Type* var / Type& var ----
  std::map<std::string, std::string> var_types;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != CppToken::kIdent || !IsTypeName(toks[i].text)) continue;
    size_t j = i + 1;
    while (j < toks.size() && toks[j].kind == CppToken::kPunct &&
           (toks[j].text == "*" || toks[j].text == "&")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != CppToken::kIdent) continue;
    if (Keywords().count(toks[j].text) > 0 || IsTypeName(toks[j].text)) continue;
    if (j + 1 >= toks.size() || toks[j + 1].kind != CppToken::kPunct) continue;
    const std::string& after = toks[j + 1].text;
    if (after == ";" || after == "=" || after == "(" || after == "{" ||
        after == ",") {
      var_types[toks[j].text] = toks[i].text;
      types_used_.insert(toks[i].text);
    }
  }

  // ---- function definitions and the calls inside them ----
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != CppToken::kIdent ||
        Keywords().count(toks[i].text) > 0) {
      continue;
    }
    if (!(toks[i + 1].kind == CppToken::kPunct && toks[i + 1].text == "(")) {
      continue;
    }
    size_t close = FindMatching(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Skip qualifiers between ')' and '{' (const, noexcept, override).
    size_t k = close + 1;
    while (k < toks.size() && toks[k].kind == CppToken::kIdent) ++k;
    if (k >= toks.size() ||
        !(toks[k].kind == CppToken::kPunct && toks[k].text == "{")) {
      continue;
    }
    // Avoid treating a call followed by a block as a definition: a
    // definition's name is preceded by a type name, '}', ';', or nothing.
    if (i > 0) {
      const CppToken& prev = toks[i - 1];
      bool def_context =
          (prev.kind == CppToken::kIdent &&
           (IsTypeName(prev.text) || Keywords().count(prev.text) > 0)) ||
          (prev.kind == CppToken::kPunct &&
           (prev.text == "}" || prev.text == ";" || prev.text == "*" ||
            prev.text == "&" || prev.text == "::"));
      if (!def_context) continue;
    }
    std::string fname = toks[i].text;
    size_t body_open = k;
    size_t body_close = FindMatching(toks, body_open, "{", "}");

    FunctionInfo& fn = functions_[fname];
    fn.name = fname;

    // Calls within [body_open, body_close).
    for (size_t c = body_open + 1; c + 1 < body_close; ++c) {
      if (toks[c].kind != CppToken::kIdent ||
          Keywords().count(toks[c].text) > 0) {
        continue;
      }
      if (!(toks[c + 1].kind == CppToken::kPunct && toks[c + 1].text == "(")) {
        continue;
      }
      CallSite site;
      site.callee = toks[c].text;
      site.enclosing = fname;
      site.line = toks[c].line;
      // Receiver: obj.method( / obj->method( / Type::method(.
      if (c >= 2 && toks[c - 1].kind == CppToken::kPunct) {
        const std::string& sep = toks[c - 1].text;
        if ((sep == "." || sep == "->") &&
            toks[c - 2].kind == CppToken::kIdent) {
          auto it = var_types.find(toks[c - 2].text);
          if (it != var_types.end()) site.receiver_type = it->second;
        } else if (sep == "::" && toks[c - 2].kind == CppToken::kIdent &&
                   IsTypeName(toks[c - 2].text)) {
          site.receiver_type = toks[c - 2].text;
        }
      }
      // Flags flowing into arguments.
      size_t args_close = FindMatching(toks, c + 1, "(", ")");
      for (size_t a = c + 2; a < args_close && a < body_close; ++a) {
        if (toks[a].kind != CppToken::kIdent) continue;
        // Expansion first: an UPPER_CASE macro defined in this file is a
        // carrier for the flags it expands to, not a flag itself.
        auto it = flag_vars.find(toks[a].text);
        if (it != flag_vars.end()) {
          site.flags.insert(it->second.begin(), it->second.end());
        } else if (IsFlagSymbol(toks[a].text)) {
          site.flags.insert(toks[a].text);
        }
      }
      fn.callees.insert(site.callee);
      fn.calls.push_back(calls_.size());
      calls_.push_back(std::move(site));
    }
    // Continue scanning *inside* the body too (nested lambdas are treated
    // as part of the enclosing function), so jump only past the header.
    i = body_open;
  }
}

void ApplicationModel::ComputeReachability() {
  if (functions_.count("main") == 0) {
    for (auto& [name, fn] : functions_) fn.reachable = true;
    return;
  }
  std::vector<std::string> work = {"main"};
  while (!work.empty()) {
    std::string name = work.back();
    work.pop_back();
    auto it = functions_.find(name);
    if (it == functions_.end() || it->second.reachable) continue;
    it->second.reachable = true;
    for (const std::string& callee : it->second.callees) {
      work.push_back(callee);
    }
  }
}

size_t ApplicationModel::ReachableCallCount() const {
  size_t n = 0;
  for (const auto& [name, fn] : functions_) {
    if (fn.reachable) n += fn.calls.size();
  }
  return n;
}

bool ApplicationModel::Calls(const std::string& name) const {
  // Accept "method" or "Type::method".
  std::string type, method = name;
  size_t pos = name.find("::");
  if (pos != std::string::npos) {
    type = name.substr(0, pos);
    method = name.substr(pos + 2);
  }
  for (const auto& [fname, fn] : functions_) {
    if (!fn.reachable) continue;
    for (size_t idx : fn.calls) {
      const CallSite& c = calls_[idx];
      if (c.callee != method) continue;
      if (type.empty() || c.receiver_type == type) return true;
    }
  }
  return false;
}

bool ApplicationModel::CallsWithFlag(const std::string& name,
                                     const std::string& flag) const {
  std::string type, method = name;
  size_t pos = name.find("::");
  if (pos != std::string::npos) {
    type = name.substr(0, pos);
    method = name.substr(pos + 2);
  }
  for (const auto& [fname, fn] : functions_) {
    if (!fn.reachable) continue;
    for (size_t idx : fn.calls) {
      const CallSite& c = calls_[idx];
      if (c.callee != method) continue;
      if (!type.empty() && c.receiver_type != type) continue;
      if (c.flags.count(flag) > 0) return true;
    }
  }
  return false;
}

bool ApplicationModel::UsesType(const std::string& type) const {
  return types_used_.count(type) > 0;
}

bool ApplicationModel::Includes(const std::string& header) const {
  for (const std::string& inc : includes_) {
    if (inc.find(header) != std::string::npos) return true;
  }
  return false;
}

}  // namespace fame::analysis

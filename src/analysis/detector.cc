#include "analysis/detector.h"

namespace fame::analysis {

Status FeatureDetector::Register(const std::string& feature,
                                 const std::string& query) {
  auto parsed = ParseQuery(query);
  FAME_RETURN_IF_ERROR(parsed.status());
  FeatureQuery fq;
  fq.feature = feature;
  fq.query_text = query;
  fq.query = std::move(parsed).value();
  queries_.push_back(std::move(fq));
  return Status::OK();
}

void FeatureDetector::RegisterUnderivable(const std::string& feature) {
  FeatureQuery fq;
  fq.feature = feature;
  queries_.push_back(std::move(fq));
}

std::vector<DetectionResult> FeatureDetector::Detect(
    const ApplicationModel& model) const {
  std::vector<DetectionResult> out;
  out.reserve(queries_.size());
  for (const FeatureQuery& fq : queries_) {
    DetectionResult r;
    r.feature = fq.feature;
    r.derivable = fq.query != nullptr;
    r.needed = r.derivable && fq.query->Eval(model);
    out.push_back(r);
  }
  return out;
}

std::vector<std::string> FeatureDetector::NeededFeatures(
    const ApplicationModel& model) const {
  std::vector<std::string> out;
  for (const DetectionResult& r : Detect(model)) {
    if (r.needed) out.push_back(r.feature);
  }
  return out;
}

size_t FeatureDetector::derivable() const {
  size_t n = 0;
  for (const FeatureQuery& fq : queries_) {
    if (fq.query != nullptr) ++n;
  }
  return n;
}

FeatureDetector BuildFameBdbDetector() {
  FeatureDetector d;
  // 15 derivable features: their need is witnessed by API usage in the
  // client sources, exactly the mechanism of paper §3.1 (the TRANSACTION
  // example below is the paper's own).
  auto must = [&d](const char* feature, const char* query) {
    Status s = d.Register(feature, query);
    (void)s;  // queries are compile-time constants; a failure is a bug
  };
  must("TRANSACTIONS",
       "callsWithFlag(DbEnv::open, DB_INIT_TXN) or calls(txn_begin)");
  must("LOGGING",
       "callsWithFlag(DbEnv::open, DB_INIT_LOG) or "
       "callsWithFlag(DbEnv::open, DB_INIT_TXN)");
  must("LOCKING",
       "callsWithFlag(DbEnv::open, DB_INIT_LOCK) or calls(lock_get)");
  must("CRYPTO",
       "calls(set_encrypt) or callsWithFlag(DbEnv::open, DB_ENCRYPT)");
  must("REPLICATION",
       "callsWithFlag(DbEnv::open, DB_INIT_REP) or calls(rep_start)");
  must("BTREE", "callsWithFlag(Db::open, DB_BTREE)");
  must("HASH", "callsWithFlag(Db::open, DB_HASH)");
  must("QUEUE",
       "callsWithFlag(Db::open, DB_QUEUE) or calls(enqueue) or "
       "calls(dequeue)");
  must("CURSOR", "calls(cursor) or calls(range_scan)");
  must("STATISTICS", "calls(stat) or calls(stat_print)");
  must("DELETE", "calls(del)");
  must("UPDATE", "calls(update)");
  must("CHECKPOINT", "calls(txn_checkpoint) or calls(checkpoint)");
  must("VERIFY", "calls(verify)");
  must("CACHE_TUNING", "calls(set_cachesize) or calls(set_replacement)");
  // 3 features with no API footprint in any application — the paper's
  // "generally not derivable" class (§3.1: 3 of 18).
  d.RegisterUnderivable("DIAGNOSTIC");       // internal assertion/trace code
  d.RegisterUnderivable("SMALL_FOOTPRINT");  // build-size tuning only
  d.RegisterUnderivable("UPGRADE_COMPAT");   // on-disk format migration
  return d;
}

}  // namespace fame::analysis

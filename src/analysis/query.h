// Model queries (paper §3.1): boolean predicates over the application
// model, associated with infrastructure features. Grammar:
//
//   expr   := term ("or" term)*
//   term   := factor ("and" factor)*
//   factor := "not" factor | "(" expr ")" | pred
//   pred   := "calls" "(" NAME ")"
//           | "callsWithFlag" "(" NAME "," FLAG ")"
//           | "usesType" "(" NAME ")"
//           | "includes" "(" PATH ")"
//           | "true" | "false"
//
// NAME may be qualified ("Db::open"). Example (the paper's own example):
//   callsWithFlag(Db::open, DB_INIT_TXN)   -- application needs TRANSACTION
#ifndef FAME_ANALYSIS_QUERY_H_
#define FAME_ANALYSIS_QUERY_H_

#include <memory>
#include <string>

#include "analysis/appmodel.h"
#include "common/status.h"

namespace fame::analysis {

/// Parsed query AST node.
class ModelQuery {
 public:
  virtual ~ModelQuery() = default;
  /// Evaluates against an application model.
  virtual bool Eval(const ApplicationModel& model) const = 0;
  /// Round-trippable textual form.
  virtual std::string ToString() const = 0;
};

/// Parses the query DSL.
StatusOr<std::unique_ptr<ModelQuery>> ParseQuery(const std::string& text);

}  // namespace fame::analysis

#endif  // FAME_ANALYSIS_QUERY_H_

// FeatureDetector: the tool of Figure 3. It binds model queries to
// infrastructure features; running it over an application model yields the
// feature selection the application demands, which then seeds product
// derivation (propagation + NFP-constrained completion).
//
// Features registered *without* a query are "not derivable" — the paper
// found 3 of 18 Berkeley DB features in this class ("not involved in any
// infrastructure API usage"); the derivability report reproduces that
// statistic for the FameBDB feature set.
#ifndef FAME_ANALYSIS_DETECTOR_H_
#define FAME_ANALYSIS_DETECTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/query.h"

namespace fame::analysis {

/// One feature <-> query binding.
struct FeatureQuery {
  std::string feature;
  std::string query_text;  // empty = not derivable
  std::unique_ptr<ModelQuery> query;
};

/// Outcome for one feature on one application.
struct DetectionResult {
  std::string feature;
  bool derivable = false;  // has a query at all
  bool needed = false;     // query evaluated true
};

class FeatureDetector {
 public:
  /// Registers a derivable feature with its query text. ParseError if the
  /// query does not parse.
  Status Register(const std::string& feature, const std::string& query);

  /// Registers a feature with no API footprint (not derivable).
  void RegisterUnderivable(const std::string& feature);

  /// Evaluates every registered feature against `model`.
  std::vector<DetectionResult> Detect(const ApplicationModel& model) const;

  /// Names of features whose query matched.
  std::vector<std::string> NeededFeatures(const ApplicationModel& model) const;

  size_t registered() const { return queries_.size(); }
  size_t derivable() const;

 private:
  std::vector<FeatureQuery> queries_;
};

/// The FameBDB feature/query catalogue used by the Figure 3 reproduction:
/// 18 features, 15 with queries, 3 without (matching the paper's counts).
FeatureDetector BuildFameBdbDetector();

}  // namespace fame::analysis

#endif  // FAME_ANALYSIS_DETECTOR_H_

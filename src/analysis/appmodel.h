// Application model (paper §3.1, Figure 3): the result of statically
// analyzing a client application's sources — "a control flow graph with
// additional data flow and type information, abstracting from syntactic
// details".
//
// Concretely the model records, per function definition:
//   - call sites: callee name, optional receiver type (resolved through
//     local/global variable declarations), and the set of *flag symbols*
//     reaching each call's arguments (constant data-flow through
//     uppercase-identifier assignments and |-expressions);
//   - the intra-file call graph, with reachability from main() (facts in
//     unreachable code do not witness a feature need).
// Plus file-level facts: included headers and used API type names.
#ifndef FAME_ANALYSIS_APPMODEL_H_
#define FAME_ANALYSIS_APPMODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace fame::analysis {

/// One call site in the application.
struct CallSite {
  std::string callee;          ///< bare function/method name
  std::string receiver_type;   ///< declared type of the receiver, or ""
  std::set<std::string> flags; ///< flag symbols flowing into the arguments
  std::string enclosing;       ///< function the call appears in
  int line = 0;
};

/// One analyzed function definition.
struct FunctionInfo {
  std::string name;
  std::vector<size_t> calls;  // indexes into ApplicationModel::calls
  std::set<std::string> callees;
  bool reachable = false;     // from main (or everything when no main)
};

/// The complete model of one application.
class ApplicationModel {
 public:
  /// Builds the model from any number of translation units.
  static ApplicationModel Build(const std::vector<std::string>& sources);

  const std::vector<CallSite>& calls() const { return calls_; }
  const std::map<std::string, FunctionInfo>& functions() const {
    return functions_;
  }
  const std::set<std::string>& includes() const { return includes_; }
  const std::set<std::string>& types_used() const { return types_used_; }

  // ---- model queries (the predicates of §3.1) ----

  /// Any reachable call of `name` (matches callee or Type::callee form)?
  bool Calls(const std::string& name) const;

  /// Reachable call of `name` with flag symbol `flag` in its data-flow?
  bool CallsWithFlag(const std::string& name, const std::string& flag) const;

  /// Any reachable call on a receiver of `type`?
  bool UsesType(const std::string& type) const;

  /// Was `header` (substring match on the include path) included?
  bool Includes(const std::string& header) const;

  /// Total reachable call sites (stats / tests).
  size_t ReachableCallCount() const;

 private:
  void AnalyzeSource(const std::string& source);
  void ComputeReachability();

  std::vector<CallSite> calls_;
  std::map<std::string, FunctionInfo> functions_;
  std::set<std::string> includes_;
  std::set<std::string> types_used_;
};

}  // namespace fame::analysis

#endif  // FAME_ANALYSIS_APPMODEL_H_

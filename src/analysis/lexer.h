// Token stream over C++ source for the application analyzer (§3.1). The
// analyzer abstracts from syntactic detail, so the lexer only distinguishes
// identifiers, numbers, punctuation, and preprocessor lines; comments and
// string literal contents are dropped.
#ifndef FAME_ANALYSIS_LEXER_H_
#define FAME_ANALYSIS_LEXER_H_

#include <string>
#include <vector>

namespace fame::analysis {

struct CppToken {
  enum Kind {
    kIdent,      // identifiers and keywords
    kNumber,
    kString,     // string/char literal (contents dropped)
    kPunct,      // single punctuation char, or ::, ->, ||, &&, etc.
    kPreproc,    // whole preprocessor line, text = directive body
  } kind;
  std::string text;
  int line;
};

/// Tokenizes C++ source. Never fails: unknown bytes become punctuation.
std::vector<CppToken> TokenizeCpp(const std::string& source);

}  // namespace fame::analysis

#endif  // FAME_ANALYSIS_LEXER_H_

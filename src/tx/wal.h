// Write-ahead log for the TRANSACTION feature. The FAME-DBMS transaction
// layer uses *deferred updates* (no-steal): a transaction's writes are
// buffered until commit, logged as logical redo records, then applied to the
// storage engine. Recovery therefore only ever redoes complete, committed
// transactions — the right trade-off for embedded targets (no undo pass, no
// per-page rollback state).
//
// On-log record framing:
//   [u32 masked CRC of len..payload][u16 len][u8 type][payload]
//
// Payloads:
//   kBegin / kCommit / kAbort : varint64 txid
//   kOp  : varint64 txid, u8 op (0 = put, 1 = del),
//          length-prefixed store, key, value (value empty for del)
#ifndef FAME_TX_WAL_H_
#define FAME_TX_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "osal/env.h"

namespace fame::tx {

/// Log sequence number: byte offset of a record in the log file.
using Lsn = uint64_t;

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kOp = 2,
  kCommit = 3,
  kAbort = 4,
};

enum class OpType : uint8_t { kPut = 0, kDelete = 1 };

/// A decoded log record.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t txid = 0;
  // kOp fields:
  OpType op = OpType::kPut;
  std::string store;
  std::string key;
  std::string value;

  static LogRecord Begin(uint64_t txid);
  static LogRecord Commit(uint64_t txid);
  static LogRecord Abort(uint64_t txid);
  static LogRecord Put(uint64_t txid, std::string store, std::string key,
                       std::string value);
  static LogRecord Delete(uint64_t txid, std::string store, std::string key);

  /// Payload serialization (without framing).
  std::string EncodePayload() const;
  static StatusOr<LogRecord> DecodePayload(LogRecordType type,
                                           const Slice& payload);
};

/// What recovery found in the log. Distinguishes the two ways a replay scan
/// can end early:
///   - a *torn tail* — the trailing bytes never formed a complete record
///     (the normal result of crashing mid-append); truncate and continue;
///   - *mid-log corruption* — intact, once-durable records exist past the
///     bad region, so committed data was lost to media damage. The report
///     carries how much so the caller can surface it instead of silently
///     serving a shortened history.
struct RecoveryReport {
  Lsn recovered_lsn = 0;         ///< end offset of the intact prefix
  uint64_t applied_records = 0;  ///< records replayed from the prefix
  uint64_t dropped_bytes = 0;    ///< bytes past recovered_lsn
  /// Records provably lost: the damaged frame plus every intact record
  /// stranded after it. 0 for a clean torn tail (a partial append was
  /// never a record).
  uint64_t dropped_records = 0;
  bool torn_tail = false;   ///< scan ended at a clean crashed tail
  bool corruption = false;  ///< intact records exist past the damage

  /// True when the log needs attention beyond tail truncation.
  bool lost_committed_data() const { return corruption; }
};

/// Append-only log over an osal file. Appends are buffered in memory until
/// Flush (group commit); recovery iterates whole records, stopping at the
/// first torn/corrupt tail and classifying what it stopped on.
class LogManager {
 public:
  static StatusOr<std::unique_ptr<LogManager>> Open(osal::Env* env,
                                                    const std::string& path);

  /// Appends a record, returning its LSN. Buffered until Flush().
  StatusOr<Lsn> Append(const LogRecord& record);

  /// Durably writes all buffered records. Transient IO errors are retried
  /// with a bounded budget before surfacing.
  Status Flush();

  /// Replays every intact record in LSN order, stopping at the first torn
  /// or corrupt frame. When `report` is non-null it is filled with the
  /// recovered LSN, drop counts, and the torn-tail vs corruption verdict.
  Status Replay(const std::function<Status(Lsn, const LogRecord&)>& apply,
                RecoveryReport* report = nullptr);

  /// Shrinks the log to exactly `lsn` durable bytes, discarding a torn or
  /// corrupt tail identified by Replay. Buffered appends must be flushed or
  /// abandoned first.
  Status TruncateTo(Lsn lsn);

  /// Discards the entire log (after a checkpoint made the data durable).
  Status Truncate();

  /// Abandons buffered, unflushed appends. A failed commit must drop its
  /// buffered records so they cannot ride along with a later flush and
  /// resurrect as committed.
  void DropBuffered() { buffer_.clear(); }

  /// Next LSN to be assigned.
  Lsn head() const { return durable_size_ + static_cast<Lsn>(buffer_.size()); }
  /// Bytes already durable.
  uint64_t durable_size() const { return durable_size_; }

 private:
  LogManager(osal::Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  osal::Env* env_;
  std::string path_;
  std::unique_ptr<osal::RandomAccessFile> file_;
  std::string buffer_;
  uint64_t durable_size_ = 0;
  RetryPolicy retry_;
};

}  // namespace fame::tx

#endif  // FAME_TX_WAL_H_

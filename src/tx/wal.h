// Write-ahead log for the TRANSACTION feature. The FAME-DBMS transaction
// layer uses *deferred updates* (no-steal): a transaction's writes are
// buffered until commit, logged as logical redo records, then applied to the
// storage engine. Recovery therefore only ever redoes complete, committed
// transactions — the right trade-off for embedded targets (no undo pass, no
// per-page rollback state).
//
// On-log record framing:
//   [u32 masked CRC of len..payload][u16 len][u8 type][payload]
//
// Payloads:
//   kBegin / kCommit / kAbort : varint64 txid
//   kOp  : varint64 txid, u8 op (0 = put, 1 = del),
//          length-prefixed store, key, value (value empty for del)
#ifndef FAME_TX_WAL_H_
#define FAME_TX_WAL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "obs/obs.h"
#if FAME_OBS_ENABLED
#include "obs/metrics.h"
#endif
#include "osal/env.h"

namespace fame::tx {

/// Log sequence number: byte offset of a record in the log file.
using Lsn = uint64_t;

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kOp = 2,
  kCommit = 3,
  kAbort = 4,
};

enum class OpType : uint8_t { kPut = 0, kDelete = 1 };

/// A decoded log record.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t txid = 0;
  // kOp fields:
  OpType op = OpType::kPut;
  std::string store;
  std::string key;
  std::string value;
  /// [feature Mvcc] Commit timestamp stamped into kCommit records by Mvcc
  /// products (a trailing varint the legacy decoder never wrote, so
  /// non-Mvcc logs stay byte-identical and replay either way). 0 = none.
  uint64_t commit_ts = 0;

  static LogRecord Begin(uint64_t txid);
  static LogRecord Commit(uint64_t txid);
  /// [feature Mvcc] A commit record carrying its version timestamp.
  static LogRecord CommitAt(uint64_t txid, uint64_t commit_ts);
  static LogRecord Abort(uint64_t txid);
  static LogRecord Put(uint64_t txid, std::string store, std::string key,
                       std::string value);
  static LogRecord Delete(uint64_t txid, std::string store, std::string key);

  /// Payload serialization (without framing). AppendPayloadTo encodes
  /// directly into the caller's buffer so the group-commit hot path can
  /// build frames without per-record temporaries.
  void AppendPayloadTo(std::string* out) const;
  std::string EncodePayload() const;
  static StatusOr<LogRecord> DecodePayload(LogRecordType type,
                                           const Slice& payload);
};

/// What recovery found in the log. Distinguishes the two ways a replay scan
/// can end early:
///   - a *torn tail* — the trailing bytes never formed a complete record
///     (the normal result of crashing mid-append); truncate and continue;
///   - *mid-log corruption* — intact, once-durable records exist past the
///     bad region, so committed data was lost to media damage. The report
///     carries how much so the caller can surface it instead of silently
///     serving a shortened history.
struct RecoveryReport {
  Lsn recovered_lsn = 0;         ///< end offset of the intact prefix
  uint64_t applied_records = 0;  ///< records replayed from the prefix
  uint64_t dropped_bytes = 0;    ///< bytes past recovered_lsn
  /// Records provably lost: the damaged frame plus every intact record
  /// stranded after it. 0 for a clean torn tail (a partial append was
  /// never a record).
  uint64_t dropped_records = 0;
  bool torn_tail = false;   ///< scan ended at a clean crashed tail
  bool corruption = false;  ///< intact records exist past the damage
  /// [feature Mvcc] Highest commit timestamp seen in the log (0 on legacy
  /// logs); recovery seeds the timestamp oracle past it.
  uint64_t max_commit_ts = 0;

  /// True when the log needs attention beyond tail truncation.
  bool lost_committed_data() const { return corruption; }
};

/// Counters for NFP measurement and the concurrency benchmarks; snapshot
/// aggregated from relaxed atomics, safe to read while the log is hot.
struct WalStats {
  uint64_t records_appended = 0;
  /// fsyncs issued by Flush/SyncCommit (recovery-time syncs not counted),
  /// the denominator-side input of the fsyncs-per-commit metric.
  uint64_t syncs = 0;
  /// Group-commit epochs led (== syncs when group commit is on).
  uint64_t group_batches = 0;
  uint64_t group_batched_bytes = 0;
  /// Failed-flush tail cleanups that themselves failed persistently. Each
  /// one poisoned the log: an unaccounted tail may sit past the durable
  /// prefix and nothing may append after it.
  uint64_t tail_cleanup_failures = 0;
};

/// [feature Backup] Configuration of the segmented log store.
struct WalOptions {
  /// Rotation threshold: a new segment starts once the active one reaches
  /// this many payload bytes. Soft cap — one append batch never splits.
  uint64_t segment_bytes = 64 * 1024;
  /// [feature Pitr] Archive recycled segments (copy to `archive_prefix` +
  /// zero-padded sequence number) instead of deleting them, retaining
  /// history for point-in-time recovery.
  bool archive = false;
  std::string archive_prefix;
};

/// [feature Backup] Snapshot of the segmented store, for metrics and the
/// integrity/backup tooling. Zero-valued on a non-segmented log.
struct WalSegmentStats {
  uint64_t segments = 0;        ///< live segment files in the chain
  uint64_t rotations = 0;       ///< segments created by rotation
  uint64_t recycled = 0;        ///< segments retired below the watermark
  uint64_t archived = 0;        ///< recycled segments copied to the archive
  /// Bytes wholly below the retention watermark still occupying live
  /// segments (recycle paused, or archiving stalled on an IO error).
  uint64_t archive_lag_bytes = 0;
  /// Archiving hit a persistent error (e.g. ENOSPC) and is paused; the
  /// affected segments stay in the live chain, nothing is lost. Retried on
  /// the next checkpoint.
  bool archive_stalled = false;
  Lsn start_lsn = 0;     ///< first byte still present in the chain
  Lsn retained_lsn = 0;  ///< current retention watermark
  /// [feature Replication] fencing epoch new segments are stamped with.
  uint32_t fence_epoch = 0;
};

/// [feature Backup] One live segment, for backup copies and chain checks.
struct WalSegmentInfo {
  std::string file;           ///< full file name within the env
  uint32_t seq = 0;           ///< sequence number (monotonic, never reused)
  Lsn base_lsn = 0;           ///< LSN of the first payload byte
  uint64_t payload_bytes = 0; ///< payload length (excludes the header)
  uint32_t epoch = 0;         ///< fencing epoch from the segment header
};

/// Physical byte store under the LogManager. The classic backend is an
/// inlined single file; the Backup feature substitutes the segmented store
/// (wal_segments.cc) through this seam so products without the feature
/// never link a byte of it.
class WalStore {
 public:
  virtual ~WalStore() = default;

  /// First logical byte still present (> 0 once segments were recycled).
  virtual Lsn start_lsn() const = 0;
  /// Logical end of the store as found on disk at open time.
  virtual uint64_t DurableEnd() const = 0;
  /// Writes `data` at logical offset `at` (== current durable end),
  /// rotating to a new segment first when the active one is full.
  /// Idempotent under retry.
  virtual Status Append(Lsn at, const Slice& data) = 0;
  /// Makes appended bytes durable.
  virtual Status Sync() = 0;
  /// Best-effort removal of unsynced bytes past `to` after a failed append.
  virtual Status UndoAppend(Lsn to) = 0;
  /// Reads every byte of [start_lsn(), durable end) into `out`.
  virtual Status ReadSuffix(std::string* out) = 0;
  /// Drops all bytes at and past `lsn` (torn/corrupt tail removal).
  virtual Status TruncateTo(Lsn lsn) = 0;
  /// Advances the retention watermark and recycles (deletes or archives)
  /// segments wholly below it. Archive failures pause archiving and are
  /// reported through stats(), never through the return status.
  virtual Status AdvanceRetention(Lsn mark) = 0;
  /// While paused, AdvanceRetention still advances the watermark but
  /// retires nothing (hot backup holds the chain steady while copying).
  virtual void PauseRecycle(bool on) = 0;
  virtual WalSegmentStats stats() const = 0;
  /// Appends the live chain, in LSN order, to `out`.
  virtual Status ListSegments(std::vector<WalSegmentInfo>* out) const = 0;
  /// Re-reads segment headers from disk and reports chain damage
  /// (bad magic/CRC, base/sequence discontinuities) as issue strings.
  virtual Status VerifyChain(std::vector<std::string>* issues) const = 0;
  /// Bytes (and intact records) in segments stranded past a chain break
  /// found at open; reported as corruption by Replay.
  virtual uint64_t orphaned_bytes() const = 0;
  virtual uint64_t orphaned_records() const = 0;
  /// [feature Replication] Raises the fencing epoch stamped into segment
  /// headers created from now on (monotone; existing headers are history).
  virtual void SetEpoch(uint32_t epoch) { (void)epoch; }
  virtual uint32_t epoch() const { return 0; }
};

/// Append-only log over an osal file. Appends are buffered in memory until
/// a flush makes them durable; recovery iterates whole records, stopping at
/// the first torn/corrupt tail and classifying what it stopped on.
///
/// Threading: single-threaded by default — the historical engine, with zero
/// synchronization on the append path beyond the (relaxed-atomic) stats.
/// EnableGroupCommit() switches on the cross-thread commit protocol:
/// Append/Flush/SyncCommit become thread-safe, and concurrent committers
/// batch — whoever finds no flush in flight becomes the epoch leader, swaps
/// the whole buffer out, and fsyncs once for every transaction in it while
/// followers wait on the durable LSN. Replay/TruncateTo/Truncate remain
/// recovery-time operations and must be externally serialized against
/// committers (TransactionManager's checkpoint lock does this).
class LogManager {
 public:
  static StatusOr<std::unique_ptr<LogManager>> Open(osal::Env* env,
                                                    const std::string& path);

  /// [feature Backup] Opens the log over fixed-size segments
  /// (`<path>.000001`, ...) instead of one file. A legacy single-file log
  /// at `path` is migrated into the first segment. Defined in
  /// wal_segments.cc so products that never call it link none of the
  /// segmented machinery.
  static StatusOr<std::unique_ptr<LogManager>> OpenSegmented(
      osal::Env* env, const std::string& path, const WalOptions& options);

  /// True when the log runs over the segmented store.
  bool segmented() const { return store_ != nullptr; }

  /// [feature Backup] Advances the retention watermark to `mark` (monotone)
  /// and recycles segments wholly below it. The caller must have made every
  /// effect below `mark` durable in the engine first, and should call this
  /// *outside* any commit-excluding lock — retiring segments does not need
  /// to stall committers. InvalidArgument on a non-segmented log.
  Status AdvanceRetention(Lsn mark);

  /// [feature Backup] Holds the segment chain steady during a hot backup.
  void PauseRecycle(bool on) {
    if (store_ != nullptr) store_->PauseRecycle(on);
  }

  /// Segment counters; zero-valued for the single-file backend.
  WalSegmentStats segment_stats() const {
    return store_ != nullptr ? store_->stats() : WalSegmentStats{};
  }

  /// [feature Backup] Live chain listing for backup copies.
  Status ListSegments(std::vector<WalSegmentInfo>* out) const;

  /// [feature Backup] On-disk chain verification for fame_check.
  Status VerifySegmentChain(std::vector<std::string>* issues) const;

  /// First logical byte still present (0 for the single-file backend).
  Lsn start_lsn() const {
    return store_ != nullptr ? store_->start_lsn() : 0;
  }

  /// [feature Replication] Raises the fencing epoch stamped into segments
  /// created from now on; no-op on the single-file backend.
  void SetSegmentEpoch(uint32_t epoch) {
    if (store_ != nullptr) store_->SetEpoch(epoch);
  }
  uint32_t segment_epoch() const {
    return store_ != nullptr ? store_->epoch() : 0;
  }

  /// Switches on the group-commit protocol. Call once, before any
  /// concurrent use; products that deselect the Concurrency feature never
  /// call it and keep the lock-free single-threaded path.
  void EnableGroupCommit() { group_commit_ = true; }
  bool group_commit() const { return group_commit_; }

  /// Appends a record, returning its LSN. Buffered until a flush. With
  /// group commit enabled this is thread-safe and fails fast once the log
  /// is poisoned by a failed epoch.
  StatusOr<Lsn> Append(const LogRecord& record);

  /// Durably writes all buffered records. Transient IO errors are retried
  /// with a bounded budget before surfacing. With group commit enabled this
  /// joins (or leads) the current epoch.
  Status Flush();

  /// Blocks until the record appended at `rec_lsn` is durable: joins the
  /// in-flight epoch as a follower, or leads a new one and fsyncs the whole
  /// batch. Equivalent to Flush() when group commit is off.
  ///
  /// A failed epoch poisons the log: a batch interleaves records from many
  /// transactions and none of them can be selectively unwound, so every
  /// current and future committer gets the sticky error (the database above
  /// latches read-only) while the durable prefix stays intact on disk.
  Status SyncCommit(Lsn rec_lsn);

  /// Snapshot of the append/sync counters; safe while the log is hot.
  WalStats wal_stats() const;

#if FAME_OBS_ENABLED
  /// [feature Observability] Records-per-flush histogram: how well group
  /// commit batches (bucket 0 = single-record epochs, i.e. no batching).
  obs::HistogramSnapshot batch_records_histogram() const {
    return batch_records_histo_.Snapshot();
  }
#endif

  /// Replays every intact record in LSN order, stopping at the first torn
  /// or corrupt frame. When `report` is non-null it is filled with the
  /// recovered LSN, drop counts, and the torn-tail vs corruption verdict.
  Status Replay(const std::function<Status(Lsn, const LogRecord&)>& apply,
                RecoveryReport* report = nullptr);

  /// Shrinks the log to exactly `lsn` durable bytes, discarding a torn or
  /// corrupt tail identified by Replay. Buffered appends must be flushed or
  /// abandoned first.
  Status TruncateTo(Lsn lsn);

  /// Discards the entire log (after a checkpoint made the data durable).
  Status Truncate();

  /// Abandons buffered, unflushed appends. A failed commit must drop its
  /// buffered records so they cannot ride along with a later flush and
  /// resurrect as committed. No-op under group commit: the shared buffer
  /// interleaves other transactions' records, and a commit-less record
  /// sequence is inert to recovery anyway.
  void DropBuffered() {
    if (!group_commit_) {
      buffer_.clear();
      FAME_OBS(buffered_records_ = 0;)
    }
  }

  /// Next LSN to be assigned.
  Lsn head() const;
  /// Bytes already durable.
  uint64_t durable_size() const {
    return durable_size_.load(std::memory_order_relaxed);
  }

 private:
  LogManager(osal::Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  /// Group-commit epoch engine; `l` holds mu_. Returns once
  /// durable_size_ >= target or the log is poisoned.
  Status SyncThroughLocked(std::unique_lock<std::mutex>& l, Lsn target);

  /// Backend dispatch: single file or segmented store.
  Status WriteDurable(uint64_t at, const Slice& data);
  Status SyncDurable();
  /// Removes unsynced bytes past `to` after a failed flush, with a bounded
  /// retry; a persistent failure poisons the log — an unaccounted tail may
  /// sit past the durable prefix and nothing may append beyond it.
  Status CleanupFailedFlush(uint64_t to);

  osal::Env* env_;
  std::string path_;
  std::unique_ptr<osal::RandomAccessFile> file_;
  /// Non-null when the Backup feature selected the segmented backend; the
  /// single-file `file_` is unused then.
  std::unique_ptr<WalStore> store_;
  std::string buffer_;
  /// Retired batch storage recycled into buffer_ at the next group-commit
  /// epoch so steady-state flushing allocates nothing (guarded by mu_).
  std::string spare_;
  /// Atomic so stats readers never see a torn value; mutated only by the
  /// flushing thread (under mu_ when group commit is on).
  std::atomic<uint64_t> durable_size_{0};
  RetryPolicy retry_;

  bool group_commit_ = false;
  mutable std::mutex mu_;  // guards buffer_, flush_in_progress_, poison_
  std::condition_variable cv_;
  bool flush_in_progress_ = false;
  Status poison_;  // sticky failure of a group-commit epoch

  std::atomic<uint64_t> records_appended_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> group_batches_{0};
  std::atomic<uint64_t> group_batched_bytes_{0};
  std::atomic<uint64_t> tail_cleanup_failures_{0};

#if FAME_OBS_ENABLED
  /// Records currently in buffer_ (same guard discipline as buffer_:
  /// mu_ under group commit, single-threaded otherwise). Swapped out with
  /// the batch so each flush records its own size.
  uint64_t buffered_records_ = 0;
  obs::BasicHistogram<obs::SharedCells> batch_records_histo_;
#endif
#if FAME_OBS_TRACING_ENABLED
  /// [feature Tracing] Span id / size of the last completed group-commit
  /// epoch (guarded by mu_); woken followers attribute their commit to it
  /// with a kWalJoin event.
  uint64_t last_batch_span_ = 0;
  uint64_t last_batch_records_ = 0;
#endif
};

}  // namespace fame::tx

#endif  // FAME_TX_WAL_H_

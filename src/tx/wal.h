// Write-ahead log for the TRANSACTION feature. The FAME-DBMS transaction
// layer uses *deferred updates* (no-steal): a transaction's writes are
// buffered until commit, logged as logical redo records, then applied to the
// storage engine. Recovery therefore only ever redoes complete, committed
// transactions — the right trade-off for embedded targets (no undo pass, no
// per-page rollback state).
//
// On-log record framing:
//   [u32 masked CRC of len..payload][u16 len][u8 type][payload]
//
// Payloads:
//   kBegin / kCommit / kAbort : varint64 txid
//   kOp  : varint64 txid, u8 op (0 = put, 1 = del),
//          length-prefixed store, key, value (value empty for del)
#ifndef FAME_TX_WAL_H_
#define FAME_TX_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "osal/env.h"

namespace fame::tx {

/// Log sequence number: byte offset of a record in the log file.
using Lsn = uint64_t;

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kOp = 2,
  kCommit = 3,
  kAbort = 4,
};

enum class OpType : uint8_t { kPut = 0, kDelete = 1 };

/// A decoded log record.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t txid = 0;
  // kOp fields:
  OpType op = OpType::kPut;
  std::string store;
  std::string key;
  std::string value;

  static LogRecord Begin(uint64_t txid);
  static LogRecord Commit(uint64_t txid);
  static LogRecord Abort(uint64_t txid);
  static LogRecord Put(uint64_t txid, std::string store, std::string key,
                       std::string value);
  static LogRecord Delete(uint64_t txid, std::string store, std::string key);

  /// Payload serialization (without framing).
  std::string EncodePayload() const;
  static StatusOr<LogRecord> DecodePayload(LogRecordType type,
                                           const Slice& payload);
};

/// Append-only log over an osal file. Appends are buffered in memory until
/// Flush (group commit); recovery iterates whole records, stopping at the
/// first torn/corrupt tail.
class LogManager {
 public:
  static StatusOr<std::unique_ptr<LogManager>> Open(osal::Env* env,
                                                    const std::string& path);

  /// Appends a record, returning its LSN. Buffered until Flush().
  StatusOr<Lsn> Append(const LogRecord& record);

  /// Durably writes all buffered records.
  Status Flush();

  /// Replays every intact record in LSN order. A corrupt or torn record
  /// ends the scan silently (it is the crashed tail).
  Status Replay(const std::function<Status(Lsn, const LogRecord&)>& apply);

  /// Discards the entire log (after a checkpoint made the data durable).
  Status Truncate();

  /// Next LSN to be assigned.
  Lsn head() const { return durable_size_ + static_cast<Lsn>(buffer_.size()); }
  /// Bytes already durable.
  uint64_t durable_size() const { return durable_size_; }

 private:
  LogManager(osal::Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  osal::Env* env_;
  std::string path_;
  std::unique_ptr<osal::RandomAccessFile> file_;
  std::string buffer_;
  uint64_t durable_size_ = 0;
};

}  // namespace fame::tx

#endif  // FAME_TX_WAL_H_

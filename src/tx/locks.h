// Lock manager for the TRANSACTION feature: strict two-phase locking with
// shared/exclusive modes on named resources (store:key granularity by
// convention). Embedded products run transactions interleaved on a single
// thread, so acquisition is *no-wait*: a conflicting request fails
// immediately with Busy, or with Deadlock when granting a hypothetical wait
// would close a cycle in the wait-for graph (the caller then aborts that
// transaction, which is how the engine layer resolves deadlocks).
#ifndef FAME_TX_LOCKS_H_
#define FAME_TX_LOCKS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace fame::tx {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Table of held locks. Not thread-safe (by design; see header comment).
class LockManager {
 public:
  /// Acquires `mode` on `resource` for `txid`. Re-acquisition is idempotent;
  /// a shared holder asking for exclusive is upgraded when it is the sole
  /// holder. Conflicts return Busy or Deadlock (never block).
  Status Acquire(uint64_t txid, const std::string& resource, LockMode mode);

  /// Releases everything `txid` holds (strict 2PL: release only at end).
  void ReleaseAll(uint64_t txid);

  /// True if `txid` holds `resource` in at least `mode`.
  bool Holds(uint64_t txid, const std::string& resource, LockMode mode) const;

  /// Number of resources currently locked (tests / stats).
  size_t LockedResources() const { return table_.size(); }

  /// Lock acquisitions that failed with Busy/Deadlock (stats).
  uint64_t conflicts() const { return conflicts_; }
  uint64_t deadlocks() const { return deadlocks_; }

 private:
  struct Entry {
    LockMode mode = LockMode::kShared;
    std::set<uint64_t> holders;
  };

  /// Would `waiter` -> each of `holders` close a cycle in the wait-for
  /// graph built from currently recorded conflicts?
  bool WouldDeadlock(uint64_t waiter, const std::set<uint64_t>& holders);

  std::map<std::string, Entry> table_;
  // wait-for edges recorded from failed acquisitions: waiter -> holders.
  std::map<uint64_t, std::set<uint64_t>> wait_for_;
  uint64_t conflicts_ = 0;
  uint64_t deadlocks_ = 0;
};

}  // namespace fame::tx

#endif  // FAME_TX_LOCKS_H_

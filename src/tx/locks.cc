#include "tx/locks.h"

#include <functional>

namespace fame::tx {

Status LockManager::Acquire(uint64_t txid, const std::string& resource,
                            LockMode mode) {
  auto it = table_.find(resource);
  if (it == table_.end()) {
    Entry e;
    e.mode = mode;
    e.holders.insert(txid);
    table_.emplace(resource, std::move(e));
    wait_for_.erase(txid);
    return Status::OK();
  }
  Entry& e = it->second;
  bool already_holder = e.holders.count(txid) > 0;

  if (already_holder) {
    if (mode == LockMode::kShared || e.mode == LockMode::kExclusive) {
      return Status::OK();  // idempotent re-acquire
    }
    // Upgrade shared -> exclusive: only if sole holder.
    if (e.holders.size() == 1) {
      e.mode = LockMode::kExclusive;
      return Status::OK();
    }
  }

  bool compatible = !already_holder && mode == LockMode::kShared &&
                    e.mode == LockMode::kShared;
  if (compatible) {
    e.holders.insert(txid);
    wait_for_.erase(txid);
    return Status::OK();
  }

  // Conflict: record the hypothetical wait edges and classify.
  ++conflicts_;
  std::set<uint64_t> blockers = e.holders;
  blockers.erase(txid);
  if (WouldDeadlock(txid, blockers)) {
    ++deadlocks_;
    return Status::Deadlock("lock cycle on " + resource);
  }
  wait_for_[txid].insert(blockers.begin(), blockers.end());
  return Status::Busy("lock held on " + resource);
}

bool LockManager::WouldDeadlock(uint64_t waiter,
                                const std::set<uint64_t>& holders) {
  // DFS from each holder through wait_for_ looking for `waiter`.
  std::set<uint64_t> visited;
  std::function<bool(uint64_t)> reaches = [&](uint64_t node) {
    if (node == waiter) return true;
    if (!visited.insert(node).second) return false;
    auto it = wait_for_.find(node);
    if (it == wait_for_.end()) return false;
    for (uint64_t next : it->second) {
      if (reaches(next)) return true;
    }
    return false;
  };
  for (uint64_t h : holders) {
    if (reaches(h)) return true;
  }
  return false;
}

void LockManager::ReleaseAll(uint64_t txid) {
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.holders.erase(txid);
    if (it->second.holders.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  wait_for_.erase(txid);
  for (auto& [waiter, blockers] : wait_for_) {
    blockers.erase(txid);
  }
}

bool LockManager::Holds(uint64_t txid, const std::string& resource,
                        LockMode mode) const {
  auto it = table_.find(resource);
  if (it == table_.end() || it->second.holders.count(txid) == 0) return false;
  if (mode == LockMode::kExclusive) {
    return it->second.mode == LockMode::kExclusive;
  }
  return true;
}

}  // namespace fame::tx

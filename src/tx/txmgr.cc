#include "tx/txmgr.h"

#include <map>
#include <set>

namespace fame::tx {

namespace {

/// Scoped lock that only engages in group-commit mode, so the
/// single-threaded path keeps its historical zero-locking behavior.
class MaybeLock {
 public:
  MaybeLock(std::mutex& m, bool engage) : m_(m), engaged_(engage) {
    if (engaged_) m_.lock();
  }
  ~MaybeLock() {
    if (engaged_) m_.unlock();
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::mutex& m_;
  bool engaged_;
};

}  // namespace

Status Transaction::Put(const std::string& store, const Slice& key,
                        const Slice& value) {
  if (!active_) return Status::Aborted("transaction is finished");
  // [feature Mvcc] Writers take no locks: write-write conflicts surface at
  // commit (first-committer-wins), so disjoint-key writers never touch a
  // shared lock table.
  if (!mgr_->mvcc_enabled()) {
    FAME_RETURN_IF_ERROR(mgr_->AcquireLock(id_, store + ":" + key.ToString(),
                                           LockMode::kExclusive));
  }
  writes_.push_back(WriteOp{OpType::kPut, store, key.ToString(),
                            value.ToString()});
  latest_[{store, key.ToString()}] = writes_.size() - 1;
  return Status::OK();
}

Status Transaction::Delete(const std::string& store, const Slice& key) {
  if (!active_) return Status::Aborted("transaction is finished");
  if (!mgr_->mvcc_enabled()) {
    FAME_RETURN_IF_ERROR(mgr_->AcquireLock(id_, store + ":" + key.ToString(),
                                           LockMode::kExclusive));
  }
  writes_.push_back(WriteOp{OpType::kDelete, store, key.ToString(), ""});
  latest_[{store, key.ToString()}] = writes_.size() - 1;
  return Status::OK();
}

Status Transaction::Get(const std::string& store, const Slice& key,
                        std::string* value) {
  if (!active_) return Status::Aborted("transaction is finished");
  // [feature Mvcc] Snapshot reads: no shared lock, never blocked by (or
  // blocking) writer transactions; the read sees the frozen snapshot_ts_
  // state no matter who commits meanwhile.
  if (mgr_->mvcc_enabled()) {
    auto own = latest_.find({store, key.ToString()});
    if (own != latest_.end()) {
      const WriteOp& op = writes_[own->second];
      if (op.op == OpType::kDelete) return Status::NotFound("deleted in txn");
      *value = op.value;
      return Status::OK();
    }
    return mgr_->SnapshotReadSafe(store, key, snapshot_ts_, value);
  }
  FAME_RETURN_IF_ERROR(mgr_->AcquireLock(id_, store + ":" + key.ToString(),
                                         LockMode::kShared));
  auto it = latest_.find({store, key.ToString()});
  if (it != latest_.end()) {
    const WriteOp& op = writes_[it->second];
    if (op.op == OpType::kDelete) return Status::NotFound("deleted in txn");
    *value = op.value;
    return Status::OK();
  }
  return mgr_->ReadCommittedSafe(store, key, value);
}

StatusOr<std::unique_ptr<TransactionManager>> TransactionManager::Open(
    osal::Env* env, const std::string& log_path, ApplyTarget* target,
    CommitProtocol protocol, bool group_commit) {
  if (target == nullptr) {
    return Status::InvalidArgument("transaction manager needs a target");
  }
  auto log_or = LogManager::Open(env, log_path);
  FAME_RETURN_IF_ERROR(log_or.status());
  return Adopt(std::move(log_or).value(), target, protocol, group_commit);
}

StatusOr<std::unique_ptr<TransactionManager>> TransactionManager::Adopt(
    std::unique_ptr<LogManager> log, ApplyTarget* target,
    CommitProtocol protocol, bool group_commit) {
  if (target == nullptr) {
    return Status::InvalidArgument("transaction manager needs a target");
  }
  if (log == nullptr) {
    return Status::InvalidArgument("transaction manager needs a log");
  }
  std::unique_ptr<TransactionManager> mgr(
      new TransactionManager(target, protocol));
  mgr->log_ = std::move(log);
  if (group_commit) {
    mgr->group_commit_ = true;
    mgr->log_->EnableGroupCommit();
  }
  return mgr;
}

Status TransactionManager::AcquireLock(uint64_t txid, const std::string& what,
                                       LockMode mode) {
  MaybeLock l(locks_mu_, group_commit_);
  return locks_.Acquire(txid, what, mode);
}

void TransactionManager::ReleaseLocks(uint64_t txid) {
  MaybeLock l(locks_mu_, group_commit_);
  locks_.ReleaseAll(txid);
}

Status TransactionManager::ReadCommittedSafe(const std::string& store,
                                             const Slice& key,
                                             std::string* value) {
  MaybeLock l(apply_mu_, group_commit_);
  return target_->ReadCommitted(store, key, value);
}

Status TransactionManager::SnapshotReadSafe(const std::string& store,
                                            const Slice& key, uint64_t ts,
                                            std::string* value) {
  MaybeLock l(apply_mu_, group_commit_);
  return target_->ReadAtSnapshot(store, key, ts, value);
}

void TransactionManager::Retire(Transaction* txn) {
  MaybeLock l(state_mu_, group_commit_);
  auto it = active_.find(txn->id_);
  if (it == active_.end() || it->second.get() != txn) return;
  // FIFO: keep the kMaxRetired most recently finished handles alive, so
  // the common stale double-finish (on a handle finished moments ago)
  // stays deterministic no matter how many transactions ran before it.
  if (retired_.size() >= kMaxRetired) retired_.erase(retired_.begin());
  retired_.push_back(std::move(it->second));
  active_.erase(it);
}

size_t TransactionManager::active_transactions() const {
  MaybeLock l(state_mu_, group_commit_);
  return active_.size();
}

Status TransactionManager::Recover() {
  // Startup-time, before any concurrent use: no locking needed.
  if (log_->segmented()) {
    // Seed retention from the persisted watermark: segments wholly below
    // it are covered by a durable checkpoint, so retiring them first
    // shrinks the replay suffix. (Replaying them anyway would be harmless
    // — redo is idempotent — just slower.)
    FAME_ASSIGN_OR_RETURN(Lsn mark, target_->LoadWalMark());
    if (mark > 0) FAME_RETURN_IF_ERROR(log_->AdvanceRetention(mark));
  }
  // Pass 1: find committed transaction ids (and, for Mvcc-written logs,
  // their commit timestamps), and classify the log tail.
  std::map<uint64_t, uint64_t> committed_ids;  // txid -> commit_ts (0=legacy)
  uint64_t max_commit_ts = 0;
  FAME_RETURN_IF_ERROR(log_->Replay(
      [&](Lsn, const LogRecord& rec) {
        if (rec.type == LogRecordType::kCommit) {
          committed_ids[rec.txid] = rec.commit_ts;
          if (rec.commit_ts > max_commit_ts) max_commit_ts = rec.commit_ts;
        }
        return Status::OK();
      },
      &report_));
  report_.max_commit_ts = max_commit_ts;
  // Pass 2: redo committed ops in log order. Ops of a commit that carries
  // a timestamp redo through the versioned apply path, which skips stamps
  // at or below the chain head — that is what makes a crash between WAL
  // append and apply, and double reopens, idempotent under Mvcc.
  FAME_RETURN_IF_ERROR(log_->Replay([&](Lsn, const LogRecord& rec) {
    auto it = committed_ids.find(rec.txid);
    if (rec.type != LogRecordType::kOp || it == committed_ids.end()) {
      return Status::OK();
    }
    const uint64_t ts = it->second;
    if (rec.op == OpType::kPut) {
      return ts != 0
                 ? target_->ApplyPutVersioned(rec.store, rec.key, rec.value, ts)
                 : target_->ApplyPut(rec.store, rec.key, rec.value);
    }
    Status s = ts != 0 ? target_->ApplyDeleteVersioned(rec.store, rec.key, ts)
                       : target_->ApplyDelete(rec.store, rec.key);
    // Redo of a delete whose effect is already durable is a no-op.
    return s.IsNotFound() ? Status::OK() : s;
  }));
  // Drop the torn/corrupt tail before anything can append after it, so a
  // later flush never lands beyond unparseable bytes.
  if (report_.dropped_bytes > 0) {
    FAME_RETURN_IF_ERROR(log_->TruncateTo(report_.recovered_lsn));
  }
  return Checkpoint();
}

StatusOr<Transaction*> TransactionManager::Begin() {
  uint64_t id = next_txid_.fetch_add(1, std::memory_order_relaxed);
  // Always a fresh handle — never a recycled one from retired_. Recycling
  // would hand a new transaction the address a stale caller may still
  // hold, and their late Commit/Abort would silently finish the *new*
  // transaction instead of failing InvalidArgument.
  auto txn = std::unique_ptr<Transaction>(new Transaction(this, id));
  if (mvcc_ != nullptr) txn->snapshot_ts_ = mvcc_->BeginSnapshot();
  Transaction* ptr = txn.get();
  MaybeLock l(state_mu_, group_commit_);
  active_[id] = std::move(txn);
  return ptr;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn == nullptr || !txn->active_) {
    // Deterministic caller-error: the handle outlives its transaction (see
    // retired_), so a second Commit/Abort reads live memory and fails
    // cleanly instead of relying on caller discipline.
    return Status::InvalidArgument("transaction already finished");
  }
  Status s = CommitInternal(txn);
  // Release the visibility gate PrepareCommit installed — the engine apply
  // is done (or the commit failed and its ts can never surface). From here
  // new snapshots may form at or past commit_ts_.
  if (mvcc_ != nullptr && txn->commit_ts_ != 0) {
    mvcc_->FinishCommit(txn->commit_ts_);
  }
  // Success or failure, the transaction is finished: locks are released and
  // the handle is dead. A failed commit must not leave its buffered log
  // records behind — a later flush would resurrect them as committed.
  // (Under group commit DropBuffered is a no-op: the shared buffer holds
  // other transactions' records, and a record sequence with no commit
  // record is inert to recovery.)
  if (!s.ok()) {
    log_->DropBuffered();
    aborted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    committed_.fetch_add(1, std::memory_order_relaxed);
  }
  txn->active_ = false;
  if (mvcc_ != nullptr) {
    mvcc_->ReleaseSnapshot(txn->snapshot_ts_);
  } else {
    ReleaseLocks(txn->id_);
  }
  Retire(txn);
  return s;
}

Status TransactionManager::CommitInternal(Transaction* txn) {
  if (txn->writes_.empty()) return Status::OK();
  if (mvcc_ != nullptr) {
    // [feature Mvcc] First-committer-wins: one oracle call decides every
    // key at once; Busy means another transaction committed one of them
    // after our snapshot and the caller retries on fresh state. Winners
    // on disjoint keys proceed concurrently into the group-commit WAL.
    std::vector<std::string> keys;
    keys.reserve(txn->latest_.size());
    for (const auto& entry : txn->latest_) {
      keys.push_back(entry.first.first + ":" + entry.first.second);
    }
    FAME_ASSIGN_OR_RETURN(txn->commit_ts_,
                          mvcc_->PrepareCommit(keys, txn->snapshot_ts_));
  }
  if (group_commit_) {
    if (protocol_ == CommitProtocol::kForceAtCommit) {
      // Force truncates the log at commit; no other transaction's records
      // may be in flight around that, so force commits serialize wholesale.
      // Group commit buys nothing here — the protocol is synchronous by
      // design — but remains correct.
      std::unique_lock<std::shared_mutex> cl(checkpoint_mu_);
      return CommitPipeline(txn);
    }
    // Hold the checkpoint lock shared from append through apply so a
    // concurrent Checkpoint cannot truncate our records before their
    // engine apply happened.
    std::shared_lock<std::shared_mutex> cl(checkpoint_mu_);
    return CommitPipeline(txn);
  }
  return CommitPipeline(txn);
}

Status TransactionManager::CommitPipeline(Transaction* txn) {
  // WAL: every op, then the commit record, durably — before any engine
  // mutation.
  FAME_RETURN_IF_ERROR(log_->Append(LogRecord::Begin(txn->id_)).status());
  for (const auto& op : txn->writes_) {
    LogRecord rec = op.op == OpType::kPut
                        ? LogRecord::Put(txn->id_, op.store, op.key, op.value)
                        : LogRecord::Delete(txn->id_, op.store, op.key);
    FAME_RETURN_IF_ERROR(log_->Append(rec).status());
  }
  FAME_ASSIGN_OR_RETURN(
      Lsn commit_lsn,
      log_->Append(txn->commit_ts_ != 0
                       ? LogRecord::CommitAt(txn->id_, txn->commit_ts_)
                       : LogRecord::Commit(txn->id_)));
  FAME_RETURN_IF_ERROR(log_->SyncCommit(commit_lsn));
  // Apply the write set to the engine. From here the transaction is
  // durable: even if applying fails (and the commit call reports an
  // error), recovery will redo it from the log after a restart.
  {
    MaybeLock al(apply_mu_, group_commit_);
    for (const auto& op : txn->writes_) {
      if (op.op == OpType::kPut) {
        FAME_RETURN_IF_ERROR(
            txn->commit_ts_ != 0
                ? target_->ApplyPutVersioned(op.store, op.key, op.value,
                                             txn->commit_ts_)
                : target_->ApplyPut(op.store, op.key, op.value));
      } else {
        Status s = txn->commit_ts_ != 0
                       ? target_->ApplyDeleteVersioned(op.store, op.key,
                                                       txn->commit_ts_)
                       : target_->ApplyDelete(op.store, op.key);
        if (!s.ok() && !s.IsNotFound()) return s;
      }
    }
    if (protocol_ == CommitProtocol::kForceAtCommit) {
      FAME_RETURN_IF_ERROR(target_->CheckpointEngine());
      if (log_->segmented()) {
        // Force never replays, but a segmented log keeps its LSN space
        // monotone: advance the watermark instead of rewinding the file.
        Lsn mark = log_->durable_size();
        FAME_RETURN_IF_ERROR(target_->PersistWalMark(mark));
        FAME_RETURN_IF_ERROR(log_->AdvanceRetention(mark));
      } else {
        FAME_RETURN_IF_ERROR(log_->Truncate());
      }
    }
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn == nullptr || !txn->active_) {
    return Status::InvalidArgument("transaction already finished");
  }
  txn->active_ = false;
  if (mvcc_ != nullptr) {
    mvcc_->ReleaseSnapshot(txn->snapshot_ts_);
  } else {
    ReleaseLocks(txn->id_);
  }
  aborted_.fetch_add(1, std::memory_order_relaxed);
  Retire(txn);
  return Status::OK();
}

Status TransactionManager::Checkpoint() {
  if (!log_->segmented()) {
    if (group_commit_) {
      // Exclusive against every commit pipeline: nothing may sit between
      // "synced to the log" and "applied to the engine" while the log is
      // truncated, or a crash after the truncate would lose it.
      std::unique_lock<std::shared_mutex> cl(checkpoint_mu_);
      MaybeLock al(apply_mu_, true);
      FAME_RETURN_IF_ERROR(target_->CheckpointEngine());
      return log_->Truncate();
    }
    FAME_RETURN_IF_ERROR(target_->CheckpointEngine());
    return log_->Truncate();
  }
  // Segmented checkpoint: flush the engine, durably record how far the
  // checkpoint covers (the retention watermark), then retire wholly
  // covered segments. Only the first two steps need the exclusive
  // section; recycling old files happens after commits resume — that is
  // the stall win over whole-log truncation.
  Lsn mark = 0;
  if (group_commit_) {
    std::unique_lock<std::shared_mutex> cl(checkpoint_mu_);
    MaybeLock al(apply_mu_, true);
    FAME_RETURN_IF_ERROR(target_->CheckpointEngine());
    mark = log_->durable_size();
    FAME_RETURN_IF_ERROR(target_->PersistWalMark(mark));
  } else {
    FAME_RETURN_IF_ERROR(target_->CheckpointEngine());
    mark = log_->durable_size();
    FAME_RETURN_IF_ERROR(target_->PersistWalMark(mark));
  }
  return log_->AdvanceRetention(mark);
}

Status TransactionManager::WithApplyPaused(const std::function<Status()>& fn) {
  MaybeLock al(apply_mu_, group_commit_);
  return fn();
}

Status TransactionManager::ScanLog(RecoveryReport* report) {
  if (group_commit_) {
    // Quiesce committers so the scan sees a stable file.
    std::unique_lock<std::shared_mutex> cl(checkpoint_mu_);
    return log_->Replay([](Lsn, const LogRecord&) { return Status::OK(); },
                        report);
  }
  return log_->Replay(
      [](Lsn, const LogRecord&) { return Status::OK(); }, report);
}

}  // namespace fame::tx

// TransactionManager: the TRANSACTION feature of the FAME-DBMS feature
// diagram. Deferred-update transactions (writes buffered per transaction,
// read-your-writes) with strict 2PL locking, a WAL, and the feature
// diagram's *alternative commit protocols*:
//
//   kWalRedo ("no-force"): at commit the write set is logged + fsynced,
//     then applied to the engine; pages reach storage lazily. Crash
//     recovery replays committed transactions from the log.
//   kForceAtCommit ("force"): commit additionally checkpoints the engine
//     (flush + sync) and truncates the log — no redo needed after a crash,
//     at the cost of synchronous page writes. The protocol of choice when
//     RAM for a log replay buffer is scarce.
#ifndef FAME_TX_TXMGR_H_
#define FAME_TX_TXMGR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tx/locks.h"
#include "tx/wal.h"

namespace fame::tx {

/// Engine-side interface the transaction layer applies committed writes
/// through; implemented by the storage engines (FAME-DBMS core, FameBDB).
class ApplyTarget {
 public:
  virtual ~ApplyTarget() = default;

  /// Applies a committed put to `store`.
  virtual Status ApplyPut(const std::string& store, const Slice& key,
                          const Slice& value) = 0;
  /// Applies a committed delete.
  virtual Status ApplyDelete(const std::string& store, const Slice& key) = 0;
  /// Reads current committed state (for transactional Get).
  virtual Status ReadCommitted(const std::string& store, const Slice& key,
                               std::string* value) = 0;
  /// Flushes engine state durably (force protocol / checkpoints).
  virtual Status CheckpointEngine() = 0;
};

enum class CommitProtocol : uint8_t { kWalRedo = 0, kForceAtCommit = 1 };

class TransactionManager;

/// A transaction handle. Writes accumulate in its write set; Get sees its
/// own writes. Obtained from TransactionManager::Begin.
class Transaction {
 public:
  uint64_t id() const { return id_; }
  bool active() const { return active_; }

  /// Buffered transactional put (acquires an exclusive lock).
  Status Put(const std::string& store, const Slice& key, const Slice& value);
  /// Buffered transactional delete.
  Status Delete(const std::string& store, const Slice& key);
  /// Read-your-writes get (acquires a shared lock).
  Status Get(const std::string& store, const Slice& key, std::string* value);

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, uint64_t id) : mgr_(mgr), id_(id) {}

  struct WriteOp {
    OpType op;
    std::string store;
    std::string key;
    std::string value;
  };

  TransactionManager* mgr_;
  uint64_t id_;
  bool active_ = true;
  std::vector<WriteOp> writes_;
  // (store, key) -> index into writes_ of the latest write, for
  // read-your-writes and write coalescing.
  std::map<std::pair<std::string, std::string>, size_t> latest_;
};

/// Coordinates transactions over one engine. Single-threaded interleaving;
/// conflicts surface as Busy/Deadlock from the lock manager and the caller
/// aborts-and-retries.
class TransactionManager {
 public:
  /// `log_path` is created within `env` on first use.
  static StatusOr<std::unique_ptr<TransactionManager>> Open(
      osal::Env* env, const std::string& log_path, ApplyTarget* target,
      CommitProtocol protocol);

  /// Replays committed transactions from the log into the target (call once
  /// at startup, before Begin). A torn log tail is truncated and recovery
  /// continues; mid-log corruption is reported through recovery_report()
  /// (recovered LSN, dropped-record count) while the intact prefix is still
  /// applied. Checkpoints and truncates on success.
  Status Recover();

  /// What the last Recover() found in the log (zero-valued before Recover).
  const RecoveryReport& recovery_report() const { return report_; }

  /// Starts a transaction. The pointer stays valid until Commit/Abort.
  StatusOr<Transaction*> Begin();

  /// Durably commits `txn` per the configured protocol.
  Status Commit(Transaction* txn);

  /// Drops the write set and releases locks.
  Status Abort(Transaction* txn);

  /// Flush engine + truncate log (periodic housekeeping for kWalRedo).
  Status Checkpoint();

  /// Read-only integrity scan of the durable log: decodes every frame
  /// without applying anything and reports what a future recovery would
  /// find (torn tail, mid-log corruption, drop counts). Never mutates the
  /// log or the engine.
  Status ScanLog(RecoveryReport* report);

  /// Transactions begun but not yet committed/aborted.
  size_t active_transactions() const { return active_.size(); }

  CommitProtocol protocol() const { return protocol_; }
  LockManager& locks() { return locks_; }
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }

 private:
  friend class Transaction;

  TransactionManager(ApplyTarget* target, CommitProtocol protocol)
      : target_(target), protocol_(protocol) {}

  /// Commit body; the caller handles finishing the transaction and cleanup
  /// on failure.
  Status CommitInternal(Transaction* txn);

  ApplyTarget* target_;
  CommitProtocol protocol_;
  std::unique_ptr<LogManager> log_;
  LockManager locks_;
  uint64_t next_txid_ = 1;
  std::map<uint64_t, std::unique_ptr<Transaction>> active_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  RecoveryReport report_;
};

}  // namespace fame::tx

#endif  // FAME_TX_TXMGR_H_

// TransactionManager: the TRANSACTION feature of the FAME-DBMS feature
// diagram. Deferred-update transactions (writes buffered per transaction,
// read-your-writes) with strict 2PL locking, a WAL, and the feature
// diagram's *alternative commit protocols*:
//
//   kWalRedo ("no-force"): at commit the write set is logged + fsynced,
//     then applied to the engine; pages reach storage lazily. Crash
//     recovery replays committed transactions from the log.
//   kForceAtCommit ("force"): commit additionally checkpoints the engine
//     (flush + sync) and truncates the log — no redo needed after a crash,
//     at the cost of synchronous page writes. The protocol of choice when
//     RAM for a log replay buffer is scarce.
#ifndef FAME_TX_TXMGR_H_
#define FAME_TX_TXMGR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "osal/slab_alloc.h"
#include "tx/locks.h"
#include "tx/wal.h"

namespace fame::tx {

/// Engine-side interface the transaction layer applies committed writes
/// through; implemented by the storage engines (FAME-DBMS core, FameBDB).
class ApplyTarget {
 public:
  virtual ~ApplyTarget() = default;

  /// Applies a committed put to `store`.
  virtual Status ApplyPut(const std::string& store, const Slice& key,
                          const Slice& value) = 0;
  /// Applies a committed delete.
  virtual Status ApplyDelete(const std::string& store, const Slice& key) = 0;
  /// Reads current committed state (for transactional Get).
  virtual Status ReadCommitted(const std::string& store, const Slice& key,
                               std::string* value) = 0;
  /// Flushes engine state durably (force protocol / checkpoints).
  virtual Status CheckpointEngine() = 0;

  /// [feature Backup] Durably records the WAL retention watermark in the
  /// engine's metadata (FAME-DBMS stores it in the dual-slot PageFile
  /// meta). Called after CheckpointEngine() succeeded, before segments
  /// below `mark` are recycled. Default no-op: engines without a segmented
  /// log have no watermark to keep.
  virtual Status PersistWalMark(Lsn mark) {
    (void)mark;
    return Status::OK();
  }
  /// [feature Backup] Reads the persisted watermark back (0 when absent).
  virtual StatusOr<Lsn> LoadWalMark() { return static_cast<Lsn>(0); }

  /// [feature Mvcc] Installs `value` as a new version of `key` stamped
  /// `commit_ts`. Mvcc engines override to append to the key's version
  /// chain; re-applying a stamp at or below the chain head must be a
  /// no-op, which is what keeps replay / double-reopen / replication
  /// follower apply idempotent. The default ignores the stamp so legacy
  /// logs replay into non-Mvcc engines unchanged.
  virtual Status ApplyPutVersioned(const std::string& store, const Slice& key,
                                   const Slice& value, uint64_t commit_ts) {
    (void)commit_ts;
    return ApplyPut(store, key, value);
  }
  /// [feature Mvcc] Versioned delete: a tombstone version, not a physical
  /// remove (garbage collection reclaims the record once no snapshot can
  /// see it).
  virtual Status ApplyDeleteVersioned(const std::string& store,
                                      const Slice& key, uint64_t commit_ts) {
    (void)commit_ts;
    return ApplyDelete(store, key);
  }
  /// [feature Mvcc] Reads the version of `key` visible at snapshot `ts`.
  virtual Status ReadAtSnapshot(const std::string& store, const Slice& key,
                                uint64_t ts, std::string* value) {
    (void)ts;
    return ReadCommitted(store, key, value);
  }
};

/// [feature Mvcc] The seam through which an engine hands the transaction
/// manager its commit-timestamp oracle (tx::mvcc::MvccManager) without the
/// base transaction layer referencing the MVCC translation unit — same
/// idiom as Adopt() for the segmented log. Pure interface: txmgr.cc calls
/// through the vtable only, so Mvcc-less products link zero fame::tx::mvcc
/// symbols (cmake/CheckNoMvccSymbols.cmake holds it to that).
class MvccHooks {
 public:
  virtual ~MvccHooks() = default;
  /// Opens a snapshot: returns its read timestamp (registered until
  /// ReleaseSnapshot so the GC watermark cannot pass it).
  virtual uint64_t BeginSnapshot() = 0;
  virtual void ReleaseSnapshot(uint64_t ts) = 0;
  /// First-committer-wins: assigns and returns a commit timestamp iff no
  /// key in `keys` ("store:key" strings) was committed by another
  /// transaction after `read_ts`; Busy otherwise. Winners on disjoint
  /// keys all succeed — this table is the only commit-time coordination.
  /// The returned ts is *in flight* (invisible to new snapshots) until the
  /// matching FinishCommit.
  virtual StatusOr<uint64_t> PrepareCommit(
      const std::vector<std::string>& keys, uint64_t read_ts) = 0;
  /// Marks `commit_ts` fully applied to the engine, releasing the
  /// visibility gate PrepareCommit installed. Without the gate a snapshot
  /// beginning between timestamp allocation and engine apply would read
  /// the old value first and the new value later — a non-repeatable read
  /// within one snapshot. Called once per PrepareCommit success, whether
  /// the commit pipeline succeeded or failed (a failed commit's ts can
  /// never become visible retroactively: recovery replays it or the
  /// engine has degraded to read-only).
  virtual void FinishCommit(uint64_t commit_ts) = 0;
  /// Min active snapshot ts (the GC watermark floor).
  virtual uint64_t Watermark() const = 0;
};

enum class CommitProtocol : uint8_t { kWalRedo = 0, kForceAtCommit = 1 };

class TransactionManager;

/// A transaction handle. Writes accumulate in its write set; Get sees its
/// own writes. Obtained from TransactionManager::Begin.
class Transaction {
 public:
  uint64_t id() const { return id_; }
  bool active() const { return active_; }
  /// [feature Mvcc] The frozen read timestamp this transaction sees (0
  /// without the Mvcc feature).
  uint64_t snapshot_ts() const { return snapshot_ts_; }
  /// [feature Mvcc] The commit timestamp assigned at Commit (0 before, and
  /// 0 forever for read-only transactions).
  uint64_t commit_ts() const { return commit_ts_; }

#if FAME_SLAB_ENABLED
  // Begin() heap-allocated a fresh handle per transaction; with the slab
  // memory path the handle rides the thread-local object pool instead.
  // Handles belong to a single thread (see TransactionManager), so the
  // common begin/commit churn never leaves the allocating thread's cache;
  // a handle destroyed elsewhere falls back to the heap safely.
  static void* operator new(size_t n) { return osal::slab::PooledNew(n); }
  static void operator delete(void* p, size_t n) noexcept {
    osal::slab::PooledDelete(p, n);
  }
  static void operator delete(void* p) noexcept {
    osal::slab::PooledDelete(p);
  }
#endif

  /// Buffered transactional put (acquires an exclusive lock).
  Status Put(const std::string& store, const Slice& key, const Slice& value);
  /// Buffered transactional delete.
  Status Delete(const std::string& store, const Slice& key);
  /// Read-your-writes get (acquires a shared lock).
  Status Get(const std::string& store, const Slice& key, std::string* value);

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, uint64_t id) : mgr_(mgr), id_(id) {}

  struct WriteOp {
    OpType op;
    std::string store;
    std::string key;
    std::string value;
  };

  TransactionManager* mgr_;
  uint64_t id_;
  bool active_ = true;
  std::vector<WriteOp> writes_;
  // (store, key) -> index into writes_ of the latest write, for
  // read-your-writes and write coalescing.
  std::map<std::pair<std::string, std::string>, size_t> latest_;
  uint64_t snapshot_ts_ = 0;  // [feature Mvcc] frozen read ts
  uint64_t commit_ts_ = 0;    // [feature Mvcc] assigned at commit
};

/// Coordinates transactions over one engine. Conflicts surface as
/// Busy/Deadlock from the lock manager and the caller aborts-and-retries.
///
/// Threading: single-threaded by default (`group_commit` off) with zero
/// locking — the historical engine. With the Concurrency feature selected,
/// Open is passed `group_commit = true` and the manager becomes safe for
/// one-transaction-per-thread use: transaction ids and counters are atomic,
/// shared maps and the lock manager are mutex-guarded, commit durability
/// goes through the WAL's group-commit epochs (one fsync amortized across
/// concurrent committers), and engine access — apply *and* ReadCommitted —
/// is serialized behind an apply mutex, because the storage engine under
/// the tx layer is not itself thread-safe. A Transaction handle still
/// belongs to a single thread.
class TransactionManager {
 public:
  /// `log_path` is created within `env` on first use. `group_commit`
  /// selects the concurrent commit path (Concurrency feature).
  static StatusOr<std::unique_ptr<TransactionManager>> Open(
      osal::Env* env, const std::string& log_path, ApplyTarget* target,
      CommitProtocol protocol, bool group_commit = false);

  /// [feature Backup] Like Open, but adopts an already-opened log — the
  /// seam through which products with the Backup feature hand in a
  /// segmented log (LogManager::OpenSegmented) without the base
  /// transaction layer referencing segment machinery.
  static StatusOr<std::unique_ptr<TransactionManager>> Adopt(
      std::unique_ptr<LogManager> log, ApplyTarget* target,
      CommitProtocol protocol, bool group_commit = false);

  /// Replays committed transactions from the log into the target (call once
  /// at startup, before Begin). A torn log tail is truncated and recovery
  /// continues; mid-log corruption is reported through recovery_report()
  /// (recovered LSN, dropped-record count) while the intact prefix is still
  /// applied. Checkpoints and truncates on success.
  Status Recover();

  /// What the last Recover() found in the log (zero-valued before Recover).
  const RecoveryReport& recovery_report() const { return report_; }

  /// Starts a transaction. The pointer stays valid until Commit/Abort.
  StatusOr<Transaction*> Begin();

  /// Durably commits `txn` per the configured protocol.
  Status Commit(Transaction* txn);

  /// Drops the write set and releases locks.
  Status Abort(Transaction* txn);

  /// Flush engine + truncate log (periodic housekeeping for kWalRedo).
  Status Checkpoint();

  /// Read-only integrity scan of the durable log: decodes every frame
  /// without applying anything and reports what a future recovery would
  /// find (torn tail, mid-log corruption, drop counts). Never mutates the
  /// log or the engine.
  Status ScanLog(RecoveryReport* report);

  /// Transactions begun but not yet committed/aborted.
  size_t active_transactions() const;

  CommitProtocol protocol() const { return protocol_; }
  bool group_commit() const { return group_commit_; }
  LockManager& locks() { return locks_; }
  uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  uint64_t aborted() const { return aborted_.load(std::memory_order_relaxed); }
  /// WAL counters (fsync count feeds the fsyncs-per-commit metric).
  WalStats wal_stats() const { return log_->wal_stats(); }

  /// [feature Backup] True when the adopted log is segmented.
  bool wal_segmented() const { return log_->segmented(); }
  /// [feature Backup] Segment counters (zero-valued on a legacy log).
  WalSegmentStats wal_segment_stats() const { return log_->segment_stats(); }
  /// [feature Backup] End of the durable log — the upper bound a hot
  /// backup can capture.
  Lsn durable_lsn() const { return log_->durable_size(); }
  /// [feature Backup] Pauses/resumes segment recycling so a backup can
  /// copy a stable chain while commits continue.
  void PauseWalRecycle(bool paused) { log_->PauseRecycle(paused); }
  /// [feature Backup] Snapshot of the live segment chain.
  Status ListWalSegments(std::vector<WalSegmentInfo>* out) const {
    return log_->ListSegments(out);
  }
  /// [feature Backup] Offline-grade chain verification (fame_check).
  Status VerifyWalChain(std::vector<std::string>* issues) const {
    return log_->VerifySegmentChain(issues);
  }
  /// [feature Replication] Raises the fencing epoch stamped into WAL
  /// segments created from now on (monotone; no-op on a legacy log).
  void SetWalFenceEpoch(uint32_t epoch) { log_->SetSegmentEpoch(epoch); }
  /// [feature Replication] Current fencing epoch of the segmented log.
  uint32_t wal_fence_epoch() const { return log_->segment_epoch(); }
  /// [feature Backup] Runs `fn` with engine applies (and checkpoints)
  /// excluded, so a fuzzy page copy sees no concurrent page writes. In
  /// single-threaded builds this is just `fn()`.
  Status WithApplyPaused(const std::function<Status()>& fn);

  /// [feature Mvcc] Installs the engine's commit-timestamp oracle. Call
  /// before Begin/Recover; a null hooks pointer (the default) keeps the
  /// 2PL path byte-identical. From here on transactions carry snapshot
  /// timestamps, Put/Delete take no locks, and Commit runs the
  /// first-committer-wins check instead of relying on lock conflicts.
  void EnableMvcc(MvccHooks* hooks) { mvcc_ = hooks; }
  bool mvcc_enabled() const { return mvcc_ != nullptr; }
  /// [feature Mvcc] Snapshot read behind the apply mutex (the engine
  /// under the tx layer is not thread-safe; readers share its short apply
  /// sections but never wait on writer *transactions* — no read locks).
  Status SnapshotReadSafe(const std::string& store, const Slice& key,
                          uint64_t ts, std::string* value);
#if FAME_OBS_ENABLED
  /// [feature Observability] Records-per-flush histogram of the WAL.
  obs::HistogramSnapshot wal_batch_histogram() const {
    return log_->batch_records_histogram();
  }
#endif

 private:
  friend class Transaction;

  TransactionManager(ApplyTarget* target, CommitProtocol protocol)
      : target_(target), protocol_(protocol) {}

  /// Commit body; the caller handles finishing the transaction and cleanup
  /// on failure.
  Status CommitInternal(Transaction* txn);
  /// Log + sync + apply (+ force checkpoint) for one transaction.
  Status CommitPipeline(Transaction* txn);

  /// Lock-manager access, serialized when group commit is on.
  Status AcquireLock(uint64_t txid, const std::string& what, LockMode mode);
  void ReleaseLocks(uint64_t txid);
  /// Engine read behind the apply mutex when group commit is on.
  Status ReadCommittedSafe(const std::string& store, const Slice& key,
                           std::string* value);
  /// Moves a finished handle from active_ to the bounded retired_ pool.
  void Retire(Transaction* txn);

  ApplyTarget* target_;
  CommitProtocol protocol_;
  bool group_commit_ = false;
  std::unique_ptr<LogManager> log_;
  LockManager locks_;
  MvccHooks* mvcc_ = nullptr;  // [feature Mvcc] null = 2PL path
  std::atomic<uint64_t> next_txid_{1};
  std::map<uint64_t, std::unique_ptr<Transaction>> active_;
  /// The most recently finished handles, kept alive (bounded FIFO, oldest
  /// evicted first) purely for determinism: "the pointer stays valid until
  /// Commit/Abort" used to mean a second Commit on a finished handle read
  /// freed memory — now the handle outlives its transaction and the second
  /// call fails InvalidArgument cleanly. Handles are never *recycled* into
  /// fresh transactions: Begin always allocates, so a stale pointer can
  /// never alias a newer transaction and silently commit/abort it.
  std::vector<std::unique_ptr<Transaction>> retired_;
  static constexpr size_t kMaxRetired = 32;
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  RecoveryReport report_;

  // Group-commit mode only; never locked otherwise.
  mutable std::mutex state_mu_;  // next/active_ bookkeeping
  std::mutex locks_mu_;          // LockManager is not thread-safe
  std::mutex apply_mu_;          // engine apply + reads (engine not MT-safe)
  /// Commit pipelines hold this shared from append through apply;
  /// Checkpoint (and force-protocol commits, which truncate the log) hold
  /// it exclusive. Prevents a checkpoint from truncating records whose
  /// engine apply has not happened yet.
  std::shared_mutex checkpoint_mu_;
};

}  // namespace fame::tx

#endif  // FAME_TX_TXMGR_H_

// Frame codec shared by the WAL's two physical backends (the classic
// single file in wal.cc and the segmented store in wal_segments.cc).
// Framing, from wal.h:
//   [u32 masked CRC of len..payload][u16 len][u8 type][payload]
#ifndef FAME_TX_WAL_FRAME_H_
#define FAME_TX_WAL_FRAME_H_

#include "common/coding.h"
#include "common/crc32.h"
#include "tx/wal.h"

namespace fame::tx {

/// Validates the frame at byte offset `off` of `data` (`size` valid bytes)
/// and decodes it into `rec`; on success sets `*next` to the following
/// frame's offset. False for torn/corrupt frames.
inline bool DecodeWalFrame(const char* data, uint64_t off, uint64_t size,
                           LogRecord* rec, uint64_t* next) {
  if (off + 6 > size) return false;
  uint32_t stored_crc = DecodeFixed32(data + off);
  uint16_t len = DecodeFixed16(data + off + 4);
  if (off + 6 + len > size || len == 0) return false;
  const char* body = data + off + 4;
  if (MaskCrc(Crc32(body, 2 + len)) != stored_crc) return false;
  auto type = static_cast<LogRecordType>(body[2]);
  auto rec_or = LogRecord::DecodePayload(type, Slice(body + 3, len - 1));
  if (!rec_or.ok()) return false;
  *rec = std::move(rec_or).value();
  *next = off + 6 + len;
  return true;
}

/// Counts the intact frames in `data` starting at offset 0 (used to report
/// how many once-durable records a stranded segment held).
inline uint64_t CountIntactWalFrames(const char* data, uint64_t size) {
  uint64_t off = 0;
  uint64_t count = 0;
  LogRecord rec;
  uint64_t next = 0;
  while (DecodeWalFrame(data, off, size, &rec, &next)) {
    ++count;
    off = next;
  }
  return count;
}

}  // namespace fame::tx

#endif  // FAME_TX_WAL_FRAME_H_

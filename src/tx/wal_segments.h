// Segment header codec of the [feature Backup] segmented WAL store, shared
// with the backup/restore tooling (core/backup.cc) which parses archived
// segment headers during point-in-time recovery. See wal_segments.cc for
// the full on-disk layout.
#ifndef FAME_TX_WAL_SEGMENTS_H_
#define FAME_TX_WAL_SEGMENTS_H_

#include <cstdint>
#include <string>

#include "tx/wal.h"

namespace fame::tx::seg {

/// Fixed segment header size in bytes.
inline constexpr uint64_t kHeaderSize = 32;

/// Zero-padded decimal sequence suffix ("000001").
std::string SegmentSuffix(uint32_t seq);

/// Encodes a kHeaderSize-byte segment header. `epoch` is the replication
/// fencing epoch the segment was created under ([feature Replication];
/// 0 everywhere else — the header's formerly reserved word, so old files
/// stay decodable without a version bump).
std::string EncodeSegmentHeader(Lsn base, uint32_t seq, uint32_t epoch = 0);

/// Validates and decodes a segment header; false on damage.
bool DecodeSegmentHeader(const char* data, uint64_t n, Lsn* base,
                         uint32_t* seq, uint32_t* epoch = nullptr);

}  // namespace fame::tx::seg

#endif  // FAME_TX_WAL_SEGMENTS_H_

// Segmented WAL store: the [feature Backup] physical backend behind
// LogManager. The log's logical byte space is unchanged — LSNs stay byte
// offsets, contiguous and monotone for the life of the database — but the
// bytes live in fixed-size segment files `<path>.000001`, `<path>.000002`,
// ... instead of one file:
//
//   [32-byte header][payload bytes]
//   header: u32 magic "FWSG" | u32 version | u64 base_lsn | u32 seq |
//           u32 reserved | u32 masked CRC of the first 24 bytes | pad
//
// base_lsn is the logical offset of the first payload byte; a segment
// covers [base_lsn, base_lsn + payload). Appends roll to a new segment once
// the active one reaches the configured threshold (soft cap: one append
// batch never splits). Checkpoints advance a retention watermark and
// recycle only segments wholly below it — deleting them, or, with the Pitr
// feature, archiving a copy first so point-in-time restores can replay
// history past the last backup.
//
// Everything here lives in its own translation unit, reached only through
// LogManager::OpenSegmented and the WalStore interface, so products without
// the Backup feature link none of it (enforced by the nm symbol guard in
// tests/CMakeLists.txt).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/retry.h"
#include "tx/wal.h"
#include "tx/wal_frame.h"
#include "tx/wal_segments.h"

namespace fame::tx {
namespace seg {

constexpr uint32_t kMagic = 0x47535746;  // "FWSG"
constexpr uint32_t kVersion = 1;

std::string SegmentSuffix(uint32_t seq) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06u", seq);
  return buf;
}

std::string EncodeSegmentHeader(Lsn base, uint32_t seq, uint32_t epoch) {
  std::string h;
  PutFixed32(&h, kMagic);
  PutFixed32(&h, kVersion);
  PutFixed64(&h, base);
  PutFixed32(&h, seq);
  PutFixed32(&h, epoch);  // fencing epoch; 0 outside Replication products
  PutFixed32(&h, MaskCrc(Crc32(h.data(), h.size())));
  h.resize(kHeaderSize, '\0');
  return h;
}

bool DecodeSegmentHeader(const char* data, uint64_t n, Lsn* base,
                         uint32_t* seq, uint32_t* epoch) {
  if (n < kHeaderSize) return false;
  if (DecodeFixed32(data) != kMagic) return false;
  if (DecodeFixed32(data + 4) != kVersion) return false;
  if (DecodeFixed32(data + 24) != MaskCrc(Crc32(data, 24))) return false;
  *base = DecodeFixed64(data + 8);
  *seq = DecodeFixed32(data + 16);
  if (epoch != nullptr) *epoch = DecodeFixed32(data + 20);
  return true;
}

Status ReadExact(osal::RandomAccessFile* f, uint64_t off, uint64_t n,
                 char* dst) {
  Slice result;
  FAME_RETURN_IF_ERROR(f->Read(off, n, dst, &result));
  if (result.size() != n) return Status::IOError("short segment read");
  return Status::OK();
}

/// One live segment of the chain.
struct Segment {
  std::string file;
  uint32_t seq = 0;
  Lsn base = 0;
  /// Payload bytes reachable through the chain. For sealed segments this is
  /// pinned to the successor's base (trailing junk past it is unreachable);
  /// for the active segment it tracks the append position.
  uint64_t payload = 0;
  /// Fencing epoch from the header ([feature Replication]; 0 otherwise).
  uint32_t epoch = 0;
};

class SegmentStore final : public WalStore {
 public:
  SegmentStore(osal::Env* env, std::string path, WalOptions opts)
      : env_(env), path_(std::move(path)), opts_(std::move(opts)) {}

  /// Discovers the on-disk chain: migrates a legacy single-file log,
  /// validates headers and base/sequence continuity, drops a torn-header
  /// segment at the tail (crash mid-rotation: its payload never existed),
  /// and records segments stranded past a mid-chain break as orphans for
  /// Replay to report as corruption.
  Status Load() {
    std::vector<std::string> names;
    FAME_RETURN_IF_ERROR(env_->ListFiles(path_ + ".", &names));
    std::vector<std::pair<uint32_t, std::string>> candidates;
    const size_t plen = path_.size() + 1;
    for (const std::string& n : names) {
      std::string suffix = n.substr(plen);
      if (suffix.size() < 6 || suffix.size() > 9) continue;
      if (!std::all_of(suffix.begin(), suffix.end(),
                       [](char c) { return c >= '0' && c <= '9'; })) {
        continue;
      }
      candidates.emplace_back(
          static_cast<uint32_t>(std::stoul(suffix)), n);
    }
    if (candidates.empty() && env_->FileExists(path_)) {
      FAME_RETURN_IF_ERROR(MigrateLegacy());
      candidates.emplace_back(1u, NameFor(1));
    }
    std::sort(candidates.begin(), candidates.end());

    // Validate headers in ascending sequence order.
    struct Probe {
      Segment seg;
      uint64_t file_size = 0;
      bool valid = false;
    };
    std::vector<Probe> probes;
    for (const auto& [seq, name] : candidates) {
      Probe p;
      p.seg.file = name;
      p.seg.seq = seq;
      auto file_or = env_->OpenFile(name, /*create=*/false);
      FAME_RETURN_IF_ERROR(file_or.status());
      std::unique_ptr<osal::RandomAccessFile> f =
          std::move(file_or).value();
      auto size_or = f->Size();
      FAME_RETURN_IF_ERROR(size_or.status());
      p.file_size = size_or.value();
      char hdr[kHeaderSize];
      if (p.file_size >= kHeaderSize &&
          ReadExact(f.get(), 0, kHeaderSize, hdr).ok()) {
        Lsn base = 0;
        uint32_t hdr_seq = 0;
        uint32_t hdr_epoch = 0;
        if (DecodeSegmentHeader(hdr, kHeaderSize, &base, &hdr_seq,
                                &hdr_epoch) &&
            hdr_seq == seq) {
          p.seg.base = base;
          p.seg.payload = p.file_size - kHeaderSize;
          p.seg.epoch = hdr_epoch;
          p.valid = true;
        }
      }
      probes.push_back(std::move(p));
    }
    // A torn header on the *last* segment is the rotation crash window: the
    // header never became durable, so no payload byte can exist past the
    // previous segment's end. Drop it.
    while (!probes.empty() && !probes.back().valid) {
      FAME_RETURN_IF_ERROR(env_->DeleteFile(probes.back().seg.file));
      probes.pop_back();
    }
    // Walk the chain; the first invalid header or base/seq discontinuity
    // strands everything after it.
    size_t k = 0;
    for (; k < probes.size(); ++k) {
      if (!probes[k].valid) break;
      if (k > 0) {
        Segment& prev = chain_.back();
        const Segment& cur = probes[k].seg;
        if (cur.seq != prev.seq + 1 || cur.base < prev.base) break;
        // The predecessor must physically hold every byte up to this
        // segment's base; trailing junk past that point is unreachable
        // (sealing clamps it away).
        uint64_t needed = cur.base - prev.base;
        if (probes[k - 1].file_size - kHeaderSize < needed) break;
        prev.payload = needed;
      }
      chain_.push_back(probes[k].seg);
    }
    for (size_t i = k; i < probes.size(); ++i) {
      orphan_files_.push_back(probes[i].seg.file);
      uint64_t payload =
          probes[i].file_size > kHeaderSize
              ? probes[i].file_size - kHeaderSize
              : 0;
      orphaned_bytes_ += payload;
      if (payload > 0) {
        std::string body(payload, '\0');
        auto file_or = env_->OpenFile(probes[i].seg.file, /*create=*/false);
        if (file_or.ok() &&
            ReadExact(file_or.value().get(), kHeaderSize, payload,
                      body.data())
                .ok()) {
          orphaned_records_ += CountIntactWalFrames(body.data(), payload);
        }
      }
    }
    if (chain_.empty()) {
      FAME_RETURN_IF_ERROR(CreateSegmentLocked(1, 0));
    } else {
      auto file_or = env_->OpenFile(chain_.back().file, /*create=*/false);
      FAME_RETURN_IF_ERROR(file_or.status());
      active_ = std::move(file_or).value();
    }
    // Future segments continue under the newest epoch found on disk (a
    // leader restart keeps its fence; StartLeader/Promote raise it).
    epoch_ = chain_.back().epoch;
    retained_ = chain_.front().base;
    return Status::OK();
  }

  Lsn start_lsn() const override {
    std::lock_guard<std::mutex> l(mu_);
    return chain_.front().base;
  }

  uint64_t DurableEnd() const override {
    std::lock_guard<std::mutex> l(mu_);
    return chain_.back().base + chain_.back().payload;
  }

  Status Append(Lsn at, const Slice& data) override {
    std::lock_guard<std::mutex> l(mu_);
    if (chain_.back().payload >= opts_.segment_bytes) {
      FAME_RETURN_IF_ERROR(RollLocked());
    }
    Segment& act = chain_.back();
    if (at < act.base) {
      return Status::InvalidArgument("append below the active segment");
    }
    FAME_RETURN_IF_ERROR(
        active_->Write(kHeaderSize + (at - act.base), data));
    act.payload = (at - act.base) + data.size();
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> l(mu_);
    return active_->Sync();
  }

  Status UndoAppend(Lsn to) override {
    std::lock_guard<std::mutex> l(mu_);
    Segment& act = chain_.back();
    if (to < act.base) {
      return Status::InvalidArgument("undo below the active segment");
    }
    FAME_RETURN_IF_ERROR(active_->Truncate(kHeaderSize + (to - act.base)));
    act.payload = to - act.base;
    return Status::OK();
  }

  Status ReadSuffix(std::string* out) override {
    std::lock_guard<std::mutex> l(mu_);
    out->clear();
    uint64_t total = 0;
    for (const Segment& s : chain_) total += s.payload;
    out->reserve(total);
    for (size_t i = 0; i < chain_.size(); ++i) {
      const Segment& s = chain_[i];
      if (s.payload == 0) continue;
      std::string chunk(s.payload, '\0');
      bool is_active = i + 1 == chain_.size();
      Status read;
      if (is_active) {
        read = ReadExact(active_.get(), kHeaderSize, s.payload, chunk.data());
      } else {
        auto file_or = env_->OpenFile(s.file, /*create=*/false);
        FAME_RETURN_IF_ERROR(file_or.status());
        read = ReadExact(file_or.value().get(), kHeaderSize, s.payload,
                         chunk.data());
      }
      FAME_RETURN_IF_ERROR(read);
      out->append(chunk);
    }
    return Status::OK();
  }

  Status TruncateTo(Lsn lsn) override {
    std::lock_guard<std::mutex> l(mu_);
    // Orphans sit past the damage being cut away; their lifecycle ends
    // here, exactly like the stranded bytes a single-file recovery drops.
    for (const std::string& f : orphan_files_) {
      FAME_RETURN_IF_ERROR(env_->DeleteFile(f));
    }
    orphan_files_.clear();
    orphaned_bytes_ = 0;
    orphaned_records_ = 0;
    if (lsn < chain_.front().base) {
      return Status::InvalidArgument("cannot truncate below retained start");
    }
    while (chain_.size() > 1 && chain_.back().base >= lsn) {
      active_.reset();
      FAME_RETURN_IF_ERROR(env_->DeleteFile(chain_.back().file));
      chain_.pop_back();
    }
    Segment& act = chain_.back();
    auto file_or = env_->OpenFile(act.file, /*create=*/false);
    FAME_RETURN_IF_ERROR(file_or.status());
    active_ = std::move(file_or).value();
    FAME_RETURN_IF_ERROR(active_->Truncate(kHeaderSize + (lsn - act.base)));
    FAME_RETURN_IF_ERROR(active_->Sync());
    act.payload = lsn - act.base;
    return Status::OK();
  }

  Status AdvanceRetention(Lsn mark) override {
    std::lock_guard<std::mutex> rl(recycle_mu_);
    std::vector<Segment> eligible;
    {
      std::lock_guard<std::mutex> l(mu_);
      if (mark > retained_) retained_ = mark;
      if (recycle_paused_) return Status::OK();
      // Only sealed segments wholly below the watermark retire; the chain
      // stays a contiguous run, so eligibility is always a prefix.
      for (size_t i = 0; i + 1 < chain_.size(); ++i) {
        const Segment& s = chain_[i];
        if (s.base + s.payload > retained_) break;
        eligible.push_back(s);
      }
    }
    // File IO happens outside mu_: retiring history must not stall
    // appenders. recycle_mu_ keeps concurrent checkpoints from racing.
    for (const Segment& s : eligible) {
      bool archived = false;
      if (opts_.archive) {
        Status a = ArchiveSegment(s);
        if (!a.ok()) {
          // Pause, report through stats, retry at the next checkpoint.
          // Nothing is lost: the segment stays in the live chain.
          std::lock_guard<std::mutex> l(mu_);
          archive_stalled_ = true;
          return Status::OK();
        }
        archived = true;
      }
      Status d = RetryOnTransient(HostIoRetryPolicy(),
                                  [&] { return env_->DeleteFile(s.file); });
      if (!d.ok()) {
        std::lock_guard<std::mutex> l(mu_);
        archive_stalled_ = true;
        return Status::OK();
      }
      std::lock_guard<std::mutex> l(mu_);
      chain_.erase(chain_.begin());
      ++recycled_;
      if (archived) ++archived_;
      archive_stalled_ = false;
    }
    return Status::OK();
  }

  void PauseRecycle(bool on) override {
    std::lock_guard<std::mutex> l(mu_);
    recycle_paused_ = on;
  }

  void SetEpoch(uint32_t epoch) override {
    std::lock_guard<std::mutex> l(mu_);
    // Monotone: a fence never lowers. Only segments created from here on
    // carry the new epoch; existing headers are immutable history.
    if (epoch > epoch_) epoch_ = epoch;
  }

  uint32_t epoch() const override {
    std::lock_guard<std::mutex> l(mu_);
    return epoch_;
  }

  WalSegmentStats stats() const override {
    std::lock_guard<std::mutex> l(mu_);
    WalSegmentStats out;
    out.segments = chain_.size();
    out.rotations = rotations_;
    out.recycled = recycled_;
    out.archived = archived_;
    for (size_t i = 0; i + 1 < chain_.size(); ++i) {
      const Segment& s = chain_[i];
      if (s.base + s.payload > retained_) break;
      out.archive_lag_bytes += s.payload;
    }
    out.archive_stalled = archive_stalled_;
    out.start_lsn = chain_.front().base;
    out.retained_lsn = retained_;
    out.fence_epoch = epoch_;
    return out;
  }

  Status ListSegments(std::vector<WalSegmentInfo>* out) const override {
    std::lock_guard<std::mutex> l(mu_);
    for (const Segment& s : chain_) {
      WalSegmentInfo info;
      info.file = s.file;
      info.seq = s.seq;
      info.base_lsn = s.base;
      info.payload_bytes = s.payload;
      info.epoch = s.epoch;
      out->push_back(std::move(info));
    }
    return Status::OK();
  }

  Status VerifyChain(std::vector<std::string>* issues) const override {
    std::lock_guard<std::mutex> l(mu_);
    Lsn expected_base = chain_.front().base;
    uint32_t expected_seq = chain_.front().seq;
    for (const Segment& s : chain_) {
      auto file_or = env_->OpenFile(s.file, /*create=*/false);
      if (!file_or.ok()) {
        issues->push_back("segment " + s.file + " unreadable: " +
                          file_or.status().ToString());
        return Status::OK();
      }
      char hdr[kHeaderSize];
      Lsn base = 0;
      uint32_t seq = 0;
      if (!ReadExact(file_or.value().get(), 0, kHeaderSize, hdr).ok() ||
          !DecodeSegmentHeader(hdr, kHeaderSize, &base, &seq)) {
        issues->push_back("segment " + s.file + " header damaged");
        return Status::OK();
      }
      if (seq != expected_seq) {
        issues->push_back("segment " + s.file + " sequence gap: expected " +
                          std::to_string(expected_seq) + " found " +
                          std::to_string(seq));
      }
      if (base != expected_base) {
        issues->push_back("segment " + s.file + " base discontinuity: " +
                          "expected " + std::to_string(expected_base) +
                          " found " + std::to_string(base));
      }
      auto size_or = file_or.value()->Size();
      if (size_or.ok() && size_or.value() < kHeaderSize + s.payload) {
        issues->push_back("segment " + s.file + " shorter than its chain " +
                          "coverage");
      }
      expected_base = s.base + s.payload;
      expected_seq = s.seq + 1;
    }
    for (const std::string& f : orphan_files_) {
      issues->push_back("segment " + f + " stranded past a chain break");
    }
    return Status::OK();
  }

  uint64_t orphaned_bytes() const override {
    std::lock_guard<std::mutex> l(mu_);
    return orphaned_bytes_;
  }
  uint64_t orphaned_records() const override {
    std::lock_guard<std::mutex> l(mu_);
    return orphaned_records_;
  }

 private:
  std::string NameFor(uint32_t seq) const {
    return path_ + "." + SegmentSuffix(seq);
  }

  /// Copies a legacy single-file log into segment 1 and removes it; the
  /// LSN space is preserved exactly (base 0).
  Status MigrateLegacy() {
    std::string legacy;
    FAME_RETURN_IF_ERROR(env_->ReadFileToString(path_, &legacy));
    std::string contents = EncodeSegmentHeader(0, 1) + legacy;
    FAME_RETURN_IF_ERROR(env_->WriteStringToFile(NameFor(1), contents));
    return env_->DeleteFile(path_);
  }

  /// Creates segment `seq` with `base` and makes it active. Caller holds
  /// mu_ (or is single-threaded open). Safe to retry: recreating the same
  /// segment overwrites the same header bytes.
  Status CreateSegmentLocked(uint32_t seq, Lsn base) {
    std::string name = NameFor(seq);
    auto file_or = env_->OpenFile(name, /*create=*/true);
    FAME_RETURN_IF_ERROR(file_or.status());
    std::unique_ptr<osal::RandomAccessFile> f = std::move(file_or).value();
    std::string hdr = EncodeSegmentHeader(base, seq, epoch_);
    FAME_RETURN_IF_ERROR(f->Write(0, hdr));
    FAME_RETURN_IF_ERROR(f->Sync());
    chain_.push_back(Segment{name, seq, base, 0, epoch_});
    active_ = std::move(f);
    return Status::OK();
  }

  /// Seals the active segment and starts the next one. The active chain
  /// entry is only replaced after the new header is durable, so a failure
  /// (or crash) anywhere in between leaves the old segment active and at
  /// worst a torn-header file for the next open to discard.
  Status RollLocked() {
    const Segment& act = chain_.back();
    Lsn base = act.base + act.payload;
    uint32_t seq = act.seq + 1;
    FAME_RETURN_IF_ERROR(CreateSegmentLocked(seq, base));
    ++rotations_;
    return Status::OK();
  }

  /// Copies `s` (header + payload) to the archive namespace with jittered
  /// retry; the source segment is deleted only after the copy synced.
  Status ArchiveSegment(const Segment& s) {
    std::string contents;
    FAME_RETURN_IF_ERROR(RetryOnTransient(
        HostIoRetryPolicy(),
        [&] { return env_->ReadFileToString(s.file, &contents); }));
    std::string dest = opts_.archive_prefix + SegmentSuffix(s.seq);
    Status w = RetryOnTransient(HostIoRetryPolicy(), [&] {
      return env_->WriteStringToFile(dest, contents);
    });
    if (!w.ok()) {
      // Never leave a half-written archive behind a success-looking name.
      if (env_->FileExists(dest)) (void)env_->DeleteFile(dest);
      return w;
    }
    return Status::OK();
  }

  osal::Env* env_;
  const std::string path_;
  const WalOptions opts_;
  /// Guards chain_, active_, counters, and flags. Held across segment file
  /// IO on the append path (appenders are already serialized above us);
  /// recycle IO runs outside it so retiring history never stalls commits.
  mutable std::mutex mu_;
  /// Serializes whole AdvanceRetention bodies (checkpoint callers invoke
  /// it outside their own exclusive section).
  std::mutex recycle_mu_;
  std::vector<Segment> chain_;  // ascending; back() is the active segment
  std::unique_ptr<osal::RandomAccessFile> active_;
  Lsn retained_ = 0;
  uint32_t epoch_ = 0;  ///< fencing epoch stamped into new segment headers
  bool recycle_paused_ = false;
  bool archive_stalled_ = false;
  uint64_t rotations_ = 0;
  uint64_t recycled_ = 0;
  uint64_t archived_ = 0;
  std::vector<std::string> orphan_files_;
  uint64_t orphaned_bytes_ = 0;
  uint64_t orphaned_records_ = 0;
};

}  // namespace seg

StatusOr<std::unique_ptr<LogManager>> LogManager::OpenSegmented(
    osal::Env* env, const std::string& path, const WalOptions& options) {
  WalOptions opts = options;
  if (opts.segment_bytes == 0) opts.segment_bytes = 64 * 1024;
  if (opts.archive && opts.archive_prefix.empty()) {
    opts.archive_prefix = path + ".arc.";
  }
  auto store = std::make_unique<seg::SegmentStore>(env, path, opts);
  FAME_RETURN_IF_ERROR(store->Load());
  std::unique_ptr<LogManager> log(new LogManager(env, path));
  log->durable_size_ = store->DurableEnd();
  log->store_ = std::move(store);
  return log;
}

}  // namespace fame::tx

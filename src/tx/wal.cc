#include "tx/wal.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "tx/wal_frame.h"
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::tx {

LogRecord LogRecord::Begin(uint64_t txid) {
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.txid = txid;
  return r;
}

LogRecord LogRecord::Commit(uint64_t txid) {
  LogRecord r;
  r.type = LogRecordType::kCommit;
  r.txid = txid;
  return r;
}

LogRecord LogRecord::CommitAt(uint64_t txid, uint64_t commit_ts) {
  LogRecord r = Commit(txid);
  r.commit_ts = commit_ts;
  return r;
}

LogRecord LogRecord::Abort(uint64_t txid) {
  LogRecord r;
  r.type = LogRecordType::kAbort;
  r.txid = txid;
  return r;
}

LogRecord LogRecord::Put(uint64_t txid, std::string store, std::string key,
                         std::string value) {
  LogRecord r;
  r.type = LogRecordType::kOp;
  r.txid = txid;
  r.op = OpType::kPut;
  r.store = std::move(store);
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

LogRecord LogRecord::Delete(uint64_t txid, std::string store,
                            std::string key) {
  LogRecord r;
  r.type = LogRecordType::kOp;
  r.txid = txid;
  r.op = OpType::kDelete;
  r.store = std::move(store);
  r.key = std::move(key);
  return r;
}

void LogRecord::AppendPayloadTo(std::string* out) const {
  PutVarint64(out, txid);
  // [feature Mvcc] Versioned commits carry their timestamp as a trailing
  // varint; everything the legacy writer produced is encoded identically.
  if (type == LogRecordType::kCommit && commit_ts != 0) {
    PutVarint64(out, commit_ts);
  }
  if (type == LogRecordType::kOp) {
    out->push_back(static_cast<char>(op));
    PutLengthPrefixedSlice(out, store);
    PutLengthPrefixedSlice(out, key);
    PutLengthPrefixedSlice(out, value);
  }
}

std::string LogRecord::EncodePayload() const {
  std::string out;
  AppendPayloadTo(&out);
  return out;
}

StatusOr<LogRecord> LogRecord::DecodePayload(LogRecordType type,
                                             const Slice& payload) {
  LogRecord r;
  r.type = type;
  Slice in = payload;
  if (!GetVarint64(&in, &r.txid)) {
    return Status::Corruption("log record missing txid");
  }
  if (type == LogRecordType::kCommit && !in.empty()) {
    // [feature Mvcc] Optional trailing commit timestamp; legacy commit
    // records end at the txid and decode with commit_ts = 0.
    if (!GetVarint64(&in, &r.commit_ts)) {
      return Status::Corruption("log commit record truncated");
    }
  }
  if (type == LogRecordType::kOp) {
    if (in.empty()) return Status::Corruption("log op record truncated");
    r.op = static_cast<OpType>(in[0]);
    in.remove_prefix(1);
    Slice store, key, value;
    if (!GetLengthPrefixedSlice(&in, &store) ||
        !GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return Status::Corruption("log op record truncated");
    }
    r.store = store.ToString();
    r.key = key.ToString();
    r.value = value.ToString();
  }
  return r;
}

namespace {

/// True iff `name` is `prefix` followed by an all-digit sequence suffix —
/// the same filter SegmentStore::Load applies when it discovers a chain.
/// Kept local so legacy products do not pull in the segment store TU.
bool IsSegmentName(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  const size_t len = name.size() - prefix.size();
  if (len < 6 || len > 9) return false;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<LogManager>> LogManager::Open(
    osal::Env* env, const std::string& path) {
  // A segmented chain exists: opening it as a single file would silently
  // ignore every record the segments hold. Refuse instead of losing data.
  // Checkpoint retention recycles the chain's head, so the first segment
  // need not be .000001 — probe for *any* sequence-suffixed file.
  std::vector<std::string> names;
  Status ls = env->ListFiles(path + ".", &names);
  if (ls.ok()) {
    for (const std::string& n : names) {
      if (IsSegmentName(n, path + ".")) {
        return Status::InvalidArgument(
            "log at " + path +
            " is segmented; open with the Backup feature selected");
      }
    }
  } else if (!ls.IsNotSupported()) {
    return ls;
  } else if (env->FileExists(path + ".000001")) {
    // Env cannot enumerate (foreign shim). A chain can only have been
    // written through an env that supports ListFiles, so this existence
    // probe is a defensive best effort.
    return Status::InvalidArgument(
        "log at " + path +
        " is segmented; open with the Backup feature selected");
  }
  std::unique_ptr<LogManager> log(new LogManager(env, path));
  auto file_or = env->OpenFile(path, /*create=*/true);
  FAME_RETURN_IF_ERROR(file_or.status());
  log->file_ = std::move(file_or).value();
  auto size_or = log->file_->Size();
  FAME_RETURN_IF_ERROR(size_or.status());
  log->durable_size_ = size_or.value();
  return log;
}

Lsn LogManager::head() const {
  if (group_commit_) {
    std::lock_guard<std::mutex> l(mu_);
    return durable_size_.load(std::memory_order_relaxed) +
           static_cast<Lsn>(buffer_.size());
  }
  return durable_size_.load(std::memory_order_relaxed) +
         static_cast<Lsn>(buffer_.size());
}

StatusOr<Lsn> LogManager::Append(const LogRecord& record) {
  std::unique_lock<std::mutex> l(mu_, std::defer_lock);
  if (group_commit_) {
    l.lock();
    if (!poison_.ok()) return poison_;
  } else if (!poison_.ok()) {
    // Single-threaded path: a failed flush whose tail cleanup also failed
    // left unaccounted bytes on disk; appending after them is unsafe.
    return poison_;
  }
  Lsn lsn = durable_size_.load(std::memory_order_relaxed) +
            static_cast<Lsn>(buffer_.size());
  // Encode the frame directly into the batch buffer — the hot commit path
  // used to build three temporary strings (payload, body, frame) per
  // record; now the only allocations are buffer_'s amortized growth, and
  // the buffer's capacity is recycled across group-commit epochs. The CRC
  // and length fields are placeholders patched once the payload is in
  // place.
  const size_t frame_off = buffer_.size();
  PutFixed32(&buffer_, 0);  // masked CRC, patched below
  const size_t body_off = buffer_.size();
  PutFixed16(&buffer_, 0);  // body length, patched below
  buffer_.push_back(static_cast<char>(record.type));
  record.AppendPayloadTo(&buffer_);
  const size_t body_size = buffer_.size() - body_off - 2;  // type + payload
  if (body_size > 0xffff) {
    buffer_.resize(frame_off);  // roll the partial frame back out
    return Status::InvalidArgument("log record too large");
  }
  EncodeFixed16(&buffer_[body_off], static_cast<uint16_t>(body_size));
  uint32_t crc = Crc32(buffer_.data() + body_off, buffer_.size() - body_off);
  EncodeFixed32(&buffer_[frame_off], MaskCrc(crc));
  FAME_OBS(++buffered_records_;)
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return lsn;
}

Status LogManager::WriteDurable(uint64_t at, const Slice& data) {
  if (store_ != nullptr) return store_->Append(at, data);
  return file_->Write(at, data);
}

Status LogManager::SyncDurable() {
  if (store_ != nullptr) return store_->Sync();
  return file_->Sync();
}

Status LogManager::CleanupFailedFlush(uint64_t to) {
  // Remove any partially written, unsynced bytes so a later successful
  // flush does not leave stale frames past its own tail. After a crash the
  // unsynced bytes are gone anyway, but while the process lives they are
  // readable — so a persistent cleanup failure must poison the log (the
  // caller's job; this helper only counts it): appending beyond an
  // unaccounted tail could resurrect a failed transaction's frames as
  // committed.
  Status s = RetryOnTransient(retry_, [&] {
    return store_ != nullptr ? store_->UndoAppend(to) : file_->Truncate(to);
  });
  if (!s.ok()) {
    tail_cleanup_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

Status LogManager::Flush() {
  if (group_commit_) {
    std::unique_lock<std::mutex> l(mu_);
    Lsn target = durable_size_.load(std::memory_order_relaxed) +
                 static_cast<Lsn>(buffer_.size());
    return SyncThroughLocked(l, target);
  }
  if (!poison_.ok()) return poison_;
  if (buffer_.empty()) return Status::OK();
  uint64_t durable = durable_size_.load(std::memory_order_relaxed);
  Status s = RetryOnTransient(
      retry_, [&] { return WriteDurable(durable, buffer_); });
  if (s.ok()) {
    s = RetryOnTransient(retry_, [&] { return SyncDurable(); });
  }
  if (!s.ok()) {
    Status cleanup = CleanupFailedFlush(durable);
    // Single-threaded path, so the poison write needs no lock. A poisoned
    // log rejects all further appends/flushes; the durable prefix stays
    // intact and readable.
    if (!cleanup.ok() && poison_.ok()) poison_ = cleanup;
    return s;
  }
  durable_size_.store(durable + buffer_.size(), std::memory_order_relaxed);
  FAME_OBS(const uint64_t flushed_records = buffered_records_;
           buffered_records_ = 0;
           batch_records_histo_.Record(flushed_records);)
  FAME_OBS_TRACE(obs::Trace::Record(obs::SpanKind::kWalSync,
                                    obs::TraceOp::kNone, flushed_records,
                                    buffer_.size());)
  buffer_.clear();
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogManager::SyncCommit(Lsn rec_lsn) {
  if (!group_commit_) return Flush();
  std::unique_lock<std::mutex> l(mu_);
  // The record starting at rec_lsn is durable once the prefix strictly
  // covers it; flushes move in whole-record granules, so rec_lsn + 1 is a
  // sufficient target.
  return SyncThroughLocked(l, rec_lsn + 1);
}

Status LogManager::SyncThroughLocked(std::unique_lock<std::mutex>& l,
                                     Lsn target) {
  FAME_OBS_TRACE(bool followed = false;)
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (durable_size_.load(std::memory_order_relaxed) >= target) {
      // A follower's commit became durable inside someone else's epoch:
      // record the cross-thread edge to the leader's batch span so the
      // trace exporter can draw the flow from batch to follower commit.
      FAME_OBS_TRACE(if (followed) {
        obs::Trace::Record(obs::SpanKind::kWalJoin, obs::TraceOp::kNone,
                           last_batch_span_, last_batch_records_);
      })
      return Status::OK();
    }
    if (!flush_in_progress_) break;
    // An epoch is in flight; follow it. Records appended while the leader
    // is fsyncing form the *next* epoch, so we may loop back to lead it.
    FAME_OBS_TRACE(followed = true;)
    cv_.wait(l);
  }
  if (buffer_.empty()) return Status::OK();
  // Lead this epoch: take everything buffered — our record plus every
  // follower's — and fsync once for the whole batch.
  flush_in_progress_ = true;
  // Recycle the previous epoch's capacity instead of allocating a fresh
  // batch string every group commit: the batch keeps buffer_'s storage,
  // buffer_ inherits spare_'s (cleared) storage, and after the flush the
  // batch's storage parks back in spare_ for the next epoch.
  std::string batch = std::move(buffer_);
  buffer_ = std::move(spare_);
  buffer_.clear();
  FAME_OBS(const uint64_t batch_records = buffered_records_;
           buffered_records_ = 0;)
  // The epoch's span id is allocated up front so the batch event below is
  // a flow source followers can name after they wake.
  FAME_OBS_TRACE(const uint64_t batch_span = obs::Trace::NewId();)
  const uint64_t base = durable_size_.load(std::memory_order_relaxed);
  l.unlock();
  Status s =
      RetryOnTransient(retry_, [&] { return WriteDurable(base, batch); });
  if (s.ok()) {
    s = RetryOnTransient(retry_, [&] { return SyncDurable(); });
  }
  if (!s.ok()) {
    // The epoch failure below poisons the log regardless (under mu_); the
    // cleanup, with its own retry budget, just keeps the on-disk tail
    // accounted for — its failure is counted inside.
    (void)CleanupFailedFlush(base);
  }
  FAME_OBS_TRACE(obs::Trace::RecordWithSpanId(
      obs::SpanKind::kWalSync, obs::TraceOp::kNone, batch_span,
      batch_records, batch.size(), !s.ok());)
  l.lock();
  flush_in_progress_ = false;
  FAME_OBS_TRACE(last_batch_span_ = batch_span;
                 last_batch_records_ = batch_records;)
  if (s.ok()) {
    durable_size_.store(base + batch.size(), std::memory_order_relaxed);
    FAME_OBS(batch_records_histo_.Record(batch_records);)
    syncs_.fetch_add(1, std::memory_order_relaxed);
    group_batches_.fetch_add(1, std::memory_order_relaxed);
    group_batched_bytes_.fetch_add(batch.size(), std::memory_order_relaxed);
  } else {
    // The batch interleaved records from several transactions and none can
    // be selectively unwound: poison the log so every current and future
    // committer fails (the database above latches read-only). The durable
    // prefix on disk stays intact.
    poison_ = s;
  }
  batch.clear();
  spare_ = std::move(batch);  // park the capacity for the next epoch
  cv_.notify_all();
  return s;
}

WalStats LogManager::wal_stats() const {
  WalStats out;
  out.records_appended = records_appended_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.group_batches = group_batches_.load(std::memory_order_relaxed);
  out.group_batched_bytes =
      group_batched_bytes_.load(std::memory_order_relaxed);
  out.tail_cleanup_failures =
      tail_cleanup_failures_.load(std::memory_order_relaxed);
  return out;
}

Status LogManager::Replay(
    const std::function<Status(Lsn, const LogRecord&)>& apply,
    RecoveryReport* report) {
  // The log's logical bytes start at `base` (> 0 once segments were
  // recycled) and are contiguous through the end; frame offsets inside
  // `contents` are relative to it.
  uint64_t base = 0;
  std::string contents;
  if (store_ != nullptr) {
    base = store_->start_lsn();
    FAME_RETURN_IF_ERROR(store_->ReadSuffix(&contents));
  } else {
    auto size_or = file_->Size();
    FAME_RETURN_IF_ERROR(size_or.status());
    uint64_t fsize = size_or.value();
    contents.resize(fsize);
    if (fsize > 0) {
      Status read = RetryOnTransient(retry_, [&] {
        Slice result;
        FAME_RETURN_IF_ERROR(file_->Read(0, fsize, contents.data(), &result));
        if (result.size() != fsize) return Status::IOError("short log read");
        return Status::OK();
      });
      FAME_RETURN_IF_ERROR(read);
    }
  }
  const uint64_t size = contents.size();
  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  *rep = RecoveryReport{};
  // Frames below the retention watermark are covered by a durable
  // checkpoint: decode them (the chain must still parse) but do not
  // re-apply — the watermark is what shrinks recovery work. Legacy
  // single-file logs have no watermark (retained stays 0).
  const Lsn retained =
      store_ != nullptr ? store_->stats().retained_lsn : 0;
  uint64_t off = 0;
  LogRecord rec;
  uint64_t next = 0;
  while (DecodeWalFrame(contents.data(), off, size, &rec, &next)) {
    if (base + off >= retained) {
      FAME_RETURN_IF_ERROR(apply(base + off, rec));
      ++rep->applied_records;
    }
    off = next;
  }
  rep->recovered_lsn = base + off;
  rep->dropped_bytes = size - off;
  if (store_ != nullptr && store_->orphaned_bytes() > 0) {
    // Segments stranded past a chain break found at open: once-durable
    // records the contiguous prefix cannot reach — committed data was lost.
    rep->corruption = true;
    rep->dropped_bytes += store_->orphaned_bytes();
    rep->dropped_records += store_->orphaned_records();
  }
  if (rep->dropped_bytes == 0) return Status::OK();
  // Classify the bad region: resynchronize past it looking for intact
  // frames. Finding any means once-durable records are stranded behind
  // damage (mid-log corruption); finding none means the tail simply never
  // completed (a crash mid-append — the normal case).
  uint64_t stranded = 0;
  uint64_t scan = off + 1;
  while (scan + 6 <= size) {
    if (DecodeWalFrame(contents.data(), scan, size, &rec, &next)) {
      ++stranded;
      scan = next;
    } else {
      ++scan;
    }
  }
  if (stranded > 0) {
    rep->corruption = true;
    rep->dropped_records += stranded + 1;  // the damaged frame itself, too
  } else if (!rep->corruption) {
    rep->torn_tail = true;
  }
  return Status::OK();
}

Status LogManager::TruncateTo(Lsn lsn) {
  if (!buffer_.empty()) {
    return Status::InvalidArgument("flush or drop buffered appends first");
  }
  if (store_ != nullptr) {
    FAME_RETURN_IF_ERROR(store_->TruncateTo(lsn));
    durable_size_ = lsn;
    return Status::OK();
  }
  FAME_RETURN_IF_ERROR(
      RetryOnTransient(retry_, [&] { return file_->Truncate(lsn); }));
  FAME_RETURN_IF_ERROR(RetryOnTransient(retry_, [&] { return file_->Sync(); }));
  durable_size_ = lsn;
  return Status::OK();
}

Status LogManager::Truncate() {
  if (store_ != nullptr) {
    // Segmented logs never rewind the LSN space: "discard everything" is
    // expressed as retention — everything durable is checkpointed, so the
    // watermark advances to the head and full segments retire.
    buffer_.clear();
    FAME_OBS(buffered_records_ = 0;)
    return AdvanceRetention(durable_size_.load(std::memory_order_relaxed));
  }
  buffer_.clear();
  FAME_OBS(buffered_records_ = 0;)
  return TruncateTo(0);
}

Status LogManager::AdvanceRetention(Lsn mark) {
  if (store_ == nullptr) {
    return Status::InvalidArgument("log is not segmented");
  }
  return store_->AdvanceRetention(mark);
}

Status LogManager::ListSegments(std::vector<WalSegmentInfo>* out) const {
  if (store_ == nullptr) {
    return Status::InvalidArgument("log is not segmented");
  }
  return store_->ListSegments(out);
}

Status LogManager::VerifySegmentChain(std::vector<std::string>* issues) const {
  if (store_ == nullptr) {
    return Status::InvalidArgument("log is not segmented");
  }
  return store_->VerifyChain(issues);
}

}  // namespace fame::tx

// MVCC: the Transaction feature's optional Mvcc sub-feature — snapshot
// isolation over version-chained records. Everything version-specific
// lives in this translation unit (namespace fame::tx::mvcc) so products
// that do not select Mvcc link none of it: the transaction manager reaches
// the machinery only through the tx::MvccHooks interface (txmgr.h), the
// engines only through lazily-instantiated template members — the same
// TU-separation idiom the Backup (fame::tx::seg) and Replication
// (fame::repl) features use, enforced by cmake/CheckNoMvccSymbols.cmake.
//
// Version-chain record format (the *value* half of an engine record, after
// the [varint32 klen][key] prefix):
//
//   entry*            newest first
//   entry = [varint64 begin_ts][varint64 end_ts][u8 flags][varint32 vlen]
//           [vlen value bytes]
//
// end_ts == 0 means "open" (visible to every snapshot at or past
// begin_ts); flags bit0 marks a tombstone (a versioned delete). A reader
// at snapshot ts sees the first entry with begin_ts <= ts < end_ts
// (end_ts == 0 counting as infinity). Garbage collection prunes entries
// whose end_ts lies at or below the min-active-snapshot watermark — the
// same retention-watermark idiom the segmented WAL uses for its segments.
#ifndef FAME_TX_MVCC_H_
#define FAME_TX_MVCC_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "tx/txmgr.h"

namespace fame::tx::mvcc {

/// One decoded version-chain entry.
struct Version {
  uint64_t begin_ts = 0;
  uint64_t end_ts = 0;  ///< 0 = open (no successor yet)
  bool tombstone = false;
  Slice value;  ///< points into the chain bytes
};

// ---------------------------------------------------------------- codec

/// Appends a new head version (commit_ts, value | tombstone) to `chain`
/// (the existing chain bytes, possibly empty), closing the previous head
/// at commit_ts and dropping entries already dead below `prune_below`
/// (pass 0 to keep everything). A head already carrying commit_ts is
/// replaced instead of chained behind — ops of one transaction share its
/// commit ts, so the last op on a key wins and replay converges. Output
/// goes to *out; returns the resulting number of entries.
uint32_t AppendVersion(const Slice& chain, uint64_t commit_ts,
                       bool tombstone, const Slice& value,
                       uint64_t prune_below, std::string* out);

/// Finds the version visible at snapshot `ts`. Returns OK with *v filled,
/// NotFound when no entry is visible at ts (or the visible entry is a
/// tombstone — v->tombstone tells the caller which), Corruption on a
/// malformed chain.
Status VisibleAt(const Slice& chain, uint64_t ts, Version* v);

/// begin_ts of the newest (head) entry; 0 on an empty/corrupt chain.
/// Replay idempotence pivots on this: re-applying a version whose ts is
/// at or below the head's is a no-op.
uint64_t HeadTs(const Slice& chain);

/// Decodes every entry (newest first). Corruption on malformed bytes.
Status DecodeChain(const Slice& chain, std::vector<Version>* out);

/// Rewrites `chain` without entries dead at `watermark` (end_ts != 0 and
/// end_ts <= watermark; a head tombstone with begin_ts <= watermark dies
/// too — no snapshot can resurrect it). *pruned counts dropped entries;
/// an empty *out means the whole key is dead and the record can go.
Status PruneChain(const Slice& chain, uint64_t watermark, std::string* out,
                  uint64_t* pruned);

// ------------------------------------------------------------- manager

/// Counters the engines surface through the Observability feature.
struct MvccStats {
  uint64_t active_snapshots = 0;
  uint64_t conflicts = 0;       ///< commits refused first-committer-wins
  uint64_t gc_runs = 0;
  uint64_t gc_pruned = 0;       ///< versions dropped by GC sweeps
  uint64_t watermark = 0;       ///< min active snapshot ts at snapshot time
  uint64_t clock = 0;           ///< last assigned commit timestamp
};

/// The commit-timestamp oracle + snapshot registry + first-committer-wins
/// conflict table, shared by one engine. Thread-safe (its own mutex) so
/// disjoint-key writers never funnel through the lock manager: writers
/// skip 2PL entirely, touch this table once at commit, and group-commit
/// batches their WAL appends as before.
class MvccManager : public MvccHooks {
 public:
  MvccManager() = default;

  // MvccHooks.
  uint64_t BeginSnapshot() override;
  void ReleaseSnapshot(uint64_t ts) override;
  StatusOr<uint64_t> PrepareCommit(const std::vector<std::string>& keys,
                                   uint64_t read_ts) override;
  void FinishCommit(uint64_t commit_ts) override;
  uint64_t Watermark() const override;

  /// Auto-commit (non-transactional) write on one key: assigns a commit
  /// timestamp, records the key in the first-committer-wins table — so an
  /// MVCC transaction that read the key before this write conflicts at its
  /// own commit instead of silently overwriting — and registers the ts as
  /// in-flight until FinishCommit. Never conflicts itself: an auto-commit
  /// write is not based on a stale snapshot read.
  uint64_t PrepareAutoCommit(const std::string& key);
  /// Bare timestamp tick for recovery-time replay of legacy (ts-less) log
  /// records into a versioned engine — single-threaded, no readers, so it
  /// skips the pending registration the live write paths need.
  uint64_t AdvanceClock();
  /// Current read timestamp: the newest *fully applied* commit (in-flight
  /// commits gate it — see pending_).
  uint64_t ReadTs() const;
  /// Raw clock (last allocated commit ts) for meta persistence: chains on
  /// disk may carry in-flight stamps past ReadTs, and recovery must seed
  /// the clock at or above every persisted version.
  uint64_t Clock() const;
  /// Raises the clock to at least `ts` — recovery seeds it from the
  /// persisted checkpoint clock and the max commit ts seen in replay, so
  /// post-restart commits always stamp past every version on disk.
  void SeedClock(uint64_t ts);

  void RecordGcRun(uint64_t pruned);
  void RecordChainLen(uint64_t len);
  MvccStats stats() const;
  obs::HistogramSnapshot chain_len_histogram() const;

  /// Physical page latch for the lock-free read path. MVCC readers hold no
  /// table locks, yet a version write can compact a heap page, relocate a
  /// record, or split a B+-tree node — byte-level motion a concurrent
  /// reader could tear mid-decode. Appliers (WriteVersion, GC sweeps) hold
  /// this exclusive per mutation; snapshot readers hold it shared per
  /// *step* (one descent + heap join), never across a whole scan — so
  /// writers stall for at most one cursor step, and readers never see a
  /// page mid-surgery. Distinct from mu_ (the oracle lock): phys is always
  /// acquired first when both are needed, never the other way around.
  std::shared_mutex& PhysLatch() const { return phys_mu_; }

 private:
  mutable std::shared_mutex phys_mu_;
  mutable std::mutex mu_;
  uint64_t clock_ = 0;
  /// Commit timestamps allocated (PrepareCommit / PrepareAutoCommit) but
  /// not yet fully applied to the engine (FinishCommit). Snapshots form
  /// strictly below the smallest pending ts: a snapshot at or past an
  /// unapplied commit would miss its version now and find it later — a
  /// non-repeatable read within one snapshot.
  std::set<uint64_t> pending_;
  /// Active snapshot timestamps with refcounts (several readers may share
  /// one ts when no commit happened between their Begins).
  std::map<uint64_t, uint32_t> snapshots_;
  /// key -> last commit ts, for first-committer-wins. Entries at or below
  /// the watermark cannot conflict with any live snapshot and are shed
  /// opportunistically to bound memory.
  std::unordered_map<std::string, uint64_t> last_commit_;
  uint64_t conflicts_ = 0;
  uint64_t gc_runs_ = 0;
  uint64_t gc_pruned_ = 0;
  obs::BasicHistogram<obs::SharedCells> chain_len_;

  uint64_t WatermarkLocked() const;
  uint64_t VisibleTsLocked() const;
  void ShedLastCommitLocked(size_t write_set);
};

}  // namespace fame::tx::mvcc

#endif  // FAME_TX_MVCC_H_

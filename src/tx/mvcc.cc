#include "tx/mvcc.h"

#include <algorithm>

#include "common/coding.h"

namespace fame::tx::mvcc {

namespace {

constexpr uint8_t kTombstoneFlag = 0x01;

// Decodes one entry at *p (within [p, limit)), advancing *p past it.
// Returns false on malformed bytes.
bool DecodeEntry(const char** p, const char* limit, Version* v) {
  uint64_t begin = 0, end = 0;
  const char* q = GetVarint64Ptr(*p, limit, &begin);
  if (q == nullptr) return false;
  q = GetVarint64Ptr(q, limit, &end);
  if (q == nullptr || q >= limit) return false;
  uint8_t flags = static_cast<uint8_t>(*q++);
  uint32_t vlen = 0;
  q = GetVarint32Ptr(q, limit, &vlen);
  if (q == nullptr || static_cast<size_t>(limit - q) < vlen) return false;
  v->begin_ts = begin;
  v->end_ts = end;
  v->tombstone = (flags & kTombstoneFlag) != 0;
  v->value = Slice(q, vlen);
  *p = q + vlen;
  return true;
}

void AppendEntry(std::string* out, const Version& v) {
  PutVarint64(out, v.begin_ts);
  PutVarint64(out, v.end_ts);
  out->push_back(static_cast<char>(v.tombstone ? kTombstoneFlag : 0));
  PutVarint32(out, static_cast<uint32_t>(v.value.size()));
  out->append(v.value.data(), v.value.size());
}

// An entry is dead at `watermark` when some version fully supersedes it for
// every snapshot that can still exist: it was closed at or before the
// watermark.
bool DeadAt(const Version& v, uint64_t watermark) {
  return v.end_ts != 0 && v.end_ts <= watermark;
}

}  // namespace

uint32_t AppendVersion(const Slice& chain, uint64_t commit_ts, bool tombstone,
                       const Slice& value, uint64_t prune_below,
                       std::string* out) {
  out->clear();
  Version head;
  head.begin_ts = commit_ts;
  head.tombstone = tombstone;
  head.value = value;
  AppendEntry(out, head);
  uint32_t count = 1;

  const char* p = chain.data();
  const char* limit = p + chain.size();
  bool first = true;
  while (p < limit) {
    Version v;
    if (!DecodeEntry(&p, limit, &v)) break;  // drop a corrupt tail
    if (first) {
      first = false;
      // A head carrying the same timestamp is *replaced*, not chained
      // behind: a transaction's ops on one key all commit at one ts, so
      // the last op wins — and replaying the same op sequence converges
      // on the same chain. Its predecessor's end_ts is already commit_ts.
      if (v.begin_ts == commit_ts) continue;
      // The previous head is superseded by the new version.
      if (v.end_ts == 0) v.end_ts = commit_ts;
    }
    if (prune_below != 0 && DeadAt(v, prune_below)) continue;
    AppendEntry(out, v);
    ++count;
  }
  return count;
}

Status VisibleAt(const Slice& chain, uint64_t ts, Version* v) {
  const char* p = chain.data();
  const char* limit = p + chain.size();
  while (p < limit) {
    Version cur;
    if (!DecodeEntry(&p, limit, &cur)) {
      return Status::Corruption("malformed mvcc version chain");
    }
    if (cur.begin_ts <= ts && (cur.end_ts == 0 || ts < cur.end_ts)) {
      *v = cur;
      if (cur.tombstone) return Status::NotFound("tombstone at snapshot");
      return Status::OK();
    }
  }
  v->tombstone = false;
  return Status::NotFound("no version visible at snapshot");
}

uint64_t HeadTs(const Slice& chain) {
  const char* p = chain.data();
  Version v;
  if (!DecodeEntry(&p, chain.data() + chain.size(), &v)) return 0;
  return v.begin_ts;
}

Status DecodeChain(const Slice& chain, std::vector<Version>* out) {
  out->clear();
  const char* p = chain.data();
  const char* limit = p + chain.size();
  while (p < limit) {
    Version v;
    if (!DecodeEntry(&p, limit, &v)) {
      return Status::Corruption("malformed mvcc version chain");
    }
    out->push_back(v);
  }
  return Status::OK();
}

Status PruneChain(const Slice& chain, uint64_t watermark, std::string* out,
                  uint64_t* pruned) {
  out->clear();
  *pruned = 0;
  std::vector<Version> versions;
  FAME_RETURN_IF_ERROR(DecodeChain(chain, &versions));
  for (size_t i = 0; i < versions.size(); ++i) {
    const Version& v = versions[i];
    // A head tombstone at or below the watermark dies too: every snapshot
    // that could still read past it has been released, so the whole key
    // can disappear from the heap.
    bool dead = DeadAt(v, watermark) ||
                (i == 0 && v.tombstone && v.begin_ts <= watermark);
    if (dead) {
      ++*pruned;
      continue;
    }
    AppendEntry(out, v);
  }
  return Status::OK();
}

uint64_t MvccManager::BeginSnapshot() {
  std::lock_guard<std::mutex> l(mu_);
  const uint64_t ts = VisibleTsLocked();
  ++snapshots_[ts];
  return ts;
}

void MvccManager::ReleaseSnapshot(uint64_t ts) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = snapshots_.find(ts);
  if (it == snapshots_.end()) return;
  if (--it->second == 0) snapshots_.erase(it);
}

StatusOr<uint64_t> MvccManager::PrepareCommit(
    const std::vector<std::string>& keys, uint64_t read_ts) {
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& key : keys) {
    auto it = last_commit_.find(key);
    if (it != last_commit_.end() && it->second > read_ts) {
      ++conflicts_;
      return Status::Busy("write-write conflict: key committed after snapshot");
    }
  }
  const uint64_t commit_ts = ++clock_;
  // In flight until FinishCommit: no snapshot forms at or past commit_ts
  // while its version is not yet in the engine.
  pending_.insert(commit_ts);
  for (const auto& key : keys) last_commit_[key] = commit_ts;
  ShedLastCommitLocked(keys.size());
  return commit_ts;
}

void MvccManager::FinishCommit(uint64_t commit_ts) {
  std::lock_guard<std::mutex> l(mu_);
  pending_.erase(commit_ts);
}

uint64_t MvccManager::PrepareAutoCommit(const std::string& key) {
  std::lock_guard<std::mutex> l(mu_);
  const uint64_t commit_ts = ++clock_;
  pending_.insert(commit_ts);
  last_commit_[key] = commit_ts;
  ShedLastCommitLocked(1);
  return commit_ts;
}

void MvccManager::ShedLastCommitLocked(size_t write_set) {
  // Shed entries no live snapshot can conflict with; bounds the table
  // without a background thread. (Cheap: proportional to table size, run
  // only when it has grown past the write set.) Safe because every
  // conflict check's read_ts is a registered snapshot, and the watermark
  // never passes a registered snapshot: a shed entry could not have
  // triggered a conflict anyway.
  if (last_commit_.size() <= write_set * 4 + 64) return;
  const uint64_t mark = WatermarkLocked();
  for (auto it = last_commit_.begin(); it != last_commit_.end();) {
    if (it->second <= mark) {
      it = last_commit_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t MvccManager::Watermark() const {
  std::lock_guard<std::mutex> l(mu_);
  return WatermarkLocked();
}

uint64_t MvccManager::WatermarkLocked() const {
  // No active snapshot: everything *visible* so far is reclaimable. The
  // visible ts (not the raw clock) is the ceiling either way — an
  // in-flight commit's predecessor version must survive until readers can
  // see its successor.
  const uint64_t visible = VisibleTsLocked();
  if (snapshots_.empty()) return visible;
  return std::min(snapshots_.begin()->first, visible);
}

uint64_t MvccManager::VisibleTsLocked() const {
  // Visibility gates on *applied* commits, not allocated timestamps: a ts
  // sits in pending_ from PrepareCommit until FinishCommit (engine apply
  // done), and snapshots stay strictly below the oldest such ts.
  return pending_.empty() ? clock_ : *pending_.begin() - 1;
}

uint64_t MvccManager::AdvanceClock() {
  std::lock_guard<std::mutex> l(mu_);
  return ++clock_;
}

uint64_t MvccManager::ReadTs() const {
  std::lock_guard<std::mutex> l(mu_);
  return VisibleTsLocked();
}

uint64_t MvccManager::Clock() const {
  std::lock_guard<std::mutex> l(mu_);
  return clock_;
}

void MvccManager::SeedClock(uint64_t ts) {
  std::lock_guard<std::mutex> l(mu_);
  clock_ = std::max(clock_, ts);
}

void MvccManager::RecordGcRun(uint64_t pruned) {
  std::lock_guard<std::mutex> l(mu_);
  ++gc_runs_;
  gc_pruned_ += pruned;
}

void MvccManager::RecordChainLen(uint64_t len) { chain_len_.Record(len); }

MvccStats MvccManager::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  MvccStats s;
  s.active_snapshots = snapshots_.size();
  s.conflicts = conflicts_;
  s.gc_runs = gc_runs_;
  s.gc_pruned = gc_pruned_;
  s.watermark = WatermarkLocked();
  s.clock = clock_;
  return s;
}

obs::HistogramSnapshot MvccManager::chain_len_histogram() const {
  return chain_len_.Snapshot();
}

}  // namespace fame::tx::mvcc

// REPLICATION feature: in-process log-shipping bus.
//
// Substitution note (see DESIGN.md): Berkeley DB replicates over sockets to
// peer processes; the feature Figure 1 measures is the replication machinery
// itself. The bus delivers committed operations from a master engine to any
// number of subscribed replicas inside one process, preserving ordering —
// the same code path shape (serialize op -> deliver -> apply) without a
// network dependency. The FAME-DBMS product line's own replication axis is
// the WAL-shipping subsystem in src/repl/ (epoch-fenced leader/follower over
// the segmented log); this bus remains the Berkeley DB-comparison shim.
#ifndef FAME_BDB_REPBUS_H_
#define FAME_BDB_REPBUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace fame::bdb {

/// One replicated operation.
struct RepMessage {
  enum Kind : uint8_t { kPut = 0, kDelete = 1 } kind;
  uint64_t seqno = 0;
  std::string key;
  std::string value;
};

/// Fan-out bus: the master publishes, replicas subscribe. Delivery is
/// synchronous and in publish order (total order, single master).
class ReplicationBus {
 public:
  using Subscriber = std::function<Status(const RepMessage&)>;

  /// Registers a replica; returns its subscriber id. The replica's expected
  /// seqno starts at the current publish counter: it is only owed messages
  /// published after it joined.
  size_t Subscribe(Subscriber subscriber);

  /// Publishes to all subscribers; fails fast on the first delivery error.
  /// A subscriber that previously missed a message (an earlier Publish
  /// failed before reaching it, so the seqno advanced past it) is detected
  /// here: Publish returns DataLoss instead of silently delivering a stream
  /// with a gap to that replica.
  Status Publish(RepMessage message);

  uint64_t published() const { return next_seqno_; }
  size_t subscribers() const { return subscribers_.size(); }

 private:
  struct Subscription {
    Subscriber deliver;
    uint64_t expected;  ///< next seqno this replica must see
  };
  std::vector<Subscription> subscribers_;
  uint64_t next_seqno_ = 0;
};

}  // namespace fame::bdb

#endif  // FAME_BDB_REPBUS_H_

// REPLICATION feature: in-process log-shipping bus.
//
// Substitution note (see DESIGN.md): Berkeley DB replicates over sockets to
// peer processes; the feature Figure 1 measures is the replication machinery
// itself. The bus delivers committed operations from a master engine to any
// number of subscribed replicas inside one process, preserving ordering —
// the same code path shape (serialize op -> deliver -> apply) without a
// network dependency.
#ifndef FAME_BDB_REPBUS_H_
#define FAME_BDB_REPBUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace fame::bdb {

/// One replicated operation.
struct RepMessage {
  enum Kind : uint8_t { kPut = 0, kDelete = 1 } kind;
  uint64_t seqno = 0;
  std::string key;
  std::string value;
};

/// Fan-out bus: the master publishes, replicas subscribe. Delivery is
/// synchronous and in publish order (total order, single master).
class ReplicationBus {
 public:
  using Subscriber = std::function<Status(const RepMessage&)>;

  /// Registers a replica; returns its subscriber id.
  size_t Subscribe(Subscriber subscriber);

  /// Publishes to all subscribers; fails fast on the first delivery error.
  Status Publish(RepMessage message);

  uint64_t published() const { return next_seqno_; }
  size_t subscribers() const { return subscribers_.size(); }

 private:
  std::vector<Subscriber> subscribers_;
  uint64_t next_seqno_ = 0;
};

}  // namespace fame::bdb

#endif  // FAME_BDB_REPBUS_H_

#include "bdb/c_style.h"

namespace fame::bdb {

StatusOr<std::unique_ptr<FameBdbC>> FameBdbC::Open(osal::Env* env,
                                                   const std::string& path,
                                                   const Options& options) {
  std::unique_ptr<FameBdbC> db(new FameBdbC());
  db->options_ = options;

#if !defined(FAMEBDB_HAVE_HASH)
  if (options.access_method & DB_HASH) {
    return Status::NotSupported("hash access method not compiled in");
  }
#endif
#if !defined(FAMEBDB_HAVE_QUEUE)
  if (options.access_method & DB_QUEUE) {
    return Status::NotSupported("queue access method not compiled in");
  }
#endif
#if !defined(FAMEBDB_HAVE_CRYPTO)
  if (options.env_flags & DB_ENCRYPT) {
    return Status::NotSupported("crypto not compiled in");
  }
#endif
#if !defined(FAMEBDB_HAVE_REPLICATION)
  if (options.env_flags & DB_INIT_REP) {
    return Status::NotSupported("replication not compiled in");
  }
#endif
#if !defined(FAMEBDB_HAVE_TRANSACTIONS)
  if (options.env_flags & DB_INIT_TXN) {
    return Status::NotSupported("transactions not compiled in");
  }
#endif

  auto bundle_or = StorageBundle::Open(env, path, options.bundle);
  FAME_RETURN_IF_ERROR(bundle_or.status());
  db->bundle_ = std::move(bundle_or).value();

  // The B-tree is always available; the runtime switch below is the
  // C-style dispatch overhead the FOP variant composes away.
  auto btree_or = index::BPlusTree::Open(db->bundle_->buffers.get(), "main");
  FAME_RETURN_IF_ERROR(btree_or.status());
  db->btree_ = std::move(btree_or).value();

#if defined(FAMEBDB_HAVE_HASH)
  if (options.access_method & DB_HASH) {
    auto hash_or = index::HashIndex::Open(db->bundle_->buffers.get(), "main_h");
    FAME_RETURN_IF_ERROR(hash_or.status());
    db->hash_ = std::move(hash_or).value();
  }
#endif
#if defined(FAMEBDB_HAVE_QUEUE)
  if (options.access_method & DB_QUEUE) {
    auto q_or = index::QueueAM::Open(db->bundle_->buffers.get(), "main_q",
                                     options.queue_record_size);
    FAME_RETURN_IF_ERROR(q_or.status());
    db->queue_ = std::move(q_or).value();
  }
#endif
#if defined(FAMEBDB_HAVE_CRYPTO)
  if (options.env_flags & DB_ENCRYPT) {
    db->cipher_ = std::make_unique<ValueCipher>(options.passphrase);
  }
#endif
#if defined(FAMEBDB_HAVE_TRANSACTIONS)
  if (options.env_flags & DB_INIT_TXN) {
    auto mgr_or = tx::TransactionManager::Open(
        env, path + ".wal", db.get(), tx::CommitProtocol::kWalRedo);
    FAME_RETURN_IF_ERROR(mgr_or.status());
    db->txmgr_ = std::move(mgr_or).value();
    FAME_RETURN_IF_ERROR(db->txmgr_->Recover());
  }
#endif
  return db;
}

index::KeyValueIndex* FameBdbC::index() {
#if defined(FAMEBDB_HAVE_HASH)
  if (options_.access_method & DB_HASH) return hash_.get();
#endif
  return btree_.get();
}

Status FameBdbC::EncodeValue(const Slice& value, std::string* stored) {
#if defined(FAMEBDB_HAVE_CRYPTO)
  if (cipher_ != nullptr) {
    *stored = cipher_->Encrypt(value);
    return Status::OK();
  }
#endif
  stored->assign(value.data(), value.size());
  return Status::OK();
}

Status FameBdbC::DecodeValue(const Slice& stored, std::string* value) {
#if defined(FAMEBDB_HAVE_CRYPTO)
  if (cipher_ != nullptr) {
    auto plain_or = cipher_->Decrypt(stored);
    FAME_RETURN_IF_ERROR(plain_or.status());
    *value = std::move(plain_or).value();
    return Status::OK();
  }
#endif
  value->assign(stored.data(), stored.size());
  return Status::OK();
}

Status FameBdbC::PutInternal(const Slice& key, const Slice& value,
                             bool replicate) {
  std::string stored;
  FAME_RETURN_IF_ERROR(EncodeValue(value, &stored));
  // Upsert: replace the heap record if the key exists, else insert.
  uint64_t packed = 0;
  Status found = index()->Lookup(key, &packed);
  std::string rec = EncodeHeapRecord(key, stored);
  if (found.ok()) {
    storage::Rid rid = storage::Rid::Unpack(packed);
    storage::Rid updated = rid;
    FAME_RETURN_IF_ERROR(bundle_->heap->Update(&updated, rec));
    if (!(updated == rid)) {
      FAME_RETURN_IF_ERROR(index()->Insert(key, updated.Pack()));
    }
  } else if (found.IsNotFound()) {
    auto rid_or = bundle_->heap->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    FAME_RETURN_IF_ERROR(index()->Insert(key, rid_or.value().Pack()));
  } else {
    return found;
  }
#if defined(FAMEBDB_HAVE_REPLICATION)
  if (replicate && (options_.env_flags & DB_INIT_REP)) {
    RepMessage msg;
    msg.kind = RepMessage::kPut;
    msg.key = key.ToString();
    msg.value = value.ToString();
    FAME_RETURN_IF_ERROR(rep_bus_.Publish(std::move(msg)));
  }
#else
  (void)replicate;
#endif
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.puts;
#endif
  return Status::OK();
}

Status FameBdbC::DelInternal(const Slice& key, bool replicate) {
  uint64_t packed = 0;
  FAME_RETURN_IF_ERROR(index()->Lookup(key, &packed));
  FAME_RETURN_IF_ERROR(bundle_->heap->Delete(storage::Rid::Unpack(packed)));
  FAME_RETURN_IF_ERROR(index()->Remove(key));
#if defined(FAMEBDB_HAVE_REPLICATION)
  if (replicate && (options_.env_flags & DB_INIT_REP)) {
    RepMessage msg;
    msg.kind = RepMessage::kDelete;
    msg.key = key.ToString();
    FAME_RETURN_IF_ERROR(rep_bus_.Publish(std::move(msg)));
  }
#else
  (void)replicate;
#endif
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.dels;
#endif
  return Status::OK();
}

Status FameBdbC::put(const Slice& key, const Slice& value) {
  if (options_.access_method & DB_QUEUE) {
    return Status::NotSupported("use enqueue on queue databases");
  }
  return PutInternal(key, value, /*replicate=*/true);
}

Status FameBdbC::get(const Slice& key, std::string* value) {
  if (options_.access_method & DB_QUEUE) {
    return Status::NotSupported("use dequeue on queue databases");
  }
  uint64_t packed = 0;
  FAME_RETURN_IF_ERROR(index()->Lookup(key, &packed));
  std::string rec;
  FAME_RETURN_IF_ERROR(bundle_->heap->Get(storage::Rid::Unpack(packed), &rec));
  std::string stored_key, stored_value;
  FAME_RETURN_IF_ERROR(DecodeHeapRecord(rec, &stored_key, &stored_value));
  if (Slice(stored_key) != key) {
    return Status::Corruption("index points at the wrong record");
  }
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.gets;
#endif
  return DecodeValue(stored_value, value);
}

Status FameBdbC::del(const Slice& key) {
  return DelInternal(key, /*replicate=*/true);
}

Status FameBdbC::update(const Slice& key, const Slice& value) {
  uint64_t packed = 0;
  FAME_RETURN_IF_ERROR(index()->Lookup(key, &packed));  // must exist
  return PutInternal(key, value, /*replicate=*/true);
}

Status FameBdbC::range_scan(
    const Slice& lo, const Slice& hi,
    const std::function<bool(const Slice&, const Slice&)>& fn) {
  if (!(options_.access_method & DB_BTREE)) {
    return Status::NotSupported("range scans need the btree access method");
  }
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.scans;
#endif
  Status inner = Status::OK();
  FAME_RETURN_IF_ERROR(btree_->RangeScan(
      lo, hi, [&](const Slice& key, uint64_t packed) {
        std::string rec;
        inner = bundle_->heap->Get(storage::Rid::Unpack(packed), &rec);
        if (!inner.ok()) return false;
        std::string k, stored;
        inner = DecodeHeapRecord(rec, &k, &stored);
        if (!inner.ok()) return false;
        std::string value;
        inner = DecodeValue(stored, &value);
        if (!inner.ok()) return false;
        return fn(key, Slice(value));
      }));
  return inner;
}

Status FameBdbC::cursor(
    const std::function<bool(const Slice&, const Slice&)>& fn) {
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.scans;
#endif
  Status inner = Status::OK();
  FAME_RETURN_IF_ERROR(
      index()->Scan([&](const Slice& key, uint64_t packed) {
        std::string rec;
        inner = bundle_->heap->Get(storage::Rid::Unpack(packed), &rec);
        if (!inner.ok()) return false;
        std::string k, stored;
        inner = DecodeHeapRecord(rec, &k, &stored);
        if (!inner.ok()) return false;
        std::string value;
        inner = DecodeValue(stored, &value);
        if (!inner.ok()) return false;
        return fn(key, Slice(value));
      }));
  return inner;
}

StatusOr<uint64_t> FameBdbC::enqueue(const Slice& record) {
#if defined(FAMEBDB_HAVE_QUEUE)
  if (queue_ == nullptr) {
    return Status::NotSupported("not a queue database");
  }
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.puts;
#endif
  return queue_->Enqueue(record);
#else
  (void)record;
  return Status::NotSupported("queue access method not compiled in");
#endif
}

Status FameBdbC::dequeue(std::string* record) {
#if defined(FAMEBDB_HAVE_QUEUE)
  if (queue_ == nullptr) {
    return Status::NotSupported("not a queue database");
  }
#if defined(FAMEBDB_HAVE_STATISTICS)
  ++stats_.gets;
#endif
  return queue_->Dequeue(record);
#else
  (void)record;
  return Status::NotSupported("queue access method not compiled in");
#endif
}

// ------------------------------------------------------------ transactions

#if defined(FAMEBDB_HAVE_TRANSACTIONS)

StatusOr<uint64_t> FameBdbC::txn_begin() {
  if (txmgr_ == nullptr) {
    return Status::NotSupported("environment opened without DB_INIT_TXN");
  }
  auto txn_or = txmgr_->Begin();
  FAME_RETURN_IF_ERROR(txn_or.status());
  open_txns_[txn_or.value()->id()] = txn_or.value();
  return txn_or.value()->id();
}

Status FameBdbC::txn_put(uint64_t txn, const Slice& key, const Slice& value) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::InvalidArgument("unknown txn");
  return it->second->Put("main", key, value);
}

Status FameBdbC::txn_get(uint64_t txn, const Slice& key, std::string* value) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::InvalidArgument("unknown txn");
  return it->second->Get("main", key, value);
}

Status FameBdbC::txn_del(uint64_t txn, const Slice& key) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::InvalidArgument("unknown txn");
  return it->second->Delete("main", key);
}

Status FameBdbC::txn_commit(uint64_t txn) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::InvalidArgument("unknown txn");
  Status s = txmgr_->Commit(it->second);
  open_txns_.erase(it);
#if defined(FAMEBDB_HAVE_STATISTICS)
  if (s.ok()) ++stats_.txns_committed;
#endif
  return s;
}

Status FameBdbC::txn_abort(uint64_t txn) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::InvalidArgument("unknown txn");
  Status s = txmgr_->Abort(it->second);
  open_txns_.erase(it);
  return s;
}

Status FameBdbC::txn_checkpoint() {
  if (txmgr_ == nullptr) {
    return Status::NotSupported("environment opened without DB_INIT_TXN");
  }
  return txmgr_->Checkpoint();
}

Status FameBdbC::ApplyPut(const std::string& store, const Slice& key,
                          const Slice& value) {
  if (store != "main") return Status::InvalidArgument("unknown store");
  return PutInternal(key, value, /*replicate=*/true);
}

Status FameBdbC::ApplyDelete(const std::string& store, const Slice& key) {
  if (store != "main") return Status::InvalidArgument("unknown store");
  return DelInternal(key, /*replicate=*/true);
}

Status FameBdbC::ReadCommitted(const std::string& store, const Slice& key,
                               std::string* value) {
  if (store != "main") return Status::InvalidArgument("unknown store");
  return get(key, value);
}

Status FameBdbC::CheckpointEngine() { return bundle_->Checkpoint(); }

#else  // !FAMEBDB_HAVE_TRANSACTIONS

StatusOr<uint64_t> FameBdbC::txn_begin() {
  return Status::NotSupported("transactions not compiled in");
}
Status FameBdbC::txn_put(uint64_t, const Slice&, const Slice&) {
  return Status::NotSupported("transactions not compiled in");
}
Status FameBdbC::txn_get(uint64_t, const Slice&, std::string*) {
  return Status::NotSupported("transactions not compiled in");
}
Status FameBdbC::txn_del(uint64_t, const Slice&) {
  return Status::NotSupported("transactions not compiled in");
}
Status FameBdbC::txn_commit(uint64_t) {
  return Status::NotSupported("transactions not compiled in");
}
Status FameBdbC::txn_abort(uint64_t) {
  return Status::NotSupported("transactions not compiled in");
}
Status FameBdbC::txn_checkpoint() {
  return Status::NotSupported("transactions not compiled in");
}

#endif  // FAMEBDB_HAVE_TRANSACTIONS

// ------------------------------------------------------------ replication

Status FameBdbC::rep_subscribe(FameBdbC* replica) {
#if defined(FAMEBDB_HAVE_REPLICATION)
  if (!(options_.env_flags & DB_INIT_REP)) {
    return Status::NotSupported("environment opened without DB_INIT_REP");
  }
  rep_bus_.Subscribe([replica](const RepMessage& msg) -> Status {
    if (msg.kind == RepMessage::kPut) {
      return replica->PutInternal(msg.key, msg.value, /*replicate=*/false);
    }
    Status s = replica->DelInternal(msg.key, /*replicate=*/false);
    return s.IsNotFound() ? Status::OK() : s;
  });
  return Status::OK();
#else
  (void)replica;
  return Status::NotSupported("replication not compiled in");
#endif
}

// ------------------------------------------------------------ maintenance

BdbStats FameBdbC::stat() const {
#if defined(FAMEBDB_HAVE_STATISTICS)
  return stats_;
#else
  return BdbStats{};
#endif
}

Status FameBdbC::sync() { return bundle_->Checkpoint(); }

Status FameBdbC::verify() {
  FAME_RETURN_IF_ERROR(btree_->CheckInvariants());
  // Every index entry must resolve to a heap record bearing the same key.
  Status inner = Status::OK();
  FAME_RETURN_IF_ERROR(
      index()->Scan([&](const Slice& key, uint64_t packed) {
        std::string rec;
        inner = bundle_->heap->Get(storage::Rid::Unpack(packed), &rec);
        if (!inner.ok()) return false;
        std::string k, v;
        inner = DecodeHeapRecord(rec, &k, &v);
        if (!inner.ok()) return false;
        if (Slice(k) != key) {
          inner = Status::Corruption("index/heap key mismatch");
          return false;
        }
        return true;
      }));
  return inner;
}

}  // namespace fame::bdb

#include "bdb/crypto.h"

#include <cstring>

#include "common/coding.h"

namespace fame::bdb {

namespace {
constexpr uint32_t kDelta = 0x9e3779b9u;
constexpr int kRounds = 64;
}  // namespace

void XteaEncryptBlock(const uint32_t key[4], uint32_t block[2]) {
  uint32_t v0 = block[0], v1 = block[1], sum = 0;
  for (int i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  block[0] = v0;
  block[1] = v1;
}

void XteaDecryptBlock(const uint32_t key[4], uint32_t block[2]) {
  uint32_t v0 = block[0], v1 = block[1];
  uint32_t sum = static_cast<uint32_t>(kDelta * kRounds);
  for (int i = 0; i < kRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
  }
  block[0] = v0;
  block[1] = v1;
}

ValueCipher::ValueCipher(const std::string& passphrase) {
  // Key derivation: four lanes of iterated FNV-1a over the passphrase with
  // distinct seeds. Fine for feature parity, not for real security.
  for (int lane = 0; lane < 4; ++lane) {
    uint32_t h = 2166136261u ^ (0x5bd1e995u * static_cast<uint32_t>(lane + 1));
    for (int iter = 0; iter < 16; ++iter) {
      for (unsigned char c : passphrase) {
        h ^= c;
        h *= 16777619u;
      }
      h ^= h >> 13;
    }
    key_[static_cast<size_t>(lane)] = h;
  }
  iv_counter_ = (static_cast<uint64_t>(key_[0]) << 32) | key_[1];
}

std::string ValueCipher::Encrypt(const Slice& plaintext) {
  // Pad to a multiple of 8 with PKCS#7-style bytes (pad length 1..8).
  size_t pad = 8 - (plaintext.size() % 8);
  std::string padded(plaintext.data(), plaintext.size());
  padded.append(pad, static_cast<char>(pad));

  uint64_t iv = iv_counter_++;
  std::string out;
  out.reserve(8 + padded.size());
  PutFixed64(&out, iv);

  uint32_t prev[2] = {static_cast<uint32_t>(iv),
                      static_cast<uint32_t>(iv >> 32)};
  for (size_t off = 0; off < padded.size(); off += 8) {
    uint32_t block[2];
    std::memcpy(block, padded.data() + off, 8);
    block[0] ^= prev[0];
    block[1] ^= prev[1];
    XteaEncryptBlock(key_.data(), block);
    prev[0] = block[0];
    prev[1] = block[1];
    char enc[8];
    std::memcpy(enc, block, 8);
    out.append(enc, 8);
  }
  return out;
}

StatusOr<std::string> ValueCipher::Decrypt(const Slice& ciphertext) const {
  if (ciphertext.size() < 16 || (ciphertext.size() - 8) % 8 != 0) {
    return Status::Corruption("ciphertext framing invalid");
  }
  uint64_t iv = DecodeFixed64(ciphertext.data());
  uint32_t prev[2] = {static_cast<uint32_t>(iv),
                      static_cast<uint32_t>(iv >> 32)};
  std::string padded;
  padded.resize(ciphertext.size() - 8);
  for (size_t off = 8; off < ciphertext.size(); off += 8) {
    uint32_t block[2], saved[2];
    std::memcpy(block, ciphertext.data() + off, 8);
    saved[0] = block[0];
    saved[1] = block[1];
    XteaDecryptBlock(key_.data(), block);
    block[0] ^= prev[0];
    block[1] ^= prev[1];
    prev[0] = saved[0];
    prev[1] = saved[1];
    std::memcpy(padded.data() + off - 8, block, 8);
  }
  unsigned char pad = static_cast<unsigned char>(padded.back());
  if (pad == 0 || pad > 8 || pad > padded.size()) {
    return Status::Corruption("bad padding (wrong key?)");
  }
  for (size_t i = padded.size() - pad; i < padded.size(); ++i) {
    if (static_cast<unsigned char>(padded[i]) != pad) {
      return Status::Corruption("bad padding (wrong key?)");
    }
  }
  padded.resize(padded.size() - pad);
  return padded;
}

}  // namespace fame::bdb

// FameBDB public flag constants, mirroring the Berkeley DB API style the
// paper's case study (and its static analyzer example) relies on: clients
// signal feature needs through flag combinations at open time, e.g.
// DB_INIT_TXN on the environment — exactly the signal the Figure 3 tool
// detects.
#ifndef FAME_BDB_FLAGS_H_
#define FAME_BDB_FLAGS_H_

#include <cstdint>

namespace fame::bdb {

// Environment-open flags.
constexpr uint32_t DB_CREATE = 1u << 0;
constexpr uint32_t DB_INIT_TXN = 1u << 1;
constexpr uint32_t DB_INIT_LOCK = 1u << 2;
constexpr uint32_t DB_INIT_LOG = 1u << 3;
constexpr uint32_t DB_INIT_REP = 1u << 4;
constexpr uint32_t DB_ENCRYPT = 1u << 5;
constexpr uint32_t DB_RDONLY = 1u << 6;

/// Access method selectors (Db::open).
constexpr uint32_t DB_BTREE = 1u << 8;
constexpr uint32_t DB_HASH = 1u << 9;
constexpr uint32_t DB_QUEUE = 1u << 10;

/// Stable names for diagnostics.
inline const char* AccessMethodName(uint32_t am_flag) {
  if (am_flag & DB_BTREE) return "btree";
  if (am_flag & DB_HASH) return "hash";
  if (am_flag & DB_QUEUE) return "queue";
  return "unknown";
}

}  // namespace fame::bdb

#endif  // FAME_BDB_FLAGS_H_

// The FameBDB-FOP product table for Figure 1. Configuration numbering
// follows the paper:
//
//   1  complete configuration
//   2  without feature Crypto
//   3  without feature Hash
//   4  without feature Replication
//   5  without feature Queue
//   7  minimal FeatureC++ version using the B-tree
//   8  minimal FeatureC++ version using a different index (List)
//
// (6 is the minimal *C* version; it has no FOP counterpart in the figure.)
// Each alias instantiates exactly the selected mixin layers, so the
// configurations genuinely differ in generated code.
#ifndef FAME_BDB_FOP_PRODUCTS_H_
#define FAME_BDB_FOP_PRODUCTS_H_

#include "bdb/fop/hash_store.h"
#include "bdb/fop/layers.h"

namespace fame::bdb::fop {

// clang-format off
using FopComplete =            // configuration 1
    TxLayer<ReplicationLayer<CryptoLayer<QueueLayer<HashStoreLayer<
        StatsLayer<BdbCore<BtreeIndexTag>>>>>>>;

using FopNoCrypto =            // configuration 2
    TxLayer<ReplicationLayer<QueueLayer<HashStoreLayer<
        StatsLayer<BdbCore<BtreeIndexTag>>>>>>;

using FopNoHash =              // configuration 3
    TxLayer<ReplicationLayer<CryptoLayer<QueueLayer<
        StatsLayer<BdbCore<BtreeIndexTag>>>>>>;

using FopNoReplication =       // configuration 4
    TxLayer<CryptoLayer<QueueLayer<HashStoreLayer<
        StatsLayer<BdbCore<BtreeIndexTag>>>>>>;

using FopNoQueue =             // configuration 5
    TxLayer<ReplicationLayer<CryptoLayer<HashStoreLayer<
        StatsLayer<BdbCore<BtreeIndexTag>>>>>>;

using FopMinimalBtree = BdbCore<BtreeIndexTag>;   // configuration 7
using FopMinimalList  = BdbCore<ListIndexTag>;    // configuration 8
// clang-format on

}  // namespace fame::bdb::fop

#endif  // FAME_BDB_FOP_PRODUCTS_H_

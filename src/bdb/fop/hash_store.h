// HASH feature for the FOP variant: a secondary hash-indexed store next to
// the main index (Berkeley DB environments host several access methods side
// by side; "without feature Hash" in Figure 1 removes this capability).
#ifndef FAME_BDB_FOP_HASH_STORE_H_
#define FAME_BDB_FOP_HASH_STORE_H_

#include "bdb/fop/core.h"
#include "index/hash_index.h"

namespace fame::bdb::fop {

template <typename Base>
class HashStoreLayer : public Base {
 public:
  Status EnableHashStore(uint32_t buckets = 64) {
    auto heap_or =
        storage::RecordManager::Open(this->bundle()->buffers.get(), "values_h");
    FAME_RETURN_IF_ERROR(heap_or.status());
    heap_ = std::move(heap_or).value();
    auto idx_or =
        index::HashIndex::Open(this->bundle()->buffers.get(), "aux", buckets);
    FAME_RETURN_IF_ERROR(idx_or.status());
    hash_ = std::move(idx_or).value();
    return Status::OK();
  }

  Status HashPut(const Slice& key, const Slice& value) {
    if (hash_ == nullptr) return Status::InvalidArgument("hash not enabled");
    uint64_t packed = 0;
    Status found = hash_->Lookup(key, &packed);
    std::string rec = EncodeHeapRecord(key, value);
    if (found.ok()) {
      storage::Rid rid = storage::Rid::Unpack(packed);
      storage::Rid updated = rid;
      FAME_RETURN_IF_ERROR(heap_->Update(&updated, rec));
      if (!(updated == rid)) {
        FAME_RETURN_IF_ERROR(hash_->Insert(key, updated.Pack()));
      }
      return Status::OK();
    }
    if (!found.IsNotFound()) return found;
    auto rid_or = heap_->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    return hash_->Insert(key, rid_or.value().Pack());
  }

  Status HashGet(const Slice& key, std::string* value) {
    if (hash_ == nullptr) return Status::InvalidArgument("hash not enabled");
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(hash_->Lookup(key, &packed));
    std::string rec;
    FAME_RETURN_IF_ERROR(heap_->Get(storage::Rid::Unpack(packed), &rec));
    std::string k;
    FAME_RETURN_IF_ERROR(DecodeHeapRecord(rec, &k, value));
    return Status::OK();
  }

  Status HashDel(const Slice& key) {
    if (hash_ == nullptr) return Status::InvalidArgument("hash not enabled");
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(hash_->Lookup(key, &packed));
    FAME_RETURN_IF_ERROR(heap_->Delete(storage::Rid::Unpack(packed)));
    return hash_->Remove(key);
  }

  index::HashIndex* hash_index() { return hash_.get(); }

 private:
  std::unique_ptr<storage::RecordManager> heap_;
  std::unique_ptr<index::HashIndex> hash_;
};

}  // namespace fame::bdb::fop

#endif  // FAME_BDB_FOP_HASH_STORE_H_

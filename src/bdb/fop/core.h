// FameBDB FOP base layer. The FOP ("FeatureC++") variant composes the
// engine from *mixin layers* — the classical C++ encoding of
// feature-oriented programming that FeatureC++ itself compiles down to
// (Apel et al.): each feature is `template <class Base> class F : public
// Base`, refining methods by name and delegating with Base::method().
//
// A product instantiates exactly the layers its configuration selects,
// e.g.   using Product = TxLayer<CryptoLayer<BdbCore<BtreeIndexTag>>>;
// so unselected features contribute zero code to the binary and calls are
// statically bound — the properties Figure 1 measures.
#ifndef FAME_BDB_FOP_CORE_H_
#define FAME_BDB_FOP_CORE_H_

#include <functional>
#include <memory>
#include <string>

#include "bdb/flags.h"
#include "bdb/storage_bundle.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "index/list_index.h"

namespace fame::bdb::fop {

/// Index alternative tags (the Index feature group).
struct BtreeIndexTag {
  using Type = index::BPlusTree;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* buffers) {
    return Type::Open(buffers, "main");
  }
  static constexpr bool kOrdered = true;
};

struct ListIndexTag {
  using Type = index::ListIndex;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* buffers) {
    return Type::Open(buffers, "main");
  }
  static constexpr bool kOrdered = false;
};

struct HashIndexTag {
  using Type = index::HashIndex;
  static StatusOr<std::unique_ptr<Type>> Open(storage::BufferManager* buffers) {
    return Type::Open(buffers, "main");
  }
  static constexpr bool kOrdered = false;
};

/// Pair visitor shared by scans.
using PairVisitor = std::function<bool(const Slice&, const Slice&)>;

/// The base program: a key/value store over one statically chosen index.
/// Layers above refine Put/Get/Del/Scan.
template <typename IndexTag>
class BdbCore {
 public:
  using Index = typename IndexTag::Type;
  static constexpr bool kOrdered = IndexTag::kOrdered;

  /// Two-phase construction: layers refine Open via OnOpen hooks.
  Status Open(osal::Env* env, const std::string& path,
              const BundleOptions& opts) {
    auto bundle_or = StorageBundle::Open(env, path, opts);
    FAME_RETURN_IF_ERROR(bundle_or.status());
    bundle_ = std::move(bundle_or).value();
    auto index_or = IndexTag::Open(bundle_->buffers.get());
    FAME_RETURN_IF_ERROR(index_or.status());
    index_ = std::move(index_or).value();
    env_ = env;
    path_ = path;
    return Status::OK();
  }

  Status Put(const Slice& key, const Slice& value) {
    uint64_t packed = 0;
    Status found = index_->Lookup(key, &packed);
    std::string rec = EncodeHeapRecord(key, value);
    if (found.ok()) {
      storage::Rid rid = storage::Rid::Unpack(packed);
      storage::Rid updated = rid;
      FAME_RETURN_IF_ERROR(bundle_->heap->Update(&updated, rec));
      if (!(updated == rid)) {
        FAME_RETURN_IF_ERROR(index_->Insert(key, updated.Pack()));
      }
      return Status::OK();
    }
    if (!found.IsNotFound()) return found;
    auto rid_or = bundle_->heap->Insert(rec);
    FAME_RETURN_IF_ERROR(rid_or.status());
    return index_->Insert(key, rid_or.value().Pack());
  }

  Status Get(const Slice& key, std::string* value) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    std::string rec;
    FAME_RETURN_IF_ERROR(
        bundle_->heap->Get(storage::Rid::Unpack(packed), &rec));
    std::string stored_key;
    FAME_RETURN_IF_ERROR(DecodeHeapRecord(rec, &stored_key, value));
    if (Slice(stored_key) != key) {
      return Status::Corruption("index points at the wrong record");
    }
    return Status::OK();
  }

  Status Del(const Slice& key) {
    uint64_t packed = 0;
    FAME_RETURN_IF_ERROR(index_->Lookup(key, &packed));
    FAME_RETURN_IF_ERROR(bundle_->heap->Delete(storage::Rid::Unpack(packed)));
    return index_->Remove(key);
  }

  /// Full scan in index order.
  Status Scan(const PairVisitor& fn) {
    Status inner = Status::OK();
    FAME_RETURN_IF_ERROR(index_->Scan([&](const Slice& key, uint64_t packed) {
      std::string rec;
      inner = bundle_->heap->Get(storage::Rid::Unpack(packed), &rec);
      if (!inner.ok()) return false;
      std::string k, v;
      inner = DecodeHeapRecord(rec, &k, &v);
      if (!inner.ok()) return false;
      return fn(key, Slice(v));
    }));
    return inner;
  }

  /// Range scan [lo, hi); only compiles on ordered-index products —
  /// selecting a feature an alternative cannot support is a *compile-time*
  /// error under static composition.
  Status RangeScan(const Slice& lo, const Slice& hi, const PairVisitor& fn) {
    static_assert(kOrdered,
                  "RangeScan requires the B+-tree index alternative");
    Status inner = Status::OK();
    FAME_RETURN_IF_ERROR(
        index_->RangeScan(lo, hi, [&](const Slice& key, uint64_t packed) {
          std::string rec;
          inner = bundle_->heap->Get(storage::Rid::Unpack(packed), &rec);
          if (!inner.ok()) return false;
          std::string k, v;
          inner = DecodeHeapRecord(rec, &k, &v);
          if (!inner.ok()) return false;
          return fn(key, Slice(v));
        }));
    return inner;
  }

  Status Sync() { return bundle_->Checkpoint(); }

  osal::Env* env() { return env_; }
  const std::string& path() const { return path_; }
  Index* index() { return index_.get(); }
  StorageBundle* bundle() { return bundle_.get(); }

 private:
  osal::Env* env_ = nullptr;
  std::string path_;
  std::unique_ptr<StorageBundle> bundle_;
  std::unique_ptr<Index> index_;
};

}  // namespace fame::bdb::fop

#endif  // FAME_BDB_FOP_CORE_H_

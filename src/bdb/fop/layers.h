// FameBDB FOP feature layers. Each layer is a FeatureC++-style refinement:
// it shadows the methods it refines and delegates to Base::method(). The
// composition order used by the products is (top to bottom)
//
//   TxLayer < ReplicationLayer < CryptoLayer < StatsLayer < BdbCore
//
// so replication publishes plaintext (each replica encrypts with its own
// key), crypto sits directly above storage, and statistics count every
// physical operation.
#ifndef FAME_BDB_FOP_LAYERS_H_
#define FAME_BDB_FOP_LAYERS_H_

#include <map>

#include "bdb/crypto.h"
#include "bdb/fop/core.h"
#include "bdb/repbus.h"
#include "index/queue_am.h"
#include "tx/txmgr.h"

namespace fame::bdb::fop {

/// STATISTICS feature: counts physical operations.
template <typename Base>
class StatsLayer : public Base {
 public:
  Status Put(const Slice& key, const Slice& value) {
    ++puts_;
    return Base::Put(key, value);
  }
  Status Get(const Slice& key, std::string* value) {
    ++gets_;
    return Base::Get(key, value);
  }
  Status Del(const Slice& key) {
    ++dels_;
    return Base::Del(key);
  }
  Status Scan(const PairVisitor& fn) {
    ++scans_;
    return Base::Scan(fn);
  }

  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }
  uint64_t dels() const { return dels_; }
  uint64_t scans() const { return scans_; }

 private:
  uint64_t puts_ = 0, gets_ = 0, dels_ = 0, scans_ = 0;
};

/// CRYPTO feature: encrypts values below this layer (see crypto.h for the
/// substitution note). SetPassphrase must be called before the first Put.
template <typename Base>
class CryptoLayer : public Base {
 public:
  void SetPassphrase(const std::string& passphrase) {
    cipher_ = std::make_unique<ValueCipher>(passphrase);
  }

  Status Put(const Slice& key, const Slice& value) {
    if (cipher_ == nullptr) return Status::InvalidArgument("no passphrase");
    std::string enc = cipher_->Encrypt(value);
    return Base::Put(key, enc);
  }

  Status Get(const Slice& key, std::string* value) {
    if (cipher_ == nullptr) return Status::InvalidArgument("no passphrase");
    std::string enc;
    FAME_RETURN_IF_ERROR(Base::Get(key, &enc));
    auto plain_or = cipher_->Decrypt(enc);
    FAME_RETURN_IF_ERROR(plain_or.status());
    *value = std::move(plain_or).value();
    return Status::OK();
  }

  /// Scans surface decrypted values.
  Status Scan(const PairVisitor& fn) {
    if (cipher_ == nullptr) return Status::InvalidArgument("no passphrase");
    Status inner = Status::OK();
    FAME_RETURN_IF_ERROR(Base::Scan([&](const Slice& k, const Slice& v) {
      auto plain_or = cipher_->Decrypt(v);
      if (!plain_or.ok()) {
        inner = plain_or.status();
        return false;
      }
      return fn(k, Slice(plain_or.value()));
    }));
    return inner;
  }

 private:
  std::unique_ptr<ValueCipher> cipher_;
};

/// REPLICATION feature: ships committed writes to subscribed replicas.
/// `Replica` is any type with Put(Slice, Slice) / Del(Slice).
template <typename Base>
class ReplicationLayer : public Base {
 public:
  Status Put(const Slice& key, const Slice& value) {
    FAME_RETURN_IF_ERROR(Base::Put(key, value));
    RepMessage msg;
    msg.kind = RepMessage::kPut;
    msg.key = key.ToString();
    msg.value = value.ToString();
    return bus_.Publish(std::move(msg));
  }

  Status Del(const Slice& key) {
    FAME_RETURN_IF_ERROR(Base::Del(key));
    RepMessage msg;
    msg.kind = RepMessage::kDelete;
    msg.key = key.ToString();
    return bus_.Publish(std::move(msg));
  }

  template <typename Replica>
  void Subscribe(Replica* replica) {
    bus_.Subscribe([replica](const RepMessage& msg) -> Status {
      if (msg.kind == RepMessage::kPut) {
        return replica->Put(msg.key, msg.value);
      }
      Status s = replica->Del(msg.key);
      return s.IsNotFound() ? Status::OK() : s;
    });
  }

  uint64_t replicated() const { return bus_.published(); }

 private:
  ReplicationBus bus_;
};

/// TRANSACTIONS feature: deferred-update transactions over the layers
/// below. Must be the topmost data layer so committed writes traverse the
/// whole stack (replication, crypto, ...).
template <typename Base>
class TxLayer : public Base {
 public:
  /// Call once after Open: wires the WAL and replays committed history.
  Status EnableTransactions(
      tx::CommitProtocol protocol = tx::CommitProtocol::kWalRedo) {
    adapter_ = std::make_unique<Adapter>(this);
    auto mgr_or = tx::TransactionManager::Open(
        this->env(), this->path() + ".wal", adapter_.get(), protocol);
    FAME_RETURN_IF_ERROR(mgr_or.status());
    txmgr_ = std::move(mgr_or).value();
    return txmgr_->Recover();
  }

  StatusOr<uint64_t> TxnBegin() {
    if (txmgr_ == nullptr) return Status::InvalidArgument("tx not enabled");
    auto txn_or = txmgr_->Begin();
    FAME_RETURN_IF_ERROR(txn_or.status());
    open_[txn_or.value()->id()] = txn_or.value();
    return txn_or.value()->id();
  }
  Status TxnPut(uint64_t id, const Slice& key, const Slice& value) {
    auto it = open_.find(id);
    if (it == open_.end()) return Status::InvalidArgument("unknown txn");
    return it->second->Put("main", key, value);
  }
  Status TxnGet(uint64_t id, const Slice& key, std::string* value) {
    auto it = open_.find(id);
    if (it == open_.end()) return Status::InvalidArgument("unknown txn");
    return it->second->Get("main", key, value);
  }
  Status TxnDel(uint64_t id, const Slice& key) {
    auto it = open_.find(id);
    if (it == open_.end()) return Status::InvalidArgument("unknown txn");
    return it->second->Delete("main", key);
  }
  Status TxnCommit(uint64_t id) {
    auto it = open_.find(id);
    if (it == open_.end()) return Status::InvalidArgument("unknown txn");
    Status s = txmgr_->Commit(it->second);
    open_.erase(it);
    return s;
  }
  Status TxnAbort(uint64_t id) {
    auto it = open_.find(id);
    if (it == open_.end()) return Status::InvalidArgument("unknown txn");
    Status s = txmgr_->Abort(it->second);
    open_.erase(it);
    return s;
  }
  Status TxnCheckpoint() {
    if (txmgr_ == nullptr) return Status::InvalidArgument("tx not enabled");
    return txmgr_->Checkpoint();
  }
  tx::TransactionManager* txmgr() { return txmgr_.get(); }

 private:
  /// Routes committed writes through the full layer stack below TxLayer.
  class Adapter final : public tx::ApplyTarget {
   public:
    explicit Adapter(TxLayer* owner) : owner_(owner) {}
    Status ApplyPut(const std::string& store, const Slice& key,
                    const Slice& value) override {
      if (store != "main") return Status::InvalidArgument("unknown store");
      return owner_->Base::Put(key, value);
    }
    Status ApplyDelete(const std::string& store, const Slice& key) override {
      if (store != "main") return Status::InvalidArgument("unknown store");
      return owner_->Base::Del(key);
    }
    Status ReadCommitted(const std::string& store, const Slice& key,
                         std::string* value) override {
      if (store != "main") return Status::InvalidArgument("unknown store");
      return owner_->Base::Get(key, value);
    }
    Status CheckpointEngine() override { return owner_->Base::Sync(); }

   private:
    TxLayer* owner_;
  };

  std::unique_ptr<Adapter> adapter_;
  std::unique_ptr<tx::TransactionManager> txmgr_;
  std::map<uint64_t, tx::Transaction*> open_;
};

/// QUEUE feature: an additional queue access method alongside the main
/// index (mirrors Berkeley DB environments hosting multiple access
/// methods).
template <typename Base>
class QueueLayer : public Base {
 public:
  Status EnableQueue(uint32_t record_size) {
    auto q_or = index::QueueAM::Open(this->bundle()->buffers.get(), "main_q",
                                     record_size);
    FAME_RETURN_IF_ERROR(q_or.status());
    queue_ = std::move(q_or).value();
    return Status::OK();
  }
  StatusOr<uint64_t> Enqueue(const Slice& record) {
    if (queue_ == nullptr) return Status::InvalidArgument("queue not enabled");
    return queue_->Enqueue(record);
  }
  Status Dequeue(std::string* record) {
    if (queue_ == nullptr) return Status::InvalidArgument("queue not enabled");
    return queue_->Dequeue(record);
  }
  index::QueueAM* queue() { return queue_.get(); }

 private:
  std::unique_ptr<index::QueueAM> queue_;
};

}  // namespace fame::bdb::fop

#endif  // FAME_BDB_FOP_LAYERS_H_

#include "bdb/repbus.h"

namespace fame::bdb {

size_t ReplicationBus::Subscribe(Subscriber subscriber) {
  subscribers_.push_back(std::move(subscriber));
  return subscribers_.size() - 1;
}

Status ReplicationBus::Publish(RepMessage message) {
  message.seqno = next_seqno_++;
  for (const Subscriber& s : subscribers_) {
    FAME_RETURN_IF_ERROR(s(message));
  }
  return Status::OK();
}

}  // namespace fame::bdb

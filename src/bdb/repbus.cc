#include "bdb/repbus.h"

#include "common/stringutil.h"

namespace fame::bdb {

size_t ReplicationBus::Subscribe(Subscriber subscriber) {
  subscribers_.push_back({std::move(subscriber), next_seqno_});
  return subscribers_.size() - 1;
}

Status ReplicationBus::Publish(RepMessage message) {
  message.seqno = next_seqno_++;
  for (size_t i = 0; i < subscribers_.size(); ++i) {
    Subscription& sub = subscribers_[i];
    if (message.seqno != sub.expected) {
      // The seqno counter advanced past this replica (an earlier Publish
      // failed before reaching it). Delivering now would hide a hole in its
      // stream, so refuse loudly; the replica must re-sync out of band.
      return Status::DataLoss(StringPrintf(
          "replica %zu missed seqnos [%llu, %llu): stream has a gap", i,
          static_cast<unsigned long long>(sub.expected),
          static_cast<unsigned long long>(message.seqno)));
    }
    FAME_RETURN_IF_ERROR(sub.deliver(message));
    sub.expected = message.seqno + 1;
  }
  return Status::OK();
}

}  // namespace fame::bdb

// Shared storage plumbing for both FameBDB variants: one page file, buffer
// pool, and record heap per database environment.
#ifndef FAME_BDB_STORAGE_BUNDLE_H_
#define FAME_BDB_STORAGE_BUNDLE_H_

#include <memory>
#include <string>

#include "osal/allocator.h"
#include "osal/env.h"
#include "storage/buffer.h"
#include "storage/record.h"

namespace fame::bdb {

/// Tuning knobs shared by the variants.
struct BundleOptions {
  uint32_t page_size = 4096;
  size_t buffer_frames = 64;
  bool paranoid_checks = true;
};

/// Env + page file + buffer pool + value heap, opened together.
struct StorageBundle {
  osal::Env* env = nullptr;
  std::unique_ptr<osal::Env> owned_env;  // set when the bundle owns a MemEnv
  osal::DynamicAllocator allocator;
  std::unique_ptr<storage::PageFile> file;
  std::unique_ptr<storage::BufferManager> buffers;
  std::unique_ptr<storage::RecordManager> heap;

  static StatusOr<std::unique_ptr<StorageBundle>> Open(
      osal::Env* env, const std::string& path, const BundleOptions& opts);

  Status Checkpoint() { return buffers->Checkpoint(); }
};

/// Record layout in the value heap: [varint32 klen][key][value]. The key is
/// stored with the value so scans can reconstruct entries and crypto layers
/// can validate what they decrypt.
std::string EncodeHeapRecord(const Slice& key, const Slice& value);
Status DecodeHeapRecord(const Slice& record, std::string* key,
                        std::string* value);

}  // namespace fame::bdb

#endif  // FAME_BDB_STORAGE_BUNDLE_H_

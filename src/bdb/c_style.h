// FameBdbC: the "C version" of the FameBDB case-study engine — one
// monolithic class whose features are selected with preprocessor macros,
// reproducing how Berkeley DB's C code base is configured ("static
// composition based on C/C++ preprocessor statements", paper §2.1):
//
//   FAMEBDB_HAVE_HASH          hash access method compiled in
//   FAMEBDB_HAVE_QUEUE         queue access method compiled in
//   FAMEBDB_HAVE_CRYPTO        value encryption compiled in
//   FAMEBDB_HAVE_REPLICATION   replication compiled in
//   FAMEBDB_HAVE_TRANSACTIONS  transactions + WAL compiled in
//   FAMEBDB_HAVE_STATISTICS    operation statistics compiled in
//
// The B-tree access method is always present (Berkeley DB's default).
// Access methods still dispatch through a runtime switch even when only one
// is compiled in — the structural overhead the FOP variant avoids.
//
// Method names (put/get/del/cursor/stat/txn_begin/...) deliberately follow
// the Berkeley DB API: the Figure 3 analyzer detects feature needs from
// exactly these call shapes.
#ifndef FAME_BDB_C_STYLE_H_
#define FAME_BDB_C_STYLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "bdb/flags.h"
#include "bdb/storage_bundle.h"
#include "index/bplus_tree.h"

#if defined(FAMEBDB_HAVE_HASH)
#include "index/hash_index.h"
#endif
#if defined(FAMEBDB_HAVE_QUEUE)
#include "index/queue_am.h"
#endif
#if defined(FAMEBDB_HAVE_CRYPTO)
#include "bdb/crypto.h"
#endif
#if defined(FAMEBDB_HAVE_REPLICATION)
#include "bdb/repbus.h"
#endif
#if defined(FAMEBDB_HAVE_TRANSACTIONS)
#include "tx/txmgr.h"
#endif

namespace fame::bdb {

/// Operation counters (meaningful when FAMEBDB_HAVE_STATISTICS).
struct BdbStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t dels = 0;
  uint64_t scans = 0;
  uint64_t txns_committed = 0;
};

class FameBdbC
#if defined(FAMEBDB_HAVE_TRANSACTIONS)
    : public tx::ApplyTarget
#endif
{
 public:
  struct Options {
    uint32_t env_flags = DB_CREATE;
    uint32_t access_method = DB_BTREE;
    std::string passphrase;          // used with DB_ENCRYPT
    uint32_t queue_record_size = 64; // used with DB_QUEUE
    BundleOptions bundle;
  };

  /// Opens (creating) a database at `path`. Flags requesting features that
  /// are not compiled in fail with NotSupported — the honest behaviour of a
  /// feature-stripped build.
  static StatusOr<std::unique_ptr<FameBdbC>> Open(osal::Env* env,
                                                  const std::string& path,
                                                  const Options& options);
  ~FameBdbC()
#if defined(FAMEBDB_HAVE_TRANSACTIONS)
      override
#endif
      = default;

  // ---- key/value operations (auto-commit, BDB naming) ----
  Status put(const Slice& key, const Slice& value);
  Status get(const Slice& key, std::string* value);
  Status del(const Slice& key);
  /// put that requires the key to exist (the Access:update feature).
  Status update(const Slice& key, const Slice& value);

  /// Ordered range scan [lo, hi); NotSupported on hash/queue databases.
  Status range_scan(const Slice& lo, const Slice& hi,
                    const std::function<bool(const Slice&, const Slice&)>& fn);
  /// Full scan (any access method).
  Status cursor(const std::function<bool(const Slice&, const Slice&)>& fn);

  // ---- queue access method ----
  StatusOr<uint64_t> enqueue(const Slice& record);
  Status dequeue(std::string* record);

  // ---- transactions ----
  StatusOr<uint64_t> txn_begin();
  Status txn_put(uint64_t txn, const Slice& key, const Slice& value);
  Status txn_get(uint64_t txn, const Slice& key, std::string* value);
  Status txn_del(uint64_t txn, const Slice& key);
  Status txn_commit(uint64_t txn);
  Status txn_abort(uint64_t txn);
  Status txn_checkpoint();

  // ---- replication ----
  /// Makes `replica` apply every committed write of this engine.
  Status rep_subscribe(FameBdbC* replica);

  // ---- statistics / maintenance ----
  BdbStats stat() const;
  Status sync();
  /// Structural self-check (index invariants + index/heap agreement).
  Status verify();

  uint32_t access_method() const { return options_.access_method; }

#if defined(FAMEBDB_HAVE_TRANSACTIONS)
  // tx::ApplyTarget — applies committed transactional writes.
  Status ApplyPut(const std::string& store, const Slice& key,
                  const Slice& value) override;
  Status ApplyDelete(const std::string& store, const Slice& key) override;
  Status ReadCommitted(const std::string& store, const Slice& key,
                       std::string* value) override;
  Status CheckpointEngine() override;
#endif

 private:
  FameBdbC() = default;

  Status PutInternal(const Slice& key, const Slice& value, bool replicate);
  Status DelInternal(const Slice& key, bool replicate);
  Status EncodeValue(const Slice& value, std::string* stored);
  Status DecodeValue(const Slice& stored, std::string* value);
  index::KeyValueIndex* index();

  Options options_;
  std::unique_ptr<StorageBundle> bundle_;
  std::unique_ptr<index::BPlusTree> btree_;
#if defined(FAMEBDB_HAVE_HASH)
  std::unique_ptr<index::HashIndex> hash_;
#endif
#if defined(FAMEBDB_HAVE_QUEUE)
  std::unique_ptr<index::QueueAM> queue_;
#endif
#if defined(FAMEBDB_HAVE_CRYPTO)
  std::unique_ptr<ValueCipher> cipher_;
#endif
#if defined(FAMEBDB_HAVE_REPLICATION)
  ReplicationBus rep_bus_;
#endif
#if defined(FAMEBDB_HAVE_TRANSACTIONS)
  std::unique_ptr<tx::TransactionManager> txmgr_;
  std::map<uint64_t, tx::Transaction*> open_txns_;
#endif
#if defined(FAMEBDB_HAVE_STATISTICS)
  mutable BdbStats stats_;
#endif
};

}  // namespace fame::bdb

#endif  // FAME_BDB_C_STYLE_H_

#include "bdb/storage_bundle.h"

#include "common/coding.h"

namespace fame::bdb {

StatusOr<std::unique_ptr<StorageBundle>> StorageBundle::Open(
    osal::Env* env, const std::string& path, const BundleOptions& opts) {
  auto bundle = std::make_unique<StorageBundle>();
  bundle->env = env;
  storage::PageFileOptions pf_opts;
  pf_opts.page_size = opts.page_size;
  pf_opts.paranoid_checks = opts.paranoid_checks;
  auto file_or = storage::PageFile::Open(env, path, pf_opts);
  FAME_RETURN_IF_ERROR(file_or.status());
  bundle->file = std::move(file_or).value();
  auto bm_or = storage::BufferManager::Create(
      bundle->file.get(), opts.buffer_frames, &bundle->allocator,
      storage::MakeReplacementPolicy("lru"));
  FAME_RETURN_IF_ERROR(bm_or.status());
  bundle->buffers = std::move(bm_or).value();
  auto heap_or = storage::RecordManager::Open(bundle->buffers.get(), "values");
  FAME_RETURN_IF_ERROR(heap_or.status());
  bundle->heap = std::move(heap_or).value();
  return bundle;
}

std::string EncodeHeapRecord(const Slice& key, const Slice& value) {
  std::string rec;
  PutVarint32(&rec, static_cast<uint32_t>(key.size()));
  rec.append(key.data(), key.size());
  rec.append(value.data(), value.size());
  return rec;
}

Status DecodeHeapRecord(const Slice& record, std::string* key,
                        std::string* value) {
  Slice in = record;
  uint32_t klen = 0;
  if (!GetVarint32(&in, &klen) || in.size() < klen) {
    return Status::Corruption("bad heap record");
  }
  key->assign(in.data(), klen);
  value->assign(in.data() + klen, in.size() - klen);
  return Status::OK();
}

}  // namespace fame::bdb

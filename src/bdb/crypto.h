// CRYPTO feature: value encryption with XTEA-CBC.
//
// Substitution note (see DESIGN.md): Berkeley DB encrypts pages with AES.
// What Figure 1 measures is the *presence/size/cost of the crypto feature*,
// not cipher strength, so we ship a compact self-contained XTEA (64-bit
// block, 128-bit key, 64 rounds) in CBC mode with a random per-value IV.
// NOT reviewed cryptography — do not protect real secrets with it.
#ifndef FAME_BDB_CRYPTO_H_
#define FAME_BDB_CRYPTO_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace fame::bdb {

/// XTEA block primitives (exposed for tests/known-answer checks).
void XteaEncryptBlock(const uint32_t key[4], uint32_t block[2]);
void XteaDecryptBlock(const uint32_t key[4], uint32_t block[2]);

/// Value-level cipher: Encrypt produces [8-byte IV][ciphertext of padded
/// plaintext]; Decrypt reverses it and strips the padding.
class ValueCipher {
 public:
  /// Derives the 128-bit key from a passphrase (iterated FNV mixing).
  explicit ValueCipher(const std::string& passphrase);

  std::string Encrypt(const Slice& plaintext);
  StatusOr<std::string> Decrypt(const Slice& ciphertext) const;

 private:
  std::array<uint32_t, 4> key_;
  uint64_t iv_counter_;  // deterministic unique IVs per cipher instance
};

}  // namespace fame::bdb

#endif  // FAME_BDB_CRYPTO_H_

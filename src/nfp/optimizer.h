// Product-derivation optimizers (paper §3.2). Finding a configuration that
// maximizes utility under resource constraints is a constraint-satisfaction
// / optimization problem (NP-complete); the paper uses a greedy algorithm
// to cope. We implement that greedy algorithm plus an exhaustive optimizer
// for small models, so the greedy optimality gap is measurable
// (bench/tab_greedy_vs_optimal).
#ifndef FAME_NFP_OPTIMIZER_H_
#define FAME_NFP_OPTIMIZER_H_

#include <optional>

#include "featuremodel/model.h"
#include "nfp/estimator.h"

namespace fame::nfp {

/// Upper bound on an estimated property: estimate(kind) <= max_value.
struct ResourceConstraint {
  NfpKind kind;
  double max_value;
};

/// What a derivation wants.
struct DerivationRequest {
  /// Decisions forced by the application (from static analysis §3.1) or the
  /// developer. Unknown features are free for the optimizer.
  fm::Configuration partial;

  /// Hard resource budgets (e.g. ROM <= 128 KiB, RAM <= 8 KiB).
  std::vector<ResourceConstraint> constraints;

  /// Per-feature utility of including an optional feature; features absent
  /// from the map have utility 0 (the optimizer will drop them when they
  /// cost anything). Secondary objective after utility: minimize the first
  /// constraint's kind (smaller products win ties).
  std::map<std::string, double> utility;
};

/// Result of a derivation.
struct DerivationResult {
  fm::Configuration config;
  double utility = 0;
  NfpVector estimates;  // estimated properties of the derived product
  uint64_t evaluated = 0;  // search nodes / candidates inspected
};

/// Estimator bundle: one similarity estimator per property kind the
/// constraints mention.
using EstimatorSet = std::map<NfpKind, SimilarityEstimator>;

/// Fits estimators for every kind used by `constraints` from `repo`.
StatusOr<EstimatorSet> FitEstimators(
    const FeedbackRepository& repo,
    const std::vector<ResourceConstraint>& constraints);

/// Utility of a complete configuration under `request`.
double UtilityOf(const fm::Configuration& config,
                 const DerivationRequest& request);

/// Estimated NFPs of a complete configuration.
NfpVector EstimateAll(const fm::Configuration& config,
                      const EstimatorSet& estimators);

/// True if every constraint holds for `estimates`.
bool SatisfiesConstraints(const NfpVector& estimates,
                          const std::vector<ResourceConstraint>& constraints);

/// The paper's greedy derivation: start from the minimal valid completion
/// of the partial configuration, then repeatedly add the not-yet-selected
/// optional feature with the best utility-per-estimated-cost ratio that
/// keeps every constraint satisfied. Returns ConfigInvalid when even the
/// minimal completion violates a constraint.
StatusOr<DerivationResult> GreedyDerive(const fm::FeatureModel& model,
                                        const DerivationRequest& request,
                                        const EstimatorSet& estimators);

/// Exhaustive optimum over all valid variants consistent with the partial
/// configuration (small models / ablation only).
StatusOr<DerivationResult> ExhaustiveDerive(const fm::FeatureModel& model,
                                            const DerivationRequest& request,
                                            const EstimatorSet& estimators,
                                            uint64_t max_variants = 200'000);

}  // namespace fame::nfp

#endif  // FAME_NFP_OPTIMIZER_H_

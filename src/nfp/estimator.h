// NFP estimators. The paper (§3.2) proposes a two-step prediction:
//   1. *feature properties* — per-feature contributions derived from
//      measured products (here: ridge-regularized least squares on feature
//      indicator vectors), giving an additive model;
//   2. *similarity heuristics* — corrections from already-built products
//      close to the candidate (here: k-nearest-neighbour residual
//      correction over feature-set Hamming distance).
#ifndef FAME_NFP_ESTIMATOR_H_
#define FAME_NFP_ESTIMATOR_H_

#include "nfp/feedback.h"

namespace fame::nfp {

/// Additive per-feature model: estimate(S) = intercept + sum_{f in S} w_f.
class AdditiveEstimator {
 public:
  /// Fits contributions for `kind` from every product in `repo` that has a
  /// measurement of that kind. InvalidArgument with fewer than 2 products.
  static StatusOr<AdditiveEstimator> Fit(const FeedbackRepository& repo,
                                         NfpKind kind);

  double Estimate(const std::set<std::string>& features) const;
  double Estimate(const std::vector<std::string>& features) const;

  /// Fitted contribution of one feature (0 for unknown features).
  double FeatureWeight(const std::string& feature) const;
  double intercept() const { return intercept_; }
  NfpKind kind() const { return kind_; }

  /// Mean absolute error over the products it was fitted on.
  double TrainingMae() const { return training_mae_; }

 private:
  NfpKind kind_ = NfpKind::kBinarySize;
  double intercept_ = 0;
  std::map<std::string, double> weights_;
  double training_mae_ = 0;
};

/// Additive model + k-NN residual correction ("corrected values" in the
/// paper). Falls back to the plain additive estimate when the repository
/// has no neighbours.
class SimilarityEstimator {
 public:
  static StatusOr<SimilarityEstimator> Fit(const FeedbackRepository& repo,
                                           NfpKind kind, size_t k = 3);

  double Estimate(const std::set<std::string>& features) const;
  double Estimate(const std::vector<std::string>& features) const;

  const AdditiveEstimator& additive() const { return additive_; }

 private:
  AdditiveEstimator additive_;
  size_t k_ = 3;
  // Residual (measured - additive estimate) per training product. Feature
  // sets are interned to sorted id vectors so the Hamming distance is a
  // linear merge instead of string-set operations (the optimizers call
  // Estimate thousands of times per derivation).
  struct TrainPoint {
    std::vector<uint32_t> features;  // sorted interned ids
    double residual;
  };
  std::vector<uint32_t> Intern(const std::set<std::string>& features) const;
  std::map<std::string, uint32_t> feature_ids_;
  std::vector<TrainPoint> points_;
};

}  // namespace fame::nfp

#endif  // FAME_NFP_ESTIMATOR_H_

#include "nfp/nfp.h"

#include <algorithm>

namespace fame::nfp {

const char* NfpKindName(NfpKind kind) {
  switch (kind) {
    case NfpKind::kBinarySize:
      return "binary_size";
    case NfpKind::kRamPeak:
      return "ram_peak";
    case NfpKind::kThroughput:
      return "throughput";
    case NfpKind::kLatency:
      return "latency";
    case NfpKind::kEnergy:
      return "energy";
  }
  return "unknown";
}

StatusOr<NfpKind> NfpKindFromName(const std::string& name) {
  for (int i = 0; i <= 4; ++i) {
    auto kind = static_cast<NfpKind>(i);
    if (name == NfpKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown NFP kind: " + name);
}

bool LowerIsBetter(NfpKind kind) { return kind != NfpKind::kThroughput; }

std::string MeasuredProduct::Signature() const {
  std::vector<std::string> sorted = features;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const std::string& f : sorted) {
    if (!out.empty()) out.push_back(',');
    out.append(f);
  }
  return out;
}

bool MeasuredProduct::Has(const std::string& feature) const {
  return std::find(features.begin(), features.end(), feature) !=
         features.end();
}

}  // namespace fame::nfp

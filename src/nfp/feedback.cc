#include "nfp/feedback.h"

#include <algorithm>
#include <set>

#include "common/stringutil.h"

namespace fame::nfp {

void FeedbackRepository::Add(MeasuredProduct product) {
  std::sort(product.features.begin(), product.features.end());
  std::string sig = product.Signature();
  for (MeasuredProduct& existing : products_) {
    if (existing.Signature() == sig) {
      existing = std::move(product);
      return;
    }
  }
  products_.push_back(std::move(product));
}

std::optional<MeasuredProduct> FeedbackRepository::FindBySignature(
    const std::string& signature) const {
  for (const MeasuredProduct& p : products_) {
    if (p.Signature() == signature) return p;
  }
  return std::nullopt;
}

std::vector<std::string> FeedbackRepository::FeatureUniverse() const {
  std::set<std::string> names;
  for (const MeasuredProduct& p : products_) {
    names.insert(p.features.begin(), p.features.end());
  }
  return std::vector<std::string>(names.begin(), names.end());
}

std::string FeedbackRepository::Serialize() const {
  std::string out;
  for (const MeasuredProduct& p : products_) {
    out += "product " + p.Signature() + "\n";
    for (const auto& [kind, value] : p.values) {
      out += StringPrintf("nfp %s %.17g\n", NfpKindName(kind), value);
    }
    out += "\n";
  }
  return out;
}

StatusOr<FeedbackRepository> FeedbackRepository::Deserialize(
    const std::string& text) {
  FeedbackRepository repo;
  MeasuredProduct current;
  bool in_product = false;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') {
      if (in_product) {
        repo.Add(std::move(current));
        current = MeasuredProduct{};
        in_product = false;
      }
      continue;
    }
    if (StartsWith(line, "product ")) {
      if (in_product) {
        repo.Add(std::move(current));
        current = MeasuredProduct{};
      }
      in_product = true;
      for (const std::string& f : Split(line.substr(8), ',')) {
        std::string name(Trim(f));
        if (!name.empty()) current.features.push_back(name);
      }
    } else if (StartsWith(line, "nfp ")) {
      if (!in_product) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": nfp outside product");
      }
      auto parts = Split(line, ' ');
      if (parts.size() != 3) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'nfp <kind> <value>'");
      }
      FAME_ASSIGN_OR_RETURN(NfpKind kind, NfpKindFromName(parts[1]));
      char* end = nullptr;
      double value = std::strtod(parts[2].c_str(), &end);
      if (end == parts[2].c_str()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad number " + parts[2]);
      }
      current.values[kind] = value;
    } else {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unrecognized line: " + line);
    }
  }
  if (in_product) repo.Add(std::move(current));
  return repo;
}

Status IngestMetrics(FeedbackRepository* repo,
                     std::vector<std::string> features,
                     const obs::MetricsSnapshot& snapshot,
                     double wall_seconds) {
  if (wall_seconds <= 0.0) {
    return Status::InvalidArgument("wall_seconds must be positive");
  }
  const uint64_t ops = snapshot.engine_gets + snapshot.engine_puts +
                       snapshot.engine_removes + snapshot.engine_scans;
  if (ops == 0) {
    return Status::InvalidArgument(
        "snapshot carries no engine operations to ingest");
  }
  MeasuredProduct product;
  product.features = std::move(features);
  product.values[NfpKind::kThroughput] =
      static_cast<double>(ops) / wall_seconds;
  // Weighted mean over whichever op histograms carry samples, in the
  // microseconds the latency NFP is defined in.
  uint64_t lat_count = 0;
  uint64_t lat_sum_ns = 0;
  for (const obs::HistogramSnapshot* h :
       {&snapshot.get_ns, &snapshot.put_ns, &snapshot.remove_ns,
        &snapshot.scan_ns}) {
    lat_count += h->count;
    lat_sum_ns += h->sum;
  }
  if (lat_count > 0) {
    product.values[NfpKind::kLatency] =
        static_cast<double>(lat_sum_ns) / lat_count / 1000.0;
  }
  repo->Add(std::move(product));
  return Status::OK();
}

Status FeedbackRepository::Save(osal::Env* env, const std::string& path) const {
  return env->WriteStringToFile(path, Serialize());
}

StatusOr<FeedbackRepository> FeedbackRepository::Load(osal::Env* env,
                                                      const std::string& path) {
  std::string text;
  FAME_RETURN_IF_ERROR(env->ReadFileToString(path, &text));
  return Deserialize(text);
}

}  // namespace fame::nfp

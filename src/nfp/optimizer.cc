#include "nfp/optimizer.h"

#include <cmath>

namespace fame::nfp {

StatusOr<EstimatorSet> FitEstimators(
    const FeedbackRepository& repo,
    const std::vector<ResourceConstraint>& constraints) {
  EstimatorSet set;
  for (const ResourceConstraint& c : constraints) {
    if (set.count(c.kind) > 0) continue;
    FAME_ASSIGN_OR_RETURN(SimilarityEstimator est,
                          SimilarityEstimator::Fit(repo, c.kind));
    set.emplace(c.kind, std::move(est));
  }
  return set;
}

double UtilityOf(const fm::Configuration& config,
                 const DerivationRequest& request) {
  double u = 0;
  const fm::FeatureModel* model = config.model();
  for (fm::FeatureId id = 0; id < model->size(); ++id) {
    if (!config.IsSelected(id)) continue;
    auto it = request.utility.find(model->feature(id).name);
    if (it != request.utility.end()) u += it->second;
  }
  return u;
}

NfpVector EstimateAll(const fm::Configuration& config,
                      const EstimatorSet& estimators) {
  NfpVector out;
  std::vector<std::string> names = config.SelectedNames();
  std::set<std::string> features(names.begin(), names.end());
  for (const auto& [kind, est] : estimators) {
    out[kind] = est.Estimate(features);
  }
  return out;
}

bool SatisfiesConstraints(const NfpVector& estimates,
                          const std::vector<ResourceConstraint>& constraints) {
  for (const ResourceConstraint& c : constraints) {
    auto it = estimates.find(c.kind);
    if (it == estimates.end()) return false;
    if (it->second > c.max_value) return false;
  }
  return true;
}

namespace {

/// Completes `partial` minimally and evaluates it. nullopt when the partial
/// configuration has no valid completion or violates the budgets.
std::optional<DerivationResult> EvaluatePartial(
    const fm::FeatureModel& model, const fm::Configuration& partial,
    const DerivationRequest& request, const EstimatorSet& estimators) {
  fm::Configuration config = partial;
  if (!model.CompleteMinimal(&config).ok()) return std::nullopt;
  DerivationResult result;
  result.config = config;
  result.utility = UtilityOf(config, request);
  result.estimates = EstimateAll(config, estimators);
  if (!SatisfiesConstraints(result.estimates, request.constraints)) {
    return std::nullopt;
  }
  return result;
}

/// Cost proxy: the first constraint's kind (or binary size when there are
/// no constraints), used to rank otherwise equal candidates.
double CostOf(const DerivationResult& r, const DerivationRequest& request) {
  NfpKind kind = request.constraints.empty() ? NfpKind::kBinarySize
                                             : request.constraints[0].kind;
  auto it = r.estimates.find(kind);
  return it == r.estimates.end() ? 0.0 : it->second;
}

}  // namespace

StatusOr<DerivationResult> GreedyDerive(const fm::FeatureModel& model,
                                        const DerivationRequest& request,
                                        const EstimatorSet& estimators) {
  fm::Configuration base = request.partial;
  FAME_RETURN_IF_ERROR(model.Propagate(&base));

  std::optional<DerivationResult> best =
      EvaluatePartial(model, base, request, estimators);
  if (!best) {
    return Status::ConfigInvalid(
        "no valid product within the resource constraints");
  }
  uint64_t evaluated = 1;

  bool improved = true;
  while (improved) {
    improved = false;
    fm::FeatureId best_candidate = fm::kNoFeature;
    DerivationResult best_trial;
    double best_score = 0;

    for (fm::FeatureId id : model.DecisionFeatures()) {
      if (base.Get(id) != fm::Decision::kUnknown) continue;
      fm::Configuration trial = base;
      if (!trial.Select(id).ok()) continue;
      if (!model.Propagate(&trial).ok()) continue;
      auto result = EvaluatePartial(model, trial, request, estimators);
      ++evaluated;
      if (!result) continue;
      double gain = result->utility - best->utility;
      if (gain <= 0) continue;
      double cost_delta = CostOf(*result, request) - CostOf(*best, request);
      double score = gain / std::max(1.0, cost_delta);
      if (score > best_score) {
        best_score = score;
        best_candidate = id;
        best_trial = std::move(*result);
      }
    }
    if (best_candidate != fm::kNoFeature) {
      FAME_RETURN_IF_ERROR(base.Select(best_candidate));
      FAME_RETURN_IF_ERROR(model.Propagate(&base));
      *best = std::move(best_trial);
      improved = true;
    }
  }
  best->evaluated = evaluated;
  return *best;
}

StatusOr<DerivationResult> ExhaustiveDerive(const fm::FeatureModel& model,
                                            const DerivationRequest& request,
                                            const EstimatorSet& estimators,
                                            uint64_t max_variants) {
  FAME_ASSIGN_OR_RETURN(std::vector<fm::Configuration> variants,
                        model.EnumerateVariants(max_variants));
  std::optional<DerivationResult> best;
  uint64_t evaluated = 0;
  for (const fm::Configuration& v : variants) {
    // Respect the forced partial decisions.
    bool consistent = true;
    for (fm::FeatureId id = 0; id < model.size() && consistent; ++id) {
      if (request.partial.Get(id) == fm::Decision::kSelected &&
          !v.IsSelected(id)) {
        consistent = false;
      }
      if (request.partial.Get(id) == fm::Decision::kExcluded &&
          !v.IsExcluded(id)) {
        consistent = false;
      }
    }
    if (!consistent) continue;
    ++evaluated;
    DerivationResult r;
    r.config = v;
    r.utility = UtilityOf(v, request);
    r.estimates = EstimateAll(v, estimators);
    if (!SatisfiesConstraints(r.estimates, request.constraints)) continue;
    if (!best || r.utility > best->utility ||
        (r.utility == best->utility &&
         CostOf(r, request) < CostOf(*best, request))) {
      best = std::move(r);
    }
  }
  if (!best) {
    return Status::ConfigInvalid(
        "no valid product within the resource constraints");
  }
  best->evaluated = evaluated;
  return *best;
}

}  // namespace fame::nfp

// FeedbackRepository: the store of measured products the paper's Feedback
// Approach accumulates — "store as much information as possible about
// generated products in the model describing the SPL" (§3.2). Persisted as
// a line-oriented text format:
//
//   product <feature,feature,...>
//   nfp <kind> <value>
//   ...blank line between products...
#ifndef FAME_NFP_FEEDBACK_H_
#define FAME_NFP_FEEDBACK_H_

#include <optional>

#include "nfp/nfp.h"
#include "obs/metrics.h"
#include "osal/env.h"

namespace fame::nfp {

class FeedbackRepository {
 public:
  /// Records a measured product; a product with the same signature is
  /// replaced (newer measurement wins).
  void Add(MeasuredProduct product);

  const std::vector<MeasuredProduct>& products() const { return products_; }
  size_t size() const { return products_.size(); }

  /// Exact-match lookup by configuration signature.
  std::optional<MeasuredProduct> FindBySignature(
      const std::string& signature) const;

  /// All distinct feature names mentioned by any product.
  std::vector<std::string> FeatureUniverse() const;

  std::string Serialize() const;
  static StatusOr<FeedbackRepository> Deserialize(const std::string& text);

  Status Save(osal::Env* env, const std::string& path) const;
  static StatusOr<FeedbackRepository> Load(osal::Env* env,
                                           const std::string& path);

 private:
  std::vector<MeasuredProduct> products_;
};

/// [feature Observability] The feedback loop's live input: folds a metrics
/// snapshot taken on a running product (Database::GetMetricsSnapshot or
/// StaticEngine::GetMetricsSnapshot) into the repository as a measured
/// product — throughput from the engine-op counters over `wall_seconds`,
/// latency from the op histograms' weighted mean. This is how the paper's
/// "store as much information as possible about generated products" loop
/// closes without a bench harness: any deployment that can ship a snapshot
/// feeds the derivation tooling. InvalidArgument when the snapshot carries
/// no operations or wall_seconds is not positive.
Status IngestMetrics(FeedbackRepository* repo,
                     std::vector<std::string> features,
                     const obs::MetricsSnapshot& snapshot,
                     double wall_seconds);

}  // namespace fame::nfp

#endif  // FAME_NFP_FEEDBACK_H_

#include "nfp/estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fame::nfp {
namespace {

/// Solves (A + lambda*I) x = b in place by Gaussian elimination with
/// partial pivoting. A is n x n row-major.
bool SolveRidge(std::vector<double>& a, std::vector<double>& b, size_t n,
                double lambda) {
  for (size_t i = 0; i < n; ++i) a[i * n + i] += lambda;
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a[col * n + j], a[pivot * n + j]);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0) continue;
      for (size_t j = col; j < n; ++j) a[row * n + j] -= factor * a[col * n + j];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  for (size_t col = n; col-- > 0;) {
    for (size_t j = col + 1; j < n; ++j) b[col] -= a[col * n + j] * b[j];
    b[col] /= a[col * n + col];
  }
  return true;
}

}  // namespace

StatusOr<AdditiveEstimator> AdditiveEstimator::Fit(
    const FeedbackRepository& repo, NfpKind kind) {
  std::vector<const MeasuredProduct*> train;
  for (const MeasuredProduct& p : repo.products()) {
    if (p.values.count(kind) > 0) train.push_back(&p);
  }
  if (train.size() < 2) {
    return Status::InvalidArgument("need at least 2 measured products");
  }
  std::vector<std::string> universe = repo.FeatureUniverse();
  const size_t n = universe.size() + 1;  // + intercept

  // Normal equations: (X^T X) w = X^T y with X rows = [1, indicators...].
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  for (const MeasuredProduct* p : train) {
    std::vector<double> row(n, 0.0);
    row[0] = 1.0;
    for (size_t f = 0; f < universe.size(); ++f) {
      if (p->Has(universe[f])) row[f + 1] = 1.0;
    }
    double y = p->values.at(kind);
    for (size_t i = 0; i < n; ++i) {
      if (row[i] == 0.0) continue;
      xty[i] += row[i] * y;
      for (size_t j = 0; j < n; ++j) {
        xtx[i * n + j] += row[i] * row[j];
      }
    }
  }
  // Small ridge term keeps collinear feature groups (e.g. features always
  // selected together) solvable.
  if (!SolveRidge(xtx, xty, n, /*lambda=*/1e-6)) {
    return Status::InvalidArgument("singular NFP design matrix");
  }

  AdditiveEstimator est;
  est.kind_ = kind;
  est.intercept_ = xty[0];
  for (size_t f = 0; f < universe.size(); ++f) {
    est.weights_[universe[f]] = xty[f + 1];
  }
  double abs_err = 0;
  for (const MeasuredProduct* p : train) {
    abs_err += std::fabs(est.Estimate(p->features) - p->values.at(kind));
  }
  est.training_mae_ = abs_err / static_cast<double>(train.size());
  return est;
}

double AdditiveEstimator::Estimate(
    const std::set<std::string>& features) const {
  double v = intercept_;
  for (const std::string& f : features) {
    auto it = weights_.find(f);
    if (it != weights_.end()) v += it->second;
  }
  return v;
}

double AdditiveEstimator::Estimate(
    const std::vector<std::string>& features) const {
  return Estimate(std::set<std::string>(features.begin(), features.end()));
}

double AdditiveEstimator::FeatureWeight(const std::string& feature) const {
  auto it = weights_.find(feature);
  return it == weights_.end() ? 0.0 : it->second;
}

StatusOr<SimilarityEstimator> SimilarityEstimator::Fit(
    const FeedbackRepository& repo, NfpKind kind, size_t k) {
  SimilarityEstimator est;
  FAME_ASSIGN_OR_RETURN(est.additive_, AdditiveEstimator::Fit(repo, kind));
  est.k_ = k == 0 ? 1 : k;
  for (const std::string& f : repo.FeatureUniverse()) {
    uint32_t id = static_cast<uint32_t>(est.feature_ids_.size());
    est.feature_ids_.emplace(f, id);
  }
  for (const MeasuredProduct& p : repo.products()) {
    if (p.values.count(kind) == 0) continue;
    TrainPoint tp;
    tp.features = est.Intern(
        std::set<std::string>(p.features.begin(), p.features.end()));
    tp.residual = p.values.at(kind) - est.additive_.Estimate(p.features);
    est.points_.push_back(std::move(tp));
  }
  return est;
}

std::vector<uint32_t> SimilarityEstimator::Intern(
    const std::set<std::string>& features) const {
  std::vector<uint32_t> ids;
  ids.reserve(features.size());
  for (const std::string& f : features) {
    auto it = feature_ids_.find(f);
    if (it != feature_ids_.end()) ids.push_back(it->second);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

double SimilarityEstimator::Estimate(
    const std::set<std::string>& features) const {
  double base = additive_.Estimate(features);
  if (points_.empty()) return base;
  std::vector<uint32_t> ids = Intern(features);
  // Hamming distance between feature sets (symmetric difference size),
  // computed by a linear merge over the sorted id vectors.
  std::vector<std::pair<size_t, double>> dist;  // (distance, residual)
  dist.reserve(points_.size());
  for (const TrainPoint& tp : points_) {
    size_t i = 0, j = 0, d = 0;
    while (i < ids.size() && j < tp.features.size()) {
      if (ids[i] == tp.features[j]) {
        ++i;
        ++j;
      } else if (ids[i] < tp.features[j]) {
        ++d;
        ++i;
      } else {
        ++d;
        ++j;
      }
    }
    d += (ids.size() - i) + (tp.features.size() - j);
    dist.emplace_back(d, tp.residual);
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<long>(std::min(k_, dist.size()) - 1),
                   dist.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(dist.begin(),
            dist.begin() + static_cast<long>(std::min(k_, dist.size())),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t take = std::min(k_, dist.size());
  // Inverse-distance weighting; an exact match dominates.
  double wsum = 0, corr = 0;
  for (size_t i = 0; i < take; ++i) {
    double w = 1.0 / (1.0 + static_cast<double>(dist[i].first));
    wsum += w;
    corr += w * dist[i].second;
  }
  return base + (wsum > 0 ? corr / wsum : 0.0);
}

double SimilarityEstimator::Estimate(
    const std::vector<std::string>& features) const {
  return Estimate(std::set<std::string>(features.begin(), features.end()));
}

}  // namespace fame::nfp

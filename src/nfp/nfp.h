// Non-functional properties (paper §3.2). A product's NFPs are measured
// values — binary size, peak RAM, throughput — attached to configurations,
// features, or implementation units ("Feedback Approach" [21]).
#ifndef FAME_NFP_NFP_H_
#define FAME_NFP_NFP_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace fame::nfp {

/// The measured property kinds the FAME tooling understands.
enum class NfpKind : uint8_t {
  kBinarySize = 0,   ///< bytes of code+rodata (ROM footprint)
  kRamPeak = 1,      ///< peak heap/pool bytes during the reference workload
  kThroughput = 2,   ///< operations per second on the reference workload
  kLatency = 3,      ///< mean microseconds per operation
  kEnergy = 4,       ///< synthetic energy units (embedded cost model)
};

/// Stable names used in serialized repositories ("binary_size", ...).
const char* NfpKindName(NfpKind kind);
StatusOr<NfpKind> NfpKindFromName(const std::string& name);

/// True for properties where smaller is better (size, RAM, latency,
/// energy); false for throughput.
bool LowerIsBetter(NfpKind kind);

/// A bag of measured properties.
using NfpVector = std::map<NfpKind, double>;

/// One measured product: the feature selection that was built plus the
/// properties observed on it.
struct MeasuredProduct {
  std::vector<std::string> features;  // sorted selected feature names
  NfpVector values;

  /// Canonical signature (comma-joined sorted features).
  std::string Signature() const;
  bool Has(const std::string& feature) const;
};

}  // namespace fame::nfp

#endif  // FAME_NFP_NFP_H_

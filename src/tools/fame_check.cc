// `fame_check` — offline integrity checker and repair tool for FAME-DBMS
// database files (the fsck of the product line).
//
//   fame_check --verify <db-path>   full integrity pass: page checksums and
//                                   type tags, free-list audit, B+-tree
//                                   invariants, heap/index cross-check, WAL
//                                   scan. Exit 0 = clean, 1 = corrupt.
//   fame_check --repair <db-path>   quarantine corrupt pages (raw images
//                                   appended to <db-path>.quarantine),
//                                   salvage surviving records, rebuild the
//                                   file and index, replay the WAL.
//   fame_check --stats  <db-path>   print the unified statistics snapshot.
//   fame_check --blackbox <db-path> decode the `<db-path>.blackbox` flight
//                                   recorder (or a .blackbox file named
//                                   directly) WITHOUT opening the database —
//                                   the post-mortem path for a file that no
//                                   longer opens.
//
// Options:
//   --list-index   the database was created with the List index feature
//                  instead of the default B+-Tree.
//
// Opening runs normal crash recovery first (a torn WAL tail is truncated,
// committed transactions are replayed) — the same path every product takes
// at startup, so --verify reports what the *next open* would actually see.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"
#include "obs/blackbox.h"
#include "osal/env.h"

using namespace fame;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fame_check --verify <db-path> [--list-index]\n"
               "  fame_check --repair <db-path> [--list-index]\n"
               "  fame_check --stats  <db-path> [--list-index]\n"
               "  fame_check --blackbox <db-path|file.blackbox>\n");
  return 2;
}

/// Opens `path` with the integrity features (and everything the repair /
/// replay paths need) selected.
StatusOr<std::unique_ptr<core::Database>> OpenForCheck(const std::string& path,
                                                       bool list_index) {
  core::DbOptions opts;
  opts.path = path;
  opts.features = {"Linux",        "Dynamic",     "LRU",
                   "Get",          "Put",         "Update",
                   "Remove",       "Int-Types",   "String-Types",
                   "API",          "Transaction", "Scrub",
                   "Verify",       "Repair"};
  if (list_index) {
    opts.features.push_back("List");
  } else {
    opts.features.insert(opts.features.end(),
                         {"B+-Tree", "BTree-Search", "BTree-Update",
                          "BTree-Remove"});
  }
  // A `<db>.wal.000001` beside the file means a Backup product wrote it:
  // the segmented chain refuses a legacy single-file open, so select the
  // feature (verification then also walks the segment chain). Archived
  // segments additionally select Pitr so recycling keeps archiving.
  std::vector<std::string> wal_files;
  if (osal::GetPosixEnv()->ListFiles(path + ".wal.", &wal_files).ok() &&
      !wal_files.empty()) {
    opts.features.push_back("Backup");
    if (std::any_of(wal_files.begin(), wal_files.end(),
                    [](const std::string& f) {
                      return f.find(".wal.arc.") != std::string::npos;
                    })) {
      opts.features.push_back("Pitr");
    }
  }
  // A `<db>.fence` sidecar marks a replication node (leader or follower).
  // Select Replication so the fence meta is a recognized part of the
  // product: --verify on a follower must report clean, not flag the fence
  // (model propagation adds Backup and whatever else Replication requires).
  if (osal::GetPosixEnv()->FileExists(path + ".fence")) {
    opts.features.push_back("Replication");
  }
  return core::Database::Open(opts);
}

int CmdVerify(const std::string& path, bool list_index) {
  auto db_or = OpenForCheck(path, list_index);
  if (!db_or.ok()) {
    std::fprintf(stderr, "fame_check: cannot open %s: %s\n", path.c_str(),
                 db_or.status().ToString().c_str());
    return 1;
  }
  storage::IntegrityReport report;
  Status s = (*db_or)->VerifyIntegrity(&report);
  std::printf("%s", report.ToString().c_str());
  if (s.ok()) return 0;
  std::fprintf(stderr, "fame_check: %s\n", s.ToString().c_str());
  return 1;
}

int CmdRepair(const std::string& path, bool list_index) {
  auto db_or = OpenForCheck(path, list_index);
  if (!db_or.ok()) {
    std::fprintf(stderr, "fame_check: cannot open %s: %s\n", path.c_str(),
                 db_or.status().ToString().c_str());
    return 1;
  }
  storage::IntegrityReport report;
  Status s = (*db_or)->Repair(&report);
  std::printf("%s", report.ToString().c_str());
  if (!s.ok()) {
    std::fprintf(stderr, "fame_check: repair failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  // Prove the rebuilt file is clean before declaring victory.
  storage::IntegrityReport post;
  s = (*db_or)->VerifyIntegrity(&post);
  if (!s.ok()) {
    std::fprintf(stderr, "fame_check: post-repair verification failed: %s\n%s",
                 s.ToString().c_str(), post.ToString().c_str());
    return 1;
  }
  std::printf("post-repair verification: clean\n");
  return 0;
}

int CmdStats(const std::string& path, bool list_index) {
  auto db_or = OpenForCheck(path, list_index);
  if (!db_or.ok()) {
    std::fprintf(stderr, "fame_check: cannot open %s: %s\n", path.c_str(),
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", (*db_or)->GetStats().ToString().c_str());
  return 0;
}

/// Decodes the flight-recorder black box. Deliberately does NOT open the
/// database: the black box exists precisely for databases that degraded or
/// crashed, so the decoder must work when Open no longer does.
int CmdBlackbox(const std::string& path) {
  const std::string suffix = ".blackbox";
  std::string file = path;
  if (file.size() < suffix.size() ||
      file.compare(file.size() - suffix.size(), suffix.size(), suffix) != 0) {
    file = obs::BlackBoxPath(path);
  }
  auto body = obs::ReadBlackBox(osal::GetPosixEnv(), file);
  if (!body.ok()) {
    std::fprintf(stderr, "fame_check: cannot decode %s: %s\n", file.c_str(),
                 body.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", body->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode, path;
  bool list_index = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--verify" || arg == "--repair" || arg == "--stats" ||
        arg == "--blackbox") {
      if (!mode.empty()) return Usage();
      mode = arg;
    } else if (arg == "--list-index") {
      list_index = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (mode.empty() || path.empty()) return Usage();
  if (mode == "--verify") return CmdVerify(path, list_index);
  if (mode == "--repair") return CmdRepair(path, list_index);
  if (mode == "--blackbox") return CmdBlackbox(path);
  return CmdStats(path, list_index);
}

// `fame` — command-line front end to the FAME-DBMS tooling.
//
//   fame model print [file.fm]        print a feature model (default: the
//                                     built-in FAME-DBMS model of Figure 2)
//   fame model count [file.fm]        count its valid variants
//   fame model check <file.fm> f1,f2  validate a feature selection
//   fame detect <src.cpp...>          static analysis: which FAME-DBMS
//                                     features do these sources need?
//   fame derive <src.cpp...>          full derivation (minimal completion)
//   fame advise <entries> <point%> <range%> <write%>
//                                     data-driven index recommendation
//   fame sql <db-path> "<stmt>" ...   run SQL against a database file
//   fame scan <db-path> [--limit N] [--prefix P]
//                                     cursor scan of the raw KV records
//   fame range <db-path> <lo> <hi> [--limit N]
//                                     cursor range scan over [lo, hi)
//   fame stats <db-path> [--prom]     open with Observability, run a scan
//                                     workload, report the metrics snapshot
//                                     (--prom: Prometheus exposition format)
//   fame trace <db-path> [--last N] [--json]
//                                     open with Observability+Tracing, run a
//                                     scan workload, dump the last N spans
//                                     (--json: Chrome trace-event JSON,
//                                     loadable in Perfetto / about:tracing)
//   fame blackbox <db-path>           open with FlightRecorder, persist the
//                                     black box on demand, print its decoded
//                                     contents
//   fame backup <db-path> <dest>      online hot backup: checkpoint, fuzzy
//                                     page copy, WAL segment copy, manifest
//   fame restore <src> <db-path> [--to-lsn N] [--archive PREFIX]
//                                     rebuild <db-path> from a backup; with
//                                     --to-lsn, point-in-time recovery using
//                                     archived segments under PREFIX
//   fame repl status <db-path>        fencing state of a replication node
//   fame repl bootstrap <leader-db> <follower-db>
//                                     ship the leader's WAL (bootstrapping
//                                     the follower when needed) and apply it
//   fame repl sync <leader-db> <follower-db>
//                                     alias of bootstrap: one catch-up pass
//   fame repl promote <follower-db>   integrity-gated promotion to leader
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/index_advisor.h"
#include "core/sql.h"
#include "derivation/pipeline.h"
#include "featuremodel/fame_model.h"
#include "featuremodel/parser.h"
#include "obs/blackbox.h"
#include "obs/serialize.h"
#include "obs/trace.h"
#include "osal/env.h"
#include "repl/follower.h"
#include "repl/leader.h"

using namespace fame;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fame model print [file.fm]\n"
               "  fame model count [file.fm]\n"
               "  fame model check <file.fm|-> <f1,f2,...>\n"
               "  fame detect <source.cpp...>\n"
               "  fame derive <source.cpp...>\n"
               "  fame advise <entries> <point%%> <range%%> <write%%>\n"
               "  fame sql <db-path> \"<statement>\" [...]\n"
               "  fame scan <db-path> [--limit N] [--prefix P]\n"
               "  fame range <db-path> <lo> <hi> [--limit N]\n"
               "  fame stats <db-path> [--prom]\n"
               "  fame trace <db-path> [--last N] [--json]\n"
               "  fame blackbox <db-path>\n"
               "  fame backup <db-path> <dest>\n"
               "  fame restore <src> <db-path> [--to-lsn N] [--archive "
               "PREFIX]\n"
               "  fame repl status <db-path>\n"
               "  fame repl bootstrap <leader-db> <follower-db>\n"
               "  fame repl sync <leader-db> <follower-db>\n"
               "  fame repl promote <follower-db>\n");
  return 2;
}

/// A `<db>.wal.000001` beside the database means it was written by a
/// product with the Backup feature: the segmented chain refuses a legacy
/// single-file open, so any command touching the file must select the
/// matching features. An archived segment additionally selects Pitr so
/// recycled segments keep flowing into the archive.
void AddWalFeatures(const std::string& path,
                    std::vector<std::string>* features) {
  // A `<db>.fence` sidecar means the node is part of a replica set: select
  // Replication (and what it requires) so the fence meta and epoch-stamped
  // segments round-trip — even before any WAL has been shipped.
  if (osal::GetPosixEnv()->FileExists(path + repl::kFenceSuffix)) {
    repl::AddReplicationFeatures(features);
  }
  std::vector<std::string> files;
  if (!osal::GetPosixEnv()->ListFiles(path + ".wal.", &files).ok() ||
      files.empty()) {
    return;
  }
  bool archived = false;
  for (const std::string& f : files) {
    if (f.find(".wal.arc.") != std::string::npos) archived = true;
  }
  for (const char* f : {"Update", "BTree-Update", "Transaction", "WAL-Redo",
                        "Backup"}) {
    if (std::find(features->begin(), features->end(), f) == features->end()) {
      features->push_back(f);
    }
  }
  if (archived) features->push_back("Pitr");
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Loads a model from a .fm file, or the built-in FAME-DBMS model for ""
/// or "-".
StatusOr<std::unique_ptr<fm::FeatureModel>> LoadModel(
    const std::string& path) {
  if (path.empty() || path == "-") return fm::BuildFameDbmsModel();
  FAME_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return fm::ParseModel(text);
}

int CmdModel(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string sub = argv[0];
  std::string file = argc >= 2 ? argv[1] : "";
  auto model_or = LoadModel(file);
  if (!model_or.ok()) {
    std::fprintf(stderr, "error: %s\n", model_or.status().ToString().c_str());
    return 1;
  }
  auto& model = *model_or;
  if (sub == "print") {
    std::printf("%s", model->ToTreeString().c_str());
    return 0;
  }
  if (sub == "count") {
    auto count = model->CountVariants(100'000'000);
    if (!count.ok()) {
      std::fprintf(stderr, "error: %s\n", count.status().ToString().c_str());
      return 1;
    }
    std::printf("%llu\n", static_cast<unsigned long long>(*count));
    return 0;
  }
  if (sub == "check") {
    if (argc < 3) return Usage();
    fm::Configuration config(model.get());
    std::string features = argv[2];
    size_t start = 0;
    while (start <= features.size()) {
      size_t comma = features.find(',', start);
      std::string f = features.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (!f.empty()) {
        Status s = config.SelectByName(f);
        if (!s.ok()) {
          std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    Status s = model->CompleteMinimal(&config);
    if (!s.ok()) {
      std::printf("INVALID: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("VALID\nderived variant: %s\n",
                config.Signature().c_str());
    return 0;
  }
  return Usage();
}

int CmdDetectOrDerive(bool derive, int argc, char** argv) {
  if (argc < 1) return Usage();
  std::vector<std::string> sources;
  for (int i = 0; i < argc; ++i) {
    auto text = ReadFile(argv[i]);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 1;
    }
    sources.push_back(std::move(*text));
  }
  auto model = fm::BuildFameDbmsModel();
  derivation::DerivationPipeline pipeline(model.get());
  if (!derive) {
    auto features = pipeline.DetectFeatures(sources);
    if (!features.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   features.status().ToString().c_str());
      return 1;
    }
    for (const std::string& f : *features) std::printf("%s\n", f.c_str());
    return 0;
  }
  nfp::FeedbackRepository empty;
  auto report = pipeline.Run(sources, {}, empty);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->ToText().c_str());
  return 0;
}

int CmdAdvise(int argc, char** argv) {
  if (argc < 4) return Usage();
  core::WorkloadProfile profile;
  profile.expected_entries = std::strtoull(argv[0], nullptr, 10);
  profile.point_lookup_fraction = std::atof(argv[1]) / 100.0;
  profile.range_scan_fraction = std::atof(argv[2]) / 100.0;
  profile.write_fraction = std::atof(argv[3]) / 100.0;
  auto model = core::Calibrate();
  core::IndexRecommendation rec = model.ok()
                                      ? core::AdviseIndex(profile, *model)
                                      : core::AdviseIndex(profile);
  std::printf("recommendation: %s\nrationale: %s\n"
              "est. cost/op: B+-Tree %.3f, List %.3f%s\n",
              rec.feature.c_str(), rec.rationale.c_str(), rec.btree_cost,
              rec.list_cost, model.ok() ? " (calibrated)" : " (defaults)");
  return 0;
}

int CmdSql(int argc, char** argv) {
  if (argc < 2) return Usage();
  core::DbOptions opts;
  // Observability (plus Tracing and the FlightRecorder) rides along so
  // PROFILE statements can read registry deltas and span trees.
  opts.features = {"Linux",  "B+-Tree",      "SQL-Engine", "Optimizer",
                   "Remove", "BTree-Remove", "Update",     "BTree-Update",
                   "Int-Types", "String-Types", "Blob-Types",
                   "Observability", "Tracing", "FlightRecorder"};
  opts.path = argv[0];
  AddWalFeatures(opts.path, &opts.features);
  auto db = core::Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  for (int i = 1; i < argc; ++i) {
    auto rs = (*db)->sql()->Execute(argv[i]);
    if (!rs.ok()) {
      std::fprintf(stderr, "error: %s\n  in: %s\n",
                   rs.status().ToString().c_str(), argv[i]);
      return 1;
    }
    if (!rs->rows.empty() || !rs->columns.empty()) {
      std::printf("%s", rs->ToTable().c_str());
    } else {
      std::printf("ok (%llu rows affected, plan: %s)\n",
                  static_cast<unsigned long long>(rs->affected),
                  rs->plan.c_str());
    }
  }
  Status s = (*db)->Checkpoint();
  if (!s.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

/// Bytes rendered with non-printables as \xNN (keys can be binary).
std::string Printable(const Slice& s) {
  std::string out;
  char buf[5];
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c >= 0x20 && c < 0x7f && c != '\\') {
      out.push_back(static_cast<char>(c));
    } else {
      std::snprintf(buf, sizeof(buf), "\\x%02x", c);
      out.append(buf);
    }
  }
  return out;
}

/// Opens an existing database read-mostly: the feature selection is not
/// persisted, so any valid B+-Tree product opens files the other commands
/// wrote.
StatusOr<std::unique_ptr<core::Database>> OpenForScan(const char* path) {
  core::DbOptions opts;
  opts.features = {"Linux", "B+-Tree", "Int-Types", "String-Types"};
  opts.path = path;
  AddWalFeatures(opts.path, &opts.features);
  return core::Database::Open(opts);
}

/// Pulls at most `limit` records from `cur` within [lo-already-sought, hi),
/// keeping only keys starting with `prefix`; prints key=value lines.
/// Returns 1 (after a diagnostic) when the cursor stopped on an IO error.
int DrainCursor(core::EngineCursor* cur, const std::string& hi,
                const std::string& prefix, uint64_t limit) {
  uint64_t shown = 0;
  for (; cur->Valid() && shown < limit; cur->Next()) {
    if (!hi.empty() && cur->key().compare(Slice(hi)) >= 0) break;
    if (!prefix.empty() && !cur->key().starts_with(Slice(prefix))) continue;
    Slice value = cur->value();
    if (!cur->Valid()) break;  // heap join failed; status() has the error
    std::printf("%s=%s\n", Printable(cur->key()).c_str(),
                Printable(value).c_str());
    ++shown;
  }
  if (!cur->status().ok()) {
    std::fprintf(stderr, "error: scan stopped: %s\n",
                 cur->status().ToString().c_str());
    return 1;
  }
  std::printf("(%llu records)\n", static_cast<unsigned long long>(shown));
  return 0;
}

/// Shared option parsing for scan/range: --limit N and (scan only)
/// --prefix P.
bool ParseScanFlags(int argc, char** argv, bool allow_prefix, uint64_t* limit,
                    std::string* prefix) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      *limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (allow_prefix && std::strcmp(argv[i], "--prefix") == 0 &&
               i + 1 < argc) {
      *prefix = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

int CmdScan(int argc, char** argv) {
  if (argc < 1) return Usage();
  uint64_t limit = UINT64_MAX;
  std::string prefix;
  if (!ParseScanFlags(argc - 1, argv + 1, /*allow_prefix=*/true, &limit,
                      &prefix)) {
    return Usage();
  }
  auto db = OpenForScan(argv[0]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto cur_or = (*db)->NewCursor();
  if (!cur_or.ok()) {
    std::fprintf(stderr, "error: %s\n", cur_or.status().ToString().c_str());
    return 1;
  }
  core::EngineCursor cur = std::move(cur_or).value();
  // Seeking straight to the prefix (ordered index) makes --limit N with a
  // prefix O(N), not O(first match).
  if (prefix.empty()) {
    cur.SeekToFirst();
  } else {
    cur.Seek(Slice(prefix));
  }
  return DrainCursor(&cur, /*hi=*/"", prefix, limit);
}

int CmdRange(int argc, char** argv) {
  if (argc < 3) return Usage();
  uint64_t limit = UINT64_MAX;
  std::string prefix;
  if (!ParseScanFlags(argc - 3, argv + 3, /*allow_prefix=*/false, &limit,
                      &prefix)) {
    return Usage();
  }
  auto db = OpenForScan(argv[0]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto cur_or = (*db)->NewCursor();
  if (!cur_or.ok()) {
    std::fprintf(stderr, "error: %s\n", cur_or.status().ToString().c_str());
    return 1;
  }
  core::EngineCursor cur = std::move(cur_or).value();
  cur.Seek(Slice(argv[1]));
  return DrainCursor(&cur, /*hi=*/argv[2], /*prefix=*/"", limit);
}

/// Opens `path` with the Observability feature (plus Tracing when asked)
/// and runs one full cursor scan so a cold open still reports live signal:
/// the scan exercises the buffer pool, file IO, B+-tree descents, and the
/// cursor pipeline.
StatusOr<std::unique_ptr<core::Database>> OpenForStats(const char* path,
                                                       bool tracing) {
  core::DbOptions opts;
  opts.features = {"Linux", "B+-Tree", "Int-Types", "String-Types",
                   "Observability"};
  if (tracing) opts.features.push_back("Tracing");
  opts.path = path;
  AddWalFeatures(opts.path, &opts.features);
  auto db_or = core::Database::Open(opts);
  if (!db_or.ok()) return db_or;
  auto cur_or = (*db_or)->NewCursor();
  if (cur_or.ok()) {
    core::EngineCursor cur = std::move(cur_or).value();
    for (cur.SeekToFirst(); cur.Valid(); cur.Next()) {
      (void)cur.value();  // heap join: counts a returned row
    }
  }
  // One engine-op scan on top of the cursor drain: records the scan op
  // counter/latency and (with Tracing) an op begin/end span pair.
  (void)(*db_or)->Scan([](const Slice&, uint64_t) { return true; });
  return db_or;
}

int CmdStats(int argc, char** argv) {
  if (argc < 1) return Usage();
  bool prom = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else {
      return Usage();
    }
  }
  auto db = OpenForStats(argv[0], /*tracing=*/false);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto snap = (*db)->GetMetricsSnapshot();
  if (!snap.ok()) {
    std::fprintf(stderr, "error: %s\n", snap.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", (prom ? obs::RenderPrometheus(*snap)
                          : obs::RenderText(*snap))
                        .c_str());
  return 0;
}

int CmdTrace(int argc, char** argv) {
  if (argc < 1) return Usage();
  uint64_t last = 64;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
      last = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      return Usage();
    }
  }
  auto db = OpenForStats(argv[0], /*tracing=*/true);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  if (json) {
    // Chrome trace-event format: load the output in Perfetto or
    // about:tracing to see the span tree on a timeline.
    std::printf("%s\n", obs::Trace::DumpJson(static_cast<size_t>(last)).c_str());
    return 0;
  }
  std::string dump = obs::Trace::Dump(static_cast<size_t>(last));
  if (dump.empty()) {
    std::printf("(no trace events recorded%s)\n",
                obs::Trace::enabled()
                    ? ""
                    : "; tracing is compiled out of this build");
    return 0;
  }
  std::printf("%s", dump.c_str());
  return 0;
}

int CmdBlackbox(int argc, char** argv) {
  if (argc < 1) return Usage();
  core::DbOptions opts;
  opts.features = {"Linux",         "B+-Tree", "Int-Types",     "String-Types",
                   "Observability", "Tracing", "FlightRecorder"};
  opts.path = argv[0];
  AddWalFeatures(opts.path, &opts.features);
  auto db = core::Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Status s = (*db)->DumpBlackBox("on-demand (fame blackbox)");
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string file = obs::BlackBoxPath(argv[0]);
  auto body = obs::ReadBlackBox(osal::GetPosixEnv(), file);
  if (!body.ok()) {
    std::fprintf(stderr, "error: %s\n", body.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n%s", file.c_str(), body->c_str());
  return 0;
}

int CmdBackup(int argc, char** argv) {
  if (argc < 2) return Usage();
  core::DbOptions opts;
  opts.features = {"Linux", "B+-Tree", "Int-Types", "String-Types"};
  opts.path = argv[0];
  AddWalFeatures(opts.path, &opts.features);
  // A database without a segmented chain (first backup of a legacy file)
  // still needs the Backup feature selected: the open migrates the
  // single-file log into segment 1.
  if (std::find(opts.features.begin(), opts.features.end(), "Backup") ==
      opts.features.end()) {
    for (const char* f :
         {"Update", "BTree-Update", "Transaction", "WAL-Redo", "Backup"}) {
      opts.features.push_back(f);
    }
  }
  auto db = core::Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  core::backup::BackupReport rep;
  Status s = (*db)->Backup(argv[1], &rep);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("backup complete: %s\n"
              "  watermark lsn:  %llu\n"
              "  end lsn:        %llu\n"
              "  pages copied:   %llu\n"
              "  bytes copied:   %llu\n"
              "  segments:       %llu\n",
              argv[1], static_cast<unsigned long long>(rep.mark),
              static_cast<unsigned long long>(rep.end_lsn),
              static_cast<unsigned long long>(rep.pages_copied),
              static_cast<unsigned long long>(rep.bytes_copied),
              static_cast<unsigned long long>(rep.segments_copied));
  return 0;
}

int CmdRestore(int argc, char** argv) {
  if (argc < 2) return Usage();
  core::backup::RestoreOptions ropts;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--to-lsn") == 0 && i + 1 < argc) {
      ropts.target_lsn = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--archive") == 0 && i + 1 < argc) {
      ropts.archive_prefix = argv[++i];
    } else {
      return Usage();
    }
  }
  core::backup::RestoreReport rep;
  Status s = core::Database::Restore(osal::GetPosixEnv(), argv[0], argv[1],
                                     ropts, &rep);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("restore complete: %s\n"
              "  target lsn:     %llu\n"
              "  pages restored: %llu\n"
              "  segments:       %llu\n"
              "  from archive:   %llu\n",
              argv[1], static_cast<unsigned long long>(rep.target_lsn),
              static_cast<unsigned long long>(rep.pages_restored),
              static_cast<unsigned long long>(rep.segments_restored),
              static_cast<unsigned long long>(rep.archived_integrated));
  return 0;
}

const char* RoleName(repl::Role role) {
  switch (role) {
    case repl::Role::kLeader:
      return "leader";
    case repl::Role::kFollower:
      return "follower";
    case repl::Role::kNone:
      break;
  }
  return "none";
}

int CmdReplStatus(const char* path) {
  auto fence = repl::LoadFence(osal::GetPosixEnv(), path);
  if (!fence.ok()) {
    if (fence.status().IsNotFound()) {
      std::printf("%s: not a replication node (no fence sidecar)\n", path);
      return 0;
    }
    std::fprintf(stderr, "error: %s\n", fence.status().ToString().c_str());
    return 1;
  }
  std::printf("role: %s\nepoch: %u\ndivergent: %s\n", RoleName(fence->role),
              fence->epoch, fence->divergent ? "yes" : "no");
  return 0;
}

/// One catch-up pass: opens the leader, ships its WAL to the follower
/// (bootstrapping over a snapshot when the follower is too far behind),
/// and applies the staged bytes on the follower.
int CmdReplSync(const char* leader_path, const char* follower_path) {
  osal::Env* env = osal::GetPosixEnv();
  uint32_t epoch = 1;
  auto lf = repl::LoadFence(env, leader_path);
  if (lf.ok()) {
    if (lf->role == repl::Role::kFollower) {
      std::fprintf(stderr,
                   "error: %s is fenced as a follower; promote it first\n",
                   leader_path);
      return 1;
    }
    if (lf->epoch > epoch) epoch = lf->epoch;
  }
  core::DbOptions opts;
  opts.path = leader_path;
  AddWalFeatures(opts.path, &opts.features);
  repl::AddReplicationFeatures(&opts.features);
  auto db = core::Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Status s = (*db)->StartLeader(epoch);
  if (s.ok()) {
    s = repl::StoreFence(env, leader_path,
                         {epoch, repl::Role::kLeader, false});
  }
  auto follower_or = repl::Follower::Attach(env, follower_path);
  if (!s.ok() || !follower_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (s.ok() ? follower_or.status() : s).ToString().c_str());
    return 1;
  }
  std::unique_ptr<repl::Follower> follower = std::move(follower_or).value();
  repl::InProcessTransport link(follower.get());
  auto src = (*db)->ReplicationSource();
  if (!src.ok()) {
    std::fprintf(stderr, "error: %s\n", src.status().ToString().c_str());
    return 1;
  }
  repl::Leader leader(*src, epoch, &link);
  for (int round = 0; round < 8; ++round) {
    s = leader.SyncOnce();
    if (!s.ok() || leader.lag_bytes() == 0) break;
  }
  if (s.ok()) s = follower->Sweep();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("synced %s -> %s\n"
              "  epoch:        %u\n"
              "  acked end:    %llu\n"
              "  lag bytes:    %llu\n",
              leader_path, follower_path, epoch,
              static_cast<unsigned long long>(leader.acked_end()),
              static_cast<unsigned long long>(leader.lag_bytes()));
  return 0;
}

int CmdReplPromote(const char* path) {
  core::DbOptions base;
  AddWalFeatures(path, &base.features);
  auto epoch = repl::PromoteFollower(osal::GetPosixEnv(), path, base);
  if (!epoch.ok()) {
    std::fprintf(stderr, "error: %s\n", epoch.status().ToString().c_str());
    return 1;
  }
  std::printf("promoted %s to leader at epoch %u\n", path, epoch.value());
  return 0;
}

int CmdRepl(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string sub = argv[0];
  if (sub == "status") return CmdReplStatus(argv[1]);
  if ((sub == "bootstrap" || sub == "sync") && argc >= 3) {
    return CmdReplSync(argv[1], argv[2]);
  }
  if (sub == "promote") return CmdReplPromote(argv[1]);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "model") return CmdModel(argc - 2, argv + 2);
  if (cmd == "detect") return CmdDetectOrDerive(false, argc - 2, argv + 2);
  if (cmd == "derive") return CmdDetectOrDerive(true, argc - 2, argv + 2);
  if (cmd == "advise") return CmdAdvise(argc - 2, argv + 2);
  if (cmd == "sql") return CmdSql(argc - 2, argv + 2);
  if (cmd == "scan") return CmdScan(argc - 2, argv + 2);
  if (cmd == "range") return CmdRange(argc - 2, argv + 2);
  if (cmd == "stats") return CmdStats(argc - 2, argv + 2);
  if (cmd == "trace") return CmdTrace(argc - 2, argv + 2);
  if (cmd == "blackbox") return CmdBlackbox(argc - 2, argv + 2);
  if (cmd == "backup") return CmdBackup(argc - 2, argv + 2);
  if (cmd == "restore") return CmdRestore(argc - 2, argv + 2);
  if (cmd == "repl") return CmdRepl(argc - 2, argv + 2);
  return Usage();
}

// Metrics registry for the Observability feature: counters, gauges, and
// fixed-bucket latency histograms, templated on a *cells policy* so the
// same registry compiles to plain integers in single-threaded products and
// relaxed atomics in concurrent ones — the policy is the existing
// threading policy of storage/concurrency.h (`storage::SingleThreaded`
// satisfies it directly; concurrent instantiations use SharedCells below,
// which matches storage::MultiThreaded's Counter without pulling the mutex
// machinery into headers that deliberately include no threading code).
//
// Everything here is a header-only template: a product that never
// instantiates a metric emits no obs symbols (the obs_off_probe nm test
// pins that down). The only .cc-backed pieces of the subsystem live in
// trace.cc and serialize.cc.
//
// Snapshot types (HistogramSnapshot, MetricsSnapshot) are plain structs —
// the one concrete currency shared by Database::GetMetricsSnapshot(), the
// serializers, the NFP feedback hook, and tests.
#ifndef FAME_OBS_METRICS_H_
#define FAME_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace fame::obs {

/// Cells policy for metrics owned by components that are shared across
/// threads regardless of the buffer pool's threading policy (PageFile, WAL,
/// B+-tree, the runtime-composed Database): relaxed atomics. Distinct from
/// storage::MultiThreaded only in that including it does not drag
/// <mutex>/<shared_mutex> into storage headers that promise not to.
struct SharedCells {
  using Counter = std::atomic<uint64_t>;
};

namespace detail {

/// Counter-cell adapters: one code path for plain integers and atomics.
/// Plain cells get ordinary loads/adds (compiled to the same code as a
/// hand-written `++counter`); atomic cells get relaxed operations so the
/// hot paths never pay a fence for bookkeeping.
template <typename Cell>
inline void CellAdd(Cell& c, uint64_t n) {
  if constexpr (requires { c.fetch_add(n, std::memory_order_relaxed); }) {
    c.fetch_add(n, std::memory_order_relaxed);
  } else {
    c += n;
  }
}

template <typename Cell>
inline uint64_t CellLoad(const Cell& c) {
  if constexpr (requires { c.load(std::memory_order_relaxed); }) {
    return c.load(std::memory_order_relaxed);
  } else {
    return c;
  }
}

template <typename Cell>
inline void CellStore(Cell& c, uint64_t v) {
  if constexpr (requires { c.store(v, std::memory_order_relaxed); }) {
    c.store(v, std::memory_order_relaxed);
  } else {
    c = v;
  }
}

}  // namespace detail

/// Monotonic nanoseconds since the first call in the process. Used for
/// latency timing and trace timestamps; small values keep dumps readable.
inline uint64_t NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// Monotonically increasing event counter.
template <typename Cells>
class BasicCounter {
 public:
  void Add(uint64_t n = 1) { detail::CellAdd(cell_, n); }
  uint64_t Load() const { return detail::CellLoad(cell_); }
  void Reset() { detail::CellStore(cell_, 0); }

 private:
  typename Cells::Counter cell_{};
};

/// Settable level (open cursors, pinned frames, ...). Add/Sub store a
/// two's-complement delta so plain and atomic cells share the code path.
template <typename Cells>
class BasicGauge {
 public:
  void Set(uint64_t v) { detail::CellStore(cell_, v); }
  void Add(uint64_t n = 1) { detail::CellAdd(cell_, n); }
  void Sub(uint64_t n = 1) { detail::CellAdd(cell_, ~n + 1); }
  uint64_t Load() const { return detail::CellLoad(cell_); }

 private:
  typename Cells::Counter cell_{};
};

/// Snapshot of one histogram: plain integers, safe to copy around.
struct HistogramSnapshot {
  /// Base-4 exponential buckets: bucket b counts values in [4^b, 4^(b+1)),
  /// bucket 0 additionally holds 0, the last bucket is unbounded above.
  /// 16 buckets span 1ns..~4.3s for latencies and 1..~4e9 for sizes.
  static constexpr size_t kBuckets = 16;

  uint64_t counts[kBuckets] = {};
  uint64_t count = 0;  ///< total samples
  uint64_t sum = 0;    ///< sum of sampled values

  /// Inclusive upper bound reported for bucket b (4^(b+1) - 1).
  static uint64_t BucketBound(size_t b) {
    return (uint64_t{1} << (2 * (b + 1))) - 1;
  }

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  void Merge(const HistogramSnapshot& o) {
    for (size_t b = 0; b < kBuckets; ++b) counts[b] += o.counts[b];
    count += o.count;
    sum += o.sum;
  }
};

/// Fixed-bucket histogram (exponential base-4). Record() is two counter
/// adds plus a bit_width — no floating point, no allocation, no locks.
template <typename Cells>
class BasicHistogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  static size_t BucketOf(uint64_t v) {
    if (v == 0) return 0;
    size_t b = static_cast<size_t>(std::bit_width(v) - 1) / 2;
    return b < kBuckets ? b : kBuckets - 1;
  }

  void Record(uint64_t v) {
    detail::CellAdd(counts_[BucketOf(v)], 1);
    detail::CellAdd(count_, 1);
    detail::CellAdd(sum_, v);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t b = 0; b < kBuckets; ++b) {
      s.counts[b] = detail::CellLoad(counts_[b]);
    }
    s.count = detail::CellLoad(count_);
    s.sum = detail::CellLoad(sum_);
    return s;
  }

  void Reset() {
    for (auto& c : counts_) detail::CellStore(c, 0);
    detail::CellStore(count_, 0);
    detail::CellStore(sum_, 0);
  }

 private:
  typename Cells::Counter counts_[kBuckets] = {};
  typename Cells::Counter count_{};
  typename Cells::Counter sum_{};
};

/// Records wall time (ns) of a scope into a histogram on destruction —
/// error paths are timed too, deliberately.
template <typename Cells>
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(BasicHistogram<Cells>* h)
      : histo_(h), start_(NowNanos()) {}
  ~ScopedLatencyTimer() { histo_->Record(NowNanos() - start_); }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  BasicHistogram<Cells>* histo_;
  uint64_t start_;
};

// ---------------------------------------------------------------------------
// Component metric groups. Each instrumented component owns its group and
// exposes a snapshot accessor; the engine above assembles MetricsSnapshot.
// ---------------------------------------------------------------------------

/// PageFile IO: counts, bytes, and latency histograms per operation kind.
template <typename Cells>
struct BasicFileMetrics {
  BasicCounter<Cells> reads, writes, syncs;
  BasicCounter<Cells> read_bytes, write_bytes;
  BasicHistogram<Cells> read_ns, write_ns, sync_ns;
};

/// B+-tree structural events. A descent is one root-to-leaf traversal
/// (Lookup / Insert / Remove each count one).
template <typename Cells>
struct BasicBtreeMetrics {
  BasicCounter<Cells> splits, merges, descents;
};

/// Flush target for per-cursor counters. EngineCursor is a concrete
/// (non-templated) class, so it cannot name a Cells-typed registry; it
/// carries this two-word sink instead and the registry instantiates the
/// flush function over its own cells. Cursors accumulate in plain locals
/// (single-owner, race-free) and flush once per Seek/destruction.
struct CursorSink {
  void* ctx = nullptr;
  void (*flush)(void* ctx, uint64_t seeks, uint64_t scanned,
                uint64_t returned) = nullptr;
  void (*track_open)(void* ctx, bool open) = nullptr;
};

/// Cursor-pipeline totals: seeks (Seek*/SeekToFirst/SeekToLast calls),
/// rows scanned (positions visited) vs rows returned (values materialized
/// through the heap join), plus an open-cursor gauge.
template <typename Cells>
struct BasicCursorMetrics {
  BasicCounter<Cells> seeks, rows_scanned, rows_returned;
  BasicGauge<Cells> open;

  CursorSink sink() {
    CursorSink s;
    s.ctx = this;
    s.flush = [](void* ctx, uint64_t seeks, uint64_t scanned,
                 uint64_t returned) {
      auto* self = static_cast<BasicCursorMetrics*>(ctx);
      self->seeks.Add(seeks);
      self->rows_scanned.Add(scanned);
      self->rows_returned.Add(returned);
    };
    s.track_open = [](void* ctx, bool open) {
      auto* self = static_cast<BasicCursorMetrics*>(ctx);
      if (open) {
        self->open.Add(1);
      } else {
        self->open.Sub(1);
      }
    };
    return s;
  }
};

// ---------------------------------------------------------------------------
// Snapshot: the concrete, policy-free view of everything above, assembled
// by the engines and consumed by serializers, tests, and the NFP feedback
// hook. Counters from concurrent components are internally consistent per
// cell (each read is atomic) but the snapshot as a whole is not a fenced
// cross-counter transaction — same contract as BufferStats/WalStats.
// ---------------------------------------------------------------------------

/// Per-shard buffer-pool counters (mirrors storage::BufferStats fields).
struct BufferShardSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

struct MetricsSnapshot {
  // Buffer pool (aggregate + per shard).
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  uint64_t buffer_evictions = 0;
  uint64_t buffer_writebacks = 0;
  std::vector<BufferShardSnapshot> buffer_shards;

  // PageFile IO.
  uint64_t file_reads = 0;
  uint64_t file_writes = 0;
  uint64_t file_syncs = 0;
  uint64_t file_read_bytes = 0;
  uint64_t file_write_bytes = 0;
  HistogramSnapshot file_read_ns, file_write_ns, file_sync_ns;

  // WAL.
  uint64_t wal_appends = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_batches = 0;
  uint64_t wal_batched_bytes = 0;
  HistogramSnapshot wal_batch_records;  ///< records per group-commit batch

  // Segmented WAL + backup ([feature Backup]; all zero otherwise).
  bool wal_segmented = false;
  uint64_t wal_segments = 0;           ///< live segment files in the chain
  uint64_t wal_rotations = 0;          ///< segment rolls since open
  uint64_t wal_recycled = 0;           ///< segments retired by checkpoints
  uint64_t wal_archived = 0;           ///< segments copied to the archive
  uint64_t wal_archive_lag_bytes = 0;  ///< recyclable but not yet archived
  bool wal_archive_stalled = false;    ///< archiving paused after IO failure
  uint64_t wal_retained_lsn = 0;       ///< durable retention watermark
  uint64_t backup_runs = 0;            ///< completed hot backups
  uint64_t backup_bytes = 0;           ///< bytes written by hot backups

  // Replication ([feature Replication]; all zero otherwise).
  bool repl = false;                   ///< this node carries a fence
  bool repl_follower = false;          ///< fenced as follower (read-only)
  uint64_t repl_epoch = 0;             ///< current fencing epoch
  uint64_t repl_lag_bytes = 0;         ///< durable WAL bytes not yet acked
  uint64_t repl_lag_epochs = 0;        ///< ship rounds behind (0 = caught up)

  // B+-tree.
  uint64_t btree_splits = 0;
  uint64_t btree_merges = 0;
  uint64_t btree_descents = 0;

  // Cursor pipeline.
  uint64_t cursor_seeks = 0;
  uint64_t cursor_rows_scanned = 0;
  uint64_t cursor_rows_returned = 0;
  uint64_t cursors_open = 0;

  // Engine ops.
  uint64_t engine_gets = 0;
  uint64_t engine_puts = 0;
  uint64_t engine_removes = 0;
  uint64_t engine_scans = 0;
  HistogramSnapshot get_ns, put_ns, remove_ns, scan_ns;

  // Integrity / lifecycle.
  uint64_t verify_runs = 0;
  uint64_t repair_runs = 0;
  uint64_t pages_quarantined = 0;
  uint64_t records_salvaged = 0;
  uint64_t scrub_pages_checked = 0;
  uint64_t scrub_corrupt_pages = 0;
  uint64_t scrub_cycles = 0;
  uint64_t lost_meta_writes = 0;
  uint64_t lost_page_writebacks = 0;

  // Transactions.
  uint64_t committed_txns = 0;
  uint64_t aborted_txns = 0;
  uint64_t recovery_applied_records = 0;  ///< WAL records replayed at open
  uint64_t recovery_dropped_bytes = 0;    ///< WAL bytes dropped at open

  // Mvcc ([feature Mvcc]; all zero otherwise).
  bool mvcc = false;                    ///< snapshot isolation selected
  uint64_t mvcc_active_snapshots = 0;   ///< open (unreleased) snapshots
  uint64_t mvcc_conflicts = 0;          ///< first-committer-wins refusals
  uint64_t mvcc_gc_runs = 0;            ///< completed GC sweeps
  uint64_t mvcc_gc_pruned = 0;          ///< versions dropped by GC
  uint64_t mvcc_watermark = 0;          ///< min active snapshot ts
  uint64_t mvcc_clock = 0;              ///< last assigned commit ts
  HistogramSnapshot mvcc_chain_len;     ///< version-chain length per write

  // Memory path (Memory-Alloc alternative + slab pools).
  std::string alloc_name;             ///< engine allocator ("dynamic", ...)
  uint64_t alloc_live_bytes = 0;      ///< bytes currently handed out
  uint64_t alloc_peak_bytes = 0;      ///< high-water mark of live bytes
  uint64_t alloc_remote_frees = 0;    ///< cross-thread frees (slab pools +
                                      ///< pooled cursor/tx objects)

  // File shape.
  uint64_t page_count = 0;
  bool read_only = false;
};

/// The registry proper: the engine-op and lifecycle metrics one engine
/// instance owns, plus the cursor-pipeline sink. Instantiated with
/// storage::SingleThreaded in single-threaded static products (plain
/// integers) and SharedCells everywhere threads may race (relaxed atomics,
/// torn-read safe — this is what fixes the DbStats non-atomic reads).
template <typename Cells>
class BasicMetricsRegistry {
 public:
  BasicCounter<Cells> gets, puts, removes, scans;
  BasicHistogram<Cells> get_ns, put_ns, remove_ns, scan_ns;

  BasicCounter<Cells> verify_runs, repair_runs;
  BasicCounter<Cells> pages_quarantined, records_salvaged;

  BasicCursorMetrics<Cells> cursors;

  /// Fills the registry-owned slice of `out` (component groups are
  /// assembled by the engine that owns the components).
  void Snapshot(MetricsSnapshot* out) const {
    out->engine_gets = gets.Load();
    out->engine_puts = puts.Load();
    out->engine_removes = removes.Load();
    out->engine_scans = scans.Load();
    out->get_ns = get_ns.Snapshot();
    out->put_ns = put_ns.Snapshot();
    out->remove_ns = remove_ns.Snapshot();
    out->scan_ns = scan_ns.Snapshot();
    out->verify_runs = verify_runs.Load();
    out->repair_runs = repair_runs.Load();
    out->pages_quarantined = pages_quarantined.Load();
    out->records_salvaged = records_salvaged.Load();
    out->cursor_seeks = cursors.seeks.Load();
    out->cursor_rows_scanned = cursors.rows_scanned.Load();
    out->cursor_rows_returned = cursors.rows_returned.Load();
    out->cursors_open = cursors.open.Load();
  }
};

}  // namespace fame::obs

#endif  // FAME_OBS_METRICS_H_

// Operation tracing — the Tracing child feature of Observability.
//
// Each recording thread owns a fixed-size ring of trace events; recording
// is lock-free (one relaxed-atomic enable check, four relaxed word stores,
// one release head bump — no allocation, no locks, no fences beyond the
// release store). Rings register themselves in a process-wide list the
// first time a thread records; Collect()/Dump() walk that list, merge the
// per-thread tails by timestamp, and return at most the last N events.
//
// Consistency contract: the exporter is a diagnostic, not a transaction.
// A ring that wraps while being collected can yield an event whose words
// mix two writes; every word is an atomic, so this is benign (and
// TSan-clean) — a torn *event*, never a data race. Bounded rings mean a
// hot thread overwrites its own oldest events; Collect sees the most
// recent kRingSlots per thread at best.
//
// Recording is further gated at runtime by Trace::Enable — the Database
// facade enables it when the Tracing feature is selected; static products
// call it directly. The compile-time gate is FAME_OBS_TRACING_ENABLED
// (obs.h): deselected builds contain none of this.
#ifndef FAME_OBS_TRACE_H_
#define FAME_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fame::obs {

/// What a trace event marks.
enum class SpanKind : uint8_t {
  kOpBegin = 1,   ///< engine operation started (op says which)
  kOpEnd = 2,     ///< engine operation finished (error flag = failed)
  kPageRead = 3,  ///< PageFile read (a = page id, b = bytes)
  kPageWrite = 4, ///< PageFile write (a = page id, b = bytes)
  kWalSync = 5,   ///< WAL fsync / group-commit epoch (a = batch records)
  kCursor = 6,    ///< cursor event (a = rows scanned, b = rows returned)
};

/// Which engine operation a kOpBegin/kOpEnd span belongs to.
enum class TraceOp : uint8_t {
  kNone = 0,
  kGet = 1,
  kPut = 2,
  kRemove = 3,
  kUpdate = 4,
  kScan = 5,
  kReverseScan = 6,
  kCommit = 7,
  kAbort = 8,
  kVerify = 9,
  kRepair = 10,
};

/// One decoded trace event.
struct TraceEvent {
  uint64_t t_ns = 0;    ///< NowNanos() at record time
  SpanKind kind = SpanKind::kOpBegin;
  TraceOp op = TraceOp::kNone;
  bool error = false;
  uint32_t thread = 0;  ///< small per-ring id (registration order)
  uint64_t a = 0;       ///< kind-specific payload (page id, rows, ...)
  uint64_t b = 0;       ///< kind-specific payload (bytes, rows, ...)
};

/// Process-wide trace facility. All methods are static: spans are recorded
/// from components (PageFile, WAL) that have no path to a per-database
/// object, and embedded products run one database per process anyway.
class Trace {
 public:
  /// Events retained per recording thread.
  static constexpr size_t kRingSlots = 256;

  /// Runtime gate. Off by default; Database::Open enables it when the
  /// Tracing feature is selected. Cheap to leave off: Record is one
  /// relaxed load + branch when disabled.
  static void Enable(bool on);
  static bool enabled();

  /// Records one event into this thread's ring (lock-free after the first
  /// call on a thread). No-op when disabled.
  static void Record(SpanKind kind, TraceOp op, uint64_t a = 0,
                     uint64_t b = 0, bool error = false);

  /// Merges all rings and returns at most the last `last_n` events in
  /// timestamp order (all retained events when last_n == 0).
  static std::vector<TraceEvent> Collect(size_t last_n);

  /// Bounded text export of Collect(last_n), one line per event.
  static std::string Dump(size_t last_n);

  /// Clears all rings (test isolation). Not for concurrent use with
  /// recording threads.
  static void Reset();
};

/// RAII pair of spans around one engine operation: kOpBegin at
/// construction, kOpEnd at scope exit with the error flag the caller set
/// from the operation's final status (error paths included — the exit span
/// is recorded even when the operation throws out of scope early).
class ScopedOpSpan {
 public:
  explicit ScopedOpSpan(TraceOp op) : op_(op) {
    Trace::Record(SpanKind::kOpBegin, op_);
  }
  ~ScopedOpSpan() {
    Trace::Record(SpanKind::kOpEnd, op_, 0, 0, error_);
  }
  void set_error(bool e) { error_ = e; }

  ScopedOpSpan(const ScopedOpSpan&) = delete;
  ScopedOpSpan& operator=(const ScopedOpSpan&) = delete;

 private:
  TraceOp op_;
  bool error_ = false;
};

/// Test helper: true when any event of `kind` carries the error flag.
bool HasErrorSpan(const std::vector<TraceEvent>& events, SpanKind kind);

/// Dump()'s name for a span kind / op (exposed for tests).
const char* SpanKindName(SpanKind kind);
const char* TraceOpName(TraceOp op);

}  // namespace fame::obs

#endif  // FAME_OBS_TRACE_H_

// Operation tracing — the Tracing child feature of Observability.
//
// Each recording thread owns a fixed-size ring of trace events; recording
// is lock-free (one relaxed-atomic enable check, a per-slot seqlock bump,
// seven relaxed word stores, one release head bump — no allocation, no
// locks). Rings register themselves in a process-wide list the first time
// a thread records; Collect()/Dump() walk that list, merge the per-thread
// tails by timestamp, and return at most the last N events.
//
// Consistency contract: every slot carries a seqlock word. The writer
// bumps it odd before touching the payload and even (release) after;
// Collect() rejects slots whose sequence is odd or changed across the
// payload read. A ring that wraps while being collected therefore drops
// the in-flight slot instead of emitting an event whose words mix two
// writes — collected events are exact, never torn. Bounded rings mean a
// hot thread overwrites its own oldest events; Collect sees the most
// recent kRingSlots per thread at best.
//
// Causality: events carry a trace id, a span id, and a parent span id.
// ScopedOpSpan maintains a per-thread stack of active spans; a root span
// allocates a fresh trace id and nested spans/point events inherit it, so
// the collected events of one request form a tree ("which page reads did
// this Get cause"). Cross-thread edges (a follower commit riding a
// leader's group-commit epoch) are expressed as flow links: the leader
// records the batch event under a pre-allocated span id and followers
// record a kWalJoin event naming it.
//
// Recording is further gated at runtime by Trace::Enable — the Database
// facade enables it when the Tracing feature is selected; static products
// call it directly. The compile-time gate is FAME_OBS_TRACING_ENABLED
// (obs.h): deselected builds contain none of this.
#ifndef FAME_OBS_TRACE_H_
#define FAME_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fame::obs {

/// What a trace event marks.
enum class SpanKind : uint8_t {
  kOpBegin = 1,   ///< engine operation started (op says which)
  kOpEnd = 2,     ///< engine operation finished (error flag = failed)
  kPageRead = 3,  ///< PageFile read (a = page id, b = bytes)
  kPageWrite = 4, ///< PageFile write (a = page id, b = bytes)
  kWalSync = 5,   ///< WAL fsync / group-commit epoch (a = batch records)
  kCursor = 6,    ///< cursor event (a = rows scanned, b = rows returned)
  kWalJoin = 7,   ///< follower commit joined a group-commit epoch
                  ///< (a = the leader batch's span id, b = batch records)
};

/// Which engine operation a kOpBegin/kOpEnd span belongs to.
enum class TraceOp : uint8_t {
  kNone = 0,
  kGet = 1,
  kPut = 2,
  kRemove = 3,
  kUpdate = 4,
  kScan = 5,
  kReverseScan = 6,
  kCommit = 7,
  kAbort = 8,
  kVerify = 9,
  kRepair = 10,
  kSql = 11,        ///< one SQL statement (root span of its trace)
  kReplShip = 12,   ///< replication leader shipping a WAL window
  kReplApply = 13,  ///< replication follower applying a shipped window
};

/// One decoded trace event.
struct TraceEvent {
  uint64_t t_ns = 0;    ///< NowNanos() at record time
  SpanKind kind = SpanKind::kOpBegin;
  TraceOp op = TraceOp::kNone;
  bool error = false;
  uint32_t thread = 0;  ///< small per-ring id (registration order)
  uint64_t a = 0;       ///< kind-specific payload (page id, rows, ...)
  uint64_t b = 0;       ///< kind-specific payload (bytes, rows, ...)
  uint64_t trace_id = 0;   ///< request tree this event belongs to (0 = none)
  uint64_t span_id = 0;    ///< this span's id (0 for point events)
  uint64_t parent_id = 0;  ///< enclosing span at record time (0 = root)
};

/// The (trace, span) pair a thread is currently inside; all zeros when no
/// span is active. Capture it to attribute work done on another thread.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// What ScopedOpSpan holds between Begin and End (exposed so the RAII
/// wrapper stays header-only and trivially copyable state).
struct SpanBinding {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  bool active = false;  ///< Begin ran while tracing was enabled
};

/// Process-wide trace facility. All methods are static: spans are recorded
/// from components (PageFile, WAL) that have no path to a per-database
/// object, and embedded products run one database per process anyway.
class Trace {
 public:
  /// Events retained per recording thread.
  static constexpr size_t kRingSlots = 256;
  /// Active spans tracked per thread; deeper nesting still records but
  /// parents pin to the deepest tracked span.
  static constexpr size_t kMaxSpanDepth = 16;

  /// Runtime gate. Off by default; Database::Open enables it when the
  /// Tracing feature is selected. Cheap to leave off: Record is one
  /// relaxed load + branch when disabled.
  static void Enable(bool on);
  static bool enabled();

  /// Allocates a fresh process-unique id (never 0). Used for spans and
  /// for cross-thread flow sources like group-commit batches.
  static uint64_t NewId();

  /// This thread's innermost active span, or zeros.
  static SpanContext Current();

  /// Opens a span: allocates ids, pushes it on this thread's stack, and
  /// records kOpBegin. Fills `out` for the matching EndSpan.
  static void BeginSpan(TraceOp op, SpanBinding* out);
  /// Closes a span opened by BeginSpan: records kOpEnd and pops.
  static void EndSpan(TraceOp op, const SpanBinding& binding, bool error);

  /// Records one point event into this thread's ring (lock-free after the
  /// first call on a thread). Stamped with the current trace and parented
  /// to the innermost active span. No-op when disabled.
  static void Record(SpanKind kind, TraceOp op, uint64_t a = 0,
                     uint64_t b = 0, bool error = false);

  /// Like Record but the event carries a caller-allocated span id —
  /// used for flow sources other threads link to (e.g. the WAL leader's
  /// batch event, whose id followers name in their kWalJoin events).
  static void RecordWithSpanId(SpanKind kind, TraceOp op, uint64_t span_id,
                               uint64_t a = 0, uint64_t b = 0,
                               bool error = false);

  /// Merges all rings and returns at most the last `last_n` events in
  /// timestamp order (all retained events when last_n == 0). In-flight
  /// slots (seqlock odd or changed) are dropped, never emitted torn.
  static std::vector<TraceEvent> Collect(size_t last_n);

  /// Bounded text export of Collect(last_n), one line per event.
  static std::string Dump(size_t last_n);

  /// Chrome-trace-event JSON export of Collect(last_n): op spans become
  /// B/E slices, point events become instants, and group-commit epochs
  /// become flow arrows from the leader's batch to each follower commit.
  /// Loadable in Perfetto / chrome://tracing.
  static std::string DumpJson(size_t last_n);

  /// Clears all rings (test isolation). Not for concurrent use with
  /// recording threads.
  static void Reset();
};

/// RAII pair of spans around one engine operation: kOpBegin at
/// construction, kOpEnd at scope exit with the error flag the caller set
/// from the operation's final status (error paths included — the exit span
/// is recorded even when the operation throws out of scope early).
/// Maintains the per-thread active-span stack: work recorded inside the
/// scope (page IO, WAL syncs, nested ops) parents to this span.
class ScopedOpSpan {
 public:
  explicit ScopedOpSpan(TraceOp op) : op_(op) {
    Trace::BeginSpan(op_, &binding_);
  }
  ~ScopedOpSpan() { Trace::EndSpan(op_, binding_, error_); }
  void set_error(bool e) { error_ = e; }

  /// Ids of this span (zeros when tracing was disabled at entry).
  SpanContext context() const {
    return SpanContext{binding_.trace_id, binding_.span_id};
  }

  ScopedOpSpan(const ScopedOpSpan&) = delete;
  ScopedOpSpan& operator=(const ScopedOpSpan&) = delete;

 private:
  TraceOp op_;
  SpanBinding binding_;
  bool error_ = false;
};

/// Test helper: true when any event of `kind` carries the error flag.
bool HasErrorSpan(const std::vector<TraceEvent>& events, SpanKind kind);

/// Dump()'s name for a span kind / op (exposed for tests).
const char* SpanKindName(SpanKind kind);
const char* TraceOpName(TraceOp op);

}  // namespace fame::obs

#endif  // FAME_OBS_TRACE_H_

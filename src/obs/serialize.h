// The one stats serializer: `fame stats`, `fame_check --stats`, and
// DbStats::ToString all render a MetricsSnapshot through these two
// functions — there is no second formatter to drift out of sync.
#ifndef FAME_OBS_SERIALIZE_H_
#define FAME_OBS_SERIALIZE_H_

#include <string>

#include "obs/metrics.h"

namespace fame::obs {

/// Human-readable report. The leading block keeps the historical
/// DbStats::ToString line format (`key: value`, one per line, ending with
/// `read-only: yes|no`) that tests and scripts grep; the observability
/// sections (file IO, B+-tree, cursor pipeline, engine latencies) follow
/// and are omitted when they carry no samples.
std::string RenderText(const MetricsSnapshot& m);

/// Prometheus text exposition format (counters, gauges, and cumulative
/// `_bucket{le=...}` histogram series, `fame_` prefix). Each metric
/// family is announced once with `# HELP` / `# TYPE` lines and label
/// values are escaped per the exposition spec.
std::string RenderPrometheus(const MetricsSnapshot& m);

/// One-line histogram rendering used by RenderText (exposed for tests):
/// `count=N sum=S mean=M p50=.. p95=.. p99=.. buckets=[le<bound>:count
/// ...]` with zero buckets elided and percentiles only when samples exist.
std::string RenderHistogram(const HistogramSnapshot& h);

/// Quantile estimate (q in [0,1]) from the base-4 buckets: finds the
/// bucket holding the rank and interpolates linearly inside it — exact at
/// bucket boundaries, monotone in q, and never outside the bucket range.
uint64_t HistogramPercentile(const HistogramSnapshot& h, double q);

}  // namespace fame::obs

#endif  // FAME_OBS_SERIALIZE_H_

// Flight recorder — the FlightRecorder child feature of Observability.
//
// A bounded in-memory black box: components note non-OK outcomes as they
// happen (a small ring, oldest dropped), and on a degradation event — the
// read-only latch tripping, a replication divergence, a repair, an
// operator asking — the database persists everything a post-mortem needs
// beside itself as `<db>.blackbox`: what tripped, the selected feature
// set, the recent error breadcrumbs, the last N trace spans, and a full
// metrics snapshot.
//
// Crash safety: the dump is written to `<db>.blackbox.tmp`, synced, then
// installed with Env::RenameFile — the same atomic-install idiom the
// checkpoint uses. A crash mid-dump leaves the previous black box intact;
// a torn or corrupt file is rejected by the CRC seal at decode time.
// `fame_check --blackbox` decodes the artifact without opening (or even
// having) the database.
//
// Compile-time gate: the whole translation unit lives in fame::obs and is
// only referenced behind FAME_OBS(...) — deselected products link none of
// it (enforced by the nm guard on obs_off_probe).
#ifndef FAME_OBS_BLACKBOX_H_
#define FAME_OBS_BLACKBOX_H_

#include <deque>
#include <mutex>
#include <string>

#include "common/status.h"
#include "osal/env.h"

namespace fame::obs {

/// In-memory degradation breadcrumbs plus the dump trigger.
class BlackBox {
 public:
  /// Recent non-OK statuses retained (oldest dropped beyond this).
  static constexpr size_t kMaxErrors = 32;
  /// Trace spans snapshotted into each dump.
  static constexpr size_t kSpanLastN = 128;

  /// Notes a non-OK outcome: `where` names the call site ("put",
  /// "wal.sync"), `status_text` the Status. Thread-safe, bounded.
  void NoteStatus(const std::string& where, const std::string& status_text);

  /// The breadcrumb ring rendered one line per entry, newest last; a
  /// leading `dropped=N` line accounts for overflow.
  std::string RenderErrors() const;

  /// Persists `<db_path>.blackbox` with this box's breadcrumbs plus the
  /// caller-supplied context. Atomic install; see file comment.
  Status Persist(osal::Env* env, const std::string& db_path,
                 const std::string& trigger, const std::string& features,
                 const std::string& metrics_text) const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> errors_;
  uint64_t dropped_ = 0;
};

/// Where a database's black box lives: `<db_path>.blackbox`.
std::string BlackBoxPath(const std::string& db_path);

/// One-shot writer behind BlackBox::Persist, also used by components that
/// have no Database handle (a replication follower marking divergence).
/// Snapshots the last BlackBox::kSpanLastN trace spans itself when tracing
/// is compiled in and enabled.
Status PersistBlackBox(osal::Env* env, const std::string& db_path,
                       const std::string& trigger,
                       const std::string& features,
                       const std::string& errors_text,
                       const std::string& metrics_text);

/// Decodes a persisted black box: verifies the magic, length, and CRC
/// seal, and returns the text body. Corruption for torn/damaged files.
StatusOr<std::string> ReadBlackBox(osal::Env* env, const std::string& file);

}  // namespace fame::obs

#endif  // FAME_OBS_BLACKBOX_H_

#include "obs/serialize.h"

#include <cinttypes>
#include <set>
#include <sstream>

namespace fame::obs {
namespace {

void Line(std::string* out, const char* k, uint64_t v) {
  *out += std::string(k) + ": " + std::to_string(v) + "\n";
}

void HistoLine(std::string* out, const char* k, const HistogramSnapshot& h) {
  if (h.count == 0) return;
  *out += std::string(k) + ": " + RenderHistogram(h) + "\n";
}

// --- Prometheus helpers -------------------------------------------------

/// Output stream plus the set of metric families already announced, so
/// `# HELP` / `# TYPE` appear exactly once per family even when a family
/// emits one sample per label set (buffer shards, allocators).
struct PromState {
  std::ostringstream os;
  std::set<std::string> announced;
};

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped inside the quotes.
std::string PromEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PromLabel(const char* key, const std::string& value) {
  return std::string(key) + "=\"" + PromEscape(value) + "\"";
}

void PromAnnounce(PromState& st, const char* name, const char* type) {
  if (!st.announced.insert(name).second) return;
  std::string help(name);
  for (char& c : help) {
    if (c == '_') c = ' ';
  }
  st.os << "# HELP fame_" << name << " " << help << "\n";
  st.os << "# TYPE fame_" << name << " " << type << "\n";
}

void PromCounter(PromState& st, const char* name, uint64_t v,
                 const std::string& labels = "") {
  const std::string n(name);
  const bool counter =
      n.size() >= 6 && n.compare(n.size() - 6, 6, "_total") == 0;
  PromAnnounce(st, name, counter ? "counter" : "gauge");
  st.os << "fame_" << name;
  if (!labels.empty()) st.os << "{" << labels << "}";
  st.os << " " << v << "\n";
}

void PromHisto(PromState& st, const char* name, const HistogramSnapshot& h) {
  PromAnnounce(st, name, "histogram");
  uint64_t cumulative = 0;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    cumulative += h.counts[b];
    st.os << "fame_" << name << "_bucket{le=\"";
    if (b + 1 == HistogramSnapshot::kBuckets) {
      st.os << "+Inf";
    } else {
      st.os << HistogramSnapshot::BucketBound(b);
    }
    st.os << "\"} " << cumulative << "\n";
  }
  st.os << "fame_" << name << "_sum " << h.sum << "\n";
  st.os << "fame_" << name << "_count " << h.count << "\n";
}

}  // namespace

uint64_t HistogramPercentile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile (1-based, rounded up so p100 lands on
  // the last sample), then a linear interpolation inside the base-4 bucket
  // that holds it — log-spaced buckets, linear within.
  const double rank = q * static_cast<double>(h.count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += h.counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const uint64_t lo = b == 0 ? 0 : (uint64_t{1} << (2 * b));
    const uint64_t hi = HistogramSnapshot::BucketBound(b) + 1;
    const double frac = (rank - static_cast<double>(before)) /
                        static_cast<double>(h.counts[b]);
    return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
  }
  return HistogramSnapshot::BucketBound(HistogramSnapshot::kBuckets - 1);
}

std::string RenderHistogram(const HistogramSnapshot& h) {
  std::ostringstream os;
  os << "count=" << h.count << " sum=" << h.sum << " mean="
     << static_cast<uint64_t>(h.Mean());
  if (h.count > 0) {
    os << " p50=" << HistogramPercentile(h, 0.50)
       << " p95=" << HistogramPercentile(h, 0.95)
       << " p99=" << HistogramPercentile(h, 0.99);
  }
  os << " buckets=[";
  bool first = true;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    if (!first) os << " ";
    first = false;
    if (b + 1 == HistogramSnapshot::kBuckets) {
      os << "le+Inf:";
    } else {
      os << "le" << HistogramSnapshot::BucketBound(b) << ":";
    }
    os << h.counts[b];
  }
  os << "]";
  return os.str();
}

std::string RenderText(const MetricsSnapshot& m) {
  std::string out;
  // Historical DbStats block — keep the line keys stable; tests and
  // scripts grep them.
  Line(&out, "pages", m.page_count);
  Line(&out, "buffer hits", m.buffer_hits);
  Line(&out, "buffer misses", m.buffer_misses);
  Line(&out, "buffer evictions", m.buffer_evictions);
  Line(&out, "dirty writebacks", m.buffer_writebacks);
  Line(&out, "scrub pages checked", m.scrub_pages_checked);
  Line(&out, "scrub corrupt pages", m.scrub_corrupt_pages);
  Line(&out, "scrub cycles", m.scrub_cycles);
  Line(&out, "verify runs", m.verify_runs);
  Line(&out, "repair runs", m.repair_runs);
  Line(&out, "pages quarantined", m.pages_quarantined);
  Line(&out, "records salvaged", m.records_salvaged);
  Line(&out, "lost meta writes", m.lost_meta_writes);
  Line(&out, "lost page writebacks", m.lost_page_writebacks);
  Line(&out, "committed txns", m.committed_txns);
  Line(&out, "aborted txns", m.aborted_txns);
  Line(&out, "wal records appended", m.wal_appends);
  Line(&out, "wal fsyncs", m.wal_syncs);
  Line(&out, "wal group-commit batches", m.wal_batches);
  Line(&out, "wal records replayed at open", m.recovery_applied_records);
  Line(&out, "wal bytes dropped at open", m.recovery_dropped_bytes);
  out += std::string("read-only: ") + (m.read_only ? "yes" : "no") + "\n";
  if (m.wal_segmented) {
    // [feature Backup] only — products on the legacy single-file log keep
    // the historical output byte-identical.
    Line(&out, "wal segments", m.wal_segments);
    Line(&out, "wal segment rotations", m.wal_rotations);
    Line(&out, "wal segments recycled", m.wal_recycled);
    Line(&out, "wal segments archived", m.wal_archived);
    Line(&out, "wal archive lag bytes", m.wal_archive_lag_bytes);
    out += std::string("wal archive stalled: ") +
           (m.wal_archive_stalled ? "yes" : "no") + "\n";
    Line(&out, "wal retained lsn", m.wal_retained_lsn);
    Line(&out, "backup runs", m.backup_runs);
    Line(&out, "backup bytes", m.backup_bytes);
  }
  if (m.repl) {
    // [feature Replication] only — unfenced products keep the historical
    // output byte-identical.
    out += std::string("repl role: ") +
           (m.repl_follower ? "follower" : "leader") + "\n";
    Line(&out, "repl epoch", m.repl_epoch);
    Line(&out, "repl lag bytes", m.repl_lag_bytes);
    Line(&out, "repl lag epochs", m.repl_lag_epochs);
  }
  if (m.mvcc) {
    // [feature Mvcc] only — products without snapshot isolation keep the
    // historical output byte-identical.
    Line(&out, "mvcc active snapshots", m.mvcc_active_snapshots);
    Line(&out, "mvcc conflicts", m.mvcc_conflicts);
    Line(&out, "mvcc gc runs", m.mvcc_gc_runs);
    Line(&out, "mvcc gc pruned versions", m.mvcc_gc_pruned);
    Line(&out, "mvcc watermark", m.mvcc_watermark);
    Line(&out, "mvcc commit clock", m.mvcc_clock);
    HistoLine(&out, "mvcc chain length", m.mvcc_chain_len);
  }

  // Observability sections (nonzero data only).
  if (!m.buffer_shards.empty() && m.buffer_shards.size() > 1) {
    for (size_t i = 0; i < m.buffer_shards.size(); ++i) {
      const BufferShardSnapshot& s = m.buffer_shards[i];
      if (s.hits + s.misses + s.evictions + s.dirty_writebacks == 0) continue;
      out += "buffer shard " + std::to_string(i) + ": hits=" +
             std::to_string(s.hits) + " misses=" + std::to_string(s.misses) +
             " evictions=" + std::to_string(s.evictions) + " writebacks=" +
             std::to_string(s.dirty_writebacks) + "\n";
    }
  }
  if (m.file_reads + m.file_writes + m.file_syncs > 0) {
    Line(&out, "file reads", m.file_reads);
    Line(&out, "file writes", m.file_writes);
    Line(&out, "file syncs", m.file_syncs);
    Line(&out, "file read bytes", m.file_read_bytes);
    Line(&out, "file write bytes", m.file_write_bytes);
    HistoLine(&out, "file read latency ns", m.file_read_ns);
    HistoLine(&out, "file write latency ns", m.file_write_ns);
    HistoLine(&out, "file sync latency ns", m.file_sync_ns);
  }
  HistoLine(&out, "wal batch records", m.wal_batch_records);
  if (m.btree_descents + m.btree_splits + m.btree_merges > 0) {
    Line(&out, "btree descents", m.btree_descents);
    Line(&out, "btree splits", m.btree_splits);
    Line(&out, "btree merges", m.btree_merges);
  }
  if (m.cursor_seeks + m.cursor_rows_scanned > 0) {
    Line(&out, "cursor seeks", m.cursor_seeks);
    Line(&out, "cursor rows scanned", m.cursor_rows_scanned);
    Line(&out, "cursor rows returned", m.cursor_rows_returned);
    Line(&out, "cursors open", m.cursors_open);
  }
  if (m.engine_gets + m.engine_puts + m.engine_removes + m.engine_scans > 0) {
    Line(&out, "engine gets", m.engine_gets);
    Line(&out, "engine puts", m.engine_puts);
    Line(&out, "engine removes", m.engine_removes);
    Line(&out, "engine scans", m.engine_scans);
    HistoLine(&out, "get latency ns", m.get_ns);
    HistoLine(&out, "put latency ns", m.put_ns);
    HistoLine(&out, "remove latency ns", m.remove_ns);
    HistoLine(&out, "scan latency ns", m.scan_ns);
  }
  if (!m.alloc_name.empty()) {
    // Memory path: snapshots assembled before the alloc gauges existed
    // carry no allocator name and keep the historical output byte-identical.
    out += "alloc name: " + m.alloc_name + "\n";
    Line(&out, "alloc live bytes", m.alloc_live_bytes);
    Line(&out, "alloc peak bytes", m.alloc_peak_bytes);
    Line(&out, "alloc remote frees", m.alloc_remote_frees);
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& m) {
  PromState st;
  PromCounter(st, "buffer_hits_total", m.buffer_hits);
  PromCounter(st, "buffer_misses_total", m.buffer_misses);
  PromCounter(st, "buffer_evictions_total", m.buffer_evictions);
  PromCounter(st, "buffer_writebacks_total", m.buffer_writebacks);
  for (size_t i = 0; i < m.buffer_shards.size(); ++i) {
    const BufferShardSnapshot& s = m.buffer_shards[i];
    std::string label = PromLabel("shard", std::to_string(i));
    PromCounter(st, "buffer_shard_hits_total", s.hits, label);
    PromCounter(st, "buffer_shard_misses_total", s.misses, label);
    PromCounter(st, "buffer_shard_evictions_total", s.evictions, label);
    PromCounter(st, "buffer_shard_writebacks_total", s.dirty_writebacks,
                label);
  }
  PromCounter(st, "file_reads_total", m.file_reads);
  PromCounter(st, "file_writes_total", m.file_writes);
  PromCounter(st, "file_syncs_total", m.file_syncs);
  PromCounter(st, "file_read_bytes_total", m.file_read_bytes);
  PromCounter(st, "file_write_bytes_total", m.file_write_bytes);
  PromHisto(st, "file_read_latency_ns", m.file_read_ns);
  PromHisto(st, "file_write_latency_ns", m.file_write_ns);
  PromHisto(st, "file_sync_latency_ns", m.file_sync_ns);
  PromCounter(st, "wal_appends_total", m.wal_appends);
  PromCounter(st, "wal_fsyncs_total", m.wal_syncs);
  PromCounter(st, "wal_batches_total", m.wal_batches);
  PromCounter(st, "wal_batched_bytes_total", m.wal_batched_bytes);
  PromHisto(st, "wal_batch_records", m.wal_batch_records);
  if (m.wal_segmented) {
    PromCounter(st, "wal_segments", m.wal_segments);
    PromCounter(st, "wal_rotations_total", m.wal_rotations);
    PromCounter(st, "wal_recycled_total", m.wal_recycled);
    PromCounter(st, "wal_archived_total", m.wal_archived);
    PromCounter(st, "wal_archive_lag_bytes", m.wal_archive_lag_bytes);
    PromCounter(st, "wal_archive_stalled", m.wal_archive_stalled ? 1 : 0);
    PromCounter(st, "wal_retained_lsn", m.wal_retained_lsn);
    PromCounter(st, "backup_runs_total", m.backup_runs);
    PromCounter(st, "backup_bytes_total", m.backup_bytes);
  }
  if (m.repl) {
    PromCounter(st, "repl_follower", m.repl_follower ? 1 : 0);
    PromCounter(st, "repl_epoch", m.repl_epoch);
    PromCounter(st, "repl_lag_bytes", m.repl_lag_bytes);
    PromCounter(st, "repl_lag_epochs", m.repl_lag_epochs);
  }
  if (m.mvcc) {
    PromCounter(st, "mvcc_active_snapshots", m.mvcc_active_snapshots);
    PromCounter(st, "mvcc_conflicts_total", m.mvcc_conflicts);
    PromCounter(st, "mvcc_gc_runs_total", m.mvcc_gc_runs);
    PromCounter(st, "mvcc_gc_pruned_total", m.mvcc_gc_pruned);
    PromCounter(st, "mvcc_watermark", m.mvcc_watermark);
    PromCounter(st, "mvcc_commit_clock", m.mvcc_clock);
    PromHisto(st, "mvcc_chain_len", m.mvcc_chain_len);
  }
  PromCounter(st, "btree_splits_total", m.btree_splits);
  PromCounter(st, "btree_merges_total", m.btree_merges);
  PromCounter(st, "btree_descents_total", m.btree_descents);
  PromCounter(st, "cursor_seeks_total", m.cursor_seeks);
  PromCounter(st, "cursor_rows_scanned_total", m.cursor_rows_scanned);
  PromCounter(st, "cursor_rows_returned_total", m.cursor_rows_returned);
  PromCounter(st, "cursors_open", m.cursors_open);
  PromCounter(st, "engine_gets_total", m.engine_gets);
  PromCounter(st, "engine_puts_total", m.engine_puts);
  PromCounter(st, "engine_removes_total", m.engine_removes);
  PromCounter(st, "engine_scans_total", m.engine_scans);
  PromHisto(st, "get_latency_ns", m.get_ns);
  PromHisto(st, "put_latency_ns", m.put_ns);
  PromHisto(st, "remove_latency_ns", m.remove_ns);
  PromHisto(st, "scan_latency_ns", m.scan_ns);
  PromCounter(st, "verify_runs_total", m.verify_runs);
  PromCounter(st, "repair_runs_total", m.repair_runs);
  PromCounter(st, "pages_quarantined_total", m.pages_quarantined);
  PromCounter(st, "records_salvaged_total", m.records_salvaged);
  PromCounter(st, "scrub_pages_checked_total", m.scrub_pages_checked);
  PromCounter(st, "scrub_corrupt_pages_total", m.scrub_corrupt_pages);
  PromCounter(st, "scrub_cycles_total", m.scrub_cycles);
  PromCounter(st, "lost_meta_writes_total", m.lost_meta_writes);
  PromCounter(st, "lost_page_writebacks_total", m.lost_page_writebacks);
  PromCounter(st, "committed_txns_total", m.committed_txns);
  PromCounter(st, "aborted_txns_total", m.aborted_txns);
  if (!m.alloc_name.empty()) {
    std::string label = PromLabel("allocator", m.alloc_name);
    PromCounter(st, "alloc_live_bytes", m.alloc_live_bytes, label);
    PromCounter(st, "alloc_peak_bytes", m.alloc_peak_bytes, label);
    PromCounter(st, "alloc_remote_frees_total", m.alloc_remote_frees, label);
  }
  PromCounter(st, "page_count", m.page_count);
  PromCounter(st, "read_only", m.read_only ? 1 : 0);
  return st.os.str();
}

}  // namespace fame::obs

#include "obs/serialize.h"

#include <cinttypes>
#include <sstream>

namespace fame::obs {
namespace {

void Line(std::string* out, const char* k, uint64_t v) {
  *out += std::string(k) + ": " + std::to_string(v) + "\n";
}

void HistoLine(std::string* out, const char* k, const HistogramSnapshot& h) {
  if (h.count == 0) return;
  *out += std::string(k) + ": " + RenderHistogram(h) + "\n";
}

// --- Prometheus helpers -------------------------------------------------

void PromCounter(std::ostringstream& os, const char* name, uint64_t v,
                 const char* labels = nullptr) {
  os << "fame_" << name;
  if (labels != nullptr) os << "{" << labels << "}";
  os << " " << v << "\n";
}

void PromHisto(std::ostringstream& os, const char* name,
               const HistogramSnapshot& h) {
  uint64_t cumulative = 0;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    cumulative += h.counts[b];
    os << "fame_" << name << "_bucket{le=\"";
    if (b + 1 == HistogramSnapshot::kBuckets) {
      os << "+Inf";
    } else {
      os << HistogramSnapshot::BucketBound(b);
    }
    os << "\"} " << cumulative << "\n";
  }
  os << "fame_" << name << "_sum " << h.sum << "\n";
  os << "fame_" << name << "_count " << h.count << "\n";
}

}  // namespace

std::string RenderHistogram(const HistogramSnapshot& h) {
  std::ostringstream os;
  os << "count=" << h.count << " sum=" << h.sum << " mean="
     << static_cast<uint64_t>(h.Mean()) << " buckets=[";
  bool first = true;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    if (!first) os << " ";
    first = false;
    if (b + 1 == HistogramSnapshot::kBuckets) {
      os << "le+Inf:";
    } else {
      os << "le" << HistogramSnapshot::BucketBound(b) << ":";
    }
    os << h.counts[b];
  }
  os << "]";
  return os.str();
}

std::string RenderText(const MetricsSnapshot& m) {
  std::string out;
  // Historical DbStats block — keep the line keys stable; tests and
  // scripts grep them.
  Line(&out, "pages", m.page_count);
  Line(&out, "buffer hits", m.buffer_hits);
  Line(&out, "buffer misses", m.buffer_misses);
  Line(&out, "buffer evictions", m.buffer_evictions);
  Line(&out, "dirty writebacks", m.buffer_writebacks);
  Line(&out, "scrub pages checked", m.scrub_pages_checked);
  Line(&out, "scrub corrupt pages", m.scrub_corrupt_pages);
  Line(&out, "scrub cycles", m.scrub_cycles);
  Line(&out, "verify runs", m.verify_runs);
  Line(&out, "repair runs", m.repair_runs);
  Line(&out, "pages quarantined", m.pages_quarantined);
  Line(&out, "records salvaged", m.records_salvaged);
  Line(&out, "lost meta writes", m.lost_meta_writes);
  Line(&out, "lost page writebacks", m.lost_page_writebacks);
  Line(&out, "committed txns", m.committed_txns);
  Line(&out, "aborted txns", m.aborted_txns);
  Line(&out, "wal records appended", m.wal_appends);
  Line(&out, "wal fsyncs", m.wal_syncs);
  Line(&out, "wal group-commit batches", m.wal_batches);
  Line(&out, "wal records replayed at open", m.recovery_applied_records);
  Line(&out, "wal bytes dropped at open", m.recovery_dropped_bytes);
  out += std::string("read-only: ") + (m.read_only ? "yes" : "no") + "\n";
  if (m.wal_segmented) {
    // [feature Backup] only — products on the legacy single-file log keep
    // the historical output byte-identical.
    Line(&out, "wal segments", m.wal_segments);
    Line(&out, "wal segment rotations", m.wal_rotations);
    Line(&out, "wal segments recycled", m.wal_recycled);
    Line(&out, "wal segments archived", m.wal_archived);
    Line(&out, "wal archive lag bytes", m.wal_archive_lag_bytes);
    out += std::string("wal archive stalled: ") +
           (m.wal_archive_stalled ? "yes" : "no") + "\n";
    Line(&out, "wal retained lsn", m.wal_retained_lsn);
    Line(&out, "backup runs", m.backup_runs);
    Line(&out, "backup bytes", m.backup_bytes);
  }
  if (m.repl) {
    // [feature Replication] only — unfenced products keep the historical
    // output byte-identical.
    out += std::string("repl role: ") +
           (m.repl_follower ? "follower" : "leader") + "\n";
    Line(&out, "repl epoch", m.repl_epoch);
    Line(&out, "repl lag bytes", m.repl_lag_bytes);
    Line(&out, "repl lag epochs", m.repl_lag_epochs);
  }
  if (m.mvcc) {
    // [feature Mvcc] only — products without snapshot isolation keep the
    // historical output byte-identical.
    Line(&out, "mvcc active snapshots", m.mvcc_active_snapshots);
    Line(&out, "mvcc conflicts", m.mvcc_conflicts);
    Line(&out, "mvcc gc runs", m.mvcc_gc_runs);
    Line(&out, "mvcc gc pruned versions", m.mvcc_gc_pruned);
    Line(&out, "mvcc watermark", m.mvcc_watermark);
    Line(&out, "mvcc commit clock", m.mvcc_clock);
    HistoLine(&out, "mvcc chain length", m.mvcc_chain_len);
  }

  // Observability sections (nonzero data only).
  if (!m.buffer_shards.empty() && m.buffer_shards.size() > 1) {
    for (size_t i = 0; i < m.buffer_shards.size(); ++i) {
      const BufferShardSnapshot& s = m.buffer_shards[i];
      if (s.hits + s.misses + s.evictions + s.dirty_writebacks == 0) continue;
      out += "buffer shard " + std::to_string(i) + ": hits=" +
             std::to_string(s.hits) + " misses=" + std::to_string(s.misses) +
             " evictions=" + std::to_string(s.evictions) + " writebacks=" +
             std::to_string(s.dirty_writebacks) + "\n";
    }
  }
  if (m.file_reads + m.file_writes + m.file_syncs > 0) {
    Line(&out, "file reads", m.file_reads);
    Line(&out, "file writes", m.file_writes);
    Line(&out, "file syncs", m.file_syncs);
    Line(&out, "file read bytes", m.file_read_bytes);
    Line(&out, "file write bytes", m.file_write_bytes);
    HistoLine(&out, "file read latency ns", m.file_read_ns);
    HistoLine(&out, "file write latency ns", m.file_write_ns);
    HistoLine(&out, "file sync latency ns", m.file_sync_ns);
  }
  HistoLine(&out, "wal batch records", m.wal_batch_records);
  if (m.btree_descents + m.btree_splits + m.btree_merges > 0) {
    Line(&out, "btree descents", m.btree_descents);
    Line(&out, "btree splits", m.btree_splits);
    Line(&out, "btree merges", m.btree_merges);
  }
  if (m.cursor_seeks + m.cursor_rows_scanned > 0) {
    Line(&out, "cursor seeks", m.cursor_seeks);
    Line(&out, "cursor rows scanned", m.cursor_rows_scanned);
    Line(&out, "cursor rows returned", m.cursor_rows_returned);
    Line(&out, "cursors open", m.cursors_open);
  }
  if (m.engine_gets + m.engine_puts + m.engine_removes + m.engine_scans > 0) {
    Line(&out, "engine gets", m.engine_gets);
    Line(&out, "engine puts", m.engine_puts);
    Line(&out, "engine removes", m.engine_removes);
    Line(&out, "engine scans", m.engine_scans);
    HistoLine(&out, "get latency ns", m.get_ns);
    HistoLine(&out, "put latency ns", m.put_ns);
    HistoLine(&out, "remove latency ns", m.remove_ns);
    HistoLine(&out, "scan latency ns", m.scan_ns);
  }
  if (!m.alloc_name.empty()) {
    // Memory path: snapshots assembled before the alloc gauges existed
    // carry no allocator name and keep the historical output byte-identical.
    out += "alloc name: " + m.alloc_name + "\n";
    Line(&out, "alloc live bytes", m.alloc_live_bytes);
    Line(&out, "alloc peak bytes", m.alloc_peak_bytes);
    Line(&out, "alloc remote frees", m.alloc_remote_frees);
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& m) {
  std::ostringstream os;
  PromCounter(os, "buffer_hits_total", m.buffer_hits);
  PromCounter(os, "buffer_misses_total", m.buffer_misses);
  PromCounter(os, "buffer_evictions_total", m.buffer_evictions);
  PromCounter(os, "buffer_writebacks_total", m.buffer_writebacks);
  for (size_t i = 0; i < m.buffer_shards.size(); ++i) {
    const BufferShardSnapshot& s = m.buffer_shards[i];
    std::string label = "shard=\"" + std::to_string(i) + "\"";
    PromCounter(os, "buffer_shard_hits_total", s.hits, label.c_str());
    PromCounter(os, "buffer_shard_misses_total", s.misses, label.c_str());
    PromCounter(os, "buffer_shard_evictions_total", s.evictions,
                label.c_str());
    PromCounter(os, "buffer_shard_writebacks_total", s.dirty_writebacks,
                label.c_str());
  }
  PromCounter(os, "file_reads_total", m.file_reads);
  PromCounter(os, "file_writes_total", m.file_writes);
  PromCounter(os, "file_syncs_total", m.file_syncs);
  PromCounter(os, "file_read_bytes_total", m.file_read_bytes);
  PromCounter(os, "file_write_bytes_total", m.file_write_bytes);
  PromHisto(os, "file_read_latency_ns", m.file_read_ns);
  PromHisto(os, "file_write_latency_ns", m.file_write_ns);
  PromHisto(os, "file_sync_latency_ns", m.file_sync_ns);
  PromCounter(os, "wal_appends_total", m.wal_appends);
  PromCounter(os, "wal_fsyncs_total", m.wal_syncs);
  PromCounter(os, "wal_batches_total", m.wal_batches);
  PromCounter(os, "wal_batched_bytes_total", m.wal_batched_bytes);
  PromHisto(os, "wal_batch_records", m.wal_batch_records);
  if (m.wal_segmented) {
    PromCounter(os, "wal_segments", m.wal_segments);
    PromCounter(os, "wal_rotations_total", m.wal_rotations);
    PromCounter(os, "wal_recycled_total", m.wal_recycled);
    PromCounter(os, "wal_archived_total", m.wal_archived);
    PromCounter(os, "wal_archive_lag_bytes", m.wal_archive_lag_bytes);
    PromCounter(os, "wal_archive_stalled", m.wal_archive_stalled ? 1 : 0);
    PromCounter(os, "wal_retained_lsn", m.wal_retained_lsn);
    PromCounter(os, "backup_runs_total", m.backup_runs);
    PromCounter(os, "backup_bytes_total", m.backup_bytes);
  }
  if (m.repl) {
    PromCounter(os, "repl_follower", m.repl_follower ? 1 : 0);
    PromCounter(os, "repl_epoch", m.repl_epoch);
    PromCounter(os, "repl_lag_bytes", m.repl_lag_bytes);
    PromCounter(os, "repl_lag_epochs", m.repl_lag_epochs);
  }
  if (m.mvcc) {
    PromCounter(os, "mvcc_active_snapshots", m.mvcc_active_snapshots);
    PromCounter(os, "mvcc_conflicts_total", m.mvcc_conflicts);
    PromCounter(os, "mvcc_gc_runs_total", m.mvcc_gc_runs);
    PromCounter(os, "mvcc_gc_pruned_total", m.mvcc_gc_pruned);
    PromCounter(os, "mvcc_watermark", m.mvcc_watermark);
    PromCounter(os, "mvcc_commit_clock", m.mvcc_clock);
    PromHisto(os, "mvcc_chain_len", m.mvcc_chain_len);
  }
  PromCounter(os, "btree_splits_total", m.btree_splits);
  PromCounter(os, "btree_merges_total", m.btree_merges);
  PromCounter(os, "btree_descents_total", m.btree_descents);
  PromCounter(os, "cursor_seeks_total", m.cursor_seeks);
  PromCounter(os, "cursor_rows_scanned_total", m.cursor_rows_scanned);
  PromCounter(os, "cursor_rows_returned_total", m.cursor_rows_returned);
  PromCounter(os, "cursors_open", m.cursors_open);
  PromCounter(os, "engine_gets_total", m.engine_gets);
  PromCounter(os, "engine_puts_total", m.engine_puts);
  PromCounter(os, "engine_removes_total", m.engine_removes);
  PromCounter(os, "engine_scans_total", m.engine_scans);
  PromHisto(os, "get_latency_ns", m.get_ns);
  PromHisto(os, "put_latency_ns", m.put_ns);
  PromHisto(os, "remove_latency_ns", m.remove_ns);
  PromHisto(os, "scan_latency_ns", m.scan_ns);
  PromCounter(os, "verify_runs_total", m.verify_runs);
  PromCounter(os, "repair_runs_total", m.repair_runs);
  PromCounter(os, "pages_quarantined_total", m.pages_quarantined);
  PromCounter(os, "records_salvaged_total", m.records_salvaged);
  PromCounter(os, "scrub_pages_checked_total", m.scrub_pages_checked);
  PromCounter(os, "scrub_corrupt_pages_total", m.scrub_corrupt_pages);
  PromCounter(os, "scrub_cycles_total", m.scrub_cycles);
  PromCounter(os, "lost_meta_writes_total", m.lost_meta_writes);
  PromCounter(os, "lost_page_writebacks_total", m.lost_page_writebacks);
  PromCounter(os, "committed_txns_total", m.committed_txns);
  PromCounter(os, "aborted_txns_total", m.aborted_txns);
  if (!m.alloc_name.empty()) {
    std::string label = "allocator=\"" + m.alloc_name + "\"";
    PromCounter(os, "alloc_live_bytes", m.alloc_live_bytes, label.c_str());
    PromCounter(os, "alloc_peak_bytes", m.alloc_peak_bytes, label.c_str());
    PromCounter(os, "alloc_remote_frees_total", m.alloc_remote_frees,
                label.c_str());
  }
  PromCounter(os, "page_count", m.page_count);
  PromCounter(os, "read_only", m.read_only ? 1 : 0);
  return os.str();
}

}  // namespace fame::obs

// Observability gating — the compile-time half of the Observability
// feature (optional sub-feature of Storage, with Tracing as an optional
// child). Mirrors the ReverseScan pattern at the build level: when the
// feature is deselected the instrumentation mustn't just be skipped, it
// must not exist — no obs symbols in the product binary, no bytes in the
// hot paths (the zero-overhead claim is enforced by the obs_off_probe nm
// test and the on/off bench guard in CI).
//
// Two independent switches:
//   FAME_OBS_ENABLED          1 unless FAME_OBS_DISABLE is defined.
//   FAME_OBS_TRACING_ENABLED  1 when obs is on and FAME_OBS_TRACE_DISABLE
//                             is not defined (Tracing requires
//                             Observability, as in the feature model).
//
// The build defines FAME_OBS_DISABLE / FAME_OBS_TRACE_DISABLE globally
// when the CMake options FAME_OBSERVABILITY / FAME_TRACING are OFF; the
// obs_off probe target defines them per-target to prove the claim inside
// an obs-on tree.
//
// Instrumentation sites use the variadic macros so a deselected build
// compiles the arguments away entirely (they are never even parsed as
// expressions):
//
//   FAME_OBS(metrics_.reads.Add(1); metrics_.read_bytes.Add(n);)
//   FAME_OBS_TRACE(obs::Trace::Record(obs::SpanKind::kPageRead, id, n, !ok);)
//
// This header is safe to include unconditionally; it defines macros only.
#ifndef FAME_OBS_OBS_H_
#define FAME_OBS_OBS_H_

#if !defined(FAME_OBS_ENABLED)
#if defined(FAME_OBS_DISABLE)
#define FAME_OBS_ENABLED 0
#else
#define FAME_OBS_ENABLED 1
#endif
#endif

#if !defined(FAME_OBS_TRACING_ENABLED)
#if FAME_OBS_ENABLED && !defined(FAME_OBS_TRACE_DISABLE)
#define FAME_OBS_TRACING_ENABLED 1
#else
#define FAME_OBS_TRACING_ENABLED 0
#endif
#endif

#if FAME_OBS_ENABLED
#define FAME_OBS(...) __VA_ARGS__
#else
#define FAME_OBS(...)
#endif

#if FAME_OBS_TRACING_ENABLED
#define FAME_OBS_TRACE(...) __VA_ARGS__
#else
#define FAME_OBS_TRACE(...)
#endif

#endif  // FAME_OBS_OBS_H_

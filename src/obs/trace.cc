#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"  // NowNanos

namespace fame::obs {
namespace {

// One event is four atomic words so a reader racing a ring wrap reads
// stale-or-new words, never a torn word: w0 = timestamp, w1 = packed
// kind/op/error/thread, w2/w3 = payload.
struct AtomicEvent {
  std::atomic<uint64_t> w[4];
};

struct Ring {
  uint32_t thread_id = 0;
  /// Next slot to write; only the owner thread stores (release), readers
  /// load (acquire) to bound how far they may decode.
  std::atomic<uint64_t> head{0};
  AtomicEvent slots[Trace::kRingSlots];
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive statics
  return *r;
}

std::atomic<bool> g_enabled{false};

Ring* ThisThreadRing() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* raw = owned.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> l(reg.mu);
    raw->thread_id = static_cast<uint32_t>(reg.rings.size());
    reg.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

uint64_t PackMeta(SpanKind kind, TraceOp op, bool error, uint32_t thread) {
  return static_cast<uint64_t>(kind) | (static_cast<uint64_t>(op) << 8) |
         (static_cast<uint64_t>(error ? 1 : 0) << 16) |
         (static_cast<uint64_t>(thread) << 32);
}

TraceEvent Decode(uint64_t t, uint64_t meta, uint64_t a, uint64_t b) {
  TraceEvent e;
  e.t_ns = t;
  e.kind = static_cast<SpanKind>(meta & 0xff);
  e.op = static_cast<TraceOp>((meta >> 8) & 0xff);
  e.error = ((meta >> 16) & 1) != 0;
  e.thread = static_cast<uint32_t>(meta >> 32);
  e.a = a;
  e.b = b;
  return e;
}

}  // namespace

void Trace::Enable(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Trace::Record(SpanKind kind, TraceOp op, uint64_t a, uint64_t b,
                   bool error) {
  if (!enabled()) return;
  Ring* ring = ThisThreadRing();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  AtomicEvent& slot = ring->slots[h % kRingSlots];
  slot.w[0].store(NowNanos(), std::memory_order_relaxed);
  slot.w[1].store(PackMeta(kind, op, error, ring->thread_id),
                  std::memory_order_relaxed);
  slot.w[2].store(a, std::memory_order_relaxed);
  slot.w[3].store(b, std::memory_order_relaxed);
  ring->head.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> Trace::Collect(size_t last_n) {
  std::vector<TraceEvent> out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> l(reg.mu);
  for (const auto& ring : reg.rings) {
    uint64_t h = ring->head.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(h, kRingSlots);
    for (uint64_t i = h - n; i < h; ++i) {
      const AtomicEvent& slot = ring->slots[i % kRingSlots];
      TraceEvent e = Decode(slot.w[0].load(std::memory_order_relaxed),
                            slot.w[1].load(std::memory_order_relaxed),
                            slot.w[2].load(std::memory_order_relaxed),
                            slot.w[3].load(std::memory_order_relaxed));
      if (e.kind != SpanKind{}) out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  if (last_n != 0 && out.size() > last_n) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(last_n));
  }
  return out;
}

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOpBegin:
      return "op.begin";
    case SpanKind::kOpEnd:
      return "op.end";
    case SpanKind::kPageRead:
      return "page.read";
    case SpanKind::kPageWrite:
      return "page.write";
    case SpanKind::kWalSync:
      return "wal.sync";
    case SpanKind::kCursor:
      return "cursor";
  }
  return "?";
}

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kNone:
      return "-";
    case TraceOp::kGet:
      return "get";
    case TraceOp::kPut:
      return "put";
    case TraceOp::kRemove:
      return "remove";
    case TraceOp::kUpdate:
      return "update";
    case TraceOp::kScan:
      return "scan";
    case TraceOp::kReverseScan:
      return "reverse-scan";
    case TraceOp::kCommit:
      return "commit";
    case TraceOp::kAbort:
      return "abort";
    case TraceOp::kVerify:
      return "verify";
    case TraceOp::kRepair:
      return "repair";
  }
  return "?";
}

std::string Trace::Dump(size_t last_n) {
  std::vector<TraceEvent> events = Collect(last_n);
  std::ostringstream os;
  for (const TraceEvent& e : events) {
    os << "[" << e.t_ns << "ns] t" << e.thread << " "
       << SpanKindName(e.kind);
    switch (e.kind) {
      case SpanKind::kOpBegin:
      case SpanKind::kOpEnd:
        os << " " << TraceOpName(e.op);
        break;
      case SpanKind::kPageRead:
      case SpanKind::kPageWrite:
        os << " page=" << e.a << " bytes=" << e.b;
        break;
      case SpanKind::kWalSync:
        os << " batch_records=" << e.a << " bytes=" << e.b;
        break;
      case SpanKind::kCursor:
        os << " scanned=" << e.a << " returned=" << e.b;
        break;
    }
    if (e.error) os << " ERROR";
    os << "\n";
  }
  return os.str();
}

void Trace::Reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> l(reg.mu);
  for (auto& ring : reg.rings) {
    for (auto& slot : ring->slots) {
      for (auto& w : slot.w) w.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

bool HasErrorSpan(const std::vector<TraceEvent>& events, SpanKind kind) {
  for (const TraceEvent& e : events) {
    if (e.kind == kind && e.error) return true;
  }
  return false;
}

}  // namespace fame::obs

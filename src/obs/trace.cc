#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"  // NowNanos

namespace fame::obs {
namespace {

// One event is eight atomic words. seq is a per-slot seqlock: the owner
// thread bumps it odd before the payload stores and even (release) after;
// Collect rejects odd or changed sequences, so a reader racing a ring
// wrap drops the in-flight slot instead of decoding words mixed from two
// writes. Payload: t_ns, packed kind/op/error/thread, a, b, and the
// causal ids. 64 bytes — one cache line per slot.
struct alignas(64) AtomicEvent {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> t_ns{0};
  std::atomic<uint64_t> meta{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
};

struct Ring {
  uint32_t thread_id = 0;
  /// Next slot to write; only the owner thread stores (release), readers
  /// load (acquire) to bound how far they may decode.
  std::atomic<uint64_t> head{0};
  AtomicEvent slots[Trace::kRingSlots];
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive statics
  return *r;
}

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_next_id{1};

Ring* ThisThreadRing() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* raw = owned.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> l(reg.mu);
    raw->thread_id = static_cast<uint32_t>(reg.rings.size());
    reg.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

// This thread's active-span stack. Depth counts logical nesting (it may
// exceed kMaxSpanDepth); only the first kMaxSpanDepth spans are tracked,
// deeper work parents to the deepest tracked one.
struct ThreadSpans {
  uint64_t trace_id = 0;
  uint64_t stack[Trace::kMaxSpanDepth] = {};
  uint32_t depth = 0;
};

thread_local ThreadSpans t_spans;

uint64_t TopSpan() {
  if (t_spans.depth == 0) return 0;
  uint32_t top = std::min<uint32_t>(
      t_spans.depth, static_cast<uint32_t>(Trace::kMaxSpanDepth));
  return t_spans.stack[top - 1];
}

uint64_t PackMeta(SpanKind kind, TraceOp op, bool error, uint32_t thread) {
  return static_cast<uint64_t>(kind) | (static_cast<uint64_t>(op) << 8) |
         (static_cast<uint64_t>(error ? 1 : 0) << 16) |
         (static_cast<uint64_t>(thread) << 32);
}

// Seqlock writer: odd → payload → even. The release fence orders the odd
// store before the payload stores; the final release store publishes the
// payload to readers that re-check the sequence.
void WriteSlot(SpanKind kind, TraceOp op, uint64_t a, uint64_t b, bool error,
               uint64_t trace, uint64_t span, uint64_t parent) {
  Ring* ring = ThisThreadRing();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  AtomicEvent& slot = ring->slots[h % Trace::kRingSlots];
  uint64_t s = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.t_ns.store(NowNanos(), std::memory_order_relaxed);
  slot.meta.store(PackMeta(kind, op, error, ring->thread_id),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.trace_id.store(trace, std::memory_order_relaxed);
  slot.span_id.store(span, std::memory_order_relaxed);
  slot.parent_id.store(parent, std::memory_order_relaxed);
  slot.seq.store(s + 2, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

}  // namespace

void Trace::Enable(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

uint64_t Trace::NewId() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

SpanContext Trace::Current() {
  SpanContext c;
  if (t_spans.depth > 0) {
    c.trace_id = t_spans.trace_id;
    c.span_id = TopSpan();
  }
  return c;
}

void Trace::BeginSpan(TraceOp op, SpanBinding* out) {
  *out = SpanBinding{};
  if (!enabled()) return;
  ThreadSpans& ts = t_spans;
  out->parent_id = TopSpan();
  if (ts.depth == 0) ts.trace_id = NewId();
  out->trace_id = ts.trace_id;
  out->span_id = NewId();
  if (ts.depth < kMaxSpanDepth) ts.stack[ts.depth] = out->span_id;
  ++ts.depth;
  out->active = true;
  WriteSlot(SpanKind::kOpBegin, op, 0, 0, false, out->trace_id, out->span_id,
            out->parent_id);
}

void Trace::EndSpan(TraceOp op, const SpanBinding& binding, bool error) {
  if (!binding.active) return;
  if (enabled()) {
    WriteSlot(SpanKind::kOpEnd, op, 0, 0, error, binding.trace_id,
              binding.span_id, binding.parent_id);
  }
  ThreadSpans& ts = t_spans;
  if (ts.depth > 0) {
    --ts.depth;
    if (ts.depth == 0) ts.trace_id = 0;
  }
}

void Trace::Record(SpanKind kind, TraceOp op, uint64_t a, uint64_t b,
                   bool error) {
  if (!enabled()) return;
  WriteSlot(kind, op, a, b, error,
            t_spans.depth > 0 ? t_spans.trace_id : 0, 0, TopSpan());
}

void Trace::RecordWithSpanId(SpanKind kind, TraceOp op, uint64_t span_id,
                             uint64_t a, uint64_t b, bool error) {
  if (!enabled()) return;
  WriteSlot(kind, op, a, b, error,
            t_spans.depth > 0 ? t_spans.trace_id : 0, span_id, TopSpan());
}

std::vector<TraceEvent> Trace::Collect(size_t last_n) {
  std::vector<TraceEvent> out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> l(reg.mu);
  for (const auto& ring : reg.rings) {
    uint64_t h = ring->head.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(h, kRingSlots);
    for (uint64_t i = h - n; i < h; ++i) {
      const AtomicEvent& slot = ring->slots[i % kRingSlots];
      // Seqlock reader: reject in-flight (odd) or rewritten slots.
      uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;
      TraceEvent e;
      e.t_ns = slot.t_ns.load(std::memory_order_relaxed);
      uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      e.a = slot.a.load(std::memory_order_relaxed);
      e.b = slot.b.load(std::memory_order_relaxed);
      e.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      e.span_id = slot.span_id.load(std::memory_order_relaxed);
      e.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      e.kind = static_cast<SpanKind>(meta & 0xff);
      e.op = static_cast<TraceOp>((meta >> 8) & 0xff);
      e.error = ((meta >> 16) & 1) != 0;
      e.thread = static_cast<uint32_t>(meta >> 32);
      if (e.kind != SpanKind{}) out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  if (last_n != 0 && out.size() > last_n) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(last_n));
  }
  return out;
}

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOpBegin:
      return "op.begin";
    case SpanKind::kOpEnd:
      return "op.end";
    case SpanKind::kPageRead:
      return "page.read";
    case SpanKind::kPageWrite:
      return "page.write";
    case SpanKind::kWalSync:
      return "wal.sync";
    case SpanKind::kCursor:
      return "cursor";
    case SpanKind::kWalJoin:
      return "wal.join";
  }
  return "?";
}

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kNone:
      return "-";
    case TraceOp::kGet:
      return "get";
    case TraceOp::kPut:
      return "put";
    case TraceOp::kRemove:
      return "remove";
    case TraceOp::kUpdate:
      return "update";
    case TraceOp::kScan:
      return "scan";
    case TraceOp::kReverseScan:
      return "reverse-scan";
    case TraceOp::kCommit:
      return "commit";
    case TraceOp::kAbort:
      return "abort";
    case TraceOp::kVerify:
      return "verify";
    case TraceOp::kRepair:
      return "repair";
    case TraceOp::kSql:
      return "sql";
    case TraceOp::kReplShip:
      return "repl-ship";
    case TraceOp::kReplApply:
      return "repl-apply";
  }
  return "?";
}

std::string Trace::Dump(size_t last_n) {
  std::vector<TraceEvent> events = Collect(last_n);
  std::ostringstream os;
  for (const TraceEvent& e : events) {
    os << "[" << e.t_ns << "ns] t" << e.thread << " "
       << SpanKindName(e.kind);
    switch (e.kind) {
      case SpanKind::kOpBegin:
      case SpanKind::kOpEnd:
        os << " " << TraceOpName(e.op);
        break;
      case SpanKind::kPageRead:
      case SpanKind::kPageWrite:
        os << " page=" << e.a << " bytes=" << e.b;
        break;
      case SpanKind::kWalSync:
        os << " batch_records=" << e.a << " bytes=" << e.b;
        break;
      case SpanKind::kCursor:
        os << " scanned=" << e.a << " returned=" << e.b;
        break;
      case SpanKind::kWalJoin:
        os << " batch_span=" << e.a << " batch_records=" << e.b;
        break;
    }
    if (e.trace_id != 0 || e.span_id != 0) {
      os << " trace=" << e.trace_id << " span=" << e.span_id
         << " parent=" << e.parent_id;
    }
    if (e.error) os << " ERROR";
    os << "\n";
  }
  return os.str();
}

namespace {

const char* KindCategory(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOpBegin:
    case SpanKind::kOpEnd:
      return "op";
    case SpanKind::kPageRead:
    case SpanKind::kPageWrite:
      return "io";
    case SpanKind::kWalSync:
    case SpanKind::kWalJoin:
      return "wal";
    case SpanKind::kCursor:
      return "cursor";
  }
  return "op";
}

// ts is microseconds (double) in the Chrome trace-event format; emit the
// nanosecond remainder as a fraction so ordering survives the export.
void JsonTs(std::ostream& os, uint64_t t_ns) {
  os << (t_ns / 1000) << "." << std::setw(3) << std::setfill('0')
     << (t_ns % 1000) << std::setfill(' ');
}

void JsonEventHead(std::ostream& os, const char* name, const char* cat,
                   const char* ph, const TraceEvent& e) {
  os << "{\"name\":\"" << name << "\",\"cat\":\"" << cat << "\",\"ph\":\""
     << ph << "\",\"ts\":";
  JsonTs(os, e.t_ns);
  os << ",\"pid\":1,\"tid\":" << e.thread;
}

}  // namespace

std::string Trace::DumpJson(size_t last_n) {
  std::vector<TraceEvent> events = Collect(last_n);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const TraceEvent& e : events) {
    const char* cat = KindCategory(e.kind);
    sep();
    switch (e.kind) {
      case SpanKind::kOpBegin:
        JsonEventHead(os, TraceOpName(e.op), cat, "B", e);
        os << ",\"args\":{\"trace\":" << e.trace_id << ",\"span\":"
           << e.span_id << ",\"parent\":" << e.parent_id << "}}";
        break;
      case SpanKind::kOpEnd:
        JsonEventHead(os, TraceOpName(e.op), cat, "E", e);
        os << ",\"args\":{\"error\":" << (e.error ? "true" : "false")
           << "}}";
        break;
      default:
        JsonEventHead(os, SpanKindName(e.kind), cat, "i", e);
        os << ",\"s\":\"t\",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
           << ",\"trace\":" << e.trace_id << ",\"parent\":" << e.parent_id;
        if (e.error) os << ",\"error\":true";
        os << "}}";
        break;
    }
    // Group-commit epochs become flow arrows: the leader's batch event is
    // the source (id = the batch's span id), each follower's join event
    // the sink (it names that id in `a`).
    if (e.kind == SpanKind::kWalSync && e.span_id != 0) {
      sep();
      JsonEventHead(os, "wal.batch", "wal", "s", e);
      os << ",\"id\":" << e.span_id << "}";
    } else if (e.kind == SpanKind::kWalJoin && e.a != 0) {
      sep();
      JsonEventHead(os, "wal.batch", "wal", "f", e);
      os << ",\"bp\":\"e\",\"id\":" << e.a << "}";
    }
  }
  os << "]}";
  return os.str();
}

void Trace::Reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> l(reg.mu);
  for (auto& ring : reg.rings) {
    for (auto& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
      slot.t_ns.store(0, std::memory_order_relaxed);
      slot.meta.store(0, std::memory_order_relaxed);
      slot.a.store(0, std::memory_order_relaxed);
      slot.b.store(0, std::memory_order_relaxed);
      slot.trace_id.store(0, std::memory_order_relaxed);
      slot.span_id.store(0, std::memory_order_relaxed);
      slot.parent_id.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

bool HasErrorSpan(const std::vector<TraceEvent>& events, SpanKind kind) {
  for (const TraceEvent& e : events) {
    if (e.kind == kind && e.error) return true;
  }
  return false;
}

}  // namespace fame::obs

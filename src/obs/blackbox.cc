#include "obs/blackbox.h"

#include <sstream>

#include "common/crc32.h"
#include "obs/metrics.h"  // NowNanos
#include "obs/obs.h"
#if FAME_OBS_TRACING_ENABLED
#include "obs/trace.h"
#endif

namespace fame::obs {
namespace {

// On-disk framing: magic, body length, CRC seal, text body. The decoder
// rejects anything that does not frame exactly — a torn tmp file that
// somehow got installed, a truncated copy, bit rot.
constexpr char kMagic[8] = {'F', 'A', 'M', 'E', 'B', 'B', 'X', '1'};
constexpr size_t kHeaderSize = 16;

void PutFixed32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

void BlackBox::NoteStatus(const std::string& where,
                          const std::string& status_text) {
  std::lock_guard<std::mutex> l(mu_);
  if (errors_.size() >= kMaxErrors) {
    errors_.pop_front();
    ++dropped_;
  }
  errors_.push_back(where + ": " + status_text);
}

std::string BlackBox::RenderErrors() const {
  std::lock_guard<std::mutex> l(mu_);
  std::ostringstream os;
  if (dropped_ > 0) os << "dropped=" << dropped_ << "\n";
  for (const std::string& e : errors_) os << e << "\n";
  return os.str();
}

Status BlackBox::Persist(osal::Env* env, const std::string& db_path,
                         const std::string& trigger,
                         const std::string& features,
                         const std::string& metrics_text) const {
  return PersistBlackBox(env, db_path, trigger, features, RenderErrors(),
                         metrics_text);
}

std::string BlackBoxPath(const std::string& db_path) {
  return db_path + ".blackbox";
}

Status PersistBlackBox(osal::Env* env, const std::string& db_path,
                       const std::string& trigger,
                       const std::string& features,
                       const std::string& errors_text,
                       const std::string& metrics_text) {
  std::ostringstream body;
  body << "[trigger]\n" << trigger << "\n";
  body << "t_ns=" << NowNanos() << "\n";
  body << "[features]\n" << features << "\n";
  body << "[errors]\n" << errors_text;
  body << "[spans]\n";
#if FAME_OBS_TRACING_ENABLED
  if (Trace::enabled()) body << Trace::Dump(BlackBox::kSpanLastN);
#endif
  body << "[metrics]\n" << metrics_text;

  const std::string text = body.str();
  std::string blob(kMagic, sizeof(kMagic));
  PutFixed32(&blob, static_cast<uint32_t>(text.size()));
  PutFixed32(&blob, Crc32(text.data(), text.size()));
  blob += text;

  // Atomic install: a crash anywhere before the rename leaves the previous
  // black box (if any) untouched; the rename replaces it in one step.
  const std::string final_path = BlackBoxPath(db_path);
  const std::string tmp_path = final_path + ".tmp";
  auto f_or = env->OpenFile(tmp_path, /*create=*/true);
  FAME_RETURN_IF_ERROR(f_or.status());
  std::unique_ptr<osal::RandomAccessFile> f = std::move(f_or).value();
  FAME_RETURN_IF_ERROR(f->Truncate(0));
  FAME_RETURN_IF_ERROR(f->Write(0, blob));
  FAME_RETURN_IF_ERROR(f->Sync());
  f.reset();
  return env->RenameFile(tmp_path, final_path);
}

StatusOr<std::string> ReadBlackBox(osal::Env* env, const std::string& file) {
  std::string blob;
  FAME_RETURN_IF_ERROR(env->ReadFileToString(file, &blob));
  if (blob.size() < kHeaderSize ||
      blob.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a black box file: " + file);
  }
  const uint32_t len = GetFixed32(blob.data() + 8);
  const uint32_t crc = GetFixed32(blob.data() + 12);
  if (blob.size() != kHeaderSize + len) {
    return Status::Corruption("black box length mismatch: " + file);
  }
  if (Crc32(blob.data() + kHeaderSize, len) != crc) {
    return Status::Corruption("black box CRC mismatch: " + file);
  }
  return blob.substr(kHeaderSize);
}

}  // namespace fame::obs

// CRC-32 (IEEE 802.3 polynomial, reflected) for page and log-record
// checksumming. Table-driven, no hardware dependency so it runs on the
// embedded targets the product line is aimed at.
#ifndef FAME_COMMON_CRC32_H_
#define FAME_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fame {

/// Computes the CRC-32 of data[0, n).
uint32_t Crc32(const void* data, size_t n);

/// Extends `init_crc` (a previous Crc32 result) with data[0, n).
uint32_t Crc32Extend(uint32_t init_crc, const void* data, size_t n);

/// Masks a CRC stored alongside the data it covers, so that re-checksumming
/// a buffer that embeds its own checksum does not "verify" trivially
/// (same trick as LevelDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace fame

#endif  // FAME_COMMON_CRC32_H_

#include "common/crc32.h"

#include <array>

namespace fame {
namespace {

constexpr uint32_t kPoly = 0xedb88320u;  // reflected IEEE polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32Extend(uint32_t init_crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = init_crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t n) { return Crc32Extend(0, data, n); }

}  // namespace fame

// Bounded retry for transient storage errors. Embedded flash/EEPROM parts
// exhibit transient write/read failures (bus noise, charge-pump brownout)
// that succeed on immediate retry; the storage and log layers wrap their IO
// in RetryOnTransient so a bounded number of such glitches is invisible to
// the layers above, while persistent failures still surface promptly.
#ifndef FAME_COMMON_RETRY_H_
#define FAME_COMMON_RETRY_H_

#include <cstdint>
#include <utility>

#if !defined(FAME_EMBEDDED)
#include <chrono>
#include <thread>
#endif

#include "common/status.h"

namespace fame {

/// Retry configuration. The default (3 attempts, no wait) suits the
/// single-threaded embedded targets: retries are immediate bus retries, not
/// scheduler sleeps. Hosts that want real backoff install a `backoff` hook
/// (called between attempts with the 1-based attempt number just failed;
/// implementations typically wait ~base << attempt).
struct RetryPolicy {
  uint32_t max_attempts = 3;  ///< total tries, including the first (>= 1)
  void (*backoff)(uint32_t attempt) = nullptr;
};

/// Default backoff hook for host builds: jittered exponential wait
/// (~250us << attempt, capped at 20ms, jittered to [base/2, base*1.5) so
/// concurrent retriers — archive copiers, backup readers — do not thunder
/// in lockstep against the same saturated device). Embedded builds
/// (-DFAME_EMBEDDED) keep the immediate-bus-retry semantics: there is no
/// scheduler to sleep on, and the transient faults being retried clear in
/// bus time, not wall time.
inline void BackoffWithJitter(uint32_t attempt) {
#if defined(FAME_EMBEDDED)
  (void)attempt;
#else
  thread_local uint32_t seed =
      0x9e3779b9u ^ static_cast<uint32_t>(reinterpret_cast<uintptr_t>(&seed));
  seed ^= seed << 13;
  seed ^= seed >> 17;
  seed ^= seed << 5;
  uint64_t shift = attempt < 7 ? attempt : 7;
  uint64_t base_us = 250ull << shift;
  if (base_us > 20000) base_us = 20000;
  uint64_t jittered_us = base_us / 2 + seed % base_us;
  std::this_thread::sleep_for(std::chrono::microseconds(jittered_us));
#endif
}

/// Policy for host-side bulk IO (segment archiving, backup page copies):
/// more attempts than the embedded default, with jittered backoff between
/// them. On embedded builds the hook degrades to immediate retry.
inline RetryPolicy HostIoRetryPolicy(uint32_t max_attempts = 5) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.backoff = &BackoffWithJitter;
  return p;
}

/// True when `s` means the medium is out of space. Envs report that as
/// ResourceExhausted (POSIX ENOSPC/EDQUOT, MemEnv capacity, injected disk
/// full); the message check catches IOError-wrapped ENOSPC from foreign
/// env implementations.
inline bool IsDiskFull(const Status& s) {
  if (s.code() == StatusCode::kResourceExhausted) return true;
  if (s.code() != StatusCode::kIOError) return false;
  const std::string& m = s.message();
  return m.find("ENOSPC") != std::string::npos ||
         m.find("No space left") != std::string::npos ||
         m.find("disk full") != std::string::npos;
}

/// True for error codes worth retrying: transient IO glitches and busy
/// resources. Corruption and NotFound are deterministic; a full disk stays
/// full on the immediate retry — none of those may burn retry budget or,
/// worse, repeat a mutation.
inline bool IsTransient(const Status& s) {
  if (s.code() == StatusCode::kCorruption) return false;
  if (IsDiskFull(s)) return false;
  return s.code() == StatusCode::kIOError || s.code() == StatusCode::kBusy;
}

/// Runs `fn` (returning Status) up to `policy.max_attempts` times, stopping
/// on success or on the first non-transient error. Returns the last status.
template <typename Fn>
Status RetryOnTransient(const RetryPolicy& policy, Fn&& fn) {
  uint32_t attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Status s;
  for (uint32_t attempt = 1;; ++attempt) {
    s = fn();
    if (s.ok() || !IsTransient(s) || attempt >= attempts) return s;
    if (policy.backoff != nullptr) policy.backoff(attempt);
  }
}

/// Retry policy with a total wall-clock budget on top of the attempt bound.
/// The attempt cap alone is the wrong bound for streaming sends: a slow peer
/// that eats 30s per attempt would hold a replication round hostage for
/// attempts * 30s. The budget caps the whole loop; whichever bound trips
/// first ends the retrying. The clock is a plain function pointer (usually
/// Env::NowNanos via a thunk) so this header stays free of osal and tests
/// can substitute a fake clock.
struct DeadlineRetryPolicy {
  RetryPolicy base;
  uint64_t budget_nanos = 0;            ///< 0 = attempts-only, no deadline
  uint64_t (*now_nanos)() = nullptr;    ///< monotonic; required for a budget
};

/// RetryOnTransient with a deadline: stops retrying — returning the last
/// transient error — once `budget_nanos` has elapsed since the first
/// attempt, even if attempts remain. The in-flight `fn` is never interrupted
/// (the deadline is checked between attempts), so a budget of 0 elapsed
/// still runs `fn` exactly once.
template <typename Fn>
Status RetryOnTransientDeadline(const DeadlineRetryPolicy& policy, Fn&& fn) {
  uint32_t attempts = policy.base.max_attempts > 0 ? policy.base.max_attempts : 1;
  const bool budgeted = policy.budget_nanos > 0 && policy.now_nanos != nullptr;
  const uint64_t start = budgeted ? policy.now_nanos() : 0;
  Status s;
  for (uint32_t attempt = 1;; ++attempt) {
    s = fn();
    if (s.ok() || !IsTransient(s) || attempt >= attempts) return s;
    if (budgeted && policy.now_nanos() - start >= policy.budget_nanos) return s;
    if (policy.base.backoff != nullptr) policy.base.backoff(attempt);
    if (budgeted && policy.now_nanos() - start >= policy.budget_nanos) return s;
  }
}

}  // namespace fame

#endif  // FAME_COMMON_RETRY_H_
